// Bump-arena and pooled allocation for hot simulator state.
//
// The tick loop must not touch the host heap in steady state: a
// figure-scale sweep executes millions of ticks, and a single
// malloc/free pair per tick (or worse, per LLC miss) shows up directly
// in the end-to-end wall clock and serializes otherwise independent
// sweep lanes through the allocator.  Two building blocks enforce
// this:
//
//  * BumpArena — a chunked bump allocator for buffers whose lifetime
//    is "as long as the owning component": per-vCPU ref-batch buffers,
//    per-partition scratch.  Allocation is a pointer bump; memory is
//    reclaimed only when the arena dies with its owner.
//
//  * PoolResource / PoolAllocator — an STL-compatible allocator that
//    recycles freed blocks through per-size-class free lists backed by
//    a BumpArena.  Node containers on top of it (the LLC's displaced-
//    line map) stop heap-allocating once their high-water mark is
//    reached: every insert after that pops a previously freed node.
//
// tests/hv/zero_alloc_test.cpp pins the resulting invariant with a
// counting operator new: after warmup, whole ticks run with zero heap
// allocations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace kyoto {

/// Chunked bump allocator.  Not thread-safe; each owner (hypervisor,
/// cache) keeps its own arena, matching the simulator's share-nothing
/// partitioning.
class BumpArena {
 public:
  explicit BumpArena(std::size_t chunk_bytes = std::size_t{1} << 16)
      : chunk_bytes_(chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;
  BumpArena(BumpArena&&) = default;
  BumpArena& operator=(BumpArena&&) = default;

  /// Returns `bytes` of storage aligned to `align` (<= 16).  Grows by
  /// whole chunks; oversized requests get a dedicated chunk.
  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    KYOTO_DCHECK(align > 0 && align <= alignof(std::max_align_t) &&
                 (align & (align - 1)) == 0);
    std::size_t at = (cursor_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || at + bytes > current_size_) {
      new_chunk(bytes + align);
      at = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = at + bytes;
    used_ += bytes;
    return current_ + at;
  }

  /// Typed convenience: raw storage for `n` objects of T (memory only,
  /// no construction).
  template <typename T>
  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(allocate_bytes(n * sizeof(T), alignof(T)));
  }

  /// Bytes handed out (diagnostics).
  std::size_t bytes_used() const { return used_; }
  /// Bytes reserved from the host heap (diagnostics).
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  void new_chunk(std::size_t min_bytes) {
    const std::size_t size = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    current_ = chunks_.back().get();
    current_size_ = size;
    cursor_ = 0;
    reserved_ += size;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* current_ = nullptr;
  std::size_t current_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

/// Size-class free lists over a BumpArena.  allocate() rounds the
/// request up to a power of two (min 16 bytes, so freed blocks can
/// hold the free-list link) and serves it from the matching free list,
/// falling back to the arena when the list is empty.  deallocate()
/// pushes the block back on its list — nothing is ever returned to the
/// host heap before the resource itself dies.
class PoolResource {
 public:
  PoolResource() = default;
  PoolResource(const PoolResource&) = delete;
  PoolResource& operator=(const PoolResource&) = delete;

  void* allocate(std::size_t bytes) {
    const unsigned c = size_class(bytes);
    void*& head = free_[c];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    return arena_.allocate_bytes(std::size_t{1} << c, alignof(std::max_align_t));
  }

  void deallocate(void* p, std::size_t bytes) {
    const unsigned c = size_class(bytes);
    *static_cast<void**>(p) = free_[c];
    free_[c] = p;
  }

  std::size_t bytes_reserved() const { return arena_.bytes_reserved(); }

 private:
  static unsigned size_class(std::size_t bytes) {
    const unsigned w = static_cast<unsigned>(std::bit_width(bytes - 1));
    return w < 4 ? 4 : w;  // minimum block: 16 bytes (free-list link + alignment)
  }

  static constexpr unsigned kClasses = 48;  // 16 B .. 128 TB, plenty
  void* free_[kClasses] = {};
  BumpArena arena_;
};

/// STL allocator face of PoolResource.  Rebind-friendly: node
/// containers allocate their internal node type and bucket arrays
/// through rebound copies, all funneling into the same resource.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(PoolResource* resource) noexcept : resource_(resource) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept : resource_(other.resource()) {}

  T* allocate(std::size_t n) { return static_cast<T*>(resource_->allocate(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { resource_->deallocate(p, n * sizeof(T)); }

  PoolResource* resource() const noexcept { return resource_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) noexcept {
    return a.resource_ == b.resource_;
  }

 private:
  PoolResource* resource_;
};

}  // namespace kyoto
