// Leveled logging for the simulator.
//
// The library is quiet by default (warnings and errors only); examples
// and debugging sessions can raise verbosity.  Logging goes through a
// single sink so tests can capture it.  This is intentionally not a
// high-performance async logger: the simulator's hot loop never logs.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace kyoto {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the human-readable name of a level ("DEBUG", ...).
const char* log_level_name(LogLevel level);

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the sink (default writes to stderr).  Passing nullptr
/// restores the default sink.  The sink receives the already-formatted
/// line without a trailing newline.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Emits one message through the current sink if `level` passes the
/// threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, oss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace kyoto

#define KYOTO_LOG(level) ::kyoto::detail::LogLine(level)
#define KYOTO_LOG_DEBUG KYOTO_LOG(::kyoto::LogLevel::kDebug)
#define KYOTO_LOG_INFO KYOTO_LOG(::kyoto::LogLevel::kInfo)
#define KYOTO_LOG_WARN KYOTO_LOG(::kyoto::LogLevel::kWarn)
#define KYOTO_LOG_ERROR KYOTO_LOG(::kyoto::LogLevel::kError)
