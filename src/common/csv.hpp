// Minimal CSV emission for benchmark series.
//
// Figure benches print an ASCII rendering for humans and can
// additionally dump the raw series as CSV (one file per figure) so
// plots can be regenerated offline.  Quoting follows RFC 4180: fields
// containing comma, quote or newline are double-quoted with quotes
// doubled.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace kyoto {

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Streams rows of a CSV document.  The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields);

 private:
  std::ostream* out_;
};

}  // namespace kyoto
