#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace kyoto {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  KYOTO_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  KYOTO_CHECK_MSG(cells.size() <= headers_.size(),
                  "row has " << cells.size() << " cells but table has " << headers_.size()
                             << " columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << " | ";
      oss << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) oss << ' ';
    }
    oss << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) oss << "-+-";
    oss << std::string(widths[c], '-');
  }
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string fmt_double(double v, int digits) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(digits);
  oss << v;
  return oss.str();
}

std::string fmt_count(long long v) {
  const bool negative = v < 0;
  unsigned long long mag = negative ? static_cast<unsigned long long>(-(v + 1)) + 1ull
                                    : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return "";
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int filled = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<std::size_t>(filled), '#');
}

}  // namespace kyoto
