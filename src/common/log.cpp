#include "common/log.hpp"

#include <iostream>
#include <mutex>

namespace kyoto {
namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;  // empty = default stderr sink

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[kyoto:" << log_level_name(level) << "] " << message << '\n';
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
}

LogLevel log_level() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_level;
}

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  LogSink sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (static_cast<int>(level) < static_cast<int>(g_level)) return;
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace kyoto
