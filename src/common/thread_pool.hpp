// A small reusable worker pool for partitioned simulation phases.
//
// The simulator's parallelism is coarse and deterministic: a tick (or
// a sweep) splits into a handful of disjoint partitions — one per
// socket — that are executed concurrently and then merged serially in
// a fixed order.  The pool therefore offers exactly one primitive,
// `run(n, fn)`: execute fn(0..n-1) across the workers *and the
// calling thread*, returning only when every index has finished (the
// barrier IS the merge point).  Task indices are claimed from a
// shared counter, so which thread runs which partition is
// non-deterministic — callers must keep partitions disjoint and do
// all cross-partition folding after run() returns.  The hypervisor's
// tick loop is the canonical caller (see README "Threading model").
//
// With `lanes == 1` the pool spawns no threads and run() executes
// inline, so a threads=1 configuration is the serial engine, not a
// one-worker simulation of it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kyoto {

class ThreadPool {
 public:
  /// Creates a pool with `lanes` execution lanes total (the caller of
  /// run() counts as one lane, so `lanes - 1` worker threads are
  /// spawned).  `lanes < 1` is clamped to 1.
  explicit ThreadPool(int lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return lanes_; }

  /// Executes fn(i) for every i in [0, tasks), distributing indices
  /// over the workers and the calling thread; returns when all have
  /// completed.  Not reentrant and not thread-safe: one run() at a
  /// time, always from the owning thread.  `fn` must not throw (the
  /// simulator's failure mode is KYOTO_CHECK, which aborts).
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// Lanes that can actually run concurrently on this host.
  static int hardware_lanes();

 private:
  void worker_loop();
  /// Claims and runs batch tasks until the batch is drained; returns
  /// true if this thread retired the last task.
  bool drain(std::unique_lock<std::mutex>& lock);

  int lanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;  // run() waits for batch completion
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t next_task_ = 0;   // next index to claim
  std::size_t tasks_ = 0;       // total indices in the current batch
  std::size_t unfinished_ = 0;  // indices not yet retired
  std::uint64_t batch_ = 0;     // generation counter (wakes workers once per run)
  bool stop_ = false;
};

}  // namespace kyoto
