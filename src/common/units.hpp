// Units and simulated-time vocabulary shared by the whole code base.
//
// The simulator is a discrete-time system: virtual time advances in
// *ticks* of `kTickMs` milliseconds (Xen's scheduler tick), and a
// scheduling *time slice* is `kTicksPerSlice` ticks (Xen's 30 ms
// accounting period).  Within a tick, cores execute a configurable
// number of *cycles*.  All conversions between misses/ms pollution
// rates (Equation 1 of the paper) and cycle counts go through the
// machine frequency expressed in kHz (cycles per millisecond), exactly
// as the paper's equation does.
#pragma once

#include <cstdint>

namespace kyoto {

/// Simulated processor cycles.
using Cycles = std::int64_t;

/// Discrete scheduler tick index (1 tick = kTickMs of virtual time).
using Tick = std::int64_t;

/// Bytes (cache sizes, working sets).
using Bytes = std::uint64_t;

/// Processor frequency in kHz == cycles per millisecond.  This is the
/// unit used by the paper's Equation 1.
using KHz = std::int64_t;

/// A cache-line-aligned simulated address.
using Address = std::uint64_t;

/// Count of retired instructions.
using Instructions = std::int64_t;

/// Milliseconds of virtual time covered by one scheduler tick (Xen: 10).
inline constexpr std::int64_t kTickMs = 10;

/// Ticks per scheduling time slice (Xen: 30 ms slice = 3 ticks).
inline constexpr std::int64_t kTicksPerSlice = 3;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }

/// Converts cycles executed on a core into milliseconds of virtual
/// on-CPU time for a machine running at `freq_khz` (kHz == cycles/ms).
inline constexpr double cycles_to_ms(Cycles c, KHz freq_khz) {
  return static_cast<double>(c) / static_cast<double>(freq_khz);
}

/// Virtual cycles in one tick for a machine at `freq_khz`.
inline constexpr Cycles cycles_per_tick(KHz freq_khz) { return freq_khz * kTickMs; }

}  // namespace kyoto
