#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace kyoto {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double kendall_tau(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 1.0;
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0) ++concordant;
      else if (prod < 0) ++discordant;
      // ties contribute to neither
    }
  }
  const double denom = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double kendall_tau_orders(const std::vector<std::string>& order_a,
                          const std::vector<std::string>& order_b) {
  // Convert names to ranks and correlate.  Rank 0 = first (most-X).
  std::unordered_map<std::string, std::size_t> rank_b;
  for (std::size_t i = 0; i < order_b.size(); ++i) rank_b.emplace(order_b[i], i);
  std::vector<double> ra;
  std::vector<double> rb;
  for (std::size_t i = 0; i < order_a.size(); ++i) {
    const auto it = rank_b.find(order_a[i]);
    if (it == rank_b.end()) continue;
    // Negate so that "earlier in the order" = higher score; tau is
    // invariant to this but it keeps the semantics readable.
    ra.push_back(-static_cast<double>(i));
    rb.push_back(-static_cast<double>(it->second));
  }
  return kendall_tau(ra, rb);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double cov = sxy - sx * sy / dn;
  const double varx = sxx - sx * sx / dn;
  const double vary = syy - sy * sy / dn;
  if (varx <= 0.0) return fit;
  fit.slope = cov / varx;
  fit.intercept = (sy - fit.slope * sx) / dn;
  fit.r2 = (vary > 0.0) ? (cov * cov) / (varx * vary) : 1.0;
  return fit;
}

}  // namespace kyoto
