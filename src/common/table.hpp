// ASCII table rendering for the benchmark harness.
//
// Every bench binary reproduces a paper table/figure as rows and
// columns on stdout; TextTable keeps them aligned and consistent so
// EXPERIMENTS.md can quote the output verbatim.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kyoto {

/// A simple right-padded ASCII table.  Columns are sized to the widest
/// cell.  Numeric formatting is the caller's job (use fmt_double).
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, e.g.
  ///   name   | value
  ///   -------+------
  ///   lbm    | 21.3
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Formats a double with `digits` fractional digits (fixed notation).
std::string fmt_double(double v, int digits = 2);

/// Formats a count with thousands separators for readability
/// (e.g. 1234567 -> "1,234,567").
std::string fmt_count(long long v);

/// Renders a horizontal ASCII bar of proportional length, used by the
/// figure benches to sketch the paper's bar charts in the terminal.
/// `value` is clamped to [0, max_value]; `width` is the bar at max.
std::string ascii_bar(double value, double max_value, int width = 40);

}  // namespace kyoto
