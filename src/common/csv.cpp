#include "common/csv.hpp"

namespace kyoto {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    *out_ << csv_escape(f);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>(fields));
}

}  // namespace kyoto
