// Descriptive statistics and rank-correlation helpers.
//
// The evaluation harness needs running means/extrema for metric
// aggregation, percentile summaries for timelines, and Kendall's tau
// for Figure 4 of the paper (comparing the aggressiveness order implied
// by Equation 1 against the order implied by raw LLC-miss counts, as
// the paper does citing Lapata [36]).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kyoto {

/// Incrementally accumulated summary statistics (Welford's algorithm
/// for numerically stable variance).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0 <= p <= 100) of `values` using linear
/// interpolation between closest ranks.  Returns 0 for empty input.
double percentile(std::vector<double> values, double p);

/// Kendall's tau-a rank correlation between two equally sized score
/// vectors (higher score = higher rank).  Returns a value in [-1, 1];
/// 1 means identical ordering, -1 fully reversed.  Ties count as
/// discordant-neutral (tau-a denominator n(n-1)/2).
double kendall_tau(const std::vector<double>& a, const std::vector<double>& b);

/// Kendall's tau between two permutations given as orderings of names
/// (most-X first).  Items present in one vector but not the other are
/// ignored.  This mirrors how the paper compares orders o1/o2/o3.
double kendall_tau_orders(const std::vector<std::string>& order_a,
                          const std::vector<std::string>& order_b);

/// Ordinary least squares fit y = a + b*x.  Returns {intercept, slope,
/// r^2}.  Used to verify the linearity claim of Figure 3.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace kyoto
