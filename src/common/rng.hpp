// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component of the simulator (workload reference
// streams, random replacement, sampling jitter) draws from an Rng
// seeded explicitly, so that a whole experiment is reproducible from a
// single seed.  We use xoshiro256** (public domain, Blackman & Vigna)
// seeded through SplitMix64, which is both faster and statistically
// stronger than std::minstd and has no global state.
#pragma once

#include <array>
#include <cstdint>

namespace kyoto {

/// SplitMix64 step; used to expand a single 64-bit seed into a full
/// xoshiro state.  Also usable standalone as a cheap hash.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Copyable value type: cloning an Rng clones
/// the stream, which the McSim replay monitor relies on to replay a
/// workload's future accesses without disturbing the live stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (default: fixed seed so
  /// that "unseeded" code is still deterministic).
  explicit constexpr Rng(std::uint64_t seed = 0x9c0de5eedull) { reseed(seed); }

  /// Re-seeds in place; the previous stream is discarded.
  constexpr void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound == 0 is undefined.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping is fine here: the
    // simulator does not need perfectly unbiased draws, only fast and
    // well-spread ones.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kyoto
