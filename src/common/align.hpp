// Cache-line alignment helpers for sharded hot counters.
//
// The per-socket parallel tick engine partitions all mutable
// simulation state by socket, so two worker threads never write the
// same *object* — but flat per-core / per-socket counter arrays can
// still place two sockets' elements on one host cache line, and the
// resulting false sharing serializes the very loops the partition was
// built to parallelize.  Hot slots written from inside the execution
// partition therefore live in Padded<T> elements: one slot per host
// cache line, no two sockets writing the same line.
#pragma once

#include <cstddef>

namespace kyoto {

/// Host cache-line size used for sharding.  Pinned to 64 bytes (every
/// x86-64/arm64 part this simulator runs on) rather than
/// std::hardware_destructive_interference_size, whose value is an ABI
/// hazard across compiler flags (gcc's -Winterference-size).
inline constexpr std::size_t kCacheLineBytes = 64;

/// A value padded out to its own cache line.  Used for per-core and
/// per-socket counters written concurrently by different execution
/// partitions.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};
};

}  // namespace kyoto
