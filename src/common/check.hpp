// Lightweight invariant checking.
//
// KYOTO_CHECK is an always-on assertion used at module boundaries
// (constructor preconditions, scheduler invariants).  It throws
// std::logic_error rather than aborting so tests can assert on
// violations and library users get a catchable error instead of a
// process kill.  Hot-path internal invariants use KYOTO_DCHECK, which
// compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace kyoto::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::ostringstream oss;
  oss << "KYOTO_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) oss << " — " << message;
  throw std::logic_error(oss.str());
}

}  // namespace kyoto::detail

#define KYOTO_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::kyoto::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define KYOTO_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream kyoto_check_oss;                                  \
      kyoto_check_oss << msg;                                              \
      ::kyoto::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    kyoto_check_oss.str());                \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define KYOTO_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define KYOTO_DCHECK(expr) KYOTO_CHECK(expr)
#endif
