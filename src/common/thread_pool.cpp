#include "common/thread_pool.hpp"

#include <cstdint>

#include "common/check.hpp"

namespace kyoto {

ThreadPool::ThreadPool(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int i = 1; i < lanes_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::hardware_lanes() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::drain(std::unique_lock<std::mutex>& lock) {
  bool retired_last = false;
  while (next_task_ < tasks_) {
    const std::size_t index = next_task_++;
    lock.unlock();
    (*fn_)(index);
    lock.lock();
    if (--unfinished_ == 0) retired_last = true;
  }
  return retired_last;
}

void ThreadPool::run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty()) {  // serial pool: no locking, no handoff
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  KYOTO_CHECK_MSG(fn_ == nullptr, "ThreadPool::run is not reentrant");
  fn_ = &fn;
  next_task_ = 0;
  tasks_ = tasks;
  unfinished_ = tasks;
  ++batch_;
  lock.unlock();
  work_cv_.notify_all();
  lock.lock();
  drain(lock);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  fn_ = nullptr;
  tasks_ = 0;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_batch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || (batch_ != seen_batch && fn_ != nullptr); });
    if (stop_) return;
    seen_batch = batch_;
    if (drain(lock)) done_cv_.notify_all();
  }
}

}  // namespace kyoto
