#include "sim/host_health.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "sim/farm_codec.hpp"

namespace kyoto::sim {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double BackoffPolicy::delay_s(int attempt, std::uint64_t key) const {
  if (base_s <= 0.0) return 0.0;
  const int a = std::max(attempt, 0);
  // ldexp saturates cleanly; cap before jitter so max_s bounds the
  // deterministic part and max_s * (1 + jitter_frac) bounds the total.
  const double raw = std::min(std::ldexp(base_s, std::min(a, 60)), max_s);
  const std::uint64_t h = mix64(seed ^ key ^ static_cast<std::uint64_t>(a));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return raw * (1.0 + jitter_frac * u);
}

const char* host_state_name(HostState state) {
  switch (state) {
    case HostState::kHealthy: return "healthy";
    case HostState::kQuarantined: return "quarantined";
    case HostState::kRetired: return "retired";
  }
  return "?";
}

HostHealthTracker::HostHealthTracker(std::vector<std::string> host_ids, int failure_budget,
                                     int max_quarantines, BackoffPolicy backoff)
    : failure_budget_(std::max(failure_budget, 1)),
      max_quarantines_(std::max(max_quarantines, 0)),
      backoff_(backoff) {
  KYOTO_CHECK_MSG(!host_ids.empty(), "HostHealthTracker needs at least one host");
  hosts_.reserve(host_ids.size());
  for (std::string& id : host_ids) {
    HostStats h;
    h.id = std::move(id);
    hosts_.push_back(std::move(h));
  }
}

bool HostHealthTracker::usable(int host, double t_s) {
  HostStats& h = hosts_[static_cast<std::size_t>(host)];
  if (h.state == HostState::kQuarantined && t_s >= h.quarantined_until_s) {
    h.state = HostState::kHealthy;
    note(t_s, h.id, "readmit", "quarantine expired; budget refreshed");
  }
  return h.state == HostState::kHealthy;
}

double HostHealthTracker::next_available_s() const {
  double t = std::numeric_limits<double>::infinity();
  for (const HostStats& h : hosts_) {
    if (h.state == HostState::kQuarantined) t = std::min(t, h.quarantined_until_s);
  }
  return t;
}

bool HostHealthTracker::all_retired() const {
  return std::all_of(hosts_.begin(), hosts_.end(),
                     [](const HostStats& h) { return h.state == HostState::kRetired; });
}

int HostHealthTracker::quarantine_count() const {
  int n = 0;
  for (const HostStats& h : hosts_) n += h.quarantines;
  return n;
}

void HostHealthTracker::record_dispatch(int host, double t_s, const std::string& shard) {
  HostStats& h = hosts_[static_cast<std::size_t>(host)];
  ++h.shards_dispatched;
  note(t_s, h.id, "dispatch", shard);
}

void HostHealthTracker::record_success(int host, double t_s, const std::string& shard,
                                       int jobs) {
  HostStats& h = hosts_[static_cast<std::size_t>(host)];
  ++h.shards_completed;
  h.jobs_completed += jobs;
  h.consecutive_failures = 0;  // a completed shard proves the host healthy
  note(t_s, h.id, "complete", shard + " (" + std::to_string(jobs) + " job(s))");
}

HostState HostHealthTracker::record_failure(int host, double t_s, const std::string& reason) {
  HostStats& h = hosts_[static_cast<std::size_t>(host)];
  ++h.failures;
  ++h.consecutive_failures;
  h.last_failure = reason;
  note(t_s, h.id, "failure", reason);
  if (h.consecutive_failures >= failure_budget_) {
    h.consecutive_failures = 0;
    if (h.quarantines >= max_quarantines_) {
      h.state = HostState::kRetired;
      note(t_s, h.id, "retire",
           "burned " + std::to_string(h.quarantines + 1) + " budget(s); out for this run");
      return h.state;
    }
    // Quarantine length escalates with each burned budget; jitter is
    // keyed on the host id so a fleet never thunders back as a herd.
    const double delay = backoff_.delay_s(h.quarantines, farm::fnv1a(h.id));
    ++h.quarantines;
    h.state = HostState::kQuarantined;
    h.quarantined_until_s = t_s + delay;
    std::ostringstream oss;
    oss << "budget of " << failure_budget_ << " burned; backing off " << delay << "s (until t="
        << h.quarantined_until_s << "s)";
    note(t_s, h.id, "quarantine", oss.str());
  }
  return h.state;
}

void HostHealthTracker::note(double t_s, const std::string& host, const std::string& what,
                             const std::string& detail) {
  events_.push_back(FarmEvent{t_s, host, what, detail});
}

std::string HostHealthTracker::report() const {
  std::ostringstream out;
  out << "farm report: " << hosts_.size() << " host(s)\n";
  for (const HostStats& h : hosts_) {
    out << "  host " << h.id << ": " << host_state_name(h.state) << ", dispatched "
        << h.shards_dispatched << ", completed " << h.shards_completed << " shard(s) / "
        << h.jobs_completed << " job(s), failures " << h.failures << ", quarantines "
        << h.quarantines;
    if (!h.last_failure.empty()) out << ", last failure: " << h.last_failure;
    out << '\n';
  }
  out << "events:\n";
  for (const FarmEvent& e : events_) {
    out << "  [t=" << e.t_s << "s] " << (e.host.empty() ? "<coordinator>" : e.host) << ' '
        << e.what;
    if (!e.detail.empty()) out << ": " << e.detail;
    out << '\n';
  }
  return out.str();
}

}  // namespace kyoto::sim
