// Monitor-accuracy scoring: how close does an estimator get to the
// ground-truth oracle?
//
// GroundTruthShadow (kyoto/ground_truth.hpp) records, per tick and
// per VM, the exact intrinsic pollution rate next to the rate the
// run's monitor actually charged.  This layer reduces those series to
// the three accuracy dimensions the ablation cares about:
//
//  * per-tick error — |charged − true| miss/ms over the ticks the VM
//    ran (absolute, and relative to the true rate with a floor so
//    near-zero victims don't blow up the ratio);
//  * polluter-ranking agreement (à la Fig 4) — does the estimator
//    rank the true top polluter first, tick by tick (top-1 agreement)
//    and over the whole window (Kendall's tau between the mean-rate
//    orders, the statistic the paper uses for its indicator study);
//  * time-to-detect — the first tick at which the estimator's ranking
//    puts the true aggressor on top.
//
// Scoring is pure arithmetic over recorded samples: it never touches
// the simulator, so it composes with any execution mode (serial,
// threads>1, SweepRunner lanes — the shadow series are byte-identical
// across all of them).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kyoto/ground_truth.hpp"
#include "sim/experiment.hpp"

namespace kyoto::sim {

/// Accuracy of one estimator against the shadow oracle over one run.
struct MonitorAccuracy {
  /// Ticks that entered the ranking metrics (every VM had an estimate).
  int scored_ticks = 0;
  /// VM-tick error samples behind the two error means.
  int error_samples = 0;
  double mean_abs_error = 0.0;  // miss/ms
  double mean_rel_error = 0.0;  // fraction of the true rate (floored)
  /// Fraction of scored ticks where the estimator ranked the true
  /// aggressor first.
  double top1_agreement = 0.0;
  /// Kendall's tau between the estimator's and the oracle's mean-rate
  /// orders over all VMs (1.0 = identical ranking; only meaningful
  /// with >= 2 VMs, else left at 1.0).
  double rank_tau = 1.0;
  /// First tick (Sample::tick) at which the estimator ranked the true
  /// aggressor first; -1 if it never did.
  Tick time_to_detect = -1;
  /// VM id the oracle ranks most polluting (by mean intrinsic rate).
  int true_aggressor = -1;
  /// The oracle's mean intrinsic rate per VM (by vm id), for reports.
  std::vector<double> true_mean_rate;
  /// The estimator's mean charged rate per VM (by vm id).
  std::vector<double> estimator_mean_rate;
};

/// Scores one run's shadow series (GroundTruthShadow::samples()).
/// `skip_ticks` drops the warm-up prefix (compared against
/// Sample::tick).  `rel_floor` is the denominator floor for the
/// relative error (miss/ms).  All series must have equal length (VMs
/// admitted mid-run are not scoreable).
MonitorAccuracy score_monitor_accuracy(
    const std::vector<std::vector<core::GroundTruthShadow::Sample>>& series,
    Tick skip_ticks = 0, double rel_floor = 1.0);

/// Factory for the estimator under test.
using MonitorFactory = std::function<std::unique_ptr<core::PollutionMonitor>()>;

/// One instrumented scenario: outcome plus the shadow recordings.
struct ShadowRun {
  RunOutcome outcome;
  std::vector<std::vector<core::GroundTruthShadow::Sample>> series;  // by vm id
};

/// Builds the canonical shadow-attachment observer: constructs a
/// GroundTruthShadow into `*slot`, wiring in the run's
/// PollutionController when the scheduler is a Kyoto one (so the
/// estimator column records; nullptr controller otherwise).  `slot`
/// must stay at a fixed address until the job has run — one slot per
/// job.  Shared by run_with_shadow, the ablation bench and the
/// conformance suite so controller discovery lives in one place.
HvObserver shadow_observer(std::unique_ptr<core::GroundTruthShadow>* slot);

/// Runs `plans` under KS4Xen built around `monitor` (overriding
/// spec.scheduler), with a ground-truth shadow attached from tick 0.
/// The shadow records through warm-up too; pass spec.warmup_ticks as
/// score_monitor_accuracy's skip_ticks to score the window only.
ShadowRun run_with_shadow(const RunSpec& spec, const std::vector<VmPlan>& plans,
                          const MonitorFactory& monitor);

}  // namespace kyoto::sim
