// Sharded sweep execution: one hypervisor per lane.
//
// Every paper figure is a *sweep* — N VM mixes × M schedulers, each
// needing its own solo baseline — and the jobs are completely
// independent: each one builds a private Hypervisor from its
// (RunSpec, VmPlans) and never shares simulator state with any other.
// SweepRunner exploits exactly that: jobs are submitted in order,
// executed over the common ThreadPool with whole-job granularity
// (shards share *nothing*, unlike the per-socket intra-tick
// parallelism of PR 2, which still composes: a job's RunSpec::threads
// keeps working inside a shard), and results always land in
// submission order regardless of which lane finished first.
//
// Because every job is deterministic given its spec (and
// lane-count-independent — the parallel tick engine is bit-identical
// to serial), sharded results are byte-for-byte the ones the serial
// loop produces; tests/sim/sweep_runner_test.cpp is the gate.
//
// Solo-baseline memoization.  Figure drivers re-simulate the same
// solo run once per comparison (quickstart, scheduler_tour and the
// fig benches all normalize several scenarios against one baseline).
// add_solo() therefore memoizes outcomes under a canonical key —
// (machine config, workload id, seed, measurement window) — so
// duplicate baselines simulate once and every requester gets a copy.
// The cache persists across run() batches; RunSpec::threads is
// deliberately *excluded* from the key (parallel == serial by the
// PR-2 contract, so the outcome cannot depend on it).  The scheduler
// factory is not hashable, so add_solo makes the key honest by
// construction: solo baselines always execute under the *default*
// scheduler (spec.scheduler is ignored) — baselining under a specific
// scheduler setup is a one-VM scenario, expressed with add().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hpp"

namespace kyoto {
class ThreadPool;
}

namespace kyoto::sim {

/// Canonical memoization key for a solo-baseline run: serializes the
/// machine config (topology, cache geometry, latencies, policies,
/// prefetch/bus, clock, machine seed), the workload identity, the
/// workload seed and the measurement window.  Excludes
/// RunSpec::threads (bit-identical by contract) and the scheduler
/// factory (see header comment).
std::string solo_memo_key(const RunSpec& spec, const std::string& workload_id,
                          const std::string& vm_name);

class SweepRunner {
 public:
  /// `lanes` execution lanes (the calling thread counts as one, as in
  /// ThreadPool); values < 1 clamp to 1, where run() degenerates to
  /// the plain serial loop with no pool and no locking.
  explicit SweepRunner(int lanes = 1);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int lanes() const { return lanes_; }

  /// Enqueues one scenario job; returns its index into the vector
  /// run() returns.  Plans are validated here, on the calling thread,
  /// so malformed jobs throw at submission rather than inside a lane.
  std::size_t add(RunSpec spec, std::vector<VmPlan> plans, std::string label = "");

  /// Instrumented variant: `observe` runs on the job's private
  /// hypervisor right after construction (see sim::HvObserver) —
  /// inside whichever lane executes the job, so anything it captures
  /// must be owned by this job alone (one recorder slot per job; the
  /// batch barrier publishes them).  Observers never affect outcomes:
  /// the shadow-mode conformance suite pins byte-identical results
  /// with and without them, at every lane count.
  std::size_t add(RunSpec spec, std::vector<VmPlan> plans, HvObserver observe,
                  std::string label = "");

  /// Enqueues a run-to-completion job (sim::run_to_completion): the
  /// scenario runs until plan index `target` finishes one workload
  /// run or `max_ticks` elapse, and the outcome carries only the
  /// completion instant (completion_wall_cycles / completion_ms; vms
  /// stays empty).  This is the Figs 8/12 job shape — execution-time
  /// comparisons batch through the same lanes as windowed scenarios.
  /// Never memoized and never observed.
  std::size_t add_completion(RunSpec spec, std::vector<VmPlan> plans, std::size_t target,
                             Tick max_ticks, std::string label = "");

  /// Enqueues a solo-baseline job (single VM named `vm_name`, pinned
  /// to core 0, exactly like run_solo) — always executed under the
  /// default scheduler; `spec.scheduler` is ignored (see header
  /// comment).  `workload_id` identifies the workload for memoization
  /// — two add_solo calls with equal keys simulate once and both
  /// receive the outcome.  The solo VM's metrics are outcome.vms[0].
  std::size_t add_solo(const RunSpec& spec, const WorkloadFactory& factory,
                       const std::string& workload_id, const std::string& vm_name = "solo");

  /// Number of jobs submitted and not yet run.
  std::size_t pending() const { return jobs_.size(); }

  /// Executes every pending job — deduplicated solos once, everything
  /// else one hypervisor per job — across the lanes, and returns the
  /// outcomes *in submission order* (index = the value add/add_solo
  /// returned).  Clears the batch; the solo memo cache persists, so a
  /// later batch reuses earlier baselines without re-running them.
  /// If a job throws inside a lane, the first error (in submission
  /// order) is rethrown here after the batch barrier.
  std::vector<RunOutcome> run();

  // Memoization accounting (cumulative over the runner's lifetime).
  std::uint64_t solo_requests() const { return solo_requests_; }
  std::uint64_t solo_memo_hits() const { return solo_memo_hits_; }
  /// Fraction of solo requests answered from the cache (0 when none).
  double solo_hit_rate() const {
    return solo_requests_ == 0
               ? 0.0
               : static_cast<double>(solo_memo_hits_) / static_cast<double>(solo_requests_);
  }

 private:
  struct Job {
    RunSpec spec;
    std::vector<VmPlan> plans;
    std::string label;
    /// Memo key for solo jobs; empty for plain scenario jobs.
    std::string memo_key;
    /// Observer for instrumented jobs; null otherwise.  Never set on
    /// solo jobs (memoized outcomes could not replay the observation).
    HvObserver observe;
    /// Run-to-completion jobs (add_completion): run until plan index
    /// `completion_target` finishes one workload run, instead of the
    /// warmup+measure window.
    bool completion = false;
    std::size_t completion_target = 0;
    Tick completion_max_ticks = 0;
  };

  int lanes_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // non-null only when lanes_ > 1
  std::vector<Job> jobs_;
  /// Outcomes of executed solo baselines, by memo key.
  std::unordered_map<std::string, RunOutcome> solo_cache_;
  std::uint64_t solo_requests_ = 0;
  std::uint64_t solo_memo_hits_ = 0;
};

}  // namespace kyoto::sim
