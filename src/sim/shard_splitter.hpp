// Shard splitter: partitions a validated farm batch into per-host job
// files and merges the result files back.
//
// The multi-host seam is deliberately *files*: `write_job_file` /
// `read_result_file` (sim/farm_codec.hpp) already carry jobs and
// outcomes across any transport that can move bytes — scp, NFS, a
// USB stick — so splitting a batch for N hosts is just writing N job
// files plus one manifest binding them to the exact batch
// (batch_fingerprint) and recording which host owns which slice.
//
// Merging is validate-all-before-apply: every shard's result file is
// checked — present, frame-valid, covering exactly the expected job
// ids — before a single outcome is accepted, and every problem is
// diagnosed *per host* (missing / corrupt / foreign / incomplete /
// deterministic worker failure).  A bad host can therefore never
// silently drop or corrupt a slice of a figure sweep: the merge
// either reproduces the in-process SweepRunner outcomes byte for
// byte, in submission order, or it names the hosts that failed.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/farm_codec.hpp"

namespace kyoto::sim {

/// Partitions `jobs` into shards of `jobs_per_shard` contiguous jobs
/// (0 = one shard per host, balanced), assigned round-robin to
/// `host_ids` in order.  Job ids are taken from the FarmJobs (they
/// are submission indices), so a subset batch — e.g. the undone
/// remainder after a checkpoint restore — splits just as well as a
/// full one.  Shard file names are shard<k>.jobs.kyfm /
/// shard<k>.results.kyfm, relative to the manifest's directory.
///
/// `host_weights` (optional; one entry per host, all > 0) sizes each
/// host's single shard proportionally to its capability, so a slow
/// host gets a smaller contiguous slice: quotas are apportioned by
/// largest remainder (deterministic, host-order tie-break) and a host
/// whose quota rounds to zero is omitted from the manifest.  Weights
/// require the one-shard-per-host split (jobs_per_shard == 0); the
/// default empty vector is the pre-existing even split, byte-for-byte
/// (golden manifests stay valid).
farm::ShardManifest split_batch(const std::vector<farm::FarmJob>& jobs,
                                const std::vector<std::string>& host_ids,
                                int jobs_per_shard = 0,
                                const std::vector<double>& host_weights = {});

/// Writes every shard's job file plus the manifest (manifest.kyfm)
/// into `dir` (which must exist).  `jobs` must be the same batch the
/// manifest was split from.
void write_shard_files(const std::string& dir, const farm::ShardManifest& manifest,
                       const std::vector<farm::FarmJob>& jobs);

inline std::string manifest_path(const std::string& dir) { return dir + "/manifest.kyfm"; }

/// Verdict for one shard's result file.
struct ShardCollect {
  enum class State {
    kOk,             // outcomes cover exactly the expected job ids
    kMissingFile,    // result file absent (host never finished / unreachable)
    kCorrupt,        // truncated or frame-invalid (bad bytes, checksum)
    kForeign,        // parses, but carries job ids outside this shard (or duplicates)
    kIncomplete,     // parses, but is missing some expected job ids
    kDeterministic,  // the worker reported a deterministic job failure
  };
  State state = State::kOk;
  std::string detail;                         // diagnosis; empty when kOk
  std::vector<farm::FarmOutcome> outcomes;    // populated only when kOk
};

const char* shard_collect_state_name(ShardCollect::State state);

/// Validates `result_path` against the shard's expected job ids.
/// Never throws on bad files — every failure mode becomes a State +
/// diagnosis so callers (merge, coordinator, resume) can charge the
/// owning host rather than abort.
ShardCollect collect_shard(const farm::HostShard& shard, const std::string& result_path);

/// The merge verdict: per-host lines always, outcomes only when every
/// shard validated.
struct MergeReport {
  bool complete = false;
  std::vector<RunOutcome> outcomes;  // submission order; valid iff complete
  struct HostLine {
    std::string host_id;
    std::string result_file;
    ShardCollect::State state = ShardCollect::State::kOk;
    std::string detail;
    int jobs = 0;
  };
  std::vector<HostLine> lines;

  /// Human-readable per-host summary (one line per shard).
  std::string summary() const;
};

/// Validate-all-before-apply merge of every shard result file under
/// `dir`.  Nothing is applied unless every shard validates; the
/// report diagnoses each host either way.
MergeReport merge_results(const farm::ShardManifest& manifest, const std::string& dir);

}  // namespace kyoto::sim
