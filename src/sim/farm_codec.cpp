#include "sim/farm_codec.hpp"

#include <bit>
#include <fstream>
#include <sstream>

namespace kyoto::sim::farm {
namespace {

constexpr char kMagic[4] = {'K', 'Y', 'F', 'M'};
/// magic + version + type + payload_len.
constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8;
constexpr std::size_t kChecksumBytes = 8;

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_string(std::string& out, std::string_view s) {
  if (s.size() > kMaxPayload) throw CodecError("string too large to encode");
  put_u64(out, s.size());
  out.append(s);
}

/// Bounds-checked big-endian-agnostic payload reader; every getter
/// throws CodecError on overrun so a short payload can never read
/// out of bounds.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint16_t u16() {
    need(2);
    const auto* p = data();
    pos_ += 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint64_t u64() {
    need(8);
    const auto* p = data();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    if (n > kMaxPayload) throw CodecError("decoded string length exceeds limit");
    need(static_cast<std::size_t>(n));
    std::string s(bytes_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Every payload decoder must consume the payload exactly.
  void finish() const {
    if (pos_ != bytes_.size()) throw CodecError("trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) throw CodecError("payload truncated");
  }
  const unsigned char* data() const {
    return reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

void put_metrics(std::string& out, const VmMetrics& m) {
  put_string(out, m.name);
  put_u64(out, m.instructions);
  put_u64(out, m.cycles);
  put_u64(out, m.llc_references);
  put_u64(out, m.llc_misses);
  put_f64(out, m.ipc);
  put_f64(out, m.llc_cap_act);
  put_f64(out, m.throughput);
  put_f64(out, m.cpu_share_pct);
  put_i64(out, m.punish_events);
  put_i64(out, m.punished_ticks);
}

VmMetrics get_metrics(Reader& in) {
  VmMetrics m;
  m.name = in.str();
  m.instructions = in.u64();
  m.cycles = in.u64();
  m.llc_references = in.u64();
  m.llc_misses = in.u64();
  m.ipc = in.f64();
  m.llc_cap_act = in.f64();
  m.throughput = in.f64();
  m.cpu_share_pct = in.f64();
  m.punish_events = in.i64();
  m.punished_ticks = in.i64();
  return m;
}

void write_bytes_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw CodecError("cannot open file for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) throw CodecError("short write to " + path);
}

}  // namespace

/// Shared tail of the file readers: feed the whole file through a
/// FrameReader and require it to end exactly on a frame boundary.
std::vector<Frame> read_frame_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw CodecError("cannot open frame file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  if (reader.buffered() != 0) {
    throw CodecError("truncated trailing frame in " + path);
  }
  return frames;
}

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) throw CodecError("payload too large to frame");
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  out.append(kMagic, sizeof kMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, payload.size());
  out.append(payload);
  put_u64(out, fnv1a(payload));
  return out;
}

std::string encode_job(const FarmJob& job) {
  std::string out;
  put_u64(out, job.id);
  put_string(out, job.label);
  put_string(out, job.scenario_text);
  return out;
}

FarmJob decode_job(std::string_view payload) {
  Reader in(payload);
  FarmJob job;
  job.id = in.u64();
  job.label = in.str();
  job.scenario_text = in.str();
  in.finish();
  return job;
}

std::string encode_outcome(std::uint64_t job_id, const RunOutcome& outcome) {
  std::string out;
  put_u64(out, job_id);
  put_i64(out, outcome.measured_ticks);
  put_i64(out, outcome.completion_wall_cycles);
  put_f64(out, outcome.completion_ms);
  put_u64(out, outcome.vms.size());
  for (const VmMetrics& m : outcome.vms) put_metrics(out, m);
  return out;
}

FarmOutcome decode_outcome(std::string_view payload) {
  Reader in(payload);
  FarmOutcome result;
  result.id = in.u64();
  result.outcome.measured_ticks = in.i64();
  result.outcome.completion_wall_cycles = in.i64();
  result.outcome.completion_ms = in.f64();
  const std::uint64_t vms = in.u64();
  if (vms > kMaxPayload) throw CodecError("decoded VM count exceeds limit");
  result.outcome.vms.reserve(static_cast<std::size_t>(vms));
  for (std::uint64_t i = 0; i < vms; ++i) result.outcome.vms.push_back(get_metrics(in));
  in.finish();
  return result;
}

std::string encode_error(std::uint64_t job_id, const std::string& message) {
  std::string out;
  put_u64(out, job_id);
  put_string(out, message);
  return out;
}

FarmError decode_error(std::string_view payload) {
  Reader in(payload);
  FarmError error;
  error.id = in.u64();
  error.message = in.str();
  in.finish();
  return error;
}

std::string encode_checkpoint_header(const CheckpointHeader& header) {
  std::string out;
  put_u64(out, header.fingerprint);
  put_u64(out, header.total_jobs);
  return out;
}

CheckpointHeader decode_checkpoint_header(std::string_view payload) {
  Reader in(payload);
  CheckpointHeader header;
  header.fingerprint = in.u64();
  header.total_jobs = in.u64();
  in.finish();
  return header;
}

std::string encode_manifest(const ShardManifest& manifest) {
  std::string out;
  put_u64(out, manifest.fingerprint);
  put_u64(out, manifest.total_jobs);
  put_u64(out, manifest.shards.size());
  for (const HostShard& shard : manifest.shards) {
    if (shard.labels.size() != shard.job_ids.size()) {
      throw CodecError("shard labels/job_ids size mismatch in manifest");
    }
    put_string(out, shard.host_id);
    put_string(out, shard.job_file);
    put_string(out, shard.result_file);
    put_u64(out, shard.job_ids.size());
    for (std::size_t i = 0; i < shard.job_ids.size(); ++i) {
      put_u64(out, shard.job_ids[i]);
      put_string(out, shard.labels[i]);
    }
  }
  return out;
}

ShardManifest decode_manifest(std::string_view payload) {
  Reader in(payload);
  ShardManifest manifest;
  manifest.fingerprint = in.u64();
  manifest.total_jobs = in.u64();
  const std::uint64_t shards = in.u64();
  if (shards > kMaxPayload) throw CodecError("decoded shard count exceeds limit");
  manifest.shards.reserve(static_cast<std::size_t>(shards));
  for (std::uint64_t s = 0; s < shards; ++s) {
    HostShard shard;
    shard.host_id = in.str();
    shard.job_file = in.str();
    shard.result_file = in.str();
    const std::uint64_t n = in.u64();
    if (n > kMaxPayload) throw CodecError("decoded shard job count exceeds limit");
    shard.job_ids.reserve(static_cast<std::size_t>(n));
    shard.labels.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      shard.job_ids.push_back(in.u64());
      shard.labels.push_back(in.str());
    }
    manifest.shards.push_back(std::move(shard));
  }
  in.finish();
  return manifest;
}

std::string encode_shard_owner(const ShardOwner& owner) {
  std::string out;
  put_string(out, owner.host_id);
  put_string(out, owner.result_file);
  put_u64(out, owner.job_ids.size());
  for (const std::uint64_t id : owner.job_ids) put_u64(out, id);
  return out;
}

ShardOwner decode_shard_owner(std::string_view payload) {
  Reader in(payload);
  ShardOwner owner;
  owner.host_id = in.str();
  owner.result_file = in.str();
  const std::uint64_t n = in.u64();
  if (n > kMaxPayload) throw CodecError("decoded owner job count exceeds limit");
  owner.job_ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) owner.job_ids.push_back(in.u64());
  in.finish();
  return owner;
}

void FrameReader::feed(const char* data, std::size_t n) {
  // Compact lazily: once consumed frames dominate the buffer, drop
  // their bytes so a long-lived stream doesn't grow without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, n);
}

std::optional<Frame> FrameReader::next() {
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kHeaderBytes) {
    // Reject a bad magic as soon as the first bytes disagree — no
    // point buffering a "frame" that can never become valid.
    const std::size_t have = std::min(avail, sizeof kMagic);
    if (buffer_.compare(pos_, have, kMagic, have) != 0) {
      throw CodecError("bad frame magic");
    }
    return std::nullopt;
  }
  const std::string_view head(buffer_.data() + pos_, kHeaderBytes);
  if (head.substr(0, 4) != std::string_view(kMagic, 4)) throw CodecError("bad frame magic");
  Reader header(head.substr(4));
  const std::uint16_t version = header.u16();
  if (version != kWireVersion) {
    throw CodecError("unsupported wire version " + std::to_string(version) + " (expected " +
                     std::to_string(kWireVersion) + ")");
  }
  const std::uint16_t type = header.u16();
  if (type < 1 || type > 6) throw CodecError("unknown frame type " + std::to_string(type));
  const std::uint64_t len = header.u64();
  if (len > kMaxPayload) throw CodecError("frame payload length exceeds limit");
  const std::size_t frame_bytes = kHeaderBytes + static_cast<std::size_t>(len) + kChecksumBytes;
  if (avail < frame_bytes) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buffer_, pos_ + kHeaderBytes, static_cast<std::size_t>(len));
  Reader tail(std::string_view(buffer_.data() + pos_ + kHeaderBytes + len, kChecksumBytes));
  if (tail.u64() != fnv1a(frame.payload)) throw CodecError("frame checksum mismatch");
  pos_ += frame_bytes;
  return frame;
}

std::uint64_t batch_fingerprint(const std::vector<FarmJob>& jobs) {
  std::string count;
  put_u64(count, jobs.size());
  std::uint64_t h = fnv1a(count);
  for (const FarmJob& job : jobs) {
    h = fnv1a(job.label, h);
    h = fnv1a(std::string_view("\0", 1), h);
    h = fnv1a(job.scenario_text, h);
    h = fnv1a(std::string_view("\x01", 1), h);
  }
  return h;
}

void write_job_file(const std::string& path, const std::vector<FarmJob>& jobs) {
  std::string bytes;
  for (const FarmJob& job : jobs) bytes += encode_frame(FrameType::kJob, encode_job(job));
  write_bytes_file(path, bytes);
}

std::vector<FarmJob> read_job_file(const std::string& path) {
  std::vector<FarmJob> jobs;
  for (const Frame& frame : read_frame_file(path)) {
    if (frame.type != FrameType::kJob) throw CodecError("non-job frame in job file " + path);
    jobs.push_back(decode_job(frame.payload));
  }
  return jobs;
}

void write_result_file(const std::string& path, const std::vector<FarmOutcome>& results) {
  std::string bytes;
  for (const FarmOutcome& r : results) {
    bytes += encode_frame(FrameType::kOutcome, encode_outcome(r.id, r.outcome));
  }
  write_bytes_file(path, bytes);
}

std::vector<FarmOutcome> read_result_file(const std::string& path) {
  std::vector<FarmOutcome> results;
  for (const Frame& frame : read_frame_file(path)) {
    if (frame.type != FrameType::kOutcome) {
      throw CodecError("non-outcome frame in result file " + path);
    }
    results.push_back(decode_outcome(frame.payload));
  }
  return results;
}

void write_manifest_file(const std::string& path, const ShardManifest& manifest) {
  write_bytes_file(path, encode_frame(FrameType::kHostManifest, encode_manifest(manifest)));
}

ShardManifest read_manifest_file(const std::string& path) {
  const std::vector<Frame> frames = read_frame_file(path);
  if (frames.size() != 1 || frames[0].type != FrameType::kHostManifest) {
    throw CodecError("manifest file " + path +
                     " must contain exactly one host-manifest frame");
  }
  return decode_manifest(frames[0].payload);
}

}  // namespace kyoto::sim::farm
