// Experiment harness: declarative scenario construction and metric
// collection.
//
// Every paper experiment follows the same skeleton — build a machine,
// place VMs, run, compare a VM's performance against its solo
// baseline — so the harness provides exactly that: a RunSpec (machine
// + scheduler factory + measurement window), VmPlans (config +
// workload factory + placement), windowed metrics (IPC, Equation-1
// rate), run-to-completion timing, and per-tick timeline sampling for
// the figures that plot time series (Figs 2 and 5).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "kyoto/controller.hpp"
#include "workloads/workload.hpp"

namespace kyoto::sim {

/// Factory for a workload instance (called once per vCPU; `seed`
/// varies per vCPU so clones are decorrelated).
using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>(std::uint64_t seed)>;

/// Factory for the scheduler under test.
using SchedulerFactory = std::function<std::unique_ptr<hv::Scheduler>()>;

struct ChurnPlan;  // sim/churn_engine.hpp

/// Machine + scheduler + measurement window.
struct RunSpec {
  hv::MachineConfig machine;
  SchedulerFactory scheduler = [] { return std::make_unique<hv::CreditScheduler>(); };
  /// Ticks run before measurement starts (cache warm-up).
  Tick warmup_ticks = 6;
  /// Measurement window length.
  Tick measure_ticks = 60;
  std::uint64_t seed = 42;
  /// Tick-execution threads (Hypervisor::set_execution_threads): 1 =
  /// serial engine, N > 1 runs up to min(N, sockets) socket
  /// partitions concurrently.  Results are bit-identical either way
  /// (tests/integration/parallel_equivalence_test.cpp), so this is
  /// purely a wall-clock knob.
  int threads = 1;
  /// Optional tenant churn: arrivals/departures from a deterministic
  /// trace, applied across warm-up AND measurement (the engine runs
  /// for the whole scenario).  Shared-const so RunSpec stays cheaply
  /// copyable for sweep fan-out.  Null = static scenario.
  std::shared_ptr<const ChurnPlan> churn;
};

/// One VM to place.
struct VmPlan {
  hv::VmConfig config;
  WorkloadFactory workload;
  /// One core per vCPU; the number of vCPUs equals pinned_cores.size()
  /// (at least one entry required).
  std::vector<int> pinned_cores = {0};
};

/// Windowed per-VM measurement.
struct VmMetrics {
  std::string name;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;        // on-CPU (unhalted) cycles in window
  std::uint64_t llc_references = 0;
  std::uint64_t llc_misses = 0;
  double ipc = 0.0;
  /// Equation 1 over the window: misses/ms of on-CPU time.
  double llc_cap_act = 0.0;
  /// Instructions per tick of wall time — the throughput metric used
  /// for degradation percentages (captures both IPC loss and CPU
  /// deprivation).
  double throughput = 0.0;
  /// On-CPU cycles as a percentage of ONE core's cycle budget over the
  /// window (so a multi-vCPU VM can exceed 100).  The CPU-share lever
  /// the schedulers pull: punished VMs show it dropping.
  double cpu_share_pct = 0.0;
  std::int64_t punish_events = 0;
  std::int64_t punished_ticks = 0;

  /// Exact equality — the simulator is deterministic, so equal runs
  /// produce bit-equal metrics (the sweep determinism gate relies on
  /// this; never weaken it to tolerances).
  bool operator==(const VmMetrics&) const = default;
};

struct RunOutcome {
  /// In VmPlan order.  Under churn, the VMs alive at window end in id
  /// order (plan VMs first): departed tenants are excluded here —
  /// ChurnEngine::tenants() carries their full records.
  std::vector<VmMetrics> vms;
  Tick measured_ticks = 0;
  /// Completion-mode results (run_to_completion / SweepRunner::
  /// add_completion — the Figs 8 & 12 job shape): the virtual
  /// wall-clock cycle at which the target VM finished its first
  /// workload run, and the same instant in milliseconds.  Both stay
  /// -1 for windowed scenario jobs and when the target never
  /// completed within max_ticks.
  std::int64_t completion_wall_cycles = -1;
  double completion_ms = -1.0;

  bool operator==(const RunOutcome&) const = default;
};

/// Builds the hypervisor, creates the planned VMs and returns it
/// (for experiments needing manual control).
std::unique_ptr<hv::Hypervisor> build_scenario(const RunSpec& spec,
                                               const std::vector<VmPlan>& plans);

/// Hook into a scenario's hypervisor right after construction (before
/// warm-up): the attach point for pure observers — shadow monitors,
/// timeline samplers.  An observer must not perturb the run (the
/// shadow-mode conformance suite pins that attaching one leaves every
/// trace byte-identical); state it allocates must outlive the run.
using HvObserver = std::function<void(hv::Hypervisor&)>;

/// Runs warm-up + measurement window and collects per-VM metrics.
RunOutcome run_scenario(const RunSpec& spec, const std::vector<VmPlan>& plans);
/// Same, invoking `observe` on the freshly built hypervisor first.
RunOutcome run_scenario(const RunSpec& spec, const std::vector<VmPlan>& plans,
                        const HvObserver& observe);

/// Runs until VM index `target` completes one workload run (or
/// `max_ticks` elapse); returns its execution time in virtual ms
/// (negative if it never completed).
double run_to_completion_ms(const RunSpec& spec, const std::vector<VmPlan>& plans,
                            std::size_t target, Tick max_ticks);

/// Completion-mode outcome form of run_to_completion_ms: `vms` stays
/// empty, `completion_wall_cycles`/`completion_ms` carry the target's
/// first-completion instant (-1 if it never completed).  This is the
/// job shape SweepRunner::add_completion executes, so run-to-
/// completion figures (8 and 12) batch exactly like windowed ones.
RunOutcome run_to_completion(const RunSpec& spec, const std::vector<VmPlan>& plans,
                             std::size_t target, Tick max_ticks);

/// Performance-degradation percentage used throughout the paper:
/// how much of the baseline performance is lost.
inline double degradation_pct(double baseline, double observed) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - observed) / baseline * 100.0;
}

/// Convenience: single-VM solo run of `factory` on the given machine.
VmMetrics run_solo(const RunSpec& spec, const WorkloadFactory& factory,
                   const std::string& name = "solo");

/// Per-tick time series of one VM (Figs 2 and 5).  Attach before
/// running; samples accumulate every tick.
class TimelineSampler {
 public:
  struct Sample {
    Tick tick = 0;
    std::uint64_t llc_misses = 0;   // misses during this tick
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;       // on-CPU cycles during this tick
    double rate = 0.0;              // Equation 1 for this tick
    bool ran = false;               // was scheduled this tick
    double quota = 0.0;             // pollution quota (Kyoto runs)
    bool punished = false;
  };

  /// `controller` may be null (non-Kyoto runs: quota/punished stay 0).
  TimelineSampler(hv::Hypervisor& hv, hv::Vm& vm,
                  const core::PollutionController* controller = nullptr);

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

}  // namespace kyoto::sim
