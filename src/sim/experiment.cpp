#include "sim/experiment.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "kyoto/pollution.hpp"
#include "sim/churn_engine.hpp"

namespace kyoto::sim {
namespace {

/// Seed for a spec's churn engine: decorrelated from the VmPlan
/// workload-seed chain (which starts at spec.seed itself).
std::uint64_t churn_seed(const RunSpec& spec) {
  std::uint64_t state = spec.seed ^ 0x636875726e5f7673ull;  // "churn_vs"
  return splitmix64(state);
}

/// Attaches the churn engine when the spec asks for one (before
/// warm-up, so tick-0 arrivals land exactly like planned VMs).
std::unique_ptr<ChurnEngine> maybe_churn(const RunSpec& spec, hv::Hypervisor& hv) {
  if (spec.churn == nullptr) return nullptr;
  return std::make_unique<ChurnEngine>(hv, *spec.churn, churn_seed(spec));
}

pmc::CounterSet vm_counters(hv::Vm& vm) { return vm.counters(); }

VmMetrics metrics_from_delta(const std::string& name, const pmc::CounterSet& delta,
                             KHz freq_khz, Tick window_ticks) {
  VmMetrics m;
  m.name = name;
  m.instructions = delta.get(pmc::Counter::kInstructions);
  m.cycles = delta.get(pmc::Counter::kUnhaltedCycles);
  m.llc_references = delta.get(pmc::Counter::kLlcReferences);
  m.llc_misses = delta.get(pmc::Counter::kLlcMisses);
  m.ipc = delta.ipc();
  m.llc_cap_act = core::equation1(delta, freq_khz);
  if (window_ticks > 0) {
    m.throughput = static_cast<double>(m.instructions) / static_cast<double>(window_ticks);
    const double budget =
        static_cast<double>(window_ticks) * static_cast<double>(cycles_per_tick(freq_khz));
    m.cpu_share_pct = static_cast<double>(m.cycles) / budget * 100.0;
  }
  return m;
}

}  // namespace

std::unique_ptr<hv::Hypervisor> build_scenario(const RunSpec& spec,
                                               const std::vector<VmPlan>& plans) {
  auto hv = std::make_unique<hv::Hypervisor>(spec.machine, spec.scheduler());
  hv->set_execution_threads(spec.threads);
  std::uint64_t seed = spec.seed;
  for (const auto& plan : plans) {
    KYOTO_CHECK_MSG(!plan.pinned_cores.empty(), "VmPlan needs at least one pinned core");
    KYOTO_CHECK_MSG(plan.workload != nullptr, "VmPlan needs a workload factory");
    std::vector<std::unique_ptr<workloads::Workload>> workloads;
    workloads.reserve(plan.pinned_cores.size());
    for (std::size_t i = 0; i < plan.pinned_cores.size(); ++i) {
      workloads.push_back(plan.workload(splitmix64(seed)));
      KYOTO_CHECK(workloads.back() != nullptr);
    }
    hv->create_vm(plan.config, std::move(workloads), plan.pinned_cores);
  }
  return hv;
}

RunOutcome run_scenario(const RunSpec& spec, const std::vector<VmPlan>& plans) {
  return run_scenario(spec, plans, HvObserver{});
}

RunOutcome run_scenario(const RunSpec& spec, const std::vector<VmPlan>& plans,
                        const HvObserver& observe) {
  auto hv = build_scenario(spec, plans);
  const auto churn = maybe_churn(spec, *hv);
  if (observe != nullptr) observe(*hv);
  hv->run_ticks(spec.warmup_ticks);

  // Snapshot at window start, keyed by VM id: churn can admit and
  // destroy VMs mid-window, so positional indexing into vms() would
  // misattribute baselines.  A VM admitted after the snapshot gets a
  // zero baseline — exactly right, its counters started at zero.
  const auto ids_at_start = static_cast<std::size_t>(hv->vm_count());
  std::vector<pmc::CounterSet> before(ids_at_start);
  std::vector<char> present(ids_at_start, 0);
  std::vector<std::int64_t> punish_before(ids_at_start, 0);
  std::vector<std::int64_t> punished_ticks_before(ids_at_start, 0);
  const auto* controller = [&]() -> const core::PollutionController* {
    // Expose Kyoto introspection when the scheduler is a Kyoto one.
    if (auto* ks = dynamic_cast<core::Ks4Xen*>(&hv->scheduler())) return &ks->kyoto();
    if (auto* ks = dynamic_cast<core::Ks4Linux*>(&hv->scheduler())) return &ks->kyoto();
    if (auto* ks = dynamic_cast<core::Ks4Pisces*>(&hv->scheduler())) return &ks->kyoto();
    return nullptr;
  }();
  for (hv::Vm* vm : hv->vms()) {
    const auto id = static_cast<std::size_t>(vm->id());
    before[id] = vm_counters(*vm);
    present[id] = 1;
    if (controller != nullptr) {
      punish_before[id] = controller->state(*vm).punish_events;
      punished_ticks_before[id] = controller->state(*vm).punished_ticks;
    }
  }

  hv->run_ticks(spec.measure_ticks);

  RunOutcome outcome;
  outcome.measured_ticks = spec.measure_ticks;
  for (hv::Vm* vm : hv->vms()) {
    // VMs that departed mid-window are simply absent here; the churn
    // engine keeps their lifetime records.
    const auto id = static_cast<std::size_t>(vm->id());
    const bool baselined = id < ids_at_start && present[id] != 0;
    const pmc::CounterSet delta =
        baselined ? vm_counters(*vm) - before[id] : vm_counters(*vm);
    VmMetrics m = metrics_from_delta(vm->name(), delta, hv->machine().freq_khz(),
                                     spec.measure_ticks);
    if (controller != nullptr) {
      m.punish_events =
          controller->state(*vm).punish_events - (baselined ? punish_before[id] : 0);
      m.punished_ticks = controller->state(*vm).punished_ticks -
                         (baselined ? punished_ticks_before[id] : 0);
    }
    outcome.vms.push_back(std::move(m));
  }
  return outcome;
}

double run_to_completion_ms(const RunSpec& spec, const std::vector<VmPlan>& plans,
                            std::size_t target, Tick max_ticks) {
  return run_to_completion(spec, plans, target, max_ticks).completion_ms;
}

RunOutcome run_to_completion(const RunSpec& spec, const std::vector<VmPlan>& plans,
                             std::size_t target, Tick max_ticks) {
  KYOTO_CHECK(target < plans.size());
  auto hv = build_scenario(spec, plans);
  const auto churn = maybe_churn(spec, *hv);
  // Plan VMs get the first ids and are never churned out, so the
  // target is addressable by id even when tenants come and go.
  hv::Vm& vm = hv->vm(static_cast<int>(target));
  KYOTO_CHECK_MSG(vm.vcpu(0).workload().spec().length > 0,
                  "run_to_completion needs a finite-length workload");
  hv->run_until([&] { return vm.vcpu(0).completed_runs() > 0; }, max_ticks);
  RunOutcome outcome;
  const std::int64_t wall = vm.vcpu(0).first_completion_wall_cycle();
  if (wall >= 0) {
    outcome.completion_wall_cycles = wall;
    outcome.completion_ms = cycles_to_ms(wall, hv->machine().freq_khz());
  }
  return outcome;
}

VmMetrics run_solo(const RunSpec& spec, const WorkloadFactory& factory,
                   const std::string& name) {
  VmPlan plan;
  plan.config.name = name;
  plan.workload = factory;
  plan.pinned_cores = {0};
  const RunOutcome outcome = run_scenario(spec, {plan});
  return outcome.vms.at(0);
}

TimelineSampler::TimelineSampler(hv::Hypervisor& hv, hv::Vm& vm,
                                 const core::PollutionController* controller) {
  samples_.reserve(1024);
  // The hook holds state by value; `this` only owns the sample log.
  auto last = std::make_shared<pmc::CounterSet>(vm.counters());
  auto last_sched = std::make_shared<std::int64_t>(0);
  hv::Vm* vm_ptr = &vm;
  hv.add_tick_hook([this, vm_ptr, controller, last, last_sched](hv::Hypervisor& h, Tick now) {
    const pmc::CounterSet current = vm_ptr->counters();
    const pmc::CounterSet delta = current - *last;
    *last = current;
    std::int64_t sched = 0;
    for (const auto& v : vm_ptr->vcpus()) sched += h.sched_ticks(*v);
    Sample s;
    s.tick = now;
    s.llc_misses = delta.get(pmc::Counter::kLlcMisses);
    s.instructions = delta.get(pmc::Counter::kInstructions);
    s.cycles = delta.get(pmc::Counter::kUnhaltedCycles);
    s.rate = core::equation1(delta, h.machine().freq_khz());
    s.ran = sched > *last_sched;
    *last_sched = sched;
    if (controller != nullptr) {
      const auto& st = controller->state(*vm_ptr);
      s.quota = st.quota;
      s.punished = st.punished;
    }
    samples_.push_back(s);
  });
}

}  // namespace kyoto::sim
