// Declarative scenario files.
//
// Experiments can be described in a small INI-like text format instead
// of C++, which makes the simulator usable as a standalone tool:
//
//   # two tenants on the scaled Table-1 machine under KS4Xen
//   [machine]
//   topology = 1x4            # sockets x cores-per-socket
//   scale = 64                # geometric scale of the Table-1 machine
//   prefetch = off            # off | on[:degree]
//   bus = off                 # off | on[:transfer_cycles]
//   llc_replacement = LRU     # LRU|PLRU|random|LIP|BIP|DIP
//
//   [scheduler]
//   kind = ks4xen             # xcs|cfs|pisces|ks4xen|ks4linux|ks4pisces
//   monitor = direct          # direct|mcsim|dedication (kyoto kinds only)
//   punish = block            # block|demote
//
//   [workload]
//   stream = v2               # v1 (default, bit-identical to seed
//                             # behavior) | v2 (compiled streams —
//                             # statistically equivalent, faster; see
//                             # README "Stream versioning")
//
//   [vm tenant-a]
//   app = gcc                 # catalog profile, or micro:c2rep etc.
//   cores = 0                 # comma-separated, one per vCPU
//   llc_cap = 20              # pollution permit (miss/ms); 0 = unbooked
//   loop = true
//
//   [run]
//   warmup_ticks = 6
//   measure_ticks = 60
//   threads = 1               # per-job tick-execution threads (RunSpec::threads)
//
//   [churn]                   # optional: tenants churn mid-run
//   trace = poisson           # poisson | diurnal | bursty | file:<path>
//   rate = 0.05               # expected arrivals per tick
//   mean_lifetime = 60        # ticks (geometric); 0 = tenants never leave
//   horizon = 600             # arrivals occur in ticks [0, horizon)
//   seed = 1                  # trace RNG seed (independent of [run] seed)
//   period = 200              # diurnal wave period (ticks)
//   amplitude = 0.8           # diurnal wave amplitude (0..1)
//   burst_rate = 0.005        # bursty: flash-crowd epochs per tick
//   burst_size = 8            # bursty: tenants per epoch
//   apps = gcc,micro:c2dis    # tenant app mix, round-robin per arrival
//   vcpus = 1                 # exclusively owned cores per tenant
//   max_tenants = 0           # live-tenant cap; 0 = core-bounded only
//   defer_queue = 8           # bounded deferral FIFO; overflow rejects
//   llc_cap = 20              # tenant template, plus weight/cap/loop
//
// A churning scenario may omit [vm] sections entirely (the trace
// populates the machine); a static one must define at least one.
//
// Parsing is strict: unknown sections/keys, malformed values and
// unknown applications raise std::logic_error with a line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace kyoto::sim {

/// A fully parsed scenario: ready-to-run spec + VM plans.
struct Scenario {
  RunSpec spec;
  std::vector<VmPlan> plans;
  /// Section-order names, for reporting.
  std::vector<std::string> vm_names;
  /// Reference-stream format every VM's workload factory was built
  /// with ([workload] stream = ...; v1 default).
  workloads::StreamVersion stream = workloads::StreamVersion::kV1;
};

/// Parses scenario text.  Throws std::logic_error on any syntax or
/// semantic problem, with the offending line number in the message.
Scenario parse_scenario(const std::string& text);

/// Reads and parses a scenario file from disk.
Scenario load_scenario_file(const std::string& path);

/// Renders an already-computed outcome of `scenario` as an ASCII
/// table (one row per VM) — the formatting half of
/// run_scenario_report, so sweep drivers can execute scenarios
/// through sim::SweepRunner and format afterwards.
std::string scenario_report(const Scenario& scenario, const RunOutcome& outcome);

/// Runs a parsed scenario and renders the per-VM metrics as an ASCII
/// table (one row per VM).
std::string run_scenario_report(const Scenario& scenario);

}  // namespace kyoto::sim
