// Wire format for the process farm (versioned, length-prefixed,
// checksummed frames).
//
// A farm job crosses a process boundary, so it must be *declarative*:
// RunSpec/VmPlan hold std::function factories that cannot be
// serialized, but every farm-able job is expressible in the scenario
// language (sim/scenario_file.hpp), which parses back into exactly
// those factories.  The codec therefore ships jobs as scenario text
// and results as the full RunOutcome surface, with doubles encoded as
// IEEE-754 bit patterns — decode(encode(x)) == x exactly, which is
// what lets the farm's byte-identity gate against the in-process
// SweepRunner hold through the wire.
//
// Frame layout (wire format v1, all integers little-endian):
//
//   u8[4]  magic      'K' 'Y' 'F' 'M'
//   u16    version    kWireVersion (1)
//   u16    type       FrameType
//   u64    payload_len
//   u8[payload_len]   payload
//   u64    checksum   FNV-1a 64 over the payload bytes
//
// Every field is validated on decode: bad magic, unknown version,
// oversized length and checksum mismatch raise CodecError — a worker
// emitting garbage is a *diagnosable protocol violation*, never UB.
// An incomplete frame is not an error: FrameReader buffers until the
// rest arrives (pipes deliver frames in arbitrary chunks), and only
// whole-stream consumers (file transport, checkpoint loading) treat a
// truncated trailing frame as corruption.
//
// The byte layout is pinned by golden fixtures in
// tests/sim/farm_codec_test.cpp; any change must bump kWireVersion.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.hpp"

namespace kyoto::sim::farm {

inline constexpr std::uint16_t kWireVersion = 1;
/// Upper bound on a frame payload; anything larger is a corrupt or
/// hostile length field, not a real job/outcome.
inline constexpr std::uint64_t kMaxPayload = 1ull << 28;

/// Malformed wire data (bad magic/version/length/checksum, or a
/// payload that does not parse).  Deliberately distinct from
/// std::logic_error: KYOTO_CHECK failures mean *our* bug, CodecError
/// means the peer (or the disk) handed us bytes we must reject.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint16_t {
  kJob = 1,                // coordinator -> worker: one scenario to run
  kOutcome = 2,            // worker -> coordinator: the RunOutcome
  kError = 3,              // worker -> coordinator: deterministic failure
  kCheckpointHeader = 4,   // first frame of a checkpoint file
  // Multi-host extension (additive: types 1-4 keep their v1 byte
  // layout, pinned by the goldens; a build that predates these types
  // rejects them loudly — an unreadable checkpoint restarts cleanly,
  // an unreadable manifest/stream fails with "unknown frame type").
  kHostManifest = 5,       // shard-splitter manifest (one frame per file)
  kShardOwner = 6,         // checkpoint extension: who owns an outstanding shard
};

struct Frame {
  FrameType type = FrameType::kJob;
  std::string payload;
};

/// One farm job: a scenario in the declarative text form, plus the
/// submission index it answers to and a human-readable label for
/// diagnostics.
struct FarmJob {
  std::uint64_t id = 0;
  std::string label;
  std::string scenario_text;

  bool operator==(const FarmJob&) const = default;
};

struct FarmOutcome {
  std::uint64_t id = 0;
  RunOutcome outcome;

  bool operator==(const FarmOutcome&) const = default;
};

struct FarmError {
  std::uint64_t id = 0;
  std::string message;
};

/// Binds a checkpoint file to one exact job batch: `fingerprint` is
/// batch_fingerprint() over the submitted jobs, `total_jobs` the batch
/// size.  A checkpoint whose header disagrees is for some other sweep
/// and is ignored (clean restart).
struct CheckpointHeader {
  std::uint64_t fingerprint = 0;
  std::uint64_t total_jobs = 0;
};

/// One shard of a split batch: the host it is (initially) assigned to,
/// the job/result file names (relative to the manifest's directory),
/// and the submission indices + labels it carries.  Labels ride along
/// so a merge failure can name jobs without re-reading the job file.
struct HostShard {
  std::string host_id;
  std::string job_file;
  std::string result_file;
  std::vector<std::uint64_t> job_ids;
  std::vector<std::string> labels;  // parallel to job_ids

  bool operator==(const HostShard&) const = default;
};

/// The shard splitter's output: which host owns which slice of the
/// batch, bound to the exact batch by the same fingerprint the
/// checkpoint header uses.  Serialized as a single kHostManifest
/// frame (write_manifest_file / read_manifest_file).
struct ShardManifest {
  std::uint64_t fingerprint = 0;
  std::uint64_t total_jobs = 0;
  std::vector<HostShard> shards;

  bool operator==(const ShardManifest&) const = default;
};

/// Checkpoint extension (frame type kShardOwner): records that a
/// dispatched shard is outstanding on `host_id`, expected to produce
/// `result_file` covering exactly `job_ids`.  An interrupted
/// coordinator resumes by *re-collecting* such result files from
/// still-live hosts instead of re-running their jobs.
struct ShardOwner {
  std::string host_id;
  std::string result_file;
  std::vector<std::uint64_t> job_ids;

  bool operator==(const ShardOwner&) const = default;
};

/// FNV-1a 64 over `bytes`, continuing from `seed` (chainable).
std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t seed = 14695981039346656037ull);

/// Frames `payload` for the wire (header + payload + checksum).
std::string encode_frame(FrameType type, std::string_view payload);

// Payload encoders/decoders.  Decoders throw CodecError on any
// malformed input (short payload, trailing bytes, oversized string).
std::string encode_job(const FarmJob& job);
FarmJob decode_job(std::string_view payload);
std::string encode_outcome(std::uint64_t job_id, const RunOutcome& outcome);
FarmOutcome decode_outcome(std::string_view payload);
std::string encode_error(std::uint64_t job_id, const std::string& message);
FarmError decode_error(std::string_view payload);
std::string encode_checkpoint_header(const CheckpointHeader& header);
CheckpointHeader decode_checkpoint_header(std::string_view payload);
std::string encode_manifest(const ShardManifest& manifest);
ShardManifest decode_manifest(std::string_view payload);
std::string encode_shard_owner(const ShardOwner& owner);
ShardOwner decode_shard_owner(std::string_view payload);

/// Incremental frame decoder for a byte stream delivered in arbitrary
/// chunks (pipe reads).  feed() appends bytes; next() returns the
/// next complete frame, or nullopt when more bytes are needed, and
/// throws CodecError the moment the buffered prefix cannot be a valid
/// frame (bad magic/version/length, checksum mismatch).
class FrameReader {
 public:
  void feed(const char* data, std::size_t n);
  std::optional<Frame> next();
  /// Bytes buffered but not yet consumed by a complete frame — a
  /// nonzero value at end-of-stream means a truncated frame.
  std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
};

/// Canonical fingerprint of a job batch (labels + scenario texts, in
/// submission order) — the checkpoint-binding key.
std::uint64_t batch_fingerprint(const std::vector<FarmJob>& jobs);

// File-pair transport: the multi-host form of the protocol.  A
// coordinator (or a human with scp) writes the job file, a remote
// `sweep_worker --jobs F --results G` executes it, and the result
// file travels back.  Readers validate every frame and throw
// CodecError on truncation or corruption.
void write_job_file(const std::string& path, const std::vector<FarmJob>& jobs);
std::vector<FarmJob> read_job_file(const std::string& path);
void write_result_file(const std::string& path, const std::vector<FarmOutcome>& results);
std::vector<FarmOutcome> read_result_file(const std::string& path);

/// Reads a whole frame file (any mix of frame types), rejecting
/// truncation and corruption.  The merge path uses this instead of
/// read_result_file so a worker-side deterministic failure (an error
/// frame inside the result file) is diagnosable rather than merely
/// "corrupt".
std::vector<Frame> read_frame_file(const std::string& path);

/// Shard-splitter manifest: one kHostManifest frame per file.
void write_manifest_file(const std::string& path, const ShardManifest& manifest);
ShardManifest read_manifest_file(const std::string& path);

}  // namespace kyoto::sim::farm
