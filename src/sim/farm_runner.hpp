// Process-farm sweep execution: whole-job distribution across worker
// processes, with checkpoint/resume.
//
// sim::SweepRunner shards a batch across threads of one process; the
// FarmRunner is the next multiplier: a pull-based worker pool (in the
// spirit of control-middleware job queues — workers pull jobs until
// the queue drains) where each worker is a *separate process* running
// the `sweep_worker` binary, fed (job) frames over stdin and answering
// (outcome) frames over stdout in the wire format of
// sim/farm_codec.hpp.  A file-pair form of the same protocol
// (`sweep_worker --jobs F --results G`) extends the farm to other
// hosts with nothing but file transfer.
//
// Jobs are declarative scenario texts (sim/scenario_file.hpp) because
// a process boundary cannot ship std::function factories; the worker
// parses the text back into the exact (RunSpec, VmPlans) the
// coordinator would have built, so — the simulator being
// deterministic — farm outcomes are byte-identical to the in-process
// SweepRunner at every worker count, including under injected faults
// (tests/sim/farm_fault_test.cpp is the gate).
//
// Robustness model (the point of the farm):
//  * Dead workers (crash, SIGKILL, protocol garbage) are detected via
//    pipe EOF / frame validation, reaped and respawned; their
//    in-flight job is retried — a retry re-runs a deterministic
//    simulation, so the eventual outcome is byte-identical.
//  * Hung workers are detected by a per-job wall-clock timeout,
//    killed, and handled like deaths.
//  * Retries are bounded per job; a poisoned job (fails every
//    attempt) fails the whole batch with a diagnosable error naming
//    the job — never a hang, never a silently missing result.
//  * If workers cannot be spawned at all, the batch degrades to
//    in-process execution (same outcomes, no distribution).
//  * Completed outcomes are periodically checkpointed to disk
//    (atomic tmp+rename); an interrupted sweep resumed with the same
//    job batch re-runs only the unfinished jobs.  A corrupt, partial
//    or mismatched checkpoint is detected (checksummed frames +
//    batch fingerprint) and ignored — clean restart, never UB.
//
// The coordinator is single-threaded (poll(2) over worker pipes), so
// the farm composes with everything else: each worker process can
// still use RunSpec::threads internally, and the coordinator can run
// under TSAN/ASan without special-casing.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/farm_codec.hpp"
#include "sim/host_health.hpp"

namespace kyoto::sim {

struct FarmOptions {
  /// Worker processes to keep alive.  Values < 1 clamp to 1.
  int workers = 1;
  /// Path to the `sweep_worker` binary.  Empty = run in-process (the
  /// degradation path, chosen up front).
  std::string worker_path;
  /// Extra argv entries passed to every worker after "--stdio" (the
  /// fault-injection tests use this; real deployments leave it empty).
  std::vector<std::string> worker_args;
  /// Failed attempts tolerated per job beyond which the batch fails.
  /// (A job may run up to max_retries + 1 times.)
  int max_retries = 2;
  /// Wall-clock seconds a worker may spend on one job before it is
  /// declared hung and killed; 0 disables the timeout.
  double job_timeout_s = 600.0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Completed jobs between checkpoint writes (>= 1).
  int checkpoint_every = 8;
  /// Test knob: after this many jobs complete in this run, write a
  /// checkpoint and throw FarmInterrupted — simulates an interrupted
  /// sweep deterministically.  < 0 disables.
  int abort_after_completed = -1;
  /// Backoff between worker respawns after a death/kill/timeout:
  /// exponential in the slot's consecutive deaths (reset by a
  /// completed job), with deterministic seeded jitter keyed on the
  /// slot index so a pool never respawns in lockstep.  base_s <= 0
  /// disables the delay (the pre-backoff behavior).
  BackoffPolicy respawn_backoff;
};

/// Thrown by the abort_after_completed test knob after the checkpoint
/// is flushed; a new FarmRunner with the same jobs and checkpoint
/// path resumes where this run stopped.
class FarmInterrupted : public std::runtime_error {
 public:
  FarmInterrupted(const std::string& message, int completed)
      : std::runtime_error(message), completed_(completed) {}
  int completed() const { return completed_; }

 private:
  int completed_;
};

class FarmRunner {
 public:
  explicit FarmRunner(FarmOptions options);
  ~FarmRunner();

  FarmRunner(const FarmRunner&) = delete;
  FarmRunner& operator=(const FarmRunner&) = delete;

  const FarmOptions& options() const { return options_; }

  /// Enqueues one scenario-text job; returns its index into the
  /// vector run() returns.  The text is parsed here, on the
  /// submission thread, so malformed jobs throw at add() rather than
  /// inside a worker.
  std::size_t add(std::string scenario_text, std::string label = "");

  std::size_t pending() const { return jobs_.size(); }

  /// Executes every pending job across the worker pool and returns
  /// outcomes in submission order.  Clears the batch on success.
  /// Throws FarmInterrupted for the abort_after_completed knob and
  /// std::runtime_error when a job exhausts its retries or a worker
  /// reports a deterministic error.
  std::vector<RunOutcome> run();

  // Accounting for the run() that last finished (or was interrupted).
  /// Jobs simulated this run (by workers or in-process).
  int jobs_executed() const { return executed_; }
  /// Jobs satisfied from the checkpoint without re-running.
  int jobs_restored() const { return restored_; }
  /// Workers respawned after a death/kill/timeout.
  int worker_respawns() const { return respawns_; }
  /// Failed job attempts that were retried.
  int job_retries() const { return retries_; }
  /// True when the batch ran (or finished) in-process — either
  /// requested (empty worker_path) or after spawning failed.
  bool ran_in_process() const { return ran_in_process_; }
  /// Human-readable reason when degradation or a checkpoint restart
  /// happened; empty otherwise.
  const std::string& degrade_reason() const { return degrade_reason_; }

  /// Resolves the worker binary for a driver: $KYOTO_SWEEP_WORKER if
  /// set, else a `sweep_worker` next to `argv0`, else "" (in-process).
  static std::string default_worker_path(const char* argv0);

 private:
  struct WorkerProc;
  class Impl;

  void run_in_process(std::vector<std::size_t> queue);
  void restore_checkpoint();
  void write_checkpoint();
  void after_job_completed();  // checkpoint cadence + abort knob

  FarmOptions options_;
  std::vector<farm::FarmJob> jobs_;

  // Per-run state (reset by run()).
  std::vector<RunOutcome> results_;
  std::vector<char> done_;
  int executed_ = 0;
  int restored_ = 0;
  int respawns_ = 0;
  int retries_ = 0;
  int since_checkpoint_ = 0;
  bool ran_in_process_ = false;
  std::string degrade_reason_;
};

}  // namespace kyoto::sim
