// Contention-aware VM placement (the related-work baseline family).
//
// §6's first category fights LLC contention by *where* VMs run: cache
// aware consolidation ([37] Ahn et al., [30] Paul et al., [21] ATOM).
// The paper's critique — placement is a global, NP-hard workaround
// that does not price pollution — is what Kyoto answers; this module
// implements the baseline so the comparison is honest (see
// bench_ablation_baselines and placement_test).
//
// Model: each VM has a pollution rate (Equation 1, solo) and a
// sensitivity score (how much colocated pollution hurts it).  A
// placement assigns VMs to sockets (each socket = one LLC domain,
// `cores_per_socket` slots).  The optimizer minimizes the total
// expected interference  sum_socket ( pollution(socket) *
// sensitivity(socket) ) — aggressive VMs get spread away from
// sensitive ones.  Two algorithms: first-fit (naive) and a greedy
// interference-minimizing heuristic; exhaustive search is provided
// for small instances to measure the greedy gap (placement is
// NP-hard, which is the paper's point).
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"

namespace kyoto::sim {

/// Offline profile of one VM, as a placement input.
struct VmProfile {
  std::string name;
  double pollution_rate = 0.0;  // solo Equation 1, misses/ms
  double sensitivity = 0.0;     // degradation % per unit colocated pollution
  int vcpus = 1;
};

/// A socket assignment: placement[i] = socket of VM i.
struct Placement {
  std::vector<int> socket_of;
  double interference = 0.0;  // objective value (lower is better)
};

class PlacementProblem {
 public:
  PlacementProblem(int sockets, int cores_per_socket)
      : sockets_(sockets), cores_per_socket_(cores_per_socket) {
    KYOTO_CHECK_MSG(sockets >= 1 && cores_per_socket >= 1, "degenerate topology");
  }

  /// Adds a VM; returns its index.  Throws if its vCPU count alone
  /// exceeds a socket.
  int add_vm(VmProfile profile);

  const std::vector<VmProfile>& vms() const { return vms_; }
  int sockets() const { return sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }

  /// Interference objective of an assignment (lower = better):
  /// for each socket, (sum of pollution) x (sum of sensitivity),
  /// counting only cross-VM pairs (a VM does not interfere with
  /// itself).
  double interference(const std::vector<int>& socket_of) const;

  /// True if the assignment respects per-socket core capacity.
  bool feasible(const std::vector<int>& socket_of) const;

  /// Naive first-fit by declaration order (what a placement-unaware
  /// cloud does).  Throws if the VMs do not fit at all.
  Placement first_fit() const;

  /// Greedy heuristic: VMs in decreasing pollution order, each placed
  /// on the feasible socket where it adds the least interference.
  Placement greedy() const;

  /// Greedy followed by 2-opt local search (move / swap until no
  /// improvement) — what practical consolidation managers run.
  Placement local_search() const;

  /// Exhaustive optimum (exponential; guarded to <= 12 VMs).
  Placement exhaustive() const;

 private:
  int sockets_;
  int cores_per_socket_;
  std::vector<VmProfile> vms_;
};

}  // namespace kyoto::sim
