#include "sim/placement.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace kyoto::sim {

int PlacementProblem::add_vm(VmProfile profile) {
  KYOTO_CHECK_MSG(profile.vcpus >= 1, "VM needs at least one vCPU");
  KYOTO_CHECK_MSG(profile.vcpus <= cores_per_socket_,
                  "VM '" << profile.name << "' (" << profile.vcpus
                         << " vCPUs) cannot fit on a " << cores_per_socket_
                         << "-core socket");
  vms_.push_back(std::move(profile));
  return static_cast<int>(vms_.size()) - 1;
}

double PlacementProblem::interference(const std::vector<int>& socket_of) const {
  KYOTO_CHECK_MSG(socket_of.size() == vms_.size(), "assignment size mismatch");
  double total = 0.0;
  for (int s = 0; s < sockets_; ++s) {
    // Cross-pair interference on this LLC: each VM suffers its
    // sensitivity times the pollution of *other* VMs on the socket.
    for (std::size_t i = 0; i < vms_.size(); ++i) {
      if (socket_of[i] != s) continue;
      for (std::size_t j = 0; j < vms_.size(); ++j) {
        if (i == j || socket_of[j] != s) continue;
        total += vms_[i].sensitivity * vms_[j].pollution_rate;
      }
    }
  }
  return total;
}

bool PlacementProblem::feasible(const std::vector<int>& socket_of) const {
  if (socket_of.size() != vms_.size()) return false;
  std::vector<int> used(static_cast<std::size_t>(sockets_), 0);
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const int s = socket_of[i];
    if (s < 0 || s >= sockets_) return false;
    used[static_cast<std::size_t>(s)] += vms_[i].vcpus;
    if (used[static_cast<std::size_t>(s)] > cores_per_socket_) return false;
  }
  return true;
}

Placement PlacementProblem::first_fit() const {
  std::vector<int> used(static_cast<std::size_t>(sockets_), 0);
  Placement placement;
  placement.socket_of.resize(vms_.size(), -1);
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    bool placed = false;
    for (int s = 0; s < sockets_ && !placed; ++s) {
      if (used[static_cast<std::size_t>(s)] + vms_[i].vcpus <= cores_per_socket_) {
        placement.socket_of[i] = s;
        used[static_cast<std::size_t>(s)] += vms_[i].vcpus;
        placed = true;
      }
    }
    KYOTO_CHECK_MSG(placed, "VMs do not fit on the machine (first-fit)");
  }
  placement.interference = interference(placement.socket_of);
  return placement;
}

Placement PlacementProblem::greedy() const {
  std::vector<std::size_t> order(vms_.size());
  std::iota(order.begin(), order.end(), 0u);
  // Most polluting (then most sensitive) first: the hard-to-place VMs
  // claim quiet sockets before the flexible ones fill gaps.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ka = vms_[a].pollution_rate + vms_[a].sensitivity;
    const double kb = vms_[b].pollution_rate + vms_[b].sensitivity;
    return ka > kb;
  });

  std::vector<int> used(static_cast<std::size_t>(sockets_), 0);
  std::vector<int> socket_of(vms_.size(), -1);
  for (const std::size_t i : order) {
    int best_socket = -1;
    double best_cost = std::numeric_limits<double>::max();
    for (int s = 0; s < sockets_; ++s) {
      if (used[static_cast<std::size_t>(s)] + vms_[i].vcpus > cores_per_socket_) continue;
      // Marginal interference of adding VM i to socket s.
      double cost = 0.0;
      for (std::size_t j = 0; j < vms_.size(); ++j) {
        if (socket_of[j] != s) continue;
        cost += vms_[i].sensitivity * vms_[j].pollution_rate +
                vms_[j].sensitivity * vms_[i].pollution_rate;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_socket = s;
      }
    }
    KYOTO_CHECK_MSG(best_socket >= 0, "VMs do not fit on the machine (greedy)");
    socket_of[i] = best_socket;
    used[static_cast<std::size_t>(best_socket)] += vms_[i].vcpus;
  }
  Placement placement;
  placement.socket_of = std::move(socket_of);
  placement.interference = interference(placement.socket_of);
  return placement;
}

Placement PlacementProblem::local_search() const {
  Placement placement = greedy();
  bool improved = true;
  while (improved) {
    improved = false;
    // Move: relocate one VM to another socket.
    for (std::size_t i = 0; i < vms_.size() && !improved; ++i) {
      const int original = placement.socket_of[i];
      for (int s = 0; s < sockets_ && !improved; ++s) {
        if (s == original) continue;
        placement.socket_of[i] = s;
        if (feasible(placement.socket_of)) {
          const double cost = interference(placement.socket_of);
          if (cost + 1e-12 < placement.interference) {
            placement.interference = cost;
            improved = true;
            break;
          }
        }
        placement.socket_of[i] = original;
      }
      if (!improved) placement.socket_of[i] = original;
    }
    if (improved) continue;
    // Swap: exchange the sockets of two VMs.
    for (std::size_t i = 0; i < vms_.size() && !improved; ++i) {
      for (std::size_t j = i + 1; j < vms_.size() && !improved; ++j) {
        if (placement.socket_of[i] == placement.socket_of[j]) continue;
        std::swap(placement.socket_of[i], placement.socket_of[j]);
        if (feasible(placement.socket_of)) {
          const double cost = interference(placement.socket_of);
          if (cost + 1e-12 < placement.interference) {
            placement.interference = cost;
            improved = true;
            break;
          }
        }
        std::swap(placement.socket_of[i], placement.socket_of[j]);
      }
    }
  }
  return placement;
}

Placement PlacementProblem::exhaustive() const {
  KYOTO_CHECK_MSG(vms_.size() <= 12, "exhaustive search guarded to 12 VMs (NP-hard)");
  std::vector<int> current(vms_.size(), 0);
  Placement best;
  best.interference = std::numeric_limits<double>::max();

  const auto total = static_cast<std::size_t>(vms_.size());
  while (true) {
    if (feasible(current)) {
      const double cost = interference(current);
      if (cost < best.interference) {
        best.interference = cost;
        best.socket_of = current;
      }
    }
    // Odometer increment over sockets_^n assignments.
    std::size_t pos = 0;
    while (pos < total) {
      if (++current[pos] < sockets_) break;
      current[pos] = 0;
      ++pos;
    }
    if (pos == total) break;
  }
  KYOTO_CHECK_MSG(!best.socket_of.empty(), "no feasible placement exists");
  return best;
}

}  // namespace kyoto::sim
