#include "sim/farm_runner.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "sim/scenario_file.hpp"

namespace kyoto::sim {
namespace {

using Clock = std::chrono::steady_clock;

/// The coordinator writes into pipes whose worker may have just died;
/// that must surface as EPIPE, not a process-killing SIGPIPE.  Scoped
/// to run() so library users keep their own disposition otherwise.
struct SigPipeGuard {
  struct sigaction old {};
  SigPipeGuard() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &old);
  }
  ~SigPipeGuard() { ::sigaction(SIGPIPE, &old, nullptr); }
};

bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

struct FarmRunner::WorkerProc {
  pid_t pid = -1;
  int to_fd = -1;    // coordinator -> worker stdin
  int from_fd = -1;  // worker stdout -> coordinator
  farm::FrameReader reader;
  int job = -1;  // in-flight job index; -1 when idle
  Clock::time_point deadline{};
  int completed = 0;     // jobs this process finished
  bool ever_up = false;  // slot has spawned at least once
  int deaths = 0;        // consecutive deaths (reset by a completed job)
  Clock::time_point not_before{};  // respawn backoff gate

  bool live() const { return pid > 0; }
};

/// The worker-pool coordinator for one run(): spawns workers, pumps
/// the pull protocol over poll(2), and owns every fd/pid it creates
/// (the destructor reaps unconditionally, so errors thrown mid-batch
/// never leak zombies).
class FarmRunner::Impl {
 public:
  Impl(FarmRunner& r, std::deque<std::size_t> queue)
      : r_(r), queue_(std::move(queue)), attempts_(r.jobs_.size(), 0) {
    outstanding_ = static_cast<int>(queue_.size());
    workers_.resize(static_cast<std::size_t>(r_.options_.workers));
    // argv is prepared once, before any fork: between fork and exec
    // only async-signal-safe calls are allowed (the parent may host
    // other threads, e.g. a live SweepRunner pool).
    args_.push_back(r_.options_.worker_path);
    args_.push_back("--stdio");
    for (const std::string& a : r_.options_.worker_args) args_.push_back(a);
    for (const std::string& a : args_) argv_.push_back(const_cast<char*>(a.c_str()));
    argv_.push_back(nullptr);
  }

  ~Impl() {
    for (WorkerProc& w : workers_) kill_and_reap(w);
  }

  /// Executes the queue.  Returns true on success; false when the
  /// batch should degrade to in-process execution (reason stored in
  /// r_.degrade_reason_).  Throws on exhausted retries, worker error
  /// frames, and the abort knob.
  bool run() {
    while (outstanding_ > 0) {
      if (degrade_) return false;
      spawn_and_assign();
      if (degrade_) return false;
      if (live_count() == 0) {
        // Every slot is either waiting out its respawn backoff or
        // unspawnable.  Sleep toward the earliest gate; with no gate
        // pending, spawn_and_assign really failed.
        if (const auto wake = earliest_backoff()) {
          std::this_thread::sleep_until(*wake);
          continue;
        }
        fail("no live workers and jobs remain");
      }
      pump();
    }
    return true;
  }

 private:
  int live_count() const {
    int n = 0;
    for (const WorkerProc& w : workers_) n += w.live() ? 1 : 0;
    return n;
  }

  std::optional<Clock::time_point> earliest_backoff() const {
    std::optional<Clock::time_point> wake;
    const auto now = Clock::now();
    for (const WorkerProc& w : workers_) {
      if (w.live() || w.not_before <= now) continue;
      if (!wake || w.not_before < *wake) wake = w.not_before;
    }
    return wake;
  }

  void spawn_and_assign() {
    for (WorkerProc& w : workers_) {
      if (!w.live() && !queue_.empty() && Clock::now() >= w.not_before) {
        if (!spawn(w)) {
          if (completed_by_workers_ == 0) {
            degrade("cannot spawn worker process: " + std::string(std::strerror(errno)));
            return;
          }
          fail("cannot respawn worker process: " + std::string(std::strerror(errno)));
        }
      }
      if (w.live() && w.job < 0 && !queue_.empty()) assign(w);
      if (degrade_) return;
    }
  }

  bool spawn(WorkerProc& w) {
    int to[2] = {-1, -1};
    int from[2] = {-1, -1};
    if (::pipe(to) != 0) return false;
    if (::pipe(from) != 0) {
      ::close(to[0]);
      ::close(to[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : {to[0], to[1], from[0], from[1]}) ::close(fd);
      return false;
    }
    if (pid == 0) {
      ::dup2(to[0], 0);
      ::dup2(from[1], 1);
      for (int fd : {to[0], to[1], from[0], from[1]}) ::close(fd);
      ::execv(argv_[0], argv_.data());
      ::_exit(127);  // exec failed; the parent sees EOF and degrades/fails
    }
    ::close(to[0]);
    ::close(from[1]);
    // Parent-side fds must not leak into later-forked siblings, and
    // the read side is drained non-blockingly from the poll loop.
    ::fcntl(to[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(from[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(from[0], F_SETFL, O_NONBLOCK);
    if (w.ever_up) ++r_.respawns_;
    w.pid = pid;
    w.to_fd = to[1];
    w.from_fd = from[0];
    w.reader = farm::FrameReader{};
    w.job = -1;
    w.completed = 0;
    w.ever_up = true;
    return true;
  }

  void assign(WorkerProc& w) {
    const std::size_t index = queue_.front();
    queue_.pop_front();
    const farm::FarmJob& job = r_.jobs_[index];
    const std::string frame = farm::encode_frame(farm::FrameType::kJob, farm::encode_job(job));
    w.job = static_cast<int>(index);
    w.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(r_.options_.job_timeout_s));
    if (!write_all(w.to_fd, frame)) {
      handle_death(w, "worker pipe closed while sending the job");
    }
  }

  void pump() {
    std::vector<pollfd> fds;
    std::vector<WorkerProc*> owners;
    for (WorkerProc& w : workers_) {
      if (!w.live()) continue;
      fds.push_back(pollfd{w.from_fd, POLLIN, 0});
      owners.push_back(&w);
    }
    int timeout_ms = 1000;
    if (r_.options_.job_timeout_s > 0) {
      const auto now = Clock::now();
      for (const WorkerProc* w : owners) {
        if (w->job < 0) continue;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(w->deadline - now).count();
        timeout_ms = std::min<long long>(timeout_ms, std::max<long long>(left, 0));
      }
    }
    ::poll(fds.data(), fds.size(), timeout_ms);
    for (std::size_t i = 0; i < fds.size(); ++i) {
      WorkerProc& w = *owners[i];
      if (!w.live()) continue;  // a shared-slot death already handled
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) drain(w);
    }
    if (r_.options_.job_timeout_s > 0) {
      const auto now = Clock::now();
      for (WorkerProc& w : workers_) {
        if (w.live() && w.job >= 0 && now >= w.deadline) {
          std::ostringstream oss;
          oss << "worker hung (no reply within " << r_.options_.job_timeout_s << "s)";
          handle_death(w, oss.str());
        }
      }
    }
  }

  void drain(WorkerProc& w) {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(w.from_fd, buf, sizeof buf);
      if (n > 0) {
        w.reader.feed(buf, static_cast<std::size_t>(n));
        if (!consume_frames(w)) return;  // worker was killed inside
        continue;
      }
      if (n == 0) {
        handle_death(w, "worker exited before replying");
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_death(w, std::string("read from worker failed: ") + std::strerror(errno));
      return;
    }
  }

  /// Decodes buffered frames; returns false when the worker was
  /// killed (protocol violation) and must not be read further.
  bool consume_frames(WorkerProc& w) {
    for (;;) {
      std::optional<farm::Frame> frame;
      try {
        frame = w.reader.next();
      } catch (const farm::CodecError& e) {
        handle_death(w, std::string("protocol violation: ") + e.what());
        return false;
      }
      if (!frame) return true;
      if (frame->type == farm::FrameType::kError) {
        // A deterministic failure: retrying would fail identically.
        farm::FarmError error;
        try {
          error = farm::decode_error(frame->payload);
        } catch (const farm::CodecError& e) {
          handle_death(w, std::string("protocol violation: ") + e.what());
          return false;
        }
        fail("job #" + std::to_string(error.id) + " '" + label_of(error.id) +
             "' failed deterministically in the worker: " + error.message);
      }
      if (frame->type != farm::FrameType::kOutcome || w.job < 0) {
        handle_death(w, "unexpected frame from worker");
        return false;
      }
      farm::FarmOutcome outcome;
      try {
        outcome = farm::decode_outcome(frame->payload);
      } catch (const farm::CodecError& e) {
        handle_death(w, std::string("protocol violation: ") + e.what());
        return false;
      }
      if (outcome.id != static_cast<std::uint64_t>(w.job)) {
        handle_death(w, "worker answered for the wrong job");
        return false;
      }
      const int job = w.job;
      w.job = -1;
      ++w.completed;
      w.deaths = 0;  // a finished job proves the slot healthy again
      ++completed_by_workers_;
      --outstanding_;
      r_.results_[static_cast<std::size_t>(job)] = std::move(outcome.outcome);
      r_.done_[static_cast<std::size_t>(job)] = 1;
      ++r_.executed_;
      r_.after_job_completed();  // may throw FarmInterrupted; ~Impl reaps
    }
  }

  void handle_death(WorkerProc& w, const std::string& reason) {
    const int job = w.job;
    const bool suspicious = w.completed == 0;
    kill_and_reap(w);
    if (suspicious) ++suspicious_deaths_;
    // Exponential respawn backoff, jitter-keyed on the slot index so
    // a pool of dying workers never respawns in lockstep.
    const auto slot = static_cast<std::uint64_t>(&w - workers_.data());
    const double delay = r_.options_.respawn_backoff.delay_s(w.deaths, slot);
    ++w.deaths;
    if (delay > 0) {
      w.not_before = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(delay));
    }
    // A binary that dies before ever finishing a job — exec failure,
    // wrong architecture, immediate crash — would otherwise burn every
    // job's retry budget; degrade to in-process instead.  Once any
    // worker has completed anything, deaths are real faults and go
    // through the retry budget.
    if (completed_by_workers_ == 0 && suspicious_deaths_ > static_cast<int>(workers_.size())) {
      if (job >= 0) queue_.push_front(static_cast<std::size_t>(job));
      degrade("workers keep dying before completing any job (last: " + reason + ")");
      return;
    }
    if (job >= 0) record_failure(job, reason);
  }

  void record_failure(int job, const std::string& reason) {
    ++attempts_[static_cast<std::size_t>(job)];
    ++r_.retries_;
    if (attempts_[static_cast<std::size_t>(job)] > r_.options_.max_retries) {
      fail("job #" + std::to_string(job) + " '" + label_of(static_cast<std::uint64_t>(job)) +
           "' failed after " + std::to_string(attempts_[static_cast<std::size_t>(job)]) +
           " attempt(s): " + reason);
    }
    queue_.push_front(static_cast<std::size_t>(job));
  }

  void kill_and_reap(WorkerProc& w) {
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    close_fd(w.to_fd);
    close_fd(w.from_fd);
    w.pid = -1;
    w.job = -1;
  }

  void degrade(std::string reason) {
    degrade_ = true;
    if (r_.degrade_reason_.empty()) r_.degrade_reason_ = std::move(reason);
  }

  [[noreturn]] void fail(const std::string& message) {
    // Preserve completed work for a checkpoint resume before failing.
    r_.write_checkpoint();
    throw std::runtime_error("farm: " + message);
  }

  std::string label_of(std::uint64_t id) const {
    return id < r_.jobs_.size() ? r_.jobs_[static_cast<std::size_t>(id)].label : "?";
  }

  FarmRunner& r_;
  std::deque<std::size_t> queue_;
  std::vector<int> attempts_;
  std::vector<WorkerProc> workers_;
  std::vector<std::string> args_;
  std::vector<char*> argv_;
  int outstanding_ = 0;
  int completed_by_workers_ = 0;
  int suspicious_deaths_ = 0;
  bool degrade_ = false;
};

FarmRunner::FarmRunner(FarmOptions options) : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.checkpoint_every < 1) options_.checkpoint_every = 1;
  if (options_.max_retries < 0) options_.max_retries = 0;
}

FarmRunner::~FarmRunner() = default;

std::size_t FarmRunner::add(std::string scenario_text, std::string label) {
  // Validate on the submission thread, exactly like SweepRunner::add:
  // a malformed job throws here, with the parser's line numbers, not
  // inside a worker.
  parse_scenario(scenario_text);
  farm::FarmJob job;
  job.id = jobs_.size();
  job.label = std::move(label);
  job.scenario_text = std::move(scenario_text);
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::vector<RunOutcome> FarmRunner::run() {
  const std::size_t total = jobs_.size();
  results_.assign(total, RunOutcome{});
  done_.assign(total, 0);
  executed_ = restored_ = respawns_ = retries_ = since_checkpoint_ = 0;
  ran_in_process_ = false;
  degrade_reason_.clear();

  restore_checkpoint();
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < total; ++i) {
    if (done_[i] == 0) queue.push_back(i);
  }

  if (!queue.empty()) {
    bool in_process = options_.worker_path.empty();
    if (in_process) {
      if (degrade_reason_.empty()) degrade_reason_ = "no worker binary configured";
    } else if (::access(options_.worker_path.c_str(), X_OK) != 0) {
      in_process = true;
      if (degrade_reason_.empty()) {
        degrade_reason_ = "worker binary not executable: " + options_.worker_path;
      }
    }
    if (!in_process) {
      SigPipeGuard sigpipe;
      Impl impl(*this, std::deque<std::size_t>(queue.begin(), queue.end()));
      if (impl.run()) {
        queue.clear();
      } else {
        // Degraded mid-batch: finish the undone jobs in-process.
        in_process = true;
        queue.clear();
        for (std::size_t i = 0; i < total; ++i) {
          if (done_[i] == 0) queue.push_back(i);
        }
      }
    }
    if (in_process) {
      ran_in_process_ = true;
      run_in_process(std::move(queue));
    }
  }

  // Leave a complete checkpoint behind: re-running the same batch
  // against it restores everything instead of simulating.
  write_checkpoint();
  std::vector<RunOutcome> outcomes = std::move(results_);
  jobs_.clear();
  results_.clear();
  done_.clear();
  return outcomes;
}

void FarmRunner::run_in_process(std::vector<std::size_t> queue) {
  for (const std::size_t index : queue) {
    const Scenario scenario = parse_scenario(jobs_[index].scenario_text);
    results_[index] = run_scenario(scenario.spec, scenario.plans);
    done_[index] = 1;
    ++executed_;
    after_job_completed();
  }
}

void FarmRunner::after_job_completed() {
  ++since_checkpoint_;
  if (!options_.checkpoint_path.empty() && since_checkpoint_ >= options_.checkpoint_every) {
    write_checkpoint();
  }
  if (options_.abort_after_completed >= 0 && executed_ >= options_.abort_after_completed) {
    write_checkpoint();
    throw FarmInterrupted("farm interrupted by abort_after_completed=" +
                              std::to_string(options_.abort_after_completed) + " after " +
                              std::to_string(executed_) + " completed job(s)",
                          executed_);
  }
}

void FarmRunner::write_checkpoint() {
  if (options_.checkpoint_path.empty() || done_.empty()) return;
  std::string bytes = farm::encode_frame(
      farm::FrameType::kCheckpointHeader,
      farm::encode_checkpoint_header({farm::batch_fingerprint(jobs_), jobs_.size()}));
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (done_[i] != 0) {
      bytes += farm::encode_frame(farm::FrameType::kOutcome,
                                  farm::encode_outcome(i, results_[i]));
    }
  }
  // Atomic replace: a reader (or a crash) never sees a half-written
  // checkpoint — corruption can only come from outside, and the
  // restore path treats that as a clean restart.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    KYOTO_CHECK_MSG(out.good(), "cannot write checkpoint: " << tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    KYOTO_CHECK_MSG(out.good(), "short checkpoint write: " << tmp);
  }
  KYOTO_CHECK_MSG(std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) == 0,
                  "cannot publish checkpoint: " << options_.checkpoint_path);
  since_checkpoint_ = 0;
}

void FarmRunner::restore_checkpoint() {
  if (options_.checkpoint_path.empty()) return;
  std::ifstream in(options_.checkpoint_path, std::ios::binary);
  if (!in.good()) return;  // no checkpoint yet: fresh sweep
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  // Validate the whole file before applying anything: a corrupt tail
  // must not leave half a restore behind.
  std::vector<farm::FarmOutcome> restored;
  try {
    farm::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    auto first = reader.next();
    if (!first || first->type != farm::FrameType::kCheckpointHeader) {
      throw farm::CodecError("checkpoint does not start with a header frame");
    }
    const farm::CheckpointHeader header = farm::decode_checkpoint_header(first->payload);
    if (header.fingerprint != farm::batch_fingerprint(jobs_) ||
        header.total_jobs != jobs_.size()) {
      degrade_reason_ = "checkpoint ignored: written by a different job batch";
      return;
    }
    while (auto frame = reader.next()) {
      if (frame->type == farm::FrameType::kShardOwner) {
        // A HostFarm checkpoint (owner-aware extension): the outcome
        // frames restore as usual; the owner record is validated but
        // ignored — this runner has no shard files to re-collect, so
        // the owned jobs simply re-run.
        farm::decode_shard_owner(frame->payload);
        continue;
      }
      if (frame->type != farm::FrameType::kOutcome) {
        throw farm::CodecError("unexpected frame type in checkpoint");
      }
      farm::FarmOutcome outcome = farm::decode_outcome(frame->payload);
      if (outcome.id >= jobs_.size()) throw farm::CodecError("checkpoint job id out of range");
      restored.push_back(std::move(outcome));
    }
    if (reader.buffered() != 0) throw farm::CodecError("truncated trailing frame");
  } catch (const farm::CodecError& e) {
    degrade_reason_ = std::string("checkpoint ignored (clean restart): ") + e.what();
    return;
  }
  for (farm::FarmOutcome& outcome : restored) {
    const auto index = static_cast<std::size_t>(outcome.id);
    if (done_[index] == 0) ++restored_;
    results_[index] = std::move(outcome.outcome);
    done_[index] = 1;
  }
}

std::string FarmRunner::default_worker_path(const char* argv0) {
  if (const char* env = std::getenv("KYOTO_SWEEP_WORKER"); env != nullptr && env[0] != '\0') {
    return env;
  }
  if (argv0 == nullptr) return "";
  const std::string self(argv0);
  const auto slash = self.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  const std::string candidate = dir + "/sweep_worker";
  return ::access(candidate.c_str(), X_OK) == 0 ? candidate : "";
}

}  // namespace kyoto::sim
