// Multi-host farm coordinator: a sweep batch executed across a fleet
// of (possibly flaky) hosts over the file-pair transport, with
// per-host retry budgets, quarantine/backoff, shard redistribution,
// and owner-aware checkpoint/resume.
//
// One level above sim::FarmRunner: where the process farm multiplies
// one host's cores, the HostFarm multiplies *hosts*.  A "host" here
// is anything that can run `sweep_worker --jobs F --results G` —
// locally that is the binary itself (which is how the tests and the
// CI drill simulate a fleet on one machine); on a real fleet,
// HostSpec::worker_path points at a wrapper script that ships the
// job file out and the result file back (ssh/scp, a queue, anything).
//
// Robustness model (the RDA/TANGO shape: versioned protocol +
// per-endpoint health + graceful degradation):
//  * The batch is split into shards (sim/shard_splitter.hpp); each
//    dispatch writes the shard's job file, spawns the host's worker
//    command, and validates the result file before applying anything.
//  * Every host carries a consecutive-failure budget.  Worker death,
//    a missing/corrupt/foreign/incomplete result file, or a shard
//    deadline overrun charges the budget; a burned budget quarantines
//    the host under exponential, deterministically-jittered backoff
//    (sim/host_health.hpp), and its shard goes back on the queue for
//    a healthy host.  Repeated burns retire the host for the run.
//  * When every host is retired and work remains, the farm degrades
//    to in-process execution — outcomes stay byte-identical to the
//    in-process SweepRunner; only the wall-clock story changes.
//  * A deterministic job failure (the worker answers with an error
//    frame inside the result file) fails the batch immediately,
//    naming the job — retrying elsewhere would fail identically.
//  * Checkpoints extend the FarmRunner format *additively*: the same
//    header + outcome frames, plus one kShardOwner frame per
//    outstanding shard recording which host owns it and where its
//    result file will appear.  A resumed coordinator first
//    *re-collects* those result files from hosts that finished while
//    it was down, then re-runs only what is still missing.  Builds
//    that predate the owner frame reject such checkpoints loudly and
//    restart cleanly (never a wrong merge).
//  * Every transition lands in the health tracker's event log;
//    report() is the structured, human-readable farm report.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/farm_codec.hpp"
#include "sim/host_health.hpp"
#include "sim/shard_splitter.hpp"

namespace kyoto::sim {

/// One remote executor.  `worker_path` is execv'd with
/// `--jobs <file> --results <file>` + `worker_args` appended.
struct HostSpec {
  std::string id;
  std::string worker_path;
  std::vector<std::string> worker_args;
};

struct HostFarmOptions {
  std::vector<HostSpec> hosts;
  /// Directory for shard job/result files and the manifest.  Must
  /// exist; the farm only creates files inside it.
  std::string work_dir = ".";
  /// Jobs per shard (0 = one balanced shard per host).  Smaller
  /// shards redistribute at finer granularity after a host fault.
  int jobs_per_shard = 0;
  /// Consecutive failures a host may accumulate before quarantine.
  int host_failure_budget = 2;
  /// Quarantines survived before the host is retired for the run.
  int max_quarantines = 2;
  /// Quarantine/backoff schedule (deterministic seeded jitter).
  BackoffPolicy backoff;
  /// Wall-clock seconds one shard dispatch may take before the host
  /// is declared hung (worker killed, budget charged); 0 disables.
  double shard_timeout_s = 600.0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Test knob: after this many shards complete in this run, flush a
  /// checkpoint (including owner frames for in-flight shards) and
  /// throw HostFarmInterrupted.  < 0 disables.
  int abort_after_shards = -1;
  /// Test knob: leave in-flight workers running on the abort knob
  /// instead of killing them — they finish writing their result
  /// files, which is exactly the "coordinator died, hosts lived"
  /// scenario the owner-aware resume exists for.
  bool orphan_on_abort = false;
};

/// Thrown by the abort_after_shards knob after the checkpoint flush.
class HostFarmInterrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class HostFarm {
 public:
  explicit HostFarm(HostFarmOptions options);
  ~HostFarm();

  HostFarm(const HostFarm&) = delete;
  HostFarm& operator=(const HostFarm&) = delete;

  const HostFarmOptions& options() const { return options_; }

  /// Enqueues one scenario-text job (parse-validated here, exactly
  /// like FarmRunner::add); returns its submission index.
  std::size_t add(std::string scenario_text, std::string label = "");
  std::size_t pending() const { return jobs_.size(); }

  /// Executes the batch across the hosts; outcomes in submission
  /// order, byte-identical to the in-process SweepRunner.  Throws
  /// HostFarmInterrupted (abort knob) and std::runtime_error for
  /// deterministic job failures.
  std::vector<RunOutcome> run();

  // Accounting for the run() that last finished (or was interrupted).
  int jobs_executed() const { return executed_; }        // simulated by hosts
  int jobs_restored() const { return restored_; }        // checkpoint outcome frames
  int jobs_recollected() const { return recollected_; }  // owner-frame result files
  int jobs_in_process() const { return in_process_; }    // degraded remainder
  int shard_attempts() const { return shard_attempts_; }
  int host_failure_count() const { return host_failures_; }
  bool degraded() const { return degraded_; }
  const std::string& degrade_reason() const { return degrade_reason_; }

  const HostHealthTracker* health() const { return health_.get(); }
  /// The structured farm report (per-host table + event log); empty
  /// before the first run().
  std::string report() const;

 private:
  void restore_checkpoint();
  void recollect_owned_shards();
  void write_checkpoint();
  void after_shard_completed();
  void run_in_process_remainder();
  void degrade(std::string reason);
  [[noreturn]] void fail_batch(const std::string& message);
  double now_s() const;

  HostFarmOptions options_;
  std::vector<farm::FarmJob> jobs_;

  // Per-run state.
  std::vector<RunOutcome> results_;
  std::vector<char> done_;
  std::vector<farm::ShardOwner> owners_;         // restored from the checkpoint
  std::vector<farm::ShardOwner> inflight_owners_;  // written into the checkpoint
  std::unique_ptr<HostHealthTracker> health_;
  int executed_ = 0;
  int restored_ = 0;
  int recollected_ = 0;
  int in_process_ = 0;
  int shard_attempts_ = 0;
  int host_failures_ = 0;
  int shards_completed_ = 0;
  bool degraded_ = false;
  std::string degrade_reason_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace kyoto::sim
