#include "sim/churn_engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "kyoto/controller.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"

namespace kyoto::sim {
namespace {

const core::PollutionController* find_controller(hv::Hypervisor& hv) {
  if (auto* ks = dynamic_cast<core::Ks4Xen*>(&hv.scheduler())) return &ks->kyoto();
  if (auto* ks = dynamic_cast<core::Ks4Linux*>(&hv.scheduler())) return &ks->kyoto();
  if (auto* ks = dynamic_cast<core::Ks4Pisces*>(&hv.scheduler())) return &ks->kyoto();
  return nullptr;
}

}  // namespace

ChurnEngine::ChurnEngine(hv::Hypervisor& hv, ChurnPlan plan, std::uint64_t seed)
    : hv_(hv), plan_(std::move(plan)), seed_state_(seed) {
  KYOTO_CHECK_MSG(!plan_.apps.empty(), "churn plan needs at least one app factory");
  KYOTO_CHECK_MSG(plan_.tenant_vcpus >= 1, "tenants need at least one vCPU");
  KYOTO_CHECK_MSG(plan_.defer_queue >= 0, "negative deferral queue");
  if (plan_.app_ids.empty()) {
    for (std::size_t i = 0; i < plan_.apps.size(); ++i) {
      plan_.app_ids.push_back("app" + std::to_string(i));
    }
  }
  KYOTO_CHECK_MSG(plan_.app_ids.size() == plan_.apps.size(),
                  "app_ids must parallel apps (" << plan_.app_ids.size() << " vs "
                                                 << plan_.apps.size() << ")");
  trace_ = plan_.explicit_trace.empty() ? generate_churn_trace(plan_.trace)
                                        : plan_.explicit_trace;
  controller_ = find_controller(hv_);

  // Cores already pinned by the surrounding scenario belong to its
  // static VMs forever — tenants only churn through the rest.
  core_owner_.assign(static_cast<std::size_t>(hv_.machine().topology().total_cores()), -1);
  for (hv::Vm* vm : hv_.vms()) {
    for (const auto& vcpu : vm->vcpus()) {
      core_owner_[static_cast<std::size_t>(vcpu->pinned_core())] = -2;
    }
  }

  hv_.add_tick_hook([this](hv::Hypervisor&, Tick now) { on_tick(now); });
  advance_to(hv_.now());  // tick-0 (or mid-run attach) arrivals
}

void ChurnEngine::on_tick(Tick now) {
  // Runs after the controller's own tick hook, so punishment state for
  // tick `now` is final when polled.
  poll_punishment(now);
  advance_to(now + 1);
}

void ChurnEngine::advance_to(Tick next_tick) {
  // Departures first: they free the capacity this tick's admissions
  // may need.
  while (!departures_.empty() && departures_.begin()->first <= next_tick) {
    const auto it = departures_.begin();
    depart(it->second, it->first);
    departures_.erase(it);
  }
  // Deferred arrivals retry strictly in arrival order — a later
  // arrival never jumps the queue.
  while (!deferred_.empty() && can_admit()) {
    const std::size_t tenant = deferred_.front();
    deferred_.pop_front();
    admit(tenant, next_tick);
  }
  while (next_event_ < trace_.size() && trace_[next_event_].tick <= next_tick) {
    const ChurnEvent& event = trace_[next_event_];
    ++next_event_;
    const std::size_t tenant = tenants_.size();
    TenantMetrics t;
    t.arrival_tick = event.tick;
    t.lifetime_ticks = event.lifetime;
    t.app = plan_.app_ids[tenant % plan_.apps.size()];
    tenants_.push_back(std::move(t));
    ++stats_.arrivals;
    if (deferred_.empty() && can_admit()) {
      admit(tenant, next_tick);
    } else if (deferred_.size() < static_cast<std::size_t>(plan_.defer_queue)) {
      deferred_.push_back(tenant);
      ++stats_.deferred;
    } else {
      tenants_[tenant].rejected = true;
      ++stats_.rejected;
    }
  }
}

bool ChurnEngine::can_admit() const {
  if (plan_.max_tenants > 0 &&
      live_.size() >= static_cast<std::size_t>(plan_.max_tenants)) {
    return false;
  }
  const auto free_cores = std::count(core_owner_.begin(), core_owner_.end(), -1);
  return free_cores >= plan_.tenant_vcpus;
}

void ChurnEngine::admit(std::size_t tenant, Tick now) {
  TenantMetrics& t = tenants_[tenant];
  // Lowest free cores first: deterministic placement.
  std::vector<int> cores;
  for (std::size_t c = 0; c < core_owner_.size(); ++c) {
    if (static_cast<int>(cores.size()) == plan_.tenant_vcpus) break;
    if (core_owner_[c] == -1) cores.push_back(static_cast<int>(c));
  }
  KYOTO_CHECK_MSG(static_cast<int>(cores.size()) == plan_.tenant_vcpus,
                  "admit called without capacity");
  for (int c : cores) core_owner_[static_cast<std::size_t>(c)] = static_cast<int>(tenant);

  const WorkloadFactory& app = plan_.apps[tenant % plan_.apps.size()];
  std::vector<std::unique_ptr<workloads::Workload>> workloads;
  workloads.reserve(cores.size());
  for (std::size_t i = 0; i < cores.size(); ++i) {
    workloads.push_back(app(splitmix64(seed_state_)));
    KYOTO_CHECK(workloads.back() != nullptr);
  }
  hv::VmConfig config = plan_.tenant_config;
  config.name = (config.name.empty() ? std::string("tenant") : config.name) + "-" +
                std::to_string(tenant);
  hv::Vm& vm = hv_.create_vm(config, std::move(workloads), cores);

  t.vm_id = vm.id();
  t.admitted_tick = now;
  live_.push_back(tenant);
  ++stats_.admitted;
  stats_.peak_live = std::max(stats_.peak_live, static_cast<int>(live_.size()));
  if (t.lifetime_ticks > 0) departures_.emplace(now + t.lifetime_ticks, tenant);
}

void ChurnEngine::depart(std::size_t tenant, Tick now) {
  TenantMetrics& t = tenants_[tenant];
  close_out(t);
  t.departed_tick = now;
  for (int& owner : core_owner_) {
    if (owner == static_cast<int>(tenant)) owner = -1;
  }
  hv_.destroy_vm(t.vm_id);
  live_.erase(std::remove(live_.begin(), live_.end(), tenant), live_.end());
  ++stats_.departed;
}

void ChurnEngine::close_out(TenantMetrics& t) {
  hv::Vm* vm = hv_.find_vm(t.vm_id);
  KYOTO_CHECK_MSG(vm != nullptr, "closing out tenant whose VM is already gone");
  const pmc::CounterSet counters = vm->counters();
  t.instructions = counters.get(pmc::Counter::kInstructions);
  t.cycles = counters.get(pmc::Counter::kUnhaltedCycles);
  t.llc_references = counters.get(pmc::Counter::kLlcReferences);
  t.llc_misses = counters.get(pmc::Counter::kLlcMisses);
  if (controller_ != nullptr) {
    const auto& state = controller_->state_by_id(t.vm_id);
    t.punish_events = state.punish_events;
    t.punished_ticks = state.punished_ticks;
  }
}

void ChurnEngine::poll_punishment(Tick now) {
  if (controller_ == nullptr) return;
  for (std::size_t tenant : live_) {
    TenantMetrics& t = tenants_[tenant];
    if (t.first_punished_tick >= 0) continue;
    if (controller_->state_by_id(t.vm_id).punish_events > 0) t.first_punished_tick = now;
  }
}

void ChurnEngine::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (std::size_t tenant : live_) close_out(tenants_[tenant]);
}

}  // namespace kyoto::sim
