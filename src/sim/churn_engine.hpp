// Cloud-churn scenario engine: event-driven VM arrival/departure.
//
// The paper evaluates Kyoto on static VM placements, but the system
// it targets is a public cloud where tenants come and go ("the
// provider cannot know in advance which VMs will be polluters").  The
// churn engine replays a deterministic arrival/departure trace
// (sim/churn_trace.hpp) over a live hypervisor: at each tick boundary
// it admits due arrivals as fresh VMs, evicts tenants whose lifetime
// expired (Hypervisor::destroy_vm), and records per-tenant metrics —
// including the tick at which the Kyoto controller first punished an
// arriving polluter, the time-to-detect figure.
//
// Admission control mirrors a capacity-gated cloud: a tenant needs
// `tenant_vcpus` exclusively-owned free cores and the live-tenant
// count must stay under `max_tenants`.  Arrivals that do not fit wait
// in a bounded FIFO deferral queue (retried every tick, admitted in
// arrival order); when the queue is full they are rejected.  Static
// VMs placed by the surrounding scenario own their pinned cores
// forever.
//
// Everything the engine does happens in the tick's serial epilogue
// (its tick hook) or before the run starts, never during tick
// execution — so churn preserves the simulator's bit-identical
// threading contract (tests/sim/churn_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hv/hypervisor.hpp"
#include "sim/churn_trace.hpp"
#include "sim/experiment.hpp"

namespace kyoto::core {
class PollutionController;
}

namespace kyoto::sim {

/// What churns: the trace (generated or explicit) plus the tenant
/// template each arrival instantiates.
struct ChurnPlan {
  /// Generator config; ignored when `explicit_trace` is non-empty.
  ChurnTraceConfig trace;
  /// Replay exactly these events instead of generating (the replay ==
  /// generator equivalence gate feeds a generated trace back here).
  std::vector<ChurnEvent> explicit_trace;

  /// Template VmConfig for every tenant; `name` becomes a prefix
  /// ("<name>-<tenant index>").
  hv::VmConfig tenant_config;
  /// Arrival i runs apps[i % apps.size()] — a deterministic tenant
  /// mix.  At least one factory required.
  std::vector<WorkloadFactory> apps;
  /// Labels parallel to `apps`, recorded in TenantMetrics::app.
  std::vector<std::string> app_ids;

  /// vCPUs (= exclusively owned cores) per tenant.
  int tenant_vcpus = 1;
  /// Live-tenant cap; 0 = bounded only by free cores.
  int max_tenants = 0;
  /// Deferral-queue capacity; arrivals beyond it are rejected.
  int defer_queue = 8;
};

class ChurnEngine {
 public:
  /// One tenant's life, closed out at departure (or finalize()).
  /// Counter fields are VM-lifetime totals — a tenant's counters start
  /// at zero on admission, so no baseline is needed.
  struct TenantMetrics {
    int vm_id = -1;  // -1 = never admitted (deferred forever / rejected)
    std::string app;
    Tick arrival_tick = -1;
    Tick admitted_tick = -1;   // -1 = never admitted
    Tick departed_tick = -1;   // -1 = still live (or never admitted)
    Tick lifetime_ticks = 0;   // from the trace; 0 = forever
    bool rejected = false;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t llc_references = 0;
    std::uint64_t llc_misses = 0;
    std::int64_t punish_events = 0;
    std::int64_t punished_ticks = 0;
    /// First tick the Kyoto controller had this tenant punished; -1 =
    /// never (or no Kyoto scheduler).  first_punished_tick -
    /// admitted_tick is the time-to-detect for an arriving polluter.
    Tick first_punished_tick = -1;

    bool operator==(const TenantMetrics&) const = default;
  };

  struct Stats {
    std::int64_t arrivals = 0;
    std::int64_t admitted = 0;
    std::int64_t deferred = 0;  // arrivals that waited at least one tick
    std::int64_t rejected = 0;
    std::int64_t departed = 0;
    int peak_live = 0;

    bool operator==(const Stats&) const = default;
  };

  /// Binds to a built (not yet run) hypervisor: resolves the trace,
  /// marks existing VMs' cores as statically owned, registers the
  /// tick hook and admits tick-0 arrivals.  `seed` feeds the
  /// splitmix64 chain that seeds tenant workloads (admission order),
  /// independent of the trace seed.  Must outlive the run.
  ChurnEngine(hv::Hypervisor& hv, ChurnPlan plan, std::uint64_t seed);

  ChurnEngine(const ChurnEngine&) = delete;
  ChurnEngine& operator=(const ChurnEngine&) = delete;

  /// Closes out still-live tenants' metrics (departed_tick stays -1).
  /// Idempotent; call after the run, before reading tenants().
  void finalize();

  const std::vector<TenantMetrics>& tenants() const { return tenants_; }
  const Stats& stats() const { return stats_; }
  /// The resolved event stream actually driving the run.
  const std::vector<ChurnEvent>& trace() const { return trace_; }
  int live_tenants() const { return static_cast<int>(live_.size()); }

 private:
  void on_tick(Tick now);
  /// Applies every event due strictly before `next_tick` executes:
  /// departures first (freeing capacity), then deferred retries, then
  /// new arrivals.
  void advance_to(Tick next_tick);
  bool can_admit() const;
  void admit(std::size_t tenant, Tick now);
  void depart(std::size_t tenant, Tick now);
  /// Snapshots a tenant's final counters/punishment record.
  void close_out(TenantMetrics& t);
  void poll_punishment(Tick now);

  hv::Hypervisor& hv_;
  ChurnPlan plan_;
  const core::PollutionController* controller_ = nullptr;
  std::vector<ChurnEvent> trace_;
  std::size_t next_event_ = 0;
  std::uint64_t seed_state_ = 0;

  std::vector<TenantMetrics> tenants_;
  std::vector<std::size_t> live_;      // tenant indices, admission order
  std::deque<std::size_t> deferred_;   // tenant indices, arrival order
  /// tenant index keyed by departure tick (multimap: same-tick
  /// departures processed in admission order).
  std::multimap<Tick, std::size_t> departures_;
  /// Per-core owner: -1 free, -2 static (pre-existing VM), else
  /// tenant index.
  std::vector<int> core_owner_;
  Stats stats_;
  bool finalized_ = false;
};

}  // namespace kyoto::sim
