#include "sim/host_farm.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "sim/scenario_file.hpp"

namespace kyoto::sim {
namespace {

using Clock = std::chrono::steady_clock;

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "worker ended with unrecognized status";
}

/// One in-flight shard: the child process executing it and the
/// deadline after which the owning host counts as hung.
struct Dispatch {
  std::size_t shard = 0;  // index into the run's manifest
  int host = -1;
  pid_t pid = -1;
  Clock::time_point deadline{};
  bool has_deadline = false;
};

/// Everything the dispatch engine needs from the coordinator, as
/// callbacks — keeps the engine free of HostFarm internals.
struct DispatchCallbacks {
  std::function<double()> now_s;
  std::function<void(const farm::HostShard&, const ShardCollect&)> apply;
  std::function<void()> after_shard;  // may throw (abort knob)
  std::function<void(std::string)> degrade;
  std::function<void()> on_attempt;
  std::function<void()> on_host_failure;
  std::function<void(const std::string&)> on_deterministic;  // throws
  std::function<void(std::vector<farm::ShardOwner>)> sync_inflight;
};

/// The per-run dispatch engine.  Owns the child pids it spawns; the
/// destructor kills and reaps them (unless released for the
/// orphan-on-abort drill), so a thrown batch error never leaks
/// processes.
class DispatchLoop {
 public:
  DispatchLoop(const HostFarmOptions& options, HostHealthTracker& health,
               const farm::ShardManifest& manifest, DispatchCallbacks cb)
      : options_(options), health_(health), manifest_(manifest), cb_(std::move(cb)) {
    for (std::size_t s = 0; s < manifest_.shards.size(); ++s) queue_.push_back(s);
    busy_.assign(options_.hosts.size(), false);
  }

  ~DispatchLoop() {
    if (orphaned_) return;
    for (const Dispatch& d : running_) {
      ::kill(d.pid, SIGKILL);
      int status = 0;
      while (::waitpid(d.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  void run() {
    while (!queue_.empty() || !running_.empty()) {
      assign();
      if (running_.empty()) {
        if (queue_.empty()) break;
        if (health_.all_retired()) {
          cb_.degrade("every host is retired (budgets burned) with " +
                      std::to_string(queue_.size()) + " shard(s) outstanding");
          return;
        }
        // Everyone is quarantined: sleep toward the earliest re-entry
        // (bounded, so a clock hiccup can't wedge the coordinator).
        const double wake = health_.next_available_s();
        const double now = cb_.now_s();
        const double sleep_s = std::min(std::max(wake - now, 0.001), 0.25);
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
        continue;
      }
      poll_children();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  /// Abort-knob support: leave the children running (they will finish
  /// their result files on their own) instead of killing them.
  void orphan_children() { orphaned_ = true; }

 private:
  /// Owner records for the shards currently in flight (checkpointed so
  /// a resume can re-collect their result files).
  std::vector<farm::ShardOwner> inflight_owners() const {
    std::vector<farm::ShardOwner> owners;
    for (const Dispatch& d : running_) {
      const farm::HostShard& shard = manifest_.shards[d.shard];
      owners.push_back(farm::ShardOwner{options_.hosts[static_cast<std::size_t>(d.host)].id,
                                        shard.result_file, shard.job_ids});
    }
    return owners;
  }

  void assign() {
    for (std::size_t h = 0; h < options_.hosts.size(); ++h) {
      if (queue_.empty()) return;
      if (busy_[h] || !health_.usable(static_cast<int>(h), cb_.now_s())) continue;
      // Prefer a shard whose manifest assignment is this host; taking
      // any other shard is the redistribution path.
      std::size_t pick = 0;
      bool affinity = false;
      for (std::size_t q = 0; q < queue_.size(); ++q) {
        if (manifest_.shards[queue_[q]].host_id == options_.hosts[h].id) {
          pick = q;
          affinity = true;
          break;
        }
      }
      const std::size_t shard = queue_[pick];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      if (!affinity) {
        health_.note(cb_.now_s(), options_.hosts[h].id, "redistribute",
                     manifest_.shards[shard].job_file + " (originally " +
                         manifest_.shards[shard].host_id + ")");
      }
      dispatch(shard, static_cast<int>(h));
    }
  }

  void dispatch(std::size_t shard_index, int host) {
    const farm::HostShard& shard = manifest_.shards[shard_index];
    const HostSpec& spec = options_.hosts[static_cast<std::size_t>(host)];
    const std::string job_path = options_.work_dir + "/" + shard.job_file;
    const std::string result_path = options_.work_dir + "/" + shard.result_file;
    std::remove(result_path.c_str());  // a stale (e.g. corrupt) file must not linger
    health_.record_dispatch(host, cb_.now_s(), shard.job_file);
    cb_.on_attempt();

    // argv is fully built before fork: only async-signal-safe work is
    // allowed in the child.
    std::vector<std::string> args;
    args.push_back(spec.worker_path);
    args.push_back("--jobs");
    args.push_back(job_path);
    args.push_back("--results");
    args.push_back(result_path);
    for (const std::string& a : spec.worker_args) args.push_back(a);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      requeue_after_failure(shard_index, host,
                            std::string("cannot fork worker: ") + std::strerror(errno));
      return;
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed; the parent sees status 127
    }
    Dispatch d;
    d.shard = shard_index;
    d.host = host;
    d.pid = pid;
    if (options_.shard_timeout_s > 0) {
      d.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(options_.shard_timeout_s));
      d.has_deadline = true;
    }
    running_.push_back(d);
    busy_[static_cast<std::size_t>(host)] = true;
  }

  void poll_children() {
    for (std::size_t i = 0; i < running_.size();) {
      int status = 0;
      const pid_t r = ::waitpid(running_[i].pid, &status, WNOHANG);
      if (r == running_[i].pid) {
        const Dispatch d = take(i);
        finish(d, status);
        continue;
      }
      if (r < 0 && errno != EINTR) {
        // Shouldn't happen (we own the pid); treat like a death.
        const Dispatch d = take(i);
        requeue_after_failure(d.shard, d.host,
                              std::string("waitpid failed: ") + std::strerror(errno));
        continue;
      }
      if (running_[i].has_deadline && Clock::now() >= running_[i].deadline) {
        ::kill(running_[i].pid, SIGKILL);
        while (::waitpid(running_[i].pid, &status, 0) < 0 && errno == EINTR) {
        }
        const Dispatch d = take(i);
        std::ostringstream oss;
        oss << "host hung: no result within " << options_.shard_timeout_s << "s";
        requeue_after_failure(d.shard, d.host, oss.str());
        continue;
      }
      ++i;
    }
  }

  /// Removes running_[i] (freeing its host) and returns it by value.
  Dispatch take(std::size_t i) {
    const Dispatch d = running_[i];
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
    busy_[static_cast<std::size_t>(d.host)] = false;
    return d;
  }

  void finish(const Dispatch& d, int status) {
    const farm::HostShard& shard = manifest_.shards[d.shard];
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      requeue_after_failure(d.shard, d.host, describe_exit(status));
      return;
    }
    const ShardCollect collect =
        collect_shard(shard, options_.work_dir + "/" + shard.result_file);
    if (collect.state == ShardCollect::State::kOk) {
      health_.record_success(d.host, cb_.now_s(), shard.job_file,
                             static_cast<int>(collect.outcomes.size()));
      cb_.apply(shard, collect);
      cb_.sync_inflight(inflight_owners());
      cb_.after_shard();  // may throw (abort knob); our destructor cleans up
      return;
    }
    if (collect.state == ShardCollect::State::kDeterministic) {
      // Re-running would fail identically on any host: fail the batch
      // now, naming the job (FarmRunner's error-frame semantics).
      cb_.sync_inflight(inflight_owners());
      cb_.on_deterministic(collect.detail);  // throws
    }
    requeue_after_failure(d.shard, d.host,
                          std::string(shard_collect_state_name(collect.state)) +
                              (collect.detail.empty() ? "" : ": " + collect.detail));
  }

  void requeue_after_failure(std::size_t shard_index, int host, const std::string& reason) {
    cb_.on_host_failure();
    health_.record_failure(host, cb_.now_s(),
                           manifest_.shards[shard_index].job_file + ": " + reason);
    queue_.push_front(shard_index);
  }

  const HostFarmOptions& options_;
  HostHealthTracker& health_;
  const farm::ShardManifest& manifest_;
  DispatchCallbacks cb_;

  std::deque<std::size_t> queue_;
  std::vector<Dispatch> running_;
  std::vector<bool> busy_;
  bool orphaned_ = false;
};

}  // namespace

HostFarm::HostFarm(HostFarmOptions options) : options_(std::move(options)) {
  if (options_.host_failure_budget < 1) options_.host_failure_budget = 1;
  if (options_.max_quarantines < 0) options_.max_quarantines = 0;
  for (std::size_t i = 0; i < options_.hosts.size(); ++i) {
    KYOTO_CHECK_MSG(!options_.hosts[i].id.empty(), "HostFarm: host id must be non-empty");
    for (std::size_t j = i + 1; j < options_.hosts.size(); ++j) {
      KYOTO_CHECK_MSG(options_.hosts[i].id != options_.hosts[j].id,
                      "HostFarm: duplicate host id " << options_.hosts[i].id);
    }
  }
}

HostFarm::~HostFarm() = default;

std::size_t HostFarm::add(std::string scenario_text, std::string label) {
  parse_scenario(scenario_text);  // malformed jobs throw here, with parser diagnostics
  farm::FarmJob job;
  job.id = jobs_.size();
  job.label = std::move(label);
  job.scenario_text = std::move(scenario_text);
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::vector<RunOutcome> HostFarm::run() {
  const std::size_t total = jobs_.size();
  results_.assign(total, RunOutcome{});
  done_.assign(total, 0);
  owners_.clear();
  inflight_owners_.clear();
  executed_ = restored_ = recollected_ = in_process_ = 0;
  shard_attempts_ = host_failures_ = shards_completed_ = 0;
  degraded_ = false;
  degrade_reason_.clear();
  t0_ = std::chrono::steady_clock::now();

  std::vector<std::string> host_ids;
  host_ids.reserve(options_.hosts.size());
  for (const HostSpec& h : options_.hosts) host_ids.push_back(h.id);
  health_ = host_ids.empty()
                ? nullptr
                : std::make_unique<HostHealthTracker>(host_ids, options_.host_failure_budget,
                                                      options_.max_quarantines,
                                                      options_.backoff);

  restore_checkpoint();
  recollect_owned_shards();

  std::vector<farm::FarmJob> remaining;
  for (std::size_t i = 0; i < total; ++i) {
    if (done_[i] == 0) remaining.push_back(jobs_[i]);
  }

  if (!remaining.empty() && health_ != nullptr) {
    const farm::ShardManifest manifest =
        split_batch(remaining, host_ids, options_.jobs_per_shard);
    write_shard_files(options_.work_dir, manifest, remaining);

    DispatchCallbacks cb;
    cb.now_s = [this] { return now_s(); };
    cb.apply = [this](const farm::HostShard&, const ShardCollect& collect) {
      for (const farm::FarmOutcome& outcome : collect.outcomes) {
        const auto index = static_cast<std::size_t>(outcome.id);
        KYOTO_CHECK(index < done_.size() && done_[index] == 0);
        results_[index] = outcome.outcome;
        done_[index] = 1;
        ++executed_;
      }
      ++shards_completed_;
    };
    cb.after_shard = [this] { after_shard_completed(); };
    cb.degrade = [this](std::string reason) { degrade(std::move(reason)); };
    cb.on_attempt = [this] { ++shard_attempts_; };
    cb.on_host_failure = [this] { ++host_failures_; };
    cb.on_deterministic = [this](const std::string& detail) { fail_batch(detail); };
    cb.sync_inflight = [this](std::vector<farm::ShardOwner> owners) {
      inflight_owners_ = std::move(owners);
    };

    DispatchLoop loop(options_, *health_, manifest, std::move(cb));
    try {
      loop.run();
    } catch (...) {
      if (options_.orphan_on_abort) loop.orphan_children();
      throw;
    }
    inflight_owners_.clear();  // the loop drained: nothing is in flight
  } else if (!remaining.empty()) {
    degrade("no hosts configured");
  }

  run_in_process_remainder();
  write_checkpoint();

  std::vector<RunOutcome> outcomes = std::move(results_);
  jobs_.clear();
  results_.clear();
  done_.clear();
  return outcomes;
}

void HostFarm::run_in_process_remainder() {
  for (std::size_t i = 0; i < done_.size(); ++i) {
    if (done_[i] != 0) continue;
    if (health_ != nullptr) {
      health_->note(now_s(), "", "in-process",
                    "job #" + std::to_string(i) + " '" + jobs_[i].label + "'");
    }
    try {
      const Scenario scenario = parse_scenario(jobs_[i].scenario_text);
      results_[i] = run_scenario(scenario.spec, scenario.plans);
    } catch (const std::exception& e) {
      fail_batch("job #" + std::to_string(i) + " '" + jobs_[i].label +
                 "' failed deterministically: " + e.what());
    }
    done_[i] = 1;
    ++in_process_;
  }
}

void HostFarm::degrade(std::string reason) {
  degraded_ = true;
  if (degrade_reason_.empty()) degrade_reason_ = reason;
  if (health_ != nullptr) health_->note(now_s(), "", "degrade", std::move(reason));
}

void HostFarm::fail_batch(const std::string& message) {
  write_checkpoint();  // preserve completed work for a resume
  throw std::runtime_error("host farm: " + message);
}

void HostFarm::after_shard_completed() {
  if (!options_.checkpoint_path.empty()) write_checkpoint();
  if (options_.abort_after_shards >= 0 && shards_completed_ >= options_.abort_after_shards) {
    throw HostFarmInterrupted("host farm interrupted by abort_after_shards=" +
                              std::to_string(options_.abort_after_shards) + " after " +
                              std::to_string(shards_completed_) + " completed shard(s)");
  }
}

void HostFarm::write_checkpoint() {
  if (options_.checkpoint_path.empty() || done_.empty()) return;
  std::string bytes = farm::encode_frame(
      farm::FrameType::kCheckpointHeader,
      farm::encode_checkpoint_header({farm::batch_fingerprint(jobs_), jobs_.size()}));
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (done_[i] != 0) {
      bytes +=
          farm::encode_frame(farm::FrameType::kOutcome, farm::encode_outcome(i, results_[i]));
    }
  }
  // The owner extension: one frame per in-flight shard, so a resumed
  // coordinator knows which result files may appear without it.
  for (const farm::ShardOwner& owner : inflight_owners_) {
    bytes += farm::encode_frame(farm::FrameType::kShardOwner, farm::encode_shard_owner(owner));
  }
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    KYOTO_CHECK_MSG(out.good(), "cannot write checkpoint: " << tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    KYOTO_CHECK_MSG(out.good(), "short checkpoint write: " << tmp);
  }
  KYOTO_CHECK_MSG(std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) == 0,
                  "cannot publish checkpoint: " << options_.checkpoint_path);
}

void HostFarm::restore_checkpoint() {
  if (options_.checkpoint_path.empty()) return;
  std::ifstream in(options_.checkpoint_path, std::ios::binary);
  if (!in.good()) return;  // fresh sweep
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  // Validate the whole file before applying anything (FarmRunner's
  // rule): a corrupt tail must not leave half a restore behind.
  std::vector<farm::FarmOutcome> restored;
  std::vector<farm::ShardOwner> owners;
  try {
    farm::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    auto first = reader.next();
    if (!first || first->type != farm::FrameType::kCheckpointHeader) {
      throw farm::CodecError("checkpoint does not start with a header frame");
    }
    const farm::CheckpointHeader header = farm::decode_checkpoint_header(first->payload);
    if (header.fingerprint != farm::batch_fingerprint(jobs_) ||
        header.total_jobs != jobs_.size()) {
      degrade_reason_ = "checkpoint ignored: written by a different job batch";
      if (health_ != nullptr) health_->note(now_s(), "", "restart", degrade_reason_);
      return;
    }
    while (auto frame = reader.next()) {
      if (frame->type == farm::FrameType::kOutcome) {
        farm::FarmOutcome outcome = farm::decode_outcome(frame->payload);
        if (outcome.id >= jobs_.size()) throw farm::CodecError("checkpoint job id out of range");
        restored.push_back(std::move(outcome));
      } else if (frame->type == farm::FrameType::kShardOwner) {
        farm::ShardOwner owner = farm::decode_shard_owner(frame->payload);
        for (const std::uint64_t id : owner.job_ids) {
          if (id >= jobs_.size()) throw farm::CodecError("owner-frame job id out of range");
        }
        if (owner.result_file.find('/') != std::string::npos) {
          throw farm::CodecError("owner-frame result file must be a bare name");
        }
        owners.push_back(std::move(owner));
      } else {
        throw farm::CodecError("unexpected frame type in checkpoint");
      }
    }
    if (reader.buffered() != 0) throw farm::CodecError("truncated trailing frame");
  } catch (const farm::CodecError& e) {
    degrade_reason_ = std::string("checkpoint ignored (clean restart): ") + e.what();
    if (health_ != nullptr) health_->note(now_s(), "", "restart", degrade_reason_);
    return;
  }
  for (farm::FarmOutcome& outcome : restored) {
    const auto index = static_cast<std::size_t>(outcome.id);
    if (done_[index] == 0) ++restored_;
    results_[index] = std::move(outcome.outcome);
    done_[index] = 1;
  }
  owners_ = std::move(owners);
}

void HostFarm::recollect_owned_shards() {
  for (const farm::ShardOwner& owner : owners_) {
    // Reconstruct the shard's validation surface from the owner frame.
    farm::HostShard shard;
    shard.host_id = owner.host_id;
    shard.result_file = owner.result_file;
    shard.job_ids = owner.job_ids;
    shard.labels.reserve(owner.job_ids.size());
    for (const std::uint64_t id : owner.job_ids) {
      shard.labels.push_back(jobs_[static_cast<std::size_t>(id)].label);
    }
    const ShardCollect collect =
        collect_shard(shard, options_.work_dir + "/" + owner.result_file);
    if (collect.state != ShardCollect::State::kOk) {
      if (health_ != nullptr) {
        health_->note(now_s(), owner.host_id, "recollect-miss",
                      owner.result_file + ": " +
                          std::string(shard_collect_state_name(collect.state)) +
                          (collect.detail.empty() ? "" : " — " + collect.detail) +
                          "; will re-run");
      }
      continue;
    }
    int applied = 0;
    for (const farm::FarmOutcome& outcome : collect.outcomes) {
      const auto index = static_cast<std::size_t>(outcome.id);
      if (done_[index] != 0) continue;
      results_[index] = outcome.outcome;
      done_[index] = 1;
      ++recollected_;
      ++applied;
    }
    if (health_ != nullptr) {
      health_->note(now_s(), owner.host_id, "recollect",
                    owner.result_file + ": " + std::to_string(applied) +
                        " job(s) collected without re-running");
    }
  }
  owners_.clear();
}

double HostFarm::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

std::string HostFarm::report() const {
  std::ostringstream out;
  out << "host farm: " << executed_ << " executed on hosts, " << restored_
      << " restored from checkpoint, " << recollected_ << " re-collected from owners, "
      << in_process_ << " in-process; " << shard_attempts_ << " shard attempt(s), "
      << host_failures_ << " host failure(s)";
  if (degraded_) out << "; DEGRADED: " << degrade_reason_;
  out << '\n';
  if (health_ != nullptr) out << health_->report();
  return out.str();
}

}  // namespace kyoto::sim
