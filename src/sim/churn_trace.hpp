// Deterministic VM arrival/departure traces for the churn engine.
//
// A trace is a tick-ordered list of tenant arrivals, each carrying a
// lifetime; the engine derives departures (admission tick + lifetime).
// Three seeded generators cover the shapes real multi-tenant hosts
// see, and a plain text format makes any trace replayable:
//
//  * Poisson — a Bernoulli arrival process per 10 ms tick (the
//    discrete-time Poisson process): inter-arrival gaps are geometric,
//    the discrete analogue of exponential.  Lifetimes are geometric
//    with the configured mean (discrete exponential, again).
//  * diurnal — the Poisson process thinned by a triangular day/night
//    wave: rate(t) = base * (1 + amplitude * tri(t / period)), where
//    tri is a triangle wave in [-1, 1].  (A triangle instead of a
//    sine keeps the generator free of libm calls, so golden trace
//    fingerprints are identical on every platform.)
//  * bursty — the Poisson baseline plus flash crowds: burst epochs
//    arrive as their own Bernoulli process and each epoch lands
//    `burst_size` tenants on the same tick.
//
// Generation order is fixed (per tick: arrival draw(s), then one
// lifetime draw per arrival), so a (config, seed) pair maps to
// exactly one event stream — tests/sim/churn_trace_test.cpp pins FNV
// fingerprints per seed and chi-square gates the distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace kyoto::sim {

/// One tenant arrival.  `lifetime` is the number of ticks between
/// admission and departure; 0 means the tenant never leaves.
struct ChurnEvent {
  Tick tick = 0;
  Tick lifetime = 0;

  bool operator==(const ChurnEvent&) const = default;
};

struct ChurnTraceConfig {
  enum class Kind { kPoisson, kDiurnal, kBursty };

  Kind kind = Kind::kPoisson;
  /// Expected arrivals per tick (Bernoulli probability; must be < 1).
  double arrival_rate = 0.05;
  /// Mean tenant lifetime in ticks (geometric); <= 0 = tenants stay
  /// forever (lifetime 0).
  double mean_lifetime_ticks = 60.0;
  /// Arrivals are generated for ticks [0, horizon_ticks).
  Tick horizon_ticks = 600;
  /// Diurnal wave period and relative amplitude (0..1).
  Tick period_ticks = 200;
  double amplitude = 0.8;
  /// Bursty: expected flash-crowd epochs per tick, tenants per epoch.
  double burst_rate = 0.005;
  int burst_size = 8;
  std::uint64_t seed = 1;
};

const char* churn_kind_name(ChurnTraceConfig::Kind kind);

/// Generates the (config, seed)-deterministic arrival stream,
/// tick-ordered (same-tick arrivals in draw order).
std::vector<ChurnEvent> generate_churn_trace(const ChurnTraceConfig& config);

/// Canonical text form: one "tick lifetime" line per event, trailing
/// newline, '#' comments and blank lines ignored by the parser.
std::string format_churn_trace(const std::vector<ChurnEvent>& trace);
/// Parses the text form; throws std::runtime_error on malformed input
/// or out-of-order ticks.
std::vector<ChurnEvent> parse_churn_trace(const std::string& text);

/// FNV-1a 64 over the canonical text form — the golden-pin identity
/// of a trace.
std::uint64_t churn_trace_fingerprint(const std::vector<ChurnEvent>& trace);

}  // namespace kyoto::sim
