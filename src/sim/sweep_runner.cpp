#include "sim/sweep_runner.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace kyoto::sim {
namespace {

/// Serializes one cache level compactly ("size/ways/line").
void append_geometry(std::ostringstream& out, const cache::CacheGeometry& g) {
  out << g.size << '/' << g.ways << '/' << g.line << ';';
}

}  // namespace

std::string solo_memo_key(const RunSpec& spec, const std::string& workload_id,
                          const std::string& vm_name) {
  const hv::MachineConfig& m = spec.machine;
  std::ostringstream key;
  key << m.topology.sockets << 'x' << m.topology.cores_per_socket << ';';
  append_geometry(key, m.mem.l1);
  append_geometry(key, m.mem.l2);
  append_geometry(key, m.mem.llc);
  key << m.mem.lat_l1 << ',' << m.mem.lat_l2 << ',' << m.mem.lat_llc << ','
      << m.mem.lat_mem_local << ',' << m.mem.lat_mem_remote << ';'
      << static_cast<int>(m.mem.llc_replacement) << ','
      << static_cast<int>(m.mem.private_replacement) << ';'
      << m.mem.prefetch.enabled << ':' << m.mem.prefetch.degree << ';'
      << m.mem.bus.enabled << ':' << m.mem.bus.transfer_cycles << ';'
      << m.freq_khz << ';' << m.seed << ';'
      << "wl=" << workload_id << ';' << "vm=" << vm_name << ';'
      << "seed=" << spec.seed << ';'
      << "window=" << spec.warmup_ticks << '+' << spec.measure_ticks;
  return key.str();
}

SweepRunner::SweepRunner(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  if (lanes_ > 1) pool_ = std::make_unique<ThreadPool>(lanes_);
}

SweepRunner::~SweepRunner() = default;

std::size_t SweepRunner::add(RunSpec spec, std::vector<VmPlan> plans, std::string label) {
  return add(std::move(spec), std::move(plans), HvObserver{}, std::move(label));
}

std::size_t SweepRunner::add(RunSpec spec, std::vector<VmPlan> plans, HvObserver observe,
                             std::string label) {
  // The same validation build_scenario performs, hoisted to the
  // submission thread: a lane's job function must not throw.
  // A churning spec may start with zero planned VMs (tenants arrive
  // from the trace); a static one needs at least one.
  KYOTO_CHECK_MSG(!plans.empty() || spec.churn != nullptr,
                  "sweep job needs at least one VmPlan (or a churn plan)");
  for (const auto& plan : plans) {
    KYOTO_CHECK_MSG(!plan.pinned_cores.empty(), "VmPlan needs at least one pinned core");
    KYOTO_CHECK_MSG(plan.workload != nullptr, "VmPlan needs a workload factory");
  }
  KYOTO_CHECK_MSG(spec.scheduler != nullptr, "RunSpec needs a scheduler factory");
  jobs_.push_back(
      Job{std::move(spec), std::move(plans), std::move(label), {}, std::move(observe)});
  return jobs_.size() - 1;
}

std::size_t SweepRunner::add_completion(RunSpec spec, std::vector<VmPlan> plans,
                                        std::size_t target, Tick max_ticks,
                                        std::string label) {
  KYOTO_CHECK_MSG(target < plans.size(), "completion target out of range");
  KYOTO_CHECK_MSG(max_ticks > 0, "completion job needs max_ticks > 0");
  const std::size_t index = add(std::move(spec), std::move(plans), std::move(label));
  jobs_[index].completion = true;
  jobs_[index].completion_target = target;
  jobs_[index].completion_max_ticks = max_ticks;
  return index;
}

std::size_t SweepRunner::add_solo(const RunSpec& spec, const WorkloadFactory& factory,
                                  const std::string& workload_id,
                                  const std::string& vm_name) {
  KYOTO_CHECK_MSG(factory != nullptr, "add_solo needs a workload factory");
  // The memo key cannot see the scheduler factory, so make the keyed
  // semantics true by construction: solo baselines always run under
  // the default scheduler, whatever spec.scheduler holds.  (A solo VM
  // with no permit behaves identically under every vanilla scheduler;
  // baselining under a specific Kyoto setup is a scenario, not a solo
  // — use add() for it.)
  RunSpec solo_spec = spec;
  solo_spec.scheduler = RunSpec{}.scheduler;
  // Same reasoning for churn: a solo baseline means the VM alone on
  // the machine, and the memo key cannot see a churn plan.
  solo_spec.churn = nullptr;
  VmPlan plan;
  plan.config.name = vm_name;
  plan.workload = factory;
  plan.pinned_cores = {0};
  const std::size_t index = add(std::move(solo_spec), {std::move(plan)}, "solo:" + workload_id);
  jobs_[index].memo_key = solo_memo_key(spec, workload_id, vm_name);
  ++solo_requests_;
  return index;
}

std::vector<RunOutcome> SweepRunner::run() {
  // Deduplicate solo jobs against the cache and within the batch:
  // `execute` holds the indices that actually need a hypervisor, in
  // submission order; every other job aliases an executed job or a
  // cached outcome.
  constexpr std::size_t kCached = ~static_cast<std::size_t>(0);
  std::vector<std::size_t> execute;
  std::vector<std::size_t> source(jobs_.size(), kCached);  // job -> executing job
  std::unordered_map<std::string, std::size_t> batch_first;  // memo key -> job index
  execute.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const std::string& key = jobs_[i].memo_key;
    if (key.empty()) {
      source[i] = i;
      execute.push_back(i);
      continue;
    }
    if (solo_cache_.count(key) != 0) {
      ++solo_memo_hits_;
      continue;  // source stays kCached: answered from the cache
    }
    const auto [it, fresh] = batch_first.emplace(key, i);
    if (fresh) {
      source[i] = i;
      execute.push_back(i);
    } else {
      ++solo_memo_hits_;
      source[i] = it->second;
    }
  }

  // One hypervisor per lane-claimed job; each lane writes only its own
  // pre-sized slot, so the pool barrier is the only synchronization.
  std::vector<RunOutcome> executed(jobs_.size());
  std::vector<std::exception_ptr> errors(execute.size());
  const auto run_one = [&](std::size_t e) {
    const std::size_t job = execute[e];
    try {
      executed[job] =
          jobs_[job].completion
              ? run_to_completion(jobs_[job].spec, jobs_[job].plans,
                                  jobs_[job].completion_target, jobs_[job].completion_max_ticks)
              : run_scenario(jobs_[job].spec, jobs_[job].plans, jobs_[job].observe);
    } catch (...) {
      errors[e] = std::current_exception();
    }
  };
  if (pool_ != nullptr) {
    pool_->run(execute.size(), run_one);
  } else {
    for (std::size_t e = 0; e < execute.size(); ++e) run_one(e);
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      jobs_.clear();
      std::rethrow_exception(error);
    }
  }

  // Publish fresh solo outcomes, then assemble results in submission
  // order (serial: result order never depends on lane completion).
  for (const std::size_t job : execute) {
    const std::string& key = jobs_[job].memo_key;
    if (!key.empty()) solo_cache_.emplace(key, executed[job]);
  }
  std::vector<RunOutcome> results;
  results.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (source[i] == i) {
      // Executed here; fresh solo outcomes were copied into the cache
      // above, so moving the slot is safe.
      results.push_back(std::move(executed[i]));
    } else {
      // Memoized (within this batch or from an earlier one): every
      // deduplicated solo outcome is in the cache by now.
      results.push_back(solo_cache_.at(jobs_[i].memo_key));
    }
  }
  jobs_.clear();
  return results;
}

}  // namespace kyoto::sim
