#include "sim/scenario_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"
#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/churn_engine.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::sim {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream oss;
  oss << "scenario parse error at line " << line << ": " << message;
  throw std::logic_error(oss.str());
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

double parse_double(const std::string& v, int line) {
  std::size_t used = 0;
  double d = 0.0;
  try {
    d = std::stod(v, &used);
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + v + "'");
  }
  if (used != v.size()) fail(line, "trailing characters in number '" + v + "'");
  return d;
}

long parse_int(const std::string& v, int line) {
  const double d = parse_double(v, line);
  const long i = static_cast<long>(d);
  if (static_cast<double>(i) != d) fail(line, "expected an integer, got '" + v + "'");
  return i;
}

bool parse_bool(const std::string& v, int line) {
  const std::string s = lower(v);
  if (s == "true" || s == "on" || s == "yes" || s == "1") return true;
  if (s == "false" || s == "off" || s == "no" || s == "0") return false;
  fail(line, "expected a boolean, got '" + v + "'");
}

cache::ReplacementKind parse_replacement(const std::string& v, int line) {
  const std::string s = lower(v);
  if (s == "lru") return cache::ReplacementKind::kLru;
  if (s == "plru") return cache::ReplacementKind::kPlru;
  if (s == "random") return cache::ReplacementKind::kRandom;
  if (s == "lip") return cache::ReplacementKind::kLip;
  if (s == "bip") return cache::ReplacementKind::kBip;
  if (s == "dip") return cache::ReplacementKind::kDip;
  fail(line, "unknown replacement policy '" + v + "'");
}

/// "off" or "on" or "on:N".
std::pair<bool, long> parse_feature(const std::string& v, int line, long default_arg) {
  const std::string s = lower(v);
  if (s == "off") return {false, default_arg};
  if (s == "on") return {true, default_arg};
  if (s.rfind("on:", 0) == 0) return {true, parse_int(s.substr(3), line)};
  fail(line, "expected off | on | on:<n>, got '" + v + "'");
}

struct SchedulerChoice {
  std::string kind = "xcs";
  std::string monitor = "direct";
  core::PunishMode punish = core::PunishMode::kBlock;
  int declared_line = 0;
};

WorkloadFactory app_factory_for(const std::string& value,
                                const cache::MemSystemConfig& mem, int line,
                                workloads::StreamVersion stream) {
  const std::string s = lower(value);
  if (s.rfind("micro:", 0) == 0) {
    const std::string which = s.substr(6);
    workloads::MicroClass cls;
    if (which.size() == 5 && which[0] == 'c' && which[1] >= '1' && which[1] <= '3') {
      cls = static_cast<workloads::MicroClass>(which[1] - '0');
    } else {
      fail(line, "micro workload must be micro:cIrep or micro:cIdis (I in 1..3)");
    }
    const bool rep = which.substr(2) == "rep";
    if (!rep && which.substr(2) != "dis") {
      fail(line, "micro workload must end in rep or dis");
    }
    return [cls, rep, mem, stream](std::uint64_t seed) {
      return rep ? workloads::micro_representative(cls, mem, seed, stream)
                 : workloads::micro_disruptive(cls, mem, seed, stream);
    };
  }
  // Validate the profile name now so errors carry the line number.
  try {
    workloads::app_profile(value);
  } catch (const std::logic_error&) {
    fail(line, "unknown application '" + value + "'");
  }
  return [value, mem, stream](std::uint64_t seed) {
    return workloads::make_app(value, mem, seed, stream);
  };
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  hv::MachineConfig machine;  // defaults: scaled Table-1 machine
  long scale = 64;
  bool scale_set = false;
  SchedulerChoice sched;

  struct PendingVm {
    std::string name;
    std::string app;
    int app_line = 0;
    std::vector<int> cores;
    hv::VmConfig config;
    int declared_line = 0;
  };
  std::vector<PendingVm> vms;

  // Collected [churn] keys; factories are resolved after the whole
  // file is parsed (like the [vm] apps, so [workload] applies).
  struct PendingChurn {
    bool declared = false;
    int declared_line = 0;
    std::string trace = "poisson";
    int trace_line = 0;
    std::vector<std::string> apps;
    int apps_line = 0;
    ChurnTraceConfig config;
    hv::VmConfig tenant;
    int vcpus = 1;
    int max_tenants = 0;
    int defer_queue = 8;
  };
  PendingChurn churn;

  enum class Section { kNone, kMachine, kScheduler, kWorkload, kVm, kRun, kChurn };
  Section section = Section::kNone;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      const std::string header = trim(line.substr(1, line.size() - 2));
      const auto space = header.find(' ');
      const std::string kind = lower(space == std::string::npos ? header
                                                                : header.substr(0, space));
      if (kind == "machine") {
        section = Section::kMachine;
      } else if (kind == "scheduler") {
        section = Section::kScheduler;
        sched.declared_line = line_no;
      } else if (kind == "workload") {
        section = Section::kWorkload;
      } else if (kind == "run") {
        section = Section::kRun;
      } else if (kind == "churn") {
        section = Section::kChurn;
        churn.declared = true;
        churn.declared_line = line_no;
      } else if (kind == "vm") {
        if (space == std::string::npos) fail(line_no, "[vm <name>] requires a name");
        section = Section::kVm;
        PendingVm vm;
        vm.name = trim(header.substr(space + 1));
        vm.config.name = vm.name;
        vm.declared_line = line_no;
        vms.push_back(std::move(vm));
      } else {
        fail(line_no, "unknown section [" + header + "]");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");

    switch (section) {
      case Section::kNone:
        fail(line_no, "key outside any section");
      case Section::kMachine: {
        if (key == "topology") {
          const auto x = lower(value).find('x');
          if (x == std::string::npos) fail(line_no, "topology must be SxC, e.g. 2x4");
          machine.topology.sockets = static_cast<int>(parse_int(value.substr(0, x), line_no));
          machine.topology.cores_per_socket =
              static_cast<int>(parse_int(value.substr(x + 1), line_no));
          if (machine.topology.sockets < 1 || machine.topology.cores_per_socket < 1) {
            fail(line_no, "topology must be at least 1x1");
          }
        } else if (key == "scale") {
          scale = parse_int(value, line_no);
          if (scale < 1) fail(line_no, "scale must be >= 1");
          scale_set = true;
        } else if (key == "freq_khz") {
          machine.freq_khz = parse_int(value, line_no);
          if (machine.freq_khz <= 0) fail(line_no, "freq_khz must be positive");
        } else if (key == "llc_replacement") {
          machine.mem.llc_replacement = parse_replacement(value, line_no);
        } else if (key == "prefetch") {
          const auto [on, arg] = parse_feature(value, line_no, 2);
          machine.mem.prefetch.enabled = on;
          machine.mem.prefetch.degree = static_cast<unsigned>(arg);
        } else if (key == "bus") {
          const auto [on, arg] = parse_feature(value, line_no, 8);
          machine.mem.bus.enabled = on;
          machine.mem.bus.transfer_cycles = arg;
        } else if (key == "seed") {
          machine.seed = static_cast<std::uint64_t>(parse_int(value, line_no));
        } else {
          fail(line_no, "unknown [machine] key '" + key + "'");
        }
        break;
      }
      case Section::kScheduler: {
        if (key == "kind") {
          sched.kind = lower(value);
        } else if (key == "monitor") {
          sched.monitor = lower(value);
        } else if (key == "punish") {
          const std::string s = lower(value);
          if (s == "block") sched.punish = core::PunishMode::kBlock;
          else if (s == "demote") sched.punish = core::PunishMode::kDemote;
          else fail(line_no, "punish must be block or demote");
        } else {
          fail(line_no, "unknown [scheduler] key '" + key + "'");
        }
        break;
      }
      case Section::kWorkload: {
        if (key == "stream") {
          const std::string s = lower(value);
          if (s == "v1") scenario.stream = workloads::StreamVersion::kV1;
          else if (s == "v2") scenario.stream = workloads::StreamVersion::kV2;
          else fail(line_no, "stream must be v1 or v2, got '" + value + "'");
        } else {
          fail(line_no, "unknown [workload] key '" + key + "'");
        }
        break;
      }
      case Section::kVm: {
        PendingVm& vm = vms.back();
        if (key == "app") {
          vm.app = value;
          vm.app_line = line_no;
        } else if (key == "cores") {
          vm.cores.clear();
          std::istringstream cs(value);
          std::string token;
          while (std::getline(cs, token, ',')) {
            vm.cores.push_back(static_cast<int>(parse_int(trim(token), line_no)));
          }
          if (vm.cores.empty()) fail(line_no, "cores must list at least one core");
        } else if (key == "llc_cap") {
          vm.config.llc_cap = parse_double(value, line_no);
        } else if (key == "weight") {
          vm.config.weight = static_cast<int>(parse_int(value, line_no));
        } else if (key == "cap") {
          vm.config.cpu_cap_percent = static_cast<int>(parse_int(value, line_no));
        } else if (key == "loop") {
          vm.config.loop_workload = parse_bool(value, line_no);
        } else if (key == "home_node") {
          vm.config.home_node = static_cast<int>(parse_int(value, line_no));
        } else {
          fail(line_no, "unknown [vm] key '" + key + "'");
        }
        break;
      }
      case Section::kRun: {
        if (key == "warmup_ticks") {
          scenario.spec.warmup_ticks = parse_int(value, line_no);
        } else if (key == "measure_ticks") {
          scenario.spec.measure_ticks = parse_int(value, line_no);
        } else if (key == "seed") {
          scenario.spec.seed = static_cast<std::uint64_t>(parse_int(value, line_no));
        } else if (key == "threads") {
          const long threads = parse_int(value, line_no);
          if (threads < 1) fail(line_no, "threads must be >= 1");
          scenario.spec.threads = static_cast<int>(threads);
        } else {
          fail(line_no, "unknown [run] key '" + key + "'");
        }
        break;
      }
      case Section::kChurn: {
        if (key == "trace") {
          churn.trace = value;  // keep case: may be file:<path>
          churn.trace_line = line_no;
        } else if (key == "rate") {
          churn.config.arrival_rate = parse_double(value, line_no);
        } else if (key == "mean_lifetime") {
          churn.config.mean_lifetime_ticks = parse_double(value, line_no);
        } else if (key == "horizon") {
          churn.config.horizon_ticks = parse_int(value, line_no);
        } else if (key == "seed") {
          churn.config.seed = static_cast<std::uint64_t>(parse_int(value, line_no));
        } else if (key == "period") {
          churn.config.period_ticks = parse_int(value, line_no);
        } else if (key == "amplitude") {
          churn.config.amplitude = parse_double(value, line_no);
        } else if (key == "burst_rate") {
          churn.config.burst_rate = parse_double(value, line_no);
        } else if (key == "burst_size") {
          churn.config.burst_size = static_cast<int>(parse_int(value, line_no));
        } else if (key == "apps") {
          churn.apps.clear();
          std::istringstream as(value);
          std::string token;
          while (std::getline(as, token, ',')) {
            const std::string app = trim(token);
            if (!app.empty()) churn.apps.push_back(app);
          }
          if (churn.apps.empty()) fail(line_no, "apps must list at least one app");
          churn.apps_line = line_no;
        } else if (key == "vcpus") {
          churn.vcpus = static_cast<int>(parse_int(value, line_no));
          if (churn.vcpus < 1) fail(line_no, "vcpus must be >= 1");
        } else if (key == "max_tenants") {
          churn.max_tenants = static_cast<int>(parse_int(value, line_no));
        } else if (key == "defer_queue") {
          churn.defer_queue = static_cast<int>(parse_int(value, line_no));
        } else if (key == "llc_cap") {
          churn.tenant.llc_cap = parse_double(value, line_no);
        } else if (key == "weight") {
          churn.tenant.weight = static_cast<int>(parse_int(value, line_no));
        } else if (key == "cap") {
          churn.tenant.cpu_cap_percent = static_cast<int>(parse_int(value, line_no));
        } else if (key == "loop") {
          churn.tenant.loop_workload = parse_bool(value, line_no);
        } else {
          fail(line_no, "unknown [churn] key '" + key + "'");
        }
        break;
      }
    }
  }

  // Apply machine scaling (geometry + clock together, like
  // scaled_machine()).
  if (scale_set) {
    hv::MachineConfig base;
    base.topology = machine.topology;
    base.mem = cache::paper_mem_system();
    base.mem.llc_replacement = machine.mem.llc_replacement;
    base.mem.prefetch = machine.mem.prefetch;
    base.mem.bus = machine.mem.bus;
    base.seed = machine.seed;
    base.freq_khz = 2'800'000 / scale;
    base.mem = scale == 1 ? base.mem : base.mem.scaled(static_cast<unsigned>(scale));
    machine = base;
  }
  scenario.spec.machine = machine;

  // Scheduler factory.
  const auto monitor_factory = [sched]() -> std::unique_ptr<core::PollutionMonitor> {
    if (sched.monitor == "direct") return std::make_unique<core::DirectPmcMonitor>();
    if (sched.monitor == "mcsim") return std::make_unique<core::McSimMonitor>();
    if (sched.monitor == "dedication") {
      return std::make_unique<core::SocketDedicationMonitor>();
    }
    throw std::logic_error("scenario parse error at line " +
                           std::to_string(sched.declared_line) + ": unknown monitor '" +
                           sched.monitor + "'");
  };
  core::KyotoParams kyoto_params;
  kyoto_params.punish_mode = sched.punish;
  const std::string kind = sched.kind;
  if (kind == "xcs") {
    scenario.spec.scheduler = [] { return std::make_unique<hv::CreditScheduler>(); };
  } else if (kind == "cfs") {
    scenario.spec.scheduler = [] { return std::make_unique<hv::CfsScheduler>(); };
  } else if (kind == "pisces") {
    scenario.spec.scheduler = [] { return std::make_unique<hv::PiscesScheduler>(); };
  } else if (kind == "ks4xen") {
    scenario.spec.scheduler = [monitor_factory, kyoto_params] {
      return std::make_unique<core::Ks4Xen>(monitor_factory(), kyoto_params);
    };
  } else if (kind == "ks4linux") {
    scenario.spec.scheduler = [monitor_factory, kyoto_params] {
      return std::make_unique<core::Ks4Linux>(monitor_factory(), kyoto_params);
    };
  } else if (kind == "ks4pisces") {
    scenario.spec.scheduler = [monitor_factory, kyoto_params] {
      return std::make_unique<core::Ks4Pisces>(monitor_factory(), kyoto_params);
    };
  } else {
    fail(sched.declared_line, "unknown scheduler kind '" + kind + "'");
  }

  // Churn plan (apps resolved now, like [vm] apps, so [workload] and
  // [machine] apply wherever they appear in the file).
  if (churn.declared) {
    if (churn.apps.empty()) {
      fail(churn.declared_line, "[churn] is missing apps =");
    }
    auto plan = std::make_shared<ChurnPlan>();
    const std::string t = lower(churn.trace);
    if (t.rfind("file:", 0) == 0) {
      const std::string path = trim(churn.trace.substr(5));
      std::ifstream tf(path);
      if (!tf.good()) fail(churn.trace_line, "cannot open churn trace file '" + path + "'");
      std::ostringstream buf;
      buf << tf.rdbuf();
      try {
        plan->explicit_trace = parse_churn_trace(buf.str());
      } catch (const std::exception& e) {
        fail(churn.trace_line, e.what());
      }
    } else if (t == "poisson") {
      churn.config.kind = ChurnTraceConfig::Kind::kPoisson;
    } else if (t == "diurnal") {
      churn.config.kind = ChurnTraceConfig::Kind::kDiurnal;
    } else if (t == "bursty") {
      churn.config.kind = ChurnTraceConfig::Kind::kBursty;
    } else {
      fail(churn.trace_line != 0 ? churn.trace_line : churn.declared_line,
           "churn trace must be poisson | diurnal | bursty | file:<path>, got '" +
               churn.trace + "'");
    }
    plan->trace = churn.config;
    plan->tenant_config = churn.tenant;
    plan->tenant_config.name = "tenant";
    plan->tenant_vcpus = churn.vcpus;
    plan->max_tenants = churn.max_tenants;
    plan->defer_queue = churn.defer_queue;
    for (const std::string& app : churn.apps) {
      plan->apps.push_back(
          app_factory_for(app, scenario.spec.machine.mem, churn.apps_line, scenario.stream));
      plan->app_ids.push_back(app);
    }
    scenario.spec.churn = std::move(plan);
  }

  // VM plans.
  if (vms.empty() && !churn.declared) {
    throw std::logic_error("scenario defines no [vm] sections (and no [churn])");
  }
  const int total_cores = scenario.spec.machine.topology.total_cores();
  int next_core = 0;
  for (auto& vm : vms) {
    if (vm.app.empty()) fail(vm.declared_line, "[vm " + vm.name + "] is missing app =");
    VmPlan plan;
    plan.config = vm.config;
    // Factories are built after the whole file is parsed, so a
    // [workload] section applies wherever it appears in the file.
    plan.workload =
        app_factory_for(vm.app, scenario.spec.machine.mem, vm.app_line, scenario.stream);
    if (vm.cores.empty()) {
      plan.pinned_cores = {next_core};
      next_core = (next_core + 1) % total_cores;
    } else {
      for (int core : vm.cores) {
        if (core < 0 || core >= total_cores) {
          fail(vm.declared_line, "core " + std::to_string(core) + " out of range for " +
                                     std::to_string(total_cores) + "-core machine");
        }
      }
      plan.pinned_cores = vm.cores;
    }
    scenario.plans.push_back(std::move(plan));
    scenario.vm_names.push_back(vm.name);
  }
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  KYOTO_CHECK_MSG(in.good(), "cannot open scenario file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

std::string scenario_report(const Scenario& scenario, const RunOutcome& outcome) {
  // Under churn the outcome also carries whichever tenants were alive
  // at window end (each row is self-naming), so only static scenarios
  // pin the exact count.
  if (scenario.spec.churn == nullptr) {
    KYOTO_CHECK_MSG(outcome.vms.size() == scenario.plans.size(),
                    "outcome does not belong to this scenario");
  } else {
    KYOTO_CHECK_MSG(outcome.vms.size() >= scenario.plans.size(),
                    "outcome does not belong to this scenario");
  }
  TextTable table({"VM", "IPC", "instr/tick", "llc_cap_act (miss/ms)", "punish events",
                   "punished ticks"});
  for (const auto& vm : outcome.vms) {
    table.add_row({vm.name, fmt_double(vm.ipc, 3), fmt_count(static_cast<long long>(vm.throughput)),
                   fmt_double(vm.llc_cap_act, 1), fmt_count(vm.punish_events),
                   fmt_count(vm.punished_ticks)});
  }
  return table.to_string();
}

std::string run_scenario_report(const Scenario& scenario) {
  return scenario_report(scenario, run_scenario(scenario.spec, scenario.plans));
}

}  // namespace kyoto::sim
