// Per-host health state for the multi-host farm, plus the shared
// exponential-backoff schedule.
//
// The model follows distributed control middleware (CERN RDA / TANGO
// device servers): every remote endpoint carries a health record —
// consecutive-failure budget, quarantine with exponential backoff,
// permanent retirement after repeated budget burns — and every
// transition is logged as a structured, human-readable event so an
// operator can reconstruct *why* the farm degraded, not just that it
// did.
//
// Everything here is deliberately time-base-agnostic: callers pass a
// monotonic `t_s` (seconds since the run started), so the coordinator
// feeds wall-clock time while unit tests drive synthetic clocks and
// pin the exact transition instants.  The backoff jitter is seeded
// (splitmix64 over seed ^ key ^ attempt), never wall-clock random:
// the same configuration always produces the same schedule, which is
// what lets tests/sim/farm_backoff_test.cpp pin it byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kyoto::sim {

/// splitmix64: the jitter hash.  Deterministic, well-mixed, and
/// dependency-free — the standard choice for seeding-quality mixing.
std::uint64_t mix64(std::uint64_t x);

/// Exponential backoff with deterministic, seeded jitter.
///
///   delay(attempt) = min(base_s * 2^attempt, max_s)
///                    * (1 + jitter_frac * u)   with u in [0, 1)
///
/// where u is derived from mix64(seed ^ key ^ attempt) — `key` is a
/// stable identity (worker slot, hashed host id), so two hosts never
/// share a jitter stream but every run of the same config does.
struct BackoffPolicy {
  double base_s = 0.05;
  double max_s = 30.0;
  double jitter_frac = 0.25;
  std::uint64_t seed = 0x6b796f746f666d0aull;  // "kyotofm\n"

  /// `attempt` is the 0-based count of prior consecutive failures.
  double delay_s(int attempt, std::uint64_t key) const;
};

enum class HostState {
  kHealthy,      // accepting shards
  kQuarantined,  // backing off; re-admitted when the clock passes quarantined_until_s
  kRetired,      // burned max_quarantines + 1 budgets; out for this run
};

const char* host_state_name(HostState state);

struct HostStats {
  std::string id;
  HostState state = HostState::kHealthy;
  int shards_dispatched = 0;   // attempts (re-dispatches count again)
  int shards_completed = 0;
  int jobs_completed = 0;
  int failures = 0;            // total failed attempts charged to this host
  int consecutive_failures = 0;
  int quarantines = 0;
  double quarantined_until_s = 0.0;
  std::string last_failure;
};

/// One line of the farm's event log.  `host` is empty for
/// coordinator-level events (degradation, checkpoint restarts).
struct FarmEvent {
  double t_s = 0.0;
  std::string host;
  std::string what;    // "dispatch", "complete", "failure", "quarantine", ...
  std::string detail;
};

/// Tracks health for a fixed host set.  Pure bookkeeping — the
/// coordinator decides *what* to do; this class decides *who is
/// allowed to do it* and remembers every transition.
class HostHealthTracker {
 public:
  /// `failure_budget`: consecutive failures tolerated before a
  /// quarantine (>= 1).  `max_quarantines`: quarantines survived
  /// before the host is retired (0 = first budget burn retires it).
  HostHealthTracker(std::vector<std::string> host_ids, int failure_budget,
                    int max_quarantines, BackoffPolicy backoff);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  const HostStats& stats(int host) const { return hosts_[static_cast<std::size_t>(host)]; }
  const std::vector<HostStats>& all_stats() const { return hosts_; }

  /// True when the host may take a shard at `t_s`.  Crossing a
  /// quarantine expiry re-admits the host (state returns to healthy,
  /// with a "readmit" event) — callers never re-admit manually.
  bool usable(int host, double t_s);

  /// Earliest instant a quarantined host becomes usable again; +inf
  /// when no host is quarantined (all healthy or all retired).
  double next_available_s() const;

  bool all_retired() const;
  int quarantine_count() const;  // total quarantine transitions this run

  void record_dispatch(int host, double t_s, const std::string& shard);
  void record_success(int host, double t_s, const std::string& shard, int jobs);
  /// Charges one failed attempt; may quarantine (with the next backoff
  /// delay) or retire the host.  Returns the state after charging.
  HostState record_failure(int host, double t_s, const std::string& reason);

  /// Coordinator-level event (redistribution, degradation, resume).
  void note(double t_s, const std::string& host, const std::string& what,
            const std::string& detail);

  const std::vector<FarmEvent>& events() const { return events_; }

  /// The structured farm report: a per-host summary table followed by
  /// the chronological event log.
  std::string report() const;

 private:
  std::vector<HostStats> hosts_;
  std::vector<FarmEvent> events_;
  int failure_budget_;
  int max_quarantines_;
  BackoffPolicy backoff_;
};

}  // namespace kyoto::sim
