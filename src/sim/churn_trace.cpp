#include "sim/churn_trace.hpp"

#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/farm_codec.hpp"

namespace kyoto::sim {
namespace {

/// One Bernoulli trial.  Always consumes exactly one RNG draw so the
/// stream position after a tick is independent of the outcome — the
/// property the golden fingerprints pin.
bool bernoulli(Rng& rng, double p) {
  const std::uint64_t draw = rng();
  if (p <= 0.0) return false;
  // 0x1p64 cannot be represented in uint64_t; saturate first.
  const double scaled = p * 0x1p64;
  if (scaled >= 0x1p64) return true;
  return draw < static_cast<std::uint64_t>(scaled);
}

/// Geometric lifetime on {1, 2, ...} with the configured mean — the
/// discrete-time analogue of an exponential holding time.  mean <= 0
/// encodes "stays forever" (lifetime 0, no draws).
Tick draw_lifetime(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double q = mean <= 1.0 ? 1.0 : 1.0 / mean;
  Tick life = 1;
  while (!bernoulli(rng, q)) ++life;
  return life;
}

/// Triangle wave in [-1, 1] with period 1: tri(0) = -1 (night),
/// tri(0.5) = +1 (noon).  Exact double arithmetic — no libm.
double triangle(double x) {
  const double d = x < 0.5 ? 0.5 - x : x - 0.5;  // distance to noon, [0, 0.5]
  return 1.0 - 4.0 * d;
}

}  // namespace

const char* churn_kind_name(ChurnTraceConfig::Kind kind) {
  switch (kind) {
    case ChurnTraceConfig::Kind::kPoisson: return "poisson";
    case ChurnTraceConfig::Kind::kDiurnal: return "diurnal";
    case ChurnTraceConfig::Kind::kBursty: return "bursty";
  }
  return "?";
}

std::vector<ChurnEvent> generate_churn_trace(const ChurnTraceConfig& config) {
  KYOTO_CHECK_MSG(config.arrival_rate >= 0.0 && config.arrival_rate < 1.0,
                  "arrival_rate is a per-tick Bernoulli probability; got "
                      << config.arrival_rate);
  KYOTO_CHECK_MSG(config.horizon_ticks >= 0, "negative churn horizon");
  if (config.kind == ChurnTraceConfig::Kind::kDiurnal) {
    KYOTO_CHECK_MSG(config.period_ticks > 0, "diurnal period must be positive");
    KYOTO_CHECK_MSG(config.amplitude >= 0.0 && config.amplitude <= 1.0,
                    "diurnal amplitude must be in [0, 1]");
  }
  if (config.kind == ChurnTraceConfig::Kind::kBursty) {
    KYOTO_CHECK_MSG(config.burst_rate >= 0.0 && config.burst_rate < 1.0,
                    "burst_rate is a per-tick Bernoulli probability");
    KYOTO_CHECK_MSG(config.burst_size > 0, "burst_size must be positive");
  }

  Rng rng(config.seed);
  std::vector<ChurnEvent> trace;
  for (Tick t = 0; t < config.horizon_ticks; ++t) {
    // Fixed per-tick draw order: arrival trial(s), then one lifetime
    // per arrival, in arrival order.
    int arrivals = 0;
    switch (config.kind) {
      case ChurnTraceConfig::Kind::kPoisson:
        arrivals = bernoulli(rng, config.arrival_rate) ? 1 : 0;
        break;
      case ChurnTraceConfig::Kind::kDiurnal: {
        const double x =
            static_cast<double>(t % config.period_ticks) / static_cast<double>(config.period_ticks);
        const double rate = config.arrival_rate * (1.0 + config.amplitude * triangle(x));
        arrivals = bernoulli(rng, rate) ? 1 : 0;
        break;
      }
      case ChurnTraceConfig::Kind::kBursty:
        arrivals = bernoulli(rng, config.arrival_rate) ? 1 : 0;
        if (bernoulli(rng, config.burst_rate)) arrivals += config.burst_size;
        break;
    }
    for (int i = 0; i < arrivals; ++i) {
      trace.push_back(ChurnEvent{t, draw_lifetime(rng, config.mean_lifetime_ticks)});
    }
  }
  return trace;
}

std::string format_churn_trace(const std::vector<ChurnEvent>& trace) {
  std::string out;
  for (const ChurnEvent& e : trace) {
    out += std::to_string(e.tick);
    out += ' ';
    out += std::to_string(e.lifetime);
    out += '\n';
  }
  return out;
}

std::vector<ChurnEvent> parse_churn_trace(const std::string& text) {
  std::vector<ChurnEvent> trace;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    std::istringstream fields(line.substr(start));
    ChurnEvent event;
    if (!(fields >> event.tick >> event.lifetime)) {
      throw std::runtime_error("churn trace line " + std::to_string(line_no) +
                               ": expected \"tick lifetime\", got \"" + line + "\"");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::runtime_error("churn trace line " + std::to_string(line_no) +
                               ": trailing junk \"" + extra + "\"");
    }
    if (event.tick < 0 || event.lifetime < 0) {
      throw std::runtime_error("churn trace line " + std::to_string(line_no) +
                               ": negative tick or lifetime");
    }
    if (!trace.empty() && event.tick < trace.back().tick) {
      throw std::runtime_error("churn trace line " + std::to_string(line_no) +
                               ": ticks must be non-decreasing");
    }
    trace.push_back(event);
  }
  return trace;
}

std::uint64_t churn_trace_fingerprint(const std::vector<ChurnEvent>& trace) {
  return farm::fnv1a(format_churn_trace(trace));
}

}  // namespace kyoto::sim
