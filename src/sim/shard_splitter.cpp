#include "sim/shard_splitter.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace kyoto::sim {
namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

namespace {

/// Largest-remainder apportionment of `total` jobs over `weights`:
/// floors first, then the leftover goes to the largest fractional
/// parts, ties broken by host order.  Deterministic, sums to total.
std::vector<std::size_t> weighted_quotas(std::size_t total,
                                         const std::vector<double>& weights) {
  double sum = 0.0;
  for (const double w : weights) sum += w;
  std::vector<std::size_t> quota(weights.size(), 0);
  std::vector<double> remainder(weights.size(), 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i] / sum;
    quota[i] = static_cast<std::size_t>(exact);
    remainder[i] = exact - static_cast<double>(quota[i]);
    assigned += quota[i];
  }
  while (assigned < total) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < weights.size(); ++i) {
      if (remainder[i] > remainder[best]) best = i;
    }
    ++quota[best];
    remainder[best] = -1.0;
    ++assigned;
  }
  return quota;
}

}  // namespace

farm::ShardManifest split_batch(const std::vector<farm::FarmJob>& jobs,
                                const std::vector<std::string>& host_ids,
                                int jobs_per_shard,
                                const std::vector<double>& host_weights) {
  KYOTO_CHECK_MSG(!jobs.empty(), "split_batch: empty batch");
  KYOTO_CHECK_MSG(!host_ids.empty(), "split_batch: no hosts");
  for (std::size_t i = 0; i < host_ids.size(); ++i) {
    KYOTO_CHECK_MSG(!host_ids[i].empty(), "split_batch: empty host id");
    for (std::size_t j = i + 1; j < host_ids.size(); ++j) {
      KYOTO_CHECK_MSG(host_ids[i] != host_ids[j],
                      "split_batch: duplicate host id " << host_ids[i]);
    }
  }
  if (!host_weights.empty()) {
    KYOTO_CHECK_MSG(host_weights.size() == host_ids.size(),
                    "split_batch: " << host_weights.size() << " weight(s) for "
                                    << host_ids.size() << " host(s)");
    KYOTO_CHECK_MSG(jobs_per_shard == 0,
                    "split_batch: host weights require the one-shard-per-host split");
    for (const double w : host_weights) {
      KYOTO_CHECK_MSG(w > 0.0, "split_batch: host weight must be positive, got " << w);
    }
  }
  const std::size_t total = jobs.size();

  farm::ShardManifest manifest;
  manifest.fingerprint = farm::batch_fingerprint(jobs);
  manifest.total_jobs = total;

  auto emit_shard = [&](const std::string& host_id, std::size_t first, std::size_t count) {
    const std::size_t shard_index = manifest.shards.size();
    farm::HostShard shard;
    shard.host_id = host_id;
    shard.job_file = "shard" + std::to_string(shard_index) + ".jobs.kyfm";
    shard.result_file = "shard" + std::to_string(shard_index) + ".results.kyfm";
    shard.job_ids.reserve(count);
    shard.labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      shard.job_ids.push_back(jobs[first + i].id);
      shard.labels.push_back(jobs[first + i].label);
    }
    manifest.shards.push_back(std::move(shard));
  };

  if (!host_weights.empty()) {
    // Capability-weighted split: one contiguous slice per host, sized
    // by its weight share.  A host too slow to earn a single job gets
    // no shard (and therefore no file to come back late with).
    const std::vector<std::size_t> quota = weighted_quotas(total, host_weights);
    std::size_t next = 0;
    for (std::size_t h = 0; h < host_ids.size(); ++h) {
      if (quota[h] == 0) continue;
      emit_shard(host_ids[h], next, quota[h]);
      next += quota[h];
    }
    return manifest;
  }

  std::size_t per = jobs_per_shard > 0
                        ? static_cast<std::size_t>(jobs_per_shard)
                        : (total + host_ids.size() - 1) / host_ids.size();
  per = std::max<std::size_t>(per, 1);
  std::size_t next = 0;
  std::size_t shard_index = 0;
  while (next < total) {
    const std::size_t count = std::min(per, total - next);
    emit_shard(host_ids[shard_index % host_ids.size()], next, count);
    next += count;
    ++shard_index;
  }
  return manifest;
}

void write_shard_files(const std::string& dir, const farm::ShardManifest& manifest,
                       const std::vector<farm::FarmJob>& jobs) {
  KYOTO_CHECK_MSG(farm::batch_fingerprint(jobs) == manifest.fingerprint,
                  "write_shard_files: jobs are not the manifest's batch");
  // The batch is indexed by job id for slicing (ids are submission
  // indices of the *original* batch, so with subset batches id != pos).
  std::vector<const farm::FarmJob*> by_id;
  for (const farm::FarmJob& job : jobs) {
    if (job.id >= by_id.size()) by_id.resize(static_cast<std::size_t>(job.id) + 1, nullptr);
    by_id[static_cast<std::size_t>(job.id)] = &job;
  }
  for (const farm::HostShard& shard : manifest.shards) {
    std::vector<farm::FarmJob> slice;
    slice.reserve(shard.job_ids.size());
    for (const std::uint64_t id : shard.job_ids) {
      KYOTO_CHECK_MSG(id < by_id.size() && by_id[static_cast<std::size_t>(id)] != nullptr,
                      "write_shard_files: manifest references unknown job id " << id);
      slice.push_back(*by_id[static_cast<std::size_t>(id)]);
    }
    farm::write_job_file(dir + "/" + shard.job_file, slice);
  }
  farm::write_manifest_file(manifest_path(dir), manifest);
}

const char* shard_collect_state_name(ShardCollect::State state) {
  switch (state) {
    case ShardCollect::State::kOk: return "ok";
    case ShardCollect::State::kMissingFile: return "missing result file";
    case ShardCollect::State::kCorrupt: return "corrupt result file";
    case ShardCollect::State::kForeign: return "foreign result file";
    case ShardCollect::State::kIncomplete: return "incomplete result file";
    case ShardCollect::State::kDeterministic: return "deterministic job failure";
  }
  return "?";
}

ShardCollect collect_shard(const farm::HostShard& shard, const std::string& result_path) {
  ShardCollect collect;
  if (!file_exists(result_path)) {
    collect.state = ShardCollect::State::kMissingFile;
    collect.detail = result_path + " does not exist";
    return collect;
  }
  std::vector<farm::Frame> frames;
  try {
    frames = farm::read_frame_file(result_path);
  } catch (const farm::CodecError& e) {
    collect.state = ShardCollect::State::kCorrupt;
    collect.detail = e.what();
    return collect;
  }

  const std::set<std::uint64_t> expected(shard.job_ids.begin(), shard.job_ids.end());
  std::set<std::uint64_t> seen;
  std::vector<farm::FarmOutcome> outcomes;
  for (const farm::Frame& frame : frames) {
    if (frame.type == farm::FrameType::kError) {
      // The worker executed the shard and hit a deterministic job
      // failure (scenario rejected by the simulator).  Re-running it
      // anywhere would fail identically — surface the job, not the host.
      farm::FarmError error;
      try {
        error = farm::decode_error(frame.payload);
      } catch (const farm::CodecError& e) {
        collect.state = ShardCollect::State::kCorrupt;
        collect.detail = e.what();
        return collect;
      }
      collect.state = ShardCollect::State::kDeterministic;
      std::size_t at = shard.job_ids.size();
      for (std::size_t i = 0; i < shard.job_ids.size(); ++i) {
        if (shard.job_ids[i] == error.id) at = i;
      }
      collect.detail = "job #" + std::to_string(error.id) + " '" +
                       (at < shard.labels.size() ? shard.labels[at] : "?") +
                       "': " + error.message;
      return collect;
    }
    if (frame.type != farm::FrameType::kOutcome) {
      collect.state = ShardCollect::State::kCorrupt;
      collect.detail = "unexpected frame type in result file";
      return collect;
    }
    farm::FarmOutcome outcome;
    try {
      outcome = farm::decode_outcome(frame.payload);
    } catch (const farm::CodecError& e) {
      collect.state = ShardCollect::State::kCorrupt;
      collect.detail = e.what();
      return collect;
    }
    if (expected.find(outcome.id) == expected.end()) {
      collect.state = ShardCollect::State::kForeign;
      collect.detail =
          "carries job #" + std::to_string(outcome.id) + ", which is not in this shard";
      return collect;
    }
    if (!seen.insert(outcome.id).second) {
      collect.state = ShardCollect::State::kForeign;
      collect.detail = "carries job #" + std::to_string(outcome.id) + " twice";
      return collect;
    }
    outcomes.push_back(std::move(outcome));
  }
  if (seen.size() != expected.size()) {
    collect.state = ShardCollect::State::kIncomplete;
    std::ostringstream oss;
    oss << "covers " << seen.size() << " of " << expected.size() << " job(s); missing:";
    for (const std::uint64_t id : expected) {
      if (seen.find(id) == seen.end()) oss << " #" << id;
    }
    collect.detail = oss.str();
    return collect;
  }
  collect.outcomes = std::move(outcomes);
  return collect;
}

std::string MergeReport::summary() const {
  std::ostringstream out;
  out << "merge " << (complete ? "complete" : "FAILED") << ": " << lines.size()
      << " shard(s)\n";
  for (const HostLine& line : lines) {
    out << "  host " << line.host_id << " (" << line.result_file
        << "): " << shard_collect_state_name(line.state);
    if (line.state == ShardCollect::State::kOk) out << ", " << line.jobs << " job(s)";
    if (!line.detail.empty()) out << " — " << line.detail;
    out << '\n';
  }
  return out.str();
}

MergeReport merge_results(const farm::ShardManifest& manifest, const std::string& dir) {
  MergeReport report;
  report.complete = true;
  std::vector<ShardCollect> collected;
  collected.reserve(manifest.shards.size());
  for (const farm::HostShard& shard : manifest.shards) {
    ShardCollect c = collect_shard(shard, dir + "/" + shard.result_file);
    MergeReport::HostLine line;
    line.host_id = shard.host_id;
    line.result_file = shard.result_file;
    line.state = c.state;
    line.detail = c.detail;
    line.jobs = static_cast<int>(c.outcomes.size());
    report.lines.push_back(std::move(line));
    if (c.state != ShardCollect::State::kOk) report.complete = false;
    collected.push_back(std::move(c));
  }
  if (!report.complete) return report;  // apply nothing: all-or-nothing

  report.outcomes.assign(static_cast<std::size_t>(manifest.total_jobs), RunOutcome{});
  std::vector<char> filled(static_cast<std::size_t>(manifest.total_jobs), 0);
  for (std::size_t s = 0; s < collected.size(); ++s) {
    for (farm::FarmOutcome& outcome : collected[s].outcomes) {
      if (outcome.id >= manifest.total_jobs || filled[static_cast<std::size_t>(outcome.id)]) {
        // Two shards claiming one job means the manifest itself is
        // inconsistent — that is a manifest fault, not a host fault.
        report.complete = false;
        report.outcomes.clear();
        report.lines[s].state = ShardCollect::State::kForeign;
        report.lines[s].detail = "manifest shards overlap on job #" + std::to_string(outcome.id);
        return report;
      }
      filled[static_cast<std::size_t>(outcome.id)] = 1;
      report.outcomes[static_cast<std::size_t>(outcome.id)] = std::move(outcome.outcome);
    }
  }
  // Shards collectively covering fewer than total_jobs is legitimate
  // only if the manifest says so; a full-batch manifest covers all.
  return report;
}

}  // namespace kyoto::sim
