#include "sim/monitor_accuracy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"

namespace kyoto::sim {
namespace {

using Sample = core::GroundTruthShadow::Sample;

/// Index of the largest value; lowest index wins ties (deterministic).
std::size_t argmax(const std::vector<double>& values) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

}  // namespace

MonitorAccuracy score_monitor_accuracy(const std::vector<std::vector<Sample>>& series,
                                       Tick skip_ticks, double rel_floor) {
  MonitorAccuracy acc;
  const std::size_t vms = series.size();
  if (vms == 0) return acc;
  const std::size_t ticks = series[0].size();
  for (const auto& s : series) {
    KYOTO_CHECK_MSG(s.size() == ticks,
                    "shadow series lengths differ (VMs admitted mid-run are not "
                    "scoreable)");
  }

  // Pass 1 — the oracle's verdict: mean intrinsic rate per VM over the
  // ticks it ran (inside the scoring window).
  std::vector<RunningStats> true_stats(vms);
  for (std::size_t vm = 0; vm < vms; ++vm) {
    for (const Sample& s : series[vm]) {
      if (s.tick >= skip_ticks && s.ran) true_stats[vm].add(s.true_rate);
    }
  }
  acc.true_mean_rate.resize(vms);
  for (std::size_t vm = 0; vm < vms; ++vm) acc.true_mean_rate[vm] = true_stats[vm].mean();
  acc.true_aggressor = static_cast<int>(argmax(acc.true_mean_rate));

  // Pass 2 — walk the ticks with carry-forward estimates (an estimator
  // "currently ranks" a punished/descheduled VM at its last charged
  // rate, exactly as the scheduler would if consulted).
  std::vector<double> est_carry(vms, -1.0);
  std::vector<RunningStats> est_stats(vms);
  double abs_err_sum = 0.0;
  double rel_err_sum = 0.0;
  int top1_hits = 0;
  for (std::size_t t = 0; t < ticks; ++t) {
    const Tick tick = series[0][t].tick;
    for (std::size_t vm = 0; vm < vms; ++vm) {
      const Sample& s = series[vm][t];
      if (!s.ran || s.estimator_rate < 0.0) continue;
      est_carry[vm] = s.estimator_rate;
      if (tick >= skip_ticks) {
        est_stats[vm].add(s.estimator_rate);
        const double err = std::abs(s.estimator_rate - s.true_rate);
        abs_err_sum += err;
        rel_err_sum += err / std::max(s.true_rate, rel_floor);
        ++acc.error_samples;
      }
    }
    if (tick < skip_ticks) continue;
    const bool all_known =
        std::all_of(est_carry.begin(), est_carry.end(), [](double e) { return e >= 0.0; });
    if (!all_known) continue;
    ++acc.scored_ticks;
    if (static_cast<int>(argmax(est_carry)) == acc.true_aggressor) {
      ++top1_hits;
      if (acc.time_to_detect < 0) acc.time_to_detect = tick;
    }
  }
  if (acc.error_samples > 0) {
    acc.mean_abs_error = abs_err_sum / acc.error_samples;
    acc.mean_rel_error = rel_err_sum / acc.error_samples;
  }
  if (acc.scored_ticks > 0) {
    acc.top1_agreement = static_cast<double>(top1_hits) / acc.scored_ticks;
  }
  acc.estimator_mean_rate.resize(vms);
  for (std::size_t vm = 0; vm < vms; ++vm) {
    acc.estimator_mean_rate[vm] = est_stats[vm].mean();
  }
  if (vms >= 2) {
    acc.rank_tau = kendall_tau(acc.estimator_mean_rate, acc.true_mean_rate);
  }
  return acc;
}

HvObserver shadow_observer(std::unique_ptr<core::GroundTruthShadow>* slot) {
  KYOTO_CHECK_MSG(slot != nullptr, "shadow_observer needs a slot");
  return [slot](hv::Hypervisor& hv) {
    const core::PollutionController* controller = nullptr;
    if (auto* ks = dynamic_cast<core::Ks4Xen*>(&hv.scheduler())) {
      controller = &ks->kyoto();
    } else if (auto* ksl = dynamic_cast<core::Ks4Linux*>(&hv.scheduler())) {
      controller = &ksl->kyoto();
    } else if (auto* ksp = dynamic_cast<core::Ks4Pisces*>(&hv.scheduler())) {
      controller = &ksp->kyoto();
    }
    *slot = std::make_unique<core::GroundTruthShadow>(hv, controller);
  };
}

ShadowRun run_with_shadow(const RunSpec& base, const std::vector<VmPlan>& plans,
                          const MonitorFactory& monitor) {
  KYOTO_CHECK_MSG(monitor != nullptr, "run_with_shadow needs a monitor factory");
  RunSpec spec = base;
  spec.scheduler = [monitor]() -> std::unique_ptr<hv::Scheduler> {
    return std::make_unique<core::Ks4Xen>(monitor());
  };
  std::unique_ptr<core::GroundTruthShadow> shadow;
  RunOutcome outcome = run_scenario(spec, plans, shadow_observer(&shadow));
  ShadowRun run;
  run.outcome = std::move(outcome);
  run.series = shadow->samples();
  return run;
}

}  // namespace kyoto::sim
