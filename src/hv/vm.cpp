#include "hv/vm.hpp"

#include <algorithm>

namespace kyoto::hv {

Vcpu::Vcpu(Vm& vm, int index, int global_id, std::unique_ptr<workloads::Workload> workload)
    : vm_(&vm), index_(index), id_(global_id), workload_(std::move(workload)) {
  KYOTO_CHECK(workload_ != nullptr);
}

bool Vcpu::done() const {
  const auto length = workload_->spec().length;
  if (length <= 0) return false;  // endless workload never completes
  if (vm_->loops()) return false;
  return completed_runs_ > 0;
}

void Vcpu::note_progress(Instructions retired, Cycles cycles) {
  retired_in_run_ += retired;
  retired_total_ += retired;
  cpu_cycles_ += cycles;
}

void Vcpu::note_run_complete(std::int64_t wall_cycle) {
  ++completed_runs_;
  if (first_completion_wall_cycle_ < 0) first_completion_wall_cycle_ = wall_cycle;
  retired_in_run_ = 0;
  if (vm_->loops()) workload_->reset();
}

Vm::Vm(int id, VmConfig config, std::vector<std::unique_ptr<workloads::Workload>> workloads,
       int first_vcpu_id)
    : id_(id), config_(std::move(config)) {
  KYOTO_CHECK_MSG(!workloads.empty(), "a VM needs at least one vCPU workload");
  Bytes memory = config_.memory;
  if (memory == 0) {
    for (const auto& w : workloads) memory = std::max(memory, w->spec().working_set);
    memory = std::max<Bytes>(memory, mem::kLineBytes);
  }
  for (const auto& w : workloads) {
    KYOTO_CHECK_MSG(w->spec().working_set <= memory,
                    "VM '" << config_.name << "' memory (" << memory
                           << " B) smaller than workload working set ("
                           << w->spec().working_set << " B)");
  }
  space_ = std::make_unique<mem::AddressSpace>(id_, memory, config_.home_node);
  vcpus_.reserve(workloads.size());
  int index = 0;
  for (auto& w : workloads) {
    vcpus_.push_back(std::make_unique<Vcpu>(*this, index, first_vcpu_id + index, std::move(w)));
    ++index;
  }
}

pmc::CounterSet Vm::counters() const {
  pmc::CounterSet total;
  for (const auto& v : vcpus_) total += v->counters().read();
  return total;
}

bool Vm::done() const {
  return std::all_of(vcpus_.begin(), vcpus_.end(),
                     [](const auto& v) { return v->done(); });
}

}  // namespace kyoto::hv
