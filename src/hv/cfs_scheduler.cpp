#include "hv/cfs_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "hv/hypervisor.hpp"

namespace kyoto::hv {

void CfsScheduler::ensure_capacity(std::size_t id) {
  if (vcpu_.size() > id) return;
  const std::size_t n = id + 1;
  vcpu_.resize(n, nullptr);
  vruntime_.resize(n, 0.0);
  weight_.resize(n, kNice0Weight);
  vm_id_.resize(n, -1);
  done_.resize(n, 0);
}

void CfsScheduler::vcpu_added(Vcpu& vcpu) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "scheduler not attached");
  KYOTO_CHECK_MSG(vcpu.pinned_core() >= 0, "vCPU must be pinned before registration");
  const auto id = static_cast<std::size_t>(vcpu.id());
  ensure_capacity(id);
  vcpu_[id] = &vcpu;
  // Map the Xen-style weight (256 = default) onto CFS nice-0 weight.
  weight_[id] = std::max(1, vcpu.vm().config().weight * kNice0Weight / 256);
  vm_id_[id] = vcpu.vm().id();
  done_[id] = vcpu.done() ? 1 : 0;
  const auto cores = static_cast<std::size_t>(hv_->machine().topology().total_cores());
  if (runqueue_.size() < cores) runqueue_.resize(cores);
  // A task entering a runqueue starts at the queue's min vruntime so
  // it neither starves others nor is starved (CFS's place_entity).
  vruntime_[id] = min_vruntime(vcpu.pinned_core());
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CfsScheduler::vcpu_migrated(Vcpu& vcpu, int old_core) {
  KYOTO_CHECK(old_core >= 0 && static_cast<std::size_t>(old_core) < runqueue_.size());
  auto& oldq = runqueue_[static_cast<std::size_t>(old_core)];
  oldq.erase(std::remove(oldq.begin(), oldq.end(), vcpu.id()), oldq.end());
  const std::size_t id = checked_id(vcpu);
  vruntime_[id] = std::max(vruntime_[id], min_vruntime(vcpu.pinned_core()));
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CfsScheduler::vcpu_removed(Vcpu& vcpu) {
  const std::size_t id = checked_id(vcpu);
  auto& queue = runqueue_[static_cast<std::size_t>(vcpu.pinned_core())];
  queue.erase(std::remove(queue.begin(), queue.end(), vcpu.id()), queue.end());
  // vcpu_ = nullptr: the id is never reused.
  vcpu_[id] = nullptr;
  vruntime_[id] = 0.0;
  weight_[id] = kNice0Weight;
  vm_id_[id] = -1;
  done_[id] = 0;
}

double CfsScheduler::min_vruntime(int core) const {
  if (static_cast<std::size_t>(core) >= runqueue_.size()) return 0.0;
  double best = std::numeric_limits<double>::max();
  bool any = false;
  for (int qid : runqueue_[static_cast<std::size_t>(core)]) {
    const auto id = static_cast<std::size_t>(qid);
    if (vcpu_[id] == nullptr || vcpu_[id]->done()) continue;
    best = std::min(best, vruntime_[id]);
    any = true;
  }
  return any ? best : 0.0;
}

Vcpu* CfsScheduler::pick(int core, Tick /*now*/) {
  if (static_cast<std::size_t>(core) >= runqueue_.size()) return nullptr;
  const auto& queue = runqueue_[static_cast<std::size_t>(core)];
  return reference_engine_ ? pick_reference(queue) : pick_batched(queue);
}

Vcpu* CfsScheduler::pick_batched(const std::vector<int>& queue) {
  // Branch-light running min over (band, vruntime): eligibility and
  // demotion are 0/1 words, the two band minima advance by select —
  // strict `<` keeps the reference engine's first-minimum tie-break.
  int best_id = -1;
  double best_vr = std::numeric_limits<double>::max();
  int best_dem_id = -1;
  double best_dem_vr = std::numeric_limits<double>::max();
  for (int qid : queue) {
    const auto id = static_cast<std::size_t>(qid);
    const unsigned elig = (static_cast<unsigned>(done_[id]) ^ 1u) &
                          (static_cast<unsigned>(vm_blocked(vm_id_[id])) ^ 1u);
    const unsigned dem = static_cast<unsigned>(vm_demoted(vm_id_[id]));
    const double vr = vruntime_[id];
    const bool take = (elig & (dem ^ 1u)) != 0 && vr < best_vr;
    best_vr = take ? vr : best_vr;
    best_id = take ? qid : best_id;
    const bool take_dem = (elig & dem) != 0 && vr < best_dem_vr;
    best_dem_vr = take_dem ? vr : best_dem_vr;
    best_dem_id = take_dem ? qid : best_dem_id;
  }
  const int chosen = best_id >= 0 ? best_id : best_dem_id;
  return chosen >= 0 ? vcpu_[static_cast<std::size_t>(chosen)] : nullptr;
}

Vcpu* CfsScheduler::pick_reference(const std::vector<int>& queue) {
  // The pre-rework branchy scan, kept verbatim over the SoA state.
  Vcpu* best = nullptr;
  double best_vr = std::numeric_limits<double>::max();
  Vcpu* best_demoted = nullptr;
  double best_demoted_vr = std::numeric_limits<double>::max();
  for (int qid : queue) {
    const auto id = static_cast<std::size_t>(qid);
    if (vcpu_[id] == nullptr || vcpu_[id]->done() || vm_blocked(vm_id_[id])) continue;
    if (vm_demoted(vm_id_[id])) {
      if (vruntime_[id] < best_demoted_vr) {
        best_demoted_vr = vruntime_[id];
        best_demoted = vcpu_[id];
      }
      continue;
    }
    if (vruntime_[id] < best_vr) {
      best_vr = vruntime_[id];
      best = vcpu_[id];
    }
  }
  return best != nullptr ? best : best_demoted;
}

void CfsScheduler::account(Vcpu& vcpu, const RunReport& report) {
  const std::size_t id = checked_id(vcpu);
  vruntime_[id] += static_cast<double>(report.ran) * kNice0Weight / weight_[id];
  done_[id] = vcpu.done() ? 1 : 0;
}

double CfsScheduler::vruntime(const Vcpu& vcpu) const { return vruntime_[checked_id(vcpu)]; }

std::size_t CfsScheduler::checked_id(const Vcpu& vcpu) const {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK_MSG(id < vcpu_.size() && vcpu_[id] != nullptr,
                  "unregistered vCPU " << vcpu.id());
  return id;
}

}  // namespace kyoto::hv
