#include "hv/cfs_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "hv/hypervisor.hpp"

namespace kyoto::hv {

void CfsScheduler::vcpu_added(Vcpu& vcpu) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "scheduler not attached");
  KYOTO_CHECK_MSG(vcpu.pinned_core() >= 0, "vCPU must be pinned before registration");
  const auto id = static_cast<std::size_t>(vcpu.id());
  if (states_.size() <= id) states_.resize(id + 1);
  State& st = states_[id];
  st.vcpu = &vcpu;
  // Map the Xen-style weight (256 = default) onto CFS nice-0 weight.
  st.weight = std::max(1, vcpu.vm().config().weight * kNice0Weight / 256);
  const auto cores = static_cast<std::size_t>(hv_->machine().topology().total_cores());
  if (runqueue_.size() < cores) runqueue_.resize(cores);
  // A task entering a runqueue starts at the queue's min vruntime so
  // it neither starves others nor is starved (CFS's place_entity).
  st.vruntime = min_vruntime(vcpu.pinned_core());
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CfsScheduler::vcpu_migrated(Vcpu& vcpu, int old_core) {
  KYOTO_CHECK(old_core >= 0 && static_cast<std::size_t>(old_core) < runqueue_.size());
  auto& oldq = runqueue_[static_cast<std::size_t>(old_core)];
  oldq.erase(std::remove(oldq.begin(), oldq.end(), vcpu.id()), oldq.end());
  State& st = state_of(vcpu);
  st.vruntime = std::max(st.vruntime, min_vruntime(vcpu.pinned_core()));
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CfsScheduler::vcpu_removed(Vcpu& vcpu) {
  State& st = state_of(vcpu);  // CHECKs the vCPU is registered
  auto& queue = runqueue_[static_cast<std::size_t>(vcpu.pinned_core())];
  queue.erase(std::remove(queue.begin(), queue.end(), vcpu.id()), queue.end());
  st = State{};  // vcpu = nullptr: the id is never reused
}

double CfsScheduler::min_vruntime(int core) const {
  if (static_cast<std::size_t>(core) >= runqueue_.size()) return 0.0;
  double best = std::numeric_limits<double>::max();
  bool any = false;
  for (int id : runqueue_[static_cast<std::size_t>(core)]) {
    const State& st = states_[static_cast<std::size_t>(id)];
    if (st.vcpu == nullptr || st.vcpu->done()) continue;
    best = std::min(best, st.vruntime);
    any = true;
  }
  return any ? best : 0.0;
}

bool CfsScheduler::kyoto_allows(const Vcpu& /*vcpu*/) const { return true; }

bool CfsScheduler::kyoto_demoted(const Vcpu& /*vcpu*/) const { return false; }

Vcpu* CfsScheduler::pick(int core, Tick /*now*/) {
  if (static_cast<std::size_t>(core) >= runqueue_.size()) return nullptr;
  Vcpu* best = nullptr;
  double best_vr = std::numeric_limits<double>::max();
  Vcpu* best_demoted = nullptr;
  double best_demoted_vr = std::numeric_limits<double>::max();
  for (int id : runqueue_[static_cast<std::size_t>(core)]) {
    State& st = states_[static_cast<std::size_t>(id)];
    if (st.vcpu == nullptr || st.vcpu->done() || !kyoto_allows(*st.vcpu)) continue;
    if (kyoto_demoted(*st.vcpu)) {
      if (st.vruntime < best_demoted_vr) {
        best_demoted_vr = st.vruntime;
        best_demoted = st.vcpu;
      }
      continue;
    }
    if (st.vruntime < best_vr) {
      best_vr = st.vruntime;
      best = st.vcpu;
    }
  }
  return best != nullptr ? best : best_demoted;
}

void CfsScheduler::account(Vcpu& vcpu, const RunReport& report) {
  State& st = state_of(vcpu);
  st.vruntime += static_cast<double>(report.ran) * kNice0Weight / st.weight;
}

double CfsScheduler::vruntime(const Vcpu& vcpu) const { return state_of(vcpu).vruntime; }

CfsScheduler::State& CfsScheduler::state_of(const Vcpu& vcpu) {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK_MSG(id < states_.size() && states_[id].vcpu != nullptr,
                  "unregistered vCPU " << vcpu.id());
  return states_[id];
}

const CfsScheduler::State& CfsScheduler::state_of(const Vcpu& vcpu) const {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK_MSG(id < states_.size() && states_[id].vcpu != nullptr,
                  "unregistered vCPU " << vcpu.id());
  return states_[id];
}

}  // namespace kyoto::hv
