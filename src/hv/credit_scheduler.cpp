#include "hv/credit_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "hv/hypervisor.hpp"

namespace kyoto::hv {

void CreditScheduler::vcpu_added(Vcpu& vcpu) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "scheduler not attached");
  KYOTO_CHECK_MSG(vcpu.pinned_core() >= 0, "vCPU must be pinned before registration");
  const auto id = static_cast<std::size_t>(vcpu.id());
  if (states_.size() <= id) states_.resize(id + 1);
  State& st = states_[id];
  st.vcpu = &vcpu;
  st.remain_credit = kCreditPerSlice * vcpu.vm().config().weight / kDefaultWeight;
  st.capped = vcpu.vm().config().cpu_cap_percent > 0;
  st.cap_budget = slice_cap_budget(vcpu);

  const auto cores = static_cast<std::size_t>(hv_->machine().topology().total_cores());
  if (runqueue_.size() < cores) runqueue_.resize(cores);
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CreditScheduler::vcpu_migrated(Vcpu& vcpu, int old_core) {
  KYOTO_CHECK(old_core >= 0 && static_cast<std::size_t>(old_core) < runqueue_.size());
  auto& old_queue = runqueue_[static_cast<std::size_t>(old_core)];
  old_queue.erase(std::remove(old_queue.begin(), old_queue.end(), vcpu.id()), old_queue.end());
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CreditScheduler::vcpu_removed(Vcpu& vcpu) {
  State& st = state_of(vcpu);  // CHECKs the vCPU is registered
  auto& queue = runqueue_[static_cast<std::size_t>(vcpu.pinned_core())];
  queue.erase(std::remove(queue.begin(), queue.end(), vcpu.id()), queue.end());
  // Drop any core's slice stickiness on the departing vCPU so the
  // next pick() re-selects instead of consulting dead state.
  for (CoreCursor& cursor : cursors_) {
    if (cursor.current == vcpu.id()) cursor = CoreCursor{};
  }
  st = State{};  // vcpu = nullptr: the id is never reused
}

Cycles CreditScheduler::slice_cap_budget(const Vcpu& vcpu) const {
  const int cap = vcpu.vm().config().cpu_cap_percent;
  if (cap <= 0) return 0;
  const Cycles slice_cycles = hv_->machine().cycles_per_tick() * kTicksPerSlice;
  return slice_cycles * cap / 100;
}

bool CreditScheduler::kyoto_allows(const Vcpu& /*vcpu*/) const { return true; }

bool CreditScheduler::kyoto_demoted(const Vcpu& /*vcpu*/) const { return false; }

bool CreditScheduler::runnable(const Vcpu& vcpu) const {
  if (vcpu.done()) return false;
  if (!kyoto_allows(vcpu)) return false;
  const State& st = state_of(vcpu);
  if (st.capped && st.cap_budget <= 0) return false;
  return true;
}

Vcpu* CreditScheduler::pick(int core, Tick /*now*/) {
  if (static_cast<std::size_t>(core) >= runqueue_.size()) return nullptr;
  auto& queue = runqueue_[static_cast<std::size_t>(core)];
  if (cursors_.size() < runqueue_.size()) cursors_.resize(runqueue_.size());
  CoreCursor& cursor = cursors_[static_cast<std::size_t>(core)];

  // Slice stickiness: keep the incumbent for up to one full 30 ms
  // slice while it stays runnable, UNDER and undemoted.
  if (cursor.current >= 0 && cursor.consecutive < static_cast<int>(kTicksPerSlice)) {
    State& cur = states_[static_cast<std::size_t>(cursor.current)];
    if (cur.vcpu != nullptr && cur.vcpu->pinned_core() == core && runnable(*cur.vcpu) &&
        cur.remain_credit > 0 && !kyoto_demoted(*cur.vcpu)) {
      ++cursor.consecutive;
      return cur.vcpu;
    }
  }
  cursor.current = -1;
  cursor.consecutive = 0;

  enum class Band { kUnder, kOver, kDemoted };
  auto select = [&](Band band) -> Vcpu* {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      State& st = states_[static_cast<std::size_t>(queue[i])];
      KYOTO_DCHECK(st.vcpu != nullptr);
      if (!runnable(*st.vcpu)) continue;
      const bool demoted = kyoto_demoted(*st.vcpu);
      const bool under = st.remain_credit > 0;
      const Band mine = demoted ? Band::kDemoted : (under ? Band::kUnder : Band::kOver);
      if (mine != band) continue;
      // Round-robin: rotate the chosen vCPU to the queue tail.
      const int id = queue[i];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      queue.push_back(id);
      return st.vcpu;
    }
    return nullptr;
  };

  // Priority UNDER first, then OVER (work conserving), then — only if
  // the core would otherwise idle — Kyoto-demoted vCPUs.
  Vcpu* chosen = select(Band::kUnder);
  if (chosen == nullptr) chosen = select(Band::kOver);
  if (chosen == nullptr) chosen = select(Band::kDemoted);
  if (chosen != nullptr) {
    cursor.current = chosen->id();
    cursor.consecutive = 1;
  }
  return chosen;
}

void CreditScheduler::account(Vcpu& vcpu, const RunReport& report) {
  State& st = state_of(vcpu);
  const Cycles cpt = hv_->machine().cycles_per_tick();
  const int burnt = static_cast<int>(
      std::lround(static_cast<double>(kCreditPerTick) * static_cast<double>(report.ran) /
                  static_cast<double>(cpt)));
  st.remain_credit -= burnt;
  st.remain_credit = std::max(st.remain_credit, -kCreditPerSlice);
  if (st.capped) st.cap_budget -= report.ran;
}

Cycles CreditScheduler::max_burst(const Vcpu& vcpu, Cycles tick_budget) {
  const State& st = state_of(vcpu);
  if (!st.capped) return tick_budget;
  return std::min(tick_budget, std::max<Cycles>(st.cap_budget, 0));
}

void CreditScheduler::slice_end(Tick /*now*/) {
  // Xen's accounting: each pCPU contributes one slice worth of credit
  // (kCreditPerSlice) distributed among the vCPUs competing for that
  // pCPU proportionally to their weights, with no vCPU earning more
  // than a full slice (it cannot use more than one core).
  for (std::size_t core = 0; core < runqueue_.size(); ++core) {
    long long total_weight = 0;
    for (int id : runqueue_[core]) {
      const State& st = states_[static_cast<std::size_t>(id)];
      if (st.vcpu != nullptr && !st.vcpu->done()) {
        total_weight += st.vcpu->vm().config().weight;
      }
    }
    if (total_weight == 0) continue;
    for (int id : runqueue_[core]) {
      State& st = states_[static_cast<std::size_t>(id)];
      if (st.vcpu == nullptr || st.vcpu->done()) continue;
      const long long share = static_cast<long long>(kCreditPerSlice) *
                              st.vcpu->vm().config().weight / total_weight;
      const int earn = static_cast<int>(std::min<long long>(share, kCreditPerSlice));
      // No banking beyond one slice's worth of credit (Xen clamps too).
      st.remain_credit = std::min(st.remain_credit + earn, std::max(earn, 1));
      st.cap_budget = slice_cap_budget(*st.vcpu);
    }
  }
}

CreditScheduler::State& CreditScheduler::state_of(const Vcpu& vcpu) {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK_MSG(id < states_.size() && states_[id].vcpu != nullptr,
                  "unregistered vCPU " << vcpu.id());
  return states_[id];
}

const CreditScheduler::State& CreditScheduler::state_of(const Vcpu& vcpu) const {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK_MSG(id < states_.size() && states_[id].vcpu != nullptr,
                  "unregistered vCPU " << vcpu.id());
  return states_[id];
}

int CreditScheduler::remain_credit(const Vcpu& vcpu) const { return state_of(vcpu).remain_credit; }

bool CreditScheduler::in_over(const Vcpu& vcpu) const {
  return state_of(vcpu).remain_credit <= 0;
}

double CreditScheduler::cap_budget_fraction(const Vcpu& vcpu) const {
  const State& st = state_of(vcpu);
  if (!st.capped) return 1.0;
  const Cycles full = slice_cap_budget(vcpu);
  if (full <= 0) return 0.0;
  return std::max(0.0, static_cast<double>(st.cap_budget) / static_cast<double>(full));
}

}  // namespace kyoto::hv
