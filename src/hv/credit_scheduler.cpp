#include "hv/credit_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "hv/hypervisor.hpp"

namespace kyoto::hv {

void CreditScheduler::attach(Hypervisor& hv) {
  Scheduler::attach(hv);
  cycles_per_tick_ = hv.machine().cycles_per_tick();
  const auto cores = static_cast<std::size_t>(hv.machine().topology().total_cores());
  if (runqueue_.size() < cores) runqueue_.resize(cores);
  if (cursors_.size() < cores) cursors_.resize(cores);
}

void CreditScheduler::ensure_capacity(std::size_t id) {
  if (vcpu_.size() > id) return;
  const std::size_t n = id + 1;
  vcpu_.resize(n, nullptr);
  remain_credit_.resize(n, kCreditPerSlice);
  cap_budget_.resize(n, 0);
  cap_refill_.resize(n, 0);
  capped_.resize(n, 0);
  done_.resize(n, 0);
  vm_id_.resize(n, -1);
  weight_.resize(n, kDefaultWeight);
}

void CreditScheduler::vcpu_added(Vcpu& vcpu) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "scheduler not attached");
  KYOTO_CHECK_MSG(vcpu.pinned_core() >= 0, "vCPU must be pinned before registration");
  const auto id = static_cast<std::size_t>(vcpu.id());
  ensure_capacity(id);
  vcpu_[id] = &vcpu;
  remain_credit_[id] = kCreditPerSlice * vcpu.vm().config().weight / kDefaultWeight;
  capped_[id] = vcpu.vm().config().cpu_cap_percent > 0 ? 1 : 0;
  cap_refill_[id] = slice_cap_budget(vcpu);
  cap_budget_[id] = cap_refill_[id];
  done_[id] = vcpu.done() ? 1 : 0;
  vm_id_[id] = vcpu.vm().id();
  weight_[id] = vcpu.vm().config().weight;

  const auto cores = static_cast<std::size_t>(hv_->machine().topology().total_cores());
  if (runqueue_.size() < cores) runqueue_.resize(cores);
  if (cursors_.size() < runqueue_.size()) cursors_.resize(runqueue_.size());
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CreditScheduler::vcpu_migrated(Vcpu& vcpu, int old_core) {
  KYOTO_CHECK(old_core >= 0 && static_cast<std::size_t>(old_core) < runqueue_.size());
  auto& old_queue = runqueue_[static_cast<std::size_t>(old_core)];
  old_queue.erase(std::remove(old_queue.begin(), old_queue.end(), vcpu.id()), old_queue.end());
  runqueue_[static_cast<std::size_t>(vcpu.pinned_core())].push_back(vcpu.id());
}

void CreditScheduler::vcpu_removed(Vcpu& vcpu) {
  const std::size_t id = checked_id(vcpu);
  auto& queue = runqueue_[static_cast<std::size_t>(vcpu.pinned_core())];
  queue.erase(std::remove(queue.begin(), queue.end(), vcpu.id()), queue.end());
  // Drop any core's slice stickiness on the departing vCPU so the
  // next pick() re-selects instead of consulting dead state.
  for (CoreCursor& cursor : cursors_) {
    if (cursor.current == vcpu.id()) cursor = CoreCursor{};
  }
  // vcpu_ = nullptr: the id is never reused.
  vcpu_[id] = nullptr;
  remain_credit_[id] = kCreditPerSlice;
  cap_budget_[id] = 0;
  cap_refill_[id] = 0;
  capped_[id] = 0;
  done_[id] = 0;
  vm_id_[id] = -1;
  weight_[id] = kDefaultWeight;
}

Cycles CreditScheduler::slice_cap_budget(const Vcpu& vcpu) const {
  const int cap = vcpu.vm().config().cpu_cap_percent;
  if (cap <= 0) return 0;
  const Cycles slice_cycles = hv_->machine().cycles_per_tick() * kTicksPerSlice;
  return slice_cycles * cap / 100;
}

bool CreditScheduler::runnable(const Vcpu& vcpu) const {
  if (vcpu.done()) return false;
  if (vm_blocked(vcpu.vm().id())) return false;
  const auto id = static_cast<std::size_t>(vcpu.id());
  if (capped_[id] != 0 && cap_budget_[id] <= 0) return false;
  return true;
}

Vcpu* CreditScheduler::pick(int core, Tick /*now*/) {
  if (static_cast<std::size_t>(core) >= runqueue_.size()) return nullptr;
  auto& queue = runqueue_[static_cast<std::size_t>(core)];
  if (cursors_.size() < runqueue_.size()) cursors_.resize(runqueue_.size());
  CoreCursor& cursor = cursors_[static_cast<std::size_t>(core)];
  return reference_engine_ ? pick_reference(queue, cursor, core)
                           : pick_batched(queue, cursor, core);
}

Vcpu* CreditScheduler::pick_batched(std::vector<int>& queue, CoreCursor& cursor, int core) {
  // Slice stickiness: keep the incumbent for up to one full 30 ms
  // slice while it stays runnable, UNDER and undemoted — evaluated as
  // one fused 0/1 predicate over the SoA state.
  if (cursor.current >= 0 && cursor.consecutive < static_cast<int>(kTicksPerSlice)) {
    const auto cid = static_cast<std::size_t>(cursor.current);
    Vcpu* cv = vcpu_[cid];
    if (cv != nullptr) {
      const unsigned keep = static_cast<unsigned>(cv->pinned_core() == core) &
                            runnable_bit(cid) &
                            static_cast<unsigned>(remain_credit_[cid] > 0) &
                            (static_cast<unsigned>(vm_demoted(vm_id_[cid])) ^ 1u);
      if (keep != 0) {
        ++cursor.consecutive;
        return cv;
      }
    }
  }
  cursor.current = -1;
  cursor.consecutive = 0;

  // Band selection over compact runnable bitmasks: one pass builds
  // UNDER/OVER/DEMOTED masks keyed by queue position (chunks of 64),
  // then the winner is the lowest set bit of the first non-empty band
  // — exactly the reference engine's first-in-queue-order scan, with
  // no per-entry branching.
  const std::size_t n = queue.size();
  int first_under = -1;
  int first_over = -1;
  int first_dem = -1;
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t chunk = std::min<std::size_t>(64, n - base);
    std::uint64_t under_m = 0;
    std::uint64_t over_m = 0;
    std::uint64_t dem_m = 0;
    for (std::size_t j = 0; j < chunk; ++j) {
      const auto id = static_cast<std::size_t>(queue[base + j]);
      const auto run = static_cast<std::uint64_t>(runnable_bit(id));
      const auto dem = static_cast<std::uint64_t>(vm_demoted(vm_id_[id]));
      const auto under = static_cast<std::uint64_t>(remain_credit_[id] > 0);
      under_m |= (run & (dem ^ 1u) & under) << j;
      over_m |= (run & (dem ^ 1u) & (under ^ 1u)) << j;
      dem_m |= (run & dem) << j;
    }
    if (first_under < 0 && under_m != 0)
      first_under = static_cast<int>(base) + std::countr_zero(under_m);
    if (first_over < 0 && over_m != 0)
      first_over = static_cast<int>(base) + std::countr_zero(over_m);
    if (first_dem < 0 && dem_m != 0)
      first_dem = static_cast<int>(base) + std::countr_zero(dem_m);
    if (first_under >= 0) break;  // UNDER beats every later band
  }

  // Priority UNDER first, then OVER (work conserving), then — only if
  // the core would otherwise idle — Kyoto-demoted vCPUs.
  int pos = first_under;
  pos = pos >= 0 ? pos : first_over;
  pos = pos >= 0 ? pos : first_dem;
  if (pos < 0) return nullptr;

  // Round-robin: rotate the chosen vCPU to the queue tail.
  const int id = queue[static_cast<std::size_t>(pos)];
  queue.erase(queue.begin() + pos);
  queue.push_back(id);
  cursor.current = id;
  cursor.consecutive = 1;
  return vcpu_[static_cast<std::size_t>(id)];
}

Vcpu* CreditScheduler::pick_reference(std::vector<int>& queue, CoreCursor& cursor, int core) {
  // The pre-rework branchy control flow, kept verbatim over the SoA
  // state as the reference engine.
  if (cursor.current >= 0 && cursor.consecutive < static_cast<int>(kTicksPerSlice)) {
    const auto cid = static_cast<std::size_t>(cursor.current);
    Vcpu* cv = vcpu_[cid];
    if (cv != nullptr && cv->pinned_core() == core && runnable(*cv) &&
        remain_credit_[cid] > 0 && !vm_demoted(vm_id_[cid])) {
      ++cursor.consecutive;
      return cv;
    }
  }
  cursor.current = -1;
  cursor.consecutive = 0;

  enum class Band { kUnder, kOver, kDemoted };
  auto select = [&](Band band) -> Vcpu* {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const auto id = static_cast<std::size_t>(queue[i]);
      KYOTO_DCHECK(vcpu_[id] != nullptr);
      if (!runnable(*vcpu_[id])) continue;
      const bool demoted = vm_demoted(vm_id_[id]);
      const bool under = remain_credit_[id] > 0;
      const Band mine = demoted ? Band::kDemoted : (under ? Band::kUnder : Band::kOver);
      if (mine != band) continue;
      const int chosen = queue[i];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      queue.push_back(chosen);
      return vcpu_[id];
    }
    return nullptr;
  };

  Vcpu* chosen = select(Band::kUnder);
  if (chosen == nullptr) chosen = select(Band::kOver);
  if (chosen == nullptr) chosen = select(Band::kDemoted);
  if (chosen != nullptr) {
    cursor.current = chosen->id();
    cursor.consecutive = 1;
  }
  return chosen;
}

void CreditScheduler::account(Vcpu& vcpu, const RunReport& report) {
  const std::size_t id = checked_id(vcpu);
  // The burn formula's double rounding is part of the pinned behavior
  // (golden traces): both engines keep the exact expression.
  const int burnt = static_cast<int>(
      std::lround(static_cast<double>(kCreditPerTick) * static_cast<double>(report.ran) /
                  static_cast<double>(cycles_per_tick_)));
  if (reference_engine_) {
    remain_credit_[id] -= burnt;
    remain_credit_[id] = std::max(remain_credit_[id], -kCreditPerSlice);
    if (capped_[id] != 0) cap_budget_[id] -= report.ran;
  } else {
    const int debited = remain_credit_[id] - burnt;
    remain_credit_[id] = debited > -kCreditPerSlice ? debited : -kCreditPerSlice;
    cap_budget_[id] -= report.ran * static_cast<Cycles>(capped_[id]);
  }
  done_[id] = vcpu.done() ? 1 : 0;
}

Cycles CreditScheduler::max_burst(const Vcpu& vcpu, Cycles tick_budget) {
  const std::size_t id = checked_id(vcpu);
  const Cycles left = cap_budget_[id] > 0 ? cap_budget_[id] : 0;
  const Cycles capped_limit = left < tick_budget ? left : tick_budget;
  return capped_[id] != 0 ? capped_limit : tick_budget;
}

void CreditScheduler::slice_end(Tick /*now*/) {
  if (reference_engine_) {
    slice_end_reference();
  } else {
    slice_end_batched();
  }
}

void CreditScheduler::slice_end_batched() {
  // Xen's accounting: each pCPU contributes one slice worth of credit
  // (kCreditPerSlice) distributed among the vCPUs competing for that
  // pCPU proportionally to their weights, with no vCPU earning more
  // than a full slice (it cannot use more than one core).  Inactive
  // (departed/done) entries are masked out by multiply/select instead
  // of branched over.
  for (std::size_t core = 0; core < runqueue_.size(); ++core) {
    const auto& queue = runqueue_[core];
    long long total_weight = 0;
    for (int qid : queue) {
      const auto id = static_cast<std::size_t>(qid);
      const long long active =
          static_cast<long long>(vcpu_[id] != nullptr) &
          static_cast<long long>(static_cast<unsigned>(done_[id]) ^ 1u);
      total_weight += static_cast<long long>(weight_[id]) * active;
    }
    if (total_weight == 0) continue;
    for (int qid : queue) {
      const auto id = static_cast<std::size_t>(qid);
      const long long share =
          static_cast<long long>(kCreditPerSlice) * weight_[id] / total_weight;
      const int earn = static_cast<int>(share < kCreditPerSlice ? share : kCreditPerSlice);
      // No banking beyond one slice's worth of credit (Xen clamps too).
      const int bank = earn > 1 ? earn : 1;
      const int refreshed = remain_credit_[id] + earn;
      const int clamped = refreshed < bank ? refreshed : bank;
      const int active = static_cast<int>(
          static_cast<unsigned>(vcpu_[id] != nullptr) &
          (static_cast<unsigned>(done_[id]) ^ 1u));
      remain_credit_[id] += (clamped - remain_credit_[id]) * active;
      cap_budget_[id] = active != 0 ? cap_refill_[id] : cap_budget_[id];
    }
  }
}

void CreditScheduler::slice_end_reference() {
  for (std::size_t core = 0; core < runqueue_.size(); ++core) {
    long long total_weight = 0;
    for (int qid : runqueue_[core]) {
      const auto id = static_cast<std::size_t>(qid);
      if (vcpu_[id] != nullptr && !vcpu_[id]->done()) {
        total_weight += weight_[id];
      }
    }
    if (total_weight == 0) continue;
    for (int qid : runqueue_[core]) {
      const auto id = static_cast<std::size_t>(qid);
      if (vcpu_[id] == nullptr || vcpu_[id]->done()) continue;
      const long long share =
          static_cast<long long>(kCreditPerSlice) * weight_[id] / total_weight;
      const int earn = static_cast<int>(std::min<long long>(share, kCreditPerSlice));
      remain_credit_[id] = std::min(remain_credit_[id] + earn, std::max(earn, 1));
      cap_budget_[id] = cap_refill_[id];
    }
  }
}

std::size_t CreditScheduler::checked_id(const Vcpu& vcpu) const {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK_MSG(id < vcpu_.size() && vcpu_[id] != nullptr,
                  "unregistered vCPU " << vcpu.id());
  return id;
}

int CreditScheduler::remain_credit(const Vcpu& vcpu) const {
  return remain_credit_[checked_id(vcpu)];
}

bool CreditScheduler::in_over(const Vcpu& vcpu) const {
  return remain_credit_[checked_id(vcpu)] <= 0;
}

double CreditScheduler::cap_budget_fraction(const Vcpu& vcpu) const {
  const std::size_t id = checked_id(vcpu);
  if (capped_[id] == 0) return 1.0;
  const Cycles full = cap_refill_[id];
  if (full <= 0) return 0.0;
  return std::max(0.0, static_cast<double>(cap_budget_[id]) / static_cast<double>(full));
}

}  // namespace kyoto::hv
