// Pisces-style co-kernel "scheduling" (Ouyang et al., HPDC 2015 [4]).
//
// Pisces gives each HPC application an *enclave*: dedicated cores and
// memory managed by a lightweight co-kernel, with no hypervisor in
// the data path.  There is no time sharing at all — a vCPU owns its
// core outright.  That removes every software interference channel,
// but the LLC is still silicon shared by all enclaves on the socket,
// which is exactly the residual interference Fig 8 demonstrates and
// KS4Pisces (kyoto/ks4pisces.hpp) closes by duty-cycling polluting
// enclaves (punish gates arrive as bitmasks via set_kyoto_gates).
#pragma once

#include <string>
#include <vector>

#include "hv/scheduler.hpp"

namespace kyoto::hv {

class PiscesScheduler : public Scheduler {
 public:
  std::string name() const override { return "Pisces"; }

  /// Each vCPU must be pinned to a core no other vCPU uses (enclaves
  /// own their cores); violations throw.
  void vcpu_added(Vcpu& vcpu) override;
  void vcpu_migrated(Vcpu& vcpu, int old_core) override;
  /// Destroying an enclave releases its core for a later enclave.
  void vcpu_removed(Vcpu& vcpu) override;
  Vcpu* pick(int core, Tick now) override;
  void account(Vcpu& vcpu, const RunReport& report) override {
    (void)vcpu;
    (void)report;
  }
  void slice_end(Tick /*now*/) override {}

 private:
  std::vector<Vcpu*> owner_;      // per core: the enclave vCPU owning it
  std::vector<int> owner_vm_id_;  // per core: owning VM id (-1 = free)
};

}  // namespace kyoto::hv
