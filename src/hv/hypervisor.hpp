// The hypervisor: ties machine, scheduler and VMs into a tick loop.
//
// Time advances in 10 ms ticks.  At each tick the scheduler picks one
// vCPU per core; the machine then executes all picked vCPUs for the
// tick's cycle budget in fine-grained interleaved sub-quanta, so that
// cores genuinely contend on the shared LLC *within* a tick (without
// interleaving, "parallel" execution would degenerate into coarse
// alternation and Fig 1's parallel-vs-alternative contrast would
// vanish).  After execution, each vCPU's burst is accounted to the
// scheduler together with its perfctr PMC delta; every third tick the
// slice ends (Xen's 30 ms accounting period).
//
// Execution is partitioned per socket (see README "Threading model"):
// cores of different sockets share no mutable state during a tick —
// private L1/L2 and PMU per core, LLC / memory bus / replacement RNG
// per socket, scheduler decisions frozen in the serial prologue — so
// each socket's sub-quantum interleaving can run on its own thread
// while producing bit-identical results to the serial engine.  The
// prologue (scheduler picks) and epilogue (PMC accounting, tick
// hooks) always run serially in fixed core order: they ARE the
// deterministic merge.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/align.hpp"
#include "common/arena.hpp"
#include "hv/machine.hpp"
#include "hv/scheduler.hpp"
#include "hv/vm.hpp"

namespace kyoto {
class ThreadPool;
}

namespace kyoto::hv {

class Hypervisor {
 public:
  /// Sub-quanta per tick: granularity of intra-tick core interleaving.
  static constexpr int kSubQuantaPerTick = 64;

  Hypervisor(const MachineConfig& machine_config, std::unique_ptr<Scheduler> scheduler);
  ~Hypervisor();

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Creates a VM with one workload per vCPU.  vCPUs are pinned
  /// round-robin over all cores unless `pinned_cores` is given (one
  /// entry per vCPU).
  Vm& create_vm(const VmConfig& config,
                std::vector<std::unique_ptr<workloads::Workload>> vcpu_workloads,
                const std::vector<int>& pinned_cores = {});

  /// Convenience: single-vCPU VM pinned to `core`.
  Vm& create_vm(const VmConfig& config, std::unique_ptr<workloads::Workload> workload,
                int core);

  /// Tears a VM down mid-run (churn departure), at a tick boundary:
  /// every vCPU is dequeued from the scheduler (vcpu_removed), its
  /// arena ref-block is recycled for a future create_vm, vm-removed
  /// hooks fire (monitors abort campaigns, controllers drop slots)
  /// while the Vm object is still alive, and the VM's LLC lines are
  /// invalidated with exact attribution bookkeeping
  /// (MemorySystem::release_vm_lines).  VM ids are never reused: the
  /// slot stays null forever, vm() CHECK-fails for it, find_vm
  /// returns nullptr, and vms() skips it.
  void destroy_vm(int vm_id);

  /// Moves a vCPU to another core (at a tick boundary; callable from
  /// tick hooks and monitors).  Private caches are NOT flushed — the
  /// vCPU simply goes cold on the new core, and NUMA-remote memory
  /// accesses now pay the remote latency if the new core is on
  /// another node (Fig 9's overhead).
  void migrate(Vcpu& vcpu, int new_core);

  /// Tick-execution worker threads.  1 (default) runs the serial
  /// engine; N > 1 executes up to min(N, sockets) socket partitions
  /// concurrently — results are bit-identical either way, which
  /// tests/integration/parallel_equivalence_test.cpp enforces.
  void set_execution_threads(int threads);
  int execution_threads() const { return exec_threads_; }

  /// Tick-control-plane engine knob (mirrors set_ref_batch_engine on
  /// the workload side).  true (default) runs the branch-light engine:
  /// branchless scheduler accounting, batched per-core PMU deltas and
  /// the identity-switch fast path.  false restores the pre-rework
  /// reference control flow — eager switch-out/in every tick and the
  /// branchy accounting paths — flushing any lazy residents first.
  /// Results are bit-identical either way; the engines may be swapped
  /// mid-run (tests/hv/accounting_oracle_test.cpp enforces this).
  void set_control_plane_engine(bool batched);
  bool batched_control_plane() const { return batched_control_plane_; }

  /// Ticks on which a scheduled core kept its resident vCPU and the
  /// switch-out/switch-in pair was skipped (identity-switch fast
  /// path).  Stays 0 under the reference engine.
  std::int64_t identity_switch_ticks() const { return identity_switch_ticks_; }

  /// Advances virtual time.
  void run_ticks(Tick n);
  void run_slices(Tick n) { run_ticks(n * kTicksPerSlice); }
  /// Runs until `predicate()` is true or `max_ticks` elapse; returns
  /// the number of ticks executed.
  Tick run_until(const std::function<bool()>& predicate, Tick max_ticks);

  Tick now() const { return now_; }
  std::int64_t wall_cycle() const { return now_ * machine_->cycles_per_tick(); }

  Machine& machine() { return *machine_; }
  const Machine& machine() const { return *machine_; }
  Scheduler& scheduler() { return *scheduler_; }

  /// The live VMs (destroyed slots are skipped), in id order.
  std::vector<Vm*> vms();
  /// The VM with id `id`; CHECK-fails if it was destroyed (find_vm is
  /// the churn-tolerant lookup).
  Vm& vm(int id) {
    Vm* v = vms_.at(static_cast<std::size_t>(id)).get();
    KYOTO_CHECK_MSG(v != nullptr, "vm " << id << " was destroyed");
    return *v;
  }
  /// The VM with id `id`, or nullptr when it was destroyed or never
  /// existed.
  Vm* find_vm(int id) {
    if (id < 0 || static_cast<std::size_t>(id) >= vms_.size()) return nullptr;
    return vms_[static_cast<std::size_t>(id)].get();
  }
  /// Number of VM ids ever allocated (ids are dense in
  /// [0, vm_count()), but some may be destroyed — see live_vm_count).
  int vm_count() const { return static_cast<int>(vms_.size()); }
  /// Number of VMs currently alive.
  int live_vm_count() const;

  /// Observers called after every tick (timeline sampling, monitors).
  using TickHook = std::function<void(Hypervisor&, Tick)>;
  void add_tick_hook(TickHook hook) { tick_hooks_.push_back(std::move(hook)); }

  /// Observers of per-burst accounting, called in the tick's serial
  /// epilogue immediately after the scheduler's own account() for the
  /// same burst (fixed core order — the deterministic merge).  This is
  /// the shadow-monitoring attach point: a hook sees exactly the
  /// RunReports the scheduler's monitor sees, on fully merged machine
  /// state, without being the scheduler's monitor.  Hooks must only
  /// observe — mutating scheduler or machine state from here would
  /// perturb the run they are shadowing.
  using AccountHook = std::function<void(Vcpu&, const RunReport&)>;
  void add_account_hook(AccountHook hook) { account_hooks_.push_back(std::move(hook)); }

  /// Observers of VM destruction, called from destroy_vm in
  /// registration order while the Vm object is still fully alive
  /// (before its LLC lines are released).  Monitors use this to abort
  /// sampling campaigns targeting the departing VM; controllers to
  /// stop charging it.
  using VmRemovedHook = std::function<void(Hypervisor&, Vm&)>;
  void add_vm_removed_hook(VmRemovedHook hook) {
    vm_removed_hooks_.push_back(std::move(hook));
  }

  /// Hot-path arena introspection: the zero-alloc churn gate pins
  /// that steady-state churn stops growing it once ref-block
  /// recycling kicks in (tests/hv/zero_alloc_test.cpp).
  const BumpArena& exec_arena() const { return exec_arena_; }

  /// Per-core idle ticks so far (no runnable vCPU or punished VMs).
  std::int64_t idle_ticks(int core) const;
  /// Ticks in which `vcpu` was scheduled.
  std::int64_t sched_ticks(const Vcpu& vcpu) const;

 private:
  /// Per-core execution state of the tick in flight.  Padded to a
  /// cache line: `ran`/`remaining` are written from inside the socket
  /// partitions, and adjacent cores across a socket boundary must not
  /// share a host line.
  struct alignas(kCacheLineBytes) CoreSlot {
    Vcpu* vcpu = nullptr;
    Cycles remaining = 0;
    Cycles ran = 0;
  };

  /// The single tick entry point (run_ticks and run_until both funnel
  /// here, so instrumentation cannot diverge between them): serial
  /// prologue -> per-socket execution -> serial merge/epilogue.
  void run_one_tick();
  /// Executes one socket's cores through the tick's sub-quantum
  /// interleaving.  Touches only socket-local state; safe to run
  /// concurrently for different sockets.
  void execute_partition(int socket, CoreSlot* slots);
  /// Materializes `core`'s lazy resident (identity-switch fast path):
  /// switch-out folds the in-flight PMU delta into the vCPU's
  /// accumulated counters.  No-op when the core has none.
  void flush_resident(int core);

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Scheduler> scheduler_;
  /// Bump arena for hot per-vCPU execution buffers (currently the
  /// ref-batch storage carved out in create_vm): allocation happens at
  /// admission time, never from the tick loop, and all vCPUs' hot
  /// buffers land contiguously instead of scattered across the heap.
  BumpArena exec_arena_;
  std::vector<std::unique_ptr<Vm>> vms_;  // by vm id; null = destroyed
  std::vector<TickHook> tick_hooks_;
  std::vector<AccountHook> account_hooks_;
  std::vector<VmRemovedHook> vm_removed_hooks_;
  /// Ref-blocks of destroyed vCPUs, recycled by create_vm so
  /// steady-state churn stops growing the arena once the live-VM
  /// high-water mark is reached (the zero-alloc churn gate).
  std::vector<workloads::AccessRef*> free_ref_blocks_;
  Tick now_ = 0;
  int next_vcpu_id_ = 0;
  int next_default_core_ = 0;
  std::vector<std::int64_t> idle_ticks_;        // per core
  std::vector<std::int64_t> sched_tick_count_;  // per vcpu id
  std::vector<CoreSlot> slots_;                 // per core, reused every tick
  /// Per core: vCPU still switched in from an earlier tick (batched
  /// engine only).  Any event that invalidates the pairing — a
  /// different pick, migrate, destroy_vm, engine switch — flushes it
  /// through VirtualCounters::switch_out before proceeding.
  std::vector<Vcpu*> resident_;
  /// Batched PMU virtualization: prologue snapshot and epilogue delta
  /// per core, flushed in one straight-line fixed-core-order pass so
  /// the accounting loop consumes plain values instead of interleaving
  /// PMU reads with branchy scheduler work.
  std::vector<pmc::CounterSet> tick_pmu_base_;
  std::vector<pmc::CounterSet> tick_pmu_delta_;
  bool batched_control_plane_ = true;
  std::int64_t identity_switch_ticks_ = 0;
  int exec_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // non-null only when partitions run concurrently
  bool in_tick_execution_ = false;    // guards structural mutation from partitions
};

}  // namespace kyoto::hv
