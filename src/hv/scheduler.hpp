// Scheduler interface: the hypervisor's per-core vCPU selection.
//
// The contract mirrors what KS4Xen needed from Xen: a per-tick pick
// per core, per-run accounting (with the perfctr PMC delta of that
// run, which is what Kyoto's monitoring consumes), and a slice-end
// hook (Xen's 30 ms accounting period) where credits — and for Kyoto,
// pollution quotas — are replenished.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/units.hpp"
#include "hv/vm.hpp"
#include "pmc/counters.hpp"

namespace kyoto::hv {

class Hypervisor;

/// What one vCPU did during one scheduled burst (one tick on a core).
struct RunReport {
  int core = -1;
  Tick tick = 0;
  Cycles ran = 0;                 // cycles actually executed
  pmc::CounterSet pmc_delta;      // per-vCPU counter delta for the burst
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once when the hypervisor adopts this scheduler.
  virtual void attach(Hypervisor& hv) { hv_ = &hv; }

  /// Registers a vCPU (already pinned to its core).
  virtual void vcpu_added(Vcpu& vcpu) = 0;

  /// Re-homes a vCPU after migration to a new pinned core.
  virtual void vcpu_migrated(Vcpu& vcpu, int old_core) = 0;

  /// Unregisters a vCPU whose VM is being destroyed: the scheduler
  /// must drop it from every runqueue and forget its per-id state so
  /// the next pick() cannot return it.  Called at a tick boundary
  /// (never from inside execution), before the VM object dies.  The
  /// default rejects destruction so schedulers that predate churn
  /// fail loudly instead of dangling.
  virtual void vcpu_removed(Vcpu& vcpu) {
    KYOTO_CHECK_MSG(false, "scheduler " << name() << " cannot remove vCPU " << vcpu.id()
                                        << ": vcpu_removed not implemented");
  }

  /// Chooses the vCPU to run on `core` for tick `now`; nullptr idles
  /// the core.  A vCPU must never be returned for two cores in the
  /// same tick.
  virtual Vcpu* pick(int core, Tick now) = 0;

  /// Upper bound on the cycles the picked vCPU may execute this tick
  /// (sub-tick enforcement of caps).  Default: the full budget.
  virtual Cycles max_burst(const Vcpu& vcpu, Cycles tick_budget) {
    (void)vcpu;
    return tick_budget;
  }

  /// Accounts one finished burst (called after the tick's execution).
  virtual void account(Vcpu& vcpu, const RunReport& report) = 0;

  /// Called every kTicksPerSlice ticks, after accounting.
  virtual void slice_end(Tick now) = 0;

 protected:
  Hypervisor* hv_ = nullptr;
};

}  // namespace kyoto::hv
