// Scheduler interface: the hypervisor's per-core vCPU selection.
//
// The contract mirrors what KS4Xen needed from Xen: a per-tick pick
// per core, per-run accounting (with the perfctr PMC delta of that
// run, which is what Kyoto's monitoring consumes), and a slice-end
// hook (Xen's 30 ms accounting period) where credits — and for Kyoto,
// pollution quotas — are replenished.
//
// Kyoto gating is wired through compact per-VM bitmasks instead of
// virtual predicates: the PollutionController maintains a punished
// bitset (one bit per VM id), and the Ks4* schedulers hand the base
// scheduler a pointer to it at attach() via set_kyoto_gates.  The hot
// pick/accounting loops then test gate bits with plain word
// arithmetic — no per-entry virtual dispatch, no data-dependent
// branches.  A scheduler with no gates wired (the vanilla XCS/CFS/
// Pisces baselines) sees "never blocked, never demoted".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "hv/vm.hpp"
#include "pmc/counters.hpp"

namespace kyoto::hv {

class Hypervisor;

/// What one vCPU did during one scheduled burst (one tick on a core).
struct RunReport {
  int core = -1;
  Tick tick = 0;
  Cycles ran = 0;                 // cycles actually executed
  pmc::CounterSet pmc_delta;      // per-vCPU counter delta for the burst
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once when the hypervisor adopts this scheduler.
  virtual void attach(Hypervisor& hv) { hv_ = &hv; }

  /// Registers a vCPU (already pinned to its core).
  virtual void vcpu_added(Vcpu& vcpu) = 0;

  /// Re-homes a vCPU after migration to a new pinned core.
  virtual void vcpu_migrated(Vcpu& vcpu, int old_core) = 0;

  /// Unregisters a vCPU whose VM is being destroyed: the scheduler
  /// must drop it from every runqueue and forget its per-id state so
  /// the next pick() cannot return it.  Called at a tick boundary
  /// (never from inside execution), before the VM object dies.  The
  /// default rejects destruction so schedulers that predate churn
  /// fail loudly instead of dangling.
  virtual void vcpu_removed(Vcpu& vcpu) {
    KYOTO_CHECK_MSG(false, "scheduler " << name() << " cannot remove vCPU " << vcpu.id()
                                        << ": vcpu_removed not implemented");
  }

  /// Chooses the vCPU to run on `core` for tick `now`; nullptr idles
  /// the core.  A vCPU must never be returned for two cores in the
  /// same tick.
  virtual Vcpu* pick(int core, Tick now) = 0;

  /// Upper bound on the cycles the picked vCPU may execute this tick
  /// (sub-tick enforcement of caps).  Default: the full budget.
  virtual Cycles max_burst(const Vcpu& vcpu, Cycles tick_budget) {
    (void)vcpu;
    return tick_budget;
  }

  /// Accounts one finished burst (called after the tick's execution).
  virtual void account(Vcpu& vcpu, const RunReport& report) = 0;

  /// Called every kTicksPerSlice ticks, after accounting.
  virtual void slice_end(Tick now) = 0;

  /// Wires the Kyoto punish gates (bit per VM id).  `blocked` bits
  /// make a VM's vCPUs unschedulable; `demoted` bits rank them below
  /// every unblocked vCPU.  Either may be null ("no such gate").  The
  /// vectors stay owned by the controller and may grow — pointees are
  /// re-read on every test, so growth is safe.
  void set_kyoto_gates(const std::vector<std::uint64_t>* blocked,
                       const std::vector<std::uint64_t>* demoted) {
    kyoto_blocked_ = blocked;
    kyoto_demoted_ = demoted;
  }

  /// Engine knob for equivalence tests and benches, mirroring
  /// Machine::set_ref_batch_engine: when true, schedulers that grew a
  /// branch-light pick/accounting engine fall back to their reference
  /// (pre-rework, branchy) control flow.  State layout is shared, so
  /// the two paths are interchangeable mid-run; results are
  /// bit-identical either way, which tests/hv/accounting_oracle_test
  /// and bench_throughput's control_plane agreement gate enforce.
  virtual void set_reference_engine(bool on) { reference_engine_ = on; }
  bool reference_engine() const { return reference_engine_; }

 protected:
  static bool test_vm_bit(const std::vector<std::uint64_t>* words, int vm_id) {
    if (words == nullptr) return false;
    const auto w = static_cast<std::size_t>(vm_id) >> 6;
    if (w >= words->size()) return false;
    return (((*words)[w] >> (static_cast<unsigned>(vm_id) & 63u)) & 1u) != 0;
  }
  bool vm_blocked(int vm_id) const { return test_vm_bit(kyoto_blocked_, vm_id); }
  bool vm_demoted(int vm_id) const { return test_vm_bit(kyoto_demoted_, vm_id); }

  Hypervisor* hv_ = nullptr;
  const std::vector<std::uint64_t>* kyoto_blocked_ = nullptr;
  const std::vector<std::uint64_t>* kyoto_demoted_ = nullptr;
  bool reference_engine_ = false;
};

}  // namespace kyoto::hv
