#include "hv/pisces.hpp"

#include "common/check.hpp"
#include "hv/hypervisor.hpp"

namespace kyoto::hv {

void PiscesScheduler::vcpu_added(Vcpu& vcpu) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "scheduler not attached");
  const int core = vcpu.pinned_core();
  KYOTO_CHECK_MSG(core >= 0, "Pisces enclave vCPU must be pinned");
  const auto cores = static_cast<std::size_t>(hv_->machine().topology().total_cores());
  if (owner_.size() < cores) {
    owner_.resize(cores, nullptr);
    owner_vm_id_.resize(cores, -1);
  }
  KYOTO_CHECK_MSG(owner_[static_cast<std::size_t>(core)] == nullptr,
                  "core " << core << " already owned by an enclave: Pisces does not share");
  owner_[static_cast<std::size_t>(core)] = &vcpu;
  owner_vm_id_[static_cast<std::size_t>(core)] = vcpu.vm().id();
}

void PiscesScheduler::vcpu_migrated(Vcpu& vcpu, int old_core) {
  KYOTO_CHECK(old_core >= 0 && static_cast<std::size_t>(old_core) < owner_.size());
  KYOTO_CHECK_MSG(owner_[static_cast<std::size_t>(old_core)] == &vcpu,
                  "migrating vCPU did not own its core");
  const auto new_core = static_cast<std::size_t>(vcpu.pinned_core());
  KYOTO_CHECK(new_core < owner_.size());
  KYOTO_CHECK_MSG(owner_[new_core] == nullptr, "migration target core already owned");
  owner_[static_cast<std::size_t>(old_core)] = nullptr;
  owner_vm_id_[static_cast<std::size_t>(old_core)] = -1;
  owner_[new_core] = &vcpu;
  owner_vm_id_[new_core] = vcpu.vm().id();
}

void PiscesScheduler::vcpu_removed(Vcpu& vcpu) {
  const auto core = static_cast<std::size_t>(vcpu.pinned_core());
  KYOTO_CHECK(core < owner_.size());
  KYOTO_CHECK_MSG(owner_[core] == &vcpu, "departing vCPU did not own its core");
  owner_[core] = nullptr;
  owner_vm_id_[core] = -1;
}

Vcpu* PiscesScheduler::pick(int core, Tick /*now*/) {
  if (static_cast<std::size_t>(core) >= owner_.size()) return nullptr;
  Vcpu* v = owner_[static_cast<std::size_t>(core)];
  if (v == nullptr) return nullptr;
  // Duty-cycle gate as select arithmetic: a done or punished enclave
  // idles its core, everything else runs unconditionally.
  const unsigned idle = static_cast<unsigned>(v->done()) |
                        static_cast<unsigned>(
                            vm_blocked(owner_vm_id_[static_cast<std::size_t>(core)]));
  return idle != 0 ? nullptr : v;
}

}  // namespace kyoto::hv
