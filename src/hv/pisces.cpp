#include "hv/pisces.hpp"

#include "common/check.hpp"
#include "hv/hypervisor.hpp"

namespace kyoto::hv {

void PiscesScheduler::vcpu_added(Vcpu& vcpu) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "scheduler not attached");
  const int core = vcpu.pinned_core();
  KYOTO_CHECK_MSG(core >= 0, "Pisces enclave vCPU must be pinned");
  const auto cores = static_cast<std::size_t>(hv_->machine().topology().total_cores());
  if (owner_.size() < cores) owner_.resize(cores, nullptr);
  KYOTO_CHECK_MSG(owner_[static_cast<std::size_t>(core)] == nullptr,
                  "core " << core << " already owned by an enclave: Pisces does not share");
  owner_[static_cast<std::size_t>(core)] = &vcpu;
}

void PiscesScheduler::vcpu_migrated(Vcpu& vcpu, int old_core) {
  KYOTO_CHECK(old_core >= 0 && static_cast<std::size_t>(old_core) < owner_.size());
  KYOTO_CHECK_MSG(owner_[static_cast<std::size_t>(old_core)] == &vcpu,
                  "migrating vCPU did not own its core");
  const auto new_core = static_cast<std::size_t>(vcpu.pinned_core());
  KYOTO_CHECK(new_core < owner_.size());
  KYOTO_CHECK_MSG(owner_[new_core] == nullptr, "migration target core already owned");
  owner_[static_cast<std::size_t>(old_core)] = nullptr;
  owner_[new_core] = &vcpu;
}

void PiscesScheduler::vcpu_removed(Vcpu& vcpu) {
  const auto core = static_cast<std::size_t>(vcpu.pinned_core());
  KYOTO_CHECK(core < owner_.size());
  KYOTO_CHECK_MSG(owner_[core] == &vcpu, "departing vCPU did not own its core");
  owner_[core] = nullptr;
}

bool PiscesScheduler::kyoto_allows(const Vcpu& /*vcpu*/) const { return true; }

Vcpu* PiscesScheduler::pick(int core, Tick /*now*/) {
  if (static_cast<std::size_t>(core) >= owner_.size()) return nullptr;
  Vcpu* v = owner_[static_cast<std::size_t>(core)];
  if (v == nullptr || v->done() || !kyoto_allows(*v)) return nullptr;
  return v;
}

}  // namespace kyoto::hv
