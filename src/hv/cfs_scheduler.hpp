// A simplified Linux CFS, the scheduler KVM vCPU threads run under.
//
// Each vCPU is a "task" with a weight; the per-core runqueue is
// ordered by virtual runtime (vruntime), which advances inversely to
// weight while the task runs.  pick() returns the runnable task with
// the smallest vruntime.  This is the substrate KS4Linux
// (kyoto/ks4linux.hpp) extends with pollution-quota throttling, the
// way CFS bandwidth control throttles cgroups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/scheduler.hpp"

namespace kyoto::hv {

class CfsScheduler : public Scheduler {
 public:
  /// Weight of a nice-0 task (Linux convention).
  static constexpr int kNice0Weight = 1024;

  std::string name() const override { return "CFS"; }

  void vcpu_added(Vcpu& vcpu) override;
  void vcpu_migrated(Vcpu& vcpu, int old_core) override;
  void vcpu_removed(Vcpu& vcpu) override;
  Vcpu* pick(int core, Tick now) override;
  void account(Vcpu& vcpu, const RunReport& report) override;
  void slice_end(Tick /*now*/) override {}

  // --- introspection ---------------------------------------------------
  double vruntime(const Vcpu& vcpu) const;

 protected:
  /// Kyoto hook (KS4Linux throttles punished VMs here).
  virtual bool kyoto_allows(const Vcpu& vcpu) const;
  /// Kyoto demote-mode hook: demoted tasks run only when no
  /// undemoted task is runnable.
  virtual bool kyoto_demoted(const Vcpu& vcpu) const;

 private:
  struct State {
    Vcpu* vcpu = nullptr;
    double vruntime = 0.0;
    int weight = kNice0Weight;
  };

  State& state_of(const Vcpu& vcpu);
  const State& state_of(const Vcpu& vcpu) const;
  double min_vruntime(int core) const;

  std::vector<State> states_;               // by vcpu id
  std::vector<std::vector<int>> runqueue_;  // per core, vcpu ids (unordered)
};

}  // namespace kyoto::hv
