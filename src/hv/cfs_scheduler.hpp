// A simplified Linux CFS, the scheduler KVM vCPU threads run under.
//
// Each vCPU is a "task" with a weight; the per-core runqueue is
// ordered by virtual runtime (vruntime), which advances inversely to
// weight while the task runs.  pick() returns the runnable task with
// the smallest vruntime.  This is the substrate KS4Linux
// (kyoto/ks4linux.hpp) extends with pollution-quota throttling, the
// way CFS bandwidth control throttles cgroups.
//
// Hot per-task state is struct-of-arrays (parallel arrays by vCPU id,
// sized at admission); the default pick engine is a branch-light
// lexicographic running-min over (band, vruntime) with select
// arithmetic and mask-tested Kyoto gates, with the pre-rework branchy
// scan kept verbatim as the reference engine — bit-identical by the
// accounting oracle test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/scheduler.hpp"

namespace kyoto::hv {

class CfsScheduler : public Scheduler {
 public:
  /// Weight of a nice-0 task (Linux convention).
  static constexpr int kNice0Weight = 1024;

  std::string name() const override { return "CFS"; }

  void vcpu_added(Vcpu& vcpu) override;
  void vcpu_migrated(Vcpu& vcpu, int old_core) override;
  void vcpu_removed(Vcpu& vcpu) override;
  Vcpu* pick(int core, Tick now) override;
  void account(Vcpu& vcpu, const RunReport& report) override;
  void slice_end(Tick /*now*/) override {}

  // --- introspection ---------------------------------------------------
  double vruntime(const Vcpu& vcpu) const;

 private:
  std::size_t checked_id(const Vcpu& vcpu) const;
  double min_vruntime(int core) const;
  void ensure_capacity(std::size_t id);

  Vcpu* pick_batched(const std::vector<int>& queue);
  Vcpu* pick_reference(const std::vector<int>& queue);

  /// Hot per-task state, struct-of-arrays by vCPU id.  `done_` caches
  /// Vcpu::done() (refreshed at admission and every account(); exact
  /// because done-ness only flips while the task runs).
  std::vector<Vcpu*> vcpu_;
  std::vector<double> vruntime_;
  std::vector<int> weight_;
  std::vector<int> vm_id_;
  std::vector<std::uint8_t> done_;

  std::vector<std::vector<int>> runqueue_;  // per core, vcpu ids (unordered)
};

}  // namespace kyoto::hv
