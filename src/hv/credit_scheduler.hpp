// The Xen credit scheduler (XCS), as described in §3.2 of the paper
// and Cherkasova et al. [16].
//
// Each VM is configured with a weight (its credit share) and an
// optional cap.  Every accounting period (time slice = 30 ms), each
// vCPU's remainCredit is replenished proportionally to its weight;
// running burns 100 credits per 10 ms tick.  vCPUs with positive
// credit are priority UNDER and run first (round-robin); exhausted
// vCPUs fall to OVER and only run work-conservingly.  A capped VM
// whose cap budget for the slice is spent cannot run at all — the cap
// is the knob Fig 3 turns to throttle the disruptor's computing
// capacity.
//
// Hot per-vCPU state lives in struct-of-arrays form (parallel arrays
// by vCPU id, sized at admission), and the default pick/accounting
// engine is branch-light: runqueue selection builds compact
// UNDER/OVER/DEMOTED runnable bitmasks and takes the lowest set bit
// of the first non-empty band; credit burn, cap decrement and the
// Kyoto gates are mask/select arithmetic.  The pre-rework branchy
// control flow is kept verbatim as the reference engine
// (set_reference_engine(true)) — both paths share the same state and
// produce bit-identical decisions, which the accounting oracle test
// and the throughput bench's control-plane agreement gate enforce.
//
// KS4Xen (kyoto/ks4xen.hpp) extends this class exactly where the
// paper patched Xen: the punish gate bitmasks (set_kyoto_gates) and
// extra slice-end bookkeeping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/scheduler.hpp"

namespace kyoto::hv {

class CreditScheduler : public Scheduler {
 public:
  /// Credits burned by one tick of execution.
  static constexpr int kCreditPerTick = 100;
  /// Credits a weight-256 vCPU earns per slice (one full slice's worth).
  static constexpr int kCreditPerSlice = kCreditPerTick * static_cast<int>(kTicksPerSlice);
  /// Default Xen weight.
  static constexpr int kDefaultWeight = 256;

  std::string name() const override { return "XCS"; }

  void attach(Hypervisor& hv) override;
  void vcpu_added(Vcpu& vcpu) override;
  void vcpu_migrated(Vcpu& vcpu, int old_core) override;
  void vcpu_removed(Vcpu& vcpu) override;
  Vcpu* pick(int core, Tick now) override;
  /// Capped vCPUs may not run past their remaining slice budget.
  Cycles max_burst(const Vcpu& vcpu, Cycles tick_budget) override;
  void account(Vcpu& vcpu, const RunReport& report) override;
  void slice_end(Tick now) override;

  // --- introspection (benches/tests) ----------------------------------
  int remain_credit(const Vcpu& vcpu) const;
  bool in_over(const Vcpu& vcpu) const;
  /// Fraction of the last slice's cap budget left (1.0 if uncapped).
  double cap_budget_fraction(const Vcpu& vcpu) const;

 protected:
  /// True if the vCPU may be handed a core right now.
  bool runnable(const Vcpu& vcpu) const;

 private:
  /// Per-core stickiness: Xen runs the chosen vCPU for a full 30 ms
  /// scheduling slice (not one 10 ms tick) unless it stops being
  /// runnable or falls to OVER.
  struct CoreCursor {
    int current = -1;     // vcpu id currently holding the core
    int consecutive = 0;  // ticks it has held it
  };

  std::size_t checked_id(const Vcpu& vcpu) const;
  Cycles slice_cap_budget(const Vcpu& vcpu) const;
  void ensure_capacity(std::size_t id);

  /// runnable(), as a 0/1 word over the SoA state: not done, not
  /// Kyoto-blocked, and (if capped) cap budget left.
  unsigned runnable_bit(std::size_t id) const {
    const unsigned not_done = static_cast<unsigned>(done_[id]) ^ 1u;
    const unsigned allowed = static_cast<unsigned>(vm_blocked(vm_id_[id])) ^ 1u;
    const unsigned cap_ok = (static_cast<unsigned>(capped_[id]) &
                             static_cast<unsigned>(cap_budget_[id] <= 0)) ^ 1u;
    return not_done & allowed & cap_ok;
  }

  Vcpu* pick_batched(std::vector<int>& queue, CoreCursor& cursor, int core);
  Vcpu* pick_reference(std::vector<int>& queue, CoreCursor& cursor, int core);
  void slice_end_batched();
  void slice_end_reference();

  /// Hot per-vCPU state, struct-of-arrays by vCPU id.  `vcpu_` doubles
  /// as the registration flag (null = never added or removed); ids are
  /// never reused.  `done_` caches Vcpu::done(), refreshed at
  /// admission and at every account() — exact, because done-ness only
  /// flips while a vCPU runs, and account() always follows a run.
  std::vector<Vcpu*> vcpu_;
  std::vector<int> remain_credit_;
  std::vector<Cycles> cap_budget_;   // cycles left this slice (capped VMs)
  std::vector<Cycles> cap_refill_;   // per-slice cap budget (0 = uncapped)
  std::vector<std::uint8_t> capped_;
  std::vector<std::uint8_t> done_;
  std::vector<int> vm_id_;
  std::vector<int> weight_;

  /// Per-core run queues hold a handful of vcpu ids each; a plain
  /// vector keeps the round-robin rotation (erase + push_back within
  /// capacity) free of the per-node heap churn a deque pays at block
  /// boundaries — the tick loop must not allocate in steady state.
  std::vector<std::vector<int>> runqueue_;  // per core, vcpu ids, RR order
  std::vector<CoreCursor> cursors_;         // per core
  Cycles cycles_per_tick_ = 0;              // cached at attach
};

}  // namespace kyoto::hv
