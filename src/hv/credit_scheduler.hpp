// The Xen credit scheduler (XCS), as described in §3.2 of the paper
// and Cherkasova et al. [16].
//
// Each VM is configured with a weight (its credit share) and an
// optional cap.  Every accounting period (time slice = 30 ms), each
// vCPU's remainCredit is replenished proportionally to its weight;
// running burns 100 credits per 10 ms tick.  vCPUs with positive
// credit are priority UNDER and run first (round-robin); exhausted
// vCPUs fall to OVER and only run work-conservingly.  A capped VM
// whose cap budget for the slice is spent cannot run at all — the cap
// is the knob Fig 3 turns to throttle the disruptor's computing
// capacity.
//
// KS4Xen (kyoto/ks4xen.hpp) extends this class exactly where the
// paper patched Xen: an extra schedulability predicate and extra
// slice-end bookkeeping.
#pragma once

#include <string>
#include <vector>

#include "hv/scheduler.hpp"

namespace kyoto::hv {

class CreditScheduler : public Scheduler {
 public:
  /// Credits burned by one tick of execution.
  static constexpr int kCreditPerTick = 100;
  /// Credits a weight-256 vCPU earns per slice (one full slice's worth).
  static constexpr int kCreditPerSlice = kCreditPerTick * static_cast<int>(kTicksPerSlice);
  /// Default Xen weight.
  static constexpr int kDefaultWeight = 256;

  std::string name() const override { return "XCS"; }

  void vcpu_added(Vcpu& vcpu) override;
  void vcpu_migrated(Vcpu& vcpu, int old_core) override;
  void vcpu_removed(Vcpu& vcpu) override;
  Vcpu* pick(int core, Tick now) override;
  /// Capped vCPUs may not run past their remaining slice budget.
  Cycles max_burst(const Vcpu& vcpu, Cycles tick_budget) override;
  void account(Vcpu& vcpu, const RunReport& report) override;
  void slice_end(Tick now) override;

  // --- introspection (benches/tests) ----------------------------------
  int remain_credit(const Vcpu& vcpu) const;
  bool in_over(const Vcpu& vcpu) const;
  /// Fraction of the last slice's cap budget left (1.0 if uncapped).
  double cap_budget_fraction(const Vcpu& vcpu) const;

 protected:
  /// Kyoto hook: KS4Xen forbids punished VMs here.  Base: always true.
  virtual bool kyoto_allows(const Vcpu& vcpu) const;

  /// Kyoto hook for demote-mode punishment: demoted vCPUs rank below
  /// every unpunished vCPU (even OVER ones).  Base: never demoted.
  virtual bool kyoto_demoted(const Vcpu& vcpu) const;

  /// True if the vCPU may be handed a core right now.
  bool runnable(const Vcpu& vcpu) const;

 private:
  struct State {
    Vcpu* vcpu = nullptr;
    int remain_credit = kCreditPerSlice;
    Cycles cap_budget = 0;   // cycles left this slice (capped VMs only)
    bool capped = false;
  };

  /// Per-core stickiness: Xen runs the chosen vCPU for a full 30 ms
  /// scheduling slice (not one 10 ms tick) unless it stops being
  /// runnable or falls to OVER.
  struct CoreCursor {
    int current = -1;     // vcpu id currently holding the core
    int consecutive = 0;  // ticks it has held it
  };

  State& state_of(const Vcpu& vcpu);
  const State& state_of(const Vcpu& vcpu) const;
  Cycles slice_cap_budget(const Vcpu& vcpu) const;

  /// Per-core run queues hold a handful of vcpu ids each; a plain
  /// vector keeps the round-robin rotation (erase + push_back within
  /// capacity) free of the per-node heap churn a deque pays at block
  /// boundaries — the tick loop must not allocate in steady state.
  std::vector<State> states_;               // by vcpu id
  std::vector<std::vector<int>> runqueue_;  // per core, vcpu ids, RR order
  std::vector<CoreCursor> cursors_;         // per core
};

}  // namespace kyoto::hv
