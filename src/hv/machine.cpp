#include "hv/machine.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "mem/access.hpp"

namespace kyoto::hv {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(std::make_unique<cache::MemorySystem>(config.topology, config.mem, config.seed)),
      pmus_(static_cast<std::size_t>(config.topology.total_cores())) {
  KYOTO_CHECK_MSG(config.freq_khz > 0, "machine frequency must be positive");
}

pmc::CorePmu& Machine::pmu(int core) {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  return pmus_[static_cast<std::size_t>(core)];
}

const pmc::CorePmu& Machine::pmu(int core) const {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  return pmus_[static_cast<std::size_t>(core)];
}

Machine::RunResult Machine::run_vcpu(Vcpu& vcpu, int core, Cycles budget,
                                     std::int64_t wall_cycle_base) {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  if (vcpu.done()) {
    RunResult result;
    result.vcpu_halted = true;
    return result;
  }

  // Engine selection.  v2 workloads with ref storage attached run the
  // geometric-skip loop; everything else (v1, no storage, leftover
  // per-op buffer from a mid-run engine switch) runs per-op.  A
  // non-empty ref buffer is always drained through the ref loop even
  // with the knob off — the stream position lives in the buffer.
  Vcpu::RefBuffer& rb = vcpu.ref_buffer();
  const bool v2_refs = rb.refs != nullptr &&
                       vcpu.workload().stream_version() == workloads::StreamVersion::kV2;
  if (v2_refs && vcpu.op_buffer().empty() && (ref_batch_engine_ || !rb.empty())) {
    RunResult result = run_vcpu_refs(vcpu, core, budget, wall_cycle_base);
    if (ref_batch_engine_ || result.vcpu_halted || result.cycles_used >= budget) {
      return result;
    }
    // Knob switched off mid-run: the buffered refs are drained, finish
    // the burst per-op.  Progress/PMU accounting is additive, so the
    // two sub-bursts sum to exactly one burst.
    const RunResult rest = run_vcpu_ops(vcpu, core, budget - result.cycles_used,
                                        wall_cycle_base + result.cycles_used);
    result.cycles_used += rest.cycles_used;
    result.instructions += rest.instructions;
    result.llc_misses += rest.llc_misses;
    result.vcpu_halted = rest.vcpu_halted;
    return result;
  }
  return run_vcpu_ops(vcpu, core, budget, wall_cycle_base);
}

Machine::RunResult Machine::run_vcpu_ops(Vcpu& vcpu, int core, Cycles budget,
                                         std::int64_t wall_cycle_base) {
  RunResult result;
  auto& workload = vcpu.workload();
  const auto& spec = workload.spec();
  auto& space = vcpu.vm().address_space();
  const int home_node = space.home_node();
  const int vm_id = vcpu.vm().id();
  const double inv_mlp = 1.0 / spec.mlp;
  // With mlp == 1 the stall is the raw latency; skip the
  // floating-point scaling entirely.
  const bool unit_mlp = spec.mlp == 1.0;
  pmc::CorePmu& core_pmu = pmus_[static_cast<std::size_t>(core)];

  const Instructions run_length = spec.length;

  // Requester/socket/home-node resolution hoisted out of the per-op
  // loop; ops are pulled from the workload in blocks (one virtual
  // dispatch per block).  Leftover ops persist in the vCPU's buffer
  // across bursts, so the consumed stream is exactly the workload
  // stream and the executed simulation is identical to per-op
  // replay.  (Monitors that clone() the live workload mid-run see
  // its generator up to one block ahead of execution — see the
  // OpBuffer note in vm.hpp.)
  cache::MemorySystem::AccessContext mem_ctx = memory_->context(core, home_node, vm_id);
  Vcpu::OpBuffer& ops = vcpu.op_buffer();

  // Lookahead staging: the op buffer knows the reference stream a
  // block ahead, so pull the LLC metadata rows of the access a few
  // ops out toward the host core while the current one simulates
  // (AccessContext::stage is semantically a no-op).  Only for
  // workloads that spill past the private caches — ILC-resident
  // streams never probe the LLC and staging would only pollute the
  // host cache.
  constexpr std::uint32_t kStageAhead = 8;
  const bool stage_ahead = spec.working_set > config_.mem.l2.size;

  while (result.cycles_used < budget) {
    if (ops.empty()) {
      std::size_t want = Vcpu::OpBuffer::kBlock;
      if (run_length > 0) {
        // Never generate past the end of the current run: completion
        // restarts looping workloads, and a finite workload's stream
        // must not be advanced beyond its length.
        const Instructions remaining =
            run_length - (vcpu.retired_in_run() + result.instructions);
        want = std::min<std::size_t>(want, static_cast<std::size_t>(remaining));
      }
      ops.len = static_cast<std::uint32_t>(workload.next_batch(ops.ops.data(), want));
      ops.pos = 0;
      KYOTO_DCHECK(ops.len > 0);
    }
    const mem::Op op = ops.ops[ops.pos++];
    Cycles cost = 1;
    if (op.kind != mem::OpKind::kCompute) {
      if (stage_ahead && ops.pos + kStageAhead < ops.len) {
        const mem::Op& ahead = ops.ops[ops.pos + kStageAhead];
        if (ahead.kind != mem::OpKind::kCompute) {
          mem_ctx.stage(space.translate(ahead.addr));
        }
      }
      // Workload offsets are already inside the VM's address space
      // (patterns emit < working_set, the VM constructor enforces
      // working_set <= memory), so no wrap-around modulo is needed —
      // the old per-op 64-bit division was purely defensive and is
      // now a DCHECK inside translate().
      const Address addr = space.translate(op.addr);
      const cache::AccessResult access =
          mem_ctx.access(addr, op.kind == mem::OpKind::kStore,
                         wall_cycle_base + result.cycles_used);
      // Memory-level parallelism: the core hides part of the latency
      // behind independent work (out-of-order window + prefetchers).
      // round_half_up == std::lround for these small positive values,
      // without the libm call.
      cost = unit_mlp ? std::max<Cycles>(1, access.latency)
                      : std::max<Cycles>(
                            1, static_cast<Cycles>(
                                   static_cast<double>(access.latency) * inv_mlp + 0.5));
      // Branchless event accounting: adding 0 is a no-op, and the
      // llc_reference/llc_miss flags are data-random in miss-heavy
      // mixes — branching on them mispredicts on a large fraction of
      // accesses.
      core_pmu.add(pmc::Counter::kLlcReferences,
                   static_cast<std::uint64_t>(access.llc_reference) +
                       access.prefetch_llc_references);
      core_pmu.add(pmc::Counter::kLlcMisses,
                   static_cast<std::uint64_t>(access.llc_miss) + access.prefetch_llc_misses);
      result.llc_misses +=
          static_cast<std::uint64_t>(access.llc_miss) + access.prefetch_llc_misses;
    }
    result.cycles_used += cost;
    ++result.instructions;

    if (run_length > 0 && vcpu.retired_in_run() + result.instructions >= run_length) {
      // Completion bookkeeping needs retired_in_run to be current.
      vcpu.note_progress(result.instructions, result.cycles_used);
      core_pmu.add(pmc::Counter::kInstructions,
                   static_cast<std::uint64_t>(result.instructions));
      core_pmu.add(pmc::Counter::kUnhaltedCycles,
                   static_cast<std::uint64_t>(result.cycles_used));
      vcpu.note_run_complete(wall_cycle_base + result.cycles_used);
      result.vcpu_halted = vcpu.done();
      return result;
    }
  }

  vcpu.note_progress(result.instructions, result.cycles_used);
  core_pmu.add(pmc::Counter::kInstructions, static_cast<std::uint64_t>(result.instructions));
  core_pmu.add(pmc::Counter::kUnhaltedCycles, static_cast<std::uint64_t>(result.cycles_used));
  return result;
}

Machine::RunResult Machine::run_vcpu_refs(Vcpu& vcpu, int core, Cycles budget,
                                          std::int64_t wall_cycle_base) {
  RunResult result;
  auto& workload = vcpu.workload();
  const auto& spec = workload.spec();
  auto& space = vcpu.vm().address_space();
  const int home_node = space.home_node();
  const int vm_id = vcpu.vm().id();
  const double inv_mlp = 1.0 / spec.mlp;
  const bool unit_mlp = spec.mlp == 1.0;
  pmc::CorePmu& core_pmu = pmus_[static_cast<std::size_t>(core)];
  const Instructions run_length = spec.length;
  cache::MemorySystem::AccessContext mem_ctx = memory_->context(core, home_node, vm_id);
  Vcpu::RefBuffer& rb = vcpu.ref_buffer();
  constexpr std::uint32_t kStageAhead = 8;
  const bool stage_ahead = spec.working_set > config_.mem.l2.size;

  // Hot counters live in locals for the whole burst: the compiler
  // cannot keep result/rb fields in registers across the opaque
  // access() call (it must assume aliasing), so mirroring them here
  // removes a load/store pair per field per reference.  They are
  // flushed back at every exit and before each completion check.
  Cycles used = 0;
  Instructions instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t pmu_llc_refs = 0;  // PMU deltas accumulate here and
  std::uint64_t pmu_llc_miss = 0;  // flush once per burst (same sums)

  // Identical completion bookkeeping to the per-op loop.  Refills are
  // clamped to the remaining run length, so completion can only land
  // exactly at the end of a batched add — checking after each add is
  // therefore equivalent to the per-op check after every instruction.
  const auto run_completed = [&]() -> bool {
    if (run_length == 0 || vcpu.retired_in_run() + instructions < run_length) {
      return false;
    }
    vcpu.note_progress(instructions, used);
    core_pmu.add(pmc::Counter::kInstructions, static_cast<std::uint64_t>(instructions));
    core_pmu.add(pmc::Counter::kUnhaltedCycles, static_cast<std::uint64_t>(used));
    core_pmu.add(pmc::Counter::kLlcReferences, pmu_llc_refs);
    core_pmu.add(pmc::Counter::kLlcMisses, pmu_llc_miss);
    vcpu.note_run_complete(wall_cycle_base + used);
    result.cycles_used = used;
    result.instructions = instructions;
    result.llc_misses = llc_misses;
    result.vcpu_halted = vcpu.done();
    return true;
  };

  while (used < budget) {
    if (rb.empty()) {
      if (!ref_batch_engine_) break;  // knob off mid-run: caller finishes per-op
      std::size_t want_ops = Vcpu::RefBuffer::kMaxOps;
      if (run_length > 0) {
        const Instructions remaining = run_length - (vcpu.retired_in_run() + instructions);
        want_ops = std::min<std::size_t>(want_ops, static_cast<std::size_t>(remaining));
      }
      std::uint32_t trailing = 0;
      const workloads::Workload::RefBatch batch =
          workload.next_ref_batch(rb.refs, Vcpu::RefBuffer::kBlock, want_ops, &trailing);
      rb.pos = 0;
      rb.len = static_cast<std::uint32_t>(batch.refs);
      rb.trailing = trailing;
      rb.gap_done = 0;
      KYOTO_DCHECK(batch.ops > 0);
    }

    const workloads::AccessRef* const refs = rb.refs;
    std::uint32_t pos = rb.pos;
    const std::uint32_t len = rb.len;
    std::uint32_t gap_done = rb.gap_done;
    while (pos < len && used < budget) {
      const workloads::AccessRef ref = refs[pos];
      if (const std::uint32_t gap_remaining = ref.gap - gap_done; gap_remaining > 0) {
        // The whole compute run retires in one add: gap one-cycle
        // instructions, clipped to the cycle budget (the per-op loop
        // executes compute ops only while cycles_used < budget).
        const Cycles take =
            std::min<Cycles>(static_cast<Cycles>(gap_remaining), budget - used);
        used += take;
        instructions += take;
        gap_done += static_cast<std::uint32_t>(take);
        rb.pos = pos;
        rb.gap_done = gap_done;
        if (run_completed()) return result;
        if (used >= budget) break;  // the reference stays pending
      }
      if (stage_ahead && pos + kStageAhead < len) {
        mem_ctx.stage(space.translate(refs[pos + kStageAhead].addr));
      }
      const Address addr = space.translate(ref.addr);
      const cache::AccessResult access =
          mem_ctx.access(addr, ref.write, wall_cycle_base + used);
      const Cycles cost =
          unit_mlp ? std::max<Cycles>(1, access.latency)
                   : std::max<Cycles>(
                         1, static_cast<Cycles>(
                                static_cast<double>(access.latency) * inv_mlp + 0.5));
      pmu_llc_refs +=
          static_cast<std::uint64_t>(access.llc_reference) + access.prefetch_llc_references;
      pmu_llc_miss +=
          static_cast<std::uint64_t>(access.llc_miss) + access.prefetch_llc_misses;
      llc_misses +=
          static_cast<std::uint64_t>(access.llc_miss) + access.prefetch_llc_misses;
      used += cost;
      ++instructions;
      ++pos;
      gap_done = 0;
      if (run_length > 0) {
        rb.pos = pos;
        rb.gap_done = gap_done;
        if (run_completed()) return result;
      }
    }
    rb.pos = pos;
    rb.gap_done = gap_done;

    if (pos == len && rb.trailing > 0 && used < budget) {
      const Cycles take =
          std::min<Cycles>(static_cast<Cycles>(rb.trailing), budget - used);
      used += take;
      instructions += take;
      rb.trailing -= static_cast<std::uint32_t>(take);
      if (run_completed()) return result;
    }
  }

  vcpu.note_progress(instructions, used);
  core_pmu.add(pmc::Counter::kInstructions, static_cast<std::uint64_t>(instructions));
  core_pmu.add(pmc::Counter::kUnhaltedCycles, static_cast<std::uint64_t>(used));
  core_pmu.add(pmc::Counter::kLlcReferences, pmu_llc_refs);
  core_pmu.add(pmc::Counter::kLlcMisses, pmu_llc_miss);
  result.cycles_used = used;
  result.instructions = instructions;
  result.llc_misses = llc_misses;
  return result;
}

}  // namespace kyoto::hv
