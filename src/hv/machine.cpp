#include "hv/machine.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "mem/access.hpp"

namespace kyoto::hv {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(std::make_unique<cache::MemorySystem>(config.topology, config.mem, config.seed)),
      pmus_(static_cast<std::size_t>(config.topology.total_cores())) {
  KYOTO_CHECK_MSG(config.freq_khz > 0, "machine frequency must be positive");
}

pmc::CorePmu& Machine::pmu(int core) {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  return pmus_[static_cast<std::size_t>(core)];
}

const pmc::CorePmu& Machine::pmu(int core) const {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  return pmus_[static_cast<std::size_t>(core)];
}

Machine::RunResult Machine::run_vcpu(Vcpu& vcpu, int core, Cycles budget,
                                     std::int64_t wall_cycle_base) {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  RunResult result;
  if (vcpu.done()) {
    result.vcpu_halted = true;
    return result;
  }

  auto& workload = vcpu.workload();
  const auto& spec = workload.spec();
  auto& space = vcpu.vm().address_space();
  const int home_node = space.home_node();
  const int vm_id = vcpu.vm().id();
  const double inv_mlp = 1.0 / spec.mlp;
  // With mlp == 1 the stall is the raw latency; skip the
  // floating-point scaling entirely.
  const bool unit_mlp = spec.mlp == 1.0;
  pmc::CorePmu& core_pmu = pmus_[static_cast<std::size_t>(core)];

  const Instructions run_length = spec.length;

  // Requester/socket/home-node resolution hoisted out of the per-op
  // loop; ops are pulled from the workload in blocks (one virtual
  // dispatch per block).  Leftover ops persist in the vCPU's buffer
  // across bursts, so the consumed stream is exactly the workload
  // stream and the executed simulation is identical to per-op
  // replay.  (Monitors that clone() the live workload mid-run see
  // its generator up to one block ahead of execution — see the
  // OpBuffer note in vm.hpp.)
  cache::MemorySystem::AccessContext mem_ctx = memory_->context(core, home_node, vm_id);
  Vcpu::OpBuffer& ops = vcpu.op_buffer();

  // Lookahead staging: the op buffer knows the reference stream a
  // block ahead, so pull the LLC metadata rows of the access a few
  // ops out toward the host core while the current one simulates
  // (AccessContext::stage is semantically a no-op).  Only for
  // workloads that spill past the private caches — ILC-resident
  // streams never probe the LLC and staging would only pollute the
  // host cache.
  constexpr std::uint32_t kStageAhead = 8;
  const bool stage_ahead = spec.working_set > config_.mem.l2.size;

  while (result.cycles_used < budget) {
    if (ops.empty()) {
      std::size_t want = Vcpu::OpBuffer::kBlock;
      if (run_length > 0) {
        // Never generate past the end of the current run: completion
        // restarts looping workloads, and a finite workload's stream
        // must not be advanced beyond its length.
        const Instructions remaining =
            run_length - (vcpu.retired_in_run() + result.instructions);
        want = std::min<std::size_t>(want, static_cast<std::size_t>(remaining));
      }
      ops.len = static_cast<std::uint32_t>(workload.next_batch(ops.ops.data(), want));
      ops.pos = 0;
      KYOTO_DCHECK(ops.len > 0);
    }
    const mem::Op op = ops.ops[ops.pos++];
    Cycles cost = 1;
    if (op.kind != mem::OpKind::kCompute) {
      if (stage_ahead && ops.pos + kStageAhead < ops.len) {
        const mem::Op& ahead = ops.ops[ops.pos + kStageAhead];
        if (ahead.kind != mem::OpKind::kCompute) {
          mem_ctx.stage(space.translate(ahead.addr));
        }
      }
      // Workload offsets are already inside the VM's address space
      // (patterns emit < working_set, the VM constructor enforces
      // working_set <= memory), so no wrap-around modulo is needed —
      // the old per-op 64-bit division was purely defensive and is
      // now a DCHECK inside translate().
      const Address addr = space.translate(op.addr);
      const cache::AccessResult access =
          mem_ctx.access(addr, op.kind == mem::OpKind::kStore,
                         wall_cycle_base + result.cycles_used);
      // Memory-level parallelism: the core hides part of the latency
      // behind independent work (out-of-order window + prefetchers).
      // round_half_up == std::lround for these small positive values,
      // without the libm call.
      cost = unit_mlp ? std::max<Cycles>(1, access.latency)
                      : std::max<Cycles>(
                            1, static_cast<Cycles>(
                                   static_cast<double>(access.latency) * inv_mlp + 0.5));
      // Branchless event accounting: adding 0 is a no-op, and the
      // llc_reference/llc_miss flags are data-random in miss-heavy
      // mixes — branching on them mispredicts on a large fraction of
      // accesses.
      core_pmu.add(pmc::Counter::kLlcReferences,
                   static_cast<std::uint64_t>(access.llc_reference) +
                       access.prefetch_llc_references);
      core_pmu.add(pmc::Counter::kLlcMisses,
                   static_cast<std::uint64_t>(access.llc_miss) + access.prefetch_llc_misses);
      result.llc_misses +=
          static_cast<std::uint64_t>(access.llc_miss) + access.prefetch_llc_misses;
    }
    result.cycles_used += cost;
    ++result.instructions;

    if (run_length > 0 && vcpu.retired_in_run() + result.instructions >= run_length) {
      // Completion bookkeeping needs retired_in_run to be current.
      vcpu.note_progress(result.instructions, result.cycles_used);
      core_pmu.add(pmc::Counter::kInstructions,
                   static_cast<std::uint64_t>(result.instructions));
      core_pmu.add(pmc::Counter::kUnhaltedCycles,
                   static_cast<std::uint64_t>(result.cycles_used));
      vcpu.note_run_complete(wall_cycle_base + result.cycles_used);
      result.vcpu_halted = vcpu.done();
      return result;
    }
  }

  vcpu.note_progress(result.instructions, result.cycles_used);
  core_pmu.add(pmc::Counter::kInstructions, static_cast<std::uint64_t>(result.instructions));
  core_pmu.add(pmc::Counter::kUnhaltedCycles, static_cast<std::uint64_t>(result.cycles_used));
  return result;
}

}  // namespace kyoto::hv
