#include "hv/machine.hpp"

#include <cmath>

#include "common/check.hpp"
#include "mem/access.hpp"

namespace kyoto::hv {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(std::make_unique<cache::MemorySystem>(config.topology, config.mem, config.seed)),
      pmus_(static_cast<std::size_t>(config.topology.total_cores())) {
  KYOTO_CHECK_MSG(config.freq_khz > 0, "machine frequency must be positive");
}

pmc::CorePmu& Machine::pmu(int core) {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  return pmus_[static_cast<std::size_t>(core)];
}

const pmc::CorePmu& Machine::pmu(int core) const {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  return pmus_[static_cast<std::size_t>(core)];
}

Machine::RunResult Machine::run_vcpu(Vcpu& vcpu, int core, Cycles budget,
                                     std::int64_t wall_cycle_base) {
  KYOTO_CHECK(core >= 0 && core < config_.topology.total_cores());
  RunResult result;
  if (vcpu.done()) {
    result.vcpu_halted = true;
    return result;
  }

  auto& workload = vcpu.workload();
  const auto& spec = workload.spec();
  auto& space = vcpu.vm().address_space();
  const int home_node = space.home_node();
  const int vm_id = vcpu.vm().id();
  const double inv_mlp = 1.0 / spec.mlp;
  const Bytes space_size = space.size();
  pmc::CorePmu& core_pmu = pmus_[static_cast<std::size_t>(core)];

  const Instructions run_length = spec.length;

  while (result.cycles_used < budget) {
    const mem::Op op = workload.next();
    Cycles cost = 1;
    if (op.kind != mem::OpKind::kCompute) {
      const Address addr = space.translate(op.addr % space_size);
      const cache::AccessResult access =
          memory_->access(core, addr, op.kind == mem::OpKind::kStore, home_node, vm_id,
                          wall_cycle_base + result.cycles_used);
      // Memory-level parallelism: the core hides part of the latency
      // behind independent work (out-of-order window + prefetchers).
      cost = std::max<Cycles>(
          1, static_cast<Cycles>(std::lround(static_cast<double>(access.latency) * inv_mlp)));
      if (access.llc_reference) {
        core_pmu.add(pmc::Counter::kLlcReferences, 1);
        if (access.llc_miss) {
          core_pmu.add(pmc::Counter::kLlcMisses, 1);
          ++result.llc_misses;
        }
      }
      if (access.prefetch_llc_references > 0) {
        core_pmu.add(pmc::Counter::kLlcReferences, access.prefetch_llc_references);
        core_pmu.add(pmc::Counter::kLlcMisses, access.prefetch_llc_misses);
        result.llc_misses += access.prefetch_llc_misses;
      }
    }
    result.cycles_used += cost;
    ++result.instructions;

    if (run_length > 0 && vcpu.retired_in_run() + result.instructions >= run_length) {
      // Completion bookkeeping needs retired_in_run to be current.
      vcpu.note_progress(result.instructions, result.cycles_used);
      core_pmu.add(pmc::Counter::kInstructions,
                   static_cast<std::uint64_t>(result.instructions));
      core_pmu.add(pmc::Counter::kUnhaltedCycles,
                   static_cast<std::uint64_t>(result.cycles_used));
      vcpu.note_run_complete(wall_cycle_base + result.cycles_used);
      result.vcpu_halted = vcpu.done();
      return result;
    }
  }

  vcpu.note_progress(result.instructions, result.cycles_used);
  core_pmu.add(pmc::Counter::kInstructions, static_cast<std::uint64_t>(result.instructions));
  core_pmu.add(pmc::Counter::kUnhaltedCycles, static_cast<std::uint64_t>(result.cycles_used));
  return result;
}

}  // namespace kyoto::hv
