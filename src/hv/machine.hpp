// The physical machine: execution engine, caches and PMUs.
//
// Machine executes a vCPU's instruction stream against the shared
// memory system for a bounded cycle budget, updating the core's PMU
// exactly as hardware counters would (instructions, unhalted cycles,
// LLC references/misses attributed to the issuing core).  It is the
// only component that advances architectural state; schedulers decide
// *who* runs, the machine decides *what happens* when they run.
#pragma once

#include <memory>
#include <vector>

#include "cache/config.hpp"
#include "cache/memory_system.hpp"
#include "cache/topology.hpp"
#include "common/units.hpp"
#include "hv/vm.hpp"
#include "pmc/pmu.hpp"

namespace kyoto::hv {

/// Full machine configuration.  The default is the paper's Table 1
/// machine geometrically scaled by 1/64 (see cache::MemSystemConfig):
/// same associativities and latencies, sizes and clock divided by 64,
/// so cache-load times relate to the 30 ms slice exactly as on the
/// real 2.8 GHz part while per-instruction simulation stays fast.
struct MachineConfig {
  cache::Topology topology = cache::paper_topology();
  cache::MemSystemConfig mem = cache::scaled_mem_system();
  /// Clock in kHz (cycles per millisecond).  2.8 GHz / 64.
  KHz freq_khz = 43'750;
  std::uint64_t seed = 1;
};

/// Table 1 machine at full fidelity (slow to simulate; used by tests
/// that validate geometry, not by the benches).
inline MachineConfig paper_machine() {
  return MachineConfig{cache::paper_topology(), cache::paper_mem_system(), 2'800'000, 1};
}

/// Default experimentation machine (1 socket, 4 cores, scaled).
inline MachineConfig scaled_machine() { return MachineConfig{}; }

/// The 2-socket NUMA machine of Fig 9, scaled.
inline MachineConfig scaled_numa_machine() {
  MachineConfig config;
  config.topology = cache::numa_topology();
  return config;
}

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  const cache::Topology& topology() const { return config_.topology; }
  KHz freq_khz() const { return config_.freq_khz; }
  /// Cycles a core executes per 10 ms scheduler tick.
  Cycles cycles_per_tick() const { return kyoto::cycles_per_tick(config_.freq_khz); }

  cache::MemorySystem& memory() { return *memory_; }
  const cache::MemorySystem& memory() const { return *memory_; }

  pmc::CorePmu& pmu(int core);
  const pmc::CorePmu& pmu(int core) const;

  /// Result of one bounded execution burst.
  struct RunResult {
    Cycles cycles_used = 0;
    Instructions instructions = 0;
    std::uint64_t llc_misses = 0;
    bool vcpu_halted = false;  // vCPU completed a non-looping workload
  };

  /// Runs `vcpu` on `core` for at most `budget` cycles (the final
  /// instruction may overshoot by its own latency, as on real
  /// hardware).  `wall_cycle_base` is the virtual wall-clock cycle at
  /// which the burst starts, used to timestamp run completion.
  RunResult run_vcpu(Vcpu& vcpu, int core, Cycles budget, std::int64_t wall_cycle_base);

  /// Engine knob for equivalence tests and benches: when false, v2
  /// workloads are consumed through the per-op path (next_batch) even
  /// though ref storage is attached.  Counters are bit-identical
  /// either way — the ref-batch loop is a consumption format, not a
  /// different simulation — which tests/workloads/
  /// stream_equivalence_test.cpp asserts over full scenarios.  A ref
  /// buffer left non-empty by a mid-run toggle is always drained
  /// through the ref loop first, so the stream position never skips.
  void set_ref_batch_engine(bool enabled) { ref_batch_engine_ = enabled; }
  bool ref_batch_engine() const { return ref_batch_engine_; }

 private:
  /// The per-op engine (the frozen v1 path and the v2 fallback):
  /// pulls ops through the vCPU's OpBuffer one instruction at a time.
  RunResult run_vcpu_ops(Vcpu& vcpu, int core, Cycles budget,
                         std::int64_t wall_cycle_base);
  /// Geometric-skip execution burst: consumes the vCPU's RefBuffer,
  /// charging each AccessRef's compute gap in one add.  Only entered
  /// for v2 workloads with ref storage attached and an empty OpBuffer;
  /// bit-identical to the per-op loop by construction.
  RunResult run_vcpu_refs(Vcpu& vcpu, int core, Cycles budget,
                          std::int64_t wall_cycle_base);

  MachineConfig config_;
  std::unique_ptr<cache::MemorySystem> memory_;
  std::vector<pmc::CorePmu> pmus_;
  bool ref_batch_engine_ = true;
};

}  // namespace kyoto::hv
