// Virtual machines and virtual CPUs.
//
// A VM owns an address space, a configuration (CPU weight/cap plus
// the paper's new parameter: the booked LLC pollution permit
// `llc_cap`) and one or more vCPUs.  Each vCPU executes one workload;
// the paper's experiments use single-vCPU VMs pinned to cores
// (§2.2: "any VM runs a single application type and is configured
// with a single vCPU which is pinned to a single core"), but
// multi-vCPU VMs are supported (Fig 6 colocates up to 15 disruptive
// vCPUs).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "mem/address_space.hpp"
#include "pmc/perfctr.hpp"
#include "workloads/workload.hpp"

namespace kyoto::hv {

class Vm;

/// Static configuration of a VM, set at instantiation time ("booked"
/// by the cloud user).
struct VmConfig {
  std::string name;
  /// Xen credit-scheduler weight (default 256, like Xen).
  int weight = 256;
  /// CPU cap in percent of one core; 0 = uncapped (Xen semantics).
  /// Fig 3 varies this knob on the disruptive VM.
  int cpu_cap_percent = 0;
  /// The paper's new booking parameter: permitted pollution level in
  /// LLC misses per millisecond of on-CPU time (Equation 1 units).
  /// 0 = no permit booked (VM is never punished).
  double llc_cap = 0.0;
  /// Address-space size; 0 = sized automatically to the largest
  /// workload working set.
  Bytes memory = 0;
  /// NUMA node where the VM's memory lives.
  int home_node = 0;
  /// If true, each vCPU's workload restarts when it completes, so the
  /// VM acts as a persistent (dis)turber.
  bool loop_workload = false;
};

/// One virtual CPU.  Scheduler-agnostic: scheduling state lives in
/// the scheduler implementations, keyed by id().
class Vcpu {
 public:
  Vcpu(Vm& vm, int index, int global_id, std::unique_ptr<workloads::Workload> workload);

  Vcpu(const Vcpu&) = delete;
  Vcpu& operator=(const Vcpu&) = delete;

  Vm& vm() { return *vm_; }
  const Vm& vm() const { return *vm_; }
  /// Index of this vCPU within its VM.
  int index() const { return index_; }
  /// Hypervisor-wide unique id (dense, usable as an array index).
  int id() const { return id_; }

  workloads::Workload& workload() { return *workload_; }
  const workloads::Workload& workload() const { return *workload_; }

  /// Physical core this vCPU is pinned to (every vCPU is pinned; the
  /// hypervisor assigns a default at creation).
  int pinned_core() const { return pinned_core_; }
  void set_pinned_core(int core) { pinned_core_ = core; }

  pmc::VirtualCounters& counters() { return counters_; }
  const pmc::VirtualCounters& counters() const { return counters_; }

  // --- execution bookkeeping (updated by the Machine) ----------------
  /// Instructions retired in the current run of the workload.
  Instructions retired_in_run() const { return retired_in_run_; }
  /// Instructions retired since creation (across looped runs).
  Instructions retired_total() const { return retired_total_; }
  /// Completed workload runs (0 or 1 unless the VM loops).
  std::int64_t completed_runs() const { return completed_runs_; }
  /// Virtual wall-clock cycle at which the first run completed
  /// (negative while not yet complete).  This is an experiment's
  /// "execution time".
  std::int64_t first_completion_wall_cycle() const { return first_completion_wall_cycle_; }
  /// Total cycles this vCPU has spent on a core.
  Cycles cpu_cycles() const { return cpu_cycles_; }

  /// True when the workload has a finite length, has completed it,
  /// and the VM does not loop — the vCPU halts forever.
  bool done() const;

  /// Called by the Machine after executing instructions.
  void note_progress(Instructions retired, Cycles cycles);
  /// Called by the Machine when the current run completes at virtual
  /// wall cycle `wall_cycle`; restarts the workload if looping.
  void note_run_complete(std::int64_t wall_cycle);

  /// Block buffer between this vCPU's workload and the execution
  /// engine.  The Machine refills it via Workload::next_batch (one
  /// virtual dispatch per block, not per instruction); ops left over
  /// when a cycle budget expires persist here, so the *consumed* op
  /// sequence is exactly the workload stream regardless of burst
  /// boundaries.  Refills never outrun a finite workload's run length,
  /// so the buffer is always drained when a run completes.
  ///
  /// Caveat: between bursts the workload's generator sits up to
  /// kBlock ops ahead of execution, so pin-style sampling that
  /// clone()s the live workload (McSimMonitor / PinTracer) captures a
  /// window starting at the generator position, not the execution
  /// position.  At the monitors' 150k-instruction samples a <=256-op
  /// shift is far inside sampling noise, which is why the replay
  /// monitor keeps the simple clone() attach point.
  struct OpBuffer {
    static constexpr std::size_t kBlock = 256;
    std::array<mem::Op, kBlock> ops;
    std::uint32_t pos = 0;  // next op to consume
    std::uint32_t len = 0;  // ops valid in `ops`
    bool empty() const { return pos == len; }
  };
  OpBuffer& op_buffer() { return op_buffer_; }

  /// Geometric-skip twin of OpBuffer: AccessRef records pulled via
  /// Workload::next_ref_batch for v2 workloads, so the machine's fast
  /// loop advances the cycle clock by whole compute gaps instead of
  /// iterating per-op.  Refills are clamped to the lookahead bound
  /// kMaxOps *instructions* (refs plus their gaps), which keeps the
  /// clone()-attach shift bounded exactly like OpBuffer's kBlock; the
  /// same run-length clamp guarantees the buffer drains precisely at
  /// run completion.  `refs` storage is attached externally — the
  /// hypervisor carves it from its bump arena at create_vm time — and
  /// the machine falls back to the per-op engine while it is null.
  struct RefBuffer {
    static constexpr std::size_t kBlock = 256;    // max refs per refill
    static constexpr std::size_t kMaxOps = 4096;  // lookahead bound, in instructions
    workloads::AccessRef* refs = nullptr;
    std::uint32_t pos = 0;       // next ref to consume
    std::uint32_t len = 0;       // refs valid in `refs`
    std::uint32_t trailing = 0;  // batch-tail compute ops not yet retired
    std::uint32_t gap_done = 0;  // compute ops of refs[pos] already retired
    bool empty() const { return pos == len && trailing == 0; }
  };
  RefBuffer& ref_buffer() { return ref_buffer_; }
  /// Attaches kBlock AccessRefs of storage (arena-owned by the caller).
  void set_ref_storage(workloads::AccessRef* storage) { ref_buffer_.refs = storage; }

 private:
  Vm* vm_;
  int index_;
  int id_;
  std::unique_ptr<workloads::Workload> workload_;
  int pinned_core_ = -1;
  pmc::VirtualCounters counters_;
  OpBuffer op_buffer_;
  RefBuffer ref_buffer_;

  Instructions retired_in_run_ = 0;
  Instructions retired_total_ = 0;
  std::int64_t completed_runs_ = 0;
  std::int64_t first_completion_wall_cycle_ = -1;
  Cycles cpu_cycles_ = 0;
};

class Vm {
 public:
  /// `first_vcpu_id` is the global id of vCPU 0; further vCPUs get
  /// consecutive ids.
  Vm(int id, VmConfig config, std::vector<std::unique_ptr<workloads::Workload>> workloads,
     int first_vcpu_id);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  int id() const { return id_; }
  const VmConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  mem::AddressSpace& address_space() { return *space_; }
  const mem::AddressSpace& address_space() const { return *space_; }

  std::vector<std::unique_ptr<Vcpu>>& vcpus() { return vcpus_; }
  const std::vector<std::unique_ptr<Vcpu>>& vcpus() const { return vcpus_; }
  Vcpu& vcpu(int index) { return *vcpus_.at(static_cast<std::size_t>(index)); }

  bool loops() const { return config_.loop_workload; }

  /// Aggregated virtualized counters over all vCPUs, always exact: a
  /// vCPU left resident on a core by the identity-switch fast path
  /// contributes its in-flight delta live (VirtualCounters::read).
  pmc::CounterSet counters() const;

  /// True when every vCPU is done.
  bool done() const;

 private:
  int id_;
  VmConfig config_;
  std::unique_ptr<mem::AddressSpace> space_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
};

}  // namespace kyoto::hv
