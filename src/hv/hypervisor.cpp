#include "hv/hypervisor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace kyoto::hv {

Hypervisor::Hypervisor(const MachineConfig& machine_config,
                       std::unique_ptr<Scheduler> scheduler)
    : machine_(std::make_unique<Machine>(machine_config)), scheduler_(std::move(scheduler)) {
  KYOTO_CHECK(scheduler_ != nullptr);
  const auto cores = static_cast<std::size_t>(machine_->topology().total_cores());
  idle_ticks_.assign(cores, 0);
  slots_.resize(cores);
  resident_.assign(cores, nullptr);
  tick_pmu_base_.resize(cores);
  tick_pmu_delta_.resize(cores);
  scheduler_->attach(*this);
}

Hypervisor::~Hypervisor() = default;

Vm& Hypervisor::create_vm(const VmConfig& config,
                          std::vector<std::unique_ptr<workloads::Workload>> vcpu_workloads,
                          const std::vector<int>& pinned_cores) {
  KYOTO_CHECK_MSG(!vcpu_workloads.empty(), "VM needs at least one vCPU");
  KYOTO_CHECK_MSG(pinned_cores.empty() || pinned_cores.size() == vcpu_workloads.size(),
                  "pinned_cores must match vCPU count");
  const int vm_id = static_cast<int>(vms_.size());
  const int first_id = next_vcpu_id_;
  next_vcpu_id_ += static_cast<int>(vcpu_workloads.size());
  vms_.push_back(std::make_unique<Vm>(vm_id, config, std::move(vcpu_workloads), first_id));
  Vm& vm = *vms_.back();
  // Pre-size per-VM attribution slots in every cache so the access
  // hot path never grows stat storage mid-run.
  machine_->memory().reserve_vm_slots(vm_id + 1);

  const int cores = machine_->topology().total_cores();
  for (std::size_t i = 0; i < vm.vcpus().size(); ++i) {
    Vcpu& vcpu = *vm.vcpus()[i];
    int core;
    if (!pinned_cores.empty()) {
      core = pinned_cores[i];
      KYOTO_CHECK_MSG(core >= 0 && core < cores, "pin target out of range: " << core);
    } else {
      core = next_default_core_;
      next_default_core_ = (next_default_core_ + 1) % cores;
    }
    vcpu.set_pinned_core(core);
    // Ref-batch storage comes from the hypervisor's bump arena: the
    // only allocation the fast engine ever needs, paid here at
    // admission time.  Blocks freed by destroy_vm are recycled first,
    // so steady-state churn stops growing the arena once the live-VM
    // high-water mark is reached.
    if (!free_ref_blocks_.empty()) {
      vcpu.set_ref_storage(free_ref_blocks_.back());
      free_ref_blocks_.pop_back();
    } else {
      vcpu.set_ref_storage(
          exec_arena_.allocate<workloads::AccessRef>(Vcpu::RefBuffer::kBlock));
    }
    scheduler_->vcpu_added(vcpu);
  }
  sched_tick_count_.resize(static_cast<std::size_t>(next_vcpu_id_), 0);
  return vm;
}

Vm& Hypervisor::create_vm(const VmConfig& config,
                          std::unique_ptr<workloads::Workload> workload, int core) {
  std::vector<std::unique_ptr<workloads::Workload>> w;
  w.push_back(std::move(workload));
  return create_vm(config, std::move(w), std::vector<int>{core});
}

void Hypervisor::destroy_vm(int vm_id) {
  // Like migrate: structural mutation only at the merge points (tick
  // hooks), never from inside a socket partition.
  KYOTO_CHECK_MSG(!in_tick_execution_, "destroy_vm called during tick execution");
  KYOTO_CHECK_MSG(vm_id >= 0 && static_cast<std::size_t>(vm_id) < vms_.size(),
                  "destroy_vm: unknown vm id " << vm_id);
  std::unique_ptr<Vm>& slot = vms_[static_cast<std::size_t>(vm_id)];
  KYOTO_CHECK_MSG(slot != nullptr, "destroy_vm: vm " << vm_id << " already destroyed");
  Vm& vm = *slot;
  for (const auto& vcpu : vm.vcpus()) {
    // A departing vCPU may still be lazily resident on its core; fold
    // its in-flight PMU delta before the counters become a final
    // accounting record.
    if (resident_[static_cast<std::size_t>(vcpu->pinned_core())] == vcpu.get()) {
      flush_resident(vcpu->pinned_core());
    }
    scheduler_->vcpu_removed(*vcpu);
    if (vcpu->ref_buffer().refs != nullptr) {
      free_ref_blocks_.push_back(vcpu->ref_buffer().refs);
    }
  }
  // Monitors abort campaigns / controllers drop slots while the Vm
  // object is still fully alive.
  for (const auto& hook : vm_removed_hooks_) hook(*this, vm);
  // LLC handoff: drop the VM's lines with exact attribution
  // bookkeeping.  Private-cache lines are left to go cold, exactly as
  // after a migration — address spaces are disjoint, so they can
  // never hit again.
  machine_->memory().release_vm_lines(vm_id);
  // The id is never reused; per-id state elsewhere stays allocated
  // but permanently idle.
  slot.reset();
}

void Hypervisor::migrate(Vcpu& vcpu, int new_core) {
  // Migration re-homes scheduler state and changes the vCPU's socket:
  // it must happen at the merge points (tick hooks, accounting), never
  // from inside a socket partition.
  KYOTO_CHECK_MSG(!in_tick_execution_, "migrate called during tick execution");
  const int cores = machine_->topology().total_cores();
  KYOTO_CHECK_MSG(new_core >= 0 && new_core < cores, "migration target out of range");
  const int old_core = vcpu.pinned_core();
  if (old_core == new_core) return;
  // The fast path keys residency on the (core, vCPU) pairing; a move
  // breaks it, so the lazy delta is folded against the old core's PMU
  // before the pin changes.
  if (resident_[static_cast<std::size_t>(old_core)] == &vcpu) flush_resident(old_core);
  vcpu.set_pinned_core(new_core);
  scheduler_->vcpu_migrated(vcpu, old_core);
}

void Hypervisor::set_execution_threads(int threads) {
  KYOTO_CHECK_MSG(threads >= 1, "execution threads must be >= 1");
  exec_threads_ = threads;
  // One partition per socket is the unit of parallelism; extra lanes
  // would only idle.
  const int lanes = std::min(threads, machine_->topology().sockets);
  if (lanes <= 1) {
    pool_.reset();
    return;
  }
  if (pool_ == nullptr || pool_->lanes() != lanes) {
    pool_ = std::make_unique<ThreadPool>(lanes);
  }
}

void Hypervisor::flush_resident(int core) {
  Vcpu*& res = resident_[static_cast<std::size_t>(core)];
  if (res == nullptr) return;
  res->counters().switch_out(machine_->pmu(core));
  res = nullptr;
}

void Hypervisor::set_control_plane_engine(bool batched) {
  KYOTO_CHECK_MSG(!in_tick_execution_, "engine switch during tick execution");
  if (!batched) {
    // Going eager: materialize every lazy resident so the reference
    // prologue's unconditional switch_in starts from a clean slate.
    const int cores = machine_->topology().total_cores();
    for (int core = 0; core < cores; ++core) flush_resident(core);
  }
  batched_control_plane_ = batched;
  scheduler_->set_reference_engine(!batched);
}

void Hypervisor::run_ticks(Tick n) {
  run_until([] { return false; }, n);
}

Tick Hypervisor::run_until(const std::function<bool()>& predicate, Tick max_ticks) {
  Tick executed = 0;
  while (executed < max_ticks && !predicate()) {
    run_one_tick();
    ++executed;
  }
  return executed;
}

void Hypervisor::execute_partition(int socket, CoreSlot* slots) {
  const cache::Topology& topo = machine_->topology();
  const int cores = topo.total_cores();
  const int base = topo.first_core(socket);
  const int per = topo.cores_per_socket;
  const Cycles cpt = machine_->cycles_per_tick();
  const Cycles chunk = std::max<Cycles>(1, cpt / kSubQuantaPerTick);
  const std::int64_t wall_base = now_ * cpt;

  // Interleaved execution: the socket's cores advance in lockstep
  // sub-quanta so that parallel LLC contention happens at fine grain.
  // The serial engine rotates the starting core every sub-quantum so
  // no core systematically goes first (which would give it de-facto
  // priority at the shared memory bus); restricted to this socket's
  // contiguous core block, that global rotation is a rotation of the
  // block starting at the global origin when it falls inside the
  // block and at the block head otherwise.  Reproducing it here makes
  // the per-socket execution order — and therefore every LLC/bus/RNG
  // state transition — identical to the serial engine's.
  for (int sub = 0; sub < kSubQuantaPerTick; ++sub) {
    const int origin = sub % cores;
    const int local = (origin > base && origin < base + per) ? origin - base : 0;
    for (int j = 0; j < per; ++j) {
      const int core = base + (local + j) % per;
      CoreSlot& slot = slots[core];
      if (slot.vcpu == nullptr || slot.remaining <= 0) continue;
      const Cycles budget = std::min(chunk, slot.remaining);
      const auto result =
          machine_->run_vcpu(*slot.vcpu, core, budget, wall_base + slot.ran);
      slot.ran += result.cycles_used;
      slot.remaining -= std::max<Cycles>(result.cycles_used, 1);
      if (result.vcpu_halted) slot.remaining = 0;  // completed, core idles out the tick
    }
  }
}

void Hypervisor::run_one_tick() {
  const int cores = machine_->topology().total_cores();
  const int sockets = machine_->topology().sockets;
  const Cycles cpt = machine_->cycles_per_tick();

  // --- prologue (serial, fixed core order): scheduler decisions are
  // frozen before any execution so partitions never touch scheduler
  // state.
  for (int core = 0; core < cores; ++core) {
    auto& slot = slots_[static_cast<std::size_t>(core)];
    slot = CoreSlot{};
    Vcpu* v = scheduler_->pick(core, now_);
    if (v == nullptr) {
      ++idle_ticks_[static_cast<std::size_t>(core)];
      continue;
    }
    KYOTO_CHECK_MSG(v->pinned_core() == core,
                    "scheduler picked vCPU " << v->id() << " for core " << core
                                             << " but it is pinned to " << v->pinned_core());
    slot.vcpu = v;
    slot.remaining = scheduler_->max_burst(*v, cpt);
    tick_pmu_base_[static_cast<std::size_t>(core)] = machine_->pmu(core).read();
    if (batched_control_plane_) {
      // Identity-switch fast path: the same vCPU picked again stays
      // switched in — its in-flight PMU delta keeps accruing and is
      // materialized at the next real switch (or read exactly via
      // VirtualCounters::read in the meantime).
      Vcpu*& res = resident_[static_cast<std::size_t>(core)];
      if (res == v) {
        ++identity_switch_ticks_;
      } else {
        if (res != nullptr) res->counters().switch_out(machine_->pmu(core));
        v->counters().switch_in(machine_->pmu(core));
        res = v;
      }
    } else {
      v->counters().switch_in(machine_->pmu(core));
    }
    ++sched_tick_count_[static_cast<std::size_t>(v->id())];
  }

  // --- execution: one partition per socket.  Serial when no pool is
  // configured (or the machine has one socket); the pool barrier
  // otherwise.  Either way the post-execution state is bit-identical:
  // partitions share no mutable state, and within a partition the
  // sub-quantum order matches the serial engine.
  CoreSlot* slots = slots_.data();
  in_tick_execution_ = true;
  if (pool_ != nullptr && sockets > 1) {
    ThreadPool& pool = *pool_;
    pool.run(static_cast<std::size_t>(sockets),
             [this, slots](std::size_t socket) {
               execute_partition(static_cast<int>(socket), slots);
             });
  } else {
    for (int socket = 0; socket < sockets; ++socket) execute_partition(socket, slots);
  }
  in_tick_execution_ = false;

  // --- epilogue (serial, fixed core order): the deterministic merge.
  // Per-socket results are folded back through PMC switch-out and
  // scheduler accounting in core order, so scheduler events, monitor
  // attributions and any stats the hooks read are ordered exactly as
  // in the serial engine regardless of which thread ran which socket.
  // Batched PMU virtualization: one straight-line pass computes every
  // core's tick delta from the prologue snapshots, in fixed core
  // order, so the accounting loop below consumes plain values instead
  // of interleaving PMU reads with branchy scheduler work.
  for (int core = 0; core < cores; ++core) {
    const auto c = static_cast<std::size_t>(core);
    if (slots_[c].vcpu == nullptr) continue;
    tick_pmu_delta_[c] = machine_->pmu(core).read() - tick_pmu_base_[c];
  }
  for (int core = 0; core < cores; ++core) {
    auto& slot = slots_[static_cast<std::size_t>(core)];
    if (slot.vcpu == nullptr) continue;
    // Reference engine: eager switch-out every tick (the fast path
    // leaves the vCPU resident instead — see the prologue).
    if (!batched_control_plane_) slot.vcpu->counters().switch_out(machine_->pmu(core));
    RunReport report;
    report.core = core;
    report.tick = now_;
    report.ran = slot.ran;
    report.pmc_delta = tick_pmu_delta_[static_cast<std::size_t>(core)];
    scheduler_->account(*slot.vcpu, report);
    for (const auto& hook : account_hooks_) hook(*slot.vcpu, report);
  }

  for (const auto& hook : tick_hooks_) hook(*this, now_);

  ++now_;
  if (now_ % kTicksPerSlice == 0) scheduler_->slice_end(now_);
}

std::vector<Vm*> Hypervisor::vms() {
  std::vector<Vm*> out;
  out.reserve(vms_.size());
  for (auto& vm : vms_) {
    if (vm != nullptr) out.push_back(vm.get());
  }
  return out;
}

int Hypervisor::live_vm_count() const {
  int live = 0;
  for (const auto& vm : vms_) live += vm != nullptr ? 1 : 0;
  return live;
}

std::int64_t Hypervisor::idle_ticks(int core) const {
  KYOTO_CHECK(core >= 0 && static_cast<std::size_t>(core) < idle_ticks_.size());
  return idle_ticks_[static_cast<std::size_t>(core)];
}

std::int64_t Hypervisor::sched_ticks(const Vcpu& vcpu) const {
  const auto id = static_cast<std::size_t>(vcpu.id());
  KYOTO_CHECK(id < sched_tick_count_.size());
  return sched_tick_count_[id];
}

}  // namespace kyoto::hv
