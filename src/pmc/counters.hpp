// Performance-monitoring counter (PMC) definitions.
//
// The paper's monitoring needs exactly the events below (§3.3:
// "Kyoto relies on two performance metrics: LLC Misses and UnHalted
// Core Cycles"; instructions and LLC references are used for IPC and
// for the skip-isolation heuristics).  A CounterSet is a value-type
// snapshot so that deltas and per-vCPU virtualization are simple
// arithmetic.
#pragma once

#include <array>
#include <cstdint>

namespace kyoto::pmc {

enum class Counter : unsigned {
  kInstructions = 0,
  kUnhaltedCycles = 1,
  kLlcReferences = 2,
  kLlcMisses = 3,
  kCount = 4,
};

inline constexpr unsigned kCounterCount = static_cast<unsigned>(Counter::kCount);

const char* counter_name(Counter c);

/// A snapshot of all counters; supports delta arithmetic.
struct CounterSet {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t get(Counter c) const { return values[static_cast<unsigned>(c)]; }
  void set(Counter c, std::uint64_t v) { values[static_cast<unsigned>(c)] = v; }
  void add(Counter c, std::uint64_t v) { values[static_cast<unsigned>(c)] += v; }

  CounterSet& operator+=(const CounterSet& o) {
    for (unsigned i = 0; i < kCounterCount; ++i) values[i] += o.values[i];
    return *this;
  }
  CounterSet& operator-=(const CounterSet& o) {
    for (unsigned i = 0; i < kCounterCount; ++i) values[i] -= o.values[i];
    return *this;
  }
  friend CounterSet operator+(CounterSet a, const CounterSet& b) { return a += b; }
  friend CounterSet operator-(CounterSet a, const CounterSet& b) { return a -= b; }
  friend bool operator==(const CounterSet&, const CounterSet&) = default;

  void clear() { values.fill(0); }

  /// Instructions per unhalted cycle; 0 when no cycles elapsed.
  double ipc() const {
    const auto cycles = get(Counter::kUnhaltedCycles);
    return cycles ? static_cast<double>(get(Counter::kInstructions)) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

}  // namespace kyoto::pmc
