// Per-core performance monitoring unit.
//
// Hardware PMCs count events on the core where they occur, regardless
// of which vCPU is running — that is precisely why attribution to VMs
// is a problem the paper must solve.  The execution engine feeds each
// core's PMU; perfctr-style virtualization (perfctr.hpp) slices the
// monotonically increasing core counts into per-vCPU counts.
#pragma once

#include "common/align.hpp"
#include "pmc/counters.hpp"

namespace kyoto::pmc {

/// Padded to a host cache line: PMUs of adjacent cores are written
/// concurrently when the hypervisor executes socket partitions on
/// separate threads, and cores across a socket boundary must not
/// false-share a line.
class alignas(kCacheLineBytes) CorePmu {
 public:
  void add(Counter c, std::uint64_t n) { counters_.add(c, n); }

  /// Monotonic since power-on; never reset (mirrors hardware MSRs).
  const CounterSet& read() const { return counters_; }

 private:
  CounterSet counters_;
};

}  // namespace kyoto::pmc
