// Perfctr-style PMC virtualization (Nikolaev & Back, VEE 2011 [18]).
//
// perfctr-xen gives each vCPU the illusion of private counters by
// snapshotting the core PMU at context-switch-in and accumulating the
// delta at switch-out.  The resulting per-vCPU counts are exact in
// the sense that every counted event happened while that vCPU held
// the core — but LLC misses counted this way still *include
// contention-induced misses* caused by other VMs evicting this vCPU's
// lines, which is exactly the attribution problem the paper's
// monitoring strategies (socket dedication, McSim replay) address.
//
// Identity-switch fast path: the hypervisor may leave a vCPU
// "resident" on a core across ticks without a switch-out/switch-in
// pair, so the in-flight delta spans many ticks.  To keep reads exact
// without forcing callers to know which core the vCPU sits on,
// switch_in remembers the core's PMU; read() folds the in-flight
// delta in from there.  The lazy delta is materialized into
// accumulated_ at the next real switch-out, and discarded/re-anchored
// at reset() (a monitoring window boundary must not resurrect
// pre-window history).
#pragma once

#include "common/check.hpp"
#include "pmc/counters.hpp"
#include "pmc/pmu.hpp"

namespace kyoto::pmc {

/// Per-vCPU virtualized counter state.
class VirtualCounters {
 public:
  /// Called when the vCPU is placed on a core.
  void switch_in(const CorePmu& pmu) {
    KYOTO_CHECK_MSG(!running_, "vCPU already running on a core");
    running_ = true;
    core_ = &pmu;
    snapshot_ = pmu.read();
  }

  /// Called when the vCPU is descheduled from the same core.
  void switch_out(const CorePmu& pmu) {
    KYOTO_CHECK_MSG(running_, "vCPU not running");
    running_ = false;
    core_ = nullptr;
    accumulated_ += pmu.read() - snapshot_;
  }

  /// Current virtualized counts, always exact: a running vCPU's
  /// in-flight delta (possibly spanning several identity-switch
  /// ticks) is read live from the core it was switched in on.  The
  /// optional argument is kept for callers that track the core
  /// themselves; when given it must be that same core.
  CounterSet read([[maybe_unused]] const CorePmu* current_core = nullptr) const {
    CounterSet result = accumulated_;
    if (running_) {
      KYOTO_DCHECK(current_core == nullptr || current_core == core_);
      result += core_->read() - snapshot_;
    }
    return result;
  }

  bool running() const { return running_; }

  /// Forgets history (used when a monitoring window starts).  A
  /// resident vCPU's in-flight delta belongs to the *old* window, so
  /// the snapshot re-anchors at the current counts; while descheduled
  /// this matches the eager engine exactly (nothing runs between the
  /// epilogue's switch-out and the next prologue's switch-in).
  void reset() {
    accumulated_.clear();
    if (running_) snapshot_ = core_->read();
  }

 private:
  CounterSet accumulated_;
  CounterSet snapshot_;
  const CorePmu* core_ = nullptr;  // non-null while running_
  bool running_ = false;
};

}  // namespace kyoto::pmc
