// Perfctr-style PMC virtualization (Nikolaev & Back, VEE 2011 [18]).
//
// perfctr-xen gives each vCPU the illusion of private counters by
// snapshotting the core PMU at context-switch-in and accumulating the
// delta at switch-out.  The resulting per-vCPU counts are exact in
// the sense that every counted event happened while that vCPU held
// the core — but LLC misses counted this way still *include
// contention-induced misses* caused by other VMs evicting this vCPU's
// lines, which is exactly the attribution problem the paper's
// monitoring strategies (socket dedication, McSim replay) address.
#pragma once

#include "common/check.hpp"
#include "pmc/counters.hpp"
#include "pmc/pmu.hpp"

namespace kyoto::pmc {

/// Per-vCPU virtualized counter state.
class VirtualCounters {
 public:
  /// Called when the vCPU is placed on a core.
  void switch_in(const CorePmu& pmu) {
    KYOTO_CHECK_MSG(!running_, "vCPU already running on a core");
    running_ = true;
    snapshot_ = pmu.read();
  }

  /// Called when the vCPU is descheduled from the same core.
  void switch_out(const CorePmu& pmu) {
    KYOTO_CHECK_MSG(running_, "vCPU not running");
    running_ = false;
    accumulated_ += pmu.read() - snapshot_;
  }

  /// Current virtualized counts.  If the vCPU is on a core right now,
  /// pass that core's PMU to include the in-flight delta.
  CounterSet read(const CorePmu* current_core = nullptr) const {
    CounterSet result = accumulated_;
    if (running_ && current_core != nullptr) {
      result += current_core->read() - snapshot_;
    }
    return result;
  }

  bool running() const { return running_; }

  /// Forgets history (used when a monitoring window starts).
  void reset() {
    accumulated_.clear();
    // snapshot_ stays: an in-flight window keeps counting from here.
  }

 private:
  CounterSet accumulated_;
  CounterSet snapshot_;
  bool running_ = false;
};

}  // namespace kyoto::pmc
