#include "pmc/counters.hpp"

namespace kyoto::pmc {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kInstructions: return "instructions";
    case Counter::kUnhaltedCycles: return "unhalted_core_cycles";
    case Counter::kLlcReferences: return "llc_references";
    case Counter::kLlcMisses: return "llc_misses";
    case Counter::kCount: break;
  }
  return "?";
}

}  // namespace kyoto::pmc
