// Application catalog: the paper's benchmark programs as workload
// profiles.
//
// Two families:
//
//  * Micro-benchmarks (§2.2.2, Drepper [15]): a pointer chase over a
//    working set sized for one of the paper's three VM classes —
//    C1 fits the intermediate-level caches (L1+L2), C2 fits the LLC,
//    C3 exceeds it.  Each class has a *representative* (latency-
//    sensitive, moderate memory intensity) and a *disruptive*
//    (memory-hammering) variant, matching v^i_rep / v^i_dis.
//
//  * SPEC CPU2006 + blockie profiles (§2.2.2, §4, Table 2): each
//    application is modelled by a reference pattern, working-set
//    size, memory-op ratio and MLP factor chosen to land its
//    cache behaviour in the class the paper assigns it (gcc/omnetpp/
//    soplex sensitive; lbm/blockie/mcf disruptive; milc high-volume
//    but lower-rate; hmmer/povray ILC-resident).  Run lengths differ
//    per application — that is what makes the total-miss-count (LLCM)
//    ranking differ from the Equation-1 rate ranking in Fig 4.
//
// Working sets are expressed relative to the machine's LLC capacity,
// so profiles adapt automatically to the full-size or scaled machine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "workloads/workload.hpp"

namespace kyoto::workloads {

/// VM classes of §2.2.4.
enum class MicroClass { kC1 = 1, kC2 = 2, kC3 = 3 };

/// v^i_rep: latency-sensitive pointer chase sized for the class.
/// `stream` selects the reference-stream format (v1 default; see
/// workload.hpp).
std::unique_ptr<Workload> micro_representative(MicroClass cls,
                                               const cache::MemSystemConfig& mem,
                                               std::uint64_t seed,
                                               StreamVersion stream = StreamVersion::kV1);

/// v^i_dis: cache-hammering variant sized for the class.
std::unique_ptr<Workload> micro_disruptive(MicroClass cls,
                                           const cache::MemSystemConfig& mem,
                                           std::uint64_t seed,
                                           StreamVersion stream = StreamVersion::kV1);

/// How one application's reference stream is synthesized.
struct PatternSpec {
  enum class Kind { kChase, kSequential, kStrided, kRandom, kZipf } kind =
      Kind::kChase;
  /// Working set as a fraction of LLC capacity.
  double ws_llc_frac = 1.0;
  std::uint64_t stride_lines = 1;  // kStrided only
  double zipf_exponent = 0.8;      // kZipf only
};

/// A complete application profile.  `phases` with more than one entry
/// model phase-structured programs (each phase runs for `accesses`
/// memory references before switching).
struct AppProfile {
  std::string name;
  struct Phase {
    PatternSpec pattern;
    std::uint64_t accesses = 0;  // ignored when there is a single phase
  };
  std::vector<Phase> phases;
  double mem_ratio = 0.3;
  double write_ratio = 0.25;
  double mlp = 1.0;
  Instructions length = 0;  // one full run, in instructions
  /// Paper's classification, for reporting.
  bool sensitive = false;
  bool disruptive = false;
};

/// All modelled applications (SPEC CPU2006 subset + blockie).
const std::vector<AppProfile>& app_profiles();

/// Profile by name; throws std::logic_error for unknown names.
const AppProfile& app_profile(const std::string& name);

/// Instantiates an application on a given machine geometry.  `stream`
/// selects the reference-stream format (v1 default; see workload.hpp).
std::unique_ptr<Workload> make_app(const AppProfile& profile,
                                   const cache::MemSystemConfig& mem,
                                   std::uint64_t seed,
                                   StreamVersion stream = StreamVersion::kV1);
std::unique_ptr<Workload> make_app(const std::string& name,
                                   const cache::MemSystemConfig& mem,
                                   std::uint64_t seed,
                                   StreamVersion stream = StreamVersion::kV1);

/// The ten applications ranked in Fig 4, in the paper's plotting order.
const std::vector<std::string>& fig4_apps();

/// Table 2 mappings: vsen_i / vdis_i application names (i in 1..3).
const std::vector<std::string>& sensitive_apps();   // gcc, omnetpp, soplex
const std::vector<std::string>& disruptive_apps();  // lbm, blockie, mcf

}  // namespace kyoto::workloads
