#include "workloads/catalog.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "mem/patterns.hpp"
#include "workloads/pattern_workload.hpp"

namespace kyoto::workloads {
namespace {

using mem::Pattern;
using mem::PhasedPattern;
using mem::PointerChasePattern;
using mem::SequentialPattern;
using mem::StridedPattern;
using mem::UniformRandomPattern;
using mem::ZipfPattern;

Bytes ws_bytes(double llc_frac, const cache::MemSystemConfig& mem) {
  const double bytes = llc_frac * static_cast<double>(mem.llc.size);
  return std::max<Bytes>(mem::kLineBytes, static_cast<Bytes>(bytes));
}

std::unique_ptr<Pattern> build_pattern(const PatternSpec& spec,
                                       const cache::MemSystemConfig& mem,
                                       std::uint64_t seed) {
  const Bytes ws = ws_bytes(spec.ws_llc_frac, mem);
  switch (spec.kind) {
    case PatternSpec::Kind::kChase:
      return std::make_unique<PointerChasePattern>(ws, seed);
    case PatternSpec::Kind::kSequential:
      return std::make_unique<SequentialPattern>(ws);
    case PatternSpec::Kind::kStrided:
      return std::make_unique<StridedPattern>(ws, spec.stride_lines);
    case PatternSpec::Kind::kRandom:
      return std::make_unique<UniformRandomPattern>(ws);
    case PatternSpec::Kind::kZipf:
      return std::make_unique<ZipfPattern>(ws, spec.zipf_exponent, seed);
  }
  KYOTO_CHECK_MSG(false, "unreachable pattern kind");
  return nullptr;
}

constexpr Instructions kMi = 1'000'000;

/// The profile table.  Working sets are LLC fractions; `length` values
/// are chosen so the per-run total-miss ranking (LLCM, Fig 4 left)
/// reproduces the paper's order o2 = (milc, lbm, soplex, mcf, blockie,
/// ...) while the miss *rates* (Equation 1) reproduce o3 = (lbm,
/// blockie, milc, mcf, soplex, ...).  milc is the archetype: a long
/// streaming run piles up the largest total while prefetch-friendly
/// access keeps its per-millisecond pollution below lbm's and
/// blockie's.
std::vector<AppProfile> build_profiles() {
  using K = PatternSpec::Kind;
  std::vector<AppProfile> apps;

  // --- sensitive VMs (Table 2: vsen1..vsen3) -------------------------
  apps.push_back(AppProfile{
      "gcc",
      {{PatternSpec{K::kZipf, 0.45, 1, 0.9}, 50'000},
       {PatternSpec{K::kSequential, 0.20, 1, 0.0}, 15'000}},
      /*mem_ratio=*/0.30, /*write_ratio=*/0.20, /*mlp=*/1.3,
      /*length=*/6 * kMi, /*sensitive=*/true, /*disruptive=*/false});
  apps.push_back(AppProfile{
      "omnetpp",
      {{PatternSpec{K::kZipf, 0.85, 1, 0.75}, 0}},
      0.35, 0.30, 1.1, 7 * kMi, true, false});
  // soplex scans large LP matrices but keeps hot rows/factors: a
  // skewed footprint slightly beyond the LLC.  Solo, the hot lines
  // stay resident; under contention they are evicted — sensitive AND
  // moderately aggressive, as Table 2/Fig 4 require.
  apps.push_back(AppProfile{
      "soplex",
      {{PatternSpec{K::kZipf, 1.20, 1, 0.8}, 60'000},
       {PatternSpec{K::kStrided, 1.20, 7, 0.0}, 12'000}},
      0.33, 0.25, 1.8, 8 * kMi, true, false});

  // --- disruptive VMs (Table 2: vdis1..vdis3) -------------------------
  apps.push_back(AppProfile{
      "lbm",
      {{PatternSpec{K::kSequential, 3.00, 1, 0.0}, 0}},
      0.50, 0.40, 3.0, 10 * kMi, false, true});
  apps.push_back(AppProfile{
      "blockie",
      {{PatternSpec{K::kRandom, 2.50, 1, 0.0}, 0}},
      0.55, 0.30, 2.8, 5 * kMi, false, true});
  apps.push_back(AppProfile{
      "mcf",
      {{PatternSpec{K::kChase, 2.50, 1, 0.0}, 0}},
      0.50, 0.20, 1.5, 7 * kMi, false, true});

  // --- the rest of the Fig 4 set --------------------------------------
  apps.push_back(AppProfile{
      "milc",
      {{PatternSpec{K::kSequential, 4.00, 1, 0.0}, 0}},
      0.30, 0.35, 2.0, 28 * kMi, false, true});
  apps.push_back(AppProfile{
      "xalan",
      {{PatternSpec{K::kZipf, 0.70, 1, 1.1}, 0}},
      0.30, 0.25, 1.2, 5 * kMi, false, false});
  apps.push_back(AppProfile{
      "astar",
      {{PatternSpec{K::kChase, 0.30, 1, 0.0}, 0}},
      0.25, 0.20, 1.0, 5 * kMi, false, false});
  apps.push_back(AppProfile{
      "bzip",
      {{PatternSpec{K::kSequential, 0.10, 1, 0.0}, 20'000},
       {PatternSpec{K::kZipf, 0.06, 1, 0.8}, 30'000}},
      0.30, 0.30, 1.5, 4 * kMi, false, false});

  // --- ILC-resident applications (Figs 10 and 12) ---------------------
  apps.push_back(AppProfile{
      "hmmer",
      {{PatternSpec{K::kZipf, 0.02, 1, 0.7}, 0}},
      0.35, 0.25, 1.6, 6 * kMi, false, false});
  apps.push_back(AppProfile{
      "povray",
      {{PatternSpec{K::kZipf, 0.01, 1, 0.9}, 0}},
      0.12, 0.20, 1.5, 6 * kMi, false, false});

  return apps;
}

std::unique_ptr<Workload> make_micro(const char* name, PatternSpec::Kind kind, Bytes ws,
                                     double mem_ratio, double mlp,
                                     const cache::MemSystemConfig& /*mem*/,
                                     std::uint64_t seed, StreamVersion stream) {
  std::unique_ptr<Pattern> pattern;
  switch (kind) {
    case PatternSpec::Kind::kChase:
      pattern = std::make_unique<PointerChasePattern>(ws, seed);
      break;
    case PatternSpec::Kind::kRandom:
      pattern = std::make_unique<UniformRandomPattern>(ws);
      break;
    case PatternSpec::Kind::kSequential:
      pattern = std::make_unique<SequentialPattern>(ws);
      break;
    case PatternSpec::Kind::kZipf:
      pattern = std::make_unique<ZipfPattern>(ws, 0.9, seed);
      break;
    default:
      KYOTO_CHECK_MSG(false, "unsupported micro pattern");
  }
  WorkloadSpec spec;
  spec.name = name;
  spec.mem_ratio = mem_ratio;
  spec.write_ratio = 0.25;
  spec.length = 0;  // endless loop; experiments measure over a window
  spec.mlp = mlp;
  spec.stream = stream;
  return std::make_unique<PatternWorkload>(std::move(spec), std::move(pattern), seed);
}

}  // namespace

std::unique_ptr<Workload> micro_representative(MicroClass cls,
                                               const cache::MemSystemConfig& mem,
                                               std::uint64_t seed, StreamVersion stream) {
  // Representatives are dependency-chained chases (mlp 1): every cycle
  // of added miss latency is fully exposed, making them the most
  // latency-sensitive programs possible for their class.
  switch (cls) {
    case MicroClass::kC1:
      return make_micro("v1rep", PatternSpec::Kind::kChase, mem.l2.size / 2, 0.30, 1.0,
                        mem, seed, stream);
    case MicroClass::kC2:
      return make_micro("v2rep", PatternSpec::Kind::kChase,
                        static_cast<Bytes>(0.55 * static_cast<double>(mem.llc.size)), 0.30,
                        1.0, mem, seed, stream);
    case MicroClass::kC3:
      // A working set beyond the LLC but with reuse locality (hot
      // structures inside a large footprint, like mcf/soplex): solo,
      // the hot lines stay LLC-resident; under contention they are
      // evicted and performance collapses.  A pure cyclic chase would
      // miss every access even solo and thus could not be hurt.
      return make_micro("v3rep", PatternSpec::Kind::kZipf, mem.llc.size * 2, 0.30, 1.0,
                        mem, seed, stream);
  }
  KYOTO_CHECK_MSG(false, "unreachable micro class");
  return nullptr;
}

std::unique_ptr<Workload> micro_disruptive(MicroClass cls,
                                           const cache::MemSystemConfig& mem,
                                           std::uint64_t seed, StreamVersion stream) {
  switch (cls) {
    case MicroClass::kC1:
      // Hammers the ILC only: working set == L2, so it barely touches
      // the LLC — the paper shows this disturbs nobody.
      return make_micro("v1dis", PatternSpec::Kind::kRandom, mem.l2.size, 0.50, 1.5, mem,
                        seed, stream);
    case MicroClass::kC2:
      return make_micro("v2dis", PatternSpec::Kind::kRandom,
                        static_cast<Bytes>(0.90 * static_cast<double>(mem.llc.size)), 0.50,
                        2.0, mem, seed, stream);
    case MicroClass::kC3:
      return make_micro("v3dis", PatternSpec::Kind::kSequential, mem.llc.size * 3, 0.55,
                        3.0, mem, seed, stream);
  }
  KYOTO_CHECK_MSG(false, "unreachable micro class");
  return nullptr;
}

const std::vector<AppProfile>& app_profiles() {
  static const std::vector<AppProfile> kProfiles = build_profiles();
  return kProfiles;
}

const AppProfile& app_profile(const std::string& name) {
  for (const auto& p : app_profiles()) {
    if (p.name == name) return p;
  }
  KYOTO_CHECK_MSG(false, "unknown application profile: " << name);
  // Unreachable; KYOTO_CHECK_MSG throws.
  return app_profiles().front();
}

std::unique_ptr<Workload> make_app(const AppProfile& profile,
                                   const cache::MemSystemConfig& mem, std::uint64_t seed,
                                   StreamVersion stream) {
  KYOTO_CHECK_MSG(!profile.phases.empty(), "profile without phases: " << profile.name);
  std::unique_ptr<Pattern> pattern;
  if (profile.phases.size() == 1) {
    pattern = build_pattern(profile.phases[0].pattern, mem, seed);
  } else {
    std::vector<PhasedPattern::Phase> phases;
    phases.reserve(profile.phases.size());
    std::uint64_t sub_seed = seed;
    for (const auto& phase : profile.phases) {
      KYOTO_CHECK_MSG(phase.accesses > 0,
                      "multi-phase profile needs per-phase access counts: " << profile.name);
      phases.push_back(PhasedPattern::Phase{
          build_pattern(phase.pattern, mem, splitmix64(sub_seed)), phase.accesses});
    }
    pattern = std::make_unique<PhasedPattern>(std::move(phases));
  }
  WorkloadSpec spec;
  spec.name = profile.name;
  spec.mem_ratio = profile.mem_ratio;
  spec.write_ratio = profile.write_ratio;
  spec.length = profile.length;
  spec.mlp = profile.mlp;
  spec.stream = stream;
  return std::make_unique<PatternWorkload>(std::move(spec), std::move(pattern), seed);
}

std::unique_ptr<Workload> make_app(const std::string& name,
                                   const cache::MemSystemConfig& mem, std::uint64_t seed,
                                   StreamVersion stream) {
  return make_app(app_profile(name), mem, seed, stream);
}

const std::vector<std::string>& fig4_apps() {
  static const std::vector<std::string> kApps = {
      "astar", "blockie", "bzip", "gcc",     "lbm",
      "mcf",   "milc",    "omnetpp", "soplex", "xalan"};
  return kApps;
}

const std::vector<std::string>& sensitive_apps() {
  static const std::vector<std::string> kApps = {"gcc", "omnetpp", "soplex"};
  return kApps;
}

const std::vector<std::string>& disruptive_apps() {
  static const std::vector<std::string> kApps = {"lbm", "blockie", "mcf"};
  return kApps;
}

}  // namespace kyoto::workloads
