// Generic workload driven by a mem::Pattern.
//
// Every concrete application model (micro-benchmarks, blockie, SPEC
// profiles) is a PatternWorkload: a reference pattern plus the
// instruction-mix parameters of WorkloadSpec.
#pragma once

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mem/patterns.hpp"
#include "workloads/workload.hpp"

namespace kyoto::workloads {

class PatternWorkload final : public Workload {
 public:
  /// `spec.working_set` is overwritten with the pattern's actual
  /// (line-rounded) working set.  `seed` drives the instruction mix
  /// and any stochastic pattern decisions.
  PatternWorkload(WorkloadSpec spec, std::unique_ptr<mem::Pattern> pattern,
                  std::uint64_t seed)
      : spec_(std::move(spec)), pattern_(std::move(pattern)), seed_(seed), rng_(seed) {
    KYOTO_CHECK(pattern_ != nullptr);
    KYOTO_CHECK_MSG(spec_.mem_ratio >= 0.0 && spec_.mem_ratio <= 1.0, "mem_ratio in [0,1]");
    KYOTO_CHECK_MSG(spec_.write_ratio >= 0.0 && spec_.write_ratio <= 1.0,
                    "write_ratio in [0,1]");
    KYOTO_CHECK_MSG(spec_.mlp >= 1.0, "mlp must be >= 1");
    spec_.working_set = pattern_->working_set();
  }

  PatternWorkload(const PatternWorkload& other)
      : spec_(other.spec_),
        pattern_(other.pattern_->clone()),
        seed_(other.seed_),
        rng_(other.rng_) {}
  PatternWorkload& operator=(const PatternWorkload&) = delete;

  mem::Op next() override {
    mem::Op op;
    if (rng_.chance(spec_.mem_ratio)) {
      op.kind = rng_.chance(spec_.write_ratio) ? mem::OpKind::kStore : mem::OpKind::kLoad;
      op.addr = pattern_->next_offset(rng_);
    }
    return op;
  }

 protected:
  std::size_t do_next_batch(mem::Op* out, std::size_t n) override {
    // Same draws in the same order as next(), with the per-op virtual
    // dispatch and the spec_ field reloads hoisted out of the loop.
    const double mem_ratio = spec_.mem_ratio;
    const double write_ratio = spec_.write_ratio;
    mem::Pattern* pattern = pattern_.get();
    for (std::size_t i = 0; i < n; ++i) {
      mem::Op op;
      if (rng_.chance(mem_ratio)) {
        op.kind = rng_.chance(write_ratio) ? mem::OpKind::kStore : mem::OpKind::kLoad;
        op.addr = pattern->next_offset(rng_);
      }
      out[i] = op;
    }
    return n;
  }

 public:

  void reset() override {
    pattern_->reset();
    rng_.reseed(seed_);
  }

  std::unique_ptr<Workload> clone() const override {
    return std::make_unique<PatternWorkload>(*this);
  }

  const WorkloadSpec& spec() const override { return spec_; }

 private:
  WorkloadSpec spec_;
  std::unique_ptr<mem::Pattern> pattern_;
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace kyoto::workloads
