// Generic workload driven by a mem::Pattern.
//
// Every concrete application model (micro-benchmarks, blockie, SPEC
// profiles) is a PatternWorkload: a reference pattern plus the
// instruction-mix parameters of WorkloadSpec.
//
// Stream formats (WorkloadSpec::stream):
//
//  * v1 (default) — the frozen per-op generator: uniform() Bernoulli
//    draws for the instruction mix, one pattern->next_offset per
//    memory op.  This path is bit-identical to the seed behavior and
//    must stay that way (tests/workloads/stream_equivalence_test.cpp
//    pins it with hard-coded checksums).
//  * v2 — the compiled generator: *geometric-skip* op generation.
//    Instead of one Bernoulli draw per instruction, the run of
//    compute instructions before each memory reference is drawn in
//    one shot from the geometric distribution Geom(mem_ratio) — the
//    exact distribution of that run under per-op Bernoulli draws —
//    through an inverse-CDF table (GeometricGap below).  Offsets come
//    from the pattern's CompiledStream a block at a time (one virtual
//    fill per kOffsetBlock memory ops, zero per-op pattern dispatch).
//    Work per simulated instruction therefore collapses to work per
//    *memory reference*; next_ref_batch exposes that form directly
//    and next()/next_batch() rematerialize per-op streams from it
//    unchanged.  The v2 RNG stream derives from the same user seed
//    through a version salt, so v1 figures stay regenerable from
//    their seeds while v2 runs are decorrelated from them.
#pragma once

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mem/compiled_stream.hpp"
#include "mem/patterns.hpp"
#include "workloads/workload.hpp"

namespace kyoto::workloads {

/// Exact inverse-CDF sampler for the geometric gap distribution
/// P(gap = k) = (1-p)^k p, k >= 0 — the length of the compute run
/// before the next memory reference when each instruction is a
/// memory op with probability p.  The CDF is precomputed until it
/// saturates to 1.0 in double precision (a few hundred entries even
/// for the smallest in-tree p) and a mem::QuantileIndex maps the top
/// bits of the uniform draw to a one- or two-entry search range, so
/// a draw is O(1) with no transcendental math.
class GeometricGap {
 public:
  GeometricGap() = default;

  /// `p` is the per-instruction memory probability in (0, 1]; p >= 1
  /// degenerates to gap == 0 without consuming draws.
  explicit GeometricGap(double p) {
    if (p >= 1.0) {
      always_zero_ = true;
      return;
    }
    KYOTO_CHECK_MSG(p > 0.0, "geometric gap needs p in (0, 1]");
    const double q = 1.0 - p;
    double f = 0.0;   // F(k-1)
    double qk = 1.0;  // q^k
    while (f < 1.0) {
      qk *= q;
      const double next = 1.0 - qk;  // F(k)
      cdf_.push_back(next <= f ? 1.0 : next);  // force progress at saturation
      if (cdf_.back() >= 1.0) cdf_.back() = 1.0;
      f = cdf_.back();
      if (cdf_.size() > 1u << 20) {  // paranoia bound; unreachable for real p
        cdf_.back() = 1.0;
        break;
      }
    }
    quantile_ = mem::QuantileIndex(cdf_);
  }

  /// Draws a gap; consumes exactly one RNG word (none when p >= 1).
  std::uint32_t draw(Rng& rng) const {
    if (always_zero_) return 0;
    return quantile_.lookup(cdf_, rng.uniform());
  }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(gap <= k)
  mem::QuantileIndex quantile_;
  bool always_zero_ = false;
};

class PatternWorkload final : public Workload {
 public:
  /// `spec.working_set` is overwritten with the pattern's actual
  /// (line-rounded) working set.  `seed` drives the instruction mix
  /// and any stochastic pattern decisions.  A spec requesting
  /// StreamVersion::kV2 is honored iff the pattern compiles (all
  /// in-tree patterns do); otherwise the workload falls back to v1
  /// and reports that via stream_version().
  PatternWorkload(WorkloadSpec spec, std::unique_ptr<mem::Pattern> pattern,
                  std::uint64_t seed)
      : spec_(std::move(spec)), pattern_(std::move(pattern)), seed_(seed), rng_(seed) {
    KYOTO_CHECK(pattern_ != nullptr);
    KYOTO_CHECK_MSG(spec_.mem_ratio >= 0.0 && spec_.mem_ratio <= 1.0, "mem_ratio in [0,1]");
    KYOTO_CHECK_MSG(spec_.write_ratio >= 0.0 && spec_.write_ratio <= 1.0,
                    "write_ratio in [0,1]");
    KYOTO_CHECK_MSG(spec_.mlp >= 1.0, "mlp must be >= 1");
    spec_.working_set = pattern_->working_set();
    if (spec_.stream == StreamVersion::kV2) {
      compiled_ = spec_.mem_ratio > 0.0 ? pattern_->compile(v2_stream_seed()) : nullptr;
      if (compiled_ == nullptr) {
        spec_.stream = StreamVersion::kV1;  // uncompilable pattern: stay on v1
      } else {
        gap_dist_ = GeometricGap(spec_.mem_ratio);
        write_threshold_ = fixed_threshold(spec_.write_ratio);
        offsets_.resize(kOffsetBlock);
        rng_.reseed(v2_mix_seed());
      }
    }
  }

  PatternWorkload(const PatternWorkload& other)
      : spec_(other.spec_),
        pattern_(other.pattern_->clone()),
        seed_(other.seed_),
        rng_(other.rng_),
        compiled_(other.compiled_ != nullptr ? other.compiled_->clone() : nullptr),
        gap_dist_(other.gap_dist_),
        write_threshold_(other.write_threshold_),
        offsets_(other.offsets_),
        off_pos_(other.off_pos_),
        off_len_(other.off_len_),
        gap_left_(other.gap_left_),
        have_ref_(other.have_ref_),
        ref_addr_(other.ref_addr_),
        ref_write_(other.ref_write_) {}
  PatternWorkload& operator=(const PatternWorkload&) = delete;

  mem::Op next() override {
    if (compiled_ != nullptr) return next_v2();
    mem::Op op;
    if (rng_.chance(spec_.mem_ratio)) {
      op.kind = rng_.chance(spec_.write_ratio) ? mem::OpKind::kStore : mem::OpKind::kLoad;
      op.addr = pattern_->next_offset(rng_);
    }
    return op;
  }

  RefBatch next_ref_batch(AccessRef* out, std::size_t max_refs, std::size_t max_ops,
                          std::uint32_t* trailing_gap) override {
    if (compiled_ == nullptr) {
      return Workload::next_ref_batch(out, max_refs, max_ops, trailing_gap);
    }
    // Geometric-skip fast path: one loop iteration per memory
    // reference; compute runs are emitted as gap counts, never
    // iterated.
    RefBatch batch;
    std::uint32_t spill = 0;
    while (batch.refs < max_refs) {
      ensure_ref();
      const std::uint64_t need = static_cast<std::uint64_t>(gap_left_) + 1;
      if (batch.ops + need > max_ops) {
        // The whole pending run does not fit: consume only compute
        // instructions up to the op budget and leave the reference
        // pending for the next call.
        const auto take = static_cast<std::uint32_t>(max_ops - batch.ops);
        gap_left_ -= take;
        spill = take;
        batch.ops = max_ops;
        break;
      }
      batch.ops += static_cast<std::size_t>(need);
      out[batch.refs++] = AccessRef{ref_addr_, gap_left_, ref_write_};
      gap_left_ = 0;
      have_ref_ = false;
    }
    *trailing_gap = spill;
    return batch;
  }

 protected:
  std::size_t do_next_batch(mem::Op* out, std::size_t n) override {
    if (compiled_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) out[i] = next_v2();
      return n;
    }
    // v1: same draws in the same order as next(), with the per-op
    // virtual dispatch and the spec_ field reloads hoisted out of the
    // loop.
    const double mem_ratio = spec_.mem_ratio;
    const double write_ratio = spec_.write_ratio;
    mem::Pattern* pattern = pattern_.get();
    for (std::size_t i = 0; i < n; ++i) {
      mem::Op op;
      if (rng_.chance(mem_ratio)) {
        op.kind = rng_.chance(write_ratio) ? mem::OpKind::kStore : mem::OpKind::kLoad;
        op.addr = pattern->next_offset(rng_);
      }
      out[i] = op;
    }
    return n;
  }

 public:

  void reset() override {
    pattern_->reset();
    if (compiled_ != nullptr) {
      compiled_->reset();
      rng_.reseed(v2_mix_seed());
      off_pos_ = off_len_ = 0;
      gap_left_ = 0;
      have_ref_ = false;
    } else {
      rng_.reseed(seed_);
    }
  }

  std::unique_ptr<Workload> clone() const override {
    return std::make_unique<PatternWorkload>(*this);
  }

  const WorkloadSpec& spec() const override { return spec_; }

  StreamVersion stream_version() const override { return spec_.stream; }

 private:
  /// Offsets pulled from the compiled stream per refill: one virtual
  /// fill() amortized over this many memory references.
  static constexpr std::size_t kOffsetBlock = 512;

  /// Version salts: v2 streams draw from RNG streams derived from the
  /// user seed but decorrelated from the v1 stream (and from each
  /// other), so opting a scenario into v2 never replays v1 draws.
  std::uint64_t v2_stream_seed() const {
    std::uint64_t s = seed_ ^ 0x5eedc0de00000002ull;
    return splitmix64(s);
  }
  std::uint64_t v2_mix_seed() const {
    std::uint64_t s = seed_ ^ 0x3713c0de00000002ull;
    return splitmix64(s);
  }

  /// Probability as a 64-bit fixed-point threshold:
  /// P(draw < threshold) == p to within 2^-64.
  static std::uint64_t fixed_threshold(double p) {
    if (p <= 0.0) return 0;
    if (p >= 1.0) return ~0ull;
    return static_cast<std::uint64_t>(p * 18446744073709551616.0);
  }

  /// Draws the next (gap, reference) pair if none is pending.  Draw
  /// order per reference is fixed — gap, then store/load, then the
  /// compiled offset — and shared by every consumption form, so
  /// next(), next_batch() and next_ref_batch() emit one identical
  /// stream.
  void ensure_ref() {
    if (have_ref_) return;
    gap_left_ += gap_dist_.draw(rng_);
    ref_write_ = rng_() < write_threshold_;
    if (off_pos_ == off_len_) refill_offsets();
    ref_addr_ = offsets_[off_pos_++];
    have_ref_ = true;
  }

  mem::Op next_v2() {
    ensure_ref();
    mem::Op op;
    if (gap_left_ > 0) {
      --gap_left_;
      return op;  // compute
    }
    op.kind = ref_write_ ? mem::OpKind::kStore : mem::OpKind::kLoad;
    op.addr = ref_addr_;
    have_ref_ = false;
    return op;
  }

  void refill_offsets() {
    compiled_->fill(offsets_.data(), kOffsetBlock);
    off_pos_ = 0;
    off_len_ = kOffsetBlock;
  }

  WorkloadSpec spec_;
  std::unique_ptr<mem::Pattern> pattern_;
  std::uint64_t seed_;
  Rng rng_;

  // v2 state (null/unused under v1).
  std::unique_ptr<mem::CompiledStream> compiled_;
  GeometricGap gap_dist_;
  std::uint64_t write_threshold_ = 0;
  std::vector<Bytes> offsets_;
  std::size_t off_pos_ = 0;
  std::size_t off_len_ = 0;
  /// Pending geometric-skip run: gap_left_ compute instructions, then
  /// (when have_ref_) the reference itself.
  std::uint32_t gap_left_ = 0;
  bool have_ref_ = false;
  Bytes ref_addr_ = 0;
  bool ref_write_ = false;
};

}  // namespace kyoto::workloads
