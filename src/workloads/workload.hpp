// Workload abstraction: an application's instruction/reference stream.
//
// A workload stands in for a benchmark application running inside a
// VM (SPEC CPU2006 program, blockie, or a Drepper micro-benchmark).
// It emits one operation per retired instruction: compute ops retire
// in one cycle, memory ops carry a *VM-local byte offset* which the
// executing vCPU translates through its VM's AddressSpace.
//
// Workloads are clonable mid-run: the McSim replay monitor (paper
// §3.3, second solution) captures the live instruction stream at an
// arbitrary point and replays the continuation in a private simulator
// — clone() is the "pin tool" attach point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mem/access.hpp"

namespace kyoto::workloads {

/// One memory reference plus the run of compute instructions that
/// preceded it — the geometric-skip form of the op stream.  A batch
/// of AccessRefs is equivalent to the Op stream with every compute
/// run collapsed into `gap`: replay loops charge `gap` one-cycle
/// instructions in one addition instead of iterating them.
struct AccessRef {
  Bytes addr = 0;           // VM-local byte offset of the access
  std::uint32_t gap = 0;    // compute instructions retired before it
  bool write = false;
};

/// Reference-stream format of a workload (seed-versioned; see
/// README "Stream versioning"):
///
///  * kV1 — the frozen per-op format: one Bernoulli draw per
///    instruction, one pattern dispatch per memory op.  Bit-identical
///    to the seed behavior forever, so every committed figure and
///    golden remains regenerable.
///  * kV2 — the compiled format (mem/compiled_stream.hpp): block-
///    generated offsets, fixed-point instruction-mix draws, a
///    decorrelated RNG stream derived from the same user seed.
///    Statistically equivalent to kV1 (chi-square line frequencies,
///    miss rates within tolerance — tests/workloads/
///    stream_equivalence_test.cpp) but not bit-identical; scenario
///    files opt in via `[workload] stream = v2`.
enum class StreamVersion : unsigned char { kV1 = 1, kV2 = 2 };

/// Static description of a workload, used for reporting and for the
/// execution model.
struct WorkloadSpec {
  std::string name;
  Bytes working_set = 0;   // bytes the reference stream touches
  double mem_ratio = 0.0;  // fraction of instructions that access memory
  double write_ratio = 0.0;  // fraction of memory ops that are stores
  /// Total instructions in one complete run of the application; 0
  /// means the workload is an endless loop.
  Instructions length = 0;
  /// Memory-level-parallelism factor: how much of the raw miss
  /// latency the core hides (out-of-order overlap + hardware
  /// prefetching).  Dependent pointer chases have mlp ~1 (each load's
  /// address depends on the previous), streaming kernels 2-4.  The
  /// effective stall of an access with latency L is max(1, L/mlp).
  double mlp = 1.0;
  /// Requested reference-stream format (see StreamVersion).
  StreamVersion stream = StreamVersion::kV1;
};

/// One application instance.  Implementations are not thread-safe;
/// each vCPU owns one workload.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Produces the next instruction.  Op::addr for loads/stores is a
  /// VM-local byte offset in [0, spec().working_set).
  virtual mem::Op next() = 0;

  /// Fills `out` with the next `n` operations of the stream and
  /// returns `n`.  Non-virtual on purpose: replay loops (the machine's
  /// execution engine, the McSim simulator) pull ops in fixed-size
  /// blocks so they pay one virtual dispatch per block instead of one
  /// per simulated instruction.  The produced stream is identical to
  /// `n` calls of next().
  std::size_t next_batch(mem::Op* out, std::size_t n) { return do_next_batch(out, n); }

  /// Geometric-skip form: advances the stream by up to `max_ops`
  /// instructions, writing one AccessRef per memory reference (at
  /// most `max_refs`).  Returns {ops consumed, refs written}; a tail
  /// of trailing compute ops that was consumed without a following
  /// memory reference is reported in `*trailing_gap` (those
  /// instructions are part of `ops` but belong to no ref).  The
  /// described instruction stream is identical to next_batch over the
  /// same window — this is a consumption format, not a different
  /// stream.  The default implementation compresses do_next_batch
  /// output; PatternWorkload's v2 engine overrides it to skip Op
  /// materialization entirely.
  struct RefBatch {
    std::size_t ops = 0;
    std::size_t refs = 0;
  };
  virtual RefBatch next_ref_batch(AccessRef* out, std::size_t max_refs, std::size_t max_ops,
                                  std::uint32_t* trailing_gap) {
    RefBatch batch;
    std::uint32_t gap = 0;
    mem::Op op;
    while (batch.ops < max_ops && batch.refs < max_refs) {
      op = next();
      ++batch.ops;
      if (op.kind == mem::OpKind::kCompute) {
        ++gap;
        continue;
      }
      out[batch.refs++] =
          AccessRef{op.addr, gap, op.kind == mem::OpKind::kStore};
      gap = 0;
    }
    *trailing_gap = gap;
    return batch;
  }

  /// Restarts the application from the beginning (including RNG).
  virtual void reset() = 0;

  /// Deep copy including all cursor/RNG state, so the clone's future
  /// stream equals this workload's future stream.
  virtual std::unique_ptr<Workload> clone() const = 0;

  virtual const WorkloadSpec& spec() const = 0;

  /// The stream format this workload actually emits.  kV1 unless the
  /// implementation honored a kV2 request (a workload whose pattern
  /// has no compiled form serves v1 even when v2 was asked for).
  virtual StreamVersion stream_version() const { return StreamVersion::kV1; }

 protected:
  /// Batch fallback: any workload works unmodified at one virtual
  /// call per op; concrete classes override with a tight loop.
  virtual std::size_t do_next_batch(mem::Op* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
    return n;
  }
};

}  // namespace kyoto::workloads
