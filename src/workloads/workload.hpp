// Workload abstraction: an application's instruction/reference stream.
//
// A workload stands in for a benchmark application running inside a
// VM (SPEC CPU2006 program, blockie, or a Drepper micro-benchmark).
// It emits one operation per retired instruction: compute ops retire
// in one cycle, memory ops carry a *VM-local byte offset* which the
// executing vCPU translates through its VM's AddressSpace.
//
// Workloads are clonable mid-run: the McSim replay monitor (paper
// §3.3, second solution) captures the live instruction stream at an
// arbitrary point and replays the continuation in a private simulator
// — clone() is the "pin tool" attach point.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mem/access.hpp"

namespace kyoto::workloads {

/// Static description of a workload, used for reporting and for the
/// execution model.
struct WorkloadSpec {
  std::string name;
  Bytes working_set = 0;   // bytes the reference stream touches
  double mem_ratio = 0.0;  // fraction of instructions that access memory
  double write_ratio = 0.0;  // fraction of memory ops that are stores
  /// Total instructions in one complete run of the application; 0
  /// means the workload is an endless loop.
  Instructions length = 0;
  /// Memory-level-parallelism factor: how much of the raw miss
  /// latency the core hides (out-of-order overlap + hardware
  /// prefetching).  Dependent pointer chases have mlp ~1 (each load's
  /// address depends on the previous), streaming kernels 2-4.  The
  /// effective stall of an access with latency L is max(1, L/mlp).
  double mlp = 1.0;
};

/// One application instance.  Implementations are not thread-safe;
/// each vCPU owns one workload.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Produces the next instruction.  Op::addr for loads/stores is a
  /// VM-local byte offset in [0, spec().working_set).
  virtual mem::Op next() = 0;

  /// Fills `out` with the next `n` operations of the stream and
  /// returns `n`.  Non-virtual on purpose: replay loops (the machine's
  /// execution engine, the McSim simulator) pull ops in fixed-size
  /// blocks so they pay one virtual dispatch per block instead of one
  /// per simulated instruction.  The produced stream is identical to
  /// `n` calls of next().
  std::size_t next_batch(mem::Op* out, std::size_t n) { return do_next_batch(out, n); }

  /// Restarts the application from the beginning (including RNG).
  virtual void reset() = 0;

  /// Deep copy including all cursor/RNG state, so the clone's future
  /// stream equals this workload's future stream.
  virtual std::unique_ptr<Workload> clone() const = 0;

  virtual const WorkloadSpec& spec() const = 0;

 protected:
  /// Batch fallback: any workload works unmodified at one virtual
  /// call per op; concrete classes override with a tight loop.
  virtual std::size_t do_next_batch(mem::Op* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
    return n;
  }
};

}  // namespace kyoto::workloads
