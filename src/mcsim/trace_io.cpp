#include "mcsim/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "mcsim/replay.hpp"

namespace kyoto::mcsim {
namespace {

constexpr char kMagic[4] = {'K', 'Y', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  KYOTO_CHECK_MSG(in.good(), "trace stream truncated");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  KYOTO_CHECK_MSG(len < (1u << 20), "implausible string length in trace");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  KYOTO_CHECK_MSG(in.good(), "trace stream truncated");
  return s;
}

}  // namespace

void save_trace(std::ostream& out, const TraceFile& trace) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_string(out, trace.spec.name);
  write_pod(out, trace.spec.working_set);
  write_pod(out, trace.spec.mem_ratio);
  write_pod(out, trace.spec.write_ratio);
  write_pod(out, trace.spec.mlp);
  write_pod(out, trace.spec.length);
  write_pod(out, static_cast<std::uint64_t>(trace.ops.size()));
  for (const mem::Op& op : trace.ops) {
    write_pod(out, static_cast<std::uint8_t>(op.kind));
    write_pod(out, op.addr);
  }
  KYOTO_CHECK_MSG(out.good(), "trace write failed");
}

TraceFile load_trace(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  KYOTO_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                  "not a Kyoto trace (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  KYOTO_CHECK_MSG(version == kVersion, "unsupported trace version " << version);

  TraceFile trace;
  trace.spec.name = read_string(in);
  trace.spec.working_set = read_pod<Bytes>(in);
  trace.spec.mem_ratio = read_pod<double>(in);
  trace.spec.write_ratio = read_pod<double>(in);
  trace.spec.mlp = read_pod<double>(in);
  trace.spec.length = read_pod<Instructions>(in);
  const auto count = read_pod<std::uint64_t>(in);
  KYOTO_CHECK_MSG(count < (1ull << 32), "implausible op count in trace");
  trace.ops.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    mem::Op op;
    const auto kind = read_pod<std::uint8_t>(in);
    KYOTO_CHECK_MSG(kind <= static_cast<std::uint8_t>(mem::OpKind::kStore),
                    "corrupt op kind in trace");
    op.kind = static_cast<mem::OpKind>(kind);
    op.addr = read_pod<Address>(in);
    trace.ops.push_back(op);
  }
  return trace;
}

void save_trace_file(const std::string& path, const TraceFile& trace) {
  std::ofstream out(path, std::ios::binary);
  KYOTO_CHECK_MSG(out.good(), "cannot open trace file for writing: " << path);
  save_trace(out, trace);
}

TraceFile load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  KYOTO_CHECK_MSG(in.good(), "cannot open trace file: " << path);
  return load_trace(in);
}

TraceFile capture_trace(const workloads::Workload& live, Instructions n) {
  TraceFile trace;
  trace.spec = live.spec();
  trace.ops = PinTracer::capture(live, n);
  return trace;
}

}  // namespace kyoto::mcsim
