// Binary trace files for the pin/McSim pipeline.
//
// In the paper's deployment the pin tool and the McSimA+ simulator
// are separate processes on separate machines; the instruction trace
// travels between them.  trace_io provides that interchange format:
// a versioned binary container holding the traced WorkloadSpec (the
// replay needs the MLP factor and working set) and the operation
// stream.
//
// Layout (little endian):
//   magic   "KYTR"            4 bytes
//   version u32               currently 1
//   name    u32 len + bytes
//   working_set u64, mem_ratio f64, write_ratio f64, mlp f64, length i64
//   count   u64
//   ops     count x { kind u8, addr u64 }
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mem/access.hpp"
#include "workloads/workload.hpp"

namespace kyoto::mcsim {

/// A captured trace with its originating workload metadata.
struct TraceFile {
  workloads::WorkloadSpec spec;
  std::vector<mem::Op> ops;
};

/// Serializes to a stream.  Throws std::logic_error on I/O failure.
void save_trace(std::ostream& out, const TraceFile& trace);

/// Deserializes; throws std::logic_error on bad magic, unsupported
/// version, or truncation.
TraceFile load_trace(std::istream& in);

/// File-path conveniences.
void save_trace_file(const std::string& path, const TraceFile& trace);
TraceFile load_trace_file(const std::string& path);

/// Captures `n` ops from a live workload into a TraceFile (pin-attach
/// plus metadata).
TraceFile capture_trace(const workloads::Workload& live, Instructions n);

}  // namespace kyoto::mcsim
