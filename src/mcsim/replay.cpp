#include "mcsim/replay.hpp"

#include <algorithm>
#include <cmath>

#include "cache/topology.hpp"
#include "common/check.hpp"

namespace kyoto::mcsim {

std::vector<mem::Op> PinTracer::capture(const workloads::Workload& live, Instructions n) {
  KYOTO_CHECK_MSG(n > 0, "trace length must be positive");
  auto clone = live.clone();
  std::vector<mem::Op> trace(static_cast<std::size_t>(n));
  clone->next_batch(trace.data(), trace.size());
  return trace;
}

ReplaySimulator::ReplaySimulator(const cache::MemSystemConfig& mem, KHz freq_khz,
                                 std::uint64_t seed, double warmup_fraction)
    : mem_config_(mem), freq_khz_(freq_khz), seed_(seed), warmup_fraction_(warmup_fraction) {
  KYOTO_CHECK_MSG(freq_khz > 0, "replay frequency must be positive");
  KYOTO_CHECK_MSG(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
                  "warmup fraction must be in [0, 1)");
}

ReplayResult ReplaySimulator::replay_live(const workloads::Workload& live, Instructions n) {
  auto clone = live.clone();
  return run(*clone, n);
}

namespace {

/// Block size of the batched replay loop (same batching idea as
/// Machine::run_vcpu: one virtual workload dispatch per block).
constexpr std::size_t kReplayBlock = 256;

/// Replays blocks of ops delivered by `fill(buf, max)` against a
/// fresh hierarchy, counting only the post-warmup region.
template <typename FillBlock>
ReplayResult replay_ops(const cache::MemSystemConfig& mem_config, std::uint64_t seed,
                        double warmup_fraction, const workloads::WorkloadSpec& spec,
                        Instructions n, FillBlock&& fill) {
  // A fresh single-core hierarchy per replay: the simulator's caches
  // start cold, exactly like McSimA+ replaying a sampled window.
  cache::MemorySystem memory(cache::Topology{1, 1}, mem_config, seed);
  auto ctx = memory.context(/*core=*/0, /*home_node=*/0, /*vm=*/0);
  const double inv_mlp = 1.0 / std::max(1.0, spec.mlp);
  const Bytes ws = std::max<Bytes>(spec.working_set, mem::kLineBytes);
  const Instructions warmup = static_cast<Instructions>(
      warmup_fraction * static_cast<double>(n));

  ReplayResult result;
  mem::Op block[kReplayBlock];
  for (Instructions i = 0; i < n;) {
    const std::size_t len =
        fill(block, std::min<std::size_t>(kReplayBlock, static_cast<std::size_t>(n - i)));
    for (std::size_t b = 0; b < len; ++b, ++i) {
      const mem::Op op = block[b];
      const bool counted = i >= warmup;
      Cycles cost = 1;
      if (op.kind != mem::OpKind::kCompute) {
        const auto access =
            ctx.access((1ull << 30) + op.addr % ws, op.kind == mem::OpKind::kStore);
        cost = std::max<Cycles>(
            1, static_cast<Cycles>(std::lround(static_cast<double>(access.latency) * inv_mlp)));
        if (counted && access.llc_reference) {
          ++result.llc_references;
          if (access.llc_miss) ++result.llc_misses;
        }
      }
      if (counted) {
        result.cycles += cost;
        ++result.instructions;
      }
    }
  }
  return result;
}

/// Geometric-skip replay of a v2 clone: pulls AccessRefs instead of
/// expanded Ops and charges each compute gap in one addition.  A gap
/// (or trailing run) that straddles the warmup boundary is split
/// arithmetically — only the instructions at index >= warmup count —
/// so the counters match replay_ops bit-for-bit on the same stream.
ReplayResult replay_refs(const cache::MemSystemConfig& mem_config, std::uint64_t seed,
                         double warmup_fraction, workloads::Workload& clone,
                         Instructions n) {
  cache::MemorySystem memory(cache::Topology{1, 1}, mem_config, seed);
  auto ctx = memory.context(/*core=*/0, /*home_node=*/0, /*vm=*/0);
  const workloads::WorkloadSpec& spec = clone.spec();
  const double inv_mlp = 1.0 / std::max(1.0, spec.mlp);
  const Bytes ws = std::max<Bytes>(spec.working_set, mem::kLineBytes);
  const Instructions warmup = static_cast<Instructions>(
      warmup_fraction * static_cast<double>(n));

  // Counts the post-warmup slice of a pure-compute run covering
  // instruction indices [i, i + len): each costs one cycle.
  const auto counted_run = [warmup](Instructions i, Instructions len) {
    if (i >= warmup) return len;
    const Instructions end = i + len;
    return end > warmup ? end - warmup : 0;
  };

  ReplayResult result;
  workloads::AccessRef refs[kReplayBlock];
  for (Instructions i = 0; i < n;) {
    std::uint32_t trailing = 0;
    const auto batch = clone.next_ref_batch(
        refs, kReplayBlock, static_cast<std::size_t>(n - i), &trailing);
    if (batch.ops == 0) break;  // exhausted finite stream
    for (std::size_t r = 0; r < batch.refs; ++r) {
      const workloads::AccessRef ref = refs[r];
      const Instructions gap = ref.gap;
      const Instructions counted_gap = counted_run(i, gap);
      result.cycles += counted_gap;
      result.instructions += counted_gap;
      i += gap;
      const bool counted = i >= warmup;
      const auto access = ctx.access((1ull << 30) + ref.addr % ws, ref.write);
      const Cycles cost = std::max<Cycles>(
          1, static_cast<Cycles>(std::lround(static_cast<double>(access.latency) * inv_mlp)));
      if (counted) {
        if (access.llc_reference) {
          ++result.llc_references;
          if (access.llc_miss) ++result.llc_misses;
        }
        result.cycles += cost;
        ++result.instructions;
      }
      ++i;
    }
    if (trailing > 0) {
      const Instructions counted_gap = counted_run(i, trailing);
      result.cycles += counted_gap;
      result.instructions += counted_gap;
      i += trailing;
    }
  }
  return result;
}

}  // namespace

ReplayResult ReplaySimulator::run(workloads::Workload& clone, Instructions n) {
  if (ref_batch_engine_ && clone.stream_version() == workloads::StreamVersion::kV2) {
    return replay_refs(mem_config_, seed_, warmup_fraction_, clone, n);
  }
  return replay_ops(mem_config_, seed_, warmup_fraction_, clone.spec(), n,
                    [&clone](mem::Op* buf, std::size_t max) {
                      return clone.next_batch(buf, max);
                    });
}

ReplayResult ReplaySimulator::replay_trace(const std::vector<mem::Op>& trace,
                                           const workloads::WorkloadSpec& spec) {
  std::size_t cursor = 0;
  return replay_ops(mem_config_, seed_, warmup_fraction_, spec,
                    static_cast<Instructions>(trace.size()),
                    [&trace, &cursor](mem::Op* buf, std::size_t max) {
                      const std::size_t len = std::min(max, trace.size() - cursor);
                      std::copy_n(trace.begin() + static_cast<std::ptrdiff_t>(cursor), len,
                                  buf);
                      cursor += len;
                      return len;
                    });
}

}  // namespace kyoto::mcsim
