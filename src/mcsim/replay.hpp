// McSimA+-style replay simulation (Ahn et al., ISPASS 2013 [12]).
//
// The paper's second monitoring strategy runs a microarchitectural
// simulator on a *dedicated machine*: a pin tool [13] captures the
// VM's instruction stream, the simulator replays it against a private
// model of the production machine's caches, and returns uncontended
// PMCs from which KS4Xen computes the VM's intrinsic llc_cap_act —
// no socket dedication, no migration cost on the production host.
//
// Here the pin tool is Workload::clone(): cloning the live workload
// mid-run captures its exact future reference stream.  PinTracer
// materializes a bounded trace; ReplaySimulator runs either a live
// clone or a captured trace through a private single-core cache
// hierarchy with the same geometry as the production machine.
#pragma once

#include <memory>
#include <vector>

#include "cache/config.hpp"
#include "cache/memory_system.hpp"
#include "common/units.hpp"
#include "mem/access.hpp"
#include "workloads/workload.hpp"

namespace kyoto::mcsim {

/// Counters returned by a replay ("the simulator ... sends PMCs back
/// to KS4Xen", §3.3).
struct ReplayResult {
  Instructions instructions = 0;
  Cycles cycles = 0;
  std::uint64_t llc_references = 0;
  std::uint64_t llc_misses = 0;

  /// Equation 1 on the replayed counters: intrinsic misses/ms.
  double llc_cap_act(KHz freq_khz) const {
    if (cycles <= 0) return 0.0;
    return static_cast<double>(llc_misses) * static_cast<double>(freq_khz) /
           static_cast<double>(cycles);
  }
  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
};

/// The pin-tool stand-in: captures a bounded instruction trace from a
/// live workload without perturbing it.
class PinTracer {
 public:
  /// Clones `live` and records its next `n` operations.
  static std::vector<mem::Op> capture(const workloads::Workload& live, Instructions n);
};

class ReplaySimulator {
 public:
  /// A private one-core machine with the production geometry `mem`
  /// running at `freq_khz`.  The replay starts from cold caches, so
  /// the first `warmup_fraction` of every replayed window is executed
  /// but not counted — otherwise the one-off loading burst would
  /// inflate the intrinsic rate of small-footprint applications
  /// (exactly the kind of VM that must NOT be over-charged).
  ReplaySimulator(const cache::MemSystemConfig& mem, KHz freq_khz, std::uint64_t seed = 99,
                  double warmup_fraction = 0.25);

  /// Clones `live` (pin-attach) and replays its next `n` instructions
  /// from a cold private cache.  The live workload is not modified.
  ReplayResult replay_live(const workloads::Workload& live, Instructions n);

  /// Replays an already-captured trace.  `spec` supplies the
  /// instruction-mix metadata (MLP) of the traced application.
  ReplayResult replay_trace(const std::vector<mem::Op>& trace,
                            const workloads::WorkloadSpec& spec);

  KHz freq_khz() const { return freq_khz_; }

  /// Engine knob mirroring Machine::set_ref_batch_engine: when false,
  /// v2 clones are replayed through the per-op loop (next_batch) even
  /// though they could serve geometric-skip refs.  Counters are
  /// bit-identical either way — the ref loop charges each compute gap
  /// in one addition and splits gaps that straddle the warmup
  /// boundary arithmetically instead of iterating them.
  void set_ref_batch_engine(bool enabled) { ref_batch_engine_ = enabled; }
  bool ref_batch_engine() const { return ref_batch_engine_; }

 private:
  ReplayResult run(workloads::Workload& clone, Instructions n);

  cache::MemSystemConfig mem_config_;
  KHz freq_khz_;
  std::uint64_t seed_;
  double warmup_fraction_;
  bool ref_batch_engine_ = true;
};

}  // namespace kyoto::mcsim
