#include "mem/patterns.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace kyoto::mem {
namespace {

std::uint64_t lines_for(Bytes working_set) {
  return std::max<Bytes>(1, (working_set + kLineBytes - 1) / kLineBytes);
}

}  // namespace

PointerChasePattern::PointerChasePattern(Bytes working_set, std::uint64_t seed)
    : lines_(lines_for(working_set)), next_(lines_) {
  // Sattolo's algorithm produces a uniformly random single cycle, so a
  // walk visits every line exactly once per lap — the defining
  // property of the Drepper chase.
  std::iota(next_.begin(), next_.end(), 0u);
  Rng rng(seed);
  for (std::uint64_t i = lines_ - 1; i > 0; --i) {
    const std::uint64_t j = rng.below(i);  // j in [0, i)
    std::swap(next_[i], next_[j]);
  }
}

Bytes PointerChasePattern::next_offset(Rng& /*rng*/) {
  const Bytes offset = static_cast<Bytes>(cursor_) * kLineBytes;
  cursor_ = next_[cursor_];
  return offset;
}

SequentialPattern::SequentialPattern(Bytes working_set) : lines_(lines_for(working_set)) {}

Bytes SequentialPattern::next_offset(Rng& /*rng*/) {
  const Bytes offset = cursor_ * kLineBytes;
  cursor_ = (cursor_ + 1) % lines_;
  return offset;
}

StridedPattern::StridedPattern(Bytes working_set, std::uint64_t stride_lines)
    : lines_(lines_for(working_set)), stride_(std::max<std::uint64_t>(1, stride_lines)) {
  // A stride sharing a factor with the line count would visit only a
  // subset of the working set; nudge it to be coprime-ish.
  while (lines_ > 1 && std::gcd(stride_, lines_) != 1) ++stride_;
}

Bytes StridedPattern::next_offset(Rng& /*rng*/) {
  const Bytes offset = cursor_ * kLineBytes;
  cursor_ = (cursor_ + stride_) % lines_;
  return offset;
}

UniformRandomPattern::UniformRandomPattern(Bytes working_set) : lines_(lines_for(working_set)) {}

Bytes UniformRandomPattern::next_offset(Rng& rng) {
  return static_cast<Bytes>(rng.below(lines_)) * kLineBytes;
}

ZipfPattern::ZipfPattern(Bytes working_set, double exponent, std::uint64_t seed)
    : lines_(lines_for(working_set)) {
  KYOTO_CHECK_MSG(exponent >= 0.0, "zipf exponent must be non-negative");
  auto cdf = std::make_shared<std::vector<double>>(lines_);
  auto perm = std::make_shared<std::vector<std::uint32_t>>(lines_);
  double total = 0.0;
  for (std::uint64_t r = 0; r < lines_; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    (*cdf)[r] = total;
  }
  for (auto& c : *cdf) c /= total;
  // Spread popularity ranks over lines so hot lines do not cluster in
  // the low sets of the cache.
  std::iota(perm->begin(), perm->end(), 0u);
  Rng rng(seed);
  for (std::uint64_t i = lines_; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap((*perm)[i - 1], (*perm)[j]);
  }
  cdf_ = std::move(cdf);
  perm_ = std::move(perm);
}

Bytes ZipfPattern::next_offset(Rng& rng) {
  const double u = rng.uniform();
  const auto& cdf = *cdf_;
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const auto rank = static_cast<std::uint64_t>(it - cdf.begin());
  return static_cast<Bytes>((*perm_)[std::min(rank, lines_ - 1)]) * kLineBytes;
}

PhasedPattern::PhasedPattern(std::vector<Phase> phases) : phases_(std::move(phases)) {
  KYOTO_CHECK_MSG(!phases_.empty(), "phased pattern needs at least one phase");
  for (const auto& phase : phases_) {
    KYOTO_CHECK_MSG(phase.pattern != nullptr, "null phase pattern");
    KYOTO_CHECK_MSG(phase.accesses > 0, "phase must run for at least one access");
    max_working_set_ = std::max(max_working_set_, phase.pattern->working_set());
  }
  remaining_ = phases_[0].accesses;
}

PhasedPattern::PhasedPattern(const PhasedPattern& other)
    : max_working_set_(other.max_working_set_),
      current_(other.current_),
      remaining_(other.remaining_) {
  phases_.reserve(other.phases_.size());
  for (const auto& phase : other.phases_) {
    phases_.push_back(Phase{phase.pattern->clone(), phase.accesses});
  }
}

Bytes PhasedPattern::next_offset(Rng& rng) {
  if (remaining_ == 0) {
    current_ = (current_ + 1) % phases_.size();
    remaining_ = phases_[current_].accesses;
  }
  --remaining_;
  return phases_[current_].pattern->next_offset(rng);
}

void PhasedPattern::reset() {
  current_ = 0;
  remaining_ = phases_[0].accesses;
  for (auto& phase : phases_) phase.pattern->reset();
}

// --- stream compilation (the v2 format; see compiled_stream.hpp) -------

std::unique_ptr<CompiledStream> PointerChasePattern::compile(std::uint64_t /*seed*/) const {
  return std::make_unique<ChaseRingStream>(next_);
}

std::unique_ptr<CompiledStream> SequentialPattern::compile(std::uint64_t /*seed*/) const {
  return std::make_unique<SequentialStream>(lines_);
}

std::unique_ptr<CompiledStream> StridedPattern::compile(std::uint64_t /*seed*/) const {
  return std::make_unique<StridedStream>(lines_, stride_);
}

std::unique_ptr<CompiledStream> UniformRandomPattern::compile(std::uint64_t seed) const {
  return std::make_unique<UniformStream>(lines_, seed);
}

std::unique_ptr<CompiledStream> ZipfPattern::compile(std::uint64_t seed) const {
  return std::make_unique<ZipfStream>(cdf_, perm_, seed);
}

std::unique_ptr<CompiledStream> PhasedPattern::compile(std::uint64_t seed) const {
  std::vector<PhasedStream::Phase> phases;
  phases.reserve(phases_.size());
  std::uint64_t sub_seed = seed;
  for (const auto& phase : phases_) {
    auto child = phase.pattern->compile(splitmix64(sub_seed));
    if (child == nullptr) return nullptr;  // uncompilable child: stay on v1
    phases.push_back(PhasedStream::Phase{std::move(child), phase.accesses});
  }
  return std::make_unique<PhasedStream>(std::move(phases));
}

}  // namespace kyoto::mem
