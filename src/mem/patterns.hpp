// Reference-stream patterns over a working set.
//
// These generators substitute for the paper's benchmark applications:
// the Drepper micro-benchmark is a pointer chase over a randomly
// chained circular list [15]; SPEC CPU2006 applications and blockie
// are modelled as parameterized mixtures of the patterns below (see
// workloads/spec_profiles.*).  A pattern yields byte offsets within
// its working set; the owning workload translates them through the
// VM's AddressSpace.
//
// All patterns are value types with explicit clone(), because the
// McSim replay monitor (Section 3.3, solution 2) forks a workload
// mid-run and replays its future accesses in a private simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mem/access.hpp"
#include "mem/compiled_stream.hpp"

namespace kyoto::mem {

/// Interface for working-set reference generators.
class Pattern {
 public:
  virtual ~Pattern() = default;

  /// Returns the next byte offset (within [0, working_set())).
  virtual Bytes next_offset(Rng& rng) = 0;

  /// Restarts the stream from its initial state.
  virtual void reset() = 0;

  /// Deep copy including cursor state.
  virtual std::unique_ptr<Pattern> clone() const = 0;

  /// Size of the region this pattern touches.
  virtual Bytes working_set() const = 0;

  /// Compiles this pattern's reference stream into block-generated
  /// form (the `stream = v2` format; see compiled_stream.hpp):
  /// deterministic walks compile to the identical sequence, the
  /// stochastic ones to statistically equivalent batched draws seeded
  /// by `seed`.  Starts from the pattern's *initial* state, not its
  /// current cursor.  Returns nullptr if the pattern has no compiled
  /// form (external subclasses) — callers fall back to the v1 per-op
  /// stream.
  virtual std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const {
    (void)seed;
    return nullptr;
  }
};

/// Random circular pointer chase (Drepper's micro-benchmark [15]):
/// lines of the working set are chained into one random cycle using
/// Sattolo's algorithm and the stream follows the chain.  Maximally
/// cache-unfriendly once the working set exceeds a level's capacity,
/// with exactly one access per line per lap.
class PointerChasePattern final : public Pattern {
 public:
  /// `working_set` is rounded up to at least one line; `seed` fixes
  /// the chain layout.
  PointerChasePattern(Bytes working_set, std::uint64_t seed);

  Bytes next_offset(Rng& rng) override;
  void reset() override { cursor_ = 0; }
  std::unique_ptr<Pattern> clone() const override {
    return std::make_unique<PointerChasePattern>(*this);
  }
  Bytes working_set() const override { return lines_ * kLineBytes; }
  /// Unrolls the cycle into a visit-order ring: the identical
  /// sequence without the dependent next_[cursor] loads.
  std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const override;

 private:
  std::uint64_t lines_ = 0;
  std::vector<std::uint32_t> next_;  // next_[i] = line after i in the cycle
  std::uint32_t cursor_ = 0;
};

/// Sequential streaming walk (modelling stencil/streaming kernels such
/// as lbm): visits every line in order and wraps around.
class SequentialPattern final : public Pattern {
 public:
  explicit SequentialPattern(Bytes working_set);

  Bytes next_offset(Rng& rng) override;
  void reset() override { cursor_ = 0; }
  std::unique_ptr<Pattern> clone() const override {
    return std::make_unique<SequentialPattern>(*this);
  }
  Bytes working_set() const override { return lines_ * kLineBytes; }
  std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const override;

 private:
  std::uint64_t lines_ = 0;
  std::uint64_t cursor_ = 0;
};

/// Fixed-stride walk (modelling column-major matrix traversals such as
/// soplex's): steps `stride_lines` lines each access, wrapping.
class StridedPattern final : public Pattern {
 public:
  StridedPattern(Bytes working_set, std::uint64_t stride_lines);

  Bytes next_offset(Rng& rng) override;
  void reset() override { cursor_ = 0; }
  std::unique_ptr<Pattern> clone() const override {
    return std::make_unique<StridedPattern>(*this);
  }
  Bytes working_set() const override { return lines_ * kLineBytes; }
  std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const override;

 private:
  std::uint64_t lines_ = 0;
  std::uint64_t stride_ = 1;
  std::uint64_t cursor_ = 0;
};

/// Uniform random line accesses (worst-case capacity pressure without
/// the single-cycle regularity of the chase; models blockie's
/// synthesized contention kernel [20]).
class UniformRandomPattern final : public Pattern {
 public:
  explicit UniformRandomPattern(Bytes working_set);

  Bytes next_offset(Rng& rng) override;
  void reset() override {}
  std::unique_ptr<Pattern> clone() const override {
    return std::make_unique<UniformRandomPattern>(*this);
  }
  Bytes working_set() const override { return lines_ * kLineBytes; }
  std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const override;

 private:
  std::uint64_t lines_ = 0;
};

/// Zipf-distributed line popularity (models pointer-heavy irregular
/// codes with hot structures, e.g. omnetpp's event heap / xalan's
/// DOM): rank-r line has weight 1/r^s.
class ZipfPattern final : public Pattern {
 public:
  ZipfPattern(Bytes working_set, double exponent, std::uint64_t seed);

  Bytes next_offset(Rng& rng) override;
  void reset() override {}
  std::unique_ptr<Pattern> clone() const override {
    return std::make_unique<ZipfPattern>(*this);
  }
  Bytes working_set() const override { return lines_ * kLineBytes; }
  /// Shares this pattern's CDF and permutation with the stream, so
  /// both formats draw from the identical distribution over the
  /// identical line layout.
  std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const override;

 private:
  std::uint64_t lines_ = 0;
  // Shared immutable tables: clones (and compiled streams) reference
  // the same CDF/permutation instead of copying megabyte arrays.
  std::shared_ptr<const std::vector<double>> cdf_;   // cumulative popularity by rank
  std::shared_ptr<const std::vector<std::uint32_t>> perm_;  // rank -> line
};

/// Composite pattern: cycles through phases, each running a child
/// pattern for a fixed number of accesses (models phase-structured
/// SPEC codes such as gcc alternating parse/optimize).
class PhasedPattern final : public Pattern {
 public:
  struct Phase {
    std::unique_ptr<Pattern> pattern;
    std::uint64_t accesses = 0;  // accesses before moving to next phase
  };

  explicit PhasedPattern(std::vector<Phase> phases);
  PhasedPattern(const PhasedPattern& other);
  PhasedPattern& operator=(const PhasedPattern&) = delete;

  Bytes next_offset(Rng& rng) override;
  void reset() override;
  std::unique_ptr<Pattern> clone() const override {
    return std::make_unique<PhasedPattern>(*this);
  }
  Bytes working_set() const override { return max_working_set_; }
  /// Composes the children's compiled streams; nullptr if any child
  /// lacks one.
  std::unique_ptr<CompiledStream> compile(std::uint64_t seed) const override;

 private:
  std::vector<Phase> phases_;
  Bytes max_working_set_ = 0;
  std::size_t current_ = 0;
  std::uint64_t remaining_ = 0;
};

}  // namespace kyoto::mem
