// Memory-operation vocabulary for the execution model.
//
// Workloads emit a stream of Ops.  A compute op retires in one cycle;
// a load/store goes through the cache hierarchy and stalls the vCPU
// for the access latency (a simple in-order, blocking core model —
// sufficient because the paper's phenomena depend only on relative
// hit/miss costs, Table 1 / lmbench latencies).
#pragma once

#include "common/units.hpp"

namespace kyoto::mem {

enum class OpKind : unsigned char { kCompute, kLoad, kStore };

struct Op {
  OpKind kind = OpKind::kCompute;
  Address addr = 0;  // byte address; meaningful for loads/stores only
};

/// Size of a cache line in bytes.  Uniform across all levels (matches
/// the experimental Xeon).
inline constexpr Bytes kLineBytes = 64;

/// Rounds a byte address down to its cache-line base.
inline constexpr Address line_base(Address addr) { return addr & ~(kLineBytes - 1); }

}  // namespace kyoto::mem
