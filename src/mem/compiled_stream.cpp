#include "mem/compiled_stream.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mem/access.hpp"

namespace kyoto::mem {

void SequentialStream::fill(Bytes* out, std::size_t n) {
  std::uint64_t cursor = cursor_;
  const std::uint64_t lines = lines_;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = cursor * kLineBytes;
    ++cursor;
    cursor = cursor == lines ? 0 : cursor;
  }
  cursor_ = cursor;
}

void StridedStream::fill(Bytes* out, std::size_t n) {
  std::uint64_t cursor = cursor_;
  const std::uint64_t lines = lines_;
  const std::uint64_t stride = stride_;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = cursor * kLineBytes;
    cursor += stride;
    cursor = cursor >= lines ? cursor - lines : cursor;
  }
  cursor_ = cursor;
}

ChaseRingStream::ChaseRingStream(const std::vector<std::uint32_t>& next) {
  KYOTO_CHECK_MSG(!next.empty(), "chase ring needs at least one line");
  // Unroll the single cycle starting (like the pattern's cursor) at
  // line 0.  Sattolo's construction guarantees one cycle covering
  // every line, so the ring has exactly next.size() entries.
  ring_.reserve(next.size());
  std::uint32_t at = 0;
  for (std::size_t i = 0; i < next.size(); ++i) {
    ring_.push_back(at);
    at = next[at];
  }
  KYOTO_CHECK_MSG(at == 0, "chase successor table is not a single cycle");
}

void ChaseRingStream::fill(Bytes* out, std::size_t n) {
  std::size_t cursor = cursor_;
  const std::size_t lap = ring_.size();
  const std::uint32_t* ring = ring_.data();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<Bytes>(ring[cursor]) * kLineBytes;
    ++cursor;
    cursor = cursor == lap ? 0 : cursor;
  }
  cursor_ = cursor;
}

void UniformStream::fill(Bytes* out, std::size_t n) {
  const std::uint64_t lines = lines_;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rng_.below(lines) * kLineBytes;
  }
}

ZipfStream::ZipfStream(std::shared_ptr<const std::vector<double>> cdf,
                       std::shared_ptr<const std::vector<std::uint32_t>> perm,
                       std::uint64_t seed)
    : cdf_(std::move(cdf)), perm_(std::move(perm)), seed_(seed), rng_(seed) {
  KYOTO_CHECK(cdf_ != nullptr && perm_ != nullptr && cdf_->size() == perm_->size());
  quantile_ = QuantileIndex(*cdf_);
}

void ZipfStream::fill(Bytes* out, std::size_t n) {
  const auto& cdf = *cdf_;
  const auto& perm = *perm_;
  const std::uint64_t lines = cdf.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng_.uniform();
    // Same mapping as ZipfPattern::next_offset's full lower_bound
    // (the quantile index restricts the scan, never the answer).
    const std::uint64_t rank = quantile_.lookup(cdf, u);
    out[i] = static_cast<Bytes>(perm[std::min(rank, lines - 1)]) * kLineBytes;
  }
}

PhasedStream::PhasedStream(std::vector<Phase> phases) : phases_(std::move(phases)) {
  KYOTO_CHECK_MSG(!phases_.empty(), "phased stream needs at least one phase");
  for (const auto& phase : phases_) {
    KYOTO_CHECK(phase.stream != nullptr && phase.accesses > 0);
  }
  remaining_ = phases_[0].accesses;
}

PhasedStream::PhasedStream(const PhasedStream& other)
    : current_(other.current_), remaining_(other.remaining_) {
  phases_.reserve(other.phases_.size());
  for (const auto& phase : other.phases_) {
    phases_.push_back(Phase{phase.stream->clone(), phase.accesses});
  }
}

void PhasedStream::fill(Bytes* out, std::size_t n) {
  while (n > 0) {
    if (remaining_ == 0) {
      current_ = (current_ + 1) % phases_.size();
      remaining_ = phases_[current_].accesses;
    }
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, remaining_));
    phases_[current_].stream->fill(out, take);
    out += take;
    n -= take;
    remaining_ -= take;
  }
}

void PhasedStream::reset() {
  current_ = 0;
  remaining_ = phases_[0].accesses;
  for (auto& phase : phases_) phase.stream->reset();
}

}  // namespace kyoto::mem
