// Per-VM simulated physical address regions.
//
// Each VM receives a disjoint region of the simulated physical address
// space, so two VMs never share cache lines (there is no inter-VM data
// sharing in the paper's experiments; contention is purely through
// set-index collisions and capacity).  Regions are spaced far apart
// and offset by a per-VM phase so that different VMs do not trivially
// map to identical set sequences.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"
#include "mem/access.hpp"

namespace kyoto::mem {

/// A contiguous region of simulated physical memory owned by one VM.
class AddressSpace {
 public:
  /// Creates the region for VM `vm_id` of `size` bytes, homed on NUMA
  /// node `home_node`.
  AddressSpace(int vm_id, Bytes size, int home_node = 0)
      : vm_id_(vm_id), size_(size), home_node_(home_node) {
    KYOTO_CHECK_MSG(size > 0, "empty address space");
    // 1 GiB spacing between VM regions keeps them disjoint for any
    // realistic working set while a line-granular phase decorrelates
    // set mappings across VMs.
    base_ = (static_cast<Address>(vm_id) + 1) * (1ull << 30) +
            static_cast<Address>(vm_id) * 7 * kLineBytes;
  }

  int vm_id() const { return vm_id_; }
  Address base() const { return base_; }
  Bytes size() const { return size_; }
  int home_node() const { return home_node_; }
  void set_home_node(int node) { home_node_ = node; }

  /// Translates a VM-local offset into a simulated physical address.
  Address translate(Bytes offset) const {
    KYOTO_DCHECK(offset < size_);
    return base_ + offset;
  }

  /// True if `addr` belongs to this region.
  bool contains(Address addr) const { return addr >= base_ && addr < base_ + size_; }

 private:
  int vm_id_ = 0;
  Address base_ = 0;
  Bytes size_ = 0;
  int home_node_ = 0;
};

}  // namespace kyoto::mem
