// Counter bundles exported by the cache simulator.
//
// These are the raw material of the PMC layer: per-cache totals plus,
// for the shared LLC, per-requesting-core attribution (hardware PMCs
// count LLC events on the core that issued the access, which is what
// perfctr-xen virtualizes per vCPU).
#pragma once

#include <cstdint>

namespace kyoto::cache {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;         // valid lines displaced by fills
  std::uint64_t writebacks = 0;        // dirty lines displaced by fills

  double miss_ratio() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }

  void clear() { *this = CacheStats{}; }

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    return *this;
  }
};

}  // namespace kyoto::cache
