// Frozen pre-SoA cache engine (see reference_cache.hpp).  Verbatim
// copy of the original SetAssocCache implementation; do not modify.
#include "cache/reference_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kyoto::cache {

ReferenceSetAssocCache::ReferenceSetAssocCache(std::string name, CacheGeometry geometry,
                                               ReplacementKind replacement,
                                               std::uint64_t seed)
    : name_(std::move(name)),
      geometry_(geometry),
      replacement_(replacement),
      sets_(geometry.sets()),
      lines_(static_cast<std::size_t>(sets_) * geometry.ways),
      rng_(seed) {
  KYOTO_CHECK_MSG(geometry_.ways >= 1, "cache must have at least one way");
}

ReferenceSetAssocCache::Line* ReferenceSetAssocCache::find(unsigned set, Address tag) {
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const ReferenceSetAssocCache::Line* ReferenceSetAssocCache::find(unsigned set,
                                                                 Address tag) const {
  const Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

bool ReferenceSetAssocCache::set_uses_bip(unsigned set) const {
  if (replacement_ == ReplacementKind::kBip) return true;
  if (replacement_ != ReplacementKind::kDip) return false;
  const unsigned pos = set % kDuelModulus;
  if (pos == 0) return false;  // LRU leader
  if (pos == 1) return true;   // BIP leader
  return psel_ > kPselMax / 2;
}

void ReferenceSetAssocCache::touch(unsigned set, unsigned way) {
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];
  if (replacement_ == ReplacementKind::kPlru) {
    base[way].stamp = 1;
    bool all_set = true;
    for (unsigned w = 0; w < geometry_.ways; ++w) {
      if (base[w].valid && base[w].stamp == 0) {
        all_set = false;
        break;
      }
    }
    if (all_set) {
      for (unsigned w = 0; w < geometry_.ways; ++w) {
        if (w != way) base[w].stamp = 0;
      }
    }
  } else {
    base[way].stamp = ++clock_;
  }
}

unsigned ReferenceSetAssocCache::pick_victim(unsigned set, unsigned first_way,
                                             unsigned end_way) {
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];
  for (unsigned w = first_way; w < end_way; ++w) {
    if (!base[w].valid) return w;
  }
  if (replacement_ == ReplacementKind::kRandom) {
    return first_way + static_cast<unsigned>(rng_.below(end_way - first_way));
  }
  unsigned victim = first_way;
  std::uint64_t best = lines_[static_cast<std::size_t>(set) * geometry_.ways + first_way].stamp;
  for (unsigned w = first_way + 1; w < end_way; ++w) {
    if (base[w].stamp < best) {
      best = base[w].stamp;
      victim = w;
    }
  }
  return victim;
}

void ReferenceSetAssocCache::fill(unsigned set, unsigned way, Address tag, bool write,
                                  int vm) {
  Line* line = &lines_[static_cast<std::size_t>(set) * geometry_.ways + way];
  line->tag = tag;
  line->valid = true;
  line->dirty = write;
  line->owner_vm = vm;
  bool insert_mru = true;
  switch (replacement_) {
    case ReplacementKind::kLip:
      insert_mru = false;
      break;
    case ReplacementKind::kBip:
    case ReplacementKind::kDip:
      if (set_uses_bip(set)) insert_mru = rng_.below(32) == 0;
      break;
    default:
      break;
  }
  if (insert_mru) {
    touch(set, way);
  } else {
    line->stamp = 0;
  }
}

LookupResult ReferenceSetAssocCache::access(Address addr, bool write,
                                            const Requester& requester) {
  const unsigned set = set_index(addr);
  const Address tag = tag_of(addr);

  total_.accesses++;
  CacheStats& core_stats = core_slot(requester.core);
  core_stats.accesses++;
  CacheStats* vm_stats = requester.vm >= 0 ? &vm_slot(requester.vm) : nullptr;
  if (vm_stats) vm_stats->accesses++;

  LookupResult result;
  if (Line* line = find(set, tag)) {
    result.hit = true;
    total_.hits++;
    core_stats.hits++;
    if (vm_stats) vm_stats->hits++;
    if (write) line->dirty = true;
    touch(set, static_cast<unsigned>(line - &lines_[static_cast<std::size_t>(set) *
                                                    geometry_.ways]));
    return result;
  }

  total_.misses++;
  core_stats.misses++;
  if (vm_stats) vm_stats->misses++;

  if (replacement_ == ReplacementKind::kDip) {
    const unsigned pos = set % kDuelModulus;
    if (pos == 0) psel_ = std::min(psel_ + 1, kPselMax);
    else if (pos == 1) psel_ = std::max(psel_ - 1, 0);
  }

  unsigned first_way = 0;
  unsigned end_way = geometry_.ways;
  if (requester.vm >= 0 && static_cast<std::size_t>(requester.vm) < partitions_.size()) {
    const Partition& p = partitions_[static_cast<std::size_t>(requester.vm)];
    if (p.n_ways > 0) {
      first_way = p.first_way;
      end_way = std::min(geometry_.ways, p.first_way + p.n_ways);
    }
  }

  const unsigned victim = pick_victim(set, first_way, end_way);
  Line& line = lines_[static_cast<std::size_t>(set) * geometry_.ways + victim];
  if (line.valid) {
    result.evicted = line.tag * geometry_.line;
    total_.evictions++;
    core_stats.evictions++;
    if (vm_stats) vm_stats->evictions++;
    if (line.dirty) {
      total_.writebacks++;
      core_stats.writebacks++;
      if (vm_stats) vm_stats->writebacks++;
    }
  }
  fill(set, victim, tag, write, requester.vm);
  return result;
}

bool ReferenceSetAssocCache::probe(Address addr) const {
  return find(set_index(addr), tag_of(addr)) != nullptr;
}

void ReferenceSetAssocCache::invalidate_all() {
  for (auto& line : lines_) line = Line{};
}

void ReferenceSetAssocCache::invalidate(Address addr) {
  if (Line* line = find(set_index(addr), tag_of(addr))) *line = Line{};
}

double ReferenceSetAssocCache::occupancy() const {
  std::uint64_t valid = 0;
  for (const auto& line : lines_) valid += line.valid ? 1 : 0;
  return static_cast<double>(valid) / static_cast<double>(lines_.size());
}

std::uint64_t ReferenceSetAssocCache::footprint_lines(int vm) const {
  std::uint64_t count = 0;
  for (const auto& line : lines_) {
    if (line.valid && line.owner_vm == vm) ++count;
  }
  return count;
}

void ReferenceSetAssocCache::set_partition(int vm, unsigned first_way, unsigned n_ways) {
  KYOTO_CHECK_MSG(vm >= 0, "partition requires a concrete vm id");
  KYOTO_CHECK_MSG(first_way + n_ways <= geometry_.ways,
                  "partition [" << first_way << ", " << first_way + n_ways
                                << ") exceeds " << geometry_.ways << " ways");
  KYOTO_CHECK_MSG(n_ways >= 1, "partition must contain at least one way");
  if (static_cast<std::size_t>(vm) >= partitions_.size()) {
    partitions_.resize(static_cast<std::size_t>(vm) + 1);
  }
  partitions_[static_cast<std::size_t>(vm)] = Partition{first_way, n_ways};
}

void ReferenceSetAssocCache::clear_partitions() { partitions_.clear(); }

CacheStats& ReferenceSetAssocCache::core_slot(int core) {
  KYOTO_DCHECK(core >= 0);
  if (static_cast<std::size_t>(core) >= per_core_.size()) {
    per_core_.resize(static_cast<std::size_t>(core) + 1);
  }
  return per_core_[static_cast<std::size_t>(core)];
}

CacheStats& ReferenceSetAssocCache::vm_slot(int vm) {
  KYOTO_DCHECK(vm >= 0);
  if (static_cast<std::size_t>(vm) >= per_vm_.size()) {
    per_vm_.resize(static_cast<std::size_t>(vm) + 1);
  }
  return per_vm_[static_cast<std::size_t>(vm)];
}

const CacheStats& ReferenceSetAssocCache::stats_for_core(int core) const {
  static const CacheStats kEmpty{};
  if (core < 0 || static_cast<std::size_t>(core) >= per_core_.size()) return kEmpty;
  return per_core_[static_cast<std::size_t>(core)];
}

const CacheStats& ReferenceSetAssocCache::stats_for_vm(int vm) const {
  static const CacheStats kEmpty{};
  if (vm < 0 || static_cast<std::size_t>(vm) >= per_vm_.size()) return kEmpty;
  return per_vm_[static_cast<std::size_t>(vm)];
}

void ReferenceSetAssocCache::clear_stats() {
  total_.clear();
  for (auto& s : per_core_) s.clear();
  for (auto& s : per_vm_) s.clear();
}

}  // namespace kyoto::cache
