// Physical machine topology: sockets and cores.
//
// Each socket has one LLC shared by its cores and is one NUMA node.
// The paper's two machines are provided: the 1-socket/4-core Xeon
// E5-1603 v3 (Table 1, most experiments) and the 2-socket PowerEdge
// R420 used for the migration-overhead study (Fig 9).
#pragma once

#include "common/check.hpp"

namespace kyoto::cache {

struct Topology {
  int sockets = 1;
  int cores_per_socket = 4;

  int total_cores() const { return sockets * cores_per_socket; }
  int socket_of(int core) const {
    KYOTO_DCHECK(core >= 0 && core < total_cores());
    return core / cores_per_socket;
  }
  /// NUMA node == socket in both experimental machines.
  int node_of(int core) const { return socket_of(core); }
  int first_core(int socket) const {
    KYOTO_DCHECK(socket >= 0 && socket < sockets);
    return socket * cores_per_socket;
  }
};

/// Table 1 machine: 1 socket, 4 cores.
inline Topology paper_topology() { return Topology{1, 4}; }

/// Fig 9 machine: PowerEdge R420, 2 sockets (numa0/numa1), 4 cores each.
inline Topology numa_topology() { return Topology{2, 4}; }

}  // namespace kyoto::cache
