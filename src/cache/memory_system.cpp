#include "cache/memory_system.hpp"

#include <string>

#include "common/check.hpp"

namespace kyoto::cache {

MemorySystem::MemorySystem(const Topology& topology, const MemSystemConfig& config,
                           std::uint64_t seed)
    : topology_(topology), config_(config) {
  KYOTO_CHECK_MSG(topology.sockets >= 1 && topology.cores_per_socket >= 1,
                  "degenerate topology");
  const int cores = topology.total_cores();
  // Per-core stat slots sized exactly from the topology, so the access
  // path indexes them without growth checks firing.  Private caches
  // run attribution-free: hardware PMCs count LLC events only and
  // pollution accounting is an LLC concept, so nothing ever reads
  // per-core/per-VM stats or footprints of an L1/L2.
  const StatSlotHints slots{cores, 64};
  l1_.reserve(static_cast<std::size_t>(cores));
  l2_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    l1_.push_back(std::make_unique<SetAssocCache>("L1#" + std::to_string(c), config.l1,
                                                  config.private_replacement,
                                                  seed * 1000003ull + static_cast<std::uint64_t>(c),
                                                  slots, /*track_attribution=*/false));
    l2_.push_back(std::make_unique<SetAssocCache>("L2#" + std::to_string(c), config.l2,
                                                  config.private_replacement,
                                                  seed * 2000003ull + static_cast<std::uint64_t>(c),
                                                  slots, /*track_attribution=*/false));
  }
  llc_.reserve(static_cast<std::size_t>(topology.sockets));
  for (int s = 0; s < topology.sockets; ++s) {
    llc_.push_back(std::make_unique<SetAssocCache>("LLC#" + std::to_string(s), config.llc,
                                                   config.llc_replacement,
                                                   seed * 4000037ull + static_cast<std::uint64_t>(s),
                                                   slots, /*track_attribution=*/true));
  }
  prefetches_.assign(static_cast<std::size_t>(cores), {});
  bus_busy_until_.assign(static_cast<std::size_t>(topology.sockets), {});
  bus_queue_cycles_.assign(static_cast<std::size_t>(topology.sockets), {});

  // Fused-walk geometry screen: with one common line size and pow2
  // set counts everywhere, a single line number (addr >> shift)
  // yields every level's set index by masking — the precondition for
  // hoisting the per-level indices out of the walk.
  fused_ok_ = l1_[0]->pow2_geometry() && l2_[0]->pow2_geometry() &&
              llc_[0]->pow2_geometry() &&
              config.l1.line == config.l2.line && config.l2.line == config.llc.line;
}

void MemorySystem::reserve_vm_slots(int vms) {
  for (auto& c : l1_) c->reserve_vm_slots(vms);
  for (auto& c : l2_) c->reserve_vm_slots(vms);
  for (auto& c : llc_) c->reserve_vm_slots(vms);
}

void MemorySystem::prefetch_after_miss(int core, Address addr, int vm,
                                       AccessResult& result) {
  // Next-line prefetcher: pull the following `degree` lines into this
  // core's L2 and the socket LLC.  Prefetch fills update recency and
  // can evict — prefetch pollution is real and intentional here, and
  // it is reported back so the PMU counts it (LLC_MISSES includes
  // prefetch-initiated fills on real parts).
  const int socket = topology_.socket_of(core);
  const Requester req{core, vm};
  for (unsigned d = 1; d <= config_.prefetch.degree; ++d) {
    const Address next = addr + static_cast<Address>(d) * config_.l2.line;
    if (l2_[static_cast<std::size_t>(core)]->probe(next)) continue;  // already resident
    ++result.prefetch_llc_references;
    if (!llc_[static_cast<std::size_t>(socket)]->access(next, false, req).hit) {
      ++result.prefetch_llc_misses;
    }
    l2_[static_cast<std::size_t>(core)]->access(next, false, req);
    ++prefetches_[static_cast<std::size_t>(core)].value;
  }
}

Cycles MemorySystem::bus_delay(int socket, std::int64_t now_cycle) {
  // One line transfer occupies the socket's bus for transfer_cycles;
  // a request arriving while the bus is busy queues behind it.
  auto& busy_until = bus_busy_until_[static_cast<std::size_t>(socket)].value;
  const Cycles wait = static_cast<Cycles>(std::max<std::int64_t>(0, busy_until - now_cycle));
  busy_until = std::max<std::int64_t>(busy_until, now_cycle) + config_.bus.transfer_cycles;
  bus_queue_cycles_[static_cast<std::size_t>(socket)].value += wait;
  return wait;
}

void MemorySystem::memory_miss_extras(int socket, const Requester& req, Address addr,
                                      std::int64_t now_cycle, AccessResult& result) {
  if (config_.bus.enabled && now_cycle >= 0) {
    result.bus_queue_delay = bus_delay(socket, now_cycle);
    result.latency += result.bus_queue_delay;
  }
  if (config_.prefetch.enabled) prefetch_after_miss(req.core, addr, req.vm, result);
}

MemorySystem::AccessContext MemorySystem::context(int core, int home_node, int vm) {
  KYOTO_CHECK(core >= 0 && core < topology_.total_cores());
  AccessContext ctx;
  ctx.sys_ = this;
  ctx.l1_ = l1_[static_cast<std::size_t>(core)].get();
  ctx.l2_ = l2_[static_cast<std::size_t>(core)].get();
  ctx.socket_ = topology_.socket_of(core);
  ctx.llc_ = llc_[static_cast<std::size_t>(ctx.socket_)].get();
  ctx.req_ = Requester{core, vm};
  ctx.remote_ = home_node != topology_.node_of(core);
  ctx.miss_extras_ = config_.bus.enabled || config_.prefetch.enabled;
  if (fused_enabled_ && fused_ok_) {
    ctx.fused_ = true;
    ctx.line_shift_ = ctx.l1_->line_shift();
    ctx.l1_mask_ = ctx.l1_->geometry().sets() - 1;
    ctx.l2_mask_ = ctx.l2_->geometry().sets() - 1;
    ctx.llc_mask_ = ctx.llc_->geometry().sets() - 1;
  }
  ctx.lat_l1_ = config_.lat_l1;
  ctx.lat_l2_ = config_.lat_l2;
  ctx.lat_llc_ = config_.lat_llc;
  ctx.lat_mem_local_ = config_.lat_mem_local;
  ctx.lat_mem_remote_ = config_.lat_mem_remote;
  return ctx;
}

AccessResult MemorySystem::access(int core, Address addr, bool write, int home_node, int vm,
                                  std::int64_t now_cycle) {
  KYOTO_DCHECK(core >= 0 && core < topology_.total_cores());
  return context(core, home_node, vm).access(addr, write, now_cycle);
}

void MemorySystem::access_batch(int core, int home_node, int vm, const BatchAccess* ops,
                                AccessResult* results, std::size_t n,
                                std::int64_t now_cycle) {
  AccessContext ctx = context(core, home_node, vm);
  if (now_cycle < 0) {
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = ctx.access(ops[i].addr, ops[i].write);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    results[i] = ctx.access(ops[i].addr, ops[i].write, now_cycle);
    now_cycle += results[i].latency;
  }
}

std::uint64_t MemorySystem::prefetches_issued(int core) const {
  KYOTO_CHECK(core >= 0 && static_cast<std::size_t>(core) < prefetches_.size());
  return prefetches_[static_cast<std::size_t>(core)].value;
}

Cycles MemorySystem::bus_queue_cycles(int socket) const {
  KYOTO_CHECK(socket >= 0 && static_cast<std::size_t>(socket) < bus_queue_cycles_.size());
  return bus_queue_cycles_[static_cast<std::size_t>(socket)].value;
}

std::uint64_t MemorySystem::release_vm_lines(int vm) {
  std::uint64_t dropped = 0;
  for (auto& c : llc_) dropped += c->release_vm(vm);
  return dropped;
}

void MemorySystem::invalidate_private(int core) {
  KYOTO_CHECK(core >= 0 && core < topology_.total_cores());
  l1_[static_cast<std::size_t>(core)]->invalidate_all();
  l2_[static_cast<std::size_t>(core)]->invalidate_all();
}

void MemorySystem::invalidate_all() {
  for (auto& c : l1_) c->invalidate_all();
  for (auto& c : l2_) c->invalidate_all();
  for (auto& c : llc_) c->invalidate_all();
}

SetAssocCache& MemorySystem::llc(int socket) {
  KYOTO_CHECK(socket >= 0 && socket < topology_.sockets);
  return *llc_[static_cast<std::size_t>(socket)];
}

const SetAssocCache& MemorySystem::llc(int socket) const {
  KYOTO_CHECK(socket >= 0 && socket < topology_.sockets);
  return *llc_[static_cast<std::size_t>(socket)];
}

}  // namespace kyoto::cache
