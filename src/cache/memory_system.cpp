#include "cache/memory_system.hpp"

#include <string>

#include "common/check.hpp"

namespace kyoto::cache {

MemorySystem::MemorySystem(const Topology& topology, const MemSystemConfig& config,
                           std::uint64_t seed)
    : topology_(topology), config_(config) {
  KYOTO_CHECK_MSG(topology.sockets >= 1 && topology.cores_per_socket >= 1,
                  "degenerate topology");
  const int cores = topology.total_cores();
  l1_.reserve(static_cast<std::size_t>(cores));
  l2_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    l1_.push_back(std::make_unique<SetAssocCache>("L1#" + std::to_string(c), config.l1,
                                                  config.private_replacement,
                                                  seed * 1000003ull + static_cast<std::uint64_t>(c)));
    l2_.push_back(std::make_unique<SetAssocCache>("L2#" + std::to_string(c), config.l2,
                                                  config.private_replacement,
                                                  seed * 2000003ull + static_cast<std::uint64_t>(c)));
  }
  llc_.reserve(static_cast<std::size_t>(topology.sockets));
  for (int s = 0; s < topology.sockets; ++s) {
    llc_.push_back(std::make_unique<SetAssocCache>("LLC#" + std::to_string(s), config.llc,
                                                   config.llc_replacement,
                                                   seed * 4000037ull + static_cast<std::uint64_t>(s)));
  }
  prefetches_.assign(static_cast<std::size_t>(cores), 0);
  bus_busy_until_.assign(static_cast<std::size_t>(topology.sockets), 0);
  bus_queue_cycles_.assign(static_cast<std::size_t>(topology.sockets), 0);
}

void MemorySystem::prefetch_after_miss(int core, Address addr, int vm,
                                       AccessResult& result) {
  // Next-line prefetcher: pull the following `degree` lines into this
  // core's L2 and the socket LLC.  Prefetch fills update recency and
  // can evict — prefetch pollution is real and intentional here, and
  // it is reported back so the PMU counts it (LLC_MISSES includes
  // prefetch-initiated fills on real parts).
  const int socket = topology_.socket_of(core);
  const Requester req{core, vm};
  for (unsigned d = 1; d <= config_.prefetch.degree; ++d) {
    const Address next = addr + static_cast<Address>(d) * config_.l2.line;
    if (l2_[static_cast<std::size_t>(core)]->probe(next)) continue;  // already resident
    ++result.prefetch_llc_references;
    if (!llc_[static_cast<std::size_t>(socket)]->access(next, false, req).hit) {
      ++result.prefetch_llc_misses;
    }
    l2_[static_cast<std::size_t>(core)]->access(next, false, req);
    ++prefetches_[static_cast<std::size_t>(core)];
  }
}

Cycles MemorySystem::bus_delay(int socket, std::int64_t now_cycle) {
  // One line transfer occupies the socket's bus for transfer_cycles;
  // a request arriving while the bus is busy queues behind it.
  auto& busy_until = bus_busy_until_[static_cast<std::size_t>(socket)];
  const Cycles wait = static_cast<Cycles>(std::max<std::int64_t>(0, busy_until - now_cycle));
  busy_until = std::max<std::int64_t>(busy_until, now_cycle) + config_.bus.transfer_cycles;
  bus_queue_cycles_[static_cast<std::size_t>(socket)] += wait;
  return wait;
}

AccessResult MemorySystem::access(int core, Address addr, bool write, int home_node, int vm,
                                  std::int64_t now_cycle) {
  KYOTO_DCHECK(core >= 0 && core < topology_.total_cores());
  const Requester req{core, vm};
  AccessResult result;

  if (l1_[static_cast<std::size_t>(core)]->access(addr, write, req).hit) {
    result.level = CacheLevel::kL1;
    result.latency = config_.lat_l1;
    return result;
  }
  if (l2_[static_cast<std::size_t>(core)]->access(addr, write, req).hit) {
    result.level = CacheLevel::kL2;
    result.latency = config_.lat_l2;
    return result;
  }
  result.llc_reference = true;
  const int socket = topology_.socket_of(core);
  if (llc_[static_cast<std::size_t>(socket)]->access(addr, write, req).hit) {
    result.level = CacheLevel::kLlc;
    result.latency = config_.lat_llc;
    return result;
  }
  result.llc_miss = true;
  const bool remote = home_node != topology_.node_of(core);
  result.level = remote ? CacheLevel::kMemRemote : CacheLevel::kMemLocal;
  result.latency = remote ? config_.lat_mem_remote : config_.lat_mem_local;
  if (config_.bus.enabled && now_cycle >= 0) {
    result.bus_queue_delay = bus_delay(socket, now_cycle);
    result.latency += result.bus_queue_delay;
  }
  if (config_.prefetch.enabled) prefetch_after_miss(core, addr, vm, result);
  return result;
}

std::uint64_t MemorySystem::prefetches_issued(int core) const {
  KYOTO_CHECK(core >= 0 && static_cast<std::size_t>(core) < prefetches_.size());
  return prefetches_[static_cast<std::size_t>(core)];
}

Cycles MemorySystem::bus_queue_cycles(int socket) const {
  KYOTO_CHECK(socket >= 0 && static_cast<std::size_t>(socket) < bus_queue_cycles_.size());
  return bus_queue_cycles_[static_cast<std::size_t>(socket)];
}

void MemorySystem::invalidate_private(int core) {
  KYOTO_CHECK(core >= 0 && core < topology_.total_cores());
  l1_[static_cast<std::size_t>(core)]->invalidate_all();
  l2_[static_cast<std::size_t>(core)]->invalidate_all();
}

void MemorySystem::invalidate_all() {
  for (auto& c : l1_) c->invalidate_all();
  for (auto& c : l2_) c->invalidate_all();
  for (auto& c : llc_) c->invalidate_all();
}

SetAssocCache& MemorySystem::llc(int socket) {
  KYOTO_CHECK(socket >= 0 && socket < topology_.sockets);
  return *llc_[static_cast<std::size_t>(socket)];
}

const SetAssocCache& MemorySystem::llc(int socket) const {
  KYOTO_CHECK(socket >= 0 && socket < topology_.sockets);
  return *llc_[static_cast<std::size_t>(socket)];
}

}  // namespace kyoto::cache
