#include "cache/set_assoc_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kyoto::cache {

const char* replacement_name(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru: return "LRU";
    case ReplacementKind::kPlru: return "PLRU";
    case ReplacementKind::kRandom: return "random";
    case ReplacementKind::kLip: return "LIP";
    case ReplacementKind::kBip: return "BIP";
    case ReplacementKind::kDip: return "DIP";
  }
  return "?";
}

const char* cache_level_name(CacheLevel level) {
  switch (level) {
    case CacheLevel::kL1: return "L1";
    case CacheLevel::kL2: return "L2";
    case CacheLevel::kLlc: return "LLC";
    case CacheLevel::kMemLocal: return "mem(local)";
    case CacheLevel::kMemRemote: return "mem(remote)";
  }
  return "?";
}

SetAssocCache::SetAssocCache(std::string name, CacheGeometry geometry,
                             ReplacementKind replacement, std::uint64_t seed,
                             StatSlotHints slots, bool track_attribution)
    : name_(std::move(name)),
      geometry_(geometry),
      replacement_(replacement),
      sets_(geometry.sets()),
      ways_(geometry.ways),
      track_attribution_(track_attribution),
      rng_(seed) {
  KYOTO_CHECK_MSG(geometry_.ways >= 1, "cache must have at least one way");
  KYOTO_CHECK_MSG(geometry_.ways <= 64,
                  "associativity above 64 not supported (per-set bitmask words)");
  const std::size_t lines = static_cast<std::size_t>(sets_) * ways_;
  tags_.assign(lines, 0);
  stamps_.assign(lines, 0);
  owners_.assign(lines, -1);
  valid_.assign(sets_, 0);
  dirty_.assign(sets_, 0);

  pow2_geometry_ = std::has_single_bit(static_cast<std::uint64_t>(geometry_.line)) &&
                   std::has_single_bit(static_cast<std::uint64_t>(sets_));
  if (pow2_geometry_) {
    line_shift_ = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(geometry_.line)));
    set_mask_ = sets_ - 1;
  }

  per_core_.resize(static_cast<std::size_t>(std::max(slots.cores, 1)));
  per_vm_.resize(static_cast<std::size_t>(std::max(slots.vms, 1)));
  vm_footprint_.assign(per_vm_.size(), 0);
  vm_pollution_.assign(per_vm_.size(), VmPollution{});
}

void SetAssocCache::reserve_vm_slots(int vms) {
  if (vms <= 0) return;
  const auto n = static_cast<std::size_t>(vms);
  if (per_vm_.size() < n) per_vm_.resize(n);
  if (vm_footprint_.size() < n) vm_footprint_.resize(n, 0);
  if (vm_pollution_.size() < n) vm_pollution_.resize(n);
}

bool SetAssocCache::set_uses_bip(unsigned set) const {
  if (replacement_ == ReplacementKind::kBip) return true;
  if (replacement_ != ReplacementKind::kDip) return false;
  // Set dueling: set 0 mod 32 leads LRU, set 1 mod 32 leads BIP,
  // followers take whichever family currently misses less (psel).
  const unsigned pos = set % kDuelModulus;
  if (pos == 0) return false;  // LRU leader
  if (pos == 1) return true;   // BIP leader
  return psel_ > kPselMax / 2;
}

void SetAssocCache::plru_touch(unsigned set, unsigned way) {
  // Bit-PLRU: set the MRU bit; when every valid way is marked, clear
  // all others.
  std::uint64_t* stamps = &stamps_[line_index(set, 0)];
  stamps[way] = 1;
  const std::uint64_t valid = valid_[set];
  bool all_set = true;
  for (unsigned w = 0; w < ways_; ++w) {
    if (((valid >> w) & 1u) && stamps[w] == 0) {
      all_set = false;
      break;
    }
  }
  if (all_set) {
    for (unsigned w = 0; w < ways_; ++w) {
      if (w != way) stamps[w] = 0;
    }
  }
}

unsigned SetAssocCache::pick_victim(unsigned set, unsigned first_way, unsigned end_way) {
  // Prefer the lowest-index invalid way (matches the old linear scan).
  const std::uint64_t range_mask =
      (end_way == 64 ? ~0ull : (1ull << end_way) - 1) & ~((1ull << first_way) - 1);
  const std::uint64_t invalid = ~valid_[set] & range_mask;
  if (invalid != 0) return static_cast<unsigned>(std::countr_zero(invalid));

  if (replacement_ == ReplacementKind::kRandom) {
    return first_way + static_cast<unsigned>(rng_.below(end_way - first_way));
  }
  // LRU-family and PLRU: smallest stamp wins (for PLRU the stamp is
  // the MRU bit, so any 0-bit way is a candidate; ties resolved by
  // position which matches hardware's fixed scan order).  The strict
  // `<` keeps the lowest index on ties, exactly like the old scan;
  // conditional selects avoid data-dependent branch mispredicts.
  const std::uint64_t* stamps = &stamps_[line_index(set, 0)];
  if (first_way == 0 && end_way == ways_ && ways_ >= 8) {
    // Unpartitioned set (the overwhelmingly common case): min-reduce
    // in four independent lanes to break the compare-select chain.
    // Lane j covers ways {j, j+4, j+8, ...} in ascending order, so
    // the strict `<` keeps each lane's lowest index on ties; the
    // lexicographic merges keep the globally lowest.
    unsigned v0 = 0, v1 = 1, v2 = 2, v3 = 3;
    std::uint64_t b0 = stamps[0], b1 = stamps[1], b2 = stamps[2], b3 = stamps[3];
    unsigned w = 4;
    for (; w + 4 <= ways_; w += 4) {
      bool lt;
      lt = stamps[w] < b0;     v0 = lt ? w : v0;     b0 = lt ? stamps[w] : b0;
      lt = stamps[w + 1] < b1; v1 = lt ? w + 1 : v1; b1 = lt ? stamps[w + 1] : b1;
      lt = stamps[w + 2] < b2; v2 = lt ? w + 2 : v2; b2 = lt ? stamps[w + 2] : b2;
      lt = stamps[w + 3] < b3; v3 = lt ? w + 3 : v3; b3 = lt ? stamps[w + 3] : b3;
    }
    for (; w < ways_; ++w) {
      // Tail ways have the highest indices, so a strict `<` against
      // lane 0 preserves lowest-index-on-tie.
      const bool lt = stamps[w] < b0;
      v0 = lt ? w : v0;
      b0 = lt ? stamps[w] : b0;
    }
    bool take;
    take = b1 < b0 || (b1 == b0 && v1 < v0);
    v0 = take ? v1 : v0;
    b0 = take ? b1 : b0;
    take = b3 < b2 || (b3 == b2 && v3 < v2);
    v2 = take ? v3 : v2;
    b2 = take ? b3 : b2;
    take = b2 < b0 || (b2 == b0 && v2 < v0);
    return take ? v2 : v0;
  }
  unsigned victim = first_way;
  std::uint64_t best = stamps[first_way];
  for (unsigned w = first_way + 1; w < end_way; ++w) {
    const bool lower = stamps[w] < best;
    victim = lower ? w : victim;
    best = lower ? stamps[w] : best;
  }
  return victim;
}

SetAssocCache::MissInfo SetAssocCache::miss_fill(unsigned set, Address tag, bool write,
                                                 const Requester& requester) {
  CacheStats* core_stats = nullptr;
  CacheStats* vm_stats = nullptr;
  if (track_attribution_) {
    core_stats = &core_slot(requester.core);
    ++core_stats->accesses;
    ++core_stats->misses;
    if (requester.vm >= 0) {
      vm_stats = &vm_slot(requester.vm);
      ++vm_stats->accesses;
      ++vm_stats->misses;
      // Ground-truth miss classification: if another requester
      // displaced this VM's copy of the line since it last held it,
      // this re-miss is contention-induced, not intrinsic.
      if (requester.vm < kPollutionVmTracked && !displaced_.empty()) {
        const auto it = displaced_.find(tag);
        if (it != displaced_.end()) {
          const std::uint64_t vm_bit = 1ull << requester.vm;
          if (it->second & vm_bit) {
            ++pollution_slot(requester.vm).contention_misses;
            it->second &= ~vm_bit;
            if (it->second == 0) displaced_.erase(it);
          }
        }
      }
    }
  }

  // DIP leader-set bookkeeping: a miss in an LRU leader nudges psel
  // toward BIP and vice versa.
  if (replacement_ == ReplacementKind::kDip) {
    const unsigned pos = set % kDuelModulus;
    if (pos == 0) psel_ = std::min(psel_ + 1, kPselMax);
    else if (pos == 1) psel_ = std::max(psel_ - 1, 0);
  }

  // Respect the requester VM's way partition, if any.
  unsigned first_way = 0;
  unsigned end_way = ways_;
  if (!partitions_.empty() && requester.vm >= 0 &&
      static_cast<std::size_t>(requester.vm) < partitions_.size()) {
    const Partition& p = partitions_[static_cast<std::size_t>(requester.vm)];
    if (p.n_ways > 0) {
      first_way = p.first_way;
      end_way = std::min(ways_, p.first_way + p.n_ways);
    }
  }

  const unsigned victim = pick_victim(set, first_way, end_way);
  const std::size_t idx = line_index(set, victim);
  const std::uint64_t bit = 1ull << victim;

  MissInfo info;
  if (valid_[set] & bit) {
    info.evicted = true;
    info.evicted_tag = tags_[idx];
    ++total_.evictions;
    const bool was_dirty = (dirty_[set] & bit) != 0;
    total_.writebacks += was_dirty ? 1 : 0;
    if (core_stats != nullptr) {
      ++core_stats->evictions;
      core_stats->writebacks += was_dirty ? 1 : 0;
      if (vm_stats != nullptr) {
        ++vm_stats->evictions;
        vm_stats->writebacks += was_dirty ? 1 : 0;
      }
    }
    if (track_attribution_) {
      // Displaced line's owner loses a footprint line.
      const int old_vm = owners_[idx];
      if (old_vm < 0) {
        --unowned_lines_;
      } else {
        KYOTO_DCHECK(static_cast<std::size_t>(old_vm) < vm_footprint_.size());
        --vm_footprint_[static_cast<std::size_t>(old_vm)];
        if (old_vm != requester.vm) {
          // Cross-VM eviction: the ground-truth pollution event.
          ++pollution_slot(old_vm).cross_evictions_suffered;
          if (requester.vm >= 0) {
            ++pollution_slot(requester.vm).cross_evictions_inflicted;
          }
          if (old_vm < kPollutionVmTracked) {
            displaced_[info.evicted_tag] |= 1ull << old_vm;
          }
        }
      }
    }
  } else {
    ++valid_lines_;
  }

  // Fill.
  tags_[idx] = tag;
  valid_[set] |= bit;
  dirty_[set] = write ? (dirty_[set] | bit) : (dirty_[set] & ~bit);
  if (track_attribution_) {
    const int vm = requester.vm;
    owners_[idx] = vm;
    if (vm < 0) {
      ++unowned_lines_;
    } else {
      if (static_cast<std::size_t>(vm) >= vm_footprint_.size()) {
        grow_vm_slots(vm);  // cold: only for ids beyond the reserved slots
      }
      ++vm_footprint_[static_cast<std::size_t>(vm)];
    }
  }

  // Insertion recency depends on the (possibly dueled) policy:
  //   LRU/PLRU/random: insert at MRU.
  //   LIP: insert at LRU (stamp 0 => next victim unless promoted).
  //   BIP: LIP with a 1/32 chance of MRU insertion.
  bool insert_mru = true;
  switch (replacement_) {
    case ReplacementKind::kLip:
      insert_mru = false;
      break;
    case ReplacementKind::kBip:
    case ReplacementKind::kDip:
      if (set_uses_bip(set)) insert_mru = rng_.below(32) == 0;
      break;
    default:
      break;
  }
  if (insert_mru) {
    touch(set, victim);
  } else {
    stamps_[idx] = 0;
  }
  return info;
}

LookupResult SetAssocCache::access(Address addr, bool write, const Requester& requester) {
  const unsigned set = set_index(addr);
  const Address tag = tag_of(addr);

  ++total_.accesses;
  LookupResult result;
  if (const unsigned way = find(set, tag); way != kNoWay) {
    result.hit = true;
    ++total_.hits;
    if (track_attribution_) attribute_hit(requester);
    if (write) dirty_[set] |= 1ull << way;  // stores only: loads skip the RMW
    touch(set, way);
    return result;
  }

  ++total_.misses;
  const MissInfo info = miss_fill(set, tag, write, requester);
  if (info.evicted) result.evicted = info.evicted_tag * geometry_.line;
  return result;
}

void SetAssocCache::invalidate_all() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  std::fill(owners_.begin(), owners_.end(), -1);
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  valid_lines_ = 0;
  unowned_lines_ = 0;
  std::fill(vm_footprint_.begin(), vm_footprint_.end(), 0);
  // The displaced-line index describes lines relative to the current
  // contents; after a power-on flush every future miss is intrinsic.
  // The pollution *counters* are statistics and survive, like stats().
  displaced_.clear();
}

void SetAssocCache::invalidate(Address addr) {
  const unsigned set = set_index(addr);
  const unsigned way = find(set, tag_of(addr));
  if (way == kNoWay) return;
  const std::size_t idx = line_index(set, way);
  if (track_attribution_) {
    const int owner = owners_[idx];
    if (owner < 0) {
      --unowned_lines_;
    } else {
      KYOTO_DCHECK(static_cast<std::size_t>(owner) < vm_footprint_.size());
      --vm_footprint_[static_cast<std::size_t>(owner)];
    }
  }
  --valid_lines_;
  const std::uint64_t bit = 1ull << way;
  valid_[set] &= ~bit;
  dirty_[set] &= ~bit;
  tags_[idx] = 0;
  stamps_[idx] = 0;
  owners_[idx] = -1;
}

void SetAssocCache::set_partition(int vm, unsigned first_way, unsigned n_ways) {
  KYOTO_CHECK_MSG(vm >= 0, "partition requires a concrete vm id");
  KYOTO_CHECK_MSG(first_way + n_ways <= geometry_.ways,
                  "partition [" << first_way << ", " << first_way + n_ways
                                << ") exceeds " << geometry_.ways << " ways");
  KYOTO_CHECK_MSG(n_ways >= 1, "partition must contain at least one way");
  if (static_cast<std::size_t>(vm) >= partitions_.size()) {
    partitions_.resize(static_cast<std::size_t>(vm) + 1);
  }
  partitions_[static_cast<std::size_t>(vm)] = Partition{first_way, n_ways};
}

void SetAssocCache::clear_partitions() { partitions_.clear(); }

void SetAssocCache::grow_core_slots(int core) {
  per_core_.resize(static_cast<std::size_t>(core) + 1);
}

void SetAssocCache::grow_vm_slots(int vm) {
  // Safety net for ids beyond the pre-sized slots (never taken when
  // the owning MemorySystem reserves slots as VMs are admitted).
  per_vm_.resize(static_cast<std::size_t>(vm) + 1);
  vm_footprint_.resize(static_cast<std::size_t>(vm) + 1, 0);
  vm_pollution_.resize(static_cast<std::size_t>(vm) + 1);
}

const VmPollution& SetAssocCache::pollution_for_vm(int vm) const {
  static const VmPollution kEmpty{};
  if (vm < 0 || static_cast<std::size_t>(vm) >= vm_pollution_.size()) return kEmpty;
  return vm_pollution_[static_cast<std::size_t>(vm)];
}

std::uint64_t SetAssocCache::recount_footprint_lines(int vm) const {
  std::uint64_t count = 0;
  for (unsigned set = 0; set < sets_; ++set) {
    for (unsigned way = 0; way < ways_; ++way) {
      if ((valid_[set] >> way) & 1u) {
        count += owners_[line_index(set, way)] == vm ? 1 : 0;
      }
    }
  }
  return count;
}

std::uint64_t SetAssocCache::recount_valid_lines() const {
  std::uint64_t count = 0;
  for (unsigned set = 0; set < sets_; ++set) {
    count += static_cast<std::uint64_t>(std::popcount(valid_[set]));
  }
  return count;
}

const CacheStats& SetAssocCache::stats_for_core(int core) const {
  static const CacheStats kEmpty{};
  if (core < 0 || static_cast<std::size_t>(core) >= per_core_.size()) return kEmpty;
  return per_core_[static_cast<std::size_t>(core)];
}

const CacheStats& SetAssocCache::stats_for_vm(int vm) const {
  static const CacheStats kEmpty{};
  if (vm < 0 || static_cast<std::size_t>(vm) >= per_vm_.size()) return kEmpty;
  return per_vm_[static_cast<std::size_t>(vm)];
}

void SetAssocCache::clear_stats() {
  total_.clear();
  for (auto& s : per_core_) s.clear();
  for (auto& s : per_vm_) s.clear();
}

}  // namespace kyoto::cache
