#include "cache/set_assoc_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kyoto::cache {

const char* replacement_name(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru: return "LRU";
    case ReplacementKind::kPlru: return "PLRU";
    case ReplacementKind::kRandom: return "random";
    case ReplacementKind::kLip: return "LIP";
    case ReplacementKind::kBip: return "BIP";
    case ReplacementKind::kDip: return "DIP";
  }
  return "?";
}

const char* cache_level_name(CacheLevel level) {
  switch (level) {
    case CacheLevel::kL1: return "L1";
    case CacheLevel::kL2: return "L2";
    case CacheLevel::kLlc: return "LLC";
    case CacheLevel::kMemLocal: return "mem(local)";
    case CacheLevel::kMemRemote: return "mem(remote)";
  }
  return "?";
}

SetAssocCache::SetAssocCache(std::string name, CacheGeometry geometry,
                             ReplacementKind replacement, std::uint64_t seed,
                             StatSlotHints slots, bool track_attribution)
    : name_(std::move(name)),
      geometry_(geometry),
      replacement_(replacement),
      sets_(geometry.sets()),
      ways_(geometry.ways),
      track_attribution_(track_attribution),
      rng_(seed),
      displaced_pool_(std::make_unique<PoolResource>()),
      displaced_(0, std::hash<Address>{}, std::equal_to<Address>{},
                 PoolAllocator<std::pair<const Address, std::uint64_t>>(
                     displaced_pool_.get())) {
  KYOTO_CHECK_MSG(geometry_.ways >= 1, "cache must have at least one way");
  KYOTO_CHECK_MSG(geometry_.ways <= 64,
                  "associativity above 64 not supported (per-set bitmask words)");
  const std::size_t lines = static_cast<std::size_t>(sets_) * ways_;
  tags_.assign(lines, 0);
  stamps_.assign(lines, 0);
  owners_.assign(lines, -1);
  valid_.assign(sets_, 0);
  dirty_.assign(sets_, 0);

  fast_fill_ = replacement_ == ReplacementKind::kLru;  // && no partitions yet
  nibble_lru_ = replacement_ == ReplacementKind::kLru && ways_ <= 16;
  order5_lru_ = replacement_ == ReplacementKind::kLru && ways_ > 16 && ways_ <= 24;
  if (nibble_lru_) {
    lru_order_.resize(sets_);
    reset_lru_order();
  }
  if (order5_lru_) {
    lru_order5_.resize(static_cast<std::size_t>(sets_) * 2);
    reset_lru_order5();
  }
  pow2_geometry_ = std::has_single_bit(static_cast<std::uint64_t>(geometry_.line)) &&
                   std::has_single_bit(static_cast<std::uint64_t>(sets_));
  if (pow2_geometry_) {
    line_shift_ = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(geometry_.line)));
    set_mask_ = sets_ - 1;
  }

  per_core_.resize(static_cast<std::size_t>(std::max(slots.cores, 1)));
  per_vm_.resize(static_cast<std::size_t>(std::max(slots.vms, 1)));
  vm_footprint_.assign(per_vm_.size(), 0);
  vm_pollution_.assign(per_vm_.size(), VmPollution{});
}

void SetAssocCache::reserve_vm_slots(int vms) {
  if (vms <= 0) return;
  const auto n = static_cast<std::size_t>(vms);
  if (per_vm_.size() < n) per_vm_.resize(n);
  if (vm_footprint_.size() < n) vm_footprint_.resize(n, 0);
  if (vm_pollution_.size() < n) vm_pollution_.resize(n);
}

bool SetAssocCache::set_uses_bip(unsigned set) const {
  if (replacement_ == ReplacementKind::kBip) return true;
  if (replacement_ != ReplacementKind::kDip) return false;
  // Set dueling: set 0 mod 32 leads LRU, set 1 mod 32 leads BIP,
  // followers take whichever family currently misses less (psel).
  const unsigned pos = set % kDuelModulus;
  if (pos == 0) return false;  // LRU leader
  if (pos == 1) return true;   // BIP leader
  return psel_ > kPselMax / 2;
}

void SetAssocCache::plru_touch(unsigned set, unsigned way) {
  // Bit-PLRU: set the MRU bit; when every valid way is marked, clear
  // all others.
  std::uint64_t* stamps = &stamps_[line_index(set, 0)];
  stamps[way] = 1;
  const std::uint64_t valid = valid_[set];
  bool all_set = true;
  for (unsigned w = 0; w < ways_; ++w) {
    if (((valid >> w) & 1u) && stamps[w] == 0) {
      all_set = false;
      break;
    }
  }
  if (all_set) {
    for (unsigned w = 0; w < ways_; ++w) {
      if (w != way) stamps[w] = 0;
    }
  }
}

unsigned SetAssocCache::pick_victim(unsigned set, unsigned first_way, unsigned end_way) {
  // Prefer the lowest-index invalid way (matches the old linear scan).
  const std::uint64_t range_mask =
      (end_way == 64 ? ~0ull : (1ull << end_way) - 1) & ~((1ull << first_way) - 1);
  const std::uint64_t invalid = ~valid_[set] & range_mask;
  if (invalid != 0) return static_cast<unsigned>(std::countr_zero(invalid));

  if (replacement_ == ReplacementKind::kRandom) {
    return first_way + static_cast<unsigned>(rng_.below(end_way - first_way));
  }
  // LRU-family and PLRU: smallest stamp wins (for PLRU the stamp is
  // the MRU bit, so any 0-bit way is a candidate; ties resolved by
  // position which matches hardware's fixed scan order).  The strict
  // `<` keeps the lowest index on ties, exactly like the old scan;
  // conditional selects avoid data-dependent branch mispredicts.
  const std::uint64_t* stamps = &stamps_[line_index(set, 0)];
  if (first_way == 0 && end_way == ways_ && ways_ >= 8) {
    // Unpartitioned set (the overwhelmingly common case): min-reduce
    // in four independent lanes to break the compare-select chain.
    // Lane j covers ways {j, j+4, j+8, ...} in ascending order, so
    // the strict `<` keeps each lane's lowest index on ties; the
    // lexicographic merges keep the globally lowest.
    unsigned v0 = 0, v1 = 1, v2 = 2, v3 = 3;
    std::uint64_t b0 = stamps[0], b1 = stamps[1], b2 = stamps[2], b3 = stamps[3];
    unsigned w = 4;
    for (; w + 4 <= ways_; w += 4) {
      bool lt;
      lt = stamps[w] < b0;     v0 = lt ? w : v0;     b0 = lt ? stamps[w] : b0;
      lt = stamps[w + 1] < b1; v1 = lt ? w + 1 : v1; b1 = lt ? stamps[w + 1] : b1;
      lt = stamps[w + 2] < b2; v2 = lt ? w + 2 : v2; b2 = lt ? stamps[w + 2] : b2;
      lt = stamps[w + 3] < b3; v3 = lt ? w + 3 : v3; b3 = lt ? stamps[w + 3] : b3;
    }
    for (; w < ways_; ++w) {
      // Tail ways have the highest indices, so a strict `<` against
      // lane 0 preserves lowest-index-on-tie.
      const bool lt = stamps[w] < b0;
      v0 = lt ? w : v0;
      b0 = lt ? stamps[w] : b0;
    }
    bool take;
    take = b1 < b0 || (b1 == b0 && v1 < v0);
    v0 = take ? v1 : v0;
    b0 = take ? b1 : b0;
    take = b3 < b2 || (b3 == b2 && v3 < v2);
    v2 = take ? v3 : v2;
    b2 = take ? b3 : b2;
    take = b2 < b0 || (b2 == b0 && v2 < v0);
    return take ? v2 : v0;
  }
  unsigned victim = first_way;
  std::uint64_t best = stamps[first_way];
  for (unsigned w = first_way + 1; w < end_way; ++w) {
    const bool lower = stamps[w] < best;
    victim = lower ? w : victim;
    best = lower ? stamps[w] : best;
  }
  return victim;
}

SetAssocCache::MissInfo SetAssocCache::miss_fill(unsigned set, Address tag, bool write,
                                                 const Requester& requester) {
  // Four-way dispatch over the compile-time-pruned fill bodies (see
  // miss_fill_impl in the header).
  if (track_attribution_) {
    return fast_fill_ ? miss_fill_impl<true, true>(set, tag, write, requester)
                      : miss_fill_impl<false, true>(set, tag, write, requester);
  }
  return fast_fill_ ? miss_fill_impl<true, false>(set, tag, write, requester)
                    : miss_fill_impl<false, false>(set, tag, write, requester);
}

LookupResult SetAssocCache::access(Address addr, bool write, const Requester& requester) {
  const unsigned set = set_index(addr);
  const Address tag = tag_of(addr);

  ++total_.accesses;
  LookupResult result;
  if (const unsigned way = find(set, tag); way != kNoWay) {
    result.hit = true;
    ++total_.hits;
    if (track_attribution_) attribute_hit(requester);
    if (write) dirty_[set] |= 1ull << way;  // stores only: loads skip the RMW
    touch(set, way);
    return result;
  }

  ++total_.misses;
  const MissInfo info = miss_fill(set, tag, write, requester);
  if (info.evicted) result.evicted = info.evicted_tag * geometry_.line;
  return result;
}

void SetAssocCache::reset_lru_order() {
  // Identity permutation per set (nibble i = way i), matching the
  // all-zero-stamp power-on state: victim order is only consulted for
  // full sets, and a set can only fill up through touches, which
  // rebuild both recency mirrors in lockstep.  Unused high nibbles
  // keep ids >= ways, which never collide with a real way.
  std::fill(lru_order_.begin(), lru_order_.end(), 0xFEDCBA9876543210ull);
}

void SetAssocCache::reset_lru_order5() {
  // Same identity permutation in the 5-bit layout: field at recency
  // position p holds way p, unused fields park the 0x1F sentinel.
  std::uint64_t word0 = 0;
  for (unsigned p = 0; p < 12; ++p) {
    word0 |= static_cast<std::uint64_t>(p < ways_ ? p : 0x1Fu) << (p * 5);
  }
  std::uint64_t word1 = 0;
  for (unsigned p = 12; p < 24; ++p) {
    word1 |= static_cast<std::uint64_t>(p < ways_ ? p : 0x1Fu) << ((p - 12) * 5);
  }
  for (std::size_t i = 0; i + 1 < lru_order5_.size(); i += 2) {
    lru_order5_[i] = word0;
    lru_order5_[i + 1] = word1;
  }
}

void SetAssocCache::set_fill_fast_paths(bool enabled) {
  fast_fill_allowed_ = enabled;
  if (!enabled) {
    fast_fill_ = false;
    nibble_lru_ = false;
    order5_lru_ = false;
    return;
  }
  fast_fill_ = replacement_ == ReplacementKind::kLru && partitions_.empty();
  const bool want_nibble = replacement_ == ReplacementKind::kLru && ways_ <= 16;
  const bool want_order5 =
      replacement_ == ReplacementKind::kLru && ways_ > 16 && ways_ <= 24;
  if (want_nibble && !nibble_lru_) {
    // Rebuild the nibble order from the authoritative stamps: ways
    // sorted by descending stamp (unique when nonzero), stable by way
    // index for the untouched ones — order among those is never
    // consulted (a full set has every way touched).
    lru_order_.resize(sets_);
    for (unsigned set = 0; set < sets_; ++set) {
      const std::uint64_t* stamps = &stamps_[line_index(set, 0)];
      unsigned order[16];
      for (unsigned w = 0; w < ways_; ++w) order[w] = w;
      std::stable_sort(order, order + ways_,
                       [stamps](unsigned a, unsigned b) { return stamps[a] > stamps[b]; });
      std::uint64_t word = 0xFEDCBA9876543210ull;  // unused high nibbles keep ids >= ways
      for (unsigned pos = 0; pos < ways_; ++pos) {
        word &= ~(0xFull << (pos * 4));
        word |= static_cast<std::uint64_t>(order[pos]) << (pos * 4);
      }
      lru_order_[set] = word;
    }
  }
  if (want_order5 && !order5_lru_) {
    // Same stamp-order rebuild for the two-word 5-bit layout.
    lru_order5_.resize(static_cast<std::size_t>(sets_) * 2);
    for (unsigned set = 0; set < sets_; ++set) {
      const std::uint64_t* stamps = &stamps_[line_index(set, 0)];
      unsigned order[24];
      for (unsigned w = 0; w < ways_; ++w) order[w] = w;
      std::stable_sort(order, order + ways_,
                       [stamps](unsigned a, unsigned b) { return stamps[a] > stamps[b]; });
      std::uint64_t word0 = 0;
      for (unsigned p = 0; p < 12; ++p) {
        word0 |= static_cast<std::uint64_t>(p < ways_ ? order[p] : 0x1Fu) << (p * 5);
      }
      std::uint64_t word1 = 0;
      for (unsigned p = 12; p < 24; ++p) {
        word1 |= static_cast<std::uint64_t>(p < ways_ ? order[p] : 0x1Fu)
                 << ((p - 12) * 5);
      }
      lru_order5_[static_cast<std::size_t>(set) * 2] = word0;
      lru_order5_[static_cast<std::size_t>(set) * 2 + 1] = word1;
    }
  }
  nibble_lru_ = want_nibble;
  order5_lru_ = want_order5;
}

void SetAssocCache::invalidate_all() {
  if (nibble_lru_) reset_lru_order();
  if (order5_lru_) reset_lru_order5();
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  std::fill(owners_.begin(), owners_.end(), -1);
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  valid_lines_ = 0;
  unowned_lines_ = 0;
  std::fill(vm_footprint_.begin(), vm_footprint_.end(), 0);
  // The displaced-line index describes lines relative to the current
  // contents; after a power-on flush every future miss is intrinsic.
  // The pollution *counters* are statistics and survive, like stats().
  displaced_.clear();
}

void SetAssocCache::invalidate(Address addr) {
  const unsigned set = set_index(addr);
  const unsigned way = find(set, tag_of(addr));
  if (way == kNoWay) return;
  const std::size_t idx = line_index(set, way);
  if (track_attribution_) {
    const int owner = owners_[idx];
    if (owner < 0) {
      --unowned_lines_;
    } else {
      KYOTO_DCHECK(static_cast<std::size_t>(owner) < vm_footprint_.size());
      --vm_footprint_[static_cast<std::size_t>(owner)];
    }
  }
  --valid_lines_;
  const std::uint64_t bit = 1ull << way;
  valid_[set] &= ~bit;
  dirty_[set] &= ~bit;
  tags_[idx] = 0;
  stamps_[idx] = 0;
  owners_[idx] = -1;
}

std::uint64_t SetAssocCache::release_vm(int vm) {
  if (!track_attribution_ || vm < 0) return 0;
  // Purge the VM's bits from the displaced-line index first: a dead
  // VM can never re-miss, so its entries would only pin pool nodes.
  if (vm < kPollutionVmTracked && !displaced_.empty()) {
    const std::uint64_t vm_bit = 1ull << vm;
    for (auto it = displaced_.begin(); it != displaced_.end();) {
      if ((it->second &= ~vm_bit) == 0) {
        it = displaced_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (footprint_lines(vm) == 0) return 0;
  // Per-line teardown, exactly invalidate()'s bookkeeping.  The LRU
  // mirrors are deliberately untouched (same contract as invalidate():
  // invalid ways are preferred via the valid mask, and refills re-sync
  // the mirrors through touches before a full-set victim is needed).
  std::uint64_t dropped = 0;
  for (unsigned set = 0; set < sets_; ++set) {
    std::uint64_t mask = valid_[set];
    while (mask != 0) {
      const auto way = static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
      const std::size_t idx = line_index(set, way);
      if (owners_[idx] != vm) continue;
      const std::uint64_t bit = 1ull << way;
      valid_[set] &= ~bit;
      dirty_[set] &= ~bit;
      tags_[idx] = 0;
      stamps_[idx] = 0;
      owners_[idx] = -1;
      ++dropped;
    }
  }
  KYOTO_DCHECK(dropped == vm_footprint_[static_cast<std::size_t>(vm)]);
  valid_lines_ -= dropped;
  vm_footprint_[static_cast<std::size_t>(vm)] = 0;
  return dropped;
}

void SetAssocCache::set_partition(int vm, unsigned first_way, unsigned n_ways) {
  KYOTO_CHECK_MSG(vm >= 0, "partition requires a concrete vm id");
  KYOTO_CHECK_MSG(first_way + n_ways <= geometry_.ways,
                  "partition [" << first_way << ", " << first_way + n_ways
                                << ") exceeds " << geometry_.ways << " ways");
  KYOTO_CHECK_MSG(n_ways >= 1, "partition must contain at least one way");
  if (static_cast<std::size_t>(vm) >= partitions_.size()) {
    partitions_.resize(static_cast<std::size_t>(vm) + 1);
  }
  partitions_[static_cast<std::size_t>(vm)] = Partition{first_way, n_ways};
  fast_fill_ = false;
}

void SetAssocCache::clear_partitions() {
  partitions_.clear();
  fast_fill_ = fast_fill_allowed_ && replacement_ == ReplacementKind::kLru;
}

void SetAssocCache::grow_core_slots(int core) {
  per_core_.resize(static_cast<std::size_t>(core) + 1);
}

void SetAssocCache::grow_vm_slots(int vm) {
  // Safety net for ids beyond the pre-sized slots (never taken when
  // the owning MemorySystem reserves slots as VMs are admitted).
  per_vm_.resize(static_cast<std::size_t>(vm) + 1);
  vm_footprint_.resize(static_cast<std::size_t>(vm) + 1, 0);
  vm_pollution_.resize(static_cast<std::size_t>(vm) + 1);
}

const VmPollution& SetAssocCache::pollution_for_vm(int vm) const {
  static const VmPollution kEmpty{};
  if (vm < 0 || static_cast<std::size_t>(vm) >= vm_pollution_.size()) return kEmpty;
  return vm_pollution_[static_cast<std::size_t>(vm)];
}

std::uint64_t SetAssocCache::recount_footprint_lines(int vm) const {
  std::uint64_t count = 0;
  for (unsigned set = 0; set < sets_; ++set) {
    for (unsigned way = 0; way < ways_; ++way) {
      if ((valid_[set] >> way) & 1u) {
        count += owners_[line_index(set, way)] == vm ? 1 : 0;
      }
    }
  }
  return count;
}

std::uint64_t SetAssocCache::recount_valid_lines() const {
  std::uint64_t count = 0;
  for (unsigned set = 0; set < sets_; ++set) {
    count += static_cast<std::uint64_t>(std::popcount(valid_[set]));
  }
  return count;
}

const CacheStats& SetAssocCache::stats_for_core(int core) const {
  static const CacheStats kEmpty{};
  if (core < 0 || static_cast<std::size_t>(core) >= per_core_.size()) return kEmpty;
  return per_core_[static_cast<std::size_t>(core)];
}

const CacheStats& SetAssocCache::stats_for_vm(int vm) const {
  static const CacheStats kEmpty{};
  if (vm < 0 || static_cast<std::size_t>(vm) >= per_vm_.size()) return kEmpty;
  return per_vm_[static_cast<std::size_t>(vm)];
}

void SetAssocCache::clear_stats() {
  total_.clear();
  for (auto& s : per_core_) s.clear();
  for (auto& s : per_vm_) s.clear();
}

}  // namespace kyoto::cache
