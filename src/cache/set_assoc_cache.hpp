// A set-associative cache with pluggable replacement and optional
// way-partitioning.
//
// This single class models every level of the hierarchy.  For the
// shared LLC it additionally attributes accesses/misses to the
// requesting core (feeding the PMC layer) and to the owning VM
// (ground-truth pollution accounting and the UCP-style [27]
// way-partitioning ablation).
//
// Hot-path design.  Millions of simulated accesses per figure funnel
// through this class, so the engine is built around four ideas:
//
//  * structure-of-arrays: line metadata lives in parallel arrays
//    (tags / stamps / owners, row-major by set) plus one valid and
//    one dirty bitmask word per set, so a probe touches contiguous
//    words instead of `ways` 32-byte structs;
//  * branch-free scans: tag matching builds a match bitmask and
//    victim selection uses conditional-move min-reduction, so random
//    hit/victim positions do not train-wreck the host branch
//    predictor;
//  * inline hit path: `access_hot` (hit test + stats + recency) lives
//    in the header and returns a bare bool; the miss path is one
//    out-of-line call.  The full LookupResult (evicted address as
//    std::optional) is only materialized by the compat `access`;
//  * O(1) observability: footprint_lines/occupancy are answered from
//    counters maintained on fill/evict/invalidate, not O(lines)
//    scans, so monitors can poll them per tick per VM.
//
// Private caches (L1/L2) skip per-core/per-VM attribution and owner
// tracking entirely (`track_attribution = false`): nothing ever reads
// them — hardware PMCs count LLC events only, and pollution
// accounting is an LLC concept.
//
// The pre-overhaul engine is preserved verbatim in
// reference_cache.hpp as a behavioral oracle; golden tests assert
// both produce identical hit/miss/eviction sequences for every
// replacement policy.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace kyoto::cache {

/// Identifies who performed an access, for attribution and partitioning.
struct Requester {
  int core = 0;  // physical core issuing the access (PMC attribution)
  int vm = -1;   // owning VM, or -1 when unknown (partitioning + ground truth)
};

/// Ground-truth pollution events for one VM, maintained exactly by the
/// simulated cache on its (already out-of-line) miss/eviction path.
/// These are the quantities the paper's monitors can only *estimate*
/// from PMCs; the simulator counts them by construction:
///
///  * cross_evictions_inflicted — valid lines owned by OTHER VMs that
///    this VM's fills displaced (the act of polluting);
///  * cross_evictions_suffered — this VM's valid lines displaced by
///    another requester (being polluted);
///  * contention_misses — misses on lines this VM held until another
///    requester displaced them (the re-miss a cross-eviction causes).
///    `misses - contention_misses` is therefore the VM's *intrinsic*
///    miss count: what it would (to first order) have missed with the
///    LLC to itself.
///
/// Only tracked when attribution is on; contention-miss classification
/// covers vm ids < kPollutionVmTracked (footprints and the two
/// eviction counters are exact for every id).
struct VmPollution {
  std::uint64_t cross_evictions_inflicted = 0;
  std::uint64_t cross_evictions_suffered = 0;
  std::uint64_t contention_misses = 0;
};

/// Result of one cache lookup-with-fill.
struct LookupResult {
  bool hit = false;
  /// Line displaced by the fill (valid only when a miss evicted one).
  std::optional<Address> evicted;
};

/// Pre-sizing hints for the per-core / per-VM statistics slots, so the
/// access path indexes them without a resize.  The defaults
/// comfortably cover direct construction in tests and tools;
/// MemorySystem passes the exact core count from the topology and
/// grows VM slots via reserve_vm_slots as the hypervisor admits VMs.
struct StatSlotHints {
  int cores = 64;
  int vms = 64;
};

class SetAssocCache {
 public:
  /// `name` labels the cache in logs ("L1#3", "LLC#0"); `seed` drives
  /// random/bimodal replacement decisions deterministically.  With
  /// `track_attribution` false the cache keeps only aggregate stats:
  /// per-core/per-VM counters stay zero and footprint_lines reports 0
  /// (private-cache mode; the shared LLC must pass true).
  SetAssocCache(std::string name, CacheGeometry geometry, ReplacementKind replacement,
                std::uint64_t seed = 1, StatSlotHints slots = {},
                bool track_attribution = true);

  /// Looks up the line containing `addr`; on miss, fills it (evicting
  /// a victim if the set is full).  `write` marks the line dirty.
  LookupResult access(Address addr, bool write, const Requester& requester);

  /// Hot-path variant of `access`: identical cache-state transition
  /// and statistics, but reports only hit/miss instead of
  /// materializing the evicted address.
  bool access_hot(Address addr, bool write, const Requester& requester) {
    const unsigned set = set_index(addr);
    const Address tag = tag_of(addr);
    const unsigned way = find(set, tag);
    if (way != kNoWay) {
      commit_hit(set, way, write, requester);
      return true;
    }
    commit_miss(set, tag, write, requester);
    return false;
  }

  // --- engine-internal split of access_hot ---------------------------
  // The fused multi-level miss walk (AccessContext::
  // access_line_multilevel) probes every level with precomputed set
  // indices before performing any fill, so the probe/commit halves of
  // access_hot are exposed individually.  commit_hit(probe result) or
  // commit_miss composed after probe_way is exactly access_hot — the
  // walk reorders work *across* caches, never within one, which is
  // why fused results are bit-identical (golden + random-oracle
  // suites pin it).

  /// Sentinel returned by probe_way when the tag is not resident.
  static constexpr unsigned kWayMiss = ~0u;

  /// Pure lookup: way holding (set, tag) or kWayMiss.  No state
  /// change, no statistics.
  unsigned probe_way(unsigned set, Address tag) const { return find(set, tag); }

  /// Completes a hit found by probe_way: statistics + dirty + recency.
  void commit_hit(unsigned set, unsigned way, bool write, const Requester& requester) {
    ++total_.accesses;
    ++total_.hits;
    if (track_attribution_) attribute_hit(requester);
    // Branchless dirty update: OR-ing 0 for loads leaves the word
    // unchanged, and the store/load decision is data-random in every
    // mix — a branch here mispredicts constantly.
    dirty_[set] |= static_cast<std::uint64_t>(write) << way;
    touch(set, way);
  }

  /// Completes a miss: statistics + victim selection + fill.
  void commit_miss(unsigned set, Address tag, bool write, const Requester& requester) {
    ++total_.accesses;
    ++total_.misses;
    miss_fill(set, tag, write, requester);
  }

  /// Inline commit_miss for attribution-free caches (the private
  /// L1/L2): when the cache is plain-LRU/unpartitioned, the whole
  /// fill runs inline via miss_fill_impl<true, false> — no
  /// out-of-line call, so the fused walk's L1+L2 fills schedule as
  /// straight-line code.  Anything else (non-LRU policy, partitions
  /// installed, attribution on) falls back to the general miss_fill;
  /// the guard re-checks the live flags, so a partition installed
  /// later is honored on the next access, exactly like the
  /// out-of-line path.
  void commit_miss_private_hot(unsigned set, Address tag, bool write,
                               const Requester& requester) {
    ++total_.accesses;
    ++total_.misses;
    if (!fast_fill_ || track_attribution_) [[unlikely]] {
      miss_fill(set, tag, write, requester);
      return;
    }
    miss_fill_impl<true, false>(set, tag, write, requester);
  }

  /// Same, for the attribution cache (the LLC): inline plain-LRU fill
  /// with the full per-core/per-VM/pollution bookkeeping compiled in.
  void commit_miss_attr_hot(unsigned set, Address tag, bool write,
                            const Requester& requester) {
    ++total_.accesses;
    ++total_.misses;
    if (!fast_fill_ || !track_attribution_) [[unlikely]] {
      miss_fill(set, tag, write, requester);
      return;
    }
    miss_fill_impl<true, true>(set, tag, write, requester);
  }

  /// True when fills run the compile-time-pruned LRU path (LRU
  /// replacement, no way partitions).  Exposed for tests.
  bool fast_fill() const { return fast_fill_; }

  /// Engine knob for benches and equivalence tests: disables (or
  /// re-enables) the fill fast paths — the compile-time-pruned LRU
  /// fill and the nibble-order O(1) victim — so the cache executes
  /// the general miss_fill_impl<false, *> bodies, exactly the PR 4
  /// fill code.  Results are bit-identical either way (that is what
  /// the knob lets tests assert).  Re-enabling rebuilds the nibble
  /// order from the stamps, so it is valid at any point in a run.
  void set_fill_fast_paths(bool enabled);

  /// Set index of a *line number* (addr >> line-shift).  Only valid
  /// for power-of-two geometries (set_mask() below); the fused walk
  /// checks via MemorySystem's geometry screen.
  unsigned set_of_line(Address line) const {
    return static_cast<unsigned>(line & set_mask_);
  }

  bool pow2_geometry() const { return pow2_geometry_; }
  unsigned line_shift() const { return line_shift_; }

  /// Hints the host CPU to pull the set holding `addr` into its own
  /// cache.  Issued by the memory system for the next levels of the
  /// hierarchy while the current level is still probing, hiding the
  /// host-memory latency of large LLC metadata arrays.  Semantically
  /// a no-op.
  void prefetch_set(Address addr) const { prefetch_row(set_index(addr)); }

  /// Same, from a precomputed set index (the fused walk's form).
  /// Covers the *whole* tags/stamps rows — 8 entries per host line,
  /// so a 20-way row spans three lines and the probe/victim scan
  /// touches all of them.
  void prefetch_row(unsigned set) const {
    const std::size_t row = line_index(set, 0);
    for (unsigned d = 0; d < ways_; d += 8) {
      __builtin_prefetch(&tags_[row + d]);
      __builtin_prefetch(&stamps_[row + d]);
    }
    __builtin_prefetch(&valid_[set]);
  }

  /// Stages the state a *fill* touches beyond the probe's rows: the
  /// dirty word and (attribution caches only) the owners row.  The
  /// fused walk issues this once it knows the level missed — issuing
  /// it earlier would drag fill-only lines through the host cache on
  /// every probe that hits.
  void prefetch_fill_row(unsigned set) const {
    __builtin_prefetch(&dirty_[set], 1);
    if (track_attribution_) {
      const std::size_t row = line_index(set, 0);
      __builtin_prefetch(&owners_[row], 1);
      if (ways_ > 16) __builtin_prefetch(&owners_[row + 16], 1);
    }
  }

  /// Lookup without any state change (no fill, no recency update).
  bool probe(Address addr) const {
    return find(set_index(addr), tag_of(addr)) != kNoWay;
  }

  /// Drops every line (power-on state).  Statistics are preserved.
  void invalidate_all();

  /// Invalidates the single line containing `addr`, if present.
  void invalidate(Address addr);

  /// Fraction of valid lines (for tests / warm-up detection).  O(1):
  /// answered from the incrementally maintained valid-line counter.
  double occupancy() const {
    return static_cast<double>(valid_lines_) / static_cast<double>(tags_.size());
  }

  /// Number of valid lines owned by `vm` (ground-truth footprint).
  /// O(1): answered from per-VM counters maintained on fill/evict/
  /// invalidate.  Always 0 when attribution is off.
  std::uint64_t footprint_lines(int vm) const {
    if (vm < 0) return unowned_lines_;
    const auto idx = static_cast<std::size_t>(vm);
    return idx < vm_footprint_.size() ? vm_footprint_[idx] : 0;
  }

  /// Ground-truth pollution counters for `vm` (see VmPollution).
  /// VMs never seen — and any vm when attribution is off — return
  /// zeros.
  const VmPollution& pollution_for_vm(int vm) const;

  /// Contention-miss classification covers vm ids below this bound
  /// (one bit per vm in the displaced-line index).  Eviction counters
  /// and footprints are exact for every id.
  static constexpr int kPollutionVmTracked = 64;

  /// O(lines) recount of footprint_lines(vm) from the raw line state
  /// (`vm` may be -1 for unowned lines).  Test/debug oracle for the
  /// incremental counters; never called from simulation paths.
  std::uint64_t recount_footprint_lines(int vm) const;

  /// O(lines) recount of the valid-line counter behind occupancy().
  std::uint64_t recount_valid_lines() const;

  /// Ensures per-VM stat/footprint slots exist for vm ids < `vms`.
  /// Called by the memory system when the hypervisor admits VMs, so
  /// the access path never grows storage.
  void reserve_vm_slots(int vms);

  /// Invalidates every valid line owned by `vm` and purges the VM's
  /// bits from the displaced-line index — the LLC half of VM
  /// destruction.  Uses the same per-line bookkeeping as invalidate()
  /// (footprint/valid counters stay exact vs the recount oracles;
  /// pollution counters survive as statistics; no cross-eviction
  /// events are generated, so inflicted == suffered is preserved).
  /// Returns the number of lines dropped.  No-op for attribution-free
  /// caches: private levels keep their stale lines, which simply go
  /// cold — VM address spaces are disjoint, so they can never hit.
  std::uint64_t release_vm(int vm);

  // --- Way partitioning (UCP-style ablation) -------------------------
  /// Restricts fills by VM `vm` to ways [first_way, first_way+n_ways).
  /// Lookups still hit in any way.  Overwrites any previous assignment.
  void set_partition(int vm, unsigned first_way, unsigned n_ways);

  /// Removes all partitions (default: any VM may fill any way).
  void clear_partitions();

  // --- Statistics -----------------------------------------------------
  const CacheStats& stats() const { return total_; }
  /// Per-requesting-core counters (index = core id as passed in).
  const CacheStats& stats_for_core(int core) const;
  /// Per-VM counters (index = vm id); VMs never seen return zeros.
  const CacheStats& stats_for_vm(int vm) const;
  void clear_stats();

  const std::string& name() const { return name_; }
  const CacheGeometry& geometry() const { return geometry_; }
  ReplacementKind replacement() const { return replacement_; }
  bool tracks_attribution() const { return track_attribution_; }

 private:
  struct Partition {
    unsigned first_way = 0;
    unsigned n_ways = 0;  // 0 = unrestricted
  };

  /// What the miss path displaced (for the compat access()).
  struct MissInfo {
    bool evicted = false;
    Address evicted_tag = 0;
  };

  static constexpr unsigned kNoWay = ~0u;

  /// Line index of (set, way) in the parallel arrays.
  std::size_t line_index(unsigned set, unsigned way) const {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  unsigned set_index(Address addr) const {
    // Shift+mask when line size and set count are powers of two (they
    // are for every real geometry); division fallback otherwise.
    if (pow2_geometry_) {
      return static_cast<unsigned>((addr >> line_shift_) & set_mask_);
    }
    return static_cast<unsigned>((addr / geometry_.line) % sets_);
  }
  Address tag_of(Address addr) const {
    return pow2_geometry_ ? addr >> line_shift_ : addr / geometry_.line;
  }

  /// Four-lane vector of tag words (GCC/Clang vector extension: lowers
  /// to AVX2/SSE/NEON where available, scalar otherwise — the computed
  /// match mask is identical either way).
  typedef Address TagVec __attribute__((vector_size(4 * sizeof(Address))));

  /// Word-wise branch-free tag probe with a compile-time way count:
  /// each step compares four tag words at once, converts the lane
  /// compare result (~0 per equal lane) into that lane's way bit while
  /// still in the vector domain, and OR-accumulates — one horizontal
  /// reduction at the end yields the same match bitmask the scalar
  /// loop builds (at most one bit: a set never holds a tag twice).
  template <unsigned W>
  static unsigned find_fixed(const Address* tags, std::uint64_t valid, Address tag) {
    static_assert(W % 4 == 0 && W <= 64, "vector probe needs a multiple of 4 ways");
    const TagVec splat = {tag, tag, tag, tag};
    TagVec acc = {0, 0, 0, 0};
    for (unsigned w = 0; w < W; w += 4) {
      TagVec row;
      __builtin_memcpy(&row, tags + w, sizeof(row));  // rows are 8-byte aligned only
      const TagVec lane_bit = {1ull << w, 2ull << w, 4ull << w, 8ull << w};
      acc |= TagVec(row == splat) & lane_bit;  // lane compare reinterpreted unsigned
    }
    std::uint64_t match = (acc[0] | acc[1]) | (acc[2] | acc[3]);
    match &= valid;
    return match != 0 ? static_cast<unsigned>(std::countr_zero(match)) : kNoWay;
  }

  /// Way holding (set, tag), or kNoWay.  Branch-free: builds a match
  /// bitmask over the contiguous tag row (a set never holds the same
  /// tag twice, so the mask has at most one bit).  Dispatches to a
  /// constant-way specialization for the common associativities.
  unsigned find(unsigned set, Address tag) const {
    const Address* tags = &tags_[line_index(set, 0)];
    const std::uint64_t valid = valid_[set];
    switch (ways_) {
      case 4: return find_fixed<4>(tags, valid, tag);
      case 8: return find_fixed<8>(tags, valid, tag);
      case 16: return find_fixed<16>(tags, valid, tag);
      case 20: return find_fixed<20>(tags, valid, tag);
      default: break;
    }
    std::uint64_t match = 0;
    for (unsigned w = 0; w < ways_; ++w) {
      match |= static_cast<std::uint64_t>(tags[w] == tag) << w;
    }
    match &= valid;
    return match != 0 ? static_cast<unsigned>(std::countr_zero(match)) : kNoWay;
  }

  /// Marks `way` most recently used (policy-dependent).
  void touch(unsigned set, unsigned way) {
    if (replacement_ == ReplacementKind::kPlru) {
      plru_touch(set, way);
      return;
    }
    stamps_[line_index(set, way)] = ++clock_;
    if (nibble_lru_) {
      touch_nibble(set, way);
    } else if (order5_lru_) {
      touch_order5(set, way);
    }
  }

  /// Nibble-order move-to-front (plain-LRU caches with <= 16 ways):
  /// lru_order_[set] packs the set's ways by recency, nibble 0 = MRU
  /// .. nibble ways-1 = LRU, maintained in lockstep with the stamps
  /// by every touch.  Pure ALU: locate `way`'s nibble with a SWAR
  /// zero-nibble detector, slide everything more recent back one
  /// position, insert `way` at the front.
  void touch_nibble(unsigned set, unsigned way) {
    const std::uint64_t ord = lru_order_[set];
    const std::uint64_t x = ord ^ (0x1111111111111111ull * way);
    const std::uint64_t zero =
        (x - 0x1111111111111111ull) & ~x & 0x8888888888888888ull;
    const unsigned p4 = static_cast<unsigned>(std::countr_zero(zero)) & ~3u;
    const std::uint64_t below = (1ull << p4) - 1;  // nibbles more recent than way
    lru_order_[set] =
        way | ((ord & below) << 4) | (ord & ~((below << 4) | 0xFull));
  }

  /// The LRU way of a *full* nibble-ordered set in O(1): the nibble
  /// at position ways-1.  Bit-identical to the min-stamp scan — for a
  /// full plain-LRU set every way was touched with a unique,
  /// strictly increasing stamp, so stamp order and nibble order are
  /// the same permutation.
  unsigned victim_nibble(unsigned set) const {
    return static_cast<unsigned>(lru_order_[set] >> ((ways_ - 1) * 4)) & 0xFu;
  }

  /// Two-word 5-bit-field recency order for plain-LRU caches with 17
  /// to 24 ways (the paper machine's 20-way LLC): the same
  /// move-to-front scheme as touch_nibble, widened to 5-bit way
  /// fields, 12 per 64-bit word (bits 60..63 stay zero).  Word 0 holds
  /// recency positions 0..11 (field 0 = MRU), word 1 positions 12..23;
  /// fields beyond ways-1 park the sentinel 0x1F, which never matches
  /// a real way.
  static constexpr std::uint64_t kOnes5 = 0x0084210842108421ull;  // bit 5k, k = 0..11
  static constexpr std::uint64_t kWord5Mask = (1ull << 60) - 1;

  /// Bit offset (5 * field) of `way`'s field in `word`, or kNoWay when
  /// the way is not in this word.  SWAR zero-field detector: the
  /// lowest flagged field is exact, and a word with no matching field
  /// produces no flags at all, so the word-selection test is safe.
  static unsigned locate5(std::uint64_t word, unsigned way) {
    const std::uint64_t x = word ^ (kOnes5 * way);
    const std::uint64_t zero = (x - kOnes5) & ~x & (kOnes5 << 4);
    if (zero == 0) return kNoWay;
    return static_cast<unsigned>(std::countr_zero(zero)) / 5 * 5;
  }

  void touch_order5(unsigned set, unsigned way) {
    std::uint64_t* w = &lru_order5_[static_cast<std::size_t>(set) * 2];
    const unsigned b0 = locate5(w[0], way);
    if (b0 != kNoWay) {
      // Slide within word 0: fields more recent than `way` move back
      // one position, `way` becomes MRU, word 1 is untouched.
      const std::uint64_t below = (1ull << b0) - 1;
      w[0] = way | ((w[0] & below) << 5) | (w[0] & ~((below << 5) | 0x1Full));
      return;
    }
    const unsigned b1 = locate5(w[1], way);
    KYOTO_DCHECK(b1 != kNoWay);
    // Cross-word slide: word 0 shifts back as a whole (its LRU field
    // spills into word 1's front), word 1 slides up to `way`'s field.
    const std::uint64_t below = (1ull << b1) - 1;
    const std::uint64_t spill = (w[0] >> 55) & 0x1Full;
    w[0] = ((w[0] << 5) | way) & kWord5Mask;
    w[1] = spill | ((w[1] & below) << 5) | (w[1] & ~((below << 5) | 0x1Full));
  }

  /// The LRU way of a *full* 5-bit-ordered set in O(1): the field at
  /// global recency position ways-1, which lives in word 1 for every
  /// 17..24-way geometry.  Same stamp-order equivalence argument as
  /// victim_nibble.
  unsigned victim_order5(unsigned set) const {
    return static_cast<unsigned>(lru_order5_[static_cast<std::size_t>(set) * 2 + 1] >>
                                 ((ways_ - 13) * 5)) &
           0x1Fu;
  }

  void attribute_hit(const Requester& req) {
    CacheStats& core_stats = core_slot(req.core);
    ++core_stats.accesses;
    ++core_stats.hits;
    if (req.vm >= 0) {
      CacheStats& vm_stats = vm_slot(req.vm);
      ++vm_stats.accesses;
      ++vm_stats.hits;
    }
  }

  void plru_touch(unsigned set, unsigned way);
  /// Re-initializes every nibble-order word to the identity
  /// permutation (construction / invalidate_all).
  void reset_lru_order();
  /// Same for the two-word 5-bit layout.
  void reset_lru_order5();
  /// Victim selection + fill + eviction bookkeeping.  Dispatches to a
  /// compile-time-pruned instantiation when the cache is plain LRU
  /// with no partitions (fast_fill_): one body, two instantiations —
  /// miss_fill_impl<true> has the DIP/partition/insertion-policy
  /// branches folded away, miss_fill_impl<false> is the general form.
  /// Bit-identical by construction and pinned by the golden +
  /// random-oracle suites.
  MissInfo miss_fill(unsigned set, Address tag, bool write, const Requester& requester);
  template <bool kFastLru, bool kAttr>
  MissInfo miss_fill_impl(unsigned set, Address tag, bool write, const Requester& requester);
  unsigned pick_victim(unsigned set, unsigned first_way, unsigned end_way);
  /// LRU min-stamp scan over a full unpartitioned set with a
  /// compile-time way count (the fast-fill victim path): the 4-lane
  /// min-reduction of pick_victim with the way count known at compile
  /// time — identical tie-breaking (strict `<` per ascending lane,
  /// lexicographic merges), fully unrolled.  In the header so the
  /// inline fill paths can use it.
  template <unsigned W>
  unsigned pick_victim_lru_fixed(const std::uint64_t* stamps) const {
    static_assert(W % 4 == 0 && W >= 8, "fixed victim scan wants 4-lane multiples");
    unsigned v0 = 0, v1 = 1, v2 = 2, v3 = 3;
    std::uint64_t b0 = stamps[0], b1 = stamps[1], b2 = stamps[2], b3 = stamps[3];
    for (unsigned w = 4; w < W; w += 4) {
      bool lt;
      lt = stamps[w] < b0;     v0 = lt ? w : v0;     b0 = lt ? stamps[w] : b0;
      lt = stamps[w + 1] < b1; v1 = lt ? w + 1 : v1; b1 = lt ? stamps[w + 1] : b1;
      lt = stamps[w + 2] < b2; v2 = lt ? w + 2 : v2; b2 = lt ? stamps[w + 2] : b2;
      lt = stamps[w + 3] < b3; v3 = lt ? w + 3 : v3; b3 = lt ? stamps[w + 3] : b3;
    }
    bool take;
    take = b1 < b0 || (b1 == b0 && v1 < v0);
    v0 = take ? v1 : v0;
    b0 = take ? b1 : b0;
    take = b3 < b2 || (b3 == b2 && v3 < v2);
    v2 = take ? v3 : v2;
    b2 = take ? b3 : b2;
    take = b2 < b0 || (b2 == b0 && v2 < v0);
    return take ? v2 : v0;
  }
  bool set_uses_bip(unsigned set) const;

  VmPollution& pollution_slot(int vm) {
    KYOTO_DCHECK(vm >= 0);
    if (static_cast<std::size_t>(vm) >= vm_pollution_.size()) grow_vm_slots(vm);
    return vm_pollution_[static_cast<std::size_t>(vm)];
  }
  CacheStats& core_slot(int core) {
    KYOTO_DCHECK(core >= 0);
    if (static_cast<std::size_t>(core) >= per_core_.size()) grow_core_slots(core);
    return per_core_[static_cast<std::size_t>(core)];
  }
  CacheStats& vm_slot(int vm) {
    KYOTO_DCHECK(vm >= 0);
    if (static_cast<std::size_t>(vm) >= per_vm_.size()) grow_vm_slots(vm);
    return per_vm_[static_cast<std::size_t>(vm)];
  }
  void grow_core_slots(int core);  // cold path; never taken when pre-sized
  void grow_vm_slots(int vm);      // cold path; never taken when pre-sized

  std::string name_;
  CacheGeometry geometry_;
  ReplacementKind replacement_;
  unsigned sets_ = 0;
  unsigned ways_ = 0;
  bool pow2_geometry_ = false;
  bool track_attribution_ = true;
  unsigned line_shift_ = 0;   // log2(line) when pow2_geometry_
  Address set_mask_ = 0;      // sets-1 when pow2_geometry_

  // SoA line state, row-major by set.
  std::vector<Address> tags_;
  std::vector<std::uint64_t> stamps_;   // recency (LRU) or MRU bit (PLRU)
  std::vector<std::int32_t> owners_;    // owning vm id, -1 = unowned
  std::vector<std::uint64_t> valid_;    // one bit per way, one word per set
  std::vector<std::uint64_t> dirty_;    // one bit per way, one word per set

  Rng rng_;
  std::uint64_t clock_ = 0;  // recency stamp source
  /// Fills may take the pruned LRU path: plain LRU and no partition
  /// installed (maintained by the constructor and set_partition/
  /// clear_partitions).
  bool fast_fill_ = false;
  /// User knob (set_fill_fast_paths): when false, the fast paths stay
  /// off regardless of policy/partition state — set_partition/
  /// clear_partitions recompute fast_fill_ from BOTH, so clearing a
  /// partition cannot silently re-enable a disabled engine mode.
  bool fast_fill_allowed_ = true;
  /// Plain-LRU caches with <= 16 ways mirror recency into per-set
  /// nibble-order words (lru_order_), so full-set victim selection is
  /// two ALU ops instead of an O(ways) stamp scan.  Stamps stay
  /// authoritative for every other policy and for partitioned victim
  /// ranges.
  bool nibble_lru_ = false;
  std::vector<std::uint64_t> lru_order_;  // per set: ways by recency, 4-bit fields
  /// Plain-LRU caches with 17..24 ways (the 20-way LLC) keep the same
  /// recency mirror in two 5-bit-field words per set instead.
  bool order5_lru_ = false;
  std::vector<std::uint64_t> lru_order5_;  // per set: 2 words, 5-bit fields

  // Incremental footprint accounting (replaces O(lines) scans).
  std::uint64_t valid_lines_ = 0;
  std::uint64_t unowned_lines_ = 0;          // valid lines with owner -1
  std::vector<std::uint64_t> vm_footprint_;  // valid lines per vm id

  // Ground-truth pollution accounting (attribution mode only).  The
  // displaced-line index maps a line's global tag to the bitmask of
  // VMs (< kPollutionVmTracked) whose copy of that line was displaced
  // by another requester and not yet re-referenced: an entry proves a
  // later miss by that VM on that line is contention-induced, not
  // intrinsic.  Touched only on the out-of-line miss path, and only
  // by the socket partition that owns this cache, so it follows the
  // same threading contract as every other per-LLC structure.
  // The map's nodes and bucket arrays come from a per-cache pool
  // resource (common/arena.hpp): insert/erase churn on the contention
  // path recycles freed nodes instead of hitting the host heap, so a
  // warmed-up tick loop performs no allocations here.
  using DisplacedMap =
      std::unordered_map<Address, std::uint64_t, std::hash<Address>, std::equal_to<Address>,
                         PoolAllocator<std::pair<const Address, std::uint64_t>>>;
  std::vector<VmPollution> vm_pollution_;  // by vm id
  std::unique_ptr<PoolResource> displaced_pool_;  // stable across cache moves
  DisplacedMap displaced_;                 // tag -> victim-vm bits

  // DIP set-dueling state: a handful of leader sets are pinned to LRU
  // and to BIP; a saturating counter tracks which leader family
  // misses less and follower sets adopt the winner [17].
  int psel_ = 0;
  static constexpr int kPselMax = 1023;
  static constexpr unsigned kDuelModulus = 32;  // 2 leader sets per 32

  std::vector<Partition> partitions_;  // indexed by vm id

  CacheStats total_;
  std::vector<CacheStats> per_core_;
  std::vector<CacheStats> per_vm_;
};

/// Victim selection + fill + eviction bookkeeping — ONE body for
/// every cache mode, pruned at compile time:
///   kFastLru — plain LRU with no partitions (fast_fill_): the DIP
///     bookkeeping, partition lookup and insertion-policy dispatch
///     fold away and the victim scan unrolls for the common
///     associativities;
///   kAttr — mirrors track_attribution_: per-core/per-VM statistics,
///     owner/footprint accounting and the ground-truth pollution
///     bookkeeping compile in (LLC) or out (private caches).
/// In the header so the fused walk's inline commit paths instantiate
/// it directly; the out-of-line miss_fill dispatches over the same
/// four instantiations, so every path executes this exact code.
template <bool kFastLru, bool kAttr>
inline SetAssocCache::MissInfo SetAssocCache::miss_fill_impl(unsigned set, Address tag,
                                                             bool write,
                                                             const Requester& requester) {
  KYOTO_DCHECK(kAttr == track_attribution_);
  CacheStats* core_stats = nullptr;
  CacheStats* vm_stats = nullptr;
  if constexpr (kAttr) {
    core_stats = &core_slot(requester.core);
    ++core_stats->accesses;
    ++core_stats->misses;
    if (requester.vm >= 0) {
      vm_stats = &vm_slot(requester.vm);
      ++vm_stats->accesses;
      ++vm_stats->misses;
      // Ground-truth miss classification: if another requester
      // displaced this VM's copy of the line since it last held it,
      // this re-miss is contention-induced, not intrinsic.
      if (requester.vm < kPollutionVmTracked && !displaced_.empty()) {
        const auto it = displaced_.find(tag);
        if (it != displaced_.end()) {
          const std::uint64_t vm_bit = 1ull << requester.vm;
          if (it->second & vm_bit) {
            ++pollution_slot(requester.vm).contention_misses;
            it->second &= ~vm_bit;
            if (it->second == 0) displaced_.erase(it);
          }
        }
      }
    }
  }

  unsigned victim;
  if constexpr (kFastLru) {
    // fast_fill_: plain LRU, no partitions — the DIP bookkeeping,
    // partition lookup and insertion-policy dispatch all fold away.
    const std::uint64_t invalid =
        ~valid_[set] & (ways_ == 64 ? ~0ull : (1ull << ways_) - 1);
    if (invalid != 0) {
      victim = static_cast<unsigned>(std::countr_zero(invalid));
    } else if (nibble_lru_) {
      victim = victim_nibble(set);  // O(1): no stamp loads, no scan
    } else if (order5_lru_) {
      victim = victim_order5(set);  // O(1) for the 20-way LLC
    } else {
      const std::uint64_t* stamps = &stamps_[line_index(set, 0)];
      switch (ways_) {
        case 8: victim = pick_victim_lru_fixed<8>(stamps); break;
        case 16: victim = pick_victim_lru_fixed<16>(stamps); break;
        case 20: victim = pick_victim_lru_fixed<20>(stamps); break;
        default: victim = pick_victim(set, 0, ways_); break;
      }
    }
  } else {
    // DIP leader-set bookkeeping: a miss in an LRU leader nudges psel
    // toward BIP and vice versa.
    if (replacement_ == ReplacementKind::kDip) {
      const unsigned pos = set % kDuelModulus;
      if (pos == 0) psel_ = std::min(psel_ + 1, kPselMax);
      else if (pos == 1) psel_ = std::max(psel_ - 1, 0);
    }

    // Respect the requester VM's way partition, if any.
    unsigned first_way = 0;
    unsigned end_way = ways_;
    if (!partitions_.empty() && requester.vm >= 0 &&
        static_cast<std::size_t>(requester.vm) < partitions_.size()) {
      const Partition& p = partitions_[static_cast<std::size_t>(requester.vm)];
      if (p.n_ways > 0) {
        first_way = p.first_way;
        end_way = std::min(ways_, p.first_way + p.n_ways);
      }
    }

    victim = pick_victim(set, first_way, end_way);
  }
  const std::size_t idx = line_index(set, victim);
  const std::uint64_t bit = 1ull << victim;

  MissInfo info;
  if (valid_[set] & bit) {
    info.evicted = true;
    info.evicted_tag = tags_[idx];
    ++total_.evictions;
    const bool was_dirty = (dirty_[set] & bit) != 0;
    total_.writebacks += was_dirty ? 1 : 0;
    if constexpr (kAttr) {
      ++core_stats->evictions;
      core_stats->writebacks += was_dirty ? 1 : 0;
      if (vm_stats != nullptr) {
        ++vm_stats->evictions;
        vm_stats->writebacks += was_dirty ? 1 : 0;
      }
      // Displaced line's owner loses a footprint line.
      const int old_vm = owners_[idx];
      if (old_vm < 0) {
        --unowned_lines_;
      } else {
        KYOTO_DCHECK(static_cast<std::size_t>(old_vm) < vm_footprint_.size());
        --vm_footprint_[static_cast<std::size_t>(old_vm)];
        if (old_vm != requester.vm) {
          // Cross-VM eviction: the ground-truth pollution event.
          ++pollution_slot(old_vm).cross_evictions_suffered;
          if (requester.vm >= 0) {
            ++pollution_slot(requester.vm).cross_evictions_inflicted;
          }
          if (old_vm < kPollutionVmTracked) {
            displaced_[info.evicted_tag] |= 1ull << old_vm;
          }
        }
      }
    }
  } else {
    ++valid_lines_;
  }

  // Fill.
  tags_[idx] = tag;
  valid_[set] |= bit;
  dirty_[set] = write ? (dirty_[set] | bit) : (dirty_[set] & ~bit);
  if constexpr (kAttr) {
    const int vm = requester.vm;
    owners_[idx] = vm;
    if (vm < 0) {
      ++unowned_lines_;
    } else {
      if (static_cast<std::size_t>(vm) >= vm_footprint_.size()) {
        grow_vm_slots(vm);  // cold: only for ids beyond the reserved slots
      }
      ++vm_footprint_[static_cast<std::size_t>(vm)];
    }
  }

  if constexpr (kFastLru) {
    // LRU always inserts at MRU — in both recency mirrors.
    stamps_[idx] = ++clock_;
    if (nibble_lru_) {
      touch_nibble(set, victim);
    } else if (order5_lru_) {
      touch_order5(set, victim);
    }
    return info;
  } else {
    // Insertion recency depends on the (possibly dueled) policy:
    //   LRU/PLRU/random: insert at MRU.
    //   LIP: insert at LRU (stamp 0 => next victim unless promoted).
    //   BIP: LIP with a 1/32 chance of MRU insertion.
    bool insert_mru = true;
    switch (replacement_) {
      case ReplacementKind::kLip:
        insert_mru = false;
        break;
      case ReplacementKind::kBip:
      case ReplacementKind::kDip:
        if (set_uses_bip(set)) insert_mru = rng_.below(32) == 0;
        break;
      default:
        break;
    }
    if (insert_mru) {
      touch(set, victim);
    } else {
      stamps_[idx] = 0;
    }
    return info;
  }
}

}  // namespace kyoto::cache
