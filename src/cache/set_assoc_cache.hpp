// A set-associative cache with pluggable replacement and optional
// way-partitioning.
//
// This single class models every level of the hierarchy.  For the
// shared LLC it additionally attributes accesses/misses to the
// requesting core (feeding the PMC layer) and to the owning VM
// (ground-truth pollution accounting and the UCP-style [27]
// way-partitioning ablation).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace kyoto::cache {

/// Identifies who performed an access, for attribution and partitioning.
struct Requester {
  int core = 0;  // physical core issuing the access (PMC attribution)
  int vm = -1;   // owning VM, or -1 when unknown (partitioning + ground truth)
};

/// Result of one cache lookup-with-fill.
struct LookupResult {
  bool hit = false;
  /// Line displaced by the fill (valid only when a miss evicted one).
  std::optional<Address> evicted;
};

class SetAssocCache {
 public:
  /// `name` labels the cache in logs ("L1#3", "LLC#0"); `seed` drives
  /// random/bimodal replacement decisions deterministically.
  SetAssocCache(std::string name, CacheGeometry geometry, ReplacementKind replacement,
                std::uint64_t seed = 1);

  /// Looks up the line containing `addr`; on miss, fills it (evicting
  /// a victim if the set is full).  `write` marks the line dirty.
  LookupResult access(Address addr, bool write, const Requester& requester);

  /// Lookup without any state change (no fill, no recency update).
  bool probe(Address addr) const;

  /// Drops every line (power-on state).  Statistics are preserved.
  void invalidate_all();

  /// Invalidates the single line containing `addr`, if present.
  void invalidate(Address addr);

  /// Fraction of valid lines (for tests / warm-up detection).
  double occupancy() const;

  /// Number of valid lines owned by `vm` (ground-truth footprint).
  std::uint64_t footprint_lines(int vm) const;

  // --- Way partitioning (UCP-style ablation) -------------------------
  /// Restricts fills by VM `vm` to ways [first_way, first_way+n_ways).
  /// Lookups still hit in any way.  Overwrites any previous assignment.
  void set_partition(int vm, unsigned first_way, unsigned n_ways);

  /// Removes all partitions (default: any VM may fill any way).
  void clear_partitions();

  // --- Statistics -----------------------------------------------------
  const CacheStats& stats() const { return total_; }
  /// Per-requesting-core counters (index = core id as passed in).
  const CacheStats& stats_for_core(int core) const;
  /// Per-VM counters (index = vm id); VMs never seen return zeros.
  const CacheStats& stats_for_vm(int vm) const;
  void clear_stats();

  const std::string& name() const { return name_; }
  const CacheGeometry& geometry() const { return geometry_; }
  ReplacementKind replacement() const { return replacement_; }

 private:
  struct Line {
    Address tag = 0;
    bool valid = false;
    bool dirty = false;
    int owner_vm = -1;
    std::uint64_t stamp = 0;  // recency (LRU) or MRU bit (PLRU)
  };

  struct Partition {
    unsigned first_way = 0;
    unsigned n_ways = 0;  // 0 = unrestricted
  };

  unsigned set_index(Address addr) const {
    return static_cast<unsigned>((addr / geometry_.line) % sets_);
  }
  Address tag_of(Address addr) const { return addr / geometry_.line; }

  Line* find(unsigned set, Address tag);
  const Line* find(unsigned set, Address tag) const;
  unsigned pick_victim(unsigned set, unsigned first_way, unsigned end_way);
  void touch(unsigned set, unsigned way);
  void fill(unsigned set, unsigned way, Address tag, bool write, int vm);
  bool set_uses_bip(unsigned set) const;

  CacheStats& core_slot(int core);
  CacheStats& vm_slot(int vm);

  std::string name_;
  CacheGeometry geometry_;
  ReplacementKind replacement_;
  unsigned sets_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  Rng rng_;
  std::uint64_t clock_ = 0;  // recency stamp source

  // DIP set-dueling state: a handful of leader sets are pinned to LRU
  // and to BIP; a saturating counter tracks which leader family
  // misses less and follower sets adopt the winner [17].
  int psel_ = 0;
  static constexpr int kPselMax = 1023;
  static constexpr unsigned kDuelModulus = 32;  // 2 leader sets per 32

  std::vector<Partition> partitions_;  // indexed by vm id

  CacheStats total_;
  std::vector<CacheStats> per_core_;
  std::vector<CacheStats> per_vm_;
};

}  // namespace kyoto::cache
