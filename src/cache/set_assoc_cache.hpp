// A set-associative cache with pluggable replacement and optional
// way-partitioning.
//
// This single class models every level of the hierarchy.  For the
// shared LLC it additionally attributes accesses/misses to the
// requesting core (feeding the PMC layer) and to the owning VM
// (ground-truth pollution accounting and the UCP-style [27]
// way-partitioning ablation).
//
// Hot-path design.  Millions of simulated accesses per figure funnel
// through this class, so the engine is built around four ideas:
//
//  * structure-of-arrays: line metadata lives in parallel arrays
//    (tags / stamps / owners, row-major by set) plus one valid and
//    one dirty bitmask word per set, so a probe touches contiguous
//    words instead of `ways` 32-byte structs;
//  * branch-free scans: tag matching builds a match bitmask and
//    victim selection uses conditional-move min-reduction, so random
//    hit/victim positions do not train-wreck the host branch
//    predictor;
//  * inline hit path: `access_hot` (hit test + stats + recency) lives
//    in the header and returns a bare bool; the miss path is one
//    out-of-line call.  The full LookupResult (evicted address as
//    std::optional) is only materialized by the compat `access`;
//  * O(1) observability: footprint_lines/occupancy are answered from
//    counters maintained on fill/evict/invalidate, not O(lines)
//    scans, so monitors can poll them per tick per VM.
//
// Private caches (L1/L2) skip per-core/per-VM attribution and owner
// tracking entirely (`track_attribution = false`): nothing ever reads
// them — hardware PMCs count LLC events only, and pollution
// accounting is an LLC concept.
//
// The pre-overhaul engine is preserved verbatim in
// reference_cache.hpp as a behavioral oracle; golden tests assert
// both produce identical hit/miss/eviction sequences for every
// replacement policy.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace kyoto::cache {

/// Identifies who performed an access, for attribution and partitioning.
struct Requester {
  int core = 0;  // physical core issuing the access (PMC attribution)
  int vm = -1;   // owning VM, or -1 when unknown (partitioning + ground truth)
};

/// Ground-truth pollution events for one VM, maintained exactly by the
/// simulated cache on its (already out-of-line) miss/eviction path.
/// These are the quantities the paper's monitors can only *estimate*
/// from PMCs; the simulator counts them by construction:
///
///  * cross_evictions_inflicted — valid lines owned by OTHER VMs that
///    this VM's fills displaced (the act of polluting);
///  * cross_evictions_suffered — this VM's valid lines displaced by
///    another requester (being polluted);
///  * contention_misses — misses on lines this VM held until another
///    requester displaced them (the re-miss a cross-eviction causes).
///    `misses - contention_misses` is therefore the VM's *intrinsic*
///    miss count: what it would (to first order) have missed with the
///    LLC to itself.
///
/// Only tracked when attribution is on; contention-miss classification
/// covers vm ids < kPollutionVmTracked (footprints and the two
/// eviction counters are exact for every id).
struct VmPollution {
  std::uint64_t cross_evictions_inflicted = 0;
  std::uint64_t cross_evictions_suffered = 0;
  std::uint64_t contention_misses = 0;
};

/// Result of one cache lookup-with-fill.
struct LookupResult {
  bool hit = false;
  /// Line displaced by the fill (valid only when a miss evicted one).
  std::optional<Address> evicted;
};

/// Pre-sizing hints for the per-core / per-VM statistics slots, so the
/// access path indexes them without a resize.  The defaults
/// comfortably cover direct construction in tests and tools;
/// MemorySystem passes the exact core count from the topology and
/// grows VM slots via reserve_vm_slots as the hypervisor admits VMs.
struct StatSlotHints {
  int cores = 64;
  int vms = 64;
};

class SetAssocCache {
 public:
  /// `name` labels the cache in logs ("L1#3", "LLC#0"); `seed` drives
  /// random/bimodal replacement decisions deterministically.  With
  /// `track_attribution` false the cache keeps only aggregate stats:
  /// per-core/per-VM counters stay zero and footprint_lines reports 0
  /// (private-cache mode; the shared LLC must pass true).
  SetAssocCache(std::string name, CacheGeometry geometry, ReplacementKind replacement,
                std::uint64_t seed = 1, StatSlotHints slots = {},
                bool track_attribution = true);

  /// Looks up the line containing `addr`; on miss, fills it (evicting
  /// a victim if the set is full).  `write` marks the line dirty.
  LookupResult access(Address addr, bool write, const Requester& requester);

  /// Hot-path variant of `access`: identical cache-state transition
  /// and statistics, but reports only hit/miss instead of
  /// materializing the evicted address.
  bool access_hot(Address addr, bool write, const Requester& requester) {
    const unsigned set = set_index(addr);
    const Address tag = tag_of(addr);
    ++total_.accesses;
    const unsigned way = find(set, tag);
    if (way != kNoWay) {
      ++total_.hits;
      if (track_attribution_) attribute_hit(requester);
      if (write) dirty_[set] |= 1ull << way;  // stores only: loads skip the RMW
      touch(set, way);
      return true;
    }
    ++total_.misses;
    miss_fill(set, tag, write, requester);
    return false;
  }

  /// Hints the host CPU to pull the set holding `addr` into its own
  /// cache.  Issued by the memory system for the next levels of the
  /// hierarchy while the current level is still probing, hiding the
  /// host-memory latency of large LLC metadata arrays.  Semantically
  /// a no-op.
  void prefetch_set(Address addr) const {
    const unsigned set = set_index(addr);
    const std::size_t row = line_index(set, 0);
    __builtin_prefetch(&tags_[row]);
    __builtin_prefetch(&stamps_[row]);
    if (ways_ > 8) {  // rows longer than one host cache line
      __builtin_prefetch(&tags_[row + 8]);
      __builtin_prefetch(&stamps_[row + 8]);
    }
    __builtin_prefetch(&valid_[set]);
  }

  /// Lookup without any state change (no fill, no recency update).
  bool probe(Address addr) const {
    return find(set_index(addr), tag_of(addr)) != kNoWay;
  }

  /// Drops every line (power-on state).  Statistics are preserved.
  void invalidate_all();

  /// Invalidates the single line containing `addr`, if present.
  void invalidate(Address addr);

  /// Fraction of valid lines (for tests / warm-up detection).  O(1):
  /// answered from the incrementally maintained valid-line counter.
  double occupancy() const {
    return static_cast<double>(valid_lines_) / static_cast<double>(tags_.size());
  }

  /// Number of valid lines owned by `vm` (ground-truth footprint).
  /// O(1): answered from per-VM counters maintained on fill/evict/
  /// invalidate.  Always 0 when attribution is off.
  std::uint64_t footprint_lines(int vm) const {
    if (vm < 0) return unowned_lines_;
    const auto idx = static_cast<std::size_t>(vm);
    return idx < vm_footprint_.size() ? vm_footprint_[idx] : 0;
  }

  /// Ground-truth pollution counters for `vm` (see VmPollution).
  /// VMs never seen — and any vm when attribution is off — return
  /// zeros.
  const VmPollution& pollution_for_vm(int vm) const;

  /// Contention-miss classification covers vm ids below this bound
  /// (one bit per vm in the displaced-line index).  Eviction counters
  /// and footprints are exact for every id.
  static constexpr int kPollutionVmTracked = 64;

  /// O(lines) recount of footprint_lines(vm) from the raw line state
  /// (`vm` may be -1 for unowned lines).  Test/debug oracle for the
  /// incremental counters; never called from simulation paths.
  std::uint64_t recount_footprint_lines(int vm) const;

  /// O(lines) recount of the valid-line counter behind occupancy().
  std::uint64_t recount_valid_lines() const;

  /// Ensures per-VM stat/footprint slots exist for vm ids < `vms`.
  /// Called by the memory system when the hypervisor admits VMs, so
  /// the access path never grows storage.
  void reserve_vm_slots(int vms);

  // --- Way partitioning (UCP-style ablation) -------------------------
  /// Restricts fills by VM `vm` to ways [first_way, first_way+n_ways).
  /// Lookups still hit in any way.  Overwrites any previous assignment.
  void set_partition(int vm, unsigned first_way, unsigned n_ways);

  /// Removes all partitions (default: any VM may fill any way).
  void clear_partitions();

  // --- Statistics -----------------------------------------------------
  const CacheStats& stats() const { return total_; }
  /// Per-requesting-core counters (index = core id as passed in).
  const CacheStats& stats_for_core(int core) const;
  /// Per-VM counters (index = vm id); VMs never seen return zeros.
  const CacheStats& stats_for_vm(int vm) const;
  void clear_stats();

  const std::string& name() const { return name_; }
  const CacheGeometry& geometry() const { return geometry_; }
  ReplacementKind replacement() const { return replacement_; }
  bool tracks_attribution() const { return track_attribution_; }

 private:
  struct Partition {
    unsigned first_way = 0;
    unsigned n_ways = 0;  // 0 = unrestricted
  };

  /// What the miss path displaced (for the compat access()).
  struct MissInfo {
    bool evicted = false;
    Address evicted_tag = 0;
  };

  static constexpr unsigned kNoWay = ~0u;

  /// Line index of (set, way) in the parallel arrays.
  std::size_t line_index(unsigned set, unsigned way) const {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  unsigned set_index(Address addr) const {
    // Shift+mask when line size and set count are powers of two (they
    // are for every real geometry); division fallback otherwise.
    if (pow2_geometry_) {
      return static_cast<unsigned>((addr >> line_shift_) & set_mask_);
    }
    return static_cast<unsigned>((addr / geometry_.line) % sets_);
  }
  Address tag_of(Address addr) const {
    return pow2_geometry_ ? addr >> line_shift_ : addr / geometry_.line;
  }

  /// Four-lane vector of tag words (GCC/Clang vector extension: lowers
  /// to AVX2/SSE/NEON where available, scalar otherwise — the computed
  /// match mask is identical either way).
  typedef Address TagVec __attribute__((vector_size(4 * sizeof(Address))));

  /// Word-wise branch-free tag probe with a compile-time way count:
  /// each step compares four tag words at once, converts the lane
  /// compare result (~0 per equal lane) into that lane's way bit while
  /// still in the vector domain, and OR-accumulates — one horizontal
  /// reduction at the end yields the same match bitmask the scalar
  /// loop builds (at most one bit: a set never holds a tag twice).
  template <unsigned W>
  static unsigned find_fixed(const Address* tags, std::uint64_t valid, Address tag) {
    static_assert(W % 4 == 0 && W <= 64, "vector probe needs a multiple of 4 ways");
    const TagVec splat = {tag, tag, tag, tag};
    TagVec acc = {0, 0, 0, 0};
    for (unsigned w = 0; w < W; w += 4) {
      TagVec row;
      __builtin_memcpy(&row, tags + w, sizeof(row));  // rows are 8-byte aligned only
      const TagVec lane_bit = {1ull << w, 2ull << w, 4ull << w, 8ull << w};
      acc |= TagVec(row == splat) & lane_bit;  // lane compare reinterpreted unsigned
    }
    std::uint64_t match = (acc[0] | acc[1]) | (acc[2] | acc[3]);
    match &= valid;
    return match != 0 ? static_cast<unsigned>(std::countr_zero(match)) : kNoWay;
  }

  /// Way holding (set, tag), or kNoWay.  Branch-free: builds a match
  /// bitmask over the contiguous tag row (a set never holds the same
  /// tag twice, so the mask has at most one bit).  Dispatches to a
  /// constant-way specialization for the common associativities.
  unsigned find(unsigned set, Address tag) const {
    const Address* tags = &tags_[line_index(set, 0)];
    const std::uint64_t valid = valid_[set];
    switch (ways_) {
      case 4: return find_fixed<4>(tags, valid, tag);
      case 8: return find_fixed<8>(tags, valid, tag);
      case 16: return find_fixed<16>(tags, valid, tag);
      case 20: return find_fixed<20>(tags, valid, tag);
      default: break;
    }
    std::uint64_t match = 0;
    for (unsigned w = 0; w < ways_; ++w) {
      match |= static_cast<std::uint64_t>(tags[w] == tag) << w;
    }
    match &= valid;
    return match != 0 ? static_cast<unsigned>(std::countr_zero(match)) : kNoWay;
  }

  /// Marks `way` most recently used (policy-dependent).
  void touch(unsigned set, unsigned way) {
    if (replacement_ == ReplacementKind::kPlru) {
      plru_touch(set, way);
      return;
    }
    stamps_[line_index(set, way)] = ++clock_;
  }

  void attribute_hit(const Requester& req) {
    CacheStats& core_stats = core_slot(req.core);
    ++core_stats.accesses;
    ++core_stats.hits;
    if (req.vm >= 0) {
      CacheStats& vm_stats = vm_slot(req.vm);
      ++vm_stats.accesses;
      ++vm_stats.hits;
    }
  }

  void plru_touch(unsigned set, unsigned way);
  MissInfo miss_fill(unsigned set, Address tag, bool write, const Requester& requester);
  unsigned pick_victim(unsigned set, unsigned first_way, unsigned end_way);
  bool set_uses_bip(unsigned set) const;

  VmPollution& pollution_slot(int vm) {
    KYOTO_DCHECK(vm >= 0);
    if (static_cast<std::size_t>(vm) >= vm_pollution_.size()) grow_vm_slots(vm);
    return vm_pollution_[static_cast<std::size_t>(vm)];
  }
  CacheStats& core_slot(int core) {
    KYOTO_DCHECK(core >= 0);
    if (static_cast<std::size_t>(core) >= per_core_.size()) grow_core_slots(core);
    return per_core_[static_cast<std::size_t>(core)];
  }
  CacheStats& vm_slot(int vm) {
    KYOTO_DCHECK(vm >= 0);
    if (static_cast<std::size_t>(vm) >= per_vm_.size()) grow_vm_slots(vm);
    return per_vm_[static_cast<std::size_t>(vm)];
  }
  void grow_core_slots(int core);  // cold path; never taken when pre-sized
  void grow_vm_slots(int vm);      // cold path; never taken when pre-sized

  std::string name_;
  CacheGeometry geometry_;
  ReplacementKind replacement_;
  unsigned sets_ = 0;
  unsigned ways_ = 0;
  bool pow2_geometry_ = false;
  bool track_attribution_ = true;
  unsigned line_shift_ = 0;   // log2(line) when pow2_geometry_
  Address set_mask_ = 0;      // sets-1 when pow2_geometry_

  // SoA line state, row-major by set.
  std::vector<Address> tags_;
  std::vector<std::uint64_t> stamps_;   // recency (LRU) or MRU bit (PLRU)
  std::vector<std::int32_t> owners_;    // owning vm id, -1 = unowned
  std::vector<std::uint64_t> valid_;    // one bit per way, one word per set
  std::vector<std::uint64_t> dirty_;    // one bit per way, one word per set

  Rng rng_;
  std::uint64_t clock_ = 0;  // recency stamp source

  // Incremental footprint accounting (replaces O(lines) scans).
  std::uint64_t valid_lines_ = 0;
  std::uint64_t unowned_lines_ = 0;          // valid lines with owner -1
  std::vector<std::uint64_t> vm_footprint_;  // valid lines per vm id

  // Ground-truth pollution accounting (attribution mode only).  The
  // displaced-line index maps a line's global tag to the bitmask of
  // VMs (< kPollutionVmTracked) whose copy of that line was displaced
  // by another requester and not yet re-referenced: an entry proves a
  // later miss by that VM on that line is contention-induced, not
  // intrinsic.  Touched only on the out-of-line miss path, and only
  // by the socket partition that owns this cache, so it follows the
  // same threading contract as every other per-LLC structure.
  std::vector<VmPollution> vm_pollution_;            // by vm id
  std::unordered_map<Address, std::uint64_t> displaced_;  // tag -> victim-vm bits

  // DIP set-dueling state: a handful of leader sets are pinned to LRU
  // and to BIP; a saturating counter tracks which leader family
  // misses less and follower sets adopt the winner [17].
  int psel_ = 0;
  static constexpr int kPselMax = 1023;
  static constexpr unsigned kDuelModulus = 32;  // 2 leader sets per 32

  std::vector<Partition> partitions_;  // indexed by vm id

  CacheStats total_;
  std::vector<CacheStats> per_core_;
  std::vector<CacheStats> per_vm_;
};

}  // namespace kyoto::cache
