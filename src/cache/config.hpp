// Cache-hierarchy geometry and latency configuration.
//
// Defaults reproduce the paper's experimental machine (Table 1: Dell /
// Intel Xeon E5-1603 v3) and its lmbench-measured latencies (§2.2.4:
// ~4 cycles L1, 12 L2, 45 LLC, 180 main memory).  Because the
// simulator executes instructions one at a time, experiments use a
// geometrically scaled copy of the machine (same associativities and
// latencies, sizes divided by `scale`) so working sets load within a
// scheduler slice exactly as they do on the real machine.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"
#include "mem/access.hpp"

namespace kyoto::cache {

/// Replacement / insertion policy of a set-associative cache.
/// kLru is the baseline used throughout the paper's evaluation; the
/// others implement the related-work policies (§6: DIP/BIP [17,19])
/// for the replacement-policy ablation bench.
enum class ReplacementKind : unsigned char {
  kLru,     // exact least-recently-used
  kPlru,    // bit-PLRU (MRU-bit approximation)
  kRandom,  // uniform random victim
  kLip,     // LRU-insertion policy (insert at LRU position)
  kBip,     // bimodal insertion [17]: LIP with occasional MRU insertion
  kDip,     // dynamic insertion [17]: set-dueling between LRU and BIP
};

const char* replacement_name(ReplacementKind kind);

/// Geometry of one cache level.
struct CacheGeometry {
  Bytes size = 0;        // total capacity in bytes
  unsigned ways = 1;     // associativity
  Bytes line = mem::kLineBytes;

  unsigned sets() const {
    KYOTO_CHECK_MSG(size % (line * ways) == 0,
                    "cache size must be a multiple of line*ways");
    return static_cast<unsigned>(size / (line * ways));
  }
};

/// Where an access was served from.
enum class CacheLevel : unsigned char { kL1, kL2, kLlc, kMemLocal, kMemRemote };

const char* cache_level_name(CacheLevel level);

/// Per-core hardware next-line prefetcher (optional extension; the
/// calibrated paper experiments run with it off and model latency
/// hiding through the per-workload MLP factor instead).
struct PrefetchConfig {
  bool enabled = false;
  /// Lines fetched ahead on each demand miss that reaches the LLC.
  unsigned degree = 2;
};

/// Shared per-socket memory bus (optional extension): each line
/// transferred from DRAM occupies the bus for `transfer_cycles`, so
/// concurrent miss streams from different cores queue behind each
/// other — the bandwidth-contention channel (FSB/QPI in §2.1) that
/// pure cache modelling misses.
struct MemoryBusConfig {
  bool enabled = false;
  Cycles transfer_cycles = 8;
};

/// Full memory-system configuration for one machine.
struct MemSystemConfig {
  CacheGeometry l1{32_KiB, 8};    // L1D 32 KB, 8-way (Table 1)
  CacheGeometry l2{256_KiB, 8};   // L2 unified 256 KB, 8-way
  CacheGeometry llc{10240_KiB, 20};  // LLC 10 MB, 20-way
  Cycles lat_l1 = 4;
  Cycles lat_l2 = 12;
  Cycles lat_llc = 45;
  Cycles lat_mem_local = 180;
  Cycles lat_mem_remote = 300;    // remote NUMA access (PowerEdge R420, Fig 9)
  ReplacementKind llc_replacement = ReplacementKind::kLru;
  ReplacementKind private_replacement = ReplacementKind::kLru;
  PrefetchConfig prefetch;
  MemoryBusConfig bus;

  /// Returns a copy with all capacities divided by `factor` (geometry
  /// preserved: associativity and line size unchanged, so the set
  /// count shrinks).  Latencies are unchanged — the scaled machine is
  /// "the same silicon with fewer sets".
  MemSystemConfig scaled(unsigned factor) const {
    KYOTO_CHECK_MSG(factor > 0, "scale factor must be positive");
    MemSystemConfig c = *this;
    c.l1.size /= factor;
    c.l2.size /= factor;
    c.llc.size /= factor;
    KYOTO_CHECK_MSG(c.l1.size >= c.l1.line * c.l1.ways, "L1 scaled below one set");
    KYOTO_CHECK_MSG(c.l2.size >= c.l2.line * c.l2.ways, "L2 scaled below one set");
    KYOTO_CHECK_MSG(c.llc.size >= c.llc.line * c.llc.ways, "LLC scaled below one set");
    return c;
  }

  /// Latency for an access served at `level`.
  Cycles latency(CacheLevel level) const {
    switch (level) {
      case CacheLevel::kL1: return lat_l1;
      case CacheLevel::kL2: return lat_l2;
      case CacheLevel::kLlc: return lat_llc;
      case CacheLevel::kMemLocal: return lat_mem_local;
      case CacheLevel::kMemRemote: return lat_mem_remote;
    }
    return lat_mem_local;
  }
};

/// The paper's experimental machine, full size (Table 1).
inline MemSystemConfig paper_mem_system() { return MemSystemConfig{}; }

/// The default experimentation machine: Table 1 scaled 1/64 so that
/// working-set load times relate to the 30 ms slice as on real
/// hardware while per-instruction simulation stays fast.
/// (L1 512 B, L2 4 KB, LLC 160 KB.)
inline MemSystemConfig scaled_mem_system() { return MemSystemConfig{}.scaled(64); }

}  // namespace kyoto::cache
