// Frozen pre-SoA cache engine, kept as a behavioral oracle.
//
// This is a verbatim copy of the original array-of-structs
// SetAssocCache (one 32-byte Line struct per cache line, linear probe
// over the set, O(total-lines) footprint scans).  It exists for two
// reasons:
//
//  * the replacement-policy golden tests assert that the SoA rewrite
//    of SetAssocCache produces *identical* hit/miss/eviction sequences
//    for every policy — the oracle is the old implementation itself,
//    not a recorded trace that could go stale;
//  * bench_throughput measures it as the "baseline" engine so the
//    before/after speedup of the access-path overhaul can be
//    re-measured on any machine, not just the one that recorded
//    BENCH_throughput.json.
//
// Do not "fix" or optimize this file; its value is that it does not
// change.  New features go into SetAssocCache only — the golden tests
// pin equivalence on the frozen feature set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "cache/set_assoc_cache.hpp"  // Requester, LookupResult
#include "cache/stats.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace kyoto::cache {

class ReferenceSetAssocCache {
 public:
  ReferenceSetAssocCache(std::string name, CacheGeometry geometry,
                         ReplacementKind replacement, std::uint64_t seed = 1);

  LookupResult access(Address addr, bool write, const Requester& requester);
  bool probe(Address addr) const;
  void invalidate_all();
  void invalidate(Address addr);
  double occupancy() const;
  std::uint64_t footprint_lines(int vm) const;

  void set_partition(int vm, unsigned first_way, unsigned n_ways);
  void clear_partitions();

  const CacheStats& stats() const { return total_; }
  const CacheStats& stats_for_core(int core) const;
  const CacheStats& stats_for_vm(int vm) const;
  void clear_stats();

  const std::string& name() const { return name_; }
  const CacheGeometry& geometry() const { return geometry_; }
  ReplacementKind replacement() const { return replacement_; }

 private:
  struct Line {
    Address tag = 0;
    bool valid = false;
    bool dirty = false;
    int owner_vm = -1;
    std::uint64_t stamp = 0;  // recency (LRU) or MRU bit (PLRU)
  };

  struct Partition {
    unsigned first_way = 0;
    unsigned n_ways = 0;  // 0 = unrestricted
  };

  unsigned set_index(Address addr) const {
    return static_cast<unsigned>((addr / geometry_.line) % sets_);
  }
  Address tag_of(Address addr) const { return addr / geometry_.line; }

  Line* find(unsigned set, Address tag);
  const Line* find(unsigned set, Address tag) const;
  unsigned pick_victim(unsigned set, unsigned first_way, unsigned end_way);
  void touch(unsigned set, unsigned way);
  void fill(unsigned set, unsigned way, Address tag, bool write, int vm);
  bool set_uses_bip(unsigned set) const;

  CacheStats& core_slot(int core);
  CacheStats& vm_slot(int vm);

  std::string name_;
  CacheGeometry geometry_;
  ReplacementKind replacement_;
  unsigned sets_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  Rng rng_;
  std::uint64_t clock_ = 0;  // recency stamp source

  int psel_ = 0;
  static constexpr int kPselMax = 1023;
  static constexpr unsigned kDuelModulus = 32;  // 2 leader sets per 32

  std::vector<Partition> partitions_;  // indexed by vm id

  CacheStats total_;
  std::vector<CacheStats> per_core_;
  std::vector<CacheStats> per_vm_;
};

}  // namespace kyoto::cache
