// Equation 1 — the paper's pollution metric.
//
//   llc_cap_act = llc_misses * cpu_freq_khz / unhalted_core_cycles
//
// Dimensionally this is LLC misses per millisecond of on-CPU time
// (freq in kHz = cycles per ms).  The paper adopts it from Tang et
// al. [7] and shows in Fig 4 that it ranks VM aggressiveness better
// than raw miss counts, because it normalizes by how long the VM
// actually held the processor.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "pmc/counters.hpp"

namespace kyoto::core {

/// Equation 1.  Returns 0 when no cycles elapsed.
inline double equation1(std::uint64_t llc_misses, KHz cpu_freq_khz,
                        std::uint64_t unhalted_core_cycles) {
  if (unhalted_core_cycles == 0) return 0.0;
  return static_cast<double>(llc_misses) * static_cast<double>(cpu_freq_khz) /
         static_cast<double>(unhalted_core_cycles);
}

/// Equation 1 over a PMC delta.
inline double equation1(const pmc::CounterSet& delta, KHz cpu_freq_khz) {
  return equation1(delta.get(pmc::Counter::kLlcMisses), cpu_freq_khz,
                   delta.get(pmc::Counter::kUnhaltedCycles));
}

}  // namespace kyoto::core
