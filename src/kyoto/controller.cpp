#include "kyoto/controller.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace kyoto::core {

PollutionController::PollutionController(std::unique_ptr<PollutionMonitor> monitor,
                                         KyotoParams params)
    : monitor_(std::move(monitor)), params_(params) {
  KYOTO_CHECK(monitor_ != nullptr);
  KYOTO_CHECK_MSG(params_.bank_slices > 0.0, "quota bank must be positive");
  KYOTO_CHECK_MSG(params_.initial_bank_slices > 0.0, "initial bank must be positive");
}

void PollutionController::attach(hv::Hypervisor& hv) {
  hv_ = &hv;
  monitor_->attach(hv);
  hv.add_tick_hook([this](hv::Hypervisor& h, Tick now) { on_tick(h, now); });
  hv.add_vm_removed_hook([this](hv::Hypervisor&, hv::Vm& vm) { vm_removed(vm); });
}

void PollutionController::set_punished(std::size_t vm_id, bool punished) {
  states_[vm_id].punished = punished;
  const std::size_t word = vm_id >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (vm_id & 63);
  punished_words_[word] = punished ? (punished_words_[word] | bit)
                                   : (punished_words_[word] & ~bit);
}

void PollutionController::vm_removed(hv::Vm& vm) {
  monitor_->vm_removed(vm);
  const auto id = static_cast<std::size_t>(vm.id());
  if (id < states_.size()) {
    // The slot survives as the departed tenant's final accounting
    // record (state_by_id), but punishment must stop ticking.
    set_punished(id, false);
  }
}

PollutionController::VmState& PollutionController::slot(const hv::Vm& vm) {
  const auto id = static_cast<std::size_t>(vm.id());
  if (states_.size() <= id) {
    states_.resize(id + 1);
    punished_words_.resize((states_.size() + 63) / 64, 0);
  }
  VmState& st = states_[id];
  if (st.booked == 0.0 && vm.config().llc_cap > 0.0) {
    st.booked = vm.config().llc_cap;
    // Start-up grace: enough quota to load the working set once.
    st.quota = st.booked * static_cast<double>(kTickMs * kTicksPerSlice) *
               params_.initial_bank_slices;
  }
  return st;
}

void PollutionController::account(hv::Vcpu& vcpu, const hv::RunReport& report) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "controller not attached");
  // The monitor is consulted unconditionally: sampling monitors keep
  // their direct-rate estimates fresh even for unbooked VMs.
  const double rate = monitor_->pollution_rate(vcpu, report);
  const auto id = static_cast<std::size_t>(vcpu.vm().id());
  VmState& st = slot(vcpu.vm());
  st.last_rate = rate;

  if (reference_engine_) {
    if (st.booked <= 0.0) return;  // no permit booked: never punished
    const double ran_ms = cycles_to_ms(report.ran, hv_->machine().freq_khz());
    const double debit = rate * ran_ms;
    st.quota -= debit;
    st.debited_total += debit;
    if (st.quota < 0.0 && !st.punished) {
      set_punished(id, true);
      ++st.punish_events;
    }
    return;
  }

  // Branch-light path: the unbooked case and the punish transition
  // are select arithmetic (subtracting 0.0 preserves every quota bit
  // pattern that can occur here).
  const bool booked = st.booked > 0.0;
  const double ran_ms = cycles_to_ms(report.ran, hv_->machine().freq_khz());
  const double debit = booked ? rate * ran_ms : 0.0;
  st.quota -= debit;
  st.debited_total += debit;
  const bool newly_punished = booked & (st.quota < 0.0) & !st.punished;
  st.punish_events += static_cast<std::int64_t>(newly_punished);
  set_punished(id, st.punished | newly_punished);
}

void PollutionController::slice_end() {
  const double slice_ms = static_cast<double>(kTickMs * kTicksPerSlice);
  if (reference_engine_) {
    for (std::size_t id = 0; id < states_.size(); ++id) {
      VmState& st = states_[id];
      if (st.booked <= 0.0) continue;
      const double earn = st.booked * slice_ms;
      st.quota = std::min(st.quota + earn, params_.bank_slices * earn);
      if (st.punished && st.quota >= 0.0) set_punished(id, false);
    }
    return;
  }
  for (std::size_t id = 0; id < states_.size(); ++id) {
    VmState& st = states_[id];
    const bool booked = st.booked > 0.0;
    const double earn = booked ? st.booked * slice_ms : 0.0;
    const double replenished = st.quota + earn;
    const double bank = params_.bank_slices * earn;
    const double clamped = replenished < bank ? replenished : bank;
    st.quota = booked ? clamped : st.quota;
    const bool lift = st.punished & booked & (st.quota >= 0.0);
    set_punished(id, st.punished & !lift);
  }
}

const char* punish_mode_name(PunishMode mode) {
  switch (mode) {
    case PunishMode::kBlock: return "block";
    case PunishMode::kDemote: return "demote";
  }
  return "?";
}

bool PollutionController::allows(const hv::Vm& vm) const {
  if (params_.punish_mode == PunishMode::kDemote) return true;
  const auto id = static_cast<std::size_t>(vm.id());
  if (id >= states_.size()) return true;
  return !states_[id].punished;
}

bool PollutionController::demoted(const hv::Vm& vm) const {
  const auto id = static_cast<std::size_t>(vm.id());
  if (id >= states_.size()) return false;
  return states_[id].punished;
}

const PollutionController::VmState& PollutionController::state(const hv::Vm& vm) const {
  return state_by_id(vm.id());
}

const PollutionController::VmState& PollutionController::state_by_id(int vm_id) const {
  static const VmState kEmpty{};
  if (vm_id < 0 || static_cast<std::size_t>(vm_id) >= states_.size()) return kEmpty;
  return states_[static_cast<std::size_t>(vm_id)];
}

void PollutionController::on_tick(hv::Hypervisor& hv, Tick now) {
  monitor_->on_tick(hv, now);
  if (reference_engine_) {
    for (VmState& st : states_) {
      if (st.punished) ++st.punished_ticks;
    }
    return;
  }
  // Walk the punished bitset instead of polling every (mostly dead,
  // under churn) VM slot: the words mirror the punished flags exactly.
  for (std::size_t w = 0; w < punished_words_.size(); ++w) {
    std::uint64_t word = punished_words_[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      ++states_[(w << 6) + bit].punished_ticks;
      word &= word - 1;
    }
  }
}

}  // namespace kyoto::core
