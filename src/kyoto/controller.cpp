#include "kyoto/controller.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kyoto::core {

PollutionController::PollutionController(std::unique_ptr<PollutionMonitor> monitor,
                                         KyotoParams params)
    : monitor_(std::move(monitor)), params_(params) {
  KYOTO_CHECK(monitor_ != nullptr);
  KYOTO_CHECK_MSG(params_.bank_slices > 0.0, "quota bank must be positive");
  KYOTO_CHECK_MSG(params_.initial_bank_slices > 0.0, "initial bank must be positive");
}

void PollutionController::attach(hv::Hypervisor& hv) {
  hv_ = &hv;
  monitor_->attach(hv);
  hv.add_tick_hook([this](hv::Hypervisor& h, Tick now) { on_tick(h, now); });
  hv.add_vm_removed_hook([this](hv::Hypervisor&, hv::Vm& vm) { vm_removed(vm); });
}

void PollutionController::vm_removed(hv::Vm& vm) {
  monitor_->vm_removed(vm);
  const auto id = static_cast<std::size_t>(vm.id());
  if (id < states_.size()) {
    // The slot survives as the departed tenant's final accounting
    // record (state_by_id), but punishment must stop ticking.
    states_[id].punished = false;
  }
}

PollutionController::VmState& PollutionController::slot(const hv::Vm& vm) {
  const auto id = static_cast<std::size_t>(vm.id());
  if (states_.size() <= id) states_.resize(id + 1);
  VmState& st = states_[id];
  if (st.booked == 0.0 && vm.config().llc_cap > 0.0) {
    st.booked = vm.config().llc_cap;
    // Start-up grace: enough quota to load the working set once.
    st.quota = st.booked * static_cast<double>(kTickMs * kTicksPerSlice) *
               params_.initial_bank_slices;
  }
  return st;
}

void PollutionController::account(hv::Vcpu& vcpu, const hv::RunReport& report) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "controller not attached");
  // The monitor is consulted unconditionally: sampling monitors keep
  // their direct-rate estimates fresh even for unbooked VMs.
  const double rate = monitor_->pollution_rate(vcpu, report);
  VmState& st = slot(vcpu.vm());
  st.last_rate = rate;
  if (st.booked <= 0.0) return;  // no permit booked: never punished

  const double ran_ms = cycles_to_ms(report.ran, hv_->machine().freq_khz());
  const double debit = rate * ran_ms;
  st.quota -= debit;
  st.debited_total += debit;
  if (st.quota < 0.0 && !st.punished) {
    st.punished = true;
    ++st.punish_events;
  }
}

void PollutionController::slice_end() {
  const double slice_ms = static_cast<double>(kTickMs * kTicksPerSlice);
  for (VmState& st : states_) {
    if (st.booked <= 0.0) continue;
    const double earn = st.booked * slice_ms;
    st.quota = std::min(st.quota + earn, params_.bank_slices * earn);
    if (st.punished && st.quota >= 0.0) st.punished = false;
  }
}

const char* punish_mode_name(PunishMode mode) {
  switch (mode) {
    case PunishMode::kBlock: return "block";
    case PunishMode::kDemote: return "demote";
  }
  return "?";
}

bool PollutionController::allows(const hv::Vm& vm) const {
  if (params_.punish_mode == PunishMode::kDemote) return true;
  const auto id = static_cast<std::size_t>(vm.id());
  if (id >= states_.size()) return true;
  return !states_[id].punished;
}

bool PollutionController::demoted(const hv::Vm& vm) const {
  const auto id = static_cast<std::size_t>(vm.id());
  if (id >= states_.size()) return false;
  return states_[id].punished;
}

const PollutionController::VmState& PollutionController::state(const hv::Vm& vm) const {
  return state_by_id(vm.id());
}

const PollutionController::VmState& PollutionController::state_by_id(int vm_id) const {
  static const VmState kEmpty{};
  if (vm_id < 0 || static_cast<std::size_t>(vm_id) >= states_.size()) return kEmpty;
  return states_[static_cast<std::size_t>(vm_id)];
}

void PollutionController::on_tick(hv::Hypervisor& hv, Tick now) {
  monitor_->on_tick(hv, now);
  for (VmState& st : states_) {
    if (st.punished) ++st.punished_ticks;
  }
}

}  // namespace kyoto::core
