// Permit pricing and invoicing (extends §5's Discussion).
//
// If pollution permits are a bookable resource, they need a price
// sheet.  PriceSheet converts a deployment's pollution accounting
// into per-tenant invoices: a flat permit fee proportional to the
// booked llc_cap, plus a metered overage component for pollution
// attributed beyond the permitted budget.  Punished time is already
// "paid" in kind (the CPU was withheld), so overage is charged only
// for attributed misses in excess of the permitted budget over the
// billing window — double-billing punished VMs would charge twice for
// the same externality.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "kyoto/permits.hpp"

namespace kyoto::core {

struct PriceSheet {
  /// Flat fee per booked miss/ms of permit, per virtual second.
  double permit_fee_per_unit_second = 0.001;
  /// Price per million attributed misses beyond the permitted budget.
  double overage_per_million_misses = 2.0;
  std::string currency = "credits";
};

struct InvoiceLine {
  std::string vm;
  double permit_fee = 0.0;
  double permitted_misses = 0.0;   // llc_cap x on-wall window
  double attributed_misses = 0.0;  // what the monitor charged
  double overage_misses = 0.0;     // max(0, attributed - permitted)
  double overage_fee = 0.0;
  double total = 0.0;
};

/// Prices one billing window of `window_ms` virtual milliseconds.
std::vector<InvoiceLine> make_invoices(const std::vector<BillingLine>& billing,
                                       const PriceSheet& prices, double window_ms);

/// ASCII rendering.
std::string format_invoices(const std::vector<InvoiceLine>& lines,
                            const PriceSheet& prices);

}  // namespace kyoto::core
