// KS4Linux: the Kyoto scheduler for the Linux CFS (KVM vCPU threads).
//
// Same pollution-quota mechanics as KS4Xen, grafted onto CFS the way
// CFS bandwidth control throttles cgroups: a punished VM's vCPU tasks
// are simply not eligible for pick() until their quota recovers.
#pragma once

#include <memory>
#include <string>

#include "hv/cfs_scheduler.hpp"
#include "kyoto/controller.hpp"
#include "kyoto/monitor.hpp"

namespace kyoto::core {

class Ks4Linux final : public hv::CfsScheduler {
 public:
  explicit Ks4Linux(std::unique_ptr<PollutionMonitor> monitor =
                        std::make_unique<DirectPmcMonitor>(),
                    KyotoParams params = {})
      : controller_(std::move(monitor), params) {}

  std::string name() const override { return "KS4Linux"; }

  void attach(hv::Hypervisor& hv) override {
    hv::CfsScheduler::attach(hv);
    controller_.attach(hv);
  }

  void account(hv::Vcpu& vcpu, const hv::RunReport& report) override {
    hv::CfsScheduler::account(vcpu, report);
    controller_.account(vcpu, report);
  }

  void slice_end(Tick now) override {
    hv::CfsScheduler::slice_end(now);
    controller_.slice_end();
  }

  PollutionController& kyoto() { return controller_; }
  const PollutionController& kyoto() const { return controller_; }

 protected:
  bool kyoto_allows(const hv::Vcpu& vcpu) const override {
    return controller_.allows(vcpu.vm());
  }
  bool kyoto_demoted(const hv::Vcpu& vcpu) const override {
    return controller_.punish_mode() == PunishMode::kDemote &&
           controller_.demoted(vcpu.vm());
  }

 private:
  PollutionController controller_;
};

}  // namespace kyoto::core
