// KS4Linux: the Kyoto scheduler for the Linux CFS (KVM vCPU threads).
//
// Same pollution-quota mechanics as KS4Xen, grafted onto CFS the way
// CFS bandwidth control throttles cgroups: a punished VM's vCPU tasks
// are simply not eligible for pick() until their quota recovers.
#pragma once

#include <memory>
#include <string>

#include "hv/cfs_scheduler.hpp"
#include "kyoto/controller.hpp"
#include "kyoto/monitor.hpp"

namespace kyoto::core {

class Ks4Linux final : public hv::CfsScheduler {
 public:
  explicit Ks4Linux(std::unique_ptr<PollutionMonitor> monitor =
                        std::make_unique<DirectPmcMonitor>(),
                    KyotoParams params = {})
      : controller_(std::move(monitor), params) {}

  std::string name() const override { return "KS4Linux"; }

  void attach(hv::Hypervisor& hv) override {
    hv::CfsScheduler::attach(hv);
    controller_.attach(hv);
    set_kyoto_gates(controller_.blocked_gate(), controller_.demoted_gate());
  }

  void account(hv::Vcpu& vcpu, const hv::RunReport& report) override {
    hv::CfsScheduler::account(vcpu, report);
    controller_.account(vcpu, report);
  }

  void slice_end(Tick now) override {
    hv::CfsScheduler::slice_end(now);
    controller_.slice_end();
  }

  void set_reference_engine(bool on) override {
    hv::CfsScheduler::set_reference_engine(on);
    controller_.set_reference_engine(on);
  }

  PollutionController& kyoto() { return controller_; }
  const PollutionController& kyoto() const { return controller_; }

 private:
  PollutionController controller_;
};

}  // namespace kyoto::core
