// Pollution monitoring strategies (paper §3.3).
//
// The monitor answers one question for the Kyoto scheduler: at what
// rate (LLC misses per millisecond, Equation 1) is this VM polluting
// the LLC?  The hard part is attribution — "a VM should not be
// punished for the pollution of another VM" — and the paper gives
// three answers, all implemented here:
//
//  * DirectPmcMonitor — trust the per-vCPU perfctr counters as-is.
//    Cheap and always available, but counts *contention-induced*
//    misses against the victim.  This is what vanilla PMC
//    virtualization gives you, and the self-correcting behaviour of
//    punishment makes it adequate in practice (Fig 5: the polluter
//    is throttled quickly, so the victim's inflated counts subside).
//
//  * SocketDedicationMonitor — the paper's first solution: during a
//    sampling window, migrate every other vCPU off the target's
//    socket so the target's counters are uncontended; migrate them
//    back "after a random period".  Costs remote-NUMA penalties for
//    the migrated vCPUs (Fig 9), so two skip heuristics avoid
//    isolation when it cannot change the answer (Fig 10/11): a vCPU
//    with very low miss rate is neither polluter nor victim, and a
//    vCPU whose co-runners all have very low miss rates is measured
//    accurately without isolation.
//
//  * McSimMonitor — the paper's second solution: pin-capture the
//    VM's instruction stream and replay it in a McSimA+-style
//    simulator with a private cache hierarchy on a dedicated host;
//    the replayed PMCs are intrinsic by construction.
//
// Threading contract (see README "Threading model"): both monitor
// entry points run at the hypervisor tick's *merge points*, never
// inside a socket execution partition — pollution_rate() from the
// scheduler's accounting in the serial epilogue (fixed core order),
// on_tick() from the serial tick hooks after accounting.  Monitors
// therefore always observe fully merged machine state and may freely
// migrate vCPUs across sockets (SocketDedicationMonitor does), read
// any socket's LLC attribution, or clone workloads — the parallel
// equivalence suite pins that none of this can observe a
// half-executed tick.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hv/hypervisor.hpp"
#include "hv/scheduler.hpp"
#include "mcsim/replay.hpp"

namespace kyoto::core {

class PollutionMonitor {
 public:
  virtual ~PollutionMonitor() = default;

  virtual std::string name() const = 0;

  /// Called once when the owning scheduler is attached.
  virtual void attach(hv::Hypervisor& hv) { hv_ = &hv; }

  /// Attributed pollution rate (misses/ms) for the burst described by
  /// `report`.  Called from the scheduler's accounting path.
  virtual double pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) = 0;

  /// Per-tick orchestration hook (sampling state machines).
  virtual void on_tick(hv::Hypervisor& hv, Tick now) {
    (void)hv;
    (void)now;
  }

  /// A VM is being destroyed (churn departure); called from the
  /// hypervisor's vm-removed hooks with the Vm object still alive.
  /// Monitors holding raw Vm/Vcpu pointers or campaigns targeting it
  /// must drop them here.  Default: nothing — plain per-id caches are
  /// harmless because ids are never reused.
  virtual void vm_removed(hv::Vm& vm) { (void)vm; }

 protected:
  /// Pre-sizes a per-VM slot vector to the hypervisor's VM count
  /// (slots start at -1 = "never sampled").  Called from cold spots —
  /// attach, tick prologues, and the one-off moment right after a VM
  /// is admitted — so the steady-state accounting path only indexes
  /// (with a KYOTO_DCHECK) instead of growing storage.
  void sync_vm_slots(std::vector<double>& v) const {
    const std::size_t n =
        hv_ == nullptr ? std::size_t{0} : static_cast<std::size_t>(hv_->vm_count());
    if (v.size() < n) v.resize(n, -1.0);
  }

  hv::Hypervisor* hv_ = nullptr;
};

/// Raw perfctr attribution: Equation 1 over the burst's PMC delta.
class DirectPmcMonitor final : public PollutionMonitor {
 public:
  std::string name() const override { return "direct-pmc"; }
  double pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) override;
};

/// McSimA+ replay on a dedicated simulation host.
class McSimMonitor final : public PollutionMonitor {
 public:
  struct Params {
    /// Re-sample every VM this often.
    Tick sample_period_ticks = 30;
    /// Instructions replayed per sample.
    Instructions sample_instructions = 150'000;
  };

  McSimMonitor();
  explicit McSimMonitor(Params params);

  std::string name() const override { return "mcsim-replay"; }
  void attach(hv::Hypervisor& hv) override;
  double pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) override;
  void on_tick(hv::Hypervisor& hv, Tick now) override;

  /// Last intrinsic rate computed for a VM (misses/ms); <0 if never
  /// sampled.
  double cached_rate(int vm_id) const;

 private:
  void sample_vm(hv::Vm& vm);

  Params params_;
  std::unique_ptr<mcsim::ReplaySimulator> simulator_;
  std::vector<double> cache_;  // by vm id; <0 = not sampled yet
};

/// Socket dedication with skip heuristics.
class SocketDedicationMonitor final : public PollutionMonitor {
 public:
  struct Params {
    /// Gap between the end of one sampling campaign step and the next.
    Tick sample_period_ticks = 12;
    /// Ticks after the migration before counting starts: the target
    /// re-loads lines its (now departed) co-runners evicted, and that
    /// reload burst must not contaminate the "clean" sample.
    Tick sample_warm_ticks = 2;
    /// Length of the counted window ("about one billion cycles" on
    /// the real machine ≈ a few ticks here).
    Tick sample_window_ticks = 3;
    /// Return-migration happens a random 0..N ticks after the window
    /// (the paper returns "after a random period").
    Tick max_return_delay_ticks = 3;
    /// Below this direct rate (misses/ms) a vCPU is neither polluter
    /// nor victim: skip isolating it (Fig 10, first heuristic).
    double low_rate_threshold = 5.0;
    /// If every co-runner on the socket is below the threshold, the
    /// direct measurement is already clean: skip (second heuristic).
    bool skip_when_corunners_quiet = true;
    std::uint64_t seed = 7;
  };

  SocketDedicationMonitor();
  explicit SocketDedicationMonitor(Params params);

  std::string name() const override { return "socket-dedication"; }
  void attach(hv::Hypervisor& hv) override;
  double pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) override;
  void on_tick(hv::Hypervisor& hv, Tick now) override;
  /// Aborts any in-flight campaign step involving the departing VM:
  /// its displaced vCPUs are forgotten (they are about to die), and if
  /// it was the sampling target the remaining displaced vCPUs return
  /// home immediately and the monitor goes idle.
  void vm_removed(hv::Vm& vm) override;

  double cached_rate(int vm_id) const;
  /// Counters for the ablation bench.
  std::int64_t isolations_performed() const { return isolations_; }
  std::int64_t isolations_skipped() const { return skips_; }
  std::int64_t migrations_performed() const { return migrations_; }
  /// True while a dedication step is in flight (vCPUs displaced).
  bool campaign_active() const { return phase_ != Phase::kIdle; }

 private:
  enum class Phase { kIdle, kWarming, kSampling, kAwaitReturn };

  struct Displaced {
    hv::Vcpu* vcpu = nullptr;
    int original_core = -1;
  };

  void begin_campaign_step(hv::Hypervisor& hv, Tick now);
  void finish_window(hv::Hypervisor& hv, Tick now);
  void return_displaced(hv::Hypervisor& hv);
  double direct_rate(int vm_id) const;

  Params params_;
  Rng rng_;
  Phase phase_ = Phase::kIdle;
  Tick next_event_ = 0;
  std::size_t next_target_ = 0;  // round-robin cursor over VMs

  hv::Vm* target_ = nullptr;
  pmc::CounterSet window_start_counters_;
  std::vector<Displaced> displaced_;

  std::vector<double> cache_;        // intrinsic rate by vm id; <0 unset
  std::vector<double> direct_ema_;   // direct-rate EMA by vm id (skip decisions)
  std::int64_t isolations_ = 0;
  std::int64_t skips_ = 0;
  std::int64_t migrations_ = 0;
};

}  // namespace kyoto::core
