// Pollution-quota accounting — the heart of the Kyoto system (§3.2).
//
// Each VM booked with an llc_cap holds a pollution_quota, denominated
// in LLC misses.  While the VM runs, the quota is debited by the
// monitor-attributed pollution (rate × on-CPU milliseconds — with the
// direct monitor this equals the measured miss count exactly).  When
// the quota goes negative the VM is *punished*: the owning scheduler
// refuses to run any of its vCPUs ("priority OVER ... it cannot use
// the processor any more").  At the end of every time slice each VM
// earns llc_cap × 30 ms worth of quota, clamped to a small bank; once
// the quota recovers to zero or above the VM is schedulable again
// ("marked UNDER").
//
// The controller is scheduler-agnostic: KS4Xen, KS4Linux and
// KS4Pisces all embed one and differ only in which base scheduler
// they extend — mirroring how the paper ported ~110 LOCs across Xen,
// Linux/CFS and Pisces.
//
// All controller entry points (account from scheduler accounting,
// on_tick from the tick hooks, slice_end) execute in the tick's
// serial epilogue in fixed core/VM order, so quota debits and
// punishment transitions are deterministic regardless of how many
// threads executed the tick's socket partitions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "hv/hypervisor.hpp"
#include "hv/scheduler.hpp"
#include "kyoto/monitor.hpp"

namespace kyoto::core {

/// What "punished" means to the scheduler.
enum class PunishMode {
  /// The VM may not run at all until its quota recovers — the
  /// behaviour the paper's Fig 5 timeline shows ("deprived of the
  /// processor for long moments").  Default.
  kBlock,
  /// The VM is demoted below every unpunished vCPU (the paper's
  /// literal "priority OVER" wording): it still scavenges cycles the
  /// core would otherwise idle away.  Work-conserving punishment.
  kDemote,
};

const char* punish_mode_name(PunishMode mode);

struct KyotoParams {
  PunishMode punish_mode = PunishMode::kBlock;
  /// Maximum banked quota, in slices' worth of earning.  A small bank
  /// lets well-behaved VMs absorb periodic reload bursts (a VM whose
  /// lines were evicted while it was descheduled re-misses them at
  /// the next slice — the "zigzag" of Fig 2) without being punished
  /// for pollution they did not initiate.
  double bank_slices = 3.0;
  /// Quota a freshly booked VM starts with, in slices' worth of
  /// earning.  Covers the one-off data-loading phase ("LLC misses
  /// occur only during the first time slice", Fig 2) so a VM is not
  /// punished merely for starting up.
  double initial_bank_slices = 10.0;
};

class PollutionController {
 public:
  struct VmState {
    double booked = 0.0;             // llc_cap, misses/ms (0 = unbooked)
    double quota = 0.0;              // misses; negative = in debt
    double last_rate = 0.0;          // last attributed rate, misses/ms
    bool punished = false;
    std::int64_t punish_events = 0;  // quota-went-negative transitions
    std::int64_t punished_ticks = 0; // ticks spent deprived of CPU
    double debited_total = 0.0;      // lifetime attributed pollution (misses)
  };

  PollutionController(std::unique_ptr<PollutionMonitor> monitor, KyotoParams params);

  /// Wires the controller into the hypervisor: attaches the monitor
  /// and registers the per-tick hook.
  void attach(hv::Hypervisor& hv);

  /// Scheduler accounting hook: debit pollution for one burst.
  void account(hv::Vcpu& vcpu, const hv::RunReport& report);

  /// Scheduler slice-end hook: earn quota, lift expired punishments.
  void slice_end();

  /// Schedulability predicate for the owning scheduler.  In kDemote
  /// mode punished VMs remain schedulable (demotion is applied via
  /// demoted() by the scheduler's pick order).
  bool allows(const hv::Vm& vm) const;

  /// True when the VM is punished; in kDemote mode the scheduler uses
  /// this to rank punished vCPUs below everyone else.
  bool demoted(const hv::Vm& vm) const;

  PunishMode punish_mode() const { return params_.punish_mode; }

  /// Punish gates as compact bitmasks (bit per VM id), for the
  /// schedulers' branch-light pick loops (Scheduler::set_kyoto_gates).
  /// The bits mirror VmState::punished exactly — every transition
  /// updates both — and which gate is live depends on the punish
  /// mode: in kBlock mode punished VMs are unschedulable, in kDemote
  /// mode they are merely demoted.
  const std::vector<std::uint64_t>* blocked_gate() const {
    return params_.punish_mode == PunishMode::kBlock ? &punished_words_ : nullptr;
  }
  const std::vector<std::uint64_t>* demoted_gate() const {
    return params_.punish_mode == PunishMode::kDemote ? &punished_words_ : nullptr;
  }

  /// Engine knob (see Scheduler::set_reference_engine): true restores
  /// the pre-rework branchy debit/earn/punish control flow; results
  /// are bit-identical either way.
  void set_reference_engine(bool on) { reference_engine_ = on; }

  const VmState& state(const hv::Vm& vm) const;
  /// Same, by id — valid for departed tenants too (churn metrics read
  /// the final accounting record after the Vm object is gone).
  const VmState& state_by_id(int vm_id) const;
  PollutionMonitor& monitor() { return *monitor_; }
  const PollutionMonitor& monitor() const { return *monitor_; }

 private:
  void on_tick(hv::Hypervisor& hv, Tick now);
  /// Hypervisor vm-removed hook: forwards to the monitor (campaign
  /// aborts) and freezes the departing VM's punishment accounting.
  void vm_removed(hv::Vm& vm);
  VmState& slot(const hv::Vm& vm);
  /// Single write point for punishment transitions: keeps the
  /// punished flag and its gate bit in lockstep.
  void set_punished(std::size_t vm_id, bool punished);

  std::unique_ptr<PollutionMonitor> monitor_;
  KyotoParams params_;
  hv::Hypervisor* hv_ = nullptr;
  std::vector<VmState> states_;  // by vm id
  /// Bit per VM id, set iff states_[id].punished — the schedulers'
  /// gate masks point here (grown in lockstep with states_).
  std::vector<std::uint64_t> punished_words_;
  bool reference_engine_ = false;
};

}  // namespace kyoto::core
