// Ground-truth pollution monitoring — the oracle the paper could not
// have.
//
// The paper's three monitors (monitor.hpp) are *estimators*: they
// infer a VM's intrinsic pollution rate from PMCs, paying either
// accuracy (direct), migrations (socket dedication) or a simulation
// host (McSim replay).  The simulator, however, knows the answer
// exactly: the SetAssocCache attributes every LLC line to its owning
// VM (O(1) footprint counters since the access-engine overhaul) and
// classifies every miss as intrinsic or contention-induced on its
// eviction path (cache::VmPollution).  This header turns that into
// two tools:
//
//  * GroundTruthMonitor — a fourth PollutionMonitor: the Kyoto
//    scheduler charges each VM its *intrinsic* miss rate (misses
//    minus re-misses caused by other VMs' evictions), read straight
//    from the simulated LLCs at the accounting merge point.  The
//    upper bound every estimator is judged against — and a usable
//    scheduler input in its own right ("what if attribution were
//    perfect?").
//
//  * GroundTruthShadow — shadow mode: pure observer hooks that
//    record, per tick and per VM, the oracle's view next to whatever
//    rate the run's actual monitor charged.  Attaching a shadow NEVER
//    perturbs the run: scheduler and LLC traces are byte-identical
//    with and without it, at any thread count and under SweepRunner
//    lanes (pinned by tests/kyoto/monitor_conformance_test.cpp).
//    The accuracy layer (sim/monitor_accuracy.hpp) scores estimators
//    against these recordings.
//
// Threading contract: both classes touch the machine only from the
// tick's serial merge points — pollution_rate/account hooks from the
// epilogue, tick hooks after accounting — so they always observe
// fully merged, deterministic state (see README "Threading model").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/hypervisor.hpp"
#include "kyoto/controller.hpp"
#include "kyoto/monitor.hpp"

namespace kyoto::core {

/// One VM's exact LLC state, summed over every socket's LLC (a VM's
/// lines may span sockets after migrations).  All counters cumulative
/// since machine construction except `footprint_lines` (instantaneous).
struct GroundTruthReading {
  std::uint64_t footprint_lines = 0;
  std::uint64_t misses = 0;                      // cache-attributed LLC misses
  std::uint64_t contention_misses = 0;           // re-misses caused by other VMs
  std::uint64_t cross_evictions_inflicted = 0;   // other VMs' lines displaced
  std::uint64_t cross_evictions_suffered = 0;    // own lines displaced by others
  /// Misses the VM would (to first order) have taken with the LLC to
  /// itself — the quantity dedication/McSim exist to estimate.
  std::uint64_t intrinsic_misses() const { return misses - contention_misses; }
};

/// Reads the oracle for one VM from the machine's LLCs.  O(sockets).
GroundTruthReading read_ground_truth(const hv::Hypervisor& hv, int vm_id);

/// The fourth monitor: perfect attribution, for free, at the merge
/// point.  pollution_rate() charges the burst the VM-wide *intrinsic*
/// miss delta since the VM's previous accounting call (for the
/// paper's single-vCPU VMs that is exactly the burst's intrinsic
/// Equation-1 rate; for multi-vCPU VMs the per-burst split is
/// arbitrary but the per-tick total debit is exact).
class GroundTruthMonitor final : public PollutionMonitor {
 public:
  std::string name() const override { return "ground-truth"; }
  void attach(hv::Hypervisor& hv) override;
  double pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) override;

  /// Last intrinsic rate computed for a VM (misses/ms); <0 if the VM
  /// has never been accounted.
  double cached_rate(int vm_id) const;

 private:
  std::vector<std::uint64_t> last_intrinsic_;  // cumulative snapshot by vm id
  std::vector<double> cache_;                  // last rate by vm id; <0 unset
};

/// Shadow-mode recorder.  Construct it against a live hypervisor
/// (after creating the VMs is simplest, but VMs admitted later are
/// picked up automatically); it registers an account hook and a tick
/// hook, observes, and never writes simulator state.  Must outlive
/// the run it shadows.
class GroundTruthShadow {
 public:
  /// One VM-tick of ground truth next to the estimator's output.
  struct Sample {
    Tick tick = 0;
    bool ran = false;                    // VM held a core this tick
    std::uint64_t footprint_lines = 0;   // instantaneous, end of tick
    std::uint64_t misses = 0;            // deltas over this tick:
    std::uint64_t contention_misses = 0;
    std::uint64_t cross_evictions_inflicted = 0;
    std::uint64_t cross_evictions_suffered = 0;
    std::uint64_t cycles = 0;            // on-CPU cycles this tick
    double true_rate = 0.0;       // intrinsic Equation 1 over this tick
    double direct_rate = 0.0;     // raw (contaminated) Equation 1 over this tick
    /// Rate the run's actual monitor charged at the VM's last burst
    /// this tick (PollutionController::VmState::last_rate); -1 when
    /// the VM did not run or no controller was given.
    double estimator_rate = -1.0;

    bool operator==(const Sample&) const = default;
  };

  /// `controller` may be null (shadowing a non-Kyoto run records only
  /// the oracle columns).  The controller is read, never written.
  explicit GroundTruthShadow(hv::Hypervisor& hv,
                             const PollutionController* controller = nullptr);

  GroundTruthShadow(const GroundTruthShadow&) = delete;
  GroundTruthShadow& operator=(const GroundTruthShadow&) = delete;

  /// Per-VM sample series, indexed by vm id then tick order.  A VM
  /// admitted at tick T has samples from T on (Sample::tick tells).
  const std::vector<std::vector<Sample>>& samples() const { return samples_; }
  const std::vector<Sample>& samples_for(int vm_id) const {
    return samples_.at(static_cast<std::size_t>(vm_id));
  }

 private:
  struct VmCursor {
    GroundTruthReading last;        // cumulative oracle snapshot
    pmc::CounterSet last_counters;  // cumulative virtualized PMCs
    // Per-tick scratch, written by the account hook, consumed and
    // reset by the tick hook.
    bool ran_this_tick = false;
    double last_burst_rate = -1.0;
  };

  void on_account(hv::Vcpu& vcpu, const hv::RunReport& report);
  void on_tick(hv::Hypervisor& hv, Tick now);

  const PollutionController* controller_ = nullptr;
  std::vector<VmCursor> cursors_;              // by vm id
  std::vector<std::vector<Sample>> samples_;   // by vm id
};

}  // namespace kyoto::core
