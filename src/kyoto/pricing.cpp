#include "kyoto/pricing.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/table.hpp"

namespace kyoto::core {

std::vector<InvoiceLine> make_invoices(const std::vector<BillingLine>& billing,
                                       const PriceSheet& prices, double window_ms) {
  KYOTO_CHECK_MSG(window_ms > 0.0, "billing window must be positive");
  KYOTO_CHECK_MSG(prices.permit_fee_per_unit_second >= 0.0 &&
                      prices.overage_per_million_misses >= 0.0,
                  "prices must be non-negative");
  std::vector<InvoiceLine> lines;
  lines.reserve(billing.size());
  for (const auto& b : billing) {
    InvoiceLine line;
    line.vm = b.vm;
    line.permit_fee =
        b.booked_cap * prices.permit_fee_per_unit_second * (window_ms / 1000.0);
    line.permitted_misses = b.booked_cap * window_ms;
    line.attributed_misses = b.attributed_misses;
    line.overage_misses = std::max(0.0, line.attributed_misses - line.permitted_misses);
    line.overage_fee = line.overage_misses / 1e6 * prices.overage_per_million_misses;
    line.total = line.permit_fee + line.overage_fee;
    lines.push_back(line);
  }
  return lines;
}

std::string format_invoices(const std::vector<InvoiceLine>& lines,
                            const PriceSheet& prices) {
  TextTable table({"VM", "permit fee", "permitted misses", "attributed misses",
                   "overage misses", "overage fee", "total (" + prices.currency + ")"});
  for (const auto& l : lines) {
    table.add_row({l.vm, fmt_double(l.permit_fee, 3),
                   fmt_count(static_cast<long long>(l.permitted_misses)),
                   fmt_count(static_cast<long long>(l.attributed_misses)),
                   fmt_count(static_cast<long long>(l.overage_misses)),
                   fmt_double(l.overage_fee, 3), fmt_double(l.total, 3)});
  }
  return table.to_string();
}

}  // namespace kyoto::core
