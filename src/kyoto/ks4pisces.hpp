// KS4Pisces: the Kyoto controller for the Pisces co-kernel.
//
// Pisces enclaves own their cores, so there is no scheduler queue to
// demote a polluter in; instead a punished enclave's cores are simply
// idled (duty-cycled) until its quota recovers.  This is the version
// Fig 8 evaluates: vanilla Pisces leaves ~24% LLC-contention
// degradation on the table, KS4Pisces closes it.
#pragma once

#include <memory>
#include <string>

#include "hv/pisces.hpp"
#include "kyoto/controller.hpp"
#include "kyoto/monitor.hpp"

namespace kyoto::core {

class Ks4Pisces final : public hv::PiscesScheduler {
 public:
  explicit Ks4Pisces(std::unique_ptr<PollutionMonitor> monitor =
                         std::make_unique<DirectPmcMonitor>(),
                     KyotoParams params = {})
      : controller_(std::move(monitor), params) {}

  std::string name() const override { return "KS4Pisces"; }

  void attach(hv::Hypervisor& hv) override {
    hv::PiscesScheduler::attach(hv);
    controller_.attach(hv);
    set_kyoto_gates(controller_.blocked_gate(), controller_.demoted_gate());
  }

  void account(hv::Vcpu& vcpu, const hv::RunReport& report) override {
    hv::PiscesScheduler::account(vcpu, report);
    controller_.account(vcpu, report);
  }

  void slice_end(Tick now) override {
    hv::PiscesScheduler::slice_end(now);
    controller_.slice_end();
  }

  void set_reference_engine(bool on) override {
    hv::PiscesScheduler::set_reference_engine(on);
    controller_.set_reference_engine(on);
  }

  PollutionController& kyoto() { return controller_; }
  const PollutionController& kyoto() const { return controller_; }

 private:
  PollutionController controller_;
};

}  // namespace kyoto::core
