// Pollution-permit catalog and billing (paper §5, Discussion).
//
// "Relying on VM types, the provider can associate to each instance
// type a llc_cap level ... proportional to the amount of memory
// assigned to the instance": memory-optimized (r3) instances get
// large permits, compute-optimized (c3) small ones, general-purpose
// (m3) in between.  The catalog converts instance types into
// VmConfigs; the billing report summarizes permits, measured
// pollution and punishments per VM — the artifact a provider would
// show an HPC-cloud customer.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "hv/hypervisor.hpp"
#include "hv/vm.hpp"
#include "kyoto/controller.hpp"

namespace kyoto::core {

/// One bookable instance type.
struct InstanceType {
  std::string name;       // e.g. "r3.large"
  int vcpus = 1;
  Bytes memory = 0;       // instance memory (drives the permit)
  int weight = 256;       // CPU share
  double llc_cap = 0.0;   // pollution permit, misses/ms (Equation 1)
};

/// A provider's menu of instance types with permits proportional to
/// instance memory.
class PermitCatalog {
 public:
  /// Builds an EC2-like menu (m3/c3/r3 in two sizes each).
  /// `cap_per_mib` sets the permit granted per MiB of instance
  /// memory; the memory figures are expressed for the target machine
  /// (on the default 1/64-scaled machine, "large" ≈ tens of KiB).
  static PermitCatalog aws_like(double cap_per_mib, Bytes base_memory);

  /// Adds or replaces a type.
  void add(InstanceType type);

  const InstanceType& lookup(const std::string& name) const;
  const std::vector<InstanceType>& types() const { return types_; }

  /// Converts a booking into a VM configuration.
  hv::VmConfig vm_config(const std::string& type_name, const std::string& vm_name) const;

 private:
  std::vector<InstanceType> types_;
};

/// Per-VM billing line derived from the pollution controller.
struct BillingLine {
  std::string vm;
  double booked_cap = 0.0;        // misses/ms
  double last_measured = 0.0;     // misses/ms
  double attributed_misses = 0.0; // lifetime debited pollution
  std::int64_t punish_events = 0;
  std::int64_t punished_ticks = 0;
  bool currently_punished = false;
};

/// Collects one line per VM from a running deployment.
std::vector<BillingLine> billing_report(hv::Hypervisor& hv,
                                        const PollutionController& controller);

/// Renders the report as an ASCII table.
std::string format_billing_report(const std::vector<BillingLine>& lines);

}  // namespace kyoto::core
