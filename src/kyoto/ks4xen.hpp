// KS4Xen: the Kyoto scheduler for Xen (§3.2).
//
// Exactly the paper's delta on the Xen credit scheduler: llc_cap is
// an extra VM configuration parameter; a pollution_quota scheduling
// variable is debited while the VM runs by the monitored llc_cap_act;
// a negative quota forces the VM out of the runnable set ("priority
// OVER") until slice-end earnings bring the quota back to zero.  All
// credit mechanics (weights, caps, UNDER/OVER, work conservation)
// are inherited unchanged from hv::CreditScheduler, mirroring the
// ~110-LOC patch the paper describes.
#pragma once

#include <memory>
#include <string>

#include "hv/credit_scheduler.hpp"
#include "kyoto/controller.hpp"
#include "kyoto/monitor.hpp"

namespace kyoto::core {

class Ks4Xen final : public hv::CreditScheduler {
 public:
  explicit Ks4Xen(std::unique_ptr<PollutionMonitor> monitor =
                      std::make_unique<DirectPmcMonitor>(),
                  KyotoParams params = {})
      : controller_(std::move(monitor), params) {}

  std::string name() const override { return "KS4Xen"; }

  void attach(hv::Hypervisor& hv) override {
    hv::CreditScheduler::attach(hv);
    controller_.attach(hv);
    // Punish gating reaches the credit engine as bitmasks, not
    // virtual predicates: the hot pick loop tests controller-owned
    // punished bits with word arithmetic.
    set_kyoto_gates(controller_.blocked_gate(), controller_.demoted_gate());
  }

  void account(hv::Vcpu& vcpu, const hv::RunReport& report) override {
    hv::CreditScheduler::account(vcpu, report);
    controller_.account(vcpu, report);
  }

  void slice_end(Tick now) override {
    hv::CreditScheduler::slice_end(now);
    controller_.slice_end();
  }

  void set_reference_engine(bool on) override {
    hv::CreditScheduler::set_reference_engine(on);
    controller_.set_reference_engine(on);
  }

  PollutionController& kyoto() { return controller_; }
  const PollutionController& kyoto() const { return controller_; }

 private:
  PollutionController controller_;
};

}  // namespace kyoto::core
