#include "kyoto/monitor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "kyoto/pollution.hpp"

namespace kyoto::core {
namespace {

/// Exponential moving average used for the skip heuristics' view of a
/// VM's recent direct rate.
constexpr double kEmaAlpha = 0.3;

}  // namespace

// --------------------------------------------------------------------
// DirectPmcMonitor
// --------------------------------------------------------------------

double DirectPmcMonitor::pollution_rate(hv::Vcpu& /*vcpu*/, const hv::RunReport& report) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "monitor not attached");
  return equation1(report.pmc_delta, hv_->machine().freq_khz());
}

// --------------------------------------------------------------------
// McSimMonitor
// --------------------------------------------------------------------

McSimMonitor::McSimMonitor() : McSimMonitor(Params{}) {}

McSimMonitor::McSimMonitor(Params params) : params_(params) {
  KYOTO_CHECK_MSG(params_.sample_period_ticks > 0, "sample period must be positive");
  KYOTO_CHECK_MSG(params_.sample_instructions > 0, "sample length must be positive");
}

void McSimMonitor::attach(hv::Hypervisor& hv) {
  PollutionMonitor::attach(hv);
  simulator_ = std::make_unique<mcsim::ReplaySimulator>(hv.machine().config().mem,
                                                        hv.machine().freq_khz());
  sync_vm_slots(cache_);
}

void McSimMonitor::sample_vm(hv::Vm& vm) {
  // The pin tool attaches to vCPU 0: "We assume that vCPUs of the
  // same VM have the same behaviour.  Therefore, only one vCPU of
  // each VM is considered" (§3.3).
  const auto result =
      simulator_->replay_live(vm.vcpu(0).workload(), params_.sample_instructions);
  sync_vm_slots(cache_);
  KYOTO_DCHECK(static_cast<std::size_t>(vm.id()) < cache_.size());
  cache_[static_cast<std::size_t>(vm.id())] = result.llc_cap_act(simulator_->freq_khz());
}

double McSimMonitor::pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& /*report*/) {
  KYOTO_CHECK_MSG(simulator_ != nullptr, "monitor not attached");
  const auto vm_id = static_cast<std::size_t>(vcpu.vm().id());
  if (vm_id >= cache_.size()) sync_vm_slots(cache_);  // cold: VM admitted mid-run
  KYOTO_DCHECK(vm_id < cache_.size());
  if (cache_[vm_id] < 0.0) sample_vm(vcpu.vm());
  return cache_[vm_id];
}

void McSimMonitor::on_tick(hv::Hypervisor& hv, Tick now) {
  sync_vm_slots(cache_);
  if (now == 0 || now % params_.sample_period_ticks != 0) return;
  for (hv::Vm* vm : hv.vms()) {
    if (!vm->done()) sample_vm(*vm);
  }
}

double McSimMonitor::cached_rate(int vm_id) const {
  if (vm_id < 0 || static_cast<std::size_t>(vm_id) >= cache_.size()) return -1.0;
  return cache_[static_cast<std::size_t>(vm_id)];
}

// --------------------------------------------------------------------
// SocketDedicationMonitor
// --------------------------------------------------------------------

SocketDedicationMonitor::SocketDedicationMonitor() : SocketDedicationMonitor(Params{}) {}

SocketDedicationMonitor::SocketDedicationMonitor(Params params)
    : params_(params), rng_(params.seed) {
  KYOTO_CHECK_MSG(params_.sample_period_ticks > 0, "sample period must be positive");
  KYOTO_CHECK_MSG(params_.sample_window_ticks > 0, "sample window must be positive");
}

void SocketDedicationMonitor::attach(hv::Hypervisor& hv) {
  PollutionMonitor::attach(hv);
  KYOTO_CHECK_MSG(hv.machine().topology().sockets >= 2,
                  "socket dedication requires a multi-socket machine (vCPUs are "
                  "migrated to the other socket during sampling)");
  sync_vm_slots(cache_);
  sync_vm_slots(direct_ema_);
  next_event_ = params_.sample_period_ticks;
}

double SocketDedicationMonitor::direct_rate(int vm_id) const {
  if (vm_id < 0 || static_cast<std::size_t>(vm_id) >= direct_ema_.size()) return -1.0;
  return direct_ema_[static_cast<std::size_t>(vm_id)];
}

double SocketDedicationMonitor::pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "monitor not attached");
  const auto vm_id = static_cast<std::size_t>(vcpu.vm().id());
  if (vm_id >= direct_ema_.size() || vm_id >= cache_.size()) {
    // Cold: a VM admitted since the last tick prologue.
    sync_vm_slots(direct_ema_);
    sync_vm_slots(cache_);
  }
  KYOTO_DCHECK(vm_id < direct_ema_.size() && vm_id < cache_.size());
  if (report.pmc_delta.get(pmc::Counter::kUnhaltedCycles) > 0) {
    const double direct = equation1(report.pmc_delta, hv_->machine().freq_khz());
    double& ema = direct_ema_[vm_id];
    ema = ema < 0.0 ? direct : (1.0 - kEmaAlpha) * ema + kEmaAlpha * direct;
  }
  // Before the first dedicated sample completes, fall back to the
  // (possibly contaminated) direct rate.
  if (cache_[vm_id] >= 0.0) return cache_[vm_id];
  return std::max(0.0, direct_ema_[vm_id]);
}

void SocketDedicationMonitor::begin_campaign_step(hv::Hypervisor& hv, Tick now) {
  const auto vms = hv.vms();
  if (vms.empty()) {
    next_event_ = now + params_.sample_period_ticks;
    return;
  }

  // Round-robin target selection over live VMs.
  hv::Vm* target = nullptr;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    hv::Vm* candidate = vms[(next_target_ + i) % vms.size()];
    if (!candidate->done()) {
      target = candidate;
      next_target_ = (next_target_ + i + 1) % vms.size();
      break;
    }
  }
  if (target == nullptr) {
    next_event_ = now + params_.sample_period_ticks;
    return;
  }

  sync_vm_slots(cache_);
  KYOTO_DCHECK(static_cast<std::size_t>(target->id()) < cache_.size());
  const double own_rate = direct_rate(target->id());

  // Skip heuristic 1 (Fig 10, first pair of bars): a very quiet vCPU
  // cannot be mis-measured enough to matter.
  if (own_rate >= 0.0 && own_rate < params_.low_rate_threshold) {
    cache_[static_cast<std::size_t>(target->id())] = own_rate;
    ++skips_;
    next_event_ = now + params_.sample_period_ticks;
    return;
  }

  const auto& topo = hv.machine().topology();
  const int target_socket = topo.socket_of(target->vcpu(0).pinned_core());

  // Collect co-runners: vCPUs of other VMs pinned to the same socket.
  std::vector<hv::Vcpu*> corunners;
  for (hv::Vm* vm : vms) {
    if (vm == target) continue;
    for (auto& vcpu : vm->vcpus()) {
      if (topo.socket_of(vcpu->pinned_core()) == target_socket && !vcpu->done()) {
        corunners.push_back(vcpu.get());
      }
    }
  }

  // Skip heuristic 2 (Fig 10, second pair; Fig 11): quiet co-runners
  // cannot contaminate the measurement.
  if (params_.skip_when_corunners_quiet && !corunners.empty()) {
    const bool all_quiet = std::all_of(corunners.begin(), corunners.end(), [&](hv::Vcpu* v) {
      const double r = direct_rate(v->vm().id());
      return r >= 0.0 && r < params_.low_rate_threshold;
    });
    if (all_quiet) {
      if (own_rate >= 0.0) cache_[static_cast<std::size_t>(target->id())] = own_rate;
      ++skips_;
      next_event_ = now + params_.sample_period_ticks;
      return;
    }
  }

  if (corunners.empty()) {
    // Already alone on the socket: the direct rate is clean.
    if (own_rate >= 0.0) cache_[static_cast<std::size_t>(target->id())] = own_rate;
    next_event_ = now + params_.sample_period_ticks;
    return;
  }

  // Dedicate the socket: migrate every co-runner to the next socket.
  const int dest_socket = (target_socket + 1) % topo.sockets;
  int dest_cursor = 0;
  displaced_.clear();
  for (hv::Vcpu* vcpu : corunners) {
    displaced_.push_back(Displaced{vcpu, vcpu->pinned_core()});
    const int dest_core = topo.first_core(dest_socket) + dest_cursor;
    dest_cursor = (dest_cursor + 1) % topo.cores_per_socket;
    hv.migrate(*vcpu, dest_core);
    ++migrations_;
  }
  ++isolations_;
  target_ = target;
  phase_ = Phase::kWarming;
  next_event_ = now + params_.sample_warm_ticks;
}

void SocketDedicationMonitor::finish_window(hv::Hypervisor& hv, Tick now) {
  KYOTO_CHECK(target_ != nullptr);
  const pmc::CounterSet delta = target_->counters() - window_start_counters_;
  if (delta.get(pmc::Counter::kUnhaltedCycles) > 0) {
    cache_[static_cast<std::size_t>(target_->id())] =
        equation1(delta, hv.machine().freq_khz());
  }
  target_ = nullptr;
  phase_ = Phase::kAwaitReturn;
  // "The return migration ... is performed after a random period"
  // (§4.5) — it models the time KS4Xen takes to finish the campaign.
  next_event_ = now + static_cast<Tick>(rng_.below(
                    static_cast<std::uint64_t>(params_.max_return_delay_ticks) + 1));
}

void SocketDedicationMonitor::return_displaced(hv::Hypervisor& hv) {
  for (const Displaced& d : displaced_) {
    hv.migrate(*d.vcpu, d.original_core);
    ++migrations_;
  }
  displaced_.clear();
}

void SocketDedicationMonitor::on_tick(hv::Hypervisor& hv, Tick now) {
  sync_vm_slots(cache_);
  sync_vm_slots(direct_ema_);
  switch (phase_) {
    case Phase::kIdle:
      if (now >= next_event_) begin_campaign_step(hv, now);
      break;
    case Phase::kWarming:
      if (now >= next_event_) {
        // Reload burst absorbed; start counting clean.
        window_start_counters_ = target_->counters();
        phase_ = Phase::kSampling;
        next_event_ = now + params_.sample_window_ticks;
      }
      break;
    case Phase::kSampling:
      if (now >= next_event_) finish_window(hv, now);
      break;
    case Phase::kAwaitReturn:
      if (now >= next_event_) {
        return_displaced(hv);
        phase_ = Phase::kIdle;
        next_event_ = now + params_.sample_period_ticks;
      }
      break;
  }
}

void SocketDedicationMonitor::vm_removed(hv::Vm& vm) {
  // Forget displaced vCPUs that belong to the departing VM: they are
  // about to die and must never be migrated back.
  displaced_.erase(std::remove_if(displaced_.begin(), displaced_.end(),
                                  [&vm](const Displaced& d) { return &d.vcpu->vm() == &vm; }),
                   displaced_.end());
  if (target_ == &vm) {
    // Abort the in-flight step (kWarming/kSampling): the window can
    // never finish, so return the surviving displaced vCPUs home and
    // go idle.  The stale next_event_ just schedules the next step.
    if (hv_ != nullptr) return_displaced(*hv_);
    target_ = nullptr;
    phase_ = Phase::kIdle;
  }
}

double SocketDedicationMonitor::cached_rate(int vm_id) const {
  if (vm_id < 0 || static_cast<std::size_t>(vm_id) >= cache_.size()) return -1.0;
  return cache_[static_cast<std::size_t>(vm_id)];
}

}  // namespace kyoto::core
