#include "kyoto/permits.hpp"

#include "common/check.hpp"
#include "common/table.hpp"

namespace kyoto::core {

PermitCatalog PermitCatalog::aws_like(double cap_per_mib, Bytes base_memory) {
  KYOTO_CHECK_MSG(cap_per_mib > 0.0, "permit rate must be positive");
  KYOTO_CHECK_MSG(base_memory > 0, "base memory must be positive");
  const auto mib = [](Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0); };
  PermitCatalog catalog;
  struct Blueprint {
    const char* name;
    int vcpus;
    double memory_factor;  // relative to base_memory
    int weight;
  };
  // m3 = general purpose, c3 = compute optimized (little memory =>
  // small permit), r3 = memory optimized (big permit).
  const Blueprint blueprints[] = {
      {"m3.medium", 1, 1.0, 256},  {"m3.large", 2, 2.0, 512},
      {"c3.medium", 1, 0.5, 256},  {"c3.large", 2, 1.0, 512},
      {"r3.medium", 1, 4.0, 256},  {"r3.large", 2, 8.0, 512},
  };
  for (const auto& b : blueprints) {
    const Bytes memory =
        static_cast<Bytes>(b.memory_factor * static_cast<double>(base_memory));
    catalog.add(InstanceType{b.name, b.vcpus, memory, b.weight, cap_per_mib * mib(memory)});
  }
  return catalog;
}

void PermitCatalog::add(InstanceType type) {
  KYOTO_CHECK_MSG(!type.name.empty(), "instance type needs a name");
  KYOTO_CHECK_MSG(type.vcpus >= 1, "instance type needs at least one vCPU");
  for (auto& existing : types_) {
    if (existing.name == type.name) {
      existing = std::move(type);
      return;
    }
  }
  types_.push_back(std::move(type));
}

const InstanceType& PermitCatalog::lookup(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  KYOTO_CHECK_MSG(false, "unknown instance type: " << name);
  return types_.front();  // unreachable
}

hv::VmConfig PermitCatalog::vm_config(const std::string& type_name,
                                      const std::string& vm_name) const {
  const InstanceType& type = lookup(type_name);
  hv::VmConfig config;
  config.name = vm_name;
  config.weight = type.weight;
  config.llc_cap = type.llc_cap;
  config.memory = type.memory;
  return config;
}

std::vector<BillingLine> billing_report(hv::Hypervisor& hv,
                                        const PollutionController& controller) {
  std::vector<BillingLine> lines;
  for (hv::Vm* vm : hv.vms()) {
    const auto& st = controller.state(*vm);
    BillingLine line;
    line.vm = vm->name();
    line.booked_cap = st.booked;
    line.last_measured = st.last_rate;
    line.attributed_misses = st.debited_total;
    line.punish_events = st.punish_events;
    line.punished_ticks = st.punished_ticks;
    line.currently_punished = st.punished;
    lines.push_back(line);
  }
  return lines;
}

std::string format_billing_report(const std::vector<BillingLine>& lines) {
  TextTable table({"VM", "booked llc_cap (miss/ms)", "last measured", "attributed misses",
                   "punish events", "punished ticks", "state"});
  for (const auto& l : lines) {
    table.add_row({l.vm, fmt_double(l.booked_cap, 1), fmt_double(l.last_measured, 1),
                   fmt_count(static_cast<long long>(l.attributed_misses)),
                   fmt_count(l.punish_events), fmt_count(l.punished_ticks),
                   l.currently_punished ? "PUNISHED" : "ok"});
  }
  return table.to_string();
}

}  // namespace kyoto::core
