#include "kyoto/ground_truth.hpp"

#include "common/check.hpp"
#include "kyoto/pollution.hpp"

namespace kyoto::core {

GroundTruthReading read_ground_truth(const hv::Hypervisor& hv, int vm_id) {
  GroundTruthReading reading;
  const cache::MemorySystem& memory = hv.machine().memory();
  const int sockets = hv.machine().topology().sockets;
  for (int socket = 0; socket < sockets; ++socket) {
    const cache::SetAssocCache& llc = memory.llc(socket);
    reading.footprint_lines += llc.footprint_lines(vm_id);
    reading.misses += llc.stats_for_vm(vm_id).misses;
    const cache::VmPollution& pollution = llc.pollution_for_vm(vm_id);
    reading.contention_misses += pollution.contention_misses;
    reading.cross_evictions_inflicted += pollution.cross_evictions_inflicted;
    reading.cross_evictions_suffered += pollution.cross_evictions_suffered;
  }
  return reading;
}

// --------------------------------------------------------------------
// GroundTruthMonitor
// --------------------------------------------------------------------

void GroundTruthMonitor::attach(hv::Hypervisor& hv) {
  PollutionMonitor::attach(hv);
  const auto n = static_cast<std::size_t>(hv.vm_count());
  if (last_intrinsic_.size() < n) last_intrinsic_.resize(n, 0);
  if (cache_.size() < n) cache_.resize(n, -1.0);
}

double GroundTruthMonitor::pollution_rate(hv::Vcpu& vcpu, const hv::RunReport& report) {
  KYOTO_CHECK_MSG(hv_ != nullptr, "monitor not attached");
  const int vm_id = vcpu.vm().id();
  const auto idx = static_cast<std::size_t>(vm_id);
  if (idx >= last_intrinsic_.size()) {
    // Cold: a VM admitted since attach.  Its counters started at zero,
    // so a zero snapshot charges exactly its history to this burst.
    last_intrinsic_.resize(idx + 1, 0);
    cache_.resize(idx + 1, -1.0);
  }
  const GroundTruthReading reading = read_ground_truth(*hv_, vm_id);
  const std::uint64_t intrinsic = reading.intrinsic_misses();
  KYOTO_DCHECK(intrinsic >= last_intrinsic_[idx]);
  const std::uint64_t delta = intrinsic - last_intrinsic_[idx];
  last_intrinsic_[idx] = intrinsic;
  const double rate = equation1(delta, hv_->machine().freq_khz(),
                                report.pmc_delta.get(pmc::Counter::kUnhaltedCycles));
  cache_[idx] = rate;
  return rate;
}

double GroundTruthMonitor::cached_rate(int vm_id) const {
  if (vm_id < 0 || static_cast<std::size_t>(vm_id) >= cache_.size()) return -1.0;
  return cache_[static_cast<std::size_t>(vm_id)];
}

// --------------------------------------------------------------------
// GroundTruthShadow
// --------------------------------------------------------------------

GroundTruthShadow::GroundTruthShadow(hv::Hypervisor& hv,
                                     const PollutionController* controller)
    : controller_(controller) {
  // Baseline the VMs that already exist (and possibly already ran):
  // their first sample must cover only the next tick, not history.
  const int n = hv.vm_count();
  cursors_.resize(static_cast<std::size_t>(n));
  samples_.resize(static_cast<std::size_t>(n));
  for (int vm_id = 0; vm_id < n; ++vm_id) {
    const hv::Vm* vm = hv.find_vm(vm_id);
    if (vm == nullptr) continue;  // departed before the shadow attached
    VmCursor& cursor = cursors_[static_cast<std::size_t>(vm_id)];
    cursor.last = read_ground_truth(hv, vm_id);
    cursor.last_counters = vm->counters();
  }
  hv.add_account_hook(
      [this](hv::Vcpu& vcpu, const hv::RunReport& report) { on_account(vcpu, report); });
  hv.add_tick_hook([this](hv::Hypervisor& h, Tick now) { on_tick(h, now); });
}

void GroundTruthShadow::on_account(hv::Vcpu& vcpu, const hv::RunReport& /*report*/) {
  const auto idx = static_cast<std::size_t>(vcpu.vm().id());
  if (idx >= cursors_.size()) {
    cursors_.resize(idx + 1);
    samples_.resize(idx + 1);
  }
  VmCursor& cursor = cursors_[idx];
  cursor.ran_this_tick = true;
  // Read the estimator at burst granularity: for multi-vCPU VMs the
  // tick hook would only see the last burst anyway, and this is the
  // freshest value the controller actually debited with.
  if (controller_ != nullptr) {
    cursor.last_burst_rate = controller_->state(vcpu.vm()).last_rate;
  }
}

void GroundTruthShadow::on_tick(hv::Hypervisor& hv, Tick now) {
  const auto n = static_cast<std::size_t>(hv.vm_count());
  if (cursors_.size() < n) {
    cursors_.resize(n);
    samples_.resize(n);
  }
  const KHz freq = hv.machine().freq_khz();
  for (std::size_t idx = 0; idx < n; ++idx) {
    VmCursor& cursor = cursors_[idx];
    const int vm_id = static_cast<int>(idx);
    const hv::Vm* vm = hv.find_vm(vm_id);
    if (vm == nullptr) continue;  // departed: its sample stream simply ends
    const GroundTruthReading reading = read_ground_truth(hv, vm_id);
    const pmc::CounterSet counters = vm->counters();
    // A VM admitted mid-run gets a default (all-zero) cursor, which is
    // the correct baseline: its counters started at zero, so its first
    // sample covers exactly its first tick.
    Sample sample;
    sample.tick = now;
    sample.ran = cursor.ran_this_tick;
    sample.footprint_lines = reading.footprint_lines;
    sample.misses = reading.misses - cursor.last.misses;
    sample.contention_misses = reading.contention_misses - cursor.last.contention_misses;
    sample.cross_evictions_inflicted =
        reading.cross_evictions_inflicted - cursor.last.cross_evictions_inflicted;
    sample.cross_evictions_suffered =
        reading.cross_evictions_suffered - cursor.last.cross_evictions_suffered;
    const pmc::CounterSet delta = counters - cursor.last_counters;
    sample.cycles = delta.get(pmc::Counter::kUnhaltedCycles);
    sample.true_rate =
        equation1(sample.misses - sample.contention_misses, freq, sample.cycles);
    sample.direct_rate = equation1(delta, freq);
    sample.estimator_rate = cursor.ran_this_tick ? cursor.last_burst_rate : -1.0;
    cursor.last = reading;
    cursor.last_counters = counters;
    cursor.ran_this_tick = false;
    samples_[idx].push_back(sample);
  }
}

}  // namespace kyoto::core
