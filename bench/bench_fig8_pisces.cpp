// Fig 8 — "Comparison of Kyoto with Pisces."
//
// vsen1 (gcc) runs to completion on a dedicated core, alone and
// colocated with vdis1 (lbm) on another dedicated core of the same
// socket.  Under vanilla Pisces the colocated run is ~24% slower —
// the co-kernel removes software interference but cannot partition
// the LLC.  Under KS4Pisces (same permits as Fig 5) the colocated
// execution time returns to the solo level.
//
// Runs on the sweep API in two batches: the solo probe (memoized
// add_solo under the default credit scheduler, exactly run_solo's
// semantics) sizes the permit, then the four execution-time runs go
// through SweepRunner::add_completion — the run-to-completion job
// shape — so this figure shards across lanes and farms across worker
// processes like every windowed figure.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4pisces.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  bench::header("Fig 8", "Pisces vs KS4Pisces execution time (vsen1 alone / colocated)",
                "Pisces: colocated run clearly slower (paper: ~24%); KS4Pisces: gap closed");

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  auto factory = [&](const std::string& name) {
    return [name, mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
  };

  sim::SweepRunner sweep(ThreadPool::hardware_lanes());

  // Permit sized like Fig 5 (measure gcc's rate under the credit
  // scheduler first — the permit is a property of the booking, not of
  // the scheduler).  Batch 1: the probe.
  sim::RunSpec probe = spec;
  probe.warmup_ticks = 6;
  probe.measure_ticks = 30;
  sweep.add_solo(probe, factory("gcc"), "gcc", "gcc");
  const auto gcc_solo = sweep.run().at(0).vms.at(0);
  const double permit = gcc_solo.llc_cap_act * 1.5 + 8.0;

  // Batch 2: the four execution-time runs.
  const Tick max_ticks = 20'000;
  auto submit = [&](bool kyoto, bool colocated) {
    sim::RunSpec rspec = spec;
    rspec.scheduler = [kyoto]() -> std::unique_ptr<hv::Scheduler> {
      if (kyoto) return std::make_unique<core::Ks4Pisces>();
      return std::make_unique<hv::PiscesScheduler>();
    };
    std::vector<sim::VmPlan> plans;
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.config.llc_cap = kyoto ? permit : 0.0;
    sen.workload = factory("gcc");
    sen.pinned_cores = {0};
    plans.push_back(sen);
    if (colocated) {
      sim::VmPlan dis;
      dis.config.name = "lbm";
      dis.config.llc_cap = kyoto ? permit : 0.0;
      dis.config.loop_workload = true;
      dis.workload = factory("lbm");
      dis.pinned_cores = {1};
      plans.push_back(dis);
    }
    return sweep.add_completion(rspec, std::move(plans), 0, max_ticks,
                                std::string(kyoto ? "ks4pisces" : "pisces") +
                                    (colocated ? "/colocated" : "/alone"));
  };

  const std::size_t i_pisces_alone = submit(false, false);
  const std::size_t i_pisces_coloc = submit(false, true);
  const std::size_t i_ks_alone = submit(true, false);
  const std::size_t i_ks_coloc = submit(true, true);
  const auto outcomes = sweep.run();
  const double pisces_alone = outcomes[i_pisces_alone].completion_ms;
  const double pisces_coloc = outcomes[i_pisces_coloc].completion_ms;
  const double ks_alone = outcomes[i_ks_alone].completion_ms;
  const double ks_coloc = outcomes[i_ks_coloc].completion_ms;

  TextTable table({"system", "vsen1 alone (ms)", "vsen1 colocated (ms)", "gap"});
  table.add_row({"Pisces", fmt_double(pisces_alone, 0), fmt_double(pisces_coloc, 0),
                 fmt_double(sim::degradation_pct(pisces_coloc, pisces_alone), 1) + " %"});
  table.add_row({"KS4Pisces", fmt_double(ks_alone, 0), fmt_double(ks_coloc, 0),
                 fmt_double(sim::degradation_pct(ks_coloc, ks_alone), 1) + " %"});
  std::cout << table << '\n';

  bool ok = true;
  const double pisces_gap = (pisces_coloc - pisces_alone) / pisces_alone * 100.0;
  const double ks_gap = (ks_coloc - ks_alone) / ks_alone * 100.0;
  std::cout << "Pisces colocation penalty: " << fmt_double(pisces_gap, 1)
            << " %   KS4Pisces: " << fmt_double(ks_gap, 1) << " %\n\n";
  ok &= bench::check("all runs completed", pisces_alone > 0 && pisces_coloc > 0 &&
                                               ks_alone > 0 && ks_coloc > 0);
  ok &= bench::check("Pisces leaks LLC contention (penalty > 10%, paper: ~24%)",
                     pisces_gap > 10.0);
  ok &= bench::check("KS4Pisces closes the gap (< 1/3 of Pisces's penalty)",
                     ks_gap < pisces_gap / 3.0);
  ok &= bench::check("KS4Pisces does not slow the solo run", ks_alone < pisces_alone * 1.05);
  return bench::verdict(ok);
}
