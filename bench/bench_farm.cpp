// BENCH farm — process-farm sweep execution (not a paper figure).
//
// Engineering harness for sim::FarmRunner, the distributed form of
// the sweep: a batch of scenario jobs executes across sweep_worker
// processes and must reproduce the in-process SweepRunner outcomes
// *byte for byte* — at every worker count, with a worker SIGKILLed
// mid-batch, and across a checkpoint interrupt/resume split.  All
// three agreements always gate (they are determinism claims, not perf
// claims, so they hold on any host and any build type); wall-clock
// throughput per worker count is recorded in the JSON for the
// trajectory but never gated — process spawn + pipe framing overhead
// on tiny jobs is expected and documented.
//
// Phase 4 is the multi-host drill: the same batch through
// sim::HostFarm across four simulated hosts — one killed mid-shard,
// one corrupting its result files, one hung past the shard deadline,
// one healthy — must converge byte-identical through quarantine and
// shard redistribution.  Its per-host attempt/quarantine counters land
// in the JSON (schema 2) and the structured farm report can be saved
// with --report for CI artifacts.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/farm_runner.hpp"
#include "sim/host_farm.hpp"
#include "sim/scenario_file.hpp"
#include "sim/sweep_runner.hpp"

using namespace kyoto;

namespace {

std::string tiny_scenario(const std::string& app, int measure_ticks, int seed) {
  return
      "[machine]\n"
      "topology = 1x2\n"
      "scale = 64\n"
      "\n"
      "[scheduler]\n"
      "kind = ks4xen\n"
      "monitor = direct\n"
      "punish = block\n"
      "\n"
      "[vm tenant]\n"
      "app = " + app + "\n"
      "cores = 0\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[vm noisy]\n"
      "app = lbm\n"
      "cores = 1\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[run]\n"
      "warmup_ticks = 2\n"
      "measure_ticks = " + std::to_string(measure_ticks) + "\n"
      "seed = " + std::to_string(seed) + "\n";
}

std::vector<std::pair<std::string, std::string>> farm_batch(int measure_ticks) {
  std::vector<std::pair<std::string, std::string>> jobs;
  int seed = 1;
  for (const char* app : {"gcc", "mcf", "omnetpp", "hmmer"}) {
    for (int rep = 0; rep < 2; ++rep) {
      jobs.emplace_back(std::string(app) + "/" + std::to_string(seed),
                        tiny_scenario(app, measure_ticks, seed));
      ++seed;
    }
  }
  return jobs;
}

struct FarmResult {
  int workers = 1;
  double seconds = 0.0;
  int respawns = 0;
  int retries = 0;
  bool in_process = false;
  std::vector<sim::RunOutcome> outcomes;
};

FarmResult run_farm(const std::vector<std::pair<std::string, std::string>>& jobs,
                    sim::FarmOptions options) {
  FarmResult result;
  result.workers = options.workers;
  sim::FarmRunner farm(std::move(options));
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const auto t0 = std::chrono::steady_clock::now();
  result.outcomes = farm.run();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.respawns = farm.worker_respawns();
  result.retries = farm.job_retries();
  result.in_process = farm.ran_in_process();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_farm.json";
  std::string report_path;
  std::string worker = sim::FarmRunner::default_worker_path(argv[0]);
  bool quick = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = value();
    else if (arg == "--report") report_path = value();
    else if (arg == "--worker") worker = value();
    else if (arg == "--quick") quick = true;
    else {
      std::cerr << "usage: bench_farm [--json PATH] [--report PATH] "
                   "[--worker SWEEP_WORKER] [--quick]\n";
      return 2;
    }
  }

  bench::header("BENCH farm", "process-farm sweep execution (not a paper figure)",
                "farm outcomes byte-identical to the in-process SweepRunner at every "
                "worker count, under an injected worker kill, and across a "
                "checkpoint interrupt/resume split");

  const int measure = quick ? 5 : 12;
  const auto jobs = farm_batch(measure);

  // The oracle: the same jobs through the in-process SweepRunner.
  sim::SweepRunner sweep(2);
  for (const auto& [label, text] : jobs) {
    const sim::Scenario scenario = sim::parse_scenario(text);
    sweep.add(scenario.spec, scenario.plans, label);
  }
  const std::vector<sim::RunOutcome> expected = sweep.run();

  const bool have_worker = !worker.empty() && ::access(worker.c_str(), X_OK) == 0;
  if (!have_worker) {
    std::cout << "  NOTE: sweep_worker not found (" << (worker.empty() ? "no path" : worker)
              << "); exercising the in-process degradation path only.\n\n";
  }

  bool all_ok = true;
  TextTable table({"workers", "seconds", "jobs/s", "respawns", "retries", "agreement"});
  std::vector<FarmResult> runs;

  // Phase 1: worker counts {1, 2, 4}.
  for (const int workers : {1, 2, 4}) {
    sim::FarmOptions options;
    options.workers = workers;
    options.worker_path = have_worker ? worker : "";
    FarmResult r = run_farm(jobs, std::move(options));
    const bool agree = r.outcomes == expected;
    all_ok &= agree;
    table.add_row({std::to_string(workers) + (r.in_process ? " (in-proc)" : ""),
                   fmt_double(r.seconds, 2),
                   fmt_double(static_cast<double>(jobs.size()) / r.seconds, 2),
                   std::to_string(r.respawns), std::to_string(r.retries),
                   agree ? "exact" : "MISMATCH"});
    runs.push_back(std::move(r));
  }

  // Phase 2: one injected kill — every worker process dies on its 2nd
  // job, so the batch only converges through respawn + retry.
  bool kill_agree = true;
  int kill_respawns = 0;
  if (have_worker) {
    sim::FarmOptions options;
    options.workers = 2;
    options.worker_path = worker;
    options.worker_args = {"--fault-kill-after", "2"};
    // A worker that dies on every 2nd job can tax one retry per
    // interleaved completion before a fresh respawn absorbs the job;
    // budget one retry per job so the drill gates convergence, not
    // scheduling luck.
    options.max_retries = static_cast<int>(jobs.size());
    FarmResult r = run_farm(jobs, std::move(options));
    kill_agree = r.outcomes == expected;
    kill_respawns = r.respawns;
    all_ok &= kill_agree;
    table.add_row({"2 + kill", fmt_double(r.seconds, 2),
                   fmt_double(static_cast<double>(jobs.size()) / r.seconds, 2),
                   std::to_string(r.respawns), std::to_string(r.retries),
                   kill_agree ? "exact" : "MISMATCH"});
  }

  // Phase 3: checkpoint interrupt after 3 completions, then resume.
  const std::string ckpt = json_path + ".farm_ckpt";
  std::remove(ckpt.c_str());
  bool resume_agree = true;
  int restored = 0;
  {
    sim::FarmOptions options;
    options.workers = 2;
    options.worker_path = have_worker ? worker : "";
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 1;
    options.abort_after_completed = 3;
    sim::FarmRunner farm(options);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    try {
      farm.run();
      resume_agree = false;  // the interrupt must fire
    } catch (const sim::FarmInterrupted&) {
    }
  }
  {
    sim::FarmOptions options;
    options.workers = 2;
    options.worker_path = have_worker ? worker : "";
    options.checkpoint_path = ckpt;
    sim::FarmRunner farm(options);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    const auto outcomes = farm.run();
    restored = farm.jobs_restored();
    resume_agree = resume_agree && outcomes == expected && restored >= 3 &&
                   restored + farm.jobs_executed() == static_cast<int>(jobs.size());
    all_ok &= resume_agree;
  }
  std::remove(ckpt.c_str());

  // Phase 4: multi-host drill.  Four simulated hosts — one killed
  // mid-shard, one corrupting result files, one hanging past the
  // shard deadline, one healthy — must converge byte-identical via
  // quarantine + redistribution.
  bool multi_agree = true;
  int multi_quarantines = 0;
  int multi_host_failures = 0;
  std::string farm_report;
  std::vector<sim::HostStats> host_stats;
  if (have_worker) {
    const std::string host_dir = json_path + ".farm_hosts";
    ::mkdir(host_dir.c_str(), 0755);
    sim::HostFarmOptions options;
    options.work_dir = host_dir;
    options.jobs_per_shard = 1;
    options.host_failure_budget = 1;
    options.max_quarantines = 1;
    options.backoff.base_s = 0.02;
    options.shard_timeout_s = quick ? 1.5 : 4.0;
    options.hosts.push_back(sim::HostSpec{"h-kill", worker, {"--fault-kill-after", "1"}});
    options.hosts.push_back(
        sim::HostSpec{"h-corrupt", worker, {"--fault-corrupt-results", "bitflip"}});
    options.hosts.push_back(sim::HostSpec{"h-hang", worker, {"--fault-hang-after", "1"}});
    options.hosts.push_back(sim::HostSpec{"h-ok", worker, {}});
    sim::HostFarm hosts(options);
    for (const auto& [label, text] : jobs) hosts.add(text, label);
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = hosts.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    multi_agree = outcomes == expected && !hosts.degraded();
    multi_quarantines = hosts.health()->quarantine_count();
    multi_host_failures = hosts.host_failure_count();
    farm_report = hosts.report();
    host_stats = hosts.health()->all_stats();
    all_ok &= multi_agree;
    if (multi_agree) std::filesystem::remove_all(host_dir);  // keep shards on failure
    table.add_row({"4 hosts + faults", fmt_double(seconds, 2),
                   fmt_double(static_cast<double>(jobs.size()) / seconds, 2),
                   std::to_string(hosts.shard_attempts()),
                   std::to_string(multi_host_failures),
                   multi_agree ? "exact" : "MISMATCH"});
  }

  std::cout << "  " << jobs.size() << " jobs, 2+" << measure << " ticks each, worker: "
            << (have_worker ? worker : "(in-process)") << "\n\n"
            << table << '\n';

  all_ok &= bench::check("farm outcomes byte-identical to SweepRunner at workers {1,2,4}",
                         all_ok);
  if (have_worker) {
    all_ok &= bench::check("injected SIGKILL: batch retries to the identical result "
                           "(respawns >= 1)",
                           kill_agree && kill_respawns >= 1);
  }
  all_ok &= bench::check("checkpoint interrupt/resume: restored >= 3 of " +
                             std::to_string(jobs.size()) +
                             " jobs, merged result byte-identical",
                         resume_agree);
  if (have_worker) {
    all_ok &= bench::check("multi-host drill: kill+corrupt+hang+ok hosts converge "
                           "byte-identical (quarantines >= 1)",
                           multi_agree && multi_quarantines >= 1 && multi_host_failures >= 3);
  }

  // JSON record for the trajectory (schema in README.md).  Schema 2
  // adds the additive multi_host section with per-host counters.
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"farm\",\n  \"schema\": 2,\n"
       << "  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"jobs\": " << jobs.size()
       << ",\n  \"worker_available\": " << (have_worker ? "true" : "false")
       << ",\n  \"restored_on_resume\": " << restored
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const FarmResult& r = runs[i];
    json << "    {\"workers\": " << r.workers << ", \"seconds\": " << r.seconds
         << ", \"in_process\": " << (r.in_process ? "true" : "false") << "}"
         << (i + 1 == runs.size() ? "\n" : ",\n");
  }
  json << "  ],\n  \"multi_host\": {\n"
       << "    \"ran\": " << (have_worker ? "true" : "false")
       << ",\n    \"agree\": " << (multi_agree ? "true" : "false")
       << ",\n    \"host_failures\": " << multi_host_failures
       << ",\n    \"quarantines\": " << multi_quarantines << ",\n    \"hosts\": [\n";
  for (std::size_t i = 0; i < host_stats.size(); ++i) {
    const sim::HostStats& h = host_stats[i];
    json << "      {\"id\": \"" << h.id << "\", \"state\": \""
         << sim::host_state_name(h.state) << "\", \"attempts\": " << h.shards_dispatched
         << ", \"jobs_completed\": " << h.jobs_completed
         << ", \"failures\": " << h.failures << ", \"quarantines\": " << h.quarantines
         << "}" << (i + 1 == host_stats.size() ? "\n" : ",\n");
  }
  json << "    ]\n  }\n}\n";
  json.close();
  std::cout << "\n  JSON written to " << json_path << '\n';

  if (!report_path.empty()) {
    std::ofstream report(report_path);
    report << (farm_report.empty() ? "multi-host drill skipped: sweep_worker not found\n"
                                   : farm_report);
    std::cout << "  farm report written to " << report_path << '\n';
  }

  return bench::verdict(all_ok);
}
