// BENCH sweep — figure-scale experiment fan-out (jobs/sec, serial vs
// sharded).
//
// Not a paper figure: this is the engineering harness for
// sim::SweepRunner, the subsystem that replays a *whole figure* — N
// VM mixes × M schedulers, each normalized against a solo baseline —
// as independent share-nothing jobs, one private hypervisor per lane.
// The batch mirrors the fig-6 driver shape: colocation mixes under
// the vanilla credit scheduler and KS4Xen, plus per-comparison solo
// baselines that the memoized solo cache collapses to one simulation
// per distinct (machine, workload, seed, window) key.
//
// The batch is executed once per lane count (1 = the serial loop, the
// baseline).  Exact agreement is ALWAYS enforced: every lane count
// must reproduce the serial outcomes byte-for-byte, in submission
// order — only wall-clock time may change.  The sharded speedup is
// recorded in BENCH_sweep.json for the perf trajectory and only
// *gated* (--min-sweep-speedup) when the host has at least as many
// CPUs as lanes, so CI stays hardware-agnostic (a 1-vCPU container
// can only document sharding overhead, not scaling).
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "hv/credit_scheduler.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

struct MixDef {
  const char* name;
  const char* sensitive;   // the tenant normalized against its solo run
  const char* disruptive;  // the looping co-tenant
};

// Fig-1/Fig-6 style colocation mixes: one cache-sensitive tenant, one
// polluter, covering the hit-heavy and miss-heavy regimes.
const std::vector<MixDef> kMixes = {
    {"gcc_lbm", "gcc", "lbm"},
    {"omnetpp_xalan", "omnetpp", "xalan"},
    {"soplex_mcf", "soplex", "mcf"},
    {"hmmer_blockie", "hmmer", "blockie"},
};

struct SweepResult {
  int lanes = 1;
  double seconds = 0.0;
  std::size_t jobs = 0;            // submitted (scenario + solo requests)
  std::size_t executed = 0;        // jobs that actually built a hypervisor
  double hit_rate = 0.0;           // solo memoization
  std::vector<sim::RunOutcome> outcomes;
  double jobs_per_sec() const { return static_cast<double>(jobs) / seconds; }
};

/// Submits the figure batch: per mix, one XCS scenario + one KS4Xen
/// scenario, each preceded by the sensitive tenant's solo-baseline
/// request (the duplicate requests exercise the memo cache exactly
/// the way quickstart/scheduler_tour do).
void submit_batch(sim::SweepRunner& sweep, Tick warmup, Tick measure) {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = warmup;
  spec.measure_ticks = measure;
  const auto mem = spec.machine.mem;
  for (const MixDef& mix : kMixes) {
    const auto sensitive = [mix, mem](std::uint64_t s) {
      return workloads::make_app(mix.sensitive, mem, s);
    };
    const auto disruptive = [mix, mem](std::uint64_t s) {
      return workloads::make_app(mix.disruptive, mem, s);
    };
    for (const bool kyoto : {false, true}) {
      sim::RunSpec rspec = spec;
      if (kyoto) {
        rspec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
      }
      sweep.add_solo(spec, sensitive, mix.sensitive, mix.sensitive);
      sim::VmPlan sen;
      sen.config.name = mix.sensitive;
      sen.config.llc_cap = kyoto ? 25.0 : 0.0;
      sen.workload = sensitive;
      sen.pinned_cores = {0};
      sim::VmPlan dis;
      dis.config.name = mix.disruptive;
      dis.config.llc_cap = kyoto ? 25.0 : 0.0;
      dis.config.loop_workload = true;
      dis.workload = disruptive;
      dis.pinned_cores = {1};
      sweep.add(rspec, {sen, dis}, std::string(mix.name) + (kyoto ? "/ks4xen" : "/xcs"));
    }
  }
}

SweepResult run_batch(int lanes, Tick warmup, Tick measure) {
  sim::SweepRunner sweep(lanes);
  submit_batch(sweep, warmup, measure);
  SweepResult result;
  result.lanes = lanes;
  result.jobs = sweep.pending();
  const auto t0 = std::chrono::steady_clock::now();
  result.outcomes = sweep.run();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.executed = result.jobs - static_cast<std::size_t>(sweep.solo_memo_hits());
  result.hit_rate = sweep.solo_hit_rate();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sweep.json";
  double min_sweep_speedup = 0.0;
  int max_lanes = 4;
  bool quick = bench::quick_mode();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = value();
    else if (arg == "--min-sweep-speedup") min_sweep_speedup = std::stod(value());
    else if (arg == "--lanes") max_lanes = std::stoi(value());
    else if (arg == "--quick") quick = true;
    else {
      std::cerr << "usage: bench_sweep [--json PATH] [--lanes N] "
                   "[--min-sweep-speedup X] [--quick]\n";
      return 2;
    }
  }
  const Tick warmup = 3;
  const Tick measure = quick ? 15 : 45;

  bench::header("BENCH sweep", "sharded experiment fan-out (not a paper figure)",
                "a figure-scale batch of independent scenarios executes one "
                "hypervisor per lane with byte-identical results at every lane "
                "count, solo baselines memoized");

  std::vector<int> lane_counts = {1};
  for (const int l : {2, 4}) {
    if (l <= max_lanes) lane_counts.push_back(l);
  }
  std::vector<SweepResult> runs;
  for (const int lanes : lane_counts) runs.push_back(run_batch(lanes, warmup, measure));
  const SweepResult& serial = runs.front();
  const int host_cpus = ThreadPool::hardware_lanes();

  TextTable table({"lanes", "jobs", "executed", "solo hit rate", "seconds", "jobs/s",
                   "speedup"});
  bool agree = true;
  for (const SweepResult& run : runs) {
    agree &= run.outcomes == serial.outcomes;
    table.add_row({std::to_string(run.lanes), std::to_string(run.jobs),
                   std::to_string(run.executed), fmt_double(run.hit_rate * 100, 0) + " %",
                   fmt_double(run.seconds, 2), fmt_double(run.jobs_per_sec(), 2),
                   fmt_double(run.jobs_per_sec() / serial.jobs_per_sec(), 2) + "x"});
  }
  std::cout << "  " << kMixes.size() << " mixes x {xcs, ks4xen} + per-comparison solo "
            << "baselines, " << warmup << "+" << measure << " ticks/job, host cpus: "
            << host_cpus << "\n\n"
            << table << '\n';

  bool all_ok = true;
  all_ok &= bench::check(
      "sharded outcomes byte-identical to the serial loop at every lane count "
      "(submission order)",
      agree);
  all_ok &= bench::check("solo memoization: half the baseline requests answered "
                         "from the cache",
                         serial.hit_rate == 0.5 && serial.executed + 4 == serial.jobs);

  const double best_speedup =
      runs.back().jobs_per_sec() / serial.jobs_per_sec();
  if (min_sweep_speedup > 0.0) {
    if (host_cpus >= lane_counts.back()) {
      all_ok &= bench::check("lanes=" + std::to_string(lane_counts.back()) +
                                 " sweep speedup >= " + fmt_double(min_sweep_speedup, 1) +
                                 "x vs serial loop",
                             best_speedup >= min_sweep_speedup);
    } else {
      std::cout << "  (sweep speedup gate skipped: host has " << host_cpus
                << " cpu(s) for " << lane_counts.back() << " lanes)\n";
    }
  }

  // JSON record for the perf trajectory (schema in README.md).
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"sweep\",\n  \"schema\": 1,\n"
       << "  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"host_cpus\": " << host_cpus
       << ",\n  \"mixes\": " << kMixes.size()
       << ",\n  \"ticks_per_job\": " << (warmup + measure)
       << ",\n  \"jobs\": " << serial.jobs
       << ",\n  \"executed_jobs\": " << serial.executed
       << ",\n  \"solo_memo_hit_rate\": " << serial.hit_rate
       << ",\n  \"exact_agreement\": " << (agree ? "true" : "false")
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepResult& r = runs[i];
    json << "    {\"lanes\": " << r.lanes << ", \"seconds\": " << r.seconds
         << ", \"jobs_per_sec\": " << r.jobs_per_sec()
         << ", \"speedup_vs_serial\": " << r.jobs_per_sec() / serial.jobs_per_sec() << "}"
         << (i + 1 == runs.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\n  JSON written to " << json_path << '\n';

  return bench::verdict(all_ok);
}
