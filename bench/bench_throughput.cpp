// BENCH throughput — raw access-engine speed (accesses/sec, ns/access).
//
// Not a paper figure: this is the engineering harness for the hot
// path that *every* figure replays millions of times
// (Machine::run_vcpu → MemorySystem::access → SetAssocCache::access).
// It drives the streaming and random reference mixes of the Fig 1
// micro-VM classes through four engine/stream combinations:
//
//   baseline — a faithful replica of the pre-overhaul engine
//              (reference_cache.hpp: AoS lines, per-op virtual
//              workload dispatch, per-access requester/socket/modulo
//              setup, unique_ptr-indirected per-level calls exactly
//              like the old MemorySystem), re-measured live so the
//              before/after comparison is valid on any machine;
//   unfused  — the PR 4 engine: SoA SetAssocCache with the general
//              fill bodies, serial three-call walk, v1 streams
//              (set_fused_miss_path(false) + set_fill_fast_paths
//              (false));
//   current  — the production engine: fused multi-level miss walk,
//              pruned-LRU fills + nibble-order victims, v1 streams;
//   fast     — the production engine consuming v2 compiled streams
//              through the geometric-skip ref-batch form.
//
// The three v1 rows replay the *identical* op stream and the bench
// asserts their hit/miss counters and simulated stall cycles match
// exactly — the bench-level bit-identity gate for the fused walk —
// before trusting any timing; the v2 row is gated on statistical
// equivalence (accesses within 1%, LLC miss rate within 3%).
//
// Mixes run on both experiment machines: the 1/64-scaled Table 1
// machine that the figure benches use (tiny caches — nearly every
// access is a multi-level miss transaction, the worst case for the
// engine) and the full-size Table 1 production machine (realistic hit
// rates, megabyte metadata arrays).  Working sets are derived from
// the geometry so the mixes exercise the same regimes on both:
// private-cache-resident streaming, LLC streaming, and LLC-busting
// uniform random (the blockie-style disruptor).
//
// Beyond the replay cells, a "v2_e2e" section runs whole hypervisor
// ticks (scheduler + machine + LLC attribution) on the miss-heavy
// mixes with the ref-batch engine on vs off: the end-to-end win of
// Machine::run_vcpu consuming geometric-skip refs directly, gated on
// exact counter agreement between the two consumption modes.
//
// A "control_plane" section measures the other end of the tick: mixes
// built so vCPU execution is nearly free (1 kHz clock — ten cycles
// per tick) and deep per-core runqueues make pick + credit/cap
// accounting + PMU virtualization + Kyoto debit/earn/punish the
// entire tick cost.  It runs the branch-light engine (batched PMU
// pass, mask/select accounting, identity-switch fast path) against
// the pre-rework branchy reference path
// (Hypervisor::set_control_plane_engine(false)), gated on exact
// agreement of per-VM counters and Kyoto quota/punish state.
//
// Output: human-readable table plus a JSON record (--json PATH,
// default BENCH_throughput.json; schema documented in README.md) for
// the perf trajectory.  Every timed cell is the minimum over --reps
// runs (counters are deterministic across reps, so the minimum is the
// least-noise estimate of the same simulation).  --min-mops enforces
// an absolute floor on the current engine so CI fails on perf
// regressions; --min-speedup enforces the before/after aggregate
// ratio; --min-v2-e2e-speedup enforces the end-to-end ref-batch win;
// --min-control-plane-speedup enforces the branch-light tick win.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/memory_system.hpp"
#include "cache/reference_cache.hpp"
#include "cache/topology.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "kyoto/ks4xen.hpp"
#include "mem/patterns.hpp"
#include "workloads/pattern_workload.hpp"

using namespace kyoto;

namespace {

// ------------------------------------------------------------------
// Baseline engine: replica of the pre-overhaul MemorySystem over the
// frozen AoS cache, including its indirections — caches held behind
// unique_ptr in vectors, one out-of-line engine call per op, socket
// and NUMA relation resolved per access (prefetch and bus are off in
// these mixes, as in the calibrated experiments).
// ------------------------------------------------------------------
struct BaselineMemorySystem {
  cache::Topology topology;
  cache::MemSystemConfig cfg;
  std::vector<std::unique_ptr<cache::ReferenceSetAssocCache>> l1, l2, llc;

  BaselineMemorySystem(const cache::Topology& topo, const cache::MemSystemConfig& config,
                       std::uint64_t seed)
      : topology(topo), cfg(config) {
    for (int c = 0; c < topo.total_cores(); ++c) {
      l1.push_back(std::make_unique<cache::ReferenceSetAssocCache>(
          "L1", config.l1, config.private_replacement,
          seed * 1000003ull + static_cast<std::uint64_t>(c)));
      l2.push_back(std::make_unique<cache::ReferenceSetAssocCache>(
          "L2", config.l2, config.private_replacement,
          seed * 2000003ull + static_cast<std::uint64_t>(c)));
    }
    for (int s = 0; s < topo.sockets; ++s) {
      llc.push_back(std::make_unique<cache::ReferenceSetAssocCache>(
          "LLC", config.llc, config.llc_replacement,
          seed * 4000037ull + static_cast<std::uint64_t>(s)));
    }
  }

  // Mirrors the old MemorySystem::access line by line; noinline keeps
  // the per-op call boundary the old engine had.
  __attribute__((noinline)) cache::AccessResult access(int core, Address addr, bool write,
                                                       int home_node, int vm,
                                                       std::int64_t now_cycle) {
    const cache::Requester req{core, vm};
    cache::AccessResult result;
    if (l1[static_cast<std::size_t>(core)]->access(addr, write, req).hit) {
      result.level = cache::CacheLevel::kL1;
      result.latency = cfg.lat_l1;
      return result;
    }
    if (l2[static_cast<std::size_t>(core)]->access(addr, write, req).hit) {
      result.level = cache::CacheLevel::kL2;
      result.latency = cfg.lat_l2;
      return result;
    }
    result.llc_reference = true;
    const int socket = topology.socket_of(core);
    if (llc[static_cast<std::size_t>(socket)]->access(addr, write, req).hit) {
      result.level = cache::CacheLevel::kLlc;
      result.latency = cfg.lat_llc;
      return result;
    }
    result.llc_miss = true;
    const bool remote = home_node != topology.node_of(core);
    result.level = remote ? cache::CacheLevel::kMemRemote : cache::CacheLevel::kMemLocal;
    result.latency = remote ? cfg.lat_mem_remote : cfg.lat_mem_local;
    (void)now_cycle;  // bus model off, exactly like the old guard
    return result;
  }
};

struct Mix {
  std::string name;
  Bytes working_set;
  double mem_ratio;
  double write_ratio;
  bool sequential;  // streaming walk vs uniform random lines
  double mlp;       // latency-hiding factor of the modelled kernel
};

struct RunStats {
  std::uint64_t instructions = 0;
  std::uint64_t accesses = 0;   // memory ops reaching the hierarchy
  std::uint64_t l1_hits = 0;
  std::uint64_t llc_misses = 0;
  Cycles sim_cycles = 0;        // accumulated simulated stall cycles
  double seconds = 0.0;

  double mops() const { return accesses / seconds / 1e6; }
  double ns_per_access() const { return seconds * 1e9 / static_cast<double>(accesses); }
};

std::unique_ptr<workloads::Workload> make_workload(
    const Mix& mix, std::uint64_t seed,
    workloads::StreamVersion stream = workloads::StreamVersion::kV1) {
  workloads::WorkloadSpec spec;
  spec.name = mix.name;
  spec.mem_ratio = mix.mem_ratio;
  spec.write_ratio = mix.write_ratio;
  spec.mlp = mix.mlp;
  spec.stream = stream;
  std::unique_ptr<mem::Pattern> pattern;
  if (mix.sequential) {
    pattern = std::make_unique<mem::SequentialPattern>(mix.working_set);
  } else {
    pattern = std::make_unique<mem::UniformRandomPattern>(mix.working_set);
  }
  return std::make_unique<workloads::PatternWorkload>(spec, std::move(pattern), seed);
}

/// Pre-overhaul replay loop: one virtual next() per op, per-op modulo
/// translate, per-access engine call, libm lround cost scaling.
RunStats run_baseline(const Mix& mix, const cache::MemSystemConfig& cfg,
                      std::uint64_t ops) {
  auto workload = make_workload(mix, /*seed=*/42);
  BaselineMemorySystem mem(cache::Topology{1, 1}, cfg, /*seed=*/1);
  const double inv_mlp = 1.0 / workload->spec().mlp;
  const Bytes space_size = std::max<Bytes>(workload->spec().working_set, mem::kLineBytes);
  const Address base = 1ull << 30;
  RunStats stats;
  Cycles cycles = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const mem::Op op = workload->next();  // one virtual dispatch per op
    Cycles cost = 1;
    if (op.kind != mem::OpKind::kCompute) {
      const Address addr = base + op.addr % space_size;  // old translate()
      const auto access =
          mem.access(0, addr, op.kind == mem::OpKind::kStore, 0, 0, cycles);
      cost = std::max<Cycles>(
          1, static_cast<Cycles>(std::lround(static_cast<double>(access.latency) * inv_mlp)));
      if (access.llc_miss) ++stats.llc_misses;
    }
    cycles += cost;
  }
  stats.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.instructions = ops;
  stats.accesses = mem.l1[0]->stats().accesses;
  stats.l1_hits = mem.l1[0]->stats().hits;
  stats.sim_cycles = cycles;
  return stats;
}

/// Production replay loop: blocked next_batch + hoisted access context
/// (the same structure Machine::run_vcpu uses).  `stream` selects the
/// workload stream format (v1 = frozen per-op streams, v2 = compiled
/// streams); `fused` toggles the fused multi-level miss walk (false
/// reproduces the PR 4 "current" engine exactly).  The v2 loop also
/// stages upcoming accesses' LLC rows a few ops ahead
/// (AccessContext::stage), like Machine::run_vcpu.
RunStats run_current(const Mix& mix, const cache::MemSystemConfig& cfg, std::uint64_t ops,
                     workloads::StreamVersion stream, bool fused) {
  auto workload = make_workload(mix, /*seed=*/42, stream);
  cache::MemorySystem memory(cache::Topology{1, 1}, cfg, /*seed=*/1);
  memory.set_fused_miss_path(fused);
  // `fused=false` rows reproduce the PR 4 engine exactly: serial
  // three-call walk AND the PR 4 fill bodies (no pruned-LRU fill, no
  // nibble-order victim).
  memory.set_fill_fast_paths(fused);
  auto ctx = memory.context(/*core=*/0, /*home_node=*/0, /*vm=*/0);
  const double inv_mlp = 1.0 / workload->spec().mlp;
  const bool unit_mlp = workload->spec().mlp == 1.0;
  const Address base = 1ull << 30;
  constexpr std::size_t kAhead = 8;  // lookahead staging distance
  // Stage upcoming LLC rows only for streams that actually spill past
  // the private caches; for ILC-resident mixes the LLC is never
  // probed and staging would drag its metadata through the host
  // cache for nothing.  Mirrors Machine::run_vcpu.
  const bool stage = workload->spec().working_set > cfg.l2.size;
  RunStats stats;
  Cycles cycles = 0;
  constexpr std::size_t kBlock = 256;
  const auto t0 = std::chrono::steady_clock::now();
  if (workload->stream_version() == workloads::StreamVersion::kV2) {
    // Geometric-skip consumption: one loop iteration per memory
    // reference; compute runs arrive as gap counts and cost one
    // addition.
    workloads::AccessRef refs[kBlock];
    for (std::uint64_t done = 0; done < ops;) {
      std::uint32_t trailing = 0;
      const auto batch = workload->next_ref_batch(
          refs, kBlock, static_cast<std::size_t>(ops - done), &trailing);
      for (std::size_t r = 0; r < batch.refs; ++r) {
        if (stage && r + kAhead < batch.refs) ctx.stage(base + refs[r + kAhead].addr);
        cycles += refs[r].gap;  // the compute run before this access
        const auto access = ctx.access(base + refs[r].addr, refs[r].write, cycles);
        cycles += unit_mlp ? std::max<Cycles>(1, access.latency)
                           : std::max<Cycles>(
                                 1, static_cast<Cycles>(
                                        static_cast<double>(access.latency) * inv_mlp + 0.5));
        stats.llc_misses += access.llc_miss;
      }
      cycles += trailing;
      done += batch.ops;
      if (batch.ops == 0) break;  // defensive: a stuck stream must not hang the bench
    }
  } else {
    mem::Op block[kBlock];
    for (std::uint64_t done = 0; done < ops;) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<std::uint64_t>(kBlock, ops - done));
      const std::size_t len = workload->next_batch(block, want);
      for (std::size_t b = 0; b < len; ++b) {
        const mem::Op op = block[b];
        Cycles cost = 1;
        if (op.kind != mem::OpKind::kCompute) {
          if (stage && b + kAhead < len && block[b + kAhead].kind != mem::OpKind::kCompute) {
            ctx.stage(base + block[b + kAhead].addr);
          }
          const Address addr = base + op.addr;  // new translate(): no modulo
          const auto access = ctx.access(addr, op.kind == mem::OpKind::kStore, cycles);
          cost = unit_mlp ? std::max<Cycles>(1, access.latency)
                          : std::max<Cycles>(
                                1, static_cast<Cycles>(
                                       static_cast<double>(access.latency) * inv_mlp + 0.5));
          stats.llc_misses += access.llc_miss;  // branchless: flag is data-random
        }
        cycles += cost;
      }
      done += len;
    }
  }
  stats.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.instructions = ops;
  stats.accesses = memory.l1(0).stats().accesses;
  stats.l1_hits = memory.l1(0).stats().hits;
  stats.sim_cycles = cycles;
  return stats;
}

/// Mixes for one machine, with working sets derived from its geometry
/// so both machines exercise the same regimes.
std::vector<Mix> mixes_for(const cache::MemSystemConfig& cfg) {
  return {
      // C1-style streams resident in the private caches.
      {"stream_l1", cfg.l1.size / 2, 0.6, 0.3, true, 2.0},
      {"stream_l2", cfg.l2.size / 2, 0.6, 0.3, true, 2.0},
      // C2-style stream through the LLC.
      {"stream_llc", cfg.llc.size / 2, 0.6, 0.3, true, 2.0},
      // C3-style blockie: uniform random over 3x the LLC.
      {"random_mem", cfg.llc.size * 3, 0.8, 0.3, false, 1.0},
  };
}

/// Footprint-query microbench: the monitor-tick path.  The old engine
/// answered footprint_lines(vm)/occupancy() with O(total-lines) scans
/// — polled per tick per VM by pollution monitors, that scan grows
/// linearly with machine size.  The new engine answers from counters
/// maintained on fill/evict/invalidate.
struct FootprintStats {
  double base_mqueries = 0.0;  // million queries/sec, old engine
  double cur_mqueries = 0.0;   // million queries/sec, new engine
  double speedup() const { return cur_mqueries / base_mqueries; }
};

FootprintStats run_footprint(const cache::MemSystemConfig& cfg, std::uint64_t queries) {
  // Warm both LLCs with the same 8-VM occupancy pattern.
  cache::ReferenceSetAssocCache ref("LLC", cfg.llc, cfg.llc_replacement, 1);
  cache::SetAssocCache cur("LLC", cfg.llc, cfg.llc_replacement, 1);
  Rng rng(99);
  const Bytes span = cfg.llc.size * 2;
  for (std::uint64_t i = 0; i < cfg.llc.size / 16; ++i) {
    const Address addr = rng.below(span / mem::kLineBytes) * mem::kLineBytes;
    const cache::Requester req{0, static_cast<int>(i % 8)};
    ref.access(addr, false, req);
    cur.access(addr, false, req);
  }
  FootprintStats out;
  std::uint64_t sink = 0;
  {
    // The O(lines) scan is slow enough that a small query count gives
    // a stable rate.
    const std::uint64_t n = std::max<std::uint64_t>(queries / 1000, 200);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t q = 0; q < n; ++q) sink += ref.footprint_lines(q % 8);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    out.base_mqueries = static_cast<double>(n) / s / 1e6;
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t q = 0; q < queries; ++q) sink += cur.footprint_lines(q % 8);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    out.cur_mqueries = static_cast<double>(queries) / s / 1e6;
  }
  // Keep the compiler honest and verify the counters agree with the scan.
  bool agree = true;
  for (int vm = 0; vm < 8; ++vm) agree &= ref.footprint_lines(vm) == cur.footprint_lines(vm);
  if (!agree || sink == 0xdeadbeef) {
    std::cerr << "footprint counters diverge from scans\n";
    std::exit(1);
  }
  return out;
}

// ------------------------------------------------------------------
// Parallel tick engine: end-to-end hypervisor ticks on the 4-socket
// Table-1 machine (scaled geometry, like the figure benches), the
// same simulation once per engine width.  threads=1 is the serial
// engine; threads=2/4 execute socket partitions concurrently.  Every
// width must produce *bit-identical* per-VM counters and LLC
// attribution — the exact-agreement check below and the integration
// suite (parallel_equivalence_test) both enforce it — so the only
// thing allowed to change is wall-clock time.
// ------------------------------------------------------------------
struct ParallelRun {
  int threads = 1;
  double seconds = 0.0;
  std::uint64_t accesses = 0;  // hierarchy accesses in the measured window
  std::vector<std::uint64_t> agreement;  // serialized end-state, compared across widths
  double mops() const { return static_cast<double>(accesses) / seconds / 1e6; }
};

ParallelRun run_parallel_ticks(const cache::Topology& topo, int threads, Tick warmup,
                               Tick measure) {
  hv::MachineConfig config;  // scaled Table 1 socket geometry
  config.topology = topo;
  hv::Hypervisor hv(config, std::make_unique<hv::CreditScheduler>());
  hv.set_execution_threads(threads);

  // One looping VM per core, cycling through the fig-1 regimes so
  // every socket carries the same mix of hit-heavy and miss-heavy
  // lanes (the miss-heavy lanes dominate the serial tick time).
  const std::vector<Mix> mixes = mixes_for(config.mem);
  for (int core = 0; core < topo.total_cores(); ++core) {
    const Mix& mix = mixes[static_cast<std::size_t>(core) % mixes.size()];
    hv::VmConfig vm_config;
    vm_config.name = mix.name + "#" + std::to_string(core);
    vm_config.loop_workload = true;
    vm_config.home_node = topo.socket_of(core);
    hv.create_vm(vm_config, make_workload(mix, 42 + static_cast<std::uint64_t>(core)), core);
  }

  hv.run_ticks(warmup);
  auto total_accesses = [&] {
    std::uint64_t n = 0;
    for (int core = 0; core < topo.total_cores(); ++core) {
      n += hv.machine().memory().l1(core).stats().accesses;
    }
    return n;
  };
  const std::uint64_t before = total_accesses();
  const auto t0 = std::chrono::steady_clock::now();
  hv.run_ticks(measure);
  ParallelRun run;
  run.threads = threads;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.accesses = total_accesses() - before;

  // End-state signature for the exact-agreement check.
  for (hv::Vm* vm : hv.vms()) {
    const pmc::CounterSet counters = vm->counters();
    for (unsigned c = 0; c < pmc::kCounterCount; ++c) run.agreement.push_back(counters.values[c]);
  }
  for (int socket = 0; socket < topo.sockets; ++socket) {
    const auto& llc = hv.machine().memory().llc(socket);
    run.agreement.push_back(llc.stats().accesses);
    run.agreement.push_back(llc.stats().hits);
    run.agreement.push_back(llc.stats().misses);
    run.agreement.push_back(llc.stats().evictions);
    for (int vm = 0; vm < hv.vm_count(); ++vm) {
      run.agreement.push_back(llc.stats_for_vm(vm).misses);
      run.agreement.push_back(llc.footprint_lines(vm));
    }
  }
  return run;
}

// ------------------------------------------------------------------
// End-to-end v2 engine: whole hypervisor ticks (XCS scheduler, PMU
// virtualization, LLC attribution) on one miss-heavy mix per core,
// consuming the same v2 streams through the ref-batch engine
// (Machine::run_vcpu_refs) and through the per-op fallback (the PR 5
// loop: next_batch-expanded ops).  Counters must agree exactly —
// the consumption format is not allowed to change the simulation —
// so the only difference is wall-clock time.
// ------------------------------------------------------------------
struct E2eRun {
  double seconds = 0.0;
  std::uint64_t accesses = 0;
  std::vector<std::uint64_t> agreement;  // per-VM counters + LLC attribution
};

E2eRun run_v2_e2e(const Mix& mix, bool ref_batch, Tick warmup, Tick measure) {
  hv::MachineConfig config;  // scaled Table 1 geometry
  config.topology = cache::Topology{1, 4};
  hv::Hypervisor hv(config, std::make_unique<hv::CreditScheduler>());
  hv.machine().set_ref_batch_engine(ref_batch);
  for (int core = 0; core < config.topology.total_cores(); ++core) {
    hv::VmConfig vm_config;
    vm_config.name = mix.name + "#" + std::to_string(core);
    vm_config.loop_workload = true;
    hv.create_vm(vm_config,
                 make_workload(mix, 42 + static_cast<std::uint64_t>(core),
                               workloads::StreamVersion::kV2),
                 core);
  }
  hv.run_ticks(warmup);
  auto total_accesses = [&] {
    std::uint64_t n = 0;
    for (int core = 0; core < config.topology.total_cores(); ++core) {
      n += hv.machine().memory().l1(core).stats().accesses;
    }
    return n;
  };
  const std::uint64_t before = total_accesses();
  const auto t0 = std::chrono::steady_clock::now();
  hv.run_ticks(measure);
  E2eRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.accesses = total_accesses() - before;
  for (hv::Vm* vm : hv.vms()) {
    const pmc::CounterSet counters = vm->counters();
    for (unsigned c = 0; c < pmc::kCounterCount; ++c) {
      run.agreement.push_back(counters.values[c]);
    }
  }
  const auto& llc = hv.machine().memory().llc(0);
  run.agreement.push_back(llc.stats().accesses);
  run.agreement.push_back(llc.stats().hits);
  run.agreement.push_back(llc.stats().misses);
  run.agreement.push_back(llc.stats().evictions);
  for (int vm = 0; vm < hv.vm_count(); ++vm) {
    run.agreement.push_back(llc.stats_for_vm(vm).misses);
    run.agreement.push_back(llc.footprint_lines(vm));
  }
  return run;
}

// ------------------------------------------------------------------
// Control-plane engine: accounting-bound hypervisor ticks.  The clock
// is 1 kHz (ten cycles per 10 ms tick), so vCPU execution drains in a
// handful of sub-quanta and nearly the whole tick is pick + credit
// burn + cap/band accounting + PMU virtualization + Kyoto
// debit/earn/punish.  Deep per-core runqueues (consolidated-host
// depth — kControlPlaneVmsPerCore) mean the pick loop and the per-VM
// accounting walks scan real candidates, weights/caps vary across
// tenants so every accounting lane is live, and half the tenants book
// a tight pollution permit so the punish machinery oscillates.  The
// branch-light engine and the pre-rework branchy reference path run
// the identical simulation — exact agreement of per-VM counters and
// Kyoto quota/punish state always gates the timing.
// ------------------------------------------------------------------
struct ControlPlaneRun {
  double seconds = 0.0;
  Tick ticks = 0;
  std::int64_t identity_ticks = 0;           // identity-switch fast-path hits
  std::vector<std::uint64_t> agreement;      // per-VM counters + Kyoto state
  double ticks_per_sec() const { return static_cast<double>(ticks) / seconds; }
};

/// Mixes whose tick cost is the control plane, not the memory system:
/// a private-cache-resident stream (pure scheduler/PMU cost) and an
/// LLC-resident stream whose misses trickle through attribution and
/// the Kyoto debit path.
std::vector<Mix> control_plane_mixes(const cache::MemSystemConfig& cfg) {
  return {
      {"acct_small_ws", cfg.l1.size / 2, 0.6, 0.3, true, 1.0},
      {"acct_llc_resident", cfg.llc.size / 2, 0.8, 0.3, true, 1.0},
  };
}

/// Runqueue depth for the control-plane cells: deep enough that the
/// per-VM surfaces (pick scan, slice-end refill, controller walk)
/// dominate the tick, like a consolidated host.
constexpr int kControlPlaneVmsPerCore = 32;

ControlPlaneRun run_control_plane(const Mix& mix, bool batched, Tick warmup, Tick measure) {
  hv::MachineConfig config;  // scaled geometry, accounting-bound clock
  config.topology = cache::Topology{1, 4};
  config.freq_khz = 1;
  auto sched = std::make_unique<core::Ks4Xen>();
  core::Ks4Xen* ks = sched.get();
  hv::Hypervisor hv(config, std::move(sched));
  hv.set_control_plane_engine(batched);

  constexpr int kVmsPerCore = kControlPlaneVmsPerCore;
  constexpr int kWeights[] = {512, 256, 256, 128};
  for (int core = 0; core < config.topology.total_cores(); ++core) {
    for (int i = 0; i < kVmsPerCore; ++i) {
      hv::VmConfig vm_config;
      vm_config.name = mix.name + "#" + std::to_string(core) + "." + std::to_string(i);
      vm_config.loop_workload = true;
      vm_config.weight = kWeights[i % 4];
      vm_config.cpu_cap_percent = i % 4 == 3 ? 50 : 0;
      // Tight permit on alternating tenants: at ~0.1 miss/ms an
      // LLC-resident stream overruns it, so punishment cycles.
      vm_config.llc_cap = i % 2 == 0 ? 0.05 : 0.0;
      hv.create_vm(vm_config,
                   make_workload(mix, 42 + static_cast<std::uint64_t>(
                                           core * kVmsPerCore + i)),
                   core);
    }
  }

  hv.run_ticks(warmup);
  const std::int64_t identity_before = hv.identity_switch_ticks();
  const auto t0 = std::chrono::steady_clock::now();
  hv.run_ticks(measure);
  ControlPlaneRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.ticks = measure;
  run.identity_ticks = hv.identity_switch_ticks() - identity_before;
  for (hv::Vm* vm : hv.vms()) {
    const pmc::CounterSet counters = vm->counters();
    for (unsigned c = 0; c < pmc::kCounterCount; ++c) {
      run.agreement.push_back(counters.values[c]);
    }
    const auto& state = ks->kyoto().state(*vm);
    run.agreement.push_back(std::bit_cast<std::uint64_t>(state.quota));
    run.agreement.push_back(std::bit_cast<std::uint64_t>(state.last_rate));
    run.agreement.push_back(std::bit_cast<std::uint64_t>(state.debited_total));
    run.agreement.push_back(state.punished ? 1u : 0u);
    run.agreement.push_back(static_cast<std::uint64_t>(state.punish_events));
    run.agreement.push_back(static_cast<std::uint64_t>(state.punished_ticks));
  }
  return run;
}

/// Minimum-seconds run out of `reps` repetitions of the same
/// deterministic cell: the counters are identical across reps, so the
/// fastest repetition is the least-noise timing of that simulation.
template <typename F>
auto min_over_reps(int reps, F&& cell) {
  auto best = cell();
  for (int r = 1; r < reps; ++r) {
    auto next = cell();
    if (next.seconds < best.seconds) best = std::move(next);
  }
  return best;
}

struct ControlPlaneSection {
  struct Cell {
    std::string mix;
    ControlPlaneRun batched;    // branch-light engine (production default)
    ControlPlaneRun reference;  // pre-rework branchy path
    double speedup() const { return reference.seconds / batched.seconds; }
  };
  Tick measure = 0;
  std::vector<Cell> cells;
  bool agree = true;          // exact-agreement verdict (both-engine mode)
  double worst_speedup = 1e30;
};

/// Runs the control-plane cells and prints their table.  `engine`
/// filters which engines run: "both" measures the before/after pair
/// and gates exact agreement; "batched" / "reference" run one side
/// only, for external measurement (the CI perf-stat branch-miss smoke
/// runs the two engines in separate processes so each gets its own
/// branch counters).
ControlPlaneSection run_control_plane_section(int reps, bool quick,
                                              const std::string& engine) {
  ControlPlaneSection section;
  section.measure = quick ? 30'000 : 120'000;
  const Tick warmup = 300;
  const bool want_batched = engine != "reference";
  const bool want_reference = engine != "batched";
  TextTable table({"machine", "mix", "engine", "Kticks/s", "seconds", "speedup"});
  for (const Mix& mix : control_plane_mixes(cache::scaled_mem_system())) {
    ControlPlaneSection::Cell cell;
    cell.mix = mix.name;
    if (want_batched) {
      cell.batched = min_over_reps(reps, [&] {
        return run_control_plane(mix, /*batched=*/true, warmup, section.measure);
      });
    }
    if (want_reference) {
      cell.reference = min_over_reps(reps, [&] {
        return run_control_plane(mix, /*batched=*/false, warmup, section.measure);
      });
    }
    if (want_batched && want_reference) {
      section.agree &= cell.batched.agreement == cell.reference.agreement;
      section.worst_speedup = std::min(section.worst_speedup, cell.speedup());
    }
    if (want_reference) {
      table.add_row({"scaled_1x4", mix.name, "reference",
                     fmt_double(cell.reference.ticks_per_sec() / 1e3, 1),
                     fmt_double(cell.reference.seconds, 2), ""});
    }
    if (want_batched) {
      table.add_row({"scaled_1x4", mix.name, "batched",
                     fmt_double(cell.batched.ticks_per_sec() / 1e3, 1),
                     fmt_double(cell.batched.seconds, 2),
                     want_reference ? fmt_double(cell.speedup(), 2) + "x" : ""});
    }
    section.cells.push_back(std::move(cell));
  }
  std::cout << "\n  control-plane engine (accounting-bound ticks, "
            << kControlPlaneVmsPerCore << " VMs/core, " << section.measure
            << " ticks)\n"
            << table;
  return section;
}

/// The "control_plane" JSON object (no trailing newline/comma),
/// shared by the full schema-6 record and the --control-plane-only
/// mini record.
void emit_control_plane_json(std::ostream& json, const ControlPlaneSection& s,
                             int host_lanes) {
  json << "  \"control_plane\": {\n    \"machine\": \"scaled_1x4\",\n"
       << "    \"cores\": 4,\n    \"vms_per_core\": " << kControlPlaneVmsPerCore
       << ",\n    \"freq_khz\": 1,\n"
       << "    \"ticks\": " << s.measure << ",\n    \"host_cpus\": " << host_lanes
       << ",\n    \"exact_agreement\": " << (s.agree ? "true" : "false")
       << ",\n    \"worst_speedup\": " << s.worst_speedup << ",\n    \"runs\": [\n";
  for (std::size_t i = 0; i < s.cells.size(); ++i) {
    const ControlPlaneSection::Cell& c = s.cells[i];
    json << "      {\"mix\": \"" << c.mix
         << "\", \"batched_seconds\": " << c.batched.seconds
         << ", \"reference_seconds\": " << c.reference.seconds
         << ", \"batched_ticks_per_sec\": "
         << static_cast<std::uint64_t>(c.batched.ticks_per_sec())
         << ", \"reference_ticks_per_sec\": "
         << static_cast<std::uint64_t>(c.reference.ticks_per_sec())
         << ", \"identity_switch_ticks\": " << c.batched.identity_ticks
         << ", \"speedup\": " << c.speedup() << "}"
         << (i + 1 == s.cells.size() ? "\n" : ",\n");
  }
  json << "    ]\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_throughput.json";
  double min_mops = 0.0;
  double min_speedup = 0.0;
  double min_v2_speedup = 0.0;
  double min_v2_e2e_speedup = 0.0;
  double min_parallel_speedup = 0.0;
  double min_control_plane_speedup = 0.0;
  bool control_plane_only = false;
  std::string control_plane_engine = "both";
  int max_threads = 4;
  int reps = 5;
  bool reps_given = false;
  bool quick = bench::quick_mode();
  std::uint64_t ops = 0;  // 0 = pick per mode

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = value();
    else if (arg == "--min-mops") min_mops = std::stod(value());
    else if (arg == "--min-speedup") min_speedup = std::stod(value());
    else if (arg == "--min-v2-speedup") min_v2_speedup = std::stod(value());
    else if (arg == "--min-v2-e2e-speedup") min_v2_e2e_speedup = std::stod(value());
    else if (arg == "--min-parallel-speedup") min_parallel_speedup = std::stod(value());
    else if (arg == "--min-control-plane-speedup") min_control_plane_speedup = std::stod(value());
    else if (arg == "--control-plane-only") control_plane_only = true;
    else if (arg == "--control-plane-engine") control_plane_engine = value();
    else if (arg == "--threads") max_threads = std::stoi(value());
    else if (arg == "--reps") { reps = std::stoi(value()); reps_given = true; }
    else if (arg == "--ops") ops = std::stoull(value());
    else if (arg == "--quick") quick = true;
    else {
      std::cerr << "usage: bench_throughput [--json PATH] [--min-mops X] "
                   "[--min-speedup X] [--min-v2-speedup X] [--min-v2-e2e-speedup X] "
                   "[--min-parallel-speedup X] [--min-control-plane-speedup X] "
                   "[--control-plane-only] [--control-plane-engine both|batched|reference] "
                   "[--threads N] [--reps N] [--ops N] [--quick]\n";
      return 2;
    }
  }
  if (ops == 0) ops = quick ? 2'000'000ull : 10'000'000ull;
  if (reps < 1) reps = 1;
  // Quick mode (the ctest smoke) trims the default repetitions: the
  // floors it gates are conservative, and 5x the cell work would push
  // a sanitized tree past the smoke timeout.  An explicit --reps wins.
  if (quick && !reps_given) reps = std::min(reps, 2);

  if (control_plane_engine != "both" && control_plane_engine != "batched" &&
      control_plane_engine != "reference") {
    std::cerr << "--control-plane-engine must be both, batched, or reference\n";
    return 2;
  }

  bench::header("BENCH throughput", "access-engine speed (not a paper figure)",
                "the overhauled engine sustains a multiple of the pre-overhaul "
                "accesses/sec on the fig-1 streaming/random mixes, with "
                "bit-identical simulated results");

  // --control-plane-only: just the accounting-bound tick cells.  The
  // CI perf-stat branch-miss smoke wraps this mode (one engine per
  // process) so the recorded branch counters measure the tick control
  // plane, not the replay sections.
  if (control_plane_only) {
    const int lanes = ThreadPool::hardware_lanes();
    const ControlPlaneSection cp =
        run_control_plane_section(reps, quick, control_plane_engine);
    bool ok = true;
    if (control_plane_engine == "both") {
      ok &= bench::check(
          "control plane: branch-light and reference engines agree exactly "
          "(per-VM counters, Kyoto quota/punish state)",
          cp.agree);
      if (min_control_plane_speedup > 0.0) {
        if (lanes >= 2) {
          ok &= bench::check(
              "control-plane speedup >= " + fmt_double(min_control_plane_speedup, 2) +
                  "x vs the branchy reference path (accounting-bound mixes)",
              cp.worst_speedup >= min_control_plane_speedup);
        } else {
          std::cout << "  (control-plane speedup floor skipped: host has " << lanes
                    << " cpu(s); measured " << fmt_double(cp.worst_speedup, 2)
                    << "x)\n";
        }
      }
      std::ofstream json(json_path);
      json << "{\n  \"bench\": \"throughput\",\n  \"schema\": 6,\n"
           << "  \"control_plane_only\": true,\n  \"reps\": " << reps
           << ",\n  \"quick\": " << (quick ? "true" : "false") << ",\n";
      emit_control_plane_json(json, cp, lanes);
      json << "\n}\n";
      std::cout << "\n  JSON written to " << json_path << '\n';
    }
    return bench::verdict(ok);
  }

  struct MachineUnderTest {
    std::string name;
    cache::MemSystemConfig cfg;
  };
  const std::vector<MachineUnderTest> machines = {
      {"scaled", cache::scaled_mem_system()},  // figure-bench machine (1/64)
      {"paper", cache::paper_mem_system()},    // production Table 1 machine
  };

  TextTable table({"machine", "mix", "engine", "stream", "Maccess/s", "ns/access", "speedup"});
  bool all_ok = true;
  struct Row {
    std::string machine, mix;
    RunStats base;     // frozen pre-overhaul engine, v1 stream
    RunStats unfused;  // PR 4 "current" engine: serial walk, v1 stream
    RunStats cur;      // production engine: fused walk, v1 stream
    RunStats fast;     // production engine: fused walk, v2 stream
  };
  std::vector<Row> rows;

  for (const auto& m : machines) {
    for (const Mix& mix : mixes_for(m.cfg)) {
      Row row;
      row.machine = m.name;
      row.mix = mix.name;
      row.base = min_over_reps(reps, [&] { return run_baseline(mix, m.cfg, ops); });
      row.unfused = min_over_reps(reps, [&] {
        return run_current(mix, m.cfg, ops, workloads::StreamVersion::kV1, /*fused=*/false);
      });
      row.cur = min_over_reps(reps, [&] {
        return run_current(mix, m.cfg, ops, workloads::StreamVersion::kV1, /*fused=*/true);
      });
      row.fast = min_over_reps(reps, [&] {
        return run_current(mix, m.cfg, ops, workloads::StreamVersion::kV2, /*fused=*/true);
      });
      const double speedup = row.cur.mops() / row.base.mops();
      const double fast_speedup = row.fast.mops() / row.unfused.mops();
      table.add_row({m.name, mix.name, "baseline", "v1", fmt_double(row.base.mops(), 2),
                     fmt_double(row.base.ns_per_access(), 1), ""});
      table.add_row({m.name, mix.name, "unfused", "v1", fmt_double(row.unfused.mops(), 2),
                     fmt_double(row.unfused.ns_per_access(), 1), ""});
      table.add_row({m.name, mix.name, "current", "v1", fmt_double(row.cur.mops(), 2),
                     fmt_double(row.cur.ns_per_access(), 1), fmt_double(speedup, 2) + "x"});
      table.add_row({m.name, mix.name, "fast", "v2", fmt_double(row.fast.mops(), 2),
                     fmt_double(row.fast.ns_per_access(), 1),
                     fmt_double(fast_speedup, 2) + "x"});

      // The v1 engines must simulate the same machine: identical op
      // stream, identical hit/miss outcome, identical stall cycles.
      // Timing means nothing if this fails.  This triple equality is
      // also the bench-level bit-identity gate for the fused miss
      // walk (baseline = frozen reference, unfused = PR 4 serial
      // walk, current = fused walk).
      all_ok &= bench::check(
          m.name + "/" + mix.name +
              ": v1 engines agree exactly (frozen == serial == fused walk)",
          row.base.accesses == row.cur.accesses && row.base.l1_hits == row.cur.l1_hits &&
              row.base.llc_misses == row.cur.llc_misses &&
              row.base.sim_cycles == row.cur.sim_cycles &&
              row.unfused.accesses == row.cur.accesses &&
              row.unfused.l1_hits == row.cur.l1_hits &&
              row.unfused.llc_misses == row.cur.llc_misses &&
              row.unfused.sim_cycles == row.cur.sim_cycles);

      // The v2 stream is a different (seed-versioned) draw sequence,
      // so agreement is statistical: same instruction mix and miss
      // behavior within tight tolerances.
      const double acc_rel =
          std::abs(static_cast<double>(row.fast.accesses) -
                   static_cast<double>(row.cur.accesses)) /
          static_cast<double>(row.cur.accesses);
      const double miss_cur =
          static_cast<double>(row.cur.llc_misses) / static_cast<double>(row.cur.accesses);
      const double miss_fast =
          static_cast<double>(row.fast.llc_misses) / static_cast<double>(row.fast.accesses);
      const double miss_rel =
          miss_cur == 0.0 ? std::abs(miss_fast) : std::abs(miss_fast - miss_cur) / miss_cur;
      all_ok &= bench::check(
          m.name + "/" + mix.name + ": v2 stream statistically equivalent "
          "(accesses within 1%, LLC miss rate within 3%)",
          acc_rel < 0.01 && (miss_cur < 1e-9 ? miss_fast < 1e-6 : miss_rel < 0.03));
      rows.push_back(std::move(row));
    }
  }
  std::cout << table << '\n';

  // Aggregate throughput: total accesses over total wall time, the
  // number a whole-figure replay experiences.
  double base_acc = 0, base_sec = 0, cur_acc = 0, cur_sec = 0;
  double worst_speedup = 1e30, best_speedup = 0, worst_mops = 1e30;
  for (const Row& r : rows) {
    base_acc += static_cast<double>(r.base.accesses);
    base_sec += r.base.seconds;
    cur_acc += static_cast<double>(r.cur.accesses);
    cur_sec += r.cur.seconds;
    const double speedup = r.cur.mops() / r.base.mops();
    worst_speedup = std::min(worst_speedup, speedup);
    best_speedup = std::max(best_speedup, speedup);
    worst_mops = std::min(worst_mops, r.cur.mops());
  }
  const double agg_base = base_acc / base_sec / 1e6;
  const double agg_cur = cur_acc / cur_sec / 1e6;
  const double agg_speedup = agg_cur / agg_base;
  std::cout << "  aggregate: " << fmt_double(agg_base, 2) << " -> " << fmt_double(agg_cur, 2)
            << " Maccess/s, speedup " << fmt_double(agg_speedup, 2) << "x (per-mix "
            << fmt_double(worst_speedup, 2) << "x .. " << fmt_double(best_speedup, 2)
            << "x)\n";

  // The miss-heavy mixes the stream-compilation + fused-walk work
  // targets: v2 streams on the production engine vs the PR 4 engine
  // (serial walk, v1 streams), and the fused walk's v1-only win.
  double worst_v2_miss_heavy = 1e30, worst_fused_miss_heavy = 1e30;
  for (const Row& r : rows) {
    if (r.mix != "random_mem" && r.mix != "stream_llc") continue;
    worst_v2_miss_heavy = std::min(worst_v2_miss_heavy, r.fast.mops() / r.unfused.mops());
    worst_fused_miss_heavy =
        std::min(worst_fused_miss_heavy, r.cur.mops() / r.unfused.mops());
  }
  std::cout << "  miss-heavy mixes (random_mem, stream_llc): fast(v2) vs PR4 engine >= "
            << fmt_double(worst_v2_miss_heavy, 2) << "x; fused walk alone (v1) >= "
            << fmt_double(worst_fused_miss_heavy, 2) << "x\n";

  // Monitor-tick path: footprint queries on the production-size LLC.
  const FootprintStats fp = run_footprint(cache::paper_mem_system(), quick ? 500'000 : 2'000'000);
  std::cout << "  footprint_lines (paper LLC): " << fmt_double(fp.base_mqueries * 1000, 1)
            << " -> " << fmt_double(fp.cur_mqueries * 1000, 1) << " Kqueries/s, speedup "
            << fmt_double(fp.speedup(), 0) << "x (O(lines) scan -> O(1) counter)\n";
  all_ok &= bench::check("footprint query speedup >= 3x (monitor-tick path)",
                         fp.speedup() >= 3.0);

  // Parallel tick engine on the 4-socket Table-1 machine: the
  // per-socket partitioned Hypervisor::run_one_tick, swept over
  // engine widths.  Exact agreement across widths is always enforced;
  // the speedup is recorded for the trajectory and only *gated* when
  // the host can actually run the lanes concurrently (ctest floors
  // stay threads=1 so CI is hardware-agnostic).
  const cache::Topology table1x4{4, 4};
  const Tick par_warmup = 2;
  const Tick par_measure = quick ? 8 : 24;
  std::vector<int> widths = {1};
  for (const int t : {2, 4}) {
    if (t <= max_threads) widths.push_back(t);
  }
  std::vector<ParallelRun> par_runs;
  for (const int threads : widths) {
    par_runs.push_back(run_parallel_ticks(table1x4, threads, par_warmup, par_measure));
  }
  const int host_lanes = ThreadPool::hardware_lanes();
  TextTable par_table({"machine", "threads", "Maccess/s", "seconds", "speedup"});
  bool par_agree = true;
  for (const ParallelRun& run : par_runs) {
    par_agree &= run.agreement == par_runs.front().agreement;
    par_table.add_row({"table1x4(scaled)", std::to_string(run.threads),
                       fmt_double(run.mops(), 2), fmt_double(run.seconds, 2),
                       fmt_double(run.mops() / par_runs.front().mops(), 2) + "x"});
  }
  std::cout << "\n  parallel tick engine (4-socket Table 1, " << par_measure
            << " ticks, host cpus: " << host_lanes << ")\n"
            << par_table;
  all_ok &= bench::check(
      "parallel engine agrees exactly with serial (per-VM counters, LLC attribution)",
      par_agree);
  const double par_best =
      par_runs.back().mops() / par_runs.front().mops();
  if (min_parallel_speedup > 0.0) {
    if (host_lanes >= widths.back()) {
      all_ok &= bench::check("threads=" + std::to_string(widths.back()) + " speedup >= " +
                                 fmt_double(min_parallel_speedup, 1) + "x vs serial",
                             par_best >= min_parallel_speedup);
    } else {
      std::cout << "  (parallel speedup gate skipped: host has " << host_lanes
                << " cpu(s) for " << widths.back() << " lanes)\n";
    }
  }

  // End-to-end v2 engine: the ref-batch run_vcpu loop vs the per-op
  // fallback over whole hypervisor ticks, one miss-heavy mix at a
  // time.  Exact agreement always gates; the speedup floor is
  // hardware-adaptive like the other wall-clock gates.
  const Tick e2e_warmup = 3;
  const Tick e2e_measure = quick ? 30 : 90;
  struct E2eCell {
    std::string mix;
    E2eRun refs;  // ref-batch engine (production default)
    E2eRun ops;   // per-op fallback (the PR 5 v2 loop)
    double speedup() const { return ops.seconds / refs.seconds; }
  };
  std::vector<E2eCell> e2e_cells;
  bool e2e_agree = true;
  double worst_e2e = 1e30;
  TextTable e2e_table({"machine", "mix", "engine", "Maccess/s", "seconds", "speedup"});
  for (const Mix& mix : mixes_for(cache::scaled_mem_system())) {
    if (mix.name != "random_mem" && mix.name != "stream_llc") continue;
    E2eCell cell;
    cell.mix = mix.name;
    cell.refs = min_over_reps(reps, [&] {
      return run_v2_e2e(mix, /*ref_batch=*/true, e2e_warmup, e2e_measure);
    });
    cell.ops = min_over_reps(reps, [&] {
      return run_v2_e2e(mix, /*ref_batch=*/false, e2e_warmup, e2e_measure);
    });
    e2e_agree &= cell.refs.agreement == cell.ops.agreement;
    worst_e2e = std::min(worst_e2e, cell.speedup());
    e2e_table.add_row({"scaled_1x4", mix.name, "per-op",
                       fmt_double(static_cast<double>(cell.ops.accesses) /
                                      cell.ops.seconds / 1e6, 2),
                       fmt_double(cell.ops.seconds, 2), ""});
    e2e_table.add_row({"scaled_1x4", mix.name, "ref-batch",
                       fmt_double(static_cast<double>(cell.refs.accesses) /
                                      cell.refs.seconds / 1e6, 2),
                       fmt_double(cell.refs.seconds, 2),
                       fmt_double(cell.speedup(), 2) + "x"});
    e2e_cells.push_back(std::move(cell));
  }
  std::cout << "\n  end-to-end v2 engine (hypervisor ticks, ref-batch vs per-op, "
            << e2e_measure << " ticks)\n"
            << e2e_table;
  all_ok &= bench::check(
      "v2 e2e: ref-batch and per-op consumption agree exactly "
      "(per-VM counters, LLC attribution)",
      e2e_agree);
  if (min_v2_e2e_speedup > 0.0) {
    if (host_lanes >= 2) {
      all_ok &= bench::check(
          "v2 e2e ref-batch speedup >= " + fmt_double(min_v2_e2e_speedup, 2) +
              "x vs the per-op loop (miss-heavy mixes)",
          worst_e2e >= min_v2_e2e_speedup);
    } else {
      std::cout << "  (v2 e2e speedup floor skipped: host has " << host_lanes
                << " cpu(s); measured " << fmt_double(worst_e2e, 2) << "x)\n";
    }
  }

  // Control-plane engine: branch-light tick accounting vs the
  // pre-rework branchy reference path, over accounting-bound ticks.
  // Exact agreement (per-VM counters + Kyoto quota/punish state)
  // always gates; the speedup floor is hardware-adaptive like the
  // other wall-clock gates.
  const ControlPlaneSection cp = run_control_plane_section(reps, quick, "both");
  all_ok &= bench::check(
      "control plane: branch-light and reference engines agree exactly "
      "(per-VM counters, Kyoto quota/punish state)",
      cp.agree);
  if (min_control_plane_speedup > 0.0) {
    if (host_lanes >= 2) {
      all_ok &= bench::check(
          "control-plane speedup >= " + fmt_double(min_control_plane_speedup, 2) +
              "x vs the branchy reference path (accounting-bound mixes)",
          cp.worst_speedup >= min_control_plane_speedup);
    } else {
      std::cout << "  (control-plane speedup floor skipped: host has " << host_lanes
                << " cpu(s); measured " << fmt_double(cp.worst_speedup, 2) << "x)\n";
    }
  }

  if (min_mops > 0.0) {
    all_ok &= bench::check("current engine >= " + fmt_double(min_mops, 1) +
                               " Maccess/s floor (worst mix)",
                           worst_mops >= min_mops);
  }
  if (min_speedup > 0.0) {
    all_ok &= bench::check(
        "aggregate speedup >= " + fmt_double(min_speedup, 1) + "x vs pre-overhaul engine",
        agg_speedup >= min_speedup);
  }
  if (min_v2_speedup > 0.0) {
    // Wall-clock perf floor for the v2 miss-heavy mixes.  Only
    // enforced when the host has >= 2 CPUs: on a 1-vCPU container the
    // bench time-slices against the rest of the system and a
    // wall-clock ratio floor would gate on scheduler noise, not on
    // the engine (committed trajectory numbers still come from such
    // containers — they are recorded, not gated, there).
    if (host_lanes >= 2) {
      all_ok &= bench::check(
          "v2 miss-heavy speedup >= " + fmt_double(min_v2_speedup, 2) +
              "x vs the PR 4 engine (random_mem + stream_llc, both machines)",
          worst_v2_miss_heavy >= min_v2_speedup);
    } else {
      std::cout << "  (v2 miss-heavy speedup floor skipped: host has " << host_lanes
                << " cpu(s); measured " << fmt_double(worst_v2_miss_heavy, 2) << "x)\n";
    }
  }

  // JSON record for the perf trajectory (schema in README.md).
  // Schema v6 (additive over v5): a top-level "control_plane" object
  // records the branch-light-vs-reference accounting-bound tick runs.
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"throughput\",\n  \"schema\": 6,\n"
       << "  \"ops_per_mix\": " << ops << ",\n  \"reps\": " << reps
       << ",\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"host_cpus\": " << host_lanes << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    struct EngineRow {
      const RunStats* stats;
      const char* engine;
      const char* stream;
    };
    const EngineRow engine_rows[] = {{&r.base, "baseline", "v1"},
                                     {&r.unfused, "unfused", "v1"},
                                     {&r.cur, "current", "v1"},
                                     {&r.fast, "fast", "v2"}};
    for (const EngineRow& e : engine_rows) {
      json << "    {\"machine\": \"" << r.machine << "\", \"mix\": \"" << r.mix
           << "\", \"engine\": \"" << e.engine << "\", \"stream\": \"" << e.stream
           << "\", \"accesses\": " << e.stats->accesses
           << ", \"seconds\": " << e.stats->seconds << ", \"accesses_per_sec\": "
           << static_cast<std::uint64_t>(e.stats->accesses / e.stats->seconds)
           << ", \"ns_per_access\": " << e.stats->ns_per_access() << "}"
           << (i + 1 == rows.size() && e.stats == &r.fast ? "\n" : ",\n");
    }
  }
  json << "  ],\n  \"v2\": {\n"
       << "    \"worst_miss_heavy_speedup_vs_pr4\": " << worst_v2_miss_heavy << ",\n"
       << "    \"worst_miss_heavy_fused_v1_speedup_vs_pr4\": " << worst_fused_miss_heavy
       << ",\n    \"mixes\": [\"random_mem\", \"stream_llc\"]\n  },\n"
       << "  \"aggregate_baseline_maccess_per_sec\": " << agg_base
       << ",\n  \"aggregate_current_maccess_per_sec\": " << agg_cur
       << ",\n  \"aggregate_speedup\": " << agg_speedup
       << ",\n  \"worst_mix_speedup\": " << worst_speedup
       << ",\n  \"best_mix_speedup\": " << best_speedup
       << ",\n  \"worst_current_maccess_per_sec\": " << worst_mops
       << ",\n  \"footprint_query_speedup\": " << fp.speedup()
       // Schema v2 (additive): the per-socket parallel tick sweep.
       // speedups are only meaningful when host_cpus >= threads.
       << ",\n  \"parallel\": {\n    \"machine\": \"table1x4_scaled\",\n    \"sockets\": "
       << table1x4.sockets << ",\n    \"cores\": " << table1x4.total_cores()
       << ",\n    \"ticks\": " << par_measure << ",\n    \"host_cpus\": " << host_lanes
       << ",\n    \"exact_agreement\": " << (par_agree ? "true" : "false")
       << ",\n    \"runs\": [\n";
  for (std::size_t i = 0; i < par_runs.size(); ++i) {
    const ParallelRun& r = par_runs[i];
    json << "      {\"threads\": " << r.threads << ", \"seconds\": " << r.seconds
         << ", \"accesses\": " << r.accesses << ", \"accesses_per_sec\": "
         << static_cast<std::uint64_t>(static_cast<double>(r.accesses) / r.seconds)
         << ", \"speedup_vs_serial\": " << r.mops() / par_runs.front().mops() << "}"
         << (i + 1 == par_runs.size() ? "\n" : ",\n");
  }
  json << "    ]\n  },\n"
       // Schema v5 (additive): end-to-end ref-batch engine runs.
       << "  \"v2_e2e\": {\n    \"machine\": \"scaled_1x4\",\n    \"cores\": 4,\n"
       << "    \"ticks\": " << e2e_measure << ",\n    \"host_cpus\": " << host_lanes
       << ",\n    \"exact_agreement\": " << (e2e_agree ? "true" : "false")
       << ",\n    \"worst_speedup\": " << worst_e2e << ",\n    \"runs\": [\n";
  for (std::size_t i = 0; i < e2e_cells.size(); ++i) {
    const E2eCell& c = e2e_cells[i];
    json << "      {\"mix\": \"" << c.mix << "\", \"accesses\": " << c.refs.accesses
         << ", \"ref_batch_seconds\": " << c.refs.seconds
         << ", \"per_op_seconds\": " << c.ops.seconds
         << ", \"speedup\": " << c.speedup() << "}"
         << (i + 1 == e2e_cells.size() ? "\n" : ",\n");
  }
  json << "    ]\n  },\n";
  // Schema v6 (additive): branch-light control-plane engine runs.
  emit_control_plane_json(json, cp, host_lanes);
  json << "\n}\n";
  json.close();
  std::cout << "\n  JSON written to " << json_path << '\n';

  return bench::verdict(all_ok);
}
