// Fig 11 — "Socket dedication could be avoided when computing
// llc_cap_act": with quiet co-runners, Equation-1 values measured
// WITHOUT dedicating the socket match the dedicated measurement for
// all ten applications — same magnitudes, same aggressiveness order.
//
// Runs on the sweep API: the full 10 × {dedicated, shared} grid is
// one 20-job SweepRunner batch.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

std::vector<sim::VmPlan> corunner_plans(const sim::RunSpec& spec, const std::string& target,
                                        bool dedicate) {
  std::vector<sim::VmPlan> plans;
  sim::VmPlan t;
  t.config.name = target;
  t.config.loop_workload = true;
  t.workload = [target, mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app(target, mem, s);
  };
  t.pinned_cores = {0};
  plans.push_back(t);
  // Quiet co-runners (hmmer): the Fig 11 setting where the second
  // skip heuristic applies.
  for (int i = 0; i < 2; ++i) {
    sim::VmPlan c;
    c.config.name = "hmmer-" + std::to_string(i);
    c.config.loop_workload = true;
    c.workload = [mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app("hmmer", mem, s);
    };
    // Dedicated: co-runners parked on socket 1; otherwise same socket.
    c.pinned_cores = {dedicate ? 4 + i : 1 + i};
    plans.push_back(c);
  }
  return plans;
}

}  // namespace

int main() {
  bench::header("Fig 11", "Equation 1 with vs without socket dedication (quiet co-runners)",
                "values match and produce the same aggressiveness ordering");

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(40);

  const auto& apps = workloads::fig4_apps();
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  for (const auto& name : apps) {
    sweep.add(spec, corunner_plans(spec, name, true), name + "/dedicated");
    sweep.add(spec, corunner_plans(spec, name, false), name + "/shared");
  }
  const auto outcomes = sweep.run();

  TextTable table({"app", "socket dedication (miss/ms)", "no dedication (miss/ms)",
                   "rel. diff %"});
  std::vector<double> dedicated;
  std::vector<double> shared;
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const double ded = outcomes[2 * i].vms.at(0).llc_cap_act;
    const double noded = outcomes[2 * i + 1].vms.at(0).llc_cap_act;
    dedicated.push_back(ded);
    shared.push_back(noded);
    const double rel = std::abs(ded - noded) / std::max(ded, 5.0) * 100.0;
    worst_rel = std::max(worst_rel, rel);
    table.add_row({apps[i], fmt_double(ded, 1), fmt_double(noded, 1), fmt_double(rel, 1)});
  }
  std::cout << table << '\n';

  // Quiet (ILC-resident) apps measure ~0 either way; ties at zero
  // would dilute tau-a without meaning disagreement, so the ordering
  // check uses the apps with measurable pollution and the quiet ones
  // are checked to be quiet under both methods.
  std::vector<double> ded_active;
  std::vector<double> sh_active;
  bool quiet_agree = true;
  for (std::size_t i = 0; i < dedicated.size(); ++i) {
    if (std::max(dedicated[i], shared[i]) > 1.0) {
      ded_active.push_back(dedicated[i]);
      sh_active.push_back(shared[i]);
    } else {
      quiet_agree &= dedicated[i] <= 1.0 && shared[i] <= 1.0;
    }
  }
  const double tau = kendall_tau(ded_active, sh_active);
  std::cout << "Kendall's tau between the two orderings (active apps): "
            << fmt_double(tau, 3) << "\n\n";

  bool ok = true;
  ok &= bench::check("orderings of polluting apps agree (tau > 0.85)", tau > 0.85);
  ok &= bench::check("quiet apps are quiet under both methods", quiet_agree);
  ok &= bench::check("per-app values agree within 35% (quiet co-runners can't pollute)",
                     worst_rel < 35.0);
  return bench::verdict(ok);
}
