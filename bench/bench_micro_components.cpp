// Component micro-benchmarks (google-benchmark).
//
// Two purposes:
//  * engineering health of the simulator (cache-access and workload
//    generation throughput bound every experiment's run time);
//  * the host-side half of the paper's overhead claim (Fig 12 / §4.5):
//    KS4Xen's scheduling decision + pollution accounting must cost
//    essentially the same as vanilla XCS — the ~110-LOC patch adds a
//    few arithmetic operations per tick, not a new hot path.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/memory_system.hpp"
#include "cache/topology.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "kyoto/ks4xen.hpp"
#include "mem/patterns.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

void BM_CacheAccessL1Hit(benchmark::State& state) {
  cache::MemorySystem memory(cache::Topology{1, 1}, cache::scaled_mem_system());
  memory.access(0, 0, false, 0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.access(0, 0, false, 0, 0));
  }
}
BENCHMARK(BM_CacheAccessL1Hit);

void BM_CacheAccessLlcMissStream(benchmark::State& state) {
  cache::MemorySystem memory(cache::Topology{1, 1}, cache::scaled_mem_system());
  Address addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.access(0, addr, false, 0, 0));
    addr += mem::kLineBytes;  // endless stream: mostly misses
  }
}
BENCHMARK(BM_CacheAccessLlcMissStream);

void BM_WorkloadNextOp(benchmark::State& state) {
  const auto w = workloads::make_app("gcc", cache::scaled_mem_system(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w->next());
  }
}
BENCHMARK(BM_WorkloadNextOp);

void BM_PointerChaseNext(benchmark::State& state) {
  mem::PointerChasePattern p(64_KiB, 1);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.next_offset(rng));
  }
}
BENCHMARK(BM_PointerChaseNext);

/// One full hypervisor tick (4 cores executing + scheduling +
/// accounting) under the given scheduler.  The XCS/KS4Xen delta IS
/// the Kyoto overhead (paper §4.5: "near zero").
template <typename SchedulerT>
void BM_HypervisorTick(benchmark::State& state) {
  hv::MachineConfig mc = hv::scaled_machine();
  hv::Hypervisor hv(mc, std::make_unique<SchedulerT>());
  const auto mem = mc.mem;
  for (int i = 0; i < 4; ++i) {
    hv::VmConfig config;
    config.name = "vm" + std::to_string(i);
    config.loop_workload = true;
    config.llc_cap = 1e9;  // booked but never punished: full accounting path
    hv.create_vm(config,
                 workloads::make_app(i % 2 ? "gcc" : "lbm", mem, static_cast<std::uint64_t>(i)),
                 i);
  }
  for (auto _ : state) {
    hv.run_ticks(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_HypervisorTick, hv::CreditScheduler)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_HypervisorTick, core::Ks4Xen)->Unit(benchmark::kMillisecond);

/// Scheduling-only cost: pick + account with the execution engine out
/// of the measurement (zero-length bursts).
template <typename SchedulerT>
void BM_ScheduleDecision(benchmark::State& state) {
  hv::MachineConfig mc = hv::scaled_machine();
  hv::Hypervisor hv(mc, std::make_unique<SchedulerT>());
  const auto mem = mc.mem;
  for (int i = 0; i < 8; ++i) {
    hv::VmConfig config;
    config.name = "vm" + std::to_string(i);
    config.loop_workload = true;
    config.llc_cap = 1e9;
    hv.create_vm(config, workloads::make_app("povray", mem, static_cast<std::uint64_t>(i)),
                 i % 4);
  }
  auto& sched = hv.scheduler();
  hv::RunReport report;
  report.core = 0;
  report.ran = hv.machine().cycles_per_tick();
  report.pmc_delta.set(pmc::Counter::kUnhaltedCycles,
                       static_cast<std::uint64_t>(report.ran));
  report.pmc_delta.set(pmc::Counter::kLlcMisses, 100);
  Tick now = 0;
  for (auto _ : state) {
    hv::Vcpu* v = sched.pick(0, now);
    if (v != nullptr) sched.account(*v, report);
    if (++now % kTicksPerSlice == 0) sched.slice_end(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_ScheduleDecision, hv::CreditScheduler);
BENCHMARK_TEMPLATE(BM_ScheduleDecision, core::Ks4Xen);

}  // namespace

BENCHMARK_MAIN();
