// Fig 5 — "KS4Xen minimizes LLC contention, thus avoids performance
// variations."
//
// Three panels, as in the paper:
//   top-left : vsen1 (gcc) co-runs with each vdisi under KS4Xen, both
//              booked the same permit (the paper's 250k); vsen1's
//              normalized performance stays ~1.0 (XCS shown for
//              contrast).
//   top-right: punishments received by vsen1 vs vdisi — the polluter
//              pays, not the victim.
//   bottom   : vdis1 (lbm) timeline: measured llc_cap and CPU usage
//              under XCS (always running) vs KS4Xen (deprived while
//              the quota is negative — the paper's zigzag).
//
// The top-panel scenario grid (3 disruptors x {XCS, KS4Xen} + the gcc
// solo baseline) fans out over sim::SweepRunner; the solo is requested
// in its own first batch (the permit depends on it) and again with the
// grid, where the memo cache answers it without re-simulating.  The
// bottom-panel timelines keep their manual build_scenario runs (they
// attach samplers and read controller state mid-run).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  bench::header("Fig 5", "KS4Xen effectiveness and the polluter-pays timeline",
                "vsen1 keeps ~100% of its solo performance; disruptors absorb the "
                "punishments; punished lbm is deprived of CPU until its quota recovers");

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(90);

  auto factory = [&](const std::string& name) {
    return [name, mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
  };

  // Batch 1: the solo baseline (the permit depends on it).
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  sweep.add_solo(spec, factory("gcc"), "gcc", "gcc");
  const auto gcc_solo = sweep.run().at(0).vms[0];
  // The paper books both VMs at 250k (misses/ms on the 2.8 GHz part).
  // Scaled analog: comfortably above gcc's intrinsic pollution,
  // far below any disruptor's.
  const double permit = gcc_solo.llc_cap_act * 1.5 + 8.0;
  std::cout << "gcc solo: IPC " << fmt_double(gcc_solo.ipc, 3) << ", Equation 1 rate "
            << fmt_double(gcc_solo.llc_cap_act, 1) << " miss/ms; booked permit (both VMs): "
            << fmt_double(permit, 1) << " miss/ms\n\n";

  // Batch 2: the whole top-panel grid; the re-requested solo is a
  // memo hit (0 extra simulations).
  struct GridJob {
    std::string disruptor;
    std::size_t xcs = 0;
    std::size_t ks = 0;
  };
  std::vector<GridJob> grid;
  sweep.add_solo(spec, factory("gcc"), "gcc", "gcc");
  for (const auto& dis_name : workloads::disruptive_apps()) {
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.workload = factory("gcc");
    sen.pinned_cores = {0};
    sim::VmPlan dis;
    dis.config.name = dis_name;
    dis.config.loop_workload = true;
    dis.workload = factory(dis_name);
    dis.pinned_cores = {1};

    GridJob job;
    job.disruptor = dis_name;
    sim::RunSpec xcs_spec = spec;
    xcs_spec.scheduler = [] { return std::make_unique<hv::CreditScheduler>(); };
    job.xcs = sweep.add(xcs_spec, {sen, dis}, dis_name + "/xcs");

    sim::RunSpec ks_spec = spec;
    ks_spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
    sen.config.llc_cap = permit;
    dis.config.llc_cap = permit;
    job.ks = sweep.add(ks_spec, {sen, dis}, dis_name + "/ks4xen");
    grid.push_back(std::move(job));
  }
  const auto outcomes = sweep.run();

  TextTable top({"disruptor", "XCS norm. perf", "KS4Xen norm. perf", "vsen1 punished ticks",
                 "vdis punished ticks"});
  bool ok = true;
  for (const GridJob& job : grid) {
    const auto& xcs = outcomes[job.xcs];
    const auto& ks = outcomes[job.ks];
    const double norm_xcs = xcs.vms[0].ipc / gcc_solo.ipc;
    const double norm_ks = ks.vms[0].ipc / gcc_solo.ipc;
    top.add_row({job.disruptor, fmt_double(norm_xcs, 2), fmt_double(norm_ks, 2),
                 fmt_count(ks.vms[0].punished_ticks), fmt_count(ks.vms[1].punished_ticks)});

    ok &= bench::check("KS4Xen keeps vsen1 >= 90% of solo perf vs " + job.disruptor,
                       norm_ks >= 0.90);
    ok &= bench::check("KS4Xen beats XCS vs " + job.disruptor, norm_ks > norm_xcs + 0.03);
    ok &= bench::check("the polluter pays vs " + job.disruptor +
                           " (vdis >> vsen punishments)",
                       ks.vms[1].punished_ticks > 5 * std::max<std::int64_t>(
                                                          ks.vms[0].punished_ticks, 1));
  }
  ok &= bench::check("the re-requested solo baseline came from the memo cache",
                     sweep.solo_memo_hits() == 1);
  std::cout << '\n' << top << '\n';

  // --- bottom panel: vdis1 timeline --------------------------------------
  const Tick timeline_ticks = 70;
  auto run_timeline = [&](bool kyoto) {
    sim::RunSpec tspec = spec;
    tspec.scheduler = [kyoto]() -> std::unique_ptr<hv::Scheduler> {
      if (kyoto) return std::make_unique<core::Ks4Xen>();
      return std::make_unique<hv::CreditScheduler>();
    };
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.config.llc_cap = kyoto ? permit : 0.0;
    sen.workload = factory("gcc");
    sen.pinned_cores = {0};
    sim::VmPlan dis;
    dis.config.name = "lbm";
    dis.config.llc_cap = kyoto ? permit : 0.0;
    dis.config.loop_workload = true;
    dis.workload = factory("lbm");
    dis.pinned_cores = {1};
    auto hv = sim::build_scenario(tspec, {sen, dis});
    const core::PollutionController* ctl = nullptr;
    if (kyoto) ctl = &static_cast<core::Ks4Xen&>(hv->scheduler()).kyoto();
    sim::TimelineSampler sampler(*hv, *hv->vms()[1], ctl);
    hv->run_ticks(timeline_ticks);
    return sampler.samples();
  };

  const auto xcs_tl = run_timeline(false);
  const auto ks_tl = run_timeline(true);

  TextTable tl({"tick", "XCS: run", "XCS rate (miss/ms)", "KS4Xen: run",
                "KS rate (miss/ms)", "KS quota (k misses)"});
  for (Tick t = 0; t < timeline_ticks; t += 2) {
    const auto i = static_cast<std::size_t>(t);
    tl.add_row({std::to_string(t), xcs_tl[i].ran ? "#" : ".",
                fmt_double(xcs_tl[i].rate, 0), ks_tl[i].punished ? "." : "#",
                fmt_double(ks_tl[i].rate, 0), fmt_double(ks_tl[i].quota / 1000.0, 2)});
  }
  std::cout << tl << "('#' = on CPU this tick, '.' = deprived/idle)\n\n";

  int xcs_running = 0;
  int ks_running = 0;
  bool quota_went_negative = false;
  for (Tick t = 0; t < timeline_ticks; ++t) {
    const auto i = static_cast<std::size_t>(t);
    xcs_running += xcs_tl[i].ran ? 1 : 0;
    ks_running += ks_tl[i].ran ? 1 : 0;
    quota_went_negative |= ks_tl[i].quota < 0.0;
  }
  ok &= bench::check("XCS: lbm runs essentially every tick",
                     xcs_running >= static_cast<int>(timeline_ticks) - 2);
  ok &= bench::check("KS4Xen: lbm deprived of CPU most of the time",
                     ks_running < static_cast<int>(timeline_ticks) / 3);
  ok &= bench::check("KS4Xen: pollution quota dives negative when lbm exceeds its permit",
                     quota_went_negative);
  return bench::verdict(ok);
}
