// Ablation — the three attribution strategies of §3.3 head to head.
//
// Setup: gcc (victim) and lbm (polluter) share a socket of the NUMA
// machine.  Ground truth for each VM is its solo Equation-1 rate.
// For each monitor we report: attribution error for the victim (the
// quantity socket dedication / McSim exist to fix), the end-to-end
// protection KS4Xen achieves with that monitor, and what the
// monitoring itself costs (migrations for dedication; replayed
// instructions for McSim).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

struct MonitorResult {
  double gcc_attributed = 0.0;  // rate the monitor charges gcc (miss/ms)
  double lbm_attributed = 0.0;
  double gcc_norm_perf = 0.0;   // protection achieved with this monitor
  std::string cost;
};

}  // namespace

int main() {
  bench::header("Ablation B", "attribution monitors: direct PMC vs socket dedication vs "
                              "McSim replay",
                "dedication/McSim charge the victim its intrinsic (near-solo) rate; "
                "direct PMCs inflate it; all three protect the victim end-to-end");

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(90);

  auto factory = [&](const std::string& name) {
    return [name, mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
  };

  const auto gcc_solo = sim::run_solo(spec, factory("gcc"), "gcc");
  const auto lbm_solo = sim::run_solo(spec, factory("lbm"), "lbm");
  std::cout << "ground truth (solo Equation 1): gcc " << fmt_double(gcc_solo.llc_cap_act, 1)
            << " miss/ms, lbm " << fmt_double(lbm_solo.llc_cap_act, 1) << " miss/ms\n\n";
  const double permit = gcc_solo.llc_cap_act * 1.5 + 8.0;

  enum class Kind { kDirect, kDedication, kMcSim };
  auto run_with = [&](Kind kind) {
    auto make_monitor = [kind]() -> std::unique_ptr<core::PollutionMonitor> {
      switch (kind) {
        case Kind::kDirect: return std::make_unique<core::DirectPmcMonitor>();
        case Kind::kDedication: return std::make_unique<core::SocketDedicationMonitor>();
        case Kind::kMcSim: return std::make_unique<core::McSimMonitor>();
      }
      return nullptr;
    };
    hv::Hypervisor hv(spec.machine, std::make_unique<core::Ks4Xen>(make_monitor()));
    const auto mem = spec.machine.mem;
    hv::VmConfig sen{.name = "gcc"};
    sen.llc_cap = permit;
    sen.loop_workload = true;
    hv::Vm& gcc = hv.create_vm(sen, workloads::make_app("gcc", mem, 1), 0);
    hv::VmConfig dis{.name = "lbm"};
    dis.llc_cap = permit;
    dis.loop_workload = true;
    hv::Vm& lbm = hv.create_vm(dis, workloads::make_app("lbm", mem, 2), 1);

    hv.run_ticks(spec.warmup_ticks);
    const auto before = gcc.counters();
    hv.run_ticks(spec.measure_ticks);
    const auto delta = gcc.counters() - before;

    auto& ks = static_cast<core::Ks4Xen&>(hv.scheduler());
    MonitorResult r;
    r.gcc_attributed = ks.kyoto().state(gcc).last_rate;
    r.lbm_attributed = ks.kyoto().state(lbm).last_rate;
    r.gcc_norm_perf = delta.ipc() / gcc_solo.ipc;
    switch (kind) {
      case Kind::kDirect:
        r.cost = "none";
        break;
      case Kind::kDedication: {
        auto& mon = static_cast<core::SocketDedicationMonitor&>(ks.kyoto().monitor());
        r.cost = fmt_count(mon.migrations_performed()) + " migrations, " +
                 fmt_count(mon.isolations_skipped()) + " skips";
        break;
      }
      case Kind::kMcSim:
        r.cost = "replays on a dedicated sim host";
        break;
    }
    return r;
  };

  const auto direct = run_with(Kind::kDirect);
  const auto dedication = run_with(Kind::kDedication);
  const auto mcsim = run_with(Kind::kMcSim);

  TextTable table({"monitor", "gcc charged (miss/ms)", "lbm charged (miss/ms)",
                   "gcc norm. perf", "monitoring cost"});
  table.add_row({"direct PMC", fmt_double(direct.gcc_attributed, 1),
                 fmt_double(direct.lbm_attributed, 1), fmt_double(direct.gcc_norm_perf, 2),
                 direct.cost});
  table.add_row({"socket dedication", fmt_double(dedication.gcc_attributed, 1),
                 fmt_double(dedication.lbm_attributed, 1),
                 fmt_double(dedication.gcc_norm_perf, 2), dedication.cost});
  table.add_row({"McSim replay", fmt_double(mcsim.gcc_attributed, 1),
                 fmt_double(mcsim.lbm_attributed, 1), fmt_double(mcsim.gcc_norm_perf, 2),
                 mcsim.cost});
  std::cout << table << '\n';

  bool ok = true;
  ok &= bench::check("every monitor lets KS4Xen protect the victim (norm >= 0.85)",
                     direct.gcc_norm_perf >= 0.85 && dedication.gcc_norm_perf >= 0.85 &&
                         mcsim.gcc_norm_perf >= 0.85);
  ok &= bench::check("McSim charges gcc an order less than it charges lbm",
                     mcsim.gcc_attributed < mcsim.lbm_attributed / 10.0);
  ok &= bench::check("dedication charges gcc far less than lbm",
                     dedication.gcc_attributed < dedication.lbm_attributed / 5.0);
  ok &= bench::check("lbm's charged rate is in the ballpark of its solo rate (both "
                     "clean monitors)",
                     std::abs(mcsim.lbm_attributed - lbm_solo.llc_cap_act) <
                         lbm_solo.llc_cap_act * 0.6);
  return bench::verdict(ok);
}
