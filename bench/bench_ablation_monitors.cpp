// Ablation — the attribution monitors of §3.3 scored against the
// ground-truth oracle.
//
// Rebuilt on sim::SweepRunner: the scenario grid executes as
// independent share-nothing jobs, each carrying a GroundTruthShadow
// observer that records the oracle's intrinsic rates next to what the
// monitor actually charged.  The accuracy layer
// (sim/monitor_accuracy.hpp) reduces each run to per-tick error,
// polluter-ranking agreement (à la Fig 4) and time-to-detect.
//
// Two scenario families:
//
//  * attribution (VMs unbooked): steady contention, exactly the
//    attribution problem of §3.3 — no punishment ever interferes, so
//    direct PMCs stay contaminated while dedication campaigns and
//    McSim replays converge to the intrinsic rate.  Scores error and
//    ranking.
//  * protection (VMs booked): Fig-5 end-to-end check — every monitor
//    must let KS4Xen protect the victim, and must put the polluter on
//    top of its ranking within a few ticks (time-to-detect).
//
// Monitors under test: the paper's three estimators (direct PMC,
// socket dedication, McSim replay) plus GroundTruthMonitor itself —
// the oracle used as a scheduler input, whose accuracy against its
// own shadow must be exact (the self-check that pins the harness).
//
// Gating policy (hardware-adaptive, like bench_sweep): ranking
// accuracy, error-bound and exact sharded-vs-serial agreement checks
// ALWAYS gate; the lane-speedup floor (--min-sweep-speedup) only
// gates when the host has at least as many CPUs as lanes.  Results
// land in BENCH_monitor_accuracy.json (schema in README.md),
// including host_cpus so trajectory points from 1-vCPU CI containers
// are not mistaken for scaling measurements.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kyoto/ground_truth.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/monitor_accuracy.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

struct MonitorDef {
  const char* name;
  sim::MonitorFactory make;
};

std::vector<MonitorDef> monitor_defs() {
  return {
      {"direct-pmc",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::DirectPmcMonitor>();
       }},
      {"socket-dedication",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::SocketDedicationMonitor>();
       }},
      {"mcsim-replay",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::McSimMonitor>();
       }},
      {"ground-truth",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::GroundTruthMonitor>();
       }},
  };
}

/// One VM mix of the grid.  The victim (index 0) is always gcc, the
/// paper's sensitive tenant; the aggressor the oracle must rank first
/// is named so the ranking gate is explicit.
struct ScenarioDef {
  const char* name;
  std::vector<const char*> apps;  // one per core, index = pinned core
  std::size_t aggressor_index;    // into apps
};

const std::vector<ScenarioDef> kScenarios = {
    {"gcc_lbm", {"gcc", "lbm"}, 1},                       // Fig 5 pair
    {"gcc_blockie", {"gcc", "blockie"}, 1},               // Fig 5 pair
    {"gcc_mcf", {"gcc", "mcf"}, 1},                       // Fig 5 pair
    {"fig4_mix", {"gcc", "omnetpp", "lbm", "hmmer"}, 2},  // Fig 4-style 4-VM ranking
};

/// Everything one instrumented grid job publishes from its lane.
struct JobCapture {
  std::unique_ptr<core::GroundTruthShadow> shadow;
  std::int64_t dedication_migrations = -1;  // -1: not a dedication run
  std::int64_t dedication_skips = -1;
};

/// Accuracy + protection, aggregated per monitor over the grid.
struct MonitorReport {
  std::string name;
  // Attribution family (unbooked, steady contention).
  double mean_abs_error = 0.0;     // mean of per-scenario means, miss/ms
  double mean_rel_error = 0.0;
  double victim_abs_error = 0.0;   // gcc charged-vs-true gap, mean over scenarios
  double top1_agreement = 0.0;     // mean over scenarios
  double rank_tau_min = 1.0;       // worst scenario
  bool aggressor_first_all = true; // final ranking puts the aggressor first, everywhere
  // Protection family (booked Fig-5 pair).
  double victim_norm_perf = 0.0;   // gcc IPC vs solo under KS4Xen
  Tick time_to_detect = -1;        // ticks from run start; -1 = never
  std::int64_t migrations = -1;    // dedication only
  std::int64_t skips = -1;
};

/// Where one instrumented job's results live: `outcome` indexes the
/// run() vector (the value add() returned), `series` the capture
/// vector.  Stored at submission so scoring can never desync from the
/// submission order.
struct JobRef {
  std::size_t outcome = 0;
  std::size_t series = 0;
};

struct BatchResult {
  int lanes = 1;
  double seconds = 0.0;
  std::size_t jobs = 0;
  std::vector<sim::RunOutcome> outcomes;
  /// Shadow series per instrumented job, in submission order of the
  /// instrumented jobs (solos excluded).
  std::vector<std::vector<std::vector<core::GroundTruthShadow::Sample>>> series;
  std::vector<JobRef> attribution;        // m * kScenarios.size() + s
  std::vector<JobRef> protection;         // per monitor
  std::vector<std::size_t> protection_solo;  // per monitor, outcome index
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_monitor_accuracy.json";
  double min_sweep_speedup = 0.0;
  int max_lanes = 4;
  bool quick = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = value();
    else if (arg == "--min-sweep-speedup") min_sweep_speedup = std::stod(value());
    else if (arg == "--lanes") max_lanes = std::stoi(value());
    else if (arg == "--quick") quick = true;
    else {
      std::cerr << "usage: bench_ablation_monitors [--json PATH] [--lanes N] "
                   "[--min-sweep-speedup X] [--quick]\n";
      return 2;
    }
  }

  bench::header("Ablation B", "attribution monitors scored against the ground-truth oracle",
                "every monitor ranks the polluter first; dedication/McSim charge the "
                "victim nearer its intrinsic rate than direct PMCs do; the ground-truth "
                "monitor matches its own shadow exactly; all monitors protect the victim");

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();  // dedication needs >= 2 sockets
  spec.warmup_ticks = 4;
  spec.measure_ticks = quick ? 26 : bench::ticks(90);
  const auto mem = spec.machine.mem;
  auto factory = [&mem](const std::string& name) {
    return [name, mem](std::uint64_t s) { return workloads::make_app(name, mem, s); };
  };

  // Permit for the protection family: comfortably above gcc's
  // intrinsic rate, far below any disruptor's.
  const auto gcc_solo = sim::run_solo(spec, factory("gcc"), "gcc");
  const double permit = gcc_solo.llc_cap_act * 1.5 + 8.0;
  std::cout << "gcc solo: IPC " << fmt_double(gcc_solo.ipc, 3) << ", Equation-1 rate "
            << fmt_double(gcc_solo.llc_cap_act, 1)
            << " miss/ms; booked permit (protection family): " << fmt_double(permit, 1)
            << " miss/ms\n\n";

  const auto monitors = monitor_defs();

  // --- submit + run the grid once per lane count -------------------------
  // Instrumented-job order: per monitor, the attribution scenarios,
  // then the booked protection pair — the scoring pass below walks the
  // same order.
  auto run_batch = [&](int lanes) {
    sim::SweepRunner sweep(lanes);
    BatchResult result;
    std::vector<std::unique_ptr<JobCapture>> captures;
    auto add_instrumented = [&](const MonitorDef& mon, const ScenarioDef& scenario,
                                double llc_cap, const std::string& label) {
      std::vector<sim::VmPlan> plans;
      for (std::size_t core = 0; core < scenario.apps.size(); ++core) {
        sim::VmPlan plan;
        plan.config.name = scenario.apps[core];
        plan.config.llc_cap = llc_cap;
        plan.config.loop_workload = true;
        plan.workload = factory(scenario.apps[core]);
        plan.pinned_cores = {static_cast<int>(core)};
        plans.push_back(std::move(plan));
      }
      sim::RunSpec job_spec = spec;
      auto make = mon.make;
      job_spec.scheduler = [make]() -> std::unique_ptr<hv::Scheduler> {
        return std::make_unique<core::Ks4Xen>(make());
      };
      captures.push_back(std::make_unique<JobCapture>());
      JobCapture* capture = captures.back().get();
      const auto attach_shadow = sim::shadow_observer(&capture->shadow);
      const std::size_t outcome = sweep.add(
          job_spec, std::move(plans),
          [capture, attach_shadow](hv::Hypervisor& hv) {
            attach_shadow(hv);
            core::PollutionMonitor* monitor = nullptr;
            if (auto* ks = dynamic_cast<core::Ks4Xen*>(&hv.scheduler())) {
              monitor = &ks->kyoto().monitor();
            }
            if (auto* ded = dynamic_cast<core::SocketDedicationMonitor*>(monitor)) {
              // Monitor state dies with the lane's hypervisor, so
              // mirror the cost counters out every tick.
              hv.add_tick_hook([capture, ded](hv::Hypervisor&, Tick) {
                capture->dedication_migrations = ded->migrations_performed();
                capture->dedication_skips = ded->isolations_skipped();
              });
            }
          },
          label);
      return JobRef{outcome, captures.size() - 1};
    };
    for (const auto& mon : monitors) {
      for (const auto& scenario : kScenarios) {
        result.attribution.push_back(add_instrumented(
            mon, scenario, 0.0, std::string(mon.name) + "/" + scenario.name));
      }
      // Protection pair: booked, normalized against the memoized solo.
      result.protection_solo.push_back(sweep.add_solo(spec, factory("gcc"), "gcc", "gcc"));
      result.protection.push_back(add_instrumented(
          mon, kScenarios[0], permit, std::string(mon.name) + "/protection"));
    }
    result.lanes = lanes;
    result.jobs = sweep.pending();
    const auto t0 = std::chrono::steady_clock::now();
    result.outcomes = sweep.run();
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (auto& capture : captures) result.series.push_back(capture->shadow->samples());
    return std::pair<BatchResult, std::vector<std::unique_ptr<JobCapture>>>(
        std::move(result), std::move(captures));
  };

  const int host_cpus = ThreadPool::hardware_lanes();
  std::vector<int> lane_counts = {1};
  for (const int l : {2, 4}) {
    if (l <= max_lanes) lane_counts.push_back(l);
  }
  std::vector<BatchResult> batches;
  std::vector<std::unique_ptr<JobCapture>> serial_captures;
  for (const int lanes : lane_counts) {
    auto [batch, captures] = run_batch(lanes);
    batches.push_back(std::move(batch));
    if (lanes == 1) serial_captures = std::move(captures);
  }
  const BatchResult& serial = batches.front();

  // Sharded agreement: outcomes AND shadow recordings byte-identical
  // at every lane count.
  bool agree = true;
  for (const BatchResult& batch : batches) {
    agree &= batch.outcomes == serial.outcomes;
    agree &= batch.series == serial.series;
  }

  // --- score -------------------------------------------------------------
  // Scoring covers the run from tick 0 (no warm-up skip): the load
  // phase is where detection happens, and monitor accuracy does not
  // need a warm cache.  All indices below are the ones submission
  // recorded (JobRef), never reconstructed arithmetically.
  std::vector<MonitorReport> reports;
  for (std::size_t m = 0; m < monitors.size(); ++m) {
    MonitorReport report;
    report.name = monitors[m].name;
    for (std::size_t s = 0; s < kScenarios.size(); ++s) {
      const auto& scenario = kScenarios[s];
      const JobRef& job = serial.attribution[m * kScenarios.size() + s];
      const auto accuracy = sim::score_monitor_accuracy(serial.series[job.series]);
      report.mean_abs_error += accuracy.mean_abs_error / kScenarios.size();
      report.mean_rel_error += accuracy.mean_rel_error / kScenarios.size();
      report.victim_abs_error +=
          std::abs(accuracy.estimator_mean_rate[0] - accuracy.true_mean_rate[0]) /
          kScenarios.size();
      report.top1_agreement += accuracy.top1_agreement / kScenarios.size();
      report.rank_tau_min = std::min(report.rank_tau_min, accuracy.rank_tau);
      const bool oracle_names_aggressor =
          accuracy.true_aggressor == static_cast<int>(scenario.aggressor_index);
      const std::size_t est_top = static_cast<std::size_t>(std::distance(
          accuracy.estimator_mean_rate.begin(),
          std::max_element(accuracy.estimator_mean_rate.begin(),
                           accuracy.estimator_mean_rate.end())));
      report.aggressor_first_all &=
          oracle_names_aggressor && est_top == scenario.aggressor_index;
    }
    // Protection pair.
    const JobRef& prot = serial.protection[m];
    const auto protection = sim::score_monitor_accuracy(serial.series[prot.series]);
    report.time_to_detect = protection.time_to_detect;
    const auto& outcome = serial.outcomes[prot.outcome];
    const auto& solo = serial.outcomes[serial.protection_solo[m]];
    report.victim_norm_perf = outcome.vms[0].ipc / solo.vms[0].ipc;
    reports.push_back(std::move(report));
  }
  // Dedication cost, mirrored out of the lanes by the tick hooks.
  const std::size_t captures_per_monitor = kScenarios.size() + 1;
  for (std::size_t j = 0; j < serial_captures.size(); ++j) {
    if (serial_captures[j]->dedication_migrations < 0) continue;
    MonitorReport& report = reports[j / captures_per_monitor];
    report.migrations = std::max(report.migrations, std::int64_t{0}) +
                        serial_captures[j]->dedication_migrations;
    report.skips = std::max(report.skips, std::int64_t{0}) +
                   serial_captures[j]->dedication_skips;
  }

  TextTable table({"monitor", "abs err (miss/ms)", "rel err", "victim err", "top-1 agree",
                   "tau (min)", "detect (ticks)", "victim norm perf", "cost"});
  for (const MonitorReport& r : reports) {
    std::string cost = "none";
    if (r.name == "socket-dedication") {
      cost = fmt_count(r.migrations) + " migr, " + fmt_count(r.skips) + " skips";
    } else if (r.name == "mcsim-replay") {
      cost = "replays on sim host";
    } else if (r.name == "ground-truth") {
      cost = "simulator oracle";
    }
    table.add_row({r.name, fmt_double(r.mean_abs_error, 2), fmt_double(r.mean_rel_error, 2),
                   fmt_double(r.victim_abs_error, 2), fmt_double(r.top1_agreement, 2),
                   fmt_double(r.rank_tau_min, 2),
                   r.time_to_detect >= 0 ? std::to_string(r.time_to_detect) : "never",
                   fmt_double(r.victim_norm_perf, 2), cost});
  }
  std::cout << kScenarios.size() << " attribution scenarios + 1 protection pair x "
            << monitors.size() << " monitors (+ memoized gcc solos), " << spec.warmup_ticks
            << "+" << spec.measure_ticks << " ticks/job, host cpus: " << host_cpus
            << "\n\n" << table << '\n';

  TextTable lanes_table({"lanes", "jobs", "seconds", "speedup"});
  for (const BatchResult& batch : batches) {
    lanes_table.add_row({std::to_string(batch.lanes), std::to_string(batch.jobs),
                         fmt_double(batch.seconds, 2),
                         fmt_double(serial.seconds / batch.seconds, 2) + "x"});
  }
  std::cout << lanes_table << '\n';

  // --- gates -------------------------------------------------------------
  const MonitorReport& direct = reports[0];
  const MonitorReport& dedication = reports[1];
  const MonitorReport& mcsim = reports[2];
  const MonitorReport& truth = reports[3];

  bool all_ok = true;
  all_ok &= bench::check(
      "sharded outcomes AND shadow recordings byte-identical to the serial batch at "
      "every lane count",
      agree);
  all_ok &= bench::check("every monitor ranks the true aggressor first in every scenario",
                         direct.aggressor_first_all && dedication.aggressor_first_all &&
                             mcsim.aggressor_first_all && truth.aggressor_first_all);
  all_ok &= bench::check("ground-truth monitor matches its own shadow exactly "
                         "(mean abs error < 1e-9 miss/ms)",
                         truth.mean_abs_error < 1e-9);
  all_ok &= bench::check(
      "under steady contention the clean monitors charge the victim nearer truth than "
      "direct PMCs (documented bounds: dedication < 0.9x, McSim < 0.5x of direct's "
      "victim error)",
      dedication.victim_abs_error < direct.victim_abs_error * 0.9 &&
          mcsim.victim_abs_error < direct.victim_abs_error * 0.5);
  all_ok &= bench::check("every monitor lets KS4Xen protect the victim (norm >= 0.85)",
                         direct.victim_norm_perf >= 0.85 &&
                             dedication.victim_norm_perf >= 0.85 &&
                             mcsim.victim_norm_perf >= 0.85 &&
                             truth.victim_norm_perf >= 0.85);
  all_ok &= bench::check(
      "every monitor puts the polluter on top within 6 ticks of the booked run",
      [&] {
        for (const MonitorReport& r : reports) {
          if (r.time_to_detect < 0 || r.time_to_detect > 6) return false;
        }
        return true;
      }());

  const double best_speedup = serial.seconds / batches.back().seconds;
  if (min_sweep_speedup > 0.0) {
    if (host_cpus >= lane_counts.back()) {
      all_ok &= bench::check("lanes=" + std::to_string(lane_counts.back()) +
                                 " grid speedup >= " + fmt_double(min_sweep_speedup, 1) + "x",
                             best_speedup >= min_sweep_speedup);
    } else {
      std::cout << "  (grid speedup gate skipped: host has " << host_cpus << " cpu(s) for "
                << lane_counts.back() << " lanes)\n";
    }
  }

  // --- JSON trajectory record (schema in README.md) ----------------------
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"monitor_accuracy\",\n  \"schema\": 1,\n"
       << "  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"host_cpus\": " << host_cpus
       << ",\n  \"warmup_ticks\": " << spec.warmup_ticks
       << ",\n  \"measure_ticks\": " << spec.measure_ticks
       << ",\n  \"scenarios\": [";
  for (std::size_t s = 0; s < kScenarios.size(); ++s) {
    json << '"' << kScenarios[s].name << '"' << (s + 1 < kScenarios.size() ? ", " : "");
  }
  json << "],\n  \"exact_agreement\": " << (agree ? "true" : "false")
       << ",\n  \"monitors\": [\n";
  for (std::size_t m = 0; m < reports.size(); ++m) {
    const MonitorReport& r = reports[m];
    json << "    {\"name\": \"" << r.name << "\", \"mean_abs_error\": " << r.mean_abs_error
         << ", \"mean_rel_error\": " << r.mean_rel_error
         << ", \"victim_abs_error\": " << r.victim_abs_error
         << ", \"top1_agreement\": " << r.top1_agreement
         << ", \"rank_tau_min\": " << r.rank_tau_min
         << ", \"aggressor_first_all\": " << (r.aggressor_first_all ? "true" : "false")
         << ", \"time_to_detect_ticks\": " << r.time_to_detect
         << ", \"victim_norm_perf\": " << r.victim_norm_perf << "}"
         << (m + 1 == reports.size() ? "\n" : ",\n");
  }
  json << "  ],\n  \"runs\": [\n";
  for (std::size_t b = 0; b < batches.size(); ++b) {
    json << "    {\"lanes\": " << batches[b].lanes
         << ", \"seconds\": " << batches[b].seconds
         << ", \"speedup_vs_serial\": " << serial.seconds / batches[b].seconds << "}"
         << (b + 1 == batches.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\n  JSON written to " << json_path << '\n';

  return bench::verdict(all_ok);
}
