// Ablation — Kyoto vs the related-work baseline families (§6).
//
// The paper argues that (a) cache partitioning needs hardware support
// and wastes capacity, and (b) placement is a global, NP-hard
// workaround; Kyoto instead charges for pollution on a single host.
// This bench puts all of them on the same scenario — vsen1 (gcc)
// against vdis1 (lbm) — and reports both the victim's protection and
// what it costs the disruptor:
//   XCS              — no protection (lower bound)
//   KS4Xen           — the paper's contribution
//   UCP-style static way partition — LLC ways split 10/10 [27]
//   contention-aware placement     — lbm moved to the other socket's LLC
//   Pisces           — dedicated cores, shared LLC
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

struct Result {
  double victim_norm = 0.0;     // gcc IPC / solo IPC
  double disruptor_tput = 0.0;  // lbm instructions per tick
};

Result run_case(const sim::RunSpec& base, const sim::SchedulerFactory& sched, double permit,
                bool partition_llc, bool other_socket, double gcc_solo_ipc) {
  sim::RunSpec spec = base;
  spec.scheduler = sched;

  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.config.llc_cap = permit;
  sen.workload = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app("gcc", mem, s);
  };
  sen.pinned_cores = {0};
  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.llc_cap = permit;
  dis.config.loop_workload = true;
  dis.config.home_node = other_socket ? 1 : 0;
  dis.workload = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app("lbm", mem, s);
  };
  dis.pinned_cores = {other_socket ? 4 : 1};

  auto hv = sim::build_scenario(spec, {sen, dis});
  if (partition_llc) {
    // UCP-style static split: 10 of 20 ways each.
    auto& llc = hv->machine().memory().llc(0);
    llc.set_partition(0, 0, 10);
    llc.set_partition(1, 10, 10);
  }
  hv->run_ticks(spec.warmup_ticks);
  const auto sen_before = hv->vms()[0]->counters();
  const auto dis_before = hv->vms()[1]->counters();
  hv->run_ticks(spec.measure_ticks);
  const auto sen_delta = hv->vms()[0]->counters() - sen_before;
  const auto dis_delta = hv->vms()[1]->counters() - dis_before;

  Result r;
  r.victim_norm = sen_delta.ipc() / gcc_solo_ipc;
  r.disruptor_tput = static_cast<double>(dis_delta.get(pmc::Counter::kInstructions)) /
                     static_cast<double>(spec.measure_ticks);
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation A", "Kyoto vs partitioning and placement baselines",
                "all protections restore the victim; they differ in what the disruptor "
                "and the provider pay");

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();  // 2 sockets so placement has somewhere to go
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(60);

  const auto gcc_solo =
      sim::run_solo(spec, [mem = spec.machine.mem](std::uint64_t s) {
        return workloads::make_app("gcc", mem, s);
      });
  const double permit = gcc_solo.llc_cap_act * 1.5 + 8.0;

  const auto credit = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>());
  };
  const auto ks4xen = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Xen>());
  };
  const auto pisces = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::PiscesScheduler>());
  };

  struct Case {
    const char* name;
    Result result;
  };
  std::vector<Case> cases;
  cases.push_back({"XCS (no protection)",
                   run_case(spec, credit, 0.0, false, false, gcc_solo.ipc)});
  cases.push_back({"KS4Xen (polluter pays)",
                   run_case(spec, ks4xen, permit, false, false, gcc_solo.ipc)});
  cases.push_back({"UCP-style way partition (10/10)",
                   run_case(spec, credit, 0.0, true, false, gcc_solo.ipc)});
  cases.push_back({"placement (lbm -> other socket)",
                   run_case(spec, credit, 0.0, false, true, gcc_solo.ipc)});
  cases.push_back({"Pisces (dedicated cores)",
                   run_case(spec, pisces, 0.0, false, false, gcc_solo.ipc)});

  TextTable table({"system", "victim norm. perf", "disruptor throughput (instr/tick)",
                   "notes"});
  for (const auto& c : cases) {
    std::string note;
    if (std::string(c.name).find("KS4Xen") != std::string::npos) {
      note = "throttles polluter only when over permit";
    } else if (std::string(c.name).find("partition") != std::string::npos) {
      note = "needs HW support; halves everyone's LLC";
    } else if (std::string(c.name).find("placement") != std::string::npos) {
      note = "consumes a second socket";
    } else if (std::string(c.name).find("Pisces") != std::string::npos) {
      note = "no CPU sharing, LLC still shared";
    } else {
      note = "victim unprotected";
    }
    table.add_row({c.name, fmt_double(c.result.victim_norm, 2),
                   fmt_count(static_cast<long long>(c.result.disruptor_tput)), note});
  }
  std::cout << table << '\n';

  bool ok = true;
  ok &= bench::check("XCS leaves the victim degraded (norm < 0.9)",
                     cases[0].result.victim_norm < 0.9);
  ok &= bench::check("KS4Xen restores the victim (norm >= 0.9)",
                     cases[1].result.victim_norm >= 0.9);
  ok &= bench::check("way partitioning also protects (norm >= 0.85)",
                     cases[2].result.victim_norm >= 0.85);
  ok &= bench::check("placement protects by construction (norm >= 0.95)",
                     cases[3].result.victim_norm >= 0.95);
  ok &= bench::check("Pisces alone does NOT protect against LLC contention (norm < 0.9)",
                     cases[4].result.victim_norm < 0.9);
  ok &= bench::check(
      "partitioning/placement let the disruptor run free; KS4Xen makes it pay",
      cases[1].result.disruptor_tput < cases[2].result.disruptor_tput / 2.0 &&
          cases[1].result.disruptor_tput < cases[3].result.disruptor_tput / 2.0);
  return bench::verdict(ok);
}
