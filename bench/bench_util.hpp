// Shared plumbing for the figure/table reproduction benches.
//
// Every binary prints: a header identifying the paper artifact it
// regenerates and the expected shape, the reproduced rows/series as
// an ASCII table (plus bars where the paper uses bar charts), and a
// PASS/CHECK verdict line per acceptance criterion so EXPERIMENTS.md
// can quote results directly.
//
// Set KYOTO_BENCH_QUICK=1 to shrink measurement windows ~3x (CI mode).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"

namespace kyoto::bench {

inline bool quick_mode() {
  const char* env = std::getenv("KYOTO_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Window length adjusted for quick mode.
inline Tick ticks(Tick full) { return quick_mode() ? std::max<Tick>(full / 3, 9) : full; }

inline void header(const std::string& id, const std::string& title,
                   const std::string& expectation) {
  std::cout << "\n==================================================================\n"
            << id << " — " << title << '\n'
            << "Paper expectation: " << expectation << '\n'
            << "==================================================================\n\n";
}

/// Prints one acceptance-criterion verdict.
inline bool check(const std::string& what, bool ok) {
  std::cout << (ok ? "  [PASS] " : "  [CHECK FAILED] ") << what << '\n';
  return ok;
}

/// Common exit: 0 when all checks passed (keeps `for b in bench/*`
/// loops honest).
inline int verdict(bool all_ok) {
  std::cout << (all_ok ? "\nAll shape checks passed.\n" : "\nSome shape checks FAILED.\n");
  return all_ok ? 0 : 1;
}

}  // namespace kyoto::bench
