// BENCH churn — cloud-churn scenario engine (not a paper figure).
//
// The paper evaluates Kyoto on static VM placements; this harness
// exercises sim::ChurnEngine, which streams tenants through a live
// hypervisor from a deterministic arrival/departure trace.  Three
// phases:
//
//  1. Isolation under churn: a static cache-sensitive victim shares
//     the Table-1 machine with a churning stream of polluter tenants.
//     Under vanilla XCS the victim degrades; under KS4Xen the
//     controller punishes each arriving polluter and the victim
//     recovers most of its solo throughput.  Gated: Kyoto strictly
//     reduces the churn-induced degradation.
//
//  2. Time-to-detect: an explicit single-event trace drops one known
//     polluter into a quiet machine at a known tick; per monitor, the
//     latency from admission to the controller's first punishment is
//     the time-to-detect figure (ChurnEngine::TenantMetrics::
//     first_punished_tick - admitted_tick).  Gated: every monitor
//     detects the polluter, and the direct-PMC path detects within a
//     few ticks.
//
//  3. Long-horizon drill: >= 1000 tenants stream through the
//     paper-geometry 2x4 NUMA machine in one run, and the whole
//     RunOutcome is byte-identical across tick-execution threads
//     {1,2,4} and SweepRunner lanes {1,2,4}.  Always gated — it is a
//     determinism claim, so it holds on any host; wall-clock per
//     configuration is recorded in the JSON but never gated.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kyoto/ks4xen.hpp"
#include "kyoto/monitor.hpp"
#include "sim/churn_engine.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

sim::WorkloadFactory app(const char* name, const hv::MachineConfig& machine) {
  const auto mem = machine.mem;
  return [name, mem](std::uint64_t seed) { return workloads::make_app(name, mem, seed); };
}

// --- phase 1: isolation under churn ----------------------------------

struct IsolationRun {
  const char* scheduler;
  double throughput = 0.0;
  double degradation = 0.0;  // % vs the victim's solo run
};

sim::VmPlan victim_plan(const hv::MachineConfig& machine, double llc_cap) {
  sim::VmPlan victim;
  victim.config.name = "victim";
  victim.config.llc_cap = llc_cap;
  victim.config.loop_workload = true;
  victim.workload = app("gcc", machine);
  victim.pinned_cores = {0};
  return victim;
}

std::shared_ptr<sim::ChurnPlan> polluter_churn(const hv::MachineConfig& machine,
                                               double llc_cap, Tick horizon) {
  auto plan = std::make_shared<sim::ChurnPlan>();
  plan->trace.kind = sim::ChurnTraceConfig::Kind::kPoisson;
  plan->trace.arrival_rate = 0.3;
  plan->trace.mean_lifetime_ticks = 12.0;
  plan->trace.horizon_ticks = horizon;
  plan->trace.seed = 5;
  plan->tenant_config.name = "polluter";
  plan->tenant_config.llc_cap = llc_cap;
  plan->tenant_config.loop_workload = true;
  plan->apps = {app("lbm", machine), app("mcf", machine)};
  plan->app_ids = {"lbm", "mcf"};
  return plan;
}

// --- phase 2: time-to-detect an arriving polluter --------------------

struct DetectionRun {
  std::string monitor;
  Tick admitted = -1;
  Tick first_punished = -1;
  Tick latency() const { return first_punished < 0 ? -1 : first_punished - admitted; }
};

DetectionRun detect_with(std::unique_ptr<core::PollutionMonitor> monitor, Tick run_ticks) {
  DetectionRun result;
  result.monitor = monitor->name();

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();
  auto shared = std::make_shared<std::unique_ptr<core::PollutionMonitor>>(std::move(monitor));
  spec.scheduler = [shared] {
    return std::make_unique<core::Ks4Xen>(std::move(*shared));
  };

  sim::ChurnPlan plan;
  plan.explicit_trace = {sim::ChurnEvent{6, 0}};  // one polluter, arrives, stays
  plan.tenant_config.name = "polluter";
  plan.tenant_config.llc_cap = 25.0;
  plan.tenant_config.loop_workload = true;
  plan.apps = {app("lbm", spec.machine)};
  plan.app_ids = {"lbm"};

  auto hv = sim::build_scenario(spec, {victim_plan(spec.machine, 30.0)});
  sim::ChurnEngine engine(*hv, plan, /*seed=*/9);
  hv->run_ticks(run_ticks);
  engine.finalize();

  const auto& tenant = engine.tenants().at(0);
  result.admitted = tenant.admitted_tick;
  result.first_punished = tenant.first_punished_tick;
  return result;
}

// --- phase 3: long-horizon determinism drill -------------------------

sim::RunSpec drill_spec(int threads, Tick measure) {
  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();
  spec.scheduler = [] {
    return std::make_unique<core::Ks4Xen>(std::make_unique<core::DirectPmcMonitor>());
  };
  spec.warmup_ticks = 2;
  spec.measure_ticks = measure;
  spec.threads = threads;

  auto plan = std::make_shared<sim::ChurnPlan>();
  plan->trace.kind = sim::ChurnTraceConfig::Kind::kPoisson;
  plan->trace.arrival_rate = 0.95;
  plan->trace.mean_lifetime_ticks = 6.0;
  plan->trace.horizon_ticks = measure;
  plan->trace.seed = 33;
  plan->tenant_config.name = "tenant";
  plan->tenant_config.llc_cap = 20.0;
  plan->tenant_config.loop_workload = true;
  plan->apps = {app("gcc", spec.machine), app("mcf", spec.machine)};
  plan->app_ids = {"gcc", "mcf"};
  spec.churn = plan;
  return spec;
}

/// A short churning job so sweep lanes genuinely overlap with the
/// drill instead of idling behind one long job.
sim::RunSpec small_churn_spec(std::uint64_t seed) {
  sim::RunSpec spec = drill_spec(1, 30);
  auto plan = std::make_shared<sim::ChurnPlan>(*spec.churn);
  plan->trace.horizon_ticks = 30;
  plan->trace.arrival_rate = 0.3;
  plan->trace.seed = seed;
  spec.churn = plan;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_churn.json";
  bool quick = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = value();
    else if (arg == "--quick") quick = true;
    else {
      std::cerr << "usage: bench_churn [--json PATH] [--quick]\n";
      return 2;
    }
  }

  bench::header("BENCH churn", "cloud-churn scenario engine (not a paper figure)",
                "KS4Xen preserves a static victim's throughput under a churning "
                "polluter stream, every monitor detects an arriving polluter, and "
                "a >= 1000-tenant run is byte-identical across thread and lane "
                "counts");

  const int host_cpus = ThreadPool::hardware_lanes();
  bool all_ok = true;

  // Phase 1: isolation under churn (Table-1 1x4 machine, scaled).
  const Tick iso_measure = quick ? 40 : 120;
  const Tick iso_warmup = 4;
  sim::RunSpec iso;
  iso.machine = hv::scaled_machine();
  iso.warmup_ticks = iso_warmup;
  iso.measure_ticks = iso_measure;

  const sim::RunOutcome solo = run_scenario(iso, {victim_plan(iso.machine, 0.0)});
  const double solo_tput = solo.vms.at(0).throughput;
  // Paper-style booking (same formula as the Fig-5 driver): the
  // victim's intrinsic rate plus headroom.  Arriving polluters vastly
  // exceed this permit and get punished; the victim stays under it.
  const double permit = solo.vms.at(0).llc_cap_act * 1.5 + 8.0;

  std::vector<IsolationRun> iso_runs;
  {
    sim::RunSpec xcs = iso;
    xcs.churn = polluter_churn(iso.machine, 0.0, iso_warmup + iso_measure);
    const sim::RunOutcome out = run_scenario(xcs, {victim_plan(iso.machine, 0.0)});
    iso_runs.push_back({"xcs", out.vms.at(0).throughput,
                        sim::degradation_pct(solo_tput, out.vms.at(0).throughput)});
  }
  {
    sim::RunSpec ks = iso;
    ks.scheduler = [] {
      return std::make_unique<core::Ks4Xen>(std::make_unique<core::DirectPmcMonitor>());
    };
    // The victim books no permit (llc_cap 0 = never punished — its
    // direct-PMC rate is contention-inflated under churn and must not
    // trip its own quota); every arriving tenant gets the strict one.
    ks.churn = polluter_churn(iso.machine, permit, iso_warmup + iso_measure);
    const sim::RunOutcome out = run_scenario(ks, {victim_plan(iso.machine, 0.0)});
    iso_runs.push_back({"ks4xen", out.vms.at(0).throughput,
                        sim::degradation_pct(solo_tput, out.vms.at(0).throughput)});
  }

  TextTable iso_table({"scheduler", "victim tput (inst/tick)", "vs solo"});
  iso_table.add_row({"(solo)", fmt_double(solo_tput, 0), "—"});
  for (const IsolationRun& run : iso_runs) {
    iso_table.add_row({run.scheduler, fmt_double(run.throughput, 0),
                       "-" + fmt_double(run.degradation, 1) + " %"});
  }
  std::cout << "  Phase 1 — static gcc victim vs churning lbm/mcf stream ("
            << iso_warmup << "+" << iso_measure << " ticks)\n\n"
            << iso_table << '\n';
  const double xcs_deg = iso_runs[0].degradation;
  const double ks_deg = iso_runs[1].degradation;
  all_ok &= bench::check("churning polluters visibly hurt the victim under XCS "
                         "(degradation >= 5 %)",
                         xcs_deg >= 5.0);
  all_ok &= bench::check("KS4Xen cuts the churn-induced degradation at least in half",
                         ks_deg <= xcs_deg * 0.5);

  // Phase 2: time-to-detect an arriving polluter, per monitor.
  const Tick detect_ticks = quick ? 60 : 100;
  std::vector<DetectionRun> detection;
  detection.push_back(
      detect_with(std::make_unique<core::DirectPmcMonitor>(), detect_ticks));
  detection.push_back(detect_with(std::make_unique<core::McSimMonitor>(), detect_ticks));
  detection.push_back(
      detect_with(std::make_unique<core::SocketDedicationMonitor>(), detect_ticks));

  TextTable det_table({"monitor", "admitted", "first punished", "latency (ticks)"});
  for (const DetectionRun& run : detection) {
    det_table.add_row({run.monitor, std::to_string(run.admitted),
                       std::to_string(run.first_punished),
                       run.latency() < 0 ? "never" : std::to_string(run.latency())});
  }
  std::cout << "  Phase 2 — lbm polluter arrives at tick 6 on the 2x4 NUMA machine ("
            << detect_ticks << " ticks)\n\n"
            << det_table << '\n';
  for (const DetectionRun& run : detection) {
    all_ok &= bench::check(run.monitor + " detects the arriving polluter",
                           run.latency() >= 0);
  }
  all_ok &= bench::check("direct-pmc time-to-detect <= 4 ticks",
                         detection[0].latency() >= 0 && detection[0].latency() <= 4);

  // Phase 3: long-horizon drill.  One run streams the tenant count;
  // the same spec then re-executes at every thread and lane count and
  // must reproduce the serial RunOutcome byte for byte.
  const Tick drill_measure = quick ? 240 : 1200;
  const std::int64_t min_admitted = quick ? 180 : 1000;

  sim::ChurnEngine::Stats drill_stats;
  double drill_seconds = 0.0;
  {
    const sim::RunSpec spec = drill_spec(1, drill_measure);
    auto hv = sim::build_scenario(spec, {});
    sim::ChurnEngine engine(*hv, *spec.churn, /*seed=*/7);
    const auto t0 = std::chrono::steady_clock::now();
    hv->run_ticks(spec.warmup_ticks + spec.measure_ticks);
    drill_seconds = seconds_since(t0);
    engine.finalize();
    drill_stats = engine.stats();
  }

  struct TimedRun {
    int n = 1;
    double seconds = 0.0;
  };
  std::vector<TimedRun> thread_runs;
  std::vector<sim::RunOutcome> thread_outcomes;
  for (const int threads : {1, 2, 4}) {
    const auto t0 = std::chrono::steady_clock::now();
    thread_outcomes.push_back(run_scenario(drill_spec(threads, drill_measure), {}));
    thread_runs.push_back({threads, seconds_since(t0)});
  }
  const bool thread_agree = thread_outcomes[1] == thread_outcomes[0] &&
                            thread_outcomes[2] == thread_outcomes[0];

  std::vector<TimedRun> lane_runs;
  std::vector<std::vector<sim::RunOutcome>> lane_outcomes;
  for (const int lanes : {1, 2, 4}) {
    sim::SweepRunner sweep(lanes);
    sweep.add(drill_spec(1, drill_measure), {}, "drill");
    sweep.add(small_churn_spec(61), {}, "small-a");
    sweep.add(small_churn_spec(62), {}, "small-b");
    const auto t0 = std::chrono::steady_clock::now();
    lane_outcomes.push_back(sweep.run());
    lane_runs.push_back({lanes, seconds_since(t0)});
  }
  const bool lane_agree = lane_outcomes[1] == lane_outcomes[0] &&
                          lane_outcomes[2] == lane_outcomes[0] &&
                          lane_outcomes[0].at(0) == thread_outcomes[0];

  TextTable drill_table({"config", "seconds", "agreement"});
  for (const TimedRun& run : thread_runs) {
    drill_table.add_row({"threads=" + std::to_string(run.n), fmt_double(run.seconds, 2),
                         thread_agree ? "exact" : "MISMATCH"});
  }
  for (const TimedRun& run : lane_runs) {
    drill_table.add_row({"lanes=" + std::to_string(run.n), fmt_double(run.seconds, 2),
                         lane_agree ? "exact" : "MISMATCH"});
  }
  std::cout << "  Phase 3 — " << drill_stats.arrivals << " arrivals / "
            << drill_stats.admitted << " admitted over " << drill_measure
            << " ticks on the 2x4 NUMA machine (peak live " << drill_stats.peak_live
            << ", host cpus: " << host_cpus << ")\n\n"
            << drill_table << '\n';
  all_ok &= bench::check("long-horizon run streams >= " + std::to_string(min_admitted) +
                             " admitted tenants (" + std::to_string(drill_stats.admitted) +
                             ")",
                         drill_stats.admitted >= min_admitted);
  all_ok &= bench::check("RunOutcome byte-identical across threads {1,2,4}", thread_agree);
  all_ok &= bench::check("sweep outcomes byte-identical across lanes {1,2,4} and equal "
                         "to the serial run",
                         lane_agree);

  // JSON record for the trajectory (schema in README.md).
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"churn\",\n  \"schema\": 1,\n"
       << "  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"host_cpus\": " << host_cpus << ",\n  \"isolation\": {\n"
       << "    \"machine\": \"scaled_1x4\", \"ticks\": " << (iso_warmup + iso_measure)
       << ", \"victim\": \"gcc\",\n    \"solo_throughput\": " << solo_tput
       << ",\n    \"runs\": [\n";
  for (std::size_t i = 0; i < iso_runs.size(); ++i) {
    const IsolationRun& r = iso_runs[i];
    json << "      {\"scheduler\": \"" << r.scheduler
         << "\", \"throughput\": " << r.throughput
         << ", \"degradation_pct\": " << r.degradation << "}"
         << (i + 1 == iso_runs.size() ? "\n" : ",\n");
  }
  json << "    ]\n  },\n  \"detection\": {\n"
       << "    \"machine\": \"scaled_2x4\", \"polluter\": \"lbm\", \"arrival_tick\": 6,"
       << "\n    \"runs\": [\n";
  for (std::size_t i = 0; i < detection.size(); ++i) {
    const DetectionRun& r = detection[i];
    json << "      {\"monitor\": \"" << r.monitor << "\", \"admitted_tick\": " << r.admitted
         << ", \"first_punished_tick\": " << r.first_punished
         << ", \"latency_ticks\": " << r.latency() << "}"
         << (i + 1 == detection.size() ? "\n" : ",\n");
  }
  json << "    ]\n  },\n  \"drill\": {\n"
       << "    \"machine\": \"scaled_2x4\", \"ticks\": " << drill_measure
       << ", \"arrival_rate\": 0.95, \"mean_lifetime_ticks\": 6,\n"
       << "    \"arrivals\": " << drill_stats.arrivals
       << ", \"admitted\": " << drill_stats.admitted
       << ", \"deferred\": " << drill_stats.deferred
       << ", \"rejected\": " << drill_stats.rejected
       << ", \"departed\": " << drill_stats.departed
       << ", \"peak_live\": " << drill_stats.peak_live
       << ",\n    \"seconds\": " << drill_seconds
       << ", \"thread_agreement\": " << (thread_agree ? "true" : "false")
       << ", \"lane_agreement\": " << (lane_agree ? "true" : "false")
       << ",\n    \"threads\": [\n";
  for (std::size_t i = 0; i < thread_runs.size(); ++i) {
    json << "      {\"threads\": " << thread_runs[i].n
         << ", \"seconds\": " << thread_runs[i].seconds << "}"
         << (i + 1 == thread_runs.size() ? "\n" : ",\n");
  }
  json << "    ],\n    \"lanes\": [\n";
  for (std::size_t i = 0; i < lane_runs.size(); ++i) {
    json << "      {\"lanes\": " << lane_runs[i].n
         << ", \"seconds\": " << lane_runs[i].seconds << "}"
         << (i + 1 == lane_runs.size() ? "\n" : ",\n");
  }
  json << "    ]\n  }\n}\n";
  json.close();
  std::cout << "\n  JSON written to " << json_path << '\n';

  return bench::verdict(all_ok);
}
