// Fig 6 — "KS4Xen's scalability": vsen1 (gcc, permit as in Fig 5)
// keeps its performance while 1..15 disruptive lbm vCPUs (each booked
// the paper's 50k analog) are colocated across the socket's 4 cores
// (up to 4 vCPUs per core, the consolidation ratio the paper cites
// from [10]).
//
// Two sim::SweepRunner batches: the gcc solo first (the permits are
// derived from it), then all nine colocation levels as share-nothing
// lanes.  The solo runs as a one-VM scenario under the same KS4Xen
// spec (NOT through add_solo, which baselines under the default
// scheduler) so its metrics are exactly the ones the serial
// run_solo(spec, ...) produced.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  bench::header("Fig 6", "KS4Xen scalability with 1..15 colocated disruptor vCPUs",
                "vsen1 normalized performance stays ~1.0 at every colocation level");

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(60);
  spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };

  auto factory = [&](const std::string& name) {
    return [name, mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
  };

  sim::SweepRunner sweep(ThreadPool::hardware_lanes());

  // Batch 1: the solo baseline, exactly run_solo's plan under this
  // figure's KS4Xen spec.
  sim::VmPlan solo_plan;
  solo_plan.config.name = "gcc";
  solo_plan.workload = factory("gcc");
  solo_plan.pinned_cores = {0};
  sweep.add(spec, {solo_plan}, "gcc-solo");
  const auto gcc_solo = sweep.run().at(0).vms[0];
  const double sen_permit = gcc_solo.llc_cap_act * 1.5 + 8.0;   // Fig 5's "250k"
  const double dis_permit = sen_permit / 5.0;                   // the paper's "50k"

  // Batch 2: every colocation level is an independent lane.
  const int cores = spec.machine.topology.total_cores();
  const std::vector<int> levels = {1, 2, 4, 6, 8, 10, 13, 14, 15};
  for (const int n : levels) {
    std::vector<sim::VmPlan> plans;
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.config.llc_cap = sen_permit;
    sen.workload = factory("gcc");
    sen.pinned_cores = {0};
    plans.push_back(sen);
    // Disruptors fill cores 1,2,3 first, then wrap onto core 0 —
    // 15 disruptors + vsen1 = 16 vCPUs = 4 per core.
    for (int i = 0; i < n; ++i) {
      sim::VmPlan dis;
      dis.config.name = "lbm-" + std::to_string(i);
      dis.config.llc_cap = dis_permit;
      dis.config.loop_workload = true;
      dis.workload = factory("lbm");
      dis.pinned_cores = {1 + i % (cores - 1)};
      if (i >= 3 * (cores - 1)) dis.pinned_cores = {0};  // 13th+ share vsen1's core
      plans.push_back(dis);
    }
    sweep.add(spec, std::move(plans), "colocated-" + std::to_string(n));
  }
  const auto outcomes = sweep.run();

  TextTable table({"# colocated vdis1 vCPUs", "normalized vsen1 perf", "bar"});
  bool ok = true;
  double worst = 1.0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double norm = outcomes[i].vms[0].ipc / gcc_solo.ipc;
    worst = std::min(worst, norm);
    table.add_row({std::to_string(levels[i]), fmt_double(norm, 2), ascii_bar(norm, 1.2, 24)});
  }
  std::cout << table << '\n';

  ok &= bench::check("vsen1 keeps >= 85% of solo performance at every scale", worst >= 0.85);
  return bench::verdict(ok);
}
