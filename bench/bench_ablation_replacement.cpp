// Ablation — LLC replacement/insertion policy vs contention (§6's
// first related-work family: DIP/BIP [17,19]).
//
// The paper notes that adaptive-insertion policies mitigate only one
// class of disruptor (large-working-set scans).  This bench runs
// v2rep against the streaming v3dis under six LLC policies and
// reports the victim's degradation: BIP/DIP indeed blunt the scan,
// but none of them charges the polluter — the orthogonal knob Kyoto
// adds.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;
using workloads::MicroClass;

namespace {

double degradation_under(cache::ReplacementKind kind, Tick measure) {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.machine.mem.llc_replacement = kind;
  spec.warmup_ticks = 6;
  spec.measure_ticks = measure;

  const auto rep = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::micro_representative(MicroClass::kC2, mem, s);
  };
  const auto dis = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::micro_disruptive(MicroClass::kC3, mem, s);
  };
  const double solo = sim::run_solo(spec, rep, "v2rep").ipc;

  sim::VmPlan a;
  a.config.name = "v2rep";
  a.workload = rep;
  a.pinned_cores = {0};
  sim::VmPlan b;
  b.config.name = "v3dis";
  b.config.loop_workload = true;
  b.workload = dis;
  b.pinned_cores = {1};
  const auto outcome = sim::run_scenario(spec, {a, b});
  return sim::degradation_pct(solo, outcome.vms[0].ipc);
}

}  // namespace

int main() {
  bench::header("Ablation C", "LLC replacement policy vs streaming contention",
                "scan-resistant insertion (LIP/BIP/DIP) blunts the streaming disruptor; "
                "plain LRU/PLRU/random do not");

  const Tick measure = bench::ticks(45);
  using RK = cache::ReplacementKind;
  const std::vector<RK> kinds = {RK::kLru, RK::kPlru, RK::kRandom,
                                 RK::kLip, RK::kBip,  RK::kDip};

  TextTable table({"LLC policy", "v2rep degradation %", "bar"});
  double lru_deg = 0.0;
  double best_adaptive = 1e9;
  for (const auto kind : kinds) {
    const double deg = degradation_under(kind, measure);
    table.add_row({cache::replacement_name(kind), fmt_double(deg, 1),
                   ascii_bar(std::max(deg, 0.0), 80.0, 28)});
    if (kind == RK::kLru) lru_deg = deg;
    if (kind == RK::kLip || kind == RK::kBip || kind == RK::kDip) {
      best_adaptive = std::min(best_adaptive, deg);
    }
  }
  std::cout << table << '\n';

  bool ok = true;
  ok &= bench::check("LRU suffers badly from the streaming scan (> 30%)", lru_deg > 30.0);
  ok &= bench::check("the best scan-resistant policy at least halves LRU's damage",
                     best_adaptive < lru_deg / 2.0);
  std::cout << "\nNote: even the best policy only *shields* the victim; unlike Kyoto it\n"
               "neither meters nor charges the polluter (no pay-per-use semantics).\n";
  return bench::verdict(ok);
}
