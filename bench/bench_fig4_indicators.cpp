// Fig 4 (and Table 2) — "Equation 1 vs LLCM: which indicator as the
// llc_cap?"
//
// Ten applications are each profiled solo (total LLC misses per run =
// LLCM, and Equation-1 miss rate), then every ordered pair is co-run
// in parallel to measure *real* aggressiveness (average degradation
// the app inflicts on the other nine).  The paper's claim, verified
// here with Kendall's tau exactly as the paper does [36]: the
// Equation-1 order o3 is closer to the real-aggressiveness order o1
// than the LLCM order o2 is.
//
// The solo-profiling runs and the 90 ordered co-run pairs are all
// independent, so the whole grid fans out over sim::SweepRunner (one
// hypervisor per lane, results in submission order, byte-identical to
// the serial loop) — the same path the ablation benches use.
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  bench::header("Fig 4", "Equation 1 vs LLCM as the aggressiveness indicator",
                "tau(o3=Eq1, o1=real) > tau(o2=LLCM, o1=real)");

  // Table 2 reminder.
  TextTable t2({"VM", "application"});
  t2.add_row({"vsen1, vsen2, vsen3", "gcc, omnetpp, soplex"});
  t2.add_row({"vdis1, vdis2, vdis3", "lbm, blockie, mcf"});
  std::cout << "Table 2 — experimental VMs\n" << t2 << '\n';

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(30);

  const auto& apps = workloads::fig4_apps();
  auto factory = [&](const std::string& name) {
    return [name, mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
  };

  // --- submit the whole grid as one sweep --------------------------------
  // 10 solo-profiling jobs + 90 ordered co-run pairs, all independent:
  // one SweepRunner batch, results in submission order.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  std::map<std::string, std::size_t> solo_job;
  for (const auto& name : apps) {
    solo_job[name] = sweep.add_solo(spec, factory(name), name, name);
  }
  struct PairJob {
    std::string aggressor;
    std::string victim;
    std::size_t job = 0;
  };
  std::vector<PairJob> pairs;
  for (const auto& aggressor : apps) {
    for (const auto& victim : apps) {
      if (victim == aggressor) continue;
      sim::VmPlan v;
      v.config.name = victim;
      v.config.loop_workload = true;
      v.workload = factory(victim);
      v.pinned_cores = {0};
      sim::VmPlan a;
      a.config.name = aggressor;
      a.config.loop_workload = true;
      a.workload = factory(aggressor);
      a.pinned_cores = {1};
      pairs.push_back(PairJob{aggressor, victim,
                              sweep.add(spec, {v, a}, aggressor + "_vs_" + victim)});
    }
  }
  const auto outcomes = sweep.run();

  // --- solo profiling ---------------------------------------------------
  std::map<std::string, double> eq1;        // misses/ms (Equation 1)
  std::map<std::string, double> llcm_k;     // total misses of one run, in thousands
  std::map<std::string, double> solo_ipc;
  for (const auto& name : apps) {
    const auto& m = outcomes[solo_job[name]].vms[0];
    solo_ipc[name] = m.ipc;
    eq1[name] = m.llc_cap_act;
    const double miss_per_instr =
        m.instructions ? static_cast<double>(m.llc_misses) / static_cast<double>(m.instructions)
                       : 0.0;
    const double run_length =
        static_cast<double>(workloads::app_profile(name).length);
    llcm_k[name] = miss_per_instr * run_length / 1000.0;
  }

  // --- pairwise real aggressiveness --------------------------------------
  std::map<std::string, RunningStats> aggressivity;
  for (const PairJob& pair : pairs) {
    aggressivity[pair.aggressor].add(std::max(
        0.0, sim::degradation_pct(solo_ipc[pair.victim], outcomes[pair.job].vms[0].ipc)));
  }

  // --- orders -------------------------------------------------------------
  auto order_by = [&](auto score) {
    std::vector<std::string> order(apps.begin(), apps.end());
    std::sort(order.begin(), order.end(),
              [&](const std::string& x, const std::string& y) { return score(x) > score(y); });
    return order;
  };
  const auto o1 = order_by([&](const std::string& n) { return aggressivity[n].mean(); });
  const auto o2 = order_by([&](const std::string& n) { return llcm_k[n]; });
  const auto o3 = order_by([&](const std::string& n) { return eq1[n]; });

  TextTable table({"app (by real aggressivity)", "avg aggressivity %", "LLCM (k misses/run)",
                   "Equation 1 (miss/ms)", "bar"});
  for (const auto& name : o1) {
    table.add_row({name, fmt_double(aggressivity[name].mean(), 1), fmt_count(static_cast<long long>(llcm_k[name])),
                   fmt_double(eq1[name], 1),
                   ascii_bar(aggressivity[name].mean(), aggressivity[o1.front()].mean(), 25)});
  }
  std::cout << table << '\n';

  auto print_order = [](const char* label, const std::vector<std::string>& order) {
    std::cout << label << " = (";
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i) std::cout << ", ";
      std::cout << order[i];
    }
    std::cout << ")\n";
  };
  print_order("o1 (real aggressivity)", o1);
  print_order("o2 (LLCM)           ", o2);
  print_order("o3 (Equation 1)     ", o3);

  const double tau_llcm = kendall_tau_orders(o1, o2);
  const double tau_eq1 = kendall_tau_orders(o1, o3);
  std::cout << "\nKendall's tau: tau(o2, o1) = " << fmt_double(tau_llcm, 3)
            << "   tau(o3, o1) = " << fmt_double(tau_eq1, 3) << '\n';

  bool ok = true;
  ok &= bench::check("Equation 1 ranks aggressiveness better than LLCM (higher tau)",
                     tau_eq1 > tau_llcm);
  ok &= bench::check("Equation 1 order agrees well with reality (tau > 0.6)", tau_eq1 > 0.6);
  ok &= bench::check("milc tops the LLCM order but not the real one (the paper's motivating case)",
                     o2.front() == "milc" && o1.front() != "milc");
  ok &= bench::check("the disruptive trio (lbm/blockie/mcf) occupies the real order's top half",
                     [&] {
                       int top = 0;
                       for (std::size_t i = 0; i < 5; ++i) {
                         for (const auto& d : workloads::disruptive_apps()) {
                           if (o1[i] == d) ++top;
                         }
                       }
                       return top == 3;
                     }());
  return bench::verdict(ok);
}
