// Fig 9 — "Migrating vCPU could impact VMs which host memory bound
// applications."
//
// On the 2-socket NUMA machine (PowerEdge R420 analog), each of 8
// SPEC applications runs alone while KS4Xen's socket-dedication
// machinery periodically migrates its vCPU from numa0 to numa1 and
// back "after a random period".  While displaced, every memory access
// is remote.  Expected shape: memory-intensive applications (milc,
// lbm, mcf, soplex, omnetpp) lose the most (paper: up to ~12%);
// cache-resident ones (astar, bzip, xalan) barely notice.
//
// Runs on the sweep API: 16 jobs (8 apps × pinned/migrated) in one
// batch.  The migration campaign rides the HvObserver overload — here
// not as a passive sampler (the Fig 2 idiom) but as a deterministic
// *actuator*: the hook it installs perturbs its own private
// hypervisor, which is fine for sweep/farm byte-identity because the
// perturbation is a pure function of the job (fixed Rng seed).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

const std::vector<std::string> kApps = {"mcf",   "soplex", "milc", "omnetpp",
                                        "xalan", "astar",  "bzip", "lbm"};

sim::VmPlan solo_plan(const sim::RunSpec& spec, const std::string& name) {
  sim::VmPlan plan;
  plan.config.name = name;
  plan.config.loop_workload = true;
  plan.config.home_node = 0;
  plan.workload = [name, mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app(name, mem, s);
  };
  plan.pinned_cores = {0};
  return plan;
}

/// The sampling campaign as an observer: every `period` ticks move
/// the vCPU to numa1; bring it home after a random 1..4 ticks.  State
/// is owned per job (shared_ptr into the hook), so jobs stay
/// independent across lanes.
sim::HvObserver migration_campaign() {
  return [](hv::Hypervisor& h) {
    auto rng = std::make_shared<Rng>(1234);
    auto away_until = std::make_shared<Tick>(-1);
    constexpr Tick period = 12;
    hv::Vcpu* vcpu = &h.vms()[0]->vcpu(0);
    h.add_tick_hook([vcpu, rng, away_until](hv::Hypervisor& hh, Tick now) {
      if (*away_until < 0 && now > 0 && now % period == 0) {
        hh.migrate(*vcpu, 4);  // first core of numa1
        *away_until = now + 1 + static_cast<Tick>(rng->below(4));
      } else if (*away_until >= 0 && now >= *away_until) {
        hh.migrate(*vcpu, 0);
        *away_until = -1;
      }
    });
  };
}

}  // namespace

int main() {
  bench::header("Fig 9", "vCPU migration overhead per application (2-socket NUMA)",
                "memory-bound apps degrade most (paper: up to ~12%); cache-resident ~0");

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(90);

  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  for (const auto& name : kApps) {
    sweep.add(spec, {solo_plan(spec, name)}, name + "/pinned");
    sweep.add(spec, {solo_plan(spec, name)}, migration_campaign(), name + "/migrated");
  }
  const auto outcomes = sweep.run();

  TextTable table({"app", "IPC (pinned)", "IPC (migrated)", "degradation %", "bar"});
  bool ok = true;
  double mem_bound_max = 0.0;
  double cache_resident_max = 0.0;
  for (std::size_t i = 0; i < kApps.size(); ++i) {
    const std::string& name = kApps[i];
    const double base = outcomes[2 * i].vms.at(0).ipc;
    const double migrated = outcomes[2 * i + 1].vms.at(0).ipc;
    const double deg = sim::degradation_pct(base, migrated);
    table.add_row({name, fmt_double(base, 3), fmt_double(migrated, 3), fmt_double(deg, 1),
                   ascii_bar(std::max(deg, 0.0), 15.0, 24)});
    const bool memory_bound =
        name == "milc" || name == "lbm" || name == "mcf" || name == "soplex";
    if (memory_bound) mem_bound_max = std::max(mem_bound_max, deg);
    if (name == "astar" || name == "bzip") {
      cache_resident_max = std::max(cache_resident_max, deg);
    }
  }
  std::cout << table << '\n';

  ok &= bench::check("some memory-bound app degrades > 3%", mem_bound_max > 3.0);
  ok &= bench::check("degradation stays bounded (< 20%, paper: up to ~12%)",
                     mem_bound_max < 20.0);
  ok &= bench::check("cache-resident apps (astar, bzip) degrade less than the worst "
                     "memory-bound app",
                     cache_resident_max < mem_bound_max);
  return bench::verdict(ok);
}
