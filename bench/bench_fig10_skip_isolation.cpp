// Fig 10 — "vCPU isolation could be avoided in some situations."
//
// Two skip heuristics for socket dedication:
//  (1) a vCPU with very low LLC activity (hmmer) measures the same
//      llc_cap_act whether or not it is isolated — even when
//      colocated with heavy disruptors;
//  (2) a vCPU whose co-runners are all quiet (bzip among hmmers)
//      measures the same llc_cap_act without isolation.
//
// Runs on the sweep API: all six measurements (three target/co-runner
// settings × isolated/not) are one SweepRunner batch.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

/// Plans for `target`'s Equation-1 measurement while colocated with
/// the given co-runners, either "isolated" (co-runners parked on the
/// other socket — equivalent to a dedicated window) or "not isolated"
/// (co-runners share the socket).
std::vector<sim::VmPlan> rate_plans(const sim::RunSpec& spec, const std::string& target,
                                    const std::vector<std::string>& corunners,
                                    bool isolated) {
  std::vector<sim::VmPlan> plans;
  sim::VmPlan t;
  t.config.name = target;
  t.config.loop_workload = true;
  t.workload = [target, mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app(target, mem, s);
  };
  t.pinned_cores = {0};
  plans.push_back(t);
  int next_same = 1;
  int next_other = 4;
  for (const auto& name : corunners) {
    sim::VmPlan c;
    c.config.name = name + "-co" + std::to_string(next_same + next_other);
    c.config.loop_workload = true;
    c.workload = [name, mem = spec.machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
    c.pinned_cores = {isolated ? next_other++ : next_same++};
    plans.push_back(c);
  }
  return plans;
}

}  // namespace

int main() {
  bench::header("Fig 10", "when socket dedication is unnecessary",
                "hmmer: isolated == not isolated; bzip among hmmers: isolated == not "
                "isolated");

  sim::RunSpec spec;
  spec.machine = hv::scaled_numa_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(45);

  const std::vector<std::string> heavy = {"lbm", "blockie", "mcf"};
  const std::vector<std::string> quiet = {"hmmer", "hmmer", "hmmer"};

  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  auto submit = [&](const std::string& target, const std::vector<std::string>& corunners,
                    bool isolated) {
    return sweep.add(spec, rate_plans(spec, target, corunners, isolated),
                     target + (isolated ? "/isolated" : "/shared"));
  };
  const std::size_t i_hmmer_shared = submit("hmmer", heavy, false);
  const std::size_t i_hmmer_isolated = submit("hmmer", heavy, true);
  const std::size_t i_bzip_shared = submit("bzip", quiet, false);
  const std::size_t i_bzip_isolated = submit("bzip", quiet, true);
  // Contrast case for the sanity check below.
  const std::size_t i_gcc_shared = submit("gcc", heavy, false);
  const std::size_t i_gcc_isolated = submit("gcc", heavy, true);
  const auto outcomes = sweep.run();
  auto rate = [&](std::size_t job) { return outcomes[job].vms.at(0).llc_cap_act; };

  const double hmmer_not_isolated = rate(i_hmmer_shared);
  const double hmmer_isolated = rate(i_hmmer_isolated);
  const double bzip_not_isolated = rate(i_bzip_shared);
  const double bzip_isolated = rate(i_bzip_isolated);

  TextTable table({"measurement", "not isolated (miss/ms)", "isolated (miss/ms)",
                   "abs. difference"});
  table.add_row({"hmmer + 3 disruptors", fmt_double(hmmer_not_isolated, 2),
                 fmt_double(hmmer_isolated, 2),
                 fmt_double(std::abs(hmmer_not_isolated - hmmer_isolated), 2)});
  table.add_row({"bzip + 3 hmmer", fmt_double(bzip_not_isolated, 2),
                 fmt_double(bzip_isolated, 2),
                 fmt_double(std::abs(bzip_not_isolated - bzip_isolated), 2)});
  std::cout << table << '\n';

  bool ok = true;
  ok &= bench::check(
      "hmmer's llc_cap_act is tiny and isolation-insensitive (diff < 5 miss/ms)",
      std::abs(hmmer_not_isolated - hmmer_isolated) < 5.0);
  ok &= bench::check("bzip among quiet co-runners: isolation changes little "
                     "(diff < 20% of isolated value + 3)",
                     std::abs(bzip_not_isolated - bzip_isolated) <
                         0.2 * bzip_isolated + 3.0);
  // Sanity: with heavy co-runners a *sensitive* app's direct rate
  // does inflate — the heuristics are about quiet VMs, not everyone.
  const double gcc_not_isolated = rate(i_gcc_shared);
  const double gcc_isolated = rate(i_gcc_isolated);
  ok &= bench::check("contrast: gcc among disruptors IS isolation-sensitive",
                     gcc_not_isolated > gcc_isolated * 2.0 + 5.0);
  return bench::verdict(ok);
}
