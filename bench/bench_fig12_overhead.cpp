// Fig 12 — "The overhead incurred by KS4Xen is near zero."
//
// Two povray (CPU-bound) VMs share one core; the scheduling period is
// swept (the paper varies Xen's time slice 1..30 ms — here the cycles
// budget per tick is scaled so monitoring/accounting runs 15x more to
// 1x as often per unit of work).  Execution time of the first VM to
// complete is reported in Mcycles (period-independent unit).
// Expected shape: XCS and KS4Xen lines coincide at every period —
// the monitoring adds no measurable cost to the VMs.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

/// Completion cycles of povray-1 with two povray VMs time-sharing
/// core 0, under the given scheduler, with the tick budget scaled so
/// one tick represents `period_ms` of the nominal machine.
double exec_mcycles(bool kyoto, int period_ms) {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  // A tick always spans kTickMs of *virtual* time; emulate a shorter
  // scheduling period by slowing the clock so each tick carries
  // proportionally fewer cycles of work.
  spec.machine.freq_khz = spec.machine.freq_khz * period_ms / 10;
  spec.scheduler = [kyoto]() -> std::unique_ptr<hv::Scheduler> {
    if (kyoto) return std::make_unique<core::Ks4Xen>();
    return std::make_unique<hv::CreditScheduler>();
  };

  auto factory = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app("povray", mem, s);
  };
  sim::VmPlan a;
  a.config.name = "povray-1";
  a.config.llc_cap = kyoto ? 1000.0 : 0.0;
  a.workload = factory;
  a.pinned_cores = {0};
  sim::VmPlan b = a;
  b.config.name = "povray-2";

  auto hv = sim::build_scenario(spec, {a, b});
  hv::Vcpu& first = hv->vms()[0]->vcpu(0);
  hv->run_until([&] { return first.completed_runs() > 0; }, 60'000);
  const double wall = static_cast<double>(first.first_completion_wall_cycle());
  return wall < 0 ? -1.0 : wall / 1e6;
}

}  // namespace

int main() {
  bench::header("Fig 12", "KS4Xen vs XCS execution time across scheduling periods",
                "the two curves coincide — Kyoto's monitoring costs the VMs nothing");

  TextTable table({"scheduling period (ms)", "XCS exec (Mcycles)", "KS4Xen exec (Mcycles)",
                   "delta %"});
  bool ok = true;
  double worst_delta = 0.0;
  for (int period : {2, 5, 10, 20, 30}) {
    const double xcs = exec_mcycles(false, period);
    const double ks = exec_mcycles(true, period);
    const double delta = (ks - xcs) / xcs * 100.0;
    worst_delta = std::max(worst_delta, std::abs(delta));
    table.add_row({std::to_string(period), fmt_double(xcs, 1), fmt_double(ks, 1),
                   fmt_double(delta, 2)});
    ok &= xcs > 0 && ks > 0;
  }
  std::cout << table << '\n';

  ok &= bench::check("all runs completed", ok);
  ok &= bench::check("KS4Xen within 2% of XCS at every period (paper: near zero)",
                     worst_delta < 2.0);
  std::cout << "\n(Host-side scheduler cost — the other half of this claim — is measured\n"
               " by bench_micro_components: pick+account ns/tick for XCS vs KS4Xen.)\n";
  return bench::verdict(ok);
}
