// Fig 12 — "The overhead incurred by KS4Xen is near zero."
//
// Two povray (CPU-bound) VMs share one core; the scheduling period is
// swept (the paper varies Xen's time slice 1..30 ms — here the cycles
// budget per tick is scaled so monitoring/accounting runs 15x more to
// 1x as often per unit of work).  Execution time of the first VM to
// complete is reported in Mcycles (period-independent unit).
// Expected shape: XCS and KS4Xen lines coincide at every period —
// the monitoring adds no measurable cost to the VMs.
//
// Runs on the sweep API: the 5 × 2 (period × scheduler) grid is one
// batch of SweepRunner::add_completion jobs — run-to-completion with
// no warmup, matching the original manual run_until driver.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

/// Spec + plans for two povray VMs time-sharing core 0 under the
/// given scheduler, with the tick budget scaled so one tick
/// represents `period_ms` of the nominal machine.
std::pair<sim::RunSpec, std::vector<sim::VmPlan>> overhead_job(bool kyoto, int period_ms) {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  // A tick always spans kTickMs of *virtual* time; emulate a shorter
  // scheduling period by slowing the clock so each tick carries
  // proportionally fewer cycles of work.
  spec.machine.freq_khz = spec.machine.freq_khz * period_ms / 10;
  spec.scheduler = [kyoto]() -> std::unique_ptr<hv::Scheduler> {
    if (kyoto) return std::make_unique<core::Ks4Xen>();
    return std::make_unique<hv::CreditScheduler>();
  };

  auto factory = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::make_app("povray", mem, s);
  };
  sim::VmPlan a;
  a.config.name = "povray-1";
  a.config.llc_cap = kyoto ? 1000.0 : 0.0;
  a.workload = factory;
  a.pinned_cores = {0};
  sim::VmPlan b = a;
  b.config.name = "povray-2";
  return {std::move(spec), {std::move(a), std::move(b)}};
}

}  // namespace

int main() {
  bench::header("Fig 12", "KS4Xen vs XCS execution time across scheduling periods",
                "the two curves coincide — Kyoto's monitoring costs the VMs nothing");

  const std::vector<int> periods = {2, 5, 10, 20, 30};
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  for (const int period : periods) {
    for (const bool kyoto : {false, true}) {
      auto [spec, plans] = overhead_job(kyoto, period);
      sweep.add_completion(std::move(spec), std::move(plans), 0, 60'000,
                           std::string(kyoto ? "ks4xen" : "xcs") + "/" +
                               std::to_string(period) + "ms");
    }
  }
  const auto outcomes = sweep.run();
  auto exec_mcycles = [&](std::size_t job) {
    const std::int64_t wall = outcomes[job].completion_wall_cycles;
    return wall < 0 ? -1.0 : static_cast<double>(wall) / 1e6;
  };

  TextTable table({"scheduling period (ms)", "XCS exec (Mcycles)", "KS4Xen exec (Mcycles)",
                   "delta %"});
  bool ok = true;
  double worst_delta = 0.0;
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const double xcs = exec_mcycles(2 * i);
    const double ks = exec_mcycles(2 * i + 1);
    const double delta = (ks - xcs) / xcs * 100.0;
    worst_delta = std::max(worst_delta, std::abs(delta));
    table.add_row({std::to_string(periods[i]), fmt_double(xcs, 1), fmt_double(ks, 1),
                   fmt_double(delta, 2)});
    ok &= xcs > 0 && ks > 0;
  }
  std::cout << table << '\n';

  ok &= bench::check("all runs completed", ok);
  ok &= bench::check("KS4Xen within 2% of XCS at every period (paper: near zero)",
                     worst_delta < 2.0);
  std::cout << "\n(Host-side scheduler cost — the other half of this claim — is measured\n"
               " by bench_micro_components: pick+account ns/tick for XCS vs KS4Xen.)\n";
  return bench::verdict(ok);
}
