// Fig 2 — "Impact of LLC contention explained with LLC misses":
// per-tick LLC misses of v2rep over its first 7 time slices (21
// ticks) in four scenarios.
//
// The four scenarios are one sim::SweepRunner batch using the
// instrumented add() overload: each job owns a TimelineSampler slot
// (attached by the observer inside whichever lane runs the job,
// published at the batch barrier), so the series fan out over the
// hardware lanes while staying byte-identical to the serial loop.
// The figure's warm-up IS the data: the first slice's load phase is
// plotted, so the spec uses warmup_ticks = 0 and the whole 21-tick
// window is measured.
//
// Expected shape: alone — misses only during the first slice (data
// loading), then ~0; alternative — zigzag (the first tick of each
// slice reloads what the disruptor evicted); parallel — persistently
// high; combined — both effects.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;
using workloads::MicroClass;

namespace {

constexpr Tick kTicks = 21;  // 7 slices x 3 ticks

std::vector<sim::VmPlan> timeline_plans(const sim::RunSpec& spec, bool dis_same_core,
                                        bool dis_other_core) {
  std::vector<sim::VmPlan> plans;
  sim::VmPlan rep;
  rep.config.name = "v2rep";
  rep.workload = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::micro_representative(MicroClass::kC2, mem, s);
  };
  rep.pinned_cores = {0};
  plans.push_back(rep);
  auto add_dis = [&](int core, const char* name) {
    sim::VmPlan d;
    d.config.name = name;
    d.config.loop_workload = true;
    d.workload = [mem = spec.machine.mem](std::uint64_t s) {
      return workloads::micro_disruptive(MicroClass::kC2, mem, s);
    };
    d.pinned_cores = {core};
    plans.push_back(d);
  };
  if (dis_same_core) add_dis(0, "dis-alt");
  if (dis_other_core) add_dis(1, "dis-par");
  return plans;
}

std::uint64_t sum(const std::vector<std::uint64_t>& v, std::size_t from, std::size_t to) {
  std::uint64_t total = 0;
  for (std::size_t i = from; i < to && i < v.size(); ++i) total += v[i];
  return total;
}

}  // namespace

int main() {
  bench::header("Fig 2", "v2rep LLC misses per tick, first 7 slices",
                "alone: load once then ~0; alternative: zigzag at slice starts; "
                "parallel: persistently high");

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 0;  // the load phase is part of the figure
  spec.measure_ticks = kTicks;

  struct Scenario {
    const char* label;
    bool dis_same_core;
    bool dis_other_core;
  };
  const Scenario scenarios[] = {{"alone", false, false},
                                {"alternative", true, false},
                                {"parallel", false, true},
                                {"combined", true, true}};
  constexpr std::size_t kScenarios = std::size(scenarios);

  // One batch, one sampler slot per job: the observer runs inside the
  // executing lane and writes only its own slot (the vector is
  // pre-sized, so no reallocation races); run()'s barrier publishes.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  std::vector<std::unique_ptr<sim::TimelineSampler>> samplers(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    sweep.add(spec, timeline_plans(spec, scenarios[i].dis_same_core, scenarios[i].dis_other_core),
              [&samplers, i](hv::Hypervisor& h) {
                samplers[i] = std::make_unique<sim::TimelineSampler>(h, *h.vms()[0]);
              },
              scenarios[i].label);
  }
  sweep.run();

  const auto series_of = [&](std::size_t i) {
    std::vector<std::uint64_t> series;
    series.reserve(static_cast<std::size_t>(kTicks));
    for (const auto& s : samplers[i]->samples()) series.push_back(s.llc_misses);
    return series;
  };
  const auto alone = series_of(0);
  const auto alternative = series_of(1);
  const auto parallel = series_of(2);
  const auto combined = series_of(3);

  TextTable table({"tick (10ms)", "alone", "alternative", "parallel", "alt+para"});
  for (Tick t = 0; t < kTicks; ++t) {
    const auto i = static_cast<std::size_t>(t);
    const bool slice_start = t % kTicksPerSlice == 0;
    table.add_row({std::to_string((t + 1) * kTickMs) + (slice_start ? " *" : ""),
                   fmt_count(static_cast<long long>(alone[i])),
                   fmt_count(static_cast<long long>(alternative[i])),
                   fmt_count(static_cast<long long>(parallel[i])),
                   fmt_count(static_cast<long long>(combined[i]))});
  }
  std::cout << table << "\n(* = first tick of a 30 ms time slice)\n\n";

  bool ok = true;
  // Every job's sampler saw the whole window (observer attached before
  // tick 0, one sample per tick).
  bool sampled_all = true;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    sampled_all &= samplers[i] != nullptr &&
                   samplers[i]->samples().size() == static_cast<std::size_t>(kTicks);
  }
  ok &= bench::check("all 4 scenarios sampled every tick (sharded observers)", sampled_all);

  // Alone: first slice carries the load; later slices nearly silent.
  const auto alone_first = sum(alone, 0, 3);
  const auto alone_rest = sum(alone, 3, static_cast<std::size_t>(kTicks));
  ok &= bench::check("alone: first slice >> all later slices combined",
                     alone_first > 5 * std::max<std::uint64_t>(alone_rest, 1));

  // Alternative: zigzag — every time v2rep gets the core back after
  // the disruptor's 30 ms slice, its first tick pays a reload burst,
  // while the rest of its on-CPU ticks are nearly miss-free.  Detect
  // that bimodality without assuming a phase: after the initial load,
  // there must be several reload bursts (near the series maximum) AND
  // several near-silent ticks.
  std::uint64_t steady_max = 0;
  for (std::size_t i = 3; i < alternative.size(); ++i) {
    steady_max = std::max(steady_max, alternative[i]);
  }
  int bursts = 0;
  int quiet = 0;
  for (std::size_t i = 3; i < alternative.size(); ++i) {
    if (alternative[i] >= steady_max / 2) ++bursts;
    else if (alternative[i] <= steady_max / 10) ++quiet;
  }
  ok &= bench::check("alternative: zigzag (>=2 reload bursts and >=6 near-quiet ticks)",
                     steady_max > 500 && bursts >= 2 && quiet >= 6);

  // Parallel: steady-state misses stay high.
  const auto par_rest = sum(parallel, 3, static_cast<std::size_t>(kTicks));
  ok &= bench::check("parallel: steady misses >> alone's steady misses",
                     par_rest > 10 * std::max<std::uint64_t>(alone_rest, 1));
  const auto comb_rest = sum(combined, 3, static_cast<std::size_t>(kTicks));
  ok &= bench::check("combined: at least parallel-level misses", comb_rest > 5 * std::max<std::uint64_t>(alone_rest, 1));

  return bench::verdict(ok);
}
