// Fig 2 — "Impact of LLC contention explained with LLC misses":
// per-tick LLC misses of v2rep over its first 7 time slices (21
// ticks) in four scenarios.
//
// Expected shape: alone — misses only during the first slice (data
// loading), then ~0; alternative — zigzag (the first tick of each
// slice reloads what the disruptor evicted); parallel — persistently
// high; combined — both effects.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;
using workloads::MicroClass;

namespace {

constexpr Tick kTicks = 21;  // 7 slices x 3 ticks

std::vector<std::uint64_t> misses_timeline(bool dis_same_core, bool dis_other_core) {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();

  std::vector<sim::VmPlan> plans;
  sim::VmPlan rep;
  rep.config.name = "v2rep";
  rep.workload = [mem = spec.machine.mem](std::uint64_t s) {
    return workloads::micro_representative(MicroClass::kC2, mem, s);
  };
  rep.pinned_cores = {0};
  plans.push_back(rep);
  auto add_dis = [&](int core, const char* name) {
    sim::VmPlan d;
    d.config.name = name;
    d.config.loop_workload = true;
    d.workload = [mem = spec.machine.mem](std::uint64_t s) {
      return workloads::micro_disruptive(MicroClass::kC2, mem, s);
    };
    d.pinned_cores = {core};
    plans.push_back(d);
  };
  if (dis_same_core) add_dis(0, "dis-alt");
  if (dis_other_core) add_dis(1, "dis-par");

  auto hv = sim::build_scenario(spec, plans);
  sim::TimelineSampler sampler(*hv, *hv->vms()[0]);
  hv->run_ticks(kTicks);

  std::vector<std::uint64_t> series;
  series.reserve(static_cast<std::size_t>(kTicks));
  for (const auto& s : sampler.samples()) series.push_back(s.llc_misses);
  return series;
}

std::uint64_t sum(const std::vector<std::uint64_t>& v, std::size_t from, std::size_t to) {
  std::uint64_t total = 0;
  for (std::size_t i = from; i < to && i < v.size(); ++i) total += v[i];
  return total;
}

}  // namespace

int main() {
  bench::header("Fig 2", "v2rep LLC misses per tick, first 7 slices",
                "alone: load once then ~0; alternative: zigzag at slice starts; "
                "parallel: persistently high");

  const auto alone = misses_timeline(false, false);
  const auto alternative = misses_timeline(true, false);
  const auto parallel = misses_timeline(false, true);
  const auto combined = misses_timeline(true, true);

  TextTable table({"tick (10ms)", "alone", "alternative", "parallel", "alt+para"});
  for (Tick t = 0; t < kTicks; ++t) {
    const auto i = static_cast<std::size_t>(t);
    const bool slice_start = t % kTicksPerSlice == 0;
    table.add_row({std::to_string((t + 1) * kTickMs) + (slice_start ? " *" : ""),
                   fmt_count(static_cast<long long>(alone[i])),
                   fmt_count(static_cast<long long>(alternative[i])),
                   fmt_count(static_cast<long long>(parallel[i])),
                   fmt_count(static_cast<long long>(combined[i]))});
  }
  std::cout << table << "\n(* = first tick of a 30 ms time slice)\n\n";

  bool ok = true;
  // Alone: first slice carries the load; later slices nearly silent.
  const auto alone_first = sum(alone, 0, 3);
  const auto alone_rest = sum(alone, 3, static_cast<std::size_t>(kTicks));
  ok &= bench::check("alone: first slice >> all later slices combined",
                     alone_first > 5 * std::max<std::uint64_t>(alone_rest, 1));

  // Alternative: zigzag — every time v2rep gets the core back after
  // the disruptor's 30 ms slice, its first tick pays a reload burst,
  // while the rest of its on-CPU ticks are nearly miss-free.  Detect
  // that bimodality without assuming a phase: after the initial load,
  // there must be several reload bursts (near the series maximum) AND
  // several near-silent ticks.
  std::uint64_t steady_max = 0;
  for (std::size_t i = 3; i < alternative.size(); ++i) {
    steady_max = std::max(steady_max, alternative[i]);
  }
  int bursts = 0;
  int quiet = 0;
  for (std::size_t i = 3; i < alternative.size(); ++i) {
    if (alternative[i] >= steady_max / 2) ++bursts;
    else if (alternative[i] <= steady_max / 10) ++quiet;
  }
  ok &= bench::check("alternative: zigzag (>=2 reload bursts and >=6 near-quiet ticks)",
                     steady_max > 500 && bursts >= 2 && quiet >= 6);

  // Parallel: steady-state misses stay high.
  const auto par_rest = sum(parallel, 3, static_cast<std::size_t>(kTicks));
  ok &= bench::check("parallel: steady misses >> alone's steady misses",
                     par_rest > 10 * std::max<std::uint64_t>(alone_rest, 1));
  const auto comb_rest = sum(combined, 3, static_cast<std::size_t>(kTicks));
  ok &= bench::check("combined: at least parallel-level misses", comb_rest > 5 * std::max<std::uint64_t>(alone_rest, 1));

  return bench::verdict(ok);
}
