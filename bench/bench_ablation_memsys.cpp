// Ablation — memory-system extensions: hardware prefetching and
// shared-bus bandwidth contention.
//
// Two questions the base model (used for the calibrated paper
// reproductions) deliberately leaves to knobs:
//  (1) Prefetching: streaming disruptors get faster (they pollute
//      *more* per second) while dependent-chase victims gain little —
//      prefetch shifts the aggressiveness balance exactly the way the
//      paper's Equation 1 would then re-measure.
//  (2) Memory-bus queuing: two all-miss streams hurt each other even
//      when neither benefits from the LLC — the residual contention
//      channel (§2.1 mentions the FSB) left after cache effects.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;
using workloads::MicroClass;

namespace {

struct PairResult {
  double victim_ipc = 0.0;
  double victim_solo_ipc = 0.0;
  double dis_pollution = 0.0;  // Equation 1 of the disruptor
  double degradation() const {
    return sim::degradation_pct(victim_solo_ipc, victim_ipc);
  }
};

PairResult run_pair(const hv::MachineConfig& machine, const char* victim_app,
                    const char* dis_app, Tick measure) {
  sim::RunSpec spec;
  spec.machine = machine;
  spec.warmup_ticks = 6;
  spec.measure_ticks = measure;
  auto factory = [&](const std::string& name) {
    return [name, mem = machine.mem](std::uint64_t s) {
      return workloads::make_app(name, mem, s);
    };
  };
  PairResult r;
  r.victim_solo_ipc = sim::run_solo(spec, factory(victim_app), victim_app).ipc;
  sim::VmPlan v;
  v.config.name = victim_app;
  v.config.loop_workload = true;
  v.workload = factory(victim_app);
  v.pinned_cores = {0};
  sim::VmPlan d;
  d.config.name = dis_app;
  d.config.loop_workload = true;
  d.workload = factory(dis_app);
  d.pinned_cores = {1};
  const auto outcome = sim::run_scenario(spec, {v, d});
  r.victim_ipc = outcome.vms[0].ipc;
  r.dis_pollution = outcome.vms[1].llc_cap_act;
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation D", "prefetcher and memory-bus extensions",
                "prefetch speeds the streamer and raises its measured pollution; the "
                "bus model adds victim degradation even for an all-miss victim");

  const Tick measure = bench::ticks(45);
  bool ok = true;

  // --- prefetcher -------------------------------------------------------
  hv::MachineConfig base = hv::scaled_machine();
  hv::MachineConfig with_pf = base;
  with_pf.mem.prefetch.enabled = true;
  with_pf.mem.prefetch.degree = 4;

  const auto pf_off = run_pair(base, "gcc", "lbm", measure);
  const auto pf_on = run_pair(with_pf, "gcc", "lbm", measure);

  TextTable pf_table({"config", "gcc degradation %", "lbm Equation 1 (miss/ms)"});
  pf_table.add_row({"prefetch off", fmt_double(pf_off.degradation(), 1),
                    fmt_double(pf_off.dis_pollution, 1)});
  pf_table.add_row({"prefetch on (degree 4)", fmt_double(pf_on.degradation(), 1),
                    fmt_double(pf_on.dis_pollution, 1)});
  std::cout << pf_table << '\n';
  ok &= bench::check("prefetching raises the streamer's measured pollution rate",
                     pf_on.dis_pollution > pf_off.dis_pollution * 1.2);
  ok &= bench::check("victim still protected-able: degradation stays finite (< 95%)",
                     pf_on.degradation() < 95.0);

  // --- memory bus ---------------------------------------------------------
  hv::MachineConfig with_bus = base;
  with_bus.mem.bus.enabled = true;
  with_bus.mem.bus.transfer_cycles = 24;

  // An all-miss victim (v3dis-like stream vs stream): cache modelling
  // alone shows ~no degradation; the bus reveals bandwidth contention.
  const auto bus_off = run_pair(base, "milc", "lbm", measure);
  const auto bus_on = run_pair(with_bus, "milc", "lbm", measure);

  TextTable bus_table({"config", "milc degradation % (vs its own solo)", "note"});
  bus_table.add_row({"bus off", fmt_double(bus_off.degradation(), 1),
                     "pure cache model: streams barely interact"});
  bus_table.add_row({"bus on (24 cyc/line)", fmt_double(bus_on.degradation(), 1),
                     "queuing at the memory controller"});
  std::cout << bus_table << '\n';
  ok &= bench::check("without the bus, stream-vs-stream degradation is small (< 8%)",
                     bus_off.degradation() < 8.0);
  ok &= bench::check("with the bus, it is clearly larger (> bus-off + 5pp)",
                     bus_on.degradation() > bus_off.degradation() + 5.0);

  // Kyoto still works with both extensions enabled.
  hv::MachineConfig full = with_bus;
  full.mem.prefetch.enabled = true;
  {
    sim::RunSpec spec;
    spec.machine = full;
    spec.warmup_ticks = 6;
    spec.measure_ticks = measure;
    auto factory = [&](const std::string& name) {
      return [name, mem = full.mem](std::uint64_t s) {
        return workloads::make_app(name, mem, s);
      };
    };
    const auto solo = sim::run_solo(spec, factory("gcc"), "gcc");
    spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.config.llc_cap = solo.llc_cap_act * 1.5 + 8.0;
    sen.workload = factory("gcc");
    sen.pinned_cores = {0};
    sim::VmPlan dis;
    dis.config.name = "lbm";
    dis.config.llc_cap = sen.config.llc_cap;
    dis.config.loop_workload = true;
    dis.workload = factory("lbm");
    dis.pinned_cores = {1};
    const auto protected_run = sim::run_scenario(spec, {sen, dis});
    const double norm = protected_run.vms[0].ipc / solo.ipc;
    std::cout << "KS4Xen on the fully extended machine: gcc norm. perf "
              << fmt_double(norm, 2) << "\n\n";
    ok &= bench::check("KS4Xen keeps protecting with prefetch+bus enabled (norm >= 0.85)",
                       norm >= 0.85);
  }
  return bench::verdict(ok);
}
