// Table 1 — the experimental machine, plus the lmbench-style latency
// probe of §2.2.4 ("4 cycles for L1, 12 for L2, 45 for LLC, 180 for
// main memory").
//
// The probe replays a dependent pointer chase (mem_ratio 1, mlp 1)
// over growing working sets through the cache model and reports the
// average access latency: each plateau identifies a level.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "cache/config.hpp"
#include "common/table.hpp"
#include "hv/machine.hpp"
#include "mcsim/replay.hpp"
#include "mem/patterns.hpp"
#include "workloads/pattern_workload.hpp"

using namespace kyoto;

namespace {

double probe_latency(const cache::MemSystemConfig& mem, KHz freq, Bytes working_set) {
  workloads::WorkloadSpec spec;
  spec.name = "lat-probe";
  spec.mem_ratio = 1.0;  // every instruction is a dependent load
  spec.mlp = 1.0;
  workloads::PatternWorkload probe(
      spec, std::make_unique<mem::PointerChasePattern>(working_set, 42), 42);
  mcsim::ReplaySimulator sim(mem, freq);
  // One warm lap to load, then measure several laps.
  const auto lines = static_cast<Instructions>(working_set / mem::kLineBytes);
  sim.replay_live(probe, lines);  // cold warmup replay (discarded)
  // Measure with a fresh simulator but pre-walk the workload: measure
  // long enough that the cold lap amortizes away instead.
  const Instructions n = std::max<Instructions>(lines * 8, 64'000);
  const auto result = sim.replay_live(probe, n);
  return static_cast<double>(result.cycles) / static_cast<double>(result.instructions);
}

const char* classify(const cache::MemSystemConfig& mem, double measured) {
  const double l1 = static_cast<double>(mem.lat_l1);
  const double l2 = static_cast<double>(mem.lat_l2);
  const double llc = static_cast<double>(mem.lat_llc);
  if (measured < (l1 + l2) / 2) return "L1";
  if (measured < (l2 + llc) / 2) return "L2";
  if (measured < (llc + static_cast<double>(mem.lat_mem_local)) / 2) return "LLC";
  return "main memory";
}

}  // namespace

int main() {
  bench::header("Table 1", "Experimental machine & lmbench latency probe",
                "chase latency plateaus at ~4 (L1), ~12 (L2), ~45 (LLC), ~180 (memory)");

  const hv::MachineConfig paper = hv::paper_machine();
  const hv::MachineConfig scaled = hv::scaled_machine();

  TextTable config({"parameter", "paper machine (Table 1)", "scaled 1/64 (default)"});
  auto row = [&](const char* what, const std::string& a, const std::string& b) {
    config.add_row({what, a, b});
  };
  row("processor", "Xeon E5-1603 v3, 2.8 GHz", "2.8 GHz / 64 = 43.75 Mcyc/s");
  row("topology", "1 socket x 4 cores", "1 socket x 4 cores");
  row("L1 D", "32 KB, 8-way", fmt_count(static_cast<long long>(scaled.mem.l1.size)) + " B, 8-way");
  row("L2 U", "256 KB, 8-way", fmt_count(static_cast<long long>(scaled.mem.l2.size)) + " B, 8-way");
  row("LLC", "10 MB, 20-way", fmt_count(static_cast<long long>(scaled.mem.llc.size)) + " B, 20-way");
  row("line", "64 B", "64 B");
  row("tick / slice", "10 ms / 30 ms", "10 ms / 30 ms");
  std::cout << config << '\n';
  (void)paper;

  const auto& mem = scaled.mem;
  struct Probe {
    const char* label;
    Bytes ws;
    const char* expect;
  };
  const std::vector<Probe> probes = {
      {"L1/2 (fits L1)", mem.l1.size / 2, "L1"},
      {"2 x L1 (fits L2)", mem.l1.size * 2, "L2"},
      {"L2/2 + L1 (fits L2)", mem.l2.size / 2 + mem.l1.size, "L2"},
      {"4 x L2 (fits LLC)", mem.l2.size * 4, "LLC"},
      {"LLC/2 (fits LLC)", mem.llc.size / 2, "LLC"},
      {"2 x LLC (memory)", mem.llc.size * 2, "main memory"},
      {"4 x LLC (memory)", mem.llc.size * 4, "main memory"},
  };

  TextTable table({"working set", "bytes", "measured cycles/access", "level", "expected"});
  bool ok = true;
  for (const auto& p : probes) {
    const double lat = probe_latency(mem, scaled.freq_khz, p.ws);
    const char* level = classify(mem, lat);
    table.add_row({p.label, fmt_count(static_cast<long long>(p.ws)), fmt_double(lat, 1),
                   level, p.expect});
    ok &= std::string(level) == p.expect;
  }
  std::cout << table << '\n';

  ok &= bench::check("each working-set size lands on the expected cache level", ok);
  return bench::verdict(ok);
}
