// Fig 3 — "The processor is a good lever for punishing
// polluter/disruptive VMs."
//
// Each sensitive VM (gcc, omnetpp, soplex) runs in parallel with
// vdis1 (lbm) while lbm's CPU cap sweeps 10%..100%.  Expected shape:
// the victim's degradation grows roughly linearly with the
// disruptor's computing capacity (the paper's justification for using
// the CPU as the enforcement lever).
//
// The whole figure is one sim::SweepRunner batch: the three solo
// baselines (memoized — one request per victim) plus the 6 caps x 3
// victims grid fan out over the hardware lanes as share-nothing jobs,
// byte-identical to the serial loop at any lane count (the
// sweep-runner gate pins that).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  bench::header("Fig 3", "victim degradation vs disruptor CPU cap",
                "roughly linear growth with vdis1's computing capacity");

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(45);

  const std::vector<int> caps = {10, 20, 40, 60, 80, 100};
  const auto& victims = workloads::sensitive_apps();

  TextTable table([&] {
    std::vector<std::string> headers = {"vdis1 cap"};
    for (const auto& v : victims) headers.push_back(v + " deg %");
    return headers;
  }());

  // One batch: 3 solo baselines + the full cap x victim grid.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  std::vector<std::size_t> solo_job(victims.size());
  for (std::size_t vi = 0; vi < victims.size(); ++vi) {
    solo_job[vi] = sweep.add_solo(
        spec,
        [&spec, name = victims[vi]](std::uint64_t s) {
          return workloads::make_app(name, spec.machine.mem, s);
        },
        "app:" + victims[vi], victims[vi]);
  }
  std::vector<std::vector<std::size_t>> grid_job(caps.size(),
                                                 std::vector<std::size_t>(victims.size()));
  for (std::size_t ci = 0; ci < caps.size(); ++ci) {
    for (std::size_t vi = 0; vi < victims.size(); ++vi) {
      sim::VmPlan sen;
      sen.config.name = victims[vi];
      sen.workload = [&spec, name = victims[vi]](std::uint64_t s) {
        return workloads::make_app(name, spec.machine.mem, s);
      };
      sen.pinned_cores = {0};
      sim::VmPlan dis;
      dis.config.name = "lbm";
      dis.config.cpu_cap_percent = caps[ci];
      dis.config.loop_workload = true;
      dis.workload = [&spec](std::uint64_t s) {
        return workloads::make_app("lbm", spec.machine.mem, s);
      };
      dis.pinned_cores = {1};
      grid_job[ci][vi] = sweep.add(spec, {sen, dis},
                                   victims[vi] + "/cap" + std::to_string(caps[ci]));
    }
  }
  const auto outcomes = sweep.run();

  std::vector<double> solo_ipc;
  for (std::size_t vi = 0; vi < victims.size(); ++vi) {
    solo_ipc.push_back(outcomes[solo_job[vi]].vms[0].ipc);
  }

  std::vector<std::vector<double>> series(victims.size());
  for (std::size_t ci = 0; ci < caps.size(); ++ci) {
    std::vector<std::string> row = {std::to_string(caps[ci]) + " %"};
    for (std::size_t vi = 0; vi < victims.size(); ++vi) {
      const auto& outcome = outcomes[grid_job[ci][vi]];
      const double deg = sim::degradation_pct(solo_ipc[vi], outcome.vms[0].ipc);
      series[vi].push_back(deg);
      row.push_back(fmt_double(deg, 1));
    }
    table.add_row(row);
  }
  std::cout << table << '\n';

  bool ok = true;
  // Each victim's baseline is requested exactly once — the memo cache
  // answers none of the three (nothing extra simulated, nothing
  // double-requested).
  ok &= bench::check("sweep executed 3 solos + 18 scenarios (no duplicate solo runs)",
                     sweep.solo_requests() == 3 && sweep.solo_memo_hits() == 0);
  std::vector<double> x(caps.begin(), caps.end());
  for (std::size_t vi = 0; vi < victims.size(); ++vi) {
    const auto fit = linear_fit(x, series[vi]);
    std::cout << "  " << victims[vi] << ": slope " << fmt_double(fit.slope, 3)
              << " %/cap-point, r^2 " << fmt_double(fit.r2, 3) << '\n';
    ok &= bench::check(victims[vi] + ": degradation increases with cap (positive slope)",
                       fit.slope > 0.0);
    ok &= bench::check(victims[vi] + ": relationship is roughly linear (r^2 > 0.8)",
                       fit.r2 > 0.8);
    ok &= bench::check(victims[vi] + ": full-cap degradation exceeds 10-cap degradation by > 2x",
                       series[vi].back() > 2.0 * std::max(series[vi].front(), 0.5));
  }
  return bench::verdict(ok);
}
