// Fig 1 — "LLC contention could impact some applications."
//
// Each representative micro-VM v{1,2,3}rep runs against each
// disruptive micro-VM v{1,2,3}dis in three execution modes:
//   alternative — both pinned to core 0 (time sharing);
//   parallel    — rep on core 0, dis on core 1 (same socket / LLC);
//   combined    — one dis shares rep's core AND one runs on core 1.
// Reported: % IPC degradation of the representative vs its solo run.
//
// The whole figure is one sim::SweepRunner batch: the three solo
// baselines (memoized — requested once per representative) plus the
// 27 contention scenarios fan out over the hardware lanes as
// share-nothing jobs, byte-identical to the serial loop at any lane
// count (the sweep-runner gate pins that).  Fig 1 uses the default
// credit scheduler everywhere, which is exactly what add_solo
// baselines run under.
//
// Expected shape: C1 victims ~0 everywhere; v1dis (ILC-sized) harms
// nobody; C2/C3 victims are hurt badly by C2/C3 disruptors; parallel
// contention is far worse than alternative (paper: up to 70% vs 13%).
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;
using workloads::MicroClass;
using workloads::StreamVersion;

namespace {

sim::WorkloadFactory rep_factory(MicroClass cls, const hv::MachineConfig& mc,
                                 StreamVersion stream) {
  const auto mem = mc.mem;
  return [cls, mem, stream](std::uint64_t s) {
    return workloads::micro_representative(cls, mem, s, stream);
  };
}

sim::WorkloadFactory dis_factory(MicroClass cls, const hv::MachineConfig& mc,
                                 StreamVersion stream) {
  const auto mem = mc.mem;
  return [cls, mem, stream](std::uint64_t s) {
    return workloads::micro_disruptive(cls, mem, s, stream);
  };
}

enum class Mode { kAlternative, kParallel, kCombined };

std::vector<sim::VmPlan> contention_plans(const sim::WorkloadFactory& rep,
                                          const sim::WorkloadFactory& dis, Mode mode) {
  std::vector<sim::VmPlan> plans;
  sim::VmPlan r;
  r.config.name = "rep";
  r.workload = rep;
  r.pinned_cores = {0};
  plans.push_back(r);

  auto add_dis = [&](int core, const char* name) {
    sim::VmPlan d;
    d.config.name = name;
    d.config.loop_workload = true;
    d.workload = dis;
    d.pinned_cores = {core};
    plans.push_back(d);
  };
  switch (mode) {
    case Mode::kAlternative:
      add_dis(0, "dis-alt");
      break;
    case Mode::kParallel:
      add_dis(1, "dis-par");
      break;
    case Mode::kCombined:
      add_dis(0, "dis-alt");
      add_dis(1, "dis-par");
      break;
  }
  return plans;
}

}  // namespace

int main(int argc, char** argv) {
  // --stream v1|v2 selects the reference-stream format for every
  // workload in the figure.  v2 (geometric-skip) exercises the
  // ref-batch run_vcpu loop end-to-end; the figure's shape checks are
  // format-independent (v2 compiles the same access sequence), so the
  // same gates apply.  Default v1 output is unchanged.
  StreamVersion stream = StreamVersion::kV1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      if (std::strcmp(v, "v2") == 0) {
        stream = StreamVersion::kV2;
      } else if (std::strcmp(v, "v1") != 0) {
        std::cerr << "unknown stream version: " << v << " (expected v1 or v2)\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_fig1_contention [--stream v1|v2]\n";
      return 2;
    }
  }

  bench::header(
      "Fig 1", "LLC contention by VM class and execution mode",
      "C1 rows ~0; v1dis harmless; C2/C3 hurt by C2/C3 disruptors; parallel >> alternative");
  if (stream == StreamVersion::kV2) {
    std::cout << "  (stream: v2 geometric-skip — ref-batch vCPU engine end-to-end)\n\n";
  }

  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = bench::ticks(45);

  const MicroClass classes[] = {MicroClass::kC1, MicroClass::kC2, MicroClass::kC3};
  const char* mode_names[] = {"alternative", "parallel", "combined"};

  // One batch: 3 solos (memoized by representative) + 27 grid jobs.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  // The stream version is baked into the workload, so it must be part
  // of the memo identity: a ":v2" suffix keeps v2 baselines from ever
  // answering a v1 request (and vice versa).
  const std::string stream_tag = stream == StreamVersion::kV2 ? ":v2" : "";
  std::size_t solo_job[3];
  for (int ri = 0; ri < 3; ++ri) {
    solo_job[ri] = sweep.add_solo(spec, rep_factory(classes[ri], spec.machine, stream),
                                  "micro:c" + std::to_string(ri + 1) + "rep" + stream_tag, "rep");
  }
  std::size_t grid_job[3][3][3];  // [mode][rep][dis]
  for (int mi = 0; mi < 3; ++mi) {
    for (int ri = 0; ri < 3; ++ri) {
      const auto rep = rep_factory(classes[ri], spec.machine, stream);
      for (int di = 0; di < 3; ++di) {
        const auto dis = dis_factory(classes[di], spec.machine, stream);
        grid_job[mi][ri][di] =
            sweep.add(spec, contention_plans(rep, dis, static_cast<Mode>(mi)),
                      std::string(mode_names[mi]) + "/v" + std::to_string(ri + 1) + "rep-v" +
                          std::to_string(di + 1) + "dis");
      }
    }
  }
  const auto outcomes = sweep.run();

  double deg[3][3][3];
  for (int mi = 0; mi < 3; ++mi) {
    for (int ri = 0; ri < 3; ++ri) {
      const double solo_ipc = outcomes[solo_job[ri]].vms[0].ipc;
      for (int di = 0; di < 3; ++di) {
        deg[mi][ri][di] =
            sim::degradation_pct(solo_ipc, outcomes[grid_job[mi][ri][di]].vms[0].ipc);
      }
    }
  }

  for (int mi = 0; mi < 3; ++mi) {
    std::cout << "--- " << mode_names[mi] << " execution ---\n";
    TextTable table({"victim", "vs v1dis", "vs v2dis", "vs v3dis", "bar (worst)"});
    for (int ri = 0; ri < 3; ++ri) {
      const double worst =
          std::max({deg[mi][ri][0], deg[mi][ri][1], deg[mi][ri][2], 0.0});
      table.add_row({"v" + std::to_string(ri + 1) + "rep",
                     fmt_double(deg[mi][ri][0], 1) + " %", fmt_double(deg[mi][ri][1], 1) + " %",
                     fmt_double(deg[mi][ri][2], 1) + " %", ascii_bar(worst, 80.0, 30)});
    }
    std::cout << table << '\n';
  }

  bool ok = true;
  // The three representatives' baselines are requested exactly once
  // each, so the memo cache answers zero of the three (no duplicates
  // in this figure — the invariant is that nothing extra simulated).
  ok &= bench::check("sweep executed 3 solos + 27 scenarios (no duplicate solo runs)",
                     sweep.solo_requests() == 3 && sweep.solo_memo_hits() == 0);

  // C1 victims immune in every mode.
  double c1_worst = 0;
  for (int mi = 0; mi < 3; ++mi) {
    for (int di = 0; di < 3; ++di) c1_worst = std::max(c1_worst, deg[mi][0][di]);
  }
  ok &= bench::check("C1 victims degrade < 6% in every scenario", c1_worst < 6.0);

  // v1dis harmless to everyone.
  double v1dis_worst = 0;
  for (int mi = 0; mi < 3; ++mi) {
    for (int ri = 0; ri < 3; ++ri) v1dis_worst = std::max(v1dis_worst, deg[mi][ri][0]);
  }
  ok &= bench::check("v1dis (ILC-sized) causes < 6% everywhere", v1dis_worst < 6.0);

  // C2/C3 victims hurt in parallel by C2/C3 disruptors.
  double hurt_min = 1e9;
  for (int ri = 1; ri < 3; ++ri) {
    for (int di = 1; di < 3; ++di) hurt_min = std::min(hurt_min, deg[1][ri][di]);
  }
  ok &= bench::check("parallel C2/C3-vs-C2/C3 degradation all > 10%", hurt_min > 10.0);
  ok &= bench::check("worst parallel degradation > 40% (paper: up to ~70%)",
                     std::max({deg[1][1][1], deg[1][1][2], deg[1][2][2]}) > 40.0);

  // Parallel >> alternative for the C2 victim vs C3 disruptor.
  ok &= bench::check("parallel >> alternative (v2rep vs v3dis)",
                     deg[1][1][2] > 1.8 * std::max(deg[0][1][2], 1.0));

  return bench::verdict(ok);
}
