// HPC-cloud booking scenario (paper §5, Discussion).
//
// A provider publishes an EC2-like instance-type menu where each type
// carries a pollution permit proportional to its memory (r3 >> m3 >>
// c3).  Four tenants book instances and run mixed workloads on one
// 4-core host under KS4Xen; at the end of the "day" the provider
// prints the billing report: booked permit, measured pollution,
// attributed misses and punishments per tenant.
//
// The point demonstrated: the memory-hungry tenant who paid for an r3
// permit streams freely; the c3 tenant running the same workload on a
// cheap permit is throttled — pollution is now a first-class billable
// resource, like vCPUs or GiB.
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "kyoto/ks4xen.hpp"
#include "kyoto/permits.hpp"
#include "kyoto/pricing.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  const hv::MachineConfig machine = hv::scaled_machine();
  const auto mem = machine.mem;

  // Permit rate: misses/ms granted per MiB of instance memory.  The
  // base memory is sized to the scaled machine (a "medium" holds a
  // typical working set).
  const auto catalog = core::PermitCatalog::aws_like(/*cap_per_mib=*/800.0,
                                                     /*base_memory=*/mem.llc.size * 4);

  std::cout << "Instance-type menu (permit proportional to memory, §5):\n\n";
  TextTable menu({"type", "vCPUs", "memory (KiB)", "llc_cap permit (miss/ms)"});
  for (const auto& t : catalog.types()) {
    menu.add_row({t.name, std::to_string(t.vcpus),
                  fmt_count(static_cast<long long>(t.memory / 1024)),
                  fmt_double(t.llc_cap, 1)});
  }
  std::cout << menu << '\n';

  hv::Hypervisor hv(machine, std::make_unique<core::Ks4Xen>());

  struct Booking {
    const char* tenant;
    const char* type;
    const char* app;
    int core;
  };
  // alice pays for a memory-optimized instance and streams (lbm);
  // bob books the cheap compute type but runs the SAME streaming
  // workload; carol and dave run cache-friendly codes.
  const Booking bookings[] = {
      {"alice (r3.medium, lbm)", "r3.medium", "lbm", 0},
      {"bob (c3.medium, lbm)", "c3.medium", "lbm", 1},
      {"carol (m3.medium, gcc)", "m3.medium", "gcc", 2},
      {"dave (c3.medium, povray)", "c3.medium", "povray", 3},
  };
  for (const auto& b : bookings) {
    hv::VmConfig config = catalog.vm_config(b.type, b.tenant);
    config.loop_workload = true;
    config.memory = 0;  // auto-size to the workload (menu memory is the permit basis)
    hv.create_vm(config, workloads::make_app(b.app, mem, 7), b.core);
  }

  hv.run_slices(60);  // 1.8 virtual seconds of operation

  auto& ks = static_cast<core::Ks4Xen&>(hv.scheduler());
  const auto report = core::billing_report(hv, ks.kyoto());
  std::cout << "Billing report after " << hv.now() * kTickMs << " virtual ms:\n\n"
            << core::format_billing_report(report) << '\n';

  const auto& alice = report[0];
  const auto& bob = report[1];
  std::cout << "alice streamed within her r3 permit ("
            << fmt_count(alice.punished_ticks) << " punished ticks); bob ran the same "
            << "workload on a c3 permit and was throttled ("
            << fmt_count(bob.punished_ticks) << " punished ticks).\n"
            << "Pollution is billed like any other resource: book more, pollute more.\n\n";

  // End-of-window invoices: flat permit fee + metered overage.
  core::PriceSheet prices;
  prices.permit_fee_per_unit_second = 0.002;
  prices.overage_per_million_misses = 5.0;
  const double window_ms = static_cast<double>(hv.now() * kTickMs);
  const auto invoices = core::make_invoices(report, prices, window_ms);
  std::cout << "Invoices for the " << fmt_double(window_ms / 1000.0, 1)
            << "-virtual-second window:\n\n"
            << core::format_invoices(invoices, prices) << '\n';
  return 0;
}
