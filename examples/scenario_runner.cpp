// Scenario-file runner: the simulator as a standalone tool.
//
//   ./scenario_runner sweep-a.kyoto sweep-b.kyoto ...   # one job per file
//   ./scenario_runner --lanes 4 fig6-*.kyoto            # sharded execution
//   ./scenario_runner --workers 4 fig6-*.kyoto          # process farm
//   ./scenario_runner --workers 4 --checkpoint sweep.ckpt fig6-*.kyoto
//
// Every scenario file is an independent job.  A multi-file invocation
// runs as a sharded sweep (sim::SweepRunner, one private hypervisor
// per lane) or — with --workers — as a process farm (sim::FarmRunner,
// one `sweep_worker` process per worker, with retries and optional
// checkpoint/resume).  Reports print in argument order and are
// byte-identical under either executor at any lane/worker count.
//
// Without an argument it writes a demonstration scenario next to the
// binary, prints it, and runs it — so the example is self-contained.
// The scenario language covers the machine (topology, scale, optional
// prefetcher/bus, LLC policy), the scheduler (all six variants, the
// three monitors, both punish modes) and arbitrarily many VMs.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/farm_runner.hpp"
#include "sim/scenario_file.hpp"
#include "sim/sweep_runner.hpp"

using namespace kyoto;

namespace {

constexpr const char* kDemoScenario = R"(# Demonstration: a noisy streamer vs two paying tenants, KS4Xen,
# demote-mode punishment (the paper's "priority OVER" semantics).
[machine]
topology = 1x4
scale = 64
llc_replacement = LRU

[scheduler]
kind = ks4xen
monitor = mcsim        # clean attribution via replay simulation
punish = block         # Fig 5 semantics (demote = work-conserving variant)

[vm web-tier]
app = gcc
cores = 0
llc_cap = 25
loop = true

[vm analytics]
app = omnetpp
cores = 2
llc_cap = 60
loop = true

[vm batch-noisy]
app = lbm
cores = 1
llc_cap = 25           # same permit as web-tier: it will be punished
loop = true

[run]
warmup_ticks = 6
measure_ticks = 90
)";

}  // namespace

int main(int argc, char** argv) {
  int lanes = ThreadPool::hardware_lanes();
  int workers = 0;  // 0 = in-process SweepRunner; > 0 = process farm
  std::string checkpoint;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_value = [&](int* out) {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      try {
        *out = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << arg << " needs an integer, got '" << argv[i] << "'\n";
        std::exit(2);
      }
    };
    if (arg == "--lanes") {
      int_value(&lanes);
    } else if (arg == "--workers") {
      int_value(&workers);
    } else if (arg == "--checkpoint") {
      if (i + 1 >= argc) {
        std::cerr << "--checkpoint needs a file path\n";
        return 2;
      }
      checkpoint = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: scenario_runner [--lanes N | --workers N] [--checkpoint FILE]\n"
             "                       [scenario.kyoto ...]\n"
             "\n"
             "  --lanes N       execution lanes for the in-process sharded sweep\n"
             "                  (default: host CPU count; values < 1 clamp to 1 =\n"
             "                  plain serial loop).\n"
             "  --workers N     run the files as a process farm instead: N\n"
             "                  `sweep_worker` processes pull jobs over the wire\n"
             "                  protocol, with dead-worker respawn and bounded\n"
             "                  retries.  Finds the worker via $KYOTO_SWEEP_WORKER\n"
             "                  or next to this binary; degrades to in-process\n"
             "                  execution (same results) when neither exists.\n"
             "  --checkpoint F  with --workers: periodically checkpoint completed\n"
             "                  outcomes to F; re-running the same invocation after\n"
             "                  an interruption resumes instead of re-simulating.\n"
             "\n"
             "Each scenario file runs on its own private hypervisor, so reports\n"
             "are byte-identical at any lane or worker count and always print in\n"
             "argument order.\n"
             "\n"
             "Scenario file format: see the demo written when run with no\n"
             "arguments, and the scenario-file section of README.md.\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    const std::string path = "demo_scenario.kyoto";
    std::ofstream out(path);
    out << kDemoScenario;
    std::cout << "No scenario given; wrote and running the demo scenario '" << path
              << "':\n\n"
              << kDemoScenario << '\n';
    paths.push_back(path);
  }

  try {
    // Parse everything first (strict errors before any simulation),
    // then run the files as one batch and report in argument order.
    std::vector<sim::Scenario> scenarios;
    scenarios.reserve(paths.size());
    std::vector<sim::RunOutcome> outcomes;
    if (workers > 0) {
      sim::FarmOptions options;
      options.workers = workers;
      options.worker_path = sim::FarmRunner::default_worker_path(argv[0]);
      options.checkpoint_path = checkpoint;
      sim::FarmRunner farm(options);
      for (const std::string& path : paths) {
        // The farm ships the raw file text: the worker re-parses it,
        // deterministically reproducing this process's job.
        std::ifstream in(path);
        if (!in.good()) throw std::runtime_error("cannot open scenario file: " + path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        scenarios.push_back(sim::parse_scenario(text));
        farm.add(std::move(text), path);
      }
      std::cout << "Running " << paths.size() << " scenario(s) over " << workers
                << " worker process(es)...\n";
      outcomes = farm.run();
      if (farm.jobs_restored() > 0) {
        std::cout << farm.jobs_restored() << " job(s) restored from checkpoint '"
                  << checkpoint << "', " << farm.jobs_executed() << " simulated\n";
      }
      if (farm.ran_in_process()) {
        std::cout << "note: ran in-process (" << farm.degrade_reason() << ")\n";
      }
      std::cout << '\n';
    } else {
      if (!checkpoint.empty()) {
        std::cerr << "--checkpoint requires --workers\n";
        return 2;
      }
      sim::SweepRunner sweep(lanes);
      for (const std::string& path : paths) {
        scenarios.push_back(sim::load_scenario_file(path));
        sweep.add(scenarios.back().spec, scenarios.back().plans, path);
      }
      if (paths.size() > 1) {
        std::cout << "Running " << paths.size() << " scenario(s) over " << sweep.lanes()
                  << " lane(s)...\n\n";
      }
      outcomes = sweep.run();
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      std::cout << paths[i] << ": " << scenarios[i].plans.size() << " VM(s), "
                << scenarios[i].spec.warmup_ticks << "+"
                << scenarios[i].spec.measure_ticks << " ticks\n\n"
                << sim::scenario_report(scenarios[i], outcomes[i]) << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
