// Scenario-file runner: the simulator as a standalone tool.
//
//   ./scenario_runner my-experiment.kyoto
//
// Without an argument it writes a demonstration scenario next to the
// binary, prints it, and runs it — so the example is self-contained.
// The scenario language covers the machine (topology, scale, optional
// prefetcher/bus, LLC policy), the scheduler (all six variants, the
// three monitors, both punish modes) and arbitrarily many VMs.
#include <fstream>
#include <iostream>
#include <string>

#include "sim/scenario_file.hpp"

using namespace kyoto;

namespace {

constexpr const char* kDemoScenario = R"(# Demonstration: a noisy streamer vs two paying tenants, KS4Xen,
# demote-mode punishment (the paper's "priority OVER" semantics).
[machine]
topology = 1x4
scale = 64
llc_replacement = LRU

[scheduler]
kind = ks4xen
monitor = mcsim        # clean attribution via replay simulation
punish = block         # Fig 5 semantics (demote = work-conserving variant)

[vm web-tier]
app = gcc
cores = 0
llc_cap = 25
loop = true

[vm analytics]
app = omnetpp
cores = 2
llc_cap = 60
loop = true

[vm batch-noisy]
app = lbm
cores = 1
llc_cap = 25           # same permit as web-tier: it will be punished
loop = true

[run]
warmup_ticks = 6
measure_ticks = 90
)";

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "demo_scenario.kyoto";
    std::ofstream out(path);
    out << kDemoScenario;
    std::cout << "No scenario given; wrote and running the demo scenario '" << path
              << "':\n\n"
              << kDemoScenario << '\n';
  }

  try {
    const sim::Scenario scenario = sim::load_scenario_file(path);
    std::cout << "Running " << scenario.plans.size() << " VM(s) for "
              << scenario.spec.warmup_ticks << "+" << scenario.spec.measure_ticks
              << " ticks...\n\n";
    std::cout << sim::run_scenario_report(scenario) << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
