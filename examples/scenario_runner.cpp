// Scenario-file runner: the simulator as a standalone tool.
//
//   ./scenario_runner sweep-a.kyoto sweep-b.kyoto ...   # one job per file
//   ./scenario_runner --lanes 4 fig6-*.kyoto            # sharded execution
//
// Every scenario file is an independent job, so a multi-file
// invocation runs as a sharded sweep (sim::SweepRunner, one private
// hypervisor per lane) and prints the reports in argument order —
// results are byte-identical at any lane count.  --lanes defaults to
// the host CPU count.
//
// Without an argument it writes a demonstration scenario next to the
// binary, prints it, and runs it — so the example is self-contained.
// The scenario language covers the machine (topology, scale, optional
// prefetcher/bus, LLC policy), the scheduler (all six variants, the
// three monitors, both punish modes) and arbitrarily many VMs.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/scenario_file.hpp"
#include "sim/sweep_runner.hpp"

using namespace kyoto;

namespace {

constexpr const char* kDemoScenario = R"(# Demonstration: a noisy streamer vs two paying tenants, KS4Xen,
# demote-mode punishment (the paper's "priority OVER" semantics).
[machine]
topology = 1x4
scale = 64
llc_replacement = LRU

[scheduler]
kind = ks4xen
monitor = mcsim        # clean attribution via replay simulation
punish = block         # Fig 5 semantics (demote = work-conserving variant)

[vm web-tier]
app = gcc
cores = 0
llc_cap = 25
loop = true

[vm analytics]
app = omnetpp
cores = 2
llc_cap = 60
loop = true

[vm batch-noisy]
app = lbm
cores = 1
llc_cap = 25           # same permit as web-tier: it will be punished
loop = true

[run]
warmup_ticks = 6
measure_ticks = 90
)";

}  // namespace

int main(int argc, char** argv) {
  int lanes = ThreadPool::hardware_lanes();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lanes") {
      if (i + 1 >= argc) {
        std::cerr << "--lanes needs a value\n";
        return 2;
      }
      try {
        lanes = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "--lanes needs an integer, got '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: scenario_runner [--lanes N] [scenario.kyoto ...]\n"
                   "\n"
                   "  --lanes N  execution lanes for the sharded sweep (default: host\n"
                   "             CPU count; values < 1 clamp to 1 = plain serial loop).\n"
                   "             Each scenario file runs on its own private hypervisor,\n"
                   "             so reports are byte-identical at any lane count and\n"
                   "             always print in argument order.\n"
                   "\n"
                   "Scenario file format: see the demo written when run with no\n"
                   "arguments, and the scenario-file section of README.md.\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    const std::string path = "demo_scenario.kyoto";
    std::ofstream out(path);
    out << kDemoScenario;
    std::cout << "No scenario given; wrote and running the demo scenario '" << path
              << "':\n\n"
              << kDemoScenario << '\n';
    paths.push_back(path);
  }

  try {
    // Parse everything first (strict errors before any simulation),
    // then run the files as one sharded sweep and report in argument
    // order.
    std::vector<sim::Scenario> scenarios;
    scenarios.reserve(paths.size());
    sim::SweepRunner sweep(lanes);
    for (const std::string& path : paths) {
      scenarios.push_back(sim::load_scenario_file(path));
      sweep.add(scenarios.back().spec, scenarios.back().plans, path);
    }
    if (paths.size() > 1) {
      std::cout << "Running " << paths.size() << " scenario(s) over " << sweep.lanes()
                << " lane(s)...\n\n";
    }
    const auto outcomes = sweep.run();
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      std::cout << paths[i] << ": " << scenarios[i].plans.size() << " VM(s), "
                << scenarios[i].spec.warmup_ticks << "+"
                << scenarios[i].spec.measure_ticks << " ticks\n\n"
                << sim::scenario_report(scenarios[i], outcomes[i]) << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

