// Scenario-file runner: the simulator as a standalone tool.
//
//   ./scenario_runner sweep-a.kyoto sweep-b.kyoto ...   # one job per file
//   ./scenario_runner --lanes 4 fig6-*.kyoto            # sharded execution
//   ./scenario_runner --workers 4 fig6-*.kyoto          # process farm
//   ./scenario_runner --workers 4 --checkpoint sweep.ckpt fig6-*.kyoto
//   ./scenario_runner --hosts 3 fig6-*.kyoto            # simulated multi-host farm
//   ./scenario_runner --hosts 3 --split-jobs DIR fig6-*.kyoto   # write shard files
//   ./scenario_runner --merge-results DIR fig6-*.kyoto          # merge them back
//
// Every scenario file is an independent job.  A multi-file invocation
// runs as a sharded sweep (sim::SweepRunner, one private hypervisor
// per lane) or — with --workers — as a process farm (sim::FarmRunner,
// one `sweep_worker` process per worker, with retries and optional
// checkpoint/resume).  Reports print in argument order and are
// byte-identical under either executor at any lane/worker count.
//
// Without an argument it writes a demonstration scenario next to the
// binary, prints it, and runs it — so the example is self-contained.
// The scenario language covers the machine (topology, scale, optional
// prefetcher/bus, LLC policy), the scheduler (all six variants, the
// three monitors, both punish modes) and arbitrarily many VMs.
#include <stdlib.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/farm_runner.hpp"
#include "sim/host_farm.hpp"
#include "sim/scenario_file.hpp"
#include "sim/shard_splitter.hpp"
#include "sim/sweep_runner.hpp"

using namespace kyoto;

namespace {

constexpr const char* kDemoScenario = R"(# Demonstration: a noisy streamer vs two paying tenants, KS4Xen,
# demote-mode punishment (the paper's "priority OVER" semantics).
[machine]
topology = 1x4
scale = 64
llc_replacement = LRU

[scheduler]
kind = ks4xen
monitor = mcsim        # clean attribution via replay simulation
punish = block         # Fig 5 semantics (demote = work-conserving variant)

[vm web-tier]
app = gcc
cores = 0
llc_cap = 25
loop = true

[vm analytics]
app = omnetpp
cores = 2
llc_cap = 60
loop = true

[vm batch-noisy]
app = lbm
cores = 1
llc_cap = 25           # same permit as web-tier: it will be punished
loop = true

[run]
warmup_ticks = 6
measure_ticks = 90
)";

constexpr const char* kChurnDemoScenario = R"(# Demonstration: tenant churn — a static web tier shares the machine
# with a Poisson stream of short-lived batch tenants (arrivals and
# departures mid-run, admission-controlled).  Every arriving tenant
# books the same 25 miss/ms permit, so polluting arrivals are punished
# within a tick or two of admission.
[machine]
topology = 1x4
scale = 64

[scheduler]
kind = ks4xen
monitor = direct
punish = block

[vm web-tier]
app = gcc
cores = 0
llc_cap = 40
loop = true

[churn]
trace = poisson        # or diurnal / bursty / file:events.trace
rate = 0.2             # arrivals per tick (Bernoulli probability)
mean_lifetime = 15     # geometric tenant lifetime, in ticks
horizon = 96
seed = 7
apps = lbm, mcf        # arrival i runs apps[i % n]
llc_cap = 25
loop = true
defer_queue = 4        # arrivals beyond free cores wait here

[run]
warmup_ticks = 6
measure_ticks = 90
)";

}  // namespace

int main(int argc, char** argv) {
  int lanes = ThreadPool::hardware_lanes();
  int workers = 0;  // 0 = in-process SweepRunner; > 0 = process farm
  int hosts = 0;    // > 0 = simulated multi-host farm (sim::HostFarm)
  std::string checkpoint;
  std::string split_dir;
  std::string merge_dir;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_value = [&](int* out) {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      try {
        *out = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << arg << " needs an integer, got '" << argv[i] << "'\n";
        std::exit(2);
      }
    };
    auto string_value = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      *out = argv[++i];
    };
    if (arg == "--lanes") {
      int_value(&lanes);
    } else if (arg == "--workers") {
      int_value(&workers);
    } else if (arg == "--hosts") {
      int_value(&hosts);
    } else if (arg == "--split-jobs") {
      string_value(&split_dir);
    } else if (arg == "--merge-results") {
      string_value(&merge_dir);
    } else if (arg == "--checkpoint") {
      string_value(&checkpoint);
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: scenario_runner [--lanes N | --workers N | --hosts N]\n"
             "                       [--checkpoint FILE] [--split-jobs DIR]\n"
             "                       [--merge-results DIR] [scenario.kyoto ...]\n"
             "\n"
             "  --lanes N       execution lanes for the in-process sharded sweep\n"
             "                  (default: host CPU count; values < 1 clamp to 1 =\n"
             "                  plain serial loop).\n"
             "  --workers N     run the files as a process farm instead: N\n"
             "                  `sweep_worker` processes pull jobs over the wire\n"
             "                  protocol, with dead-worker respawn and bounded\n"
             "                  retries.  Finds the worker via $KYOTO_SWEEP_WORKER\n"
             "                  or next to this binary; degrades to in-process\n"
             "                  execution (same results) when neither exists.\n"
             "  --hosts N       run the files as a simulated multi-host farm: the\n"
             "                  batch is split into shards, each executed by a\n"
             "                  `sweep_worker --jobs F --results G` process posing\n"
             "                  as one of N hosts, with per-host retry budgets,\n"
             "                  quarantine/backoff and shard redistribution.\n"
             "                  Prints the farm report after the run.\n"
             "  --split-jobs DIR\n"
             "                  with --hosts N: do not run anything; write one job\n"
             "                  file per shard plus manifest.kyfm into DIR and\n"
             "                  print, per shard, the worker command its host\n"
             "                  should run.  Ship each job file to its host, run\n"
             "                  the printed command, ship the result files back.\n"
             "  --merge-results DIR\n"
             "                  validate every shard result file in DIR against\n"
             "                  its manifest and, only if ALL of them check out,\n"
             "                  print the merged reports (submission order).  A\n"
             "                  missing/corrupt/foreign/incomplete shard is\n"
             "                  diagnosed per host and exits 1.  The same\n"
             "                  scenario files must be passed again (the manifest\n"
             "                  fingerprint binds the exact batch).\n"
             "  --checkpoint F  with --workers or --hosts: periodically checkpoint\n"
             "                  completed outcomes to F; re-running the same\n"
             "                  invocation after an interruption resumes instead\n"
             "                  of re-simulating.  With --hosts the checkpoint\n"
             "                  also records shard owners, so a resume first\n"
             "                  re-collects result files finished while the\n"
             "                  coordinator was down.\n"
             "\n"
             "Each scenario file runs on its own private hypervisor, so reports\n"
             "are byte-identical at any lane or worker count and always print in\n"
             "argument order.\n"
             "\n"
             "Scenario file format: see the demo written when run with no\n"
             "arguments, and the scenario-file section of README.md.\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    const std::string path = "demo_scenario.kyoto";
    std::ofstream(path) << kDemoScenario;
    const std::string churn_path = "demo_churn_scenario.kyoto";
    std::ofstream(churn_path) << kChurnDemoScenario;
    std::cout << "No scenario given; wrote and running the demo scenarios '" << path
              << "' and '" << churn_path << "':\n\n"
              << kDemoScenario << '\n'
              << kChurnDemoScenario << '\n';
    paths.push_back(path);
    paths.push_back(churn_path);
  }

  try {
    // Parse everything first (strict errors before any simulation),
    // then run the files as one batch and report in argument order.
    std::vector<sim::Scenario> scenarios;
    scenarios.reserve(paths.size());
    std::vector<sim::RunOutcome> outcomes;

    auto read_text = [](const std::string& path) {
      std::ifstream in(path);
      if (!in.good()) throw std::runtime_error("cannot open scenario file: " + path);
      return std::string((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    };
    // The multi-host modes all speak FarmJobs: id = argument position,
    // label = path, payload = the raw file text (the worker re-parses).
    auto build_jobs = [&]() {
      std::vector<sim::farm::FarmJob> jobs;
      jobs.reserve(paths.size());
      for (std::size_t i = 0; i < paths.size(); ++i) {
        std::string text = read_text(paths[i]);
        scenarios.push_back(sim::parse_scenario(text));
        sim::farm::FarmJob job;
        job.id = i;
        job.label = paths[i];
        job.scenario_text = std::move(text);
        jobs.push_back(std::move(job));
      }
      return jobs;
    };

    if (!split_dir.empty()) {
      if (hosts < 1) {
        std::cerr << "--split-jobs needs --hosts N (N >= 1)\n";
        return 2;
      }
      const std::vector<sim::farm::FarmJob> jobs = build_jobs();
      std::vector<std::string> host_ids;
      for (int h = 0; h < hosts; ++h) host_ids.push_back("host" + std::to_string(h));
      const sim::farm::ShardManifest manifest = sim::split_batch(jobs, host_ids);
      sim::write_shard_files(split_dir, manifest, jobs);
      std::cout << "Wrote " << manifest.shards.size() << " shard(s) + manifest.kyfm to "
                << split_dir << "\n\n";
      for (const sim::farm::HostShard& shard : manifest.shards) {
        std::cout << shard.host_id << ":  sweep_worker --jobs " << split_dir << '/'
                  << shard.job_file << " --results " << split_dir << '/' << shard.result_file
                  << "   # " << shard.job_ids.size() << " job(s)\n";
      }
      std::cout << "\nShip each job file to its host, run the printed command there, ship\n"
                   "the result files back into "
                << split_dir << ", then:\n  scenario_runner --merge-results " << split_dir
                << " <the same scenario files>\n";
      return 0;
    }

    if (!merge_dir.empty()) {
      const std::vector<sim::farm::FarmJob> jobs = build_jobs();
      sim::farm::ShardManifest manifest;
      try {
        manifest = sim::farm::read_manifest_file(sim::manifest_path(merge_dir));
      } catch (const sim::farm::CodecError& e) {
        std::cerr << "error: cannot parse manifest " << sim::manifest_path(merge_dir) << ": "
                  << e.what() << '\n';
        return 1;
      }
      if (manifest.fingerprint != sim::farm::batch_fingerprint(jobs) ||
          manifest.total_jobs != jobs.size()) {
        std::cerr << "error: these scenario files are not the batch '"
                  << sim::manifest_path(merge_dir) << "' was split from\n";
        return 1;
      }
      const sim::MergeReport merged = sim::merge_results(manifest, merge_dir);
      std::cout << merged.summary() << '\n';
      if (!merged.complete) return 1;
      outcomes = merged.outcomes;
    } else if (hosts > 0) {
      const std::string worker = sim::FarmRunner::default_worker_path(argv[0]);
      sim::HostFarmOptions options;
      if (worker.empty()) {
        std::cout << "note: no sweep_worker found ($KYOTO_SWEEP_WORKER or next to this "
                     "binary); running in-process\n";
      } else {
        for (int h = 0; h < hosts; ++h) {
          options.hosts.push_back(
              sim::HostSpec{"host" + std::to_string(h), worker, {}});
        }
      }
      char work_template[] = "/tmp/scenario_runner_farm.XXXXXX";
      const char* work = ::mkdtemp(work_template);
      if (work == nullptr) {
        std::cerr << "error: cannot create farm work dir: " << std::strerror(errno) << '\n';
        return 1;
      }
      options.work_dir = work;
      options.checkpoint_path = checkpoint;
      sim::HostFarm farm(options);
      const std::vector<sim::farm::FarmJob> jobs = build_jobs();
      for (const sim::farm::FarmJob& job : jobs) farm.add(job.scenario_text, job.label);
      std::cout << "Running " << paths.size() << " scenario(s) across " << hosts
                << " simulated host(s) (shards under " << options.work_dir << ")...\n";
      outcomes = farm.run();
      std::cout << '\n' << farm.report() << '\n';
    } else if (workers > 0) {
      sim::FarmOptions options;
      options.workers = workers;
      options.worker_path = sim::FarmRunner::default_worker_path(argv[0]);
      options.checkpoint_path = checkpoint;
      sim::FarmRunner farm(options);
      for (const std::string& path : paths) {
        // The farm ships the raw file text: the worker re-parses it,
        // deterministically reproducing this process's job.
        std::ifstream in(path);
        if (!in.good()) throw std::runtime_error("cannot open scenario file: " + path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        scenarios.push_back(sim::parse_scenario(text));
        farm.add(std::move(text), path);
      }
      std::cout << "Running " << paths.size() << " scenario(s) over " << workers
                << " worker process(es)...\n";
      outcomes = farm.run();
      if (farm.jobs_restored() > 0) {
        std::cout << farm.jobs_restored() << " job(s) restored from checkpoint '"
                  << checkpoint << "', " << farm.jobs_executed() << " simulated\n";
      }
      if (farm.ran_in_process()) {
        std::cout << "note: ran in-process (" << farm.degrade_reason() << ")\n";
      }
      std::cout << '\n';
    } else {
      if (!checkpoint.empty()) {
        std::cerr << "--checkpoint requires --workers\n";
        return 2;
      }
      sim::SweepRunner sweep(lanes);
      for (const std::string& path : paths) {
        scenarios.push_back(sim::load_scenario_file(path));
        sweep.add(scenarios.back().spec, scenarios.back().plans, path);
      }
      if (paths.size() > 1) {
        std::cout << "Running " << paths.size() << " scenario(s) over " << sweep.lanes()
                  << " lane(s)...\n\n";
      }
      outcomes = sweep.run();
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      std::cout << paths[i] << ": " << scenarios[i].plans.size() << " VM(s)"
                << (scenarios[i].spec.churn != nullptr ? " + churn" : "") << ", "
                << scenarios[i].spec.warmup_ticks << "+"
                << scenarios[i].spec.measure_ticks << " ticks\n\n"
                << sim::scenario_report(scenarios[i], outcomes[i]) << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
