// sweep_worker: the farm's worker process.
//
// Two transports, one protocol (sim/farm_codec.hpp, wire format v1):
//
//   sweep_worker --stdio
//       Pull loop for sim::FarmRunner.  Job frames arrive on stdin,
//       one outcome (or error) frame is written to stdout per job,
//       EOF on stdin ends the worker.  The worker holds no queue
//       state: the coordinator owns ordering, retries and timeouts.
//
//   sweep_worker --jobs FILE --results FILE
//       File-pair transport for hosts that only share files: reads a
//       job file, executes every job, writes the result file.  In
//       this mode the result file IS the reply stream: a
//       deterministic job failure becomes an error frame *inside* the
//       result file (exit 0), so a multi-host coordinator
//       (sim/host_farm.hpp) can tell "this job is poisoned" from
//       "this host is broken".
//
// The --fault-* flags inject failures for the farm's fault-tolerance
// tests (tests/sim/farm_fault_test.cpp, farm_host_test.cpp);
// production sweeps never pass them.  "after N" counts jobs handled
// by THIS process (a respawned worker starts over), "on-label L"
// poisons a specific job on every attempt, and --fault-corrupt-results
// damages the finished result file (truncate | bitflip) to simulate a
// host with bad disks or a lossy transfer.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/farm_codec.hpp"
#include "sim/scenario_file.hpp"

namespace {

namespace farm = kyoto::sim::farm;

struct FaultPlan {
  int kill_after = 0;     // SIGKILL self on the Nth handled job
  int garbage_after = 0;  // reply to the Nth handled job with garbage
  int hang_after = 0;     // hang on the Nth handled job
  std::string kill_on_label;
  std::string hang_on_label;
  std::string error_on_label;
  std::string corrupt_results;  // "" | "truncate" | "bitflip" (file mode)
};

bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

[[noreturn]] void hang_forever() {
  for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
}

/// Runs one job and frames the reply.  A throwing scenario (parse
/// error, simulator KYOTO_CHECK) is a *deterministic* failure: it
/// becomes an error frame so the coordinator fails the batch instead
/// of burning retries on it.
std::string execute(const farm::FarmJob& job) {
  try {
    const kyoto::sim::Scenario scenario = kyoto::sim::parse_scenario(job.scenario_text);
    const kyoto::sim::RunOutcome outcome =
        kyoto::sim::run_scenario(scenario.spec, scenario.plans);
    return farm::encode_frame(farm::FrameType::kOutcome,
                              farm::encode_outcome(job.id, outcome));
  } catch (const std::exception& e) {
    return farm::encode_frame(farm::FrameType::kError, farm::encode_error(job.id, e.what()));
  }
}

/// Applies the fault plan before replying to job number `handled`
/// (1-based, per process).  Returns the bytes to write instead of the
/// real reply, or nullopt to answer normally.  May not return at all.
std::optional<std::string> inject(const FaultPlan& fault, int handled,
                                  const farm::FarmJob& job) {
  if ((fault.kill_after > 0 && handled == fault.kill_after) ||
      (!fault.kill_on_label.empty() && job.label == fault.kill_on_label)) {
    ::raise(SIGKILL);
  }
  if ((fault.hang_after > 0 && handled == fault.hang_after) ||
      (!fault.hang_on_label.empty() && job.label == fault.hang_on_label)) {
    hang_forever();
  }
  if (fault.garbage_after > 0 && handled == fault.garbage_after) {
    return std::string("this is definitely not a KYFM frame\n");
  }
  if (!fault.error_on_label.empty() && job.label == fault.error_on_label) {
    return farm::encode_frame(farm::FrameType::kError,
                              farm::encode_error(job.id, "injected deterministic failure"));
  }
  return std::nullopt;
}

int run_stdio(const FaultPlan& fault) {
  farm::FrameReader reader;
  char buf[1 << 16];
  int handled = 0;
  for (;;) {
    const ssize_t n = ::read(0, buf, sizeof buf);
    if (n == 0) return 0;  // coordinator closed our stdin: done
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "sweep_worker: stdin read failed: %s\n", std::strerror(errno));
      return 2;
    }
    try {
      reader.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = reader.next()) {
        if (frame->type != farm::FrameType::kJob) {
          std::fprintf(stderr, "sweep_worker: unexpected frame type %u on stdin\n",
                       static_cast<unsigned>(frame->type));
          return 2;
        }
        const farm::FarmJob job = farm::decode_job(frame->payload);
        ++handled;
        std::string reply;
        if (auto injected = inject(fault, handled, job)) {
          reply = std::move(*injected);
        } else {
          reply = execute(job);
        }
        if (!write_all(1, reply)) {
          std::fprintf(stderr, "sweep_worker: stdout write failed: %s\n", std::strerror(errno));
          return 2;
        }
      }
    } catch (const farm::CodecError& e) {
      std::fprintf(stderr, "sweep_worker: protocol error: %s\n", e.what());
      return 2;
    }
  }
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
}

int run_files(const std::string& jobs_path, const std::string& results_path,
              const FaultPlan& fault) {
  std::vector<farm::FarmJob> jobs;
  try {
    jobs = farm::read_job_file(jobs_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 1;
  }
  // The result file is the reply stream: outcome frames, or an error
  // frame for a deterministic job failure (then stop — the rest of
  // the shard is moot), or injected garbage.  Exit 0 either way; a
  // non-zero exit means the *worker* broke, not a job.
  std::string bytes;
  int handled = 0;
  for (const farm::FarmJob& job : jobs) {
    ++handled;
    if (auto injected = inject(fault, handled, job)) {
      // kill/hang never return from inject(); what comes back here is
      // garbage or an error frame — both end the shard's stream.
      bytes += *injected;
      break;
    }
    const std::string reply = execute(job);
    bytes += reply;
    // execute() frames deterministic failures as error frames; detect
    // by re-reading our own frame type (byte 6..7, little-endian).
    if (reply.size() >= 8 &&
        static_cast<unsigned char>(reply[6]) == static_cast<unsigned>(farm::FrameType::kError)) {
      break;
    }
  }
  if (fault.corrupt_results == "truncate" && bytes.size() > 7) {
    bytes.resize(bytes.size() - 7);  // cut into the trailing checksum
  } else if (fault.corrupt_results == "bitflip" && !bytes.empty()) {
    bytes[bytes.size() / 2] ^= 0x20;  // checksum mismatch on read
  }
  if (!write_file(results_path, bytes)) {
    std::fprintf(stderr, "sweep_worker: cannot write %s\n", results_path.c_str());
    return 1;
  }
  return 0;
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --stdio [fault flags]\n"
               "       %s --jobs FILE --results FILE [fault flags]\n"
               "\n"
               "Farm worker for sim::FarmRunner (wire format v%u).\n"
               "Fault-injection flags (tests only):\n"
               "  --fault-kill-after N     SIGKILL self on the Nth handled job\n"
               "  --fault-garbage-after N  reply to the Nth handled job with garbage\n"
               "  --fault-hang-after N     hang on the Nth handled job\n"
               "  --fault-kill-on-label L  SIGKILL self whenever job L is handled\n"
               "  --fault-hang-on-label L  hang whenever job L is handled\n"
               "  --fault-error-on-label L answer job L with an error frame\n"
               "  --fault-corrupt-results MODE\n"
               "                           damage the result file (file mode only):\n"
               "                           truncate = cut the trailing frame short,\n"
               "                           bitflip  = flip one payload bit (bad checksum)\n",
               argv0, argv0, static_cast<unsigned>(farm::kWireVersion));
}

}  // namespace

int main(int argc, char** argv) {
  bool stdio = false;
  std::string jobs_path;
  std::string results_path;
  FaultPlan fault;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweep_worker: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--jobs") {
      jobs_path = value();
    } else if (arg == "--results") {
      results_path = value();
    } else if (arg == "--fault-kill-after") {
      fault.kill_after = std::atoi(value().c_str());
    } else if (arg == "--fault-garbage-after") {
      fault.garbage_after = std::atoi(value().c_str());
    } else if (arg == "--fault-hang-after") {
      fault.hang_after = std::atoi(value().c_str());
    } else if (arg == "--fault-kill-on-label") {
      fault.kill_on_label = value();
    } else if (arg == "--fault-hang-on-label") {
      fault.hang_on_label = value();
    } else if (arg == "--fault-error-on-label") {
      fault.error_on_label = value();
    } else if (arg == "--fault-corrupt-results") {
      fault.corrupt_results = value();
      if (fault.corrupt_results != "truncate" && fault.corrupt_results != "bitflip") {
        std::fprintf(stderr, "sweep_worker: --fault-corrupt-results wants truncate|bitflip\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "sweep_worker: unknown argument %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (stdio && (jobs_path.empty() && results_path.empty())) return run_stdio(fault);
  if (!stdio && !jobs_path.empty() && !results_path.empty()) {
    return run_files(jobs_path, results_path, fault);
  }
  usage(argv[0]);
  return 2;
}
