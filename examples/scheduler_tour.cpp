// A tour of the three virtualization substrates the paper ports Kyoto
// to (§3, §4.4): Xen's credit scheduler, the Linux CFS under KVM, and
// the Pisces co-kernel — each run vanilla and with its Kyoto variant
// on the same sensitive-vs-disruptive colocation.
//
// Output: one row per (substrate, variant) with the victim's
// normalized performance and the disruptor's CPU share — showing that
// the polluters-pay mechanism is scheduler-agnostic: ~110 LOC of
// accounting grafted onto three very different schedulers yields the
// same protection everywhere.
//
// The six (substrate, variant) runs are independent, so they execute
// as one sharded sweep over sim::SweepRunner; each row normalizes
// against the gcc solo baseline, which the memoized solo cache
// simulates once instead of once per comparison.
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = 60;

  const auto mem = spec.machine.mem;
  const auto gcc = [mem](std::uint64_t s) { return workloads::make_app("gcc", mem, s); };
  const auto lbm = [mem](std::uint64_t s) { return workloads::make_app("lbm", mem, s); };

  // The permit is sized from gcc's solo pollution, so the baseline
  // runs first (batch 1); the per-row baseline requests below hit the
  // memo cache instead of re-simulating.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  sweep.add_solo(spec, gcc, "gcc", "gcc");
  const auto solo = sweep.run().at(0).vms.at(0);
  const double permit = solo.llc_cap_act * 1.5 + 8.0;

  struct Row {
    const char* substrate;
    const char* scheduler;
    sim::SchedulerFactory factory;
    bool kyoto;
  };
  const std::vector<Row> rows = {
      {"Xen", "XCS (credit)",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>()); },
       false},
      {"Xen", "KS4Xen",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Xen>()); }, true},
      {"KVM/Linux", "CFS",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CfsScheduler>()); },
       false},
      {"KVM/Linux", "KS4Linux",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Linux>()); },
       true},
      {"Pisces co-kernel", "Pisces",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::PiscesScheduler>()); },
       false},
      {"Pisces co-kernel", "KS4Pisces",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Pisces>()); },
       true},
  };

  // Batch 2: one scenario job per (substrate, variant), plus the
  // memoized baseline each row compares against.
  std::vector<std::size_t> scenario_jobs, baseline_jobs;
  for (const auto& row : rows) {
    sim::RunSpec rspec = spec;
    rspec.scheduler = row.factory;
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.config.llc_cap = row.kyoto ? permit : 0.0;
    sen.workload = gcc;
    sen.pinned_cores = {0};
    sim::VmPlan dis;
    dis.config.name = "lbm";
    dis.config.llc_cap = row.kyoto ? permit : 0.0;
    dis.config.loop_workload = true;
    dis.workload = lbm;
    dis.pinned_cores = {1};
    scenario_jobs.push_back(sweep.add(rspec, {sen, dis}, row.scheduler));
    baseline_jobs.push_back(sweep.add_solo(spec, gcc, "gcc", "gcc"));
  }
  const auto results = sweep.run();

  TextTable table({"substrate", "scheduler", "gcc norm. perf", "lbm CPU share %",
                   "lbm punished ticks"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& outcome = results.at(scenario_jobs[i]);
    const auto& baseline = results.at(baseline_jobs[i]).vms.at(0);
    table.add_row({rows[i].substrate, rows[i].scheduler,
                   fmt_double(outcome.vms[0].ipc / baseline.ipc, 2),
                   fmt_double(outcome.vms[1].cpu_share_pct, 0),
                   fmt_count(outcome.vms[1].punished_ticks)});
  }
  std::cout << "\nThe Kyoto principle across three virtualization substrates\n"
            << "(gcc = sensitive tenant, lbm = streaming polluter, permit "
            << fmt_double(permit, 1) << " miss/ms)\n\n"
            << table << '\n';
  std::cout << "sweep: " << sweep.lanes() << " lane(s); solo baselines "
            << sweep.solo_requests() << " requested, "
            << (sweep.solo_requests() - sweep.solo_memo_hits())
            << " simulated (memoized solo cache)\n";
  return 0;
}
