// A tour of the three virtualization substrates the paper ports Kyoto
// to (§3, §4.4): Xen's credit scheduler, the Linux CFS under KVM, and
// the Pisces co-kernel — each run vanilla and with its Kyoto variant
// on the same sensitive-vs-disruptive colocation.
//
// Output: one row per (substrate, variant) with the victim's
// normalized performance and the disruptor's CPU share — showing that
// the polluters-pay mechanism is scheduler-agnostic: ~110 LOC of
// accounting grafted onto three very different schedulers yields the
// same protection everywhere.
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 6;
  spec.measure_ticks = 60;

  const auto mem = spec.machine.mem;
  const auto gcc = [mem](std::uint64_t s) { return workloads::make_app("gcc", mem, s); };
  const auto lbm = [mem](std::uint64_t s) { return workloads::make_app("lbm", mem, s); };

  const auto solo = sim::run_solo(spec, gcc, "gcc");
  const double permit = solo.llc_cap_act * 1.5 + 8.0;

  struct Row {
    const char* substrate;
    const char* scheduler;
    sim::SchedulerFactory factory;
    bool kyoto;
  };
  const std::vector<Row> rows = {
      {"Xen", "XCS (credit)",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>()); },
       false},
      {"Xen", "KS4Xen",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Xen>()); }, true},
      {"KVM/Linux", "CFS",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CfsScheduler>()); },
       false},
      {"KVM/Linux", "KS4Linux",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Linux>()); },
       true},
      {"Pisces co-kernel", "Pisces",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::PiscesScheduler>()); },
       false},
      {"Pisces co-kernel", "KS4Pisces",
       [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Pisces>()); },
       true},
  };

  TextTable table({"substrate", "scheduler", "gcc norm. perf", "lbm CPU share %",
                   "lbm punished ticks"});
  for (const auto& row : rows) {
    sim::RunSpec rspec = spec;
    rspec.scheduler = row.factory;
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.config.llc_cap = row.kyoto ? permit : 0.0;
    sen.workload = gcc;
    sen.pinned_cores = {0};
    sim::VmPlan dis;
    dis.config.name = "lbm";
    dis.config.llc_cap = row.kyoto ? permit : 0.0;
    dis.config.loop_workload = true;
    dis.workload = lbm;
    dis.pinned_cores = {1};

    auto hv = sim::build_scenario(rspec, {sen, dis});
    hv->run_ticks(rspec.warmup_ticks);
    const auto gcc_before = hv->vms()[0]->counters();
    const auto lbm_cycles_before = hv->vms()[1]->vcpu(0).cpu_cycles();
    hv->run_ticks(rspec.measure_ticks);
    const auto gcc_delta = hv->vms()[0]->counters() - gcc_before;
    const double lbm_share =
        static_cast<double>(hv->vms()[1]->vcpu(0).cpu_cycles() - lbm_cycles_before) /
        static_cast<double>(rspec.measure_ticks * hv->machine().cycles_per_tick()) * 100.0;

    std::int64_t punished = 0;
    if (auto* ks = dynamic_cast<core::Ks4Xen*>(&hv->scheduler())) {
      punished = ks->kyoto().state(*hv->vms()[1]).punished_ticks;
    } else if (auto* ksl = dynamic_cast<core::Ks4Linux*>(&hv->scheduler())) {
      punished = ksl->kyoto().state(*hv->vms()[1]).punished_ticks;
    } else if (auto* ksp = dynamic_cast<core::Ks4Pisces*>(&hv->scheduler())) {
      punished = ksp->kyoto().state(*hv->vms()[1]).punished_ticks;
    }

    table.add_row({row.substrate, row.scheduler, fmt_double(gcc_delta.ipc() / solo.ipc, 2),
                   fmt_double(lbm_share, 0), fmt_count(punished)});
  }
  std::cout << "\nThe Kyoto principle across three virtualization substrates\n"
            << "(gcc = sensitive tenant, lbm = streaming polluter, permit "
            << fmt_double(permit, 1) << " miss/ms)\n\n"
            << table << '\n';
  return 0;
}
