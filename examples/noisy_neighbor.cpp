// Noisy-neighbour forensics: find the polluter, then make it pay.
//
// Act 1 — an operator sees a latency-sensitive tenant (omnetpp)
// degrade on a shared host and uses Kyoto's monitoring (Equation 1
// over per-vCPU perfctr counters, plus McSim replay for clean
// attribution) to identify which of three co-tenants is responsible.
//
// Act 2 — the operator re-launches the host under KS4Xen with a
// pollution permit on every VM and watches the victim's per-tick IPC
// timeline recover while the polluter is duty-cycled.
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kyoto/ks4xen.hpp"
#include "kyoto/monitor.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

namespace {

struct Tenant {
  const char* name;
  const char* app;
  int core;
};

constexpr Tenant kVictim{"victim (omnetpp)", "omnetpp", 0};
const std::vector<Tenant> kNeighbours = {
    {"tenant-a (xalan)", "xalan", 1},
    {"tenant-b (lbm)", "lbm", 2},
    {"tenant-c (astar)", "astar", 3},
};

}  // namespace

int main() {
  const hv::MachineConfig machine = hv::scaled_machine();
  const auto mem = machine.mem;

  // --- Act 1: diagnosis -------------------------------------------------
  std::cout << "Act 1 — who is thrashing the LLC?\n\n";
  hv::Hypervisor hv(machine,
                    std::make_unique<core::Ks4Xen>(std::make_unique<core::McSimMonitor>()));
  hv::VmConfig vc{.name = kVictim.name};
  vc.loop_workload = true;
  hv::Vm& victim = hv.create_vm(vc, workloads::make_app(kVictim.app, mem, 1), kVictim.core);
  std::vector<hv::Vm*> neighbours;
  for (const auto& t : kNeighbours) {
    hv::VmConfig config{.name = t.name};
    config.loop_workload = true;
    neighbours.push_back(
        &hv.create_vm(config, workloads::make_app(t.app, mem, 17), t.core));
  }
  hv.run_slices(20);

  auto& ks = static_cast<core::Ks4Xen&>(hv.scheduler());
  auto& monitor = static_cast<core::McSimMonitor&>(ks.kyoto().monitor());

  TextTable diag({"VM", "intrinsic llc_cap_act (miss/ms, McSim replay)", "verdict"});
  const hv::Vm* polluter = nullptr;
  double worst = -1.0;
  for (hv::Vm* vm : hv.vms()) {
    const double rate = monitor.cached_rate(vm->id());
    if (rate > worst) {
      worst = rate;
      polluter = vm;
    }
  }
  for (hv::Vm* vm : hv.vms()) {
    const double rate = monitor.cached_rate(vm->id());
    diag.add_row({vm->name(), fmt_double(rate, 1),
                  vm == polluter ? "<-- polluter" : (vm == &victim ? "victim" : "innocent")});
  }
  std::cout << diag << '\n';

  // --- Act 2: enforcement ------------------------------------------------
  // Each tenant books a permit covering its *measured intrinsic*
  // pollution (from Act 1's replay monitor) plus headroom — except
  // the polluter, who only paid for the host's standard permit.  The
  // provider does not sell a 700-miss/ms permit on this host.
  std::cout << "Act 2 — rebooting the host under KS4Xen with per-tenant permits\n\n";
  sim::RunSpec spec;
  spec.machine = machine;
  spec.warmup_ticks = 6;
  spec.measure_ticks = 60;

  auto factory = [&](const std::string& app) {
    return [app, mem](std::uint64_t s) { return workloads::make_app(app, mem, s); };
  };
  const double standard_permit = 15.0;
  auto booked_permit = [&](const hv::Vm* vm) {
    if (vm == polluter) return standard_permit;
    return monitor.cached_rate(vm->id()) * 1.5 + standard_permit;
  };

  auto build_plans = [&](bool kyoto) {
    std::vector<sim::VmPlan> plans;
    sim::VmPlan v;
    v.config.name = kVictim.name;
    v.config.llc_cap = kyoto ? booked_permit(&victim) : 0.0;
    v.config.loop_workload = true;
    v.workload = factory(kVictim.app);
    v.pinned_cores = {kVictim.core};
    plans.push_back(v);
    for (std::size_t i = 0; i < kNeighbours.size(); ++i) {
      sim::VmPlan n;
      n.config.name = kNeighbours[i].name;
      n.config.llc_cap = kyoto ? booked_permit(neighbours[i]) : 0.0;
      n.config.loop_workload = true;
      n.workload = factory(kNeighbours[i].app);
      n.pinned_cores = {kNeighbours[i].core};
      plans.push_back(n);
    }
    return plans;
  };

  // The solo baseline and the before/after colocations are three
  // independent scenarios — one sharded sweep, one lane per job.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  const std::size_t solo_job = sweep.add_solo(spec, factory(kVictim.app), kVictim.app,
                                              kVictim.app);
  sim::RunSpec xcs_spec = spec;
  xcs_spec.scheduler = [] { return std::make_unique<hv::CreditScheduler>(); };
  const std::size_t before_job = sweep.add(xcs_spec, build_plans(false), "xcs");
  // Attribution matters on a 4-tenant host: with raw per-vCPU PMCs the
  // victim would be blamed for misses its neighbours induce (§3.3), so
  // production KS4Xen runs with the replay monitor.
  sim::RunSpec ks_spec = spec;
  ks_spec.scheduler = [] {
    return std::make_unique<core::Ks4Xen>(std::make_unique<core::McSimMonitor>());
  };
  const std::size_t after_job = sweep.add(ks_spec, build_plans(true), "ks4xen");
  const auto results = sweep.run();
  const auto& victim_solo = results.at(solo_job).vms.at(0);
  const auto& before = results.at(before_job);
  const auto& after = results.at(after_job);

  TextTable outcome({"VM", "norm. perf before", "norm. perf after (KS4Xen)",
                     "punished ticks"});
  outcome.add_row({kVictim.name,
                   fmt_double(before.vms[0].ipc / victim_solo.ipc, 2),
                   fmt_double(after.vms[0].ipc / victim_solo.ipc, 2),
                   fmt_count(after.vms[0].punished_ticks)});
  for (std::size_t i = 1; i < after.vms.size(); ++i) {
    outcome.add_row({kNeighbours[i - 1].name, "-", "-",
                     fmt_count(after.vms[i].punished_ticks)});
  }
  std::cout << outcome << '\n';

  std::cout << "The victim recovered from "
            << fmt_double(before.vms[0].ipc / victim_solo.ipc, 2) << "x to "
            << fmt_double(after.vms[0].ipc / victim_solo.ipc, 2)
            << "x of its solo performance; only the polluter accumulated punished ticks.\n"
            << "(The residual gap is the pollution its neighbours legitimately emit\n"
            << " within their own booked permits — paid-for, not stolen.)\n";
  return 0;
}
