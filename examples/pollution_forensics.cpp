// Pollution forensics: watch the ground-truth oracle at work.
//
// Boots the scaled Table-1 machine with a cache-sensitive VM (gcc)
// sharing the LLC with a disruptive one (lbm) under the vanilla
// credit scheduler, and attaches a GroundTruthShadow — the pure
// observer that reads the simulated cache's exact per-VM attribution
// at every tick.  The forensic table it prints is the paper's §3.3
// attribution problem made visible:
//
//   * gcc's DIRECT (PMC) rate is inflated — it re-misses the lines
//     lbm keeps evicting — while its TRUE intrinsic rate stays tiny;
//   * the oracle pins the blame where it belongs: lbm's cross-VM
//     evictions ("inflicted") dwarf everyone else's, and gcc's
//     contention misses mirror them ("suffered");
//   * footprints show lbm squatting on the shared cache.
//
// A second run hands the oracle to the scheduler itself
// (GroundTruthMonitor inside KS4Xen): perfect attribution punishes
// only the polluter, and gcc's rate is never mis-billed.
//
// Build & run:  cmake -B build && cmake --build build
//               ./build/pollution_forensics
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "kyoto/ground_truth.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();
  spec.warmup_ticks = 0;  // forensics want the loading phase too
  spec.measure_ticks = 36;

  const auto mem = spec.machine.mem;
  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.config.loop_workload = true;
  sen.workload = [mem](std::uint64_t seed) { return workloads::make_app("gcc", mem, seed); };
  sen.pinned_cores = {0};
  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.loop_workload = true;
  dis.workload = [mem](std::uint64_t seed) { return workloads::make_app("lbm", mem, seed); };
  dis.pinned_cores = {1};

  // --- Act 1: shadow a vanilla run and print the forensics ------------
  std::unique_ptr<core::GroundTruthShadow> shadow;
  sim::run_scenario(spec, {sen, dis}, [&shadow](hv::Hypervisor& hv) {
    shadow = std::make_unique<core::GroundTruthShadow>(hv);
  });

  std::cout << "Act 1 — gcc vs lbm under the vanilla credit scheduler, shadowed by the\n"
               "ground-truth oracle (rates in LLC misses per on-CPU millisecond):\n\n";
  TextTable table({"tick", "gcc direct", "gcc TRUE", "gcc suffered", "lbm TRUE",
                   "lbm inflicted", "gcc lines", "lbm lines"});
  const auto& gcc_series = shadow->samples_for(0);
  const auto& lbm_series = shadow->samples_for(1);
  for (std::size_t i = 0; i < gcc_series.size(); i += 4) {
    const auto& g = gcc_series[i];
    const auto& l = lbm_series[i];
    table.add_row({std::to_string(g.tick), fmt_double(g.direct_rate, 1),
                   fmt_double(g.true_rate, 1), fmt_count(static_cast<long long>(
                       g.cross_evictions_suffered)),
                   fmt_double(l.true_rate, 1),
                   fmt_count(static_cast<long long>(l.cross_evictions_inflicted)),
                   fmt_count(static_cast<long long>(g.footprint_lines)),
                   fmt_count(static_cast<long long>(l.footprint_lines))});
  }
  std::cout << table
            << "\n(gcc's direct PMC rate counts lbm's pollution against gcc; the TRUE\n"
               " column subtracts the contention-induced re-misses the oracle can see.)\n\n";

  // --- Act 2: the oracle as the scheduler's monitor --------------------
  sim::RunSpec ks_spec = spec;
  ks_spec.scheduler = []() -> std::unique_ptr<hv::Scheduler> {
    return std::make_unique<core::Ks4Xen>(std::make_unique<core::GroundTruthMonitor>());
  };
  sen.config.llc_cap = 25.0;
  dis.config.llc_cap = 25.0;
  const auto outcome = sim::run_scenario(ks_spec, {sen, dis});

  std::cout << "Act 2 — same mix under KS4Xen with the ground-truth monitor (permit 25):\n"
            << "  gcc: punished " << outcome.vms[0].punished_ticks << " ticks, IPC "
            << fmt_double(outcome.vms[0].ipc, 3) << '\n'
            << "  lbm: punished " << outcome.vms[1].punished_ticks << " ticks, IPC "
            << fmt_double(outcome.vms[1].ipc, 3) << '\n'
            << "\nPerfect attribution, zero monitoring cost: only the simulator can do\n"
               "this — which is exactly why it is the conformance oracle for the three\n"
               "real monitors (see bench_ablation_monitors).\n";
  return 0;
}
