// Quickstart: the Kyoto system in ~60 lines.
//
// Boots the paper's (scaled) machine twice — once under the vanilla
// Xen credit scheduler, once under KS4Xen — with a cache-sensitive VM
// (gcc) sharing the LLC with a disruptive one (lbm).  Prints how much
// of gcc's solo performance survives under each scheduler.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "hv/credit_scheduler.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();  // Table 1 machine, 1/64 scale
  spec.warmup_ticks = 9;
  spec.measure_ticks = 90;

  const auto mem = spec.machine.mem;
  const auto gcc = [mem](std::uint64_t seed) { return workloads::make_app("gcc", mem, seed); };
  const auto lbm = [mem](std::uint64_t seed) { return workloads::make_app("lbm", mem, seed); };

  // 1. gcc alone: the baseline its owner paid for.
  const auto solo = sim::run_solo(spec, gcc, "gcc");

  // 2. gcc + lbm on two cores of the same socket, vanilla credit scheduler.
  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.workload = gcc;
  sen.pinned_cores = {0};

  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.loop_workload = true;  // a persistent noisy neighbour
  dis.workload = lbm;
  dis.pinned_cores = {1};

  const auto xcs = sim::run_scenario(spec, {sen, dis});

  // 3. Same colocation under KS4Xen: both VMs book a pollution permit
  //    sized from gcc's solo pollution level — gcc stays within it,
  //    lbm blows through it and gets punished.
  const double permit = solo.llc_cap_act * 1.5 + 5.0;
  spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
  sen.config.llc_cap = permit;
  dis.config.llc_cap = permit;
  const auto ks = sim::run_scenario(spec, {sen, dis});

  TextTable table({"scenario", "gcc IPC", "degradation vs solo", "lbm punished ticks"});
  table.add_row({"gcc alone", fmt_double(solo.ipc, 3), "-", "-"});
  table.add_row({"gcc + lbm, XCS", fmt_double(xcs.vms[0].ipc, 3),
                 fmt_double(sim::degradation_pct(solo.ipc, xcs.vms[0].ipc), 1) + " %",
                 "0"});
  table.add_row({"gcc + lbm, KS4Xen (permit " + fmt_double(permit, 0) + " miss/ms)",
                 fmt_double(ks.vms[0].ipc, 3),
                 fmt_double(sim::degradation_pct(solo.ipc, ks.vms[0].ipc), 1) + " %",
                 fmt_count(ks.vms[1].punished_ticks)});
  std::cout << "\nKyoto quickstart — polluters pay for the LLC they thrash\n\n"
            << table << '\n';

  std::cout << "gcc solo pollution (Equation 1): " << fmt_double(solo.llc_cap_act, 1)
            << " misses/ms; booked permit: " << fmt_double(permit, 0) << " misses/ms\n";
  return 0;
}
