// Quickstart: the Kyoto system in ~60 lines.
//
// Boots the paper's (scaled) machine twice — once under the vanilla
// Xen credit scheduler, once under KS4Xen — with a cache-sensitive VM
// (gcc) sharing the LLC with a disruptive one (lbm).  Prints how much
// of gcc's solo performance survives under each scheduler.
//
// The three runs are independent scenarios, so they execute as one
// sharded sweep (sim::SweepRunner): each comparison requests the gcc
// solo baseline it normalizes against, and the runner's memoized solo
// cache simulates it exactly once.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "hv/credit_scheduler.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/sweep_runner.hpp"
#include "workloads/catalog.hpp"

using namespace kyoto;

int main() {
  sim::RunSpec spec;
  spec.machine = hv::scaled_machine();  // Table 1 machine, 1/64 scale
  spec.warmup_ticks = 9;
  spec.measure_ticks = 90;

  const auto mem = spec.machine.mem;
  const auto gcc = [mem](std::uint64_t seed) { return workloads::make_app("gcc", mem, seed); };
  const auto lbm = [mem](std::uint64_t seed) { return workloads::make_app("lbm", mem, seed); };

  // 1. gcc alone: the baseline its owner paid for.  Batch 1, because
  //    the KS4Xen permit below is sized from the solo pollution level.
  sim::SweepRunner sweep(ThreadPool::hardware_lanes());
  sweep.add_solo(spec, gcc, "gcc", "gcc");
  const auto solo = sweep.run().at(0).vms.at(0);

  // 2. gcc + lbm on two cores of the same socket, vanilla credit scheduler.
  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.workload = gcc;
  sen.pinned_cores = {0};

  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.loop_workload = true;  // a persistent noisy neighbour
  dis.workload = lbm;
  dis.pinned_cores = {1};

  // Each comparison row books its own baseline request; the memo
  // cache answers both from step 1's simulation.
  sweep.add_solo(spec, gcc, "gcc", "gcc");
  const std::size_t xcs_job = sweep.add(spec, {sen, dis}, "xcs");

  // 3. Same colocation under KS4Xen: both VMs book a pollution permit
  //    sized from gcc's solo pollution level — gcc stays within it,
  //    lbm blows through it and gets punished.
  const double permit = solo.llc_cap_act * 1.5 + 5.0;
  sim::RunSpec ks_spec = spec;
  ks_spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
  sen.config.llc_cap = permit;
  dis.config.llc_cap = permit;
  sweep.add_solo(spec, gcc, "gcc", "gcc");
  const std::size_t ks_job = sweep.add(ks_spec, {sen, dis}, "ks4xen");

  const auto results = sweep.run();
  const auto& xcs = results.at(xcs_job);
  const auto& ks = results.at(ks_job);

  TextTable table({"scenario", "gcc IPC", "degradation vs solo", "lbm punished ticks"});
  table.add_row({"gcc alone", fmt_double(solo.ipc, 3), "-", "-"});
  table.add_row({"gcc + lbm, XCS", fmt_double(xcs.vms[0].ipc, 3),
                 fmt_double(sim::degradation_pct(solo.ipc, xcs.vms[0].ipc), 1) + " %",
                 "0"});
  table.add_row({"gcc + lbm, KS4Xen (permit " + fmt_double(permit, 0) + " miss/ms)",
                 fmt_double(ks.vms[0].ipc, 3),
                 fmt_double(sim::degradation_pct(solo.ipc, ks.vms[0].ipc), 1) + " %",
                 fmt_count(ks.vms[1].punished_ticks)});
  std::cout << "\nKyoto quickstart — polluters pay for the LLC they thrash\n\n"
            << table << '\n';

  std::cout << "gcc solo pollution (Equation 1): " << fmt_double(solo.llc_cap_act, 1)
            << " misses/ms; booked permit: " << fmt_double(permit, 0) << " misses/ms\n";
  std::cout << "sweep: " << sweep.lanes() << " lane(s); solo baselines "
            << sweep.solo_requests() << " requested, "
            << (sweep.solo_requests() - sweep.solo_memo_hits())
            << " simulated (memoized solo cache)\n";
  return 0;
}
