#include "cache/memory_system.hpp"

#include <gtest/gtest.h>

#include "cache/config.hpp"
#include "cache/topology.hpp"
#include "mem/access.hpp"

namespace kyoto::cache {
namespace {

MemSystemConfig small_config() {
  MemSystemConfig c;
  c.l1 = CacheGeometry{512, 8, 64};      // 1 set
  c.l2 = CacheGeometry{2048, 8, 64};     // 4 sets
  c.llc = CacheGeometry{16384, 16, 64};  // 16 sets
  return c;
}

TEST(MemSystemConfig, PaperGeometryMatchesTable1) {
  const MemSystemConfig c = paper_mem_system();
  EXPECT_EQ(c.l1.size, 32_KiB);
  EXPECT_EQ(c.l1.ways, 8u);
  EXPECT_EQ(c.l2.size, 256_KiB);
  EXPECT_EQ(c.l2.ways, 8u);
  EXPECT_EQ(c.llc.size, 10240_KiB);
  EXPECT_EQ(c.llc.ways, 20u);
  EXPECT_EQ(c.lat_l1, 4);
  EXPECT_EQ(c.lat_l2, 12);
  EXPECT_EQ(c.lat_llc, 45);
  EXPECT_EQ(c.lat_mem_local, 180);
}

TEST(MemSystemConfig, ScalingPreservesGeometryShape) {
  const MemSystemConfig c = paper_mem_system().scaled(64);
  EXPECT_EQ(c.l1.size, 512u);
  EXPECT_EQ(c.l2.size, 4096u);
  EXPECT_EQ(c.llc.size, 160_KiB);
  EXPECT_EQ(c.l1.ways, 8u);
  EXPECT_EQ(c.llc.ways, 20u);
  EXPECT_EQ(c.lat_llc, 45);  // latencies unchanged
  EXPECT_EQ(c.llc.sets(), 128u);
}

TEST(MemSystemConfig, OverScalingThrows) {
  EXPECT_THROW(paper_mem_system().scaled(128), std::logic_error);  // L1 < one set
  EXPECT_THROW(paper_mem_system().scaled(0), std::logic_error);
}

TEST(MemSystemConfig, LatencyLookup) {
  const MemSystemConfig c;
  EXPECT_EQ(c.latency(CacheLevel::kL1), c.lat_l1);
  EXPECT_EQ(c.latency(CacheLevel::kL2), c.lat_l2);
  EXPECT_EQ(c.latency(CacheLevel::kLlc), c.lat_llc);
  EXPECT_EQ(c.latency(CacheLevel::kMemLocal), c.lat_mem_local);
  EXPECT_EQ(c.latency(CacheLevel::kMemRemote), c.lat_mem_remote);
}

TEST(Topology, CoreToSocketMapping) {
  const Topology t{2, 4};
  EXPECT_EQ(t.total_cores(), 8);
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
  EXPECT_EQ(t.socket_of(7), 1);
  EXPECT_EQ(t.first_core(1), 4);
  EXPECT_EQ(t.node_of(5), 1);
}

TEST(MemorySystem, LatencyLadder) {
  MemorySystem m(Topology{1, 2}, small_config());
  // Cold access goes to local memory.
  auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemLocal);
  EXPECT_EQ(r.latency, small_config().lat_mem_local);
  EXPECT_TRUE(r.llc_reference);
  EXPECT_TRUE(r.llc_miss);
  // Now hot in L1.
  r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kL1);
  EXPECT_EQ(r.latency, small_config().lat_l1);
  EXPECT_FALSE(r.llc_reference);
  EXPECT_FALSE(r.llc_miss);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  const auto cfg = small_config();
  MemorySystem m(Topology{1, 1}, cfg);
  // L1 has 1 set x 8 ways; touch 9 distinct lines to evict line 0
  // from L1 while it stays in L2.
  for (Address a = 0; a < 9; ++a) m.access(0, a * 64, false, 0, 0);
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kL2);
  EXPECT_EQ(r.latency, cfg.lat_l2);
}

TEST(MemorySystem, LlcHitAfterPrivateEviction) {
  const auto cfg = small_config();
  MemorySystem m(Topology{1, 1}, cfg);
  // Working set larger than L2 (32 lines) but within LLC (256 lines):
  // revisiting line 0 after 40 distinct lines hits the LLC.
  for (Address a = 0; a < 40; ++a) m.access(0, a * 64, false, 0, 0);
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kLlc);
  EXPECT_EQ(r.latency, cfg.lat_llc);
}

TEST(MemorySystem, RemoteNodePaysRemoteLatency) {
  const auto cfg = small_config();
  MemorySystem m(Topology{2, 2}, cfg);
  // Core 0 (node 0) accessing memory homed on node 1.
  const auto r = m.access(0, 0, false, /*home_node=*/1, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemRemote);
  EXPECT_EQ(r.latency, cfg.lat_mem_remote);
  // But an LLC hit is an LLC hit regardless of home node.
  const auto r2 = m.access(0, 0, false, 1, 0);
  EXPECT_EQ(r2.level, CacheLevel::kL1);
}

TEST(MemorySystem, CoresOfOneSocketShareTheLlc) {
  MemorySystem m(Topology{1, 2}, small_config());
  m.access(0, 0, false, 0, 0);  // core 0 loads the line
  // Core 1 misses its private caches but hits the shared LLC.
  const auto r = m.access(1, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kLlc);
}

TEST(MemorySystem, SocketsDoNotShareLlcs) {
  MemorySystem m(Topology{2, 2}, small_config());
  m.access(0, 0, false, 0, 0);  // socket 0's LLC
  // Core 2 is on socket 1: full miss (home node 1 keeps it local).
  const auto r = m.access(2, 0, false, 1, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemLocal);
  EXPECT_TRUE(r.llc_miss);
}

TEST(MemorySystem, ContentionEvictsOtherCoresLines) {
  const auto cfg = small_config();
  MemorySystem m(Topology{1, 2}, cfg);
  m.access(0, 0, false, 0, /*vm=*/0);
  // Core 1 streams far more lines than the LLC holds (256 lines).
  for (Address a = 1; a <= 400; ++a) m.access(1, a * 64, false, 0, 1);
  // Core 0's line was evicted from LLC (and from its private caches
  // it is still present — but the LLC line is gone).
  EXPECT_FALSE(m.llc(0).probe(0));
}

TEST(MemorySystem, InvalidatePrivateLeavesLlc) {
  MemorySystem m(Topology{1, 1}, small_config());
  m.access(0, 0, false, 0, 0);
  m.invalidate_private(0);
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kLlc);
}

TEST(MemorySystem, InvalidateAllGoesCold) {
  MemorySystem m(Topology{1, 1}, small_config());
  m.access(0, 0, false, 0, 0);
  m.invalidate_all();
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemLocal);
}

TEST(MemorySystem, PerCoreLlcAttribution) {
  MemorySystem m(Topology{1, 2}, small_config());
  m.access(0, 0, false, 0, 0);
  m.access(1, 64 * 100, false, 0, 1);
  m.access(1, 64 * 101, false, 0, 1);
  EXPECT_EQ(m.llc(0).stats_for_core(0).misses, 1u);
  EXPECT_EQ(m.llc(0).stats_for_core(1).misses, 2u);
}

TEST(MemorySystem, LevelNames) {
  EXPECT_STREQ(cache_level_name(CacheLevel::kL1), "L1");
  EXPECT_STREQ(cache_level_name(CacheLevel::kMemRemote), "mem(remote)");
}

TEST(MemorySystem, DegenerateTopologyRejected) {
  EXPECT_THROW(MemorySystem(Topology{0, 4}, small_config()), std::logic_error);
}

}  // namespace
}  // namespace kyoto::cache
