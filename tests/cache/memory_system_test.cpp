#include "cache/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cache/config.hpp"
#include "cache/topology.hpp"
#include "common/rng.hpp"
#include "mem/access.hpp"

namespace kyoto::cache {
namespace {

MemSystemConfig small_config() {
  MemSystemConfig c;
  c.l1 = CacheGeometry{512, 8, 64};      // 1 set
  c.l2 = CacheGeometry{2048, 8, 64};     // 4 sets
  c.llc = CacheGeometry{16384, 16, 64};  // 16 sets
  return c;
}

TEST(MemSystemConfig, PaperGeometryMatchesTable1) {
  const MemSystemConfig c = paper_mem_system();
  EXPECT_EQ(c.l1.size, 32_KiB);
  EXPECT_EQ(c.l1.ways, 8u);
  EXPECT_EQ(c.l2.size, 256_KiB);
  EXPECT_EQ(c.l2.ways, 8u);
  EXPECT_EQ(c.llc.size, 10240_KiB);
  EXPECT_EQ(c.llc.ways, 20u);
  EXPECT_EQ(c.lat_l1, 4);
  EXPECT_EQ(c.lat_l2, 12);
  EXPECT_EQ(c.lat_llc, 45);
  EXPECT_EQ(c.lat_mem_local, 180);
}

TEST(MemSystemConfig, ScalingPreservesGeometryShape) {
  const MemSystemConfig c = paper_mem_system().scaled(64);
  EXPECT_EQ(c.l1.size, 512u);
  EXPECT_EQ(c.l2.size, 4096u);
  EXPECT_EQ(c.llc.size, 160_KiB);
  EXPECT_EQ(c.l1.ways, 8u);
  EXPECT_EQ(c.llc.ways, 20u);
  EXPECT_EQ(c.lat_llc, 45);  // latencies unchanged
  EXPECT_EQ(c.llc.sets(), 128u);
}

TEST(MemSystemConfig, OverScalingThrows) {
  EXPECT_THROW(paper_mem_system().scaled(128), std::logic_error);  // L1 < one set
  EXPECT_THROW(paper_mem_system().scaled(0), std::logic_error);
}

TEST(MemSystemConfig, LatencyLookup) {
  const MemSystemConfig c;
  EXPECT_EQ(c.latency(CacheLevel::kL1), c.lat_l1);
  EXPECT_EQ(c.latency(CacheLevel::kL2), c.lat_l2);
  EXPECT_EQ(c.latency(CacheLevel::kLlc), c.lat_llc);
  EXPECT_EQ(c.latency(CacheLevel::kMemLocal), c.lat_mem_local);
  EXPECT_EQ(c.latency(CacheLevel::kMemRemote), c.lat_mem_remote);
}

TEST(Topology, CoreToSocketMapping) {
  const Topology t{2, 4};
  EXPECT_EQ(t.total_cores(), 8);
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
  EXPECT_EQ(t.socket_of(7), 1);
  EXPECT_EQ(t.first_core(1), 4);
  EXPECT_EQ(t.node_of(5), 1);
}

TEST(MemorySystem, LatencyLadder) {
  MemorySystem m(Topology{1, 2}, small_config());
  // Cold access goes to local memory.
  auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemLocal);
  EXPECT_EQ(r.latency, small_config().lat_mem_local);
  EXPECT_TRUE(r.llc_reference);
  EXPECT_TRUE(r.llc_miss);
  // Now hot in L1.
  r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kL1);
  EXPECT_EQ(r.latency, small_config().lat_l1);
  EXPECT_FALSE(r.llc_reference);
  EXPECT_FALSE(r.llc_miss);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  const auto cfg = small_config();
  MemorySystem m(Topology{1, 1}, cfg);
  // L1 has 1 set x 8 ways; touch 9 distinct lines to evict line 0
  // from L1 while it stays in L2.
  for (Address a = 0; a < 9; ++a) m.access(0, a * 64, false, 0, 0);
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kL2);
  EXPECT_EQ(r.latency, cfg.lat_l2);
}

TEST(MemorySystem, LlcHitAfterPrivateEviction) {
  const auto cfg = small_config();
  MemorySystem m(Topology{1, 1}, cfg);
  // Working set larger than L2 (32 lines) but within LLC (256 lines):
  // revisiting line 0 after 40 distinct lines hits the LLC.
  for (Address a = 0; a < 40; ++a) m.access(0, a * 64, false, 0, 0);
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kLlc);
  EXPECT_EQ(r.latency, cfg.lat_llc);
}

TEST(MemorySystem, RemoteNodePaysRemoteLatency) {
  const auto cfg = small_config();
  MemorySystem m(Topology{2, 2}, cfg);
  // Core 0 (node 0) accessing memory homed on node 1.
  const auto r = m.access(0, 0, false, /*home_node=*/1, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemRemote);
  EXPECT_EQ(r.latency, cfg.lat_mem_remote);
  // But an LLC hit is an LLC hit regardless of home node.
  const auto r2 = m.access(0, 0, false, 1, 0);
  EXPECT_EQ(r2.level, CacheLevel::kL1);
}

TEST(MemorySystem, CoresOfOneSocketShareTheLlc) {
  MemorySystem m(Topology{1, 2}, small_config());
  m.access(0, 0, false, 0, 0);  // core 0 loads the line
  // Core 1 misses its private caches but hits the shared LLC.
  const auto r = m.access(1, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kLlc);
}

TEST(MemorySystem, SocketsDoNotShareLlcs) {
  MemorySystem m(Topology{2, 2}, small_config());
  m.access(0, 0, false, 0, 0);  // socket 0's LLC
  // Core 2 is on socket 1: full miss (home node 1 keeps it local).
  const auto r = m.access(2, 0, false, 1, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemLocal);
  EXPECT_TRUE(r.llc_miss);
}

TEST(MemorySystem, ContentionEvictsOtherCoresLines) {
  const auto cfg = small_config();
  MemorySystem m(Topology{1, 2}, cfg);
  m.access(0, 0, false, 0, /*vm=*/0);
  // Core 1 streams far more lines than the LLC holds (256 lines).
  for (Address a = 1; a <= 400; ++a) m.access(1, a * 64, false, 0, 1);
  // Core 0's line was evicted from LLC (and from its private caches
  // it is still present — but the LLC line is gone).
  EXPECT_FALSE(m.llc(0).probe(0));
}

TEST(MemorySystem, InvalidatePrivateLeavesLlc) {
  MemorySystem m(Topology{1, 1}, small_config());
  m.access(0, 0, false, 0, 0);
  m.invalidate_private(0);
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kLlc);
}

TEST(MemorySystem, InvalidateAllGoesCold) {
  MemorySystem m(Topology{1, 1}, small_config());
  m.access(0, 0, false, 0, 0);
  m.invalidate_all();
  const auto r = m.access(0, 0, false, 0, 0);
  EXPECT_EQ(r.level, CacheLevel::kMemLocal);
}

TEST(MemorySystem, PerCoreLlcAttribution) {
  MemorySystem m(Topology{1, 2}, small_config());
  m.access(0, 0, false, 0, 0);
  m.access(1, 64 * 100, false, 0, 1);
  m.access(1, 64 * 101, false, 0, 1);
  EXPECT_EQ(m.llc(0).stats_for_core(0).misses, 1u);
  EXPECT_EQ(m.llc(0).stats_for_core(1).misses, 2u);
}

TEST(MemorySystem, LevelNames) {
  EXPECT_STREQ(cache_level_name(CacheLevel::kL1), "L1");
  EXPECT_STREQ(cache_level_name(CacheLevel::kMemRemote), "mem(remote)");
}

TEST(MemorySystem, DegenerateTopologyRejected) {
  EXPECT_THROW(MemorySystem(Topology{0, 4}, small_config()), std::logic_error);
}

// --- batched access path ------------------------------------------------

TEST(AccessBatch, MatchesPerAccessCalls) {
  // access_batch / context() must be the same machine transition as a
  // sequence of access() calls: identical results, identical stats.
  MemorySystem a(Topology{1, 4}, small_config(), 11);
  MemorySystem b(Topology{1, 4}, small_config(), 11);

  Rng rng(5);
  constexpr std::size_t kN = 4096;
  std::vector<BatchAccess> ops(kN);
  for (auto& op : ops) {
    op.addr = rng.below(1024) * 64;
    op.write = rng.chance(0.3);
  }

  std::vector<AccessResult> batched(kN);
  a.access_batch(/*core=*/1, /*home_node=*/0, /*vm=*/2, ops.data(), batched.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const AccessResult r = b.access(1, ops[i].addr, ops[i].write, 0, 2);
    ASSERT_EQ(batched[i].level, r.level) << i;
    ASSERT_EQ(batched[i].latency, r.latency) << i;
    ASSERT_EQ(batched[i].llc_reference, r.llc_reference) << i;
    ASSERT_EQ(batched[i].llc_miss, r.llc_miss) << i;
  }
  EXPECT_EQ(a.llc(0).stats().accesses, b.llc(0).stats().accesses);
  EXPECT_EQ(a.llc(0).stats().misses, b.llc(0).stats().misses);
  EXPECT_EQ(a.llc(0).stats_for_vm(2).misses, b.llc(0).stats_for_vm(2).misses);
  EXPECT_EQ(a.llc(0).footprint_lines(2), b.llc(0).footprint_lines(2));
  EXPECT_EQ(a.l1(1).stats().hits, b.l1(1).stats().hits);
}

TEST(AccessBatch, TimedBatchAdvancesClockLikePerAccessCalls) {
  // The now_cycle >= 0 branch self-advances by each access's latency,
  // so the bus-queuing model must see exactly the timestamps a
  // per-access caller advancing by latency would pass.
  MemSystemConfig cfg = small_config();
  cfg.bus.enabled = true;
  // Longer than lat_mem_local so back-to-back misses actually queue.
  cfg.bus.transfer_cycles = 400;
  MemorySystem a(Topology{1, 1}, cfg, 11);
  MemorySystem b(Topology{1, 1}, cfg, 11);

  Rng rng(9);
  constexpr std::size_t kN = 2048;
  std::vector<BatchAccess> ops(kN);
  for (auto& op : ops) {
    op.addr = rng.below(4096) * 64;  // misses often => bus engages
    op.write = rng.chance(0.3);
  }

  std::vector<AccessResult> batched(kN);
  a.access_batch(0, 0, 0, ops.data(), batched.data(), kN, /*now_cycle=*/100);
  std::int64_t now = 100;
  for (std::size_t i = 0; i < kN; ++i) {
    const AccessResult r = b.access(0, ops[i].addr, ops[i].write, 0, 0, now);
    ASSERT_EQ(batched[i].latency, r.latency) << i;
    ASSERT_EQ(batched[i].bus_queue_delay, r.bus_queue_delay) << i;
    now += r.latency;
  }
  EXPECT_GT(a.bus_queue_cycles(0), 0);  // the model actually engaged
  EXPECT_EQ(a.bus_queue_cycles(0), b.bus_queue_cycles(0));
}

TEST(AccessBatch, ContextReusableAcrossBursts) {
  MemorySystem m(Topology{1, 2}, small_config(), 3);
  auto ctx = m.context(0, 0, 0);
  for (int burst = 0; burst < 4; ++burst) {
    for (Address line = 0; line < 64; ++line) ctx.access(line * 64, false);
  }
  EXPECT_EQ(m.l1(0).stats().accesses, 256u);
}

TEST(AccessBatch, PrivateCachesSkipAttribution) {
  // Private L1/L2 run attribution-free; the shared LLC attributes.
  MemorySystem m(Topology{1, 2}, small_config(), 3);
  m.access(0, 0, false, 0, /*vm=*/1);
  EXPECT_FALSE(m.l1(0).tracks_attribution());
  EXPECT_FALSE(m.l2(0).tracks_attribution());
  EXPECT_TRUE(m.llc(0).tracks_attribution());
  EXPECT_EQ(m.llc(0).stats_for_vm(1).accesses, 1u);
  EXPECT_EQ(m.llc(0).footprint_lines(1), 1u);
}

TEST(AccessBatch, ReserveVmSlotsPreSizesAttribution) {
  MemorySystem m(Topology{1, 1}, small_config(), 3);
  m.reserve_vm_slots(128);
  // A VM id beyond the default hint works without surprises.
  m.access(0, 0, false, 0, /*vm=*/100);
  EXPECT_EQ(m.llc(0).stats_for_vm(100).accesses, 1u);
  EXPECT_EQ(m.llc(0).footprint_lines(100), 1u);
}

}  // namespace
}  // namespace kyoto::cache
