#include "cache/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/reference_cache.hpp"
#include "common/rng.hpp"
#include "mem/access.hpp"

namespace kyoto::cache {
namespace {

constexpr Bytes kLine = mem::kLineBytes;

/// 4 sets x 4 ways x 64 B lines = 1 KiB toy cache.
CacheGeometry toy_geometry() { return CacheGeometry{1024, 4, kLine}; }

Address line(unsigned set, unsigned n, unsigned sets = 4) {
  // n-th distinct line mapping to `set`.
  return (static_cast<Address>(n) * sets + set) * kLine;
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  EXPECT_FALSE(c.access(0, false, req).hit);
  EXPECT_TRUE(c.access(0, false, req).hit);
  EXPECT_TRUE(c.access(63, false, req).hit);   // same line
  EXPECT_FALSE(c.access(64, false, req).hit);  // next line
}

TEST(SetAssocCache, GeometrySetsComputed) {
  EXPECT_EQ(toy_geometry().sets(), 4u);
  EXPECT_EQ((CacheGeometry{10240_KiB, 20, 64}).sets(), 8192u);
  EXPECT_THROW((CacheGeometry{1000, 3, 64}).sets(), std::logic_error);
}

TEST(SetAssocCache, AssociativityHoldsWaysLines) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  // Fill one set with exactly `ways` lines: all must coexist.
  for (unsigned n = 0; n < 4; ++n) c.access(line(1, n), false, req);
  for (unsigned n = 0; n < 4; ++n) EXPECT_TRUE(c.access(line(1, n), false, req).hit);
}

TEST(SetAssocCache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  // Touch 0..2 so line 3 is LRU... actually touch 1,2,3 so 0 is LRU.
  c.access(line(0, 1), false, req);
  c.access(line(0, 2), false, req);
  c.access(line(0, 3), false, req);
  // New line evicts line 0.
  const auto result = c.access(line(0, 4), false, req);
  EXPECT_FALSE(result.hit);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, line(0, 0));
  EXPECT_FALSE(c.probe(line(0, 0)));
  EXPECT_TRUE(c.probe(line(0, 1)));
}

TEST(SetAssocCache, ProbeDoesNotDisturbState) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  // Probing the LRU line must not refresh it.
  EXPECT_TRUE(c.probe(line(0, 0)));
  c.access(line(0, 4), false, req);
  EXPECT_FALSE(c.probe(line(0, 0)));
  const auto before = c.stats();
  c.probe(line(0, 1));
  EXPECT_EQ(c.stats().accesses, before.accesses);  // probe not counted
}

TEST(SetAssocCache, StatsCountHitsAndMisses) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(0, false, req);
  c.access(0, false, req);
  c.access(64, false, req);
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_NEAR(c.stats().miss_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(SetAssocCache, PerCoreAttribution) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{0, 0});
  c.access(64, false, Requester{1, 1});
  c.access(64, false, Requester{1, 1});
  EXPECT_EQ(c.stats_for_core(0).misses, 1u);
  EXPECT_EQ(c.stats_for_core(1).misses, 1u);
  EXPECT_EQ(c.stats_for_core(1).hits, 1u);
  EXPECT_EQ(c.stats_for_core(5).accesses, 0u);  // never seen
}

TEST(SetAssocCache, PerVmAttributionAndFootprint) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{0, 0});
  c.access(64, false, Requester{0, 1});
  c.access(128, false, Requester{0, 1});
  EXPECT_EQ(c.stats_for_vm(0).misses, 1u);
  EXPECT_EQ(c.stats_for_vm(1).misses, 2u);
  EXPECT_EQ(c.footprint_lines(0), 1u);
  EXPECT_EQ(c.footprint_lines(1), 2u);
}

TEST(SetAssocCache, NegativeVmIdSkipsVmAttribution) {
  SetAssocCache c("l1", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{0, -1});
  EXPECT_EQ(c.stats().accesses, 1u);
  EXPECT_EQ(c.stats_for_vm(0).accesses, 0u);
}

TEST(SetAssocCache, DirtyEvictionCountsWriteback) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(line(0, 0), true, req);  // dirty line
  for (unsigned n = 1; n <= 4; ++n) c.access(line(0, n), false, req);
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_GE(c.stats().evictions, 1u);
}

TEST(SetAssocCache, WriteHitMarksDirty) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(line(0, 0), false, req);
  c.access(line(0, 0), true, req);  // dirty via write hit
  for (unsigned n = 1; n <= 4; ++n) c.access(line(0, n), false, req);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SetAssocCache, InvalidateAllDropsLines) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 8; ++n) c.access(n * kLine, false, req);
  EXPECT_GT(c.occupancy(), 0.0);
  c.invalidate_all();
  EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
  EXPECT_FALSE(c.probe(0));
  // Stats survive invalidation.
  EXPECT_EQ(c.stats().accesses, 8u);
}

TEST(SetAssocCache, InvalidateSingleLine) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(0, false, req);
  c.access(64, false, req);
  c.invalidate(0);
  EXPECT_FALSE(c.probe(0));
  EXPECT_TRUE(c.probe(64));
}

TEST(SetAssocCache, ClearStats) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{2, 3});
  c.clear_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_EQ(c.stats_for_core(2).accesses, 0u);
  EXPECT_EQ(c.stats_for_vm(3).accesses, 0u);
}

// --- way partitioning -------------------------------------------------

TEST(WayPartition, FillsRestrictedToOwnWays) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.set_partition(0, 0, 2);  // VM 0: ways 0-1
  c.set_partition(1, 2, 2);  // VM 1: ways 2-3
  // VM 0 streams many lines through set 0; VM 1's lines must survive.
  c.access(line(0, 10), false, Requester{1, 1});
  c.access(line(0, 11), false, Requester{1, 1});
  for (unsigned n = 0; n < 8; ++n) c.access(line(0, n), false, Requester{0, 0});
  EXPECT_TRUE(c.probe(line(0, 10)));
  EXPECT_TRUE(c.probe(line(0, 11)));
  // VM 0 can hold at most 2 lines of set 0.
  unsigned resident = 0;
  for (unsigned n = 0; n < 8; ++n) resident += c.probe(line(0, n)) ? 1 : 0;
  EXPECT_EQ(resident, 2u);
}

TEST(WayPartition, LookupHitsAcrossPartitions) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.access(line(0, 0), false, Requester{0, 1});  // VM 1 fills unrestricted
  c.set_partition(0, 0, 2);
  // VM 0 can still *hit* VM 1's line (way partitioning restricts
  // allocation, not lookup).
  EXPECT_TRUE(c.access(line(0, 0), false, Requester{0, 0}).hit);
}

TEST(WayPartition, ClearRestoresFullAssociativity) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.set_partition(0, 0, 1);
  c.clear_partitions();
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  for (unsigned n = 0; n < 4; ++n) EXPECT_TRUE(c.probe(line(0, n)));
}

TEST(WayPartition, InvalidRangesThrow) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  EXPECT_THROW(c.set_partition(0, 3, 2), std::logic_error);  // beyond ways
  EXPECT_THROW(c.set_partition(0, 0, 0), std::logic_error);  // empty
  EXPECT_THROW(c.set_partition(-1, 0, 1), std::logic_error); // no vm
}

// --- replacement policies ---------------------------------------------

TEST(Replacement, NamesAreStable) {
  EXPECT_STREQ(replacement_name(ReplacementKind::kLru), "LRU");
  EXPECT_STREQ(replacement_name(ReplacementKind::kPlru), "PLRU");
  EXPECT_STREQ(replacement_name(ReplacementKind::kRandom), "random");
  EXPECT_STREQ(replacement_name(ReplacementKind::kLip), "LIP");
  EXPECT_STREQ(replacement_name(ReplacementKind::kBip), "BIP");
  EXPECT_STREQ(replacement_name(ReplacementKind::kDip), "DIP");
}

TEST(Replacement, PlruEvictsSomethingValid) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kPlru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  const auto result = c.access(line(0, 4), false, req);
  EXPECT_FALSE(result.hit);
  ASSERT_TRUE(result.evicted.has_value());
  // PLRU must not evict the most recently used line.
  EXPECT_NE(*result.evicted, line(0, 3));
}

TEST(Replacement, RandomEventuallyEvictsEveryWay) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kRandom, 123);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  std::set<Address> victims;
  for (unsigned n = 4; n < 200; ++n) {
    const auto r = c.access(line(0, n), false, req);
    if (r.evicted) victims.insert(*r.evicted % (4 * kLine * 4));
  }
  EXPECT_GE(victims.size(), 3u);
}

TEST(Replacement, LruThrashesOnCyclicOverflow) {
  // Cyclic working set one line larger than associativity: LRU misses
  // every access (the classic pathological case motivating BIP).
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (int lap = 0; lap < 10; ++lap) {
    for (unsigned n = 0; n < 5; ++n) c.access(line(0, n), false, req);
  }
  // After warm-up laps, hits stay at zero for LRU.
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Replacement, BipRetainsPartOfCyclicOverflow) {
  SetAssocCache lru("lru", toy_geometry(), ReplacementKind::kLru, 1);
  SetAssocCache bip("bip", toy_geometry(), ReplacementKind::kBip, 1);
  const Requester req{0, 0};
  for (int lap = 0; lap < 200; ++lap) {
    for (unsigned n = 0; n < 6; ++n) {
      lru.access(line(0, n), false, req);
      bip.access(line(0, n), false, req);
    }
  }
  // BIP keeps a fraction of the set resident; LRU keeps nothing.
  EXPECT_EQ(lru.stats().hits, 0u);
  EXPECT_GT(bip.stats().hits, 100u);
}

TEST(Replacement, DipTracksBetterPolicyUnderThrash) {
  SetAssocCache dip("dip", CacheGeometry{64 * 64 * 4, 4, 64}, ReplacementKind::kDip, 1);
  const Requester req{0, 0};
  // Thrash every set cyclically (ws = ways+2 per set): BIP wins, DIP
  // should converge towards BIP-like hit rates rather than LRU's zero.
  const unsigned sets = 64;
  for (int lap = 0; lap < 300; ++lap) {
    for (unsigned n = 0; n < 6; ++n) {
      for (unsigned s = 0; s < sets; ++s) {
        dip.access(line(s, n, sets), false, req);
      }
    }
  }
  const double hit_rate = static_cast<double>(dip.stats().hits) /
                          static_cast<double>(dip.stats().accesses);
  EXPECT_GT(hit_rate, 0.10);
}

// --- golden equivalence vs the frozen pre-SoA engine --------------------
//
// The SoA rewrite must be *behaviorally invisible*: for every
// replacement policy, the hit/miss/eviction sequence over a recorded
// op trace must match the original array-of-structs engine line for
// line (reference_cache.hpp keeps that engine frozen).  These tests
// are the license to keep optimizing the hot path.

struct GoldenOp {
  Address addr;
  bool write;
  int core;
  int vm;
};

/// A deterministic mixed trace: streaming, strided and random phases
/// over a working set several times the cache, from several cores/VMs.
std::vector<GoldenOp> golden_trace(std::size_t n, std::uint64_t seed, Bytes span) {
  Rng rng(seed);
  std::vector<GoldenOp> trace;
  trace.reserve(n);
  Address cursor = 0;
  const std::uint64_t span_lines = span / kLine;
  for (std::size_t i = 0; i < n; ++i) {
    GoldenOp op;
    switch ((i / 64) % 3) {
      case 0:  // stream
        cursor = (cursor + 1) % span_lines;
        op.addr = cursor * kLine;
        break;
      case 1:  // stride 7 lines
        cursor = (cursor + 7) % span_lines;
        op.addr = cursor * kLine;
        break;
      default:  // uniform random
        op.addr = rng.below(span_lines) * kLine;
        break;
    }
    op.write = rng.chance(0.3);
    op.core = static_cast<int>(rng.below(4));
    op.vm = static_cast<int>(rng.below(3));
    trace.push_back(op);
  }
  return trace;
}

void expect_stats_equal(const CacheStats& a, const CacheStats& b, const char* what) {
  EXPECT_EQ(a.accesses, b.accesses) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.evictions, b.evictions) << what;
  EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

/// Replays the trace through both engines and asserts identical
/// hit/miss/eviction sequences and identical observable state.
void run_golden(ReplacementKind kind, bool with_partitions = false) {
  // 16 KiB, 8-way: large enough for interesting set behaviour, small
  // enough that the trace overflows it constantly.
  const CacheGeometry geometry{16_KiB, 8, kLine};
  SetAssocCache soa("soa", geometry, kind, /*seed=*/123);
  ReferenceSetAssocCache ref("ref", geometry, kind, /*seed=*/123);
  if (with_partitions) {
    soa.set_partition(0, 0, 3);
    soa.set_partition(1, 3, 5);
    ref.set_partition(0, 0, 3);
    ref.set_partition(1, 3, 5);
  }

  const auto trace = golden_trace(60'000, /*seed=*/7, /*span=*/64_KiB);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const GoldenOp& op = trace[i];
    const Requester req{op.core, op.vm};
    const LookupResult a = soa.access(op.addr, op.write, req);
    const LookupResult b = ref.access(op.addr, op.write, req);
    ASSERT_EQ(a.hit, b.hit) << replacement_name(kind) << " op " << i;
    ASSERT_EQ(a.evicted.has_value(), b.evicted.has_value())
        << replacement_name(kind) << " op " << i;
    if (a.evicted.has_value()) {
      ASSERT_EQ(*a.evicted, *b.evicted) << replacement_name(kind) << " op " << i;
    }
    // Interleave the occasional invalidation and probe so those paths
    // stay equivalent too.
    if (i % 4096 == 4095) {
      soa.invalidate(op.addr);
      ref.invalidate(op.addr);
    }
    if (i % 1024 == 1023) {
      ASSERT_EQ(soa.probe(trace[i / 2].addr), ref.probe(trace[i / 2].addr));
    }
  }

  expect_stats_equal(soa.stats(), ref.stats(), replacement_name(kind));
  for (int core = 0; core < 4; ++core) {
    expect_stats_equal(soa.stats_for_core(core), ref.stats_for_core(core), "core");
  }
  for (int vm = 0; vm < 3; ++vm) {
    expect_stats_equal(soa.stats_for_vm(vm), ref.stats_for_vm(vm), "vm");
    EXPECT_EQ(soa.footprint_lines(vm), ref.footprint_lines(vm))
        << replacement_name(kind) << " footprint vm " << vm;
  }
  EXPECT_DOUBLE_EQ(soa.occupancy(), ref.occupancy()) << replacement_name(kind);
}

TEST(GoldenEquivalence, Lru) { run_golden(ReplacementKind::kLru); }
TEST(GoldenEquivalence, Plru) { run_golden(ReplacementKind::kPlru); }
TEST(GoldenEquivalence, Random) { run_golden(ReplacementKind::kRandom); }
TEST(GoldenEquivalence, Lip) { run_golden(ReplacementKind::kLip); }
TEST(GoldenEquivalence, Bip) { run_golden(ReplacementKind::kBip); }
TEST(GoldenEquivalence, Dip) { run_golden(ReplacementKind::kDip); }
TEST(GoldenEquivalence, LruWithWayPartitions) {
  run_golden(ReplacementKind::kLru, /*with_partitions=*/true);
}
TEST(GoldenEquivalence, DipWithWayPartitions) {
  run_golden(ReplacementKind::kDip, /*with_partitions=*/true);
}

TEST(GoldenEquivalence, HotPathMatchesCompatAccess) {
  // access_hot must be the same state transition as access().
  const CacheGeometry geometry{4_KiB, 8, kLine};
  SetAssocCache a("a", geometry, ReplacementKind::kLru, 5);
  SetAssocCache b("b", geometry, ReplacementKind::kLru, 5);
  const auto trace = golden_trace(20'000, /*seed=*/11, /*span=*/16_KiB);
  for (const GoldenOp& op : trace) {
    const Requester req{op.core, op.vm};
    ASSERT_EQ(a.access_hot(op.addr, op.write, req), b.access(op.addr, op.write, req).hit);
  }
  expect_stats_equal(a.stats(), b.stats(), "hot-vs-compat");
  for (int vm = 0; vm < 3; ++vm) {
    EXPECT_EQ(a.footprint_lines(vm), b.footprint_lines(vm));
  }
}

TEST(GoldenEquivalence, NonPowerOfTwoSetCountFallback) {
  // 3 sets: exercises the division fallback of set_index.
  const CacheGeometry geometry{3 * 4 * 64, 4, kLine};
  SetAssocCache soa("soa", geometry, ReplacementKind::kLru, 9);
  ReferenceSetAssocCache ref("ref", geometry, ReplacementKind::kLru, 9);
  const auto trace = golden_trace(10'000, /*seed=*/3, /*span=*/8_KiB);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Requester req{trace[i].core, trace[i].vm};
    ASSERT_EQ(soa.access(trace[i].addr, trace[i].write, req).hit,
              ref.access(trace[i].addr, trace[i].write, req).hit)
        << i;
  }
  expect_stats_equal(soa.stats(), ref.stats(), "non-pow2");
}

TEST(SetAssocCache, AttributionFreeModeKeepsTotalsOnly) {
  SetAssocCache c("l1", toy_geometry(), ReplacementKind::kLru, 1, {}, false);
  c.access(0, false, Requester{2, 3});
  c.access(0, false, Requester{2, 3});
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_FALSE(c.tracks_attribution());
  EXPECT_EQ(c.stats_for_core(2).accesses, 0u);
  EXPECT_EQ(c.stats_for_vm(3).accesses, 0u);
  EXPECT_EQ(c.footprint_lines(3), 0u);
}

TEST(Replacement, LipInsertsAtLruPosition) {
  SetAssocCache c("lip", toy_geometry(), ReplacementKind::kLip);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) {
    c.access(line(0, n), false, req);
    c.access(line(0, n), false, req);  // promote to MRU via hit
  }
  // A newly inserted line sits at LRU and is the next victim.
  c.access(line(0, 9), false, req);
  const auto r = c.access(line(0, 10), false, req);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, line(0, 9));
}

TEST(FillFastPaths, KnobStaysStickyAcrossPartitionChanges) {
  // set_fill_fast_paths(false) puts the cache in PR 4 engine mode;
  // installing and clearing a partition must not silently re-enable
  // the pruned fills (the knob is what lets benches attribute timing
  // to an engine).
  SetAssocCache c("knob", CacheGeometry{8 * 64 * 4, 4}, ReplacementKind::kLru);
  EXPECT_TRUE(c.fast_fill());
  c.set_fill_fast_paths(false);
  EXPECT_FALSE(c.fast_fill());
  c.set_partition(0, 0, 2);
  c.clear_partitions();
  EXPECT_FALSE(c.fast_fill());  // still the PR 4 engine
  c.set_fill_fast_paths(true);
  EXPECT_TRUE(c.fast_fill());
  c.set_partition(0, 0, 2);
  EXPECT_FALSE(c.fast_fill());  // partitions always force the general fill
  c.clear_partitions();
  EXPECT_TRUE(c.fast_fill());
}

}  // namespace
}  // namespace kyoto::cache
