#include "cache/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/access.hpp"

namespace kyoto::cache {
namespace {

constexpr Bytes kLine = mem::kLineBytes;

/// 4 sets x 4 ways x 64 B lines = 1 KiB toy cache.
CacheGeometry toy_geometry() { return CacheGeometry{1024, 4, kLine}; }

Address line(unsigned set, unsigned n, unsigned sets = 4) {
  // n-th distinct line mapping to `set`.
  return (static_cast<Address>(n) * sets + set) * kLine;
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  EXPECT_FALSE(c.access(0, false, req).hit);
  EXPECT_TRUE(c.access(0, false, req).hit);
  EXPECT_TRUE(c.access(63, false, req).hit);   // same line
  EXPECT_FALSE(c.access(64, false, req).hit);  // next line
}

TEST(SetAssocCache, GeometrySetsComputed) {
  EXPECT_EQ(toy_geometry().sets(), 4u);
  EXPECT_EQ((CacheGeometry{10240_KiB, 20, 64}).sets(), 8192u);
  EXPECT_THROW((CacheGeometry{1000, 3, 64}).sets(), std::logic_error);
}

TEST(SetAssocCache, AssociativityHoldsWaysLines) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  // Fill one set with exactly `ways` lines: all must coexist.
  for (unsigned n = 0; n < 4; ++n) c.access(line(1, n), false, req);
  for (unsigned n = 0; n < 4; ++n) EXPECT_TRUE(c.access(line(1, n), false, req).hit);
}

TEST(SetAssocCache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  // Touch 0..2 so line 3 is LRU... actually touch 1,2,3 so 0 is LRU.
  c.access(line(0, 1), false, req);
  c.access(line(0, 2), false, req);
  c.access(line(0, 3), false, req);
  // New line evicts line 0.
  const auto result = c.access(line(0, 4), false, req);
  EXPECT_FALSE(result.hit);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, line(0, 0));
  EXPECT_FALSE(c.probe(line(0, 0)));
  EXPECT_TRUE(c.probe(line(0, 1)));
}

TEST(SetAssocCache, ProbeDoesNotDisturbState) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  // Probing the LRU line must not refresh it.
  EXPECT_TRUE(c.probe(line(0, 0)));
  c.access(line(0, 4), false, req);
  EXPECT_FALSE(c.probe(line(0, 0)));
  const auto before = c.stats();
  c.probe(line(0, 1));
  EXPECT_EQ(c.stats().accesses, before.accesses);  // probe not counted
}

TEST(SetAssocCache, StatsCountHitsAndMisses) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(0, false, req);
  c.access(0, false, req);
  c.access(64, false, req);
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_NEAR(c.stats().miss_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(SetAssocCache, PerCoreAttribution) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{0, 0});
  c.access(64, false, Requester{1, 1});
  c.access(64, false, Requester{1, 1});
  EXPECT_EQ(c.stats_for_core(0).misses, 1u);
  EXPECT_EQ(c.stats_for_core(1).misses, 1u);
  EXPECT_EQ(c.stats_for_core(1).hits, 1u);
  EXPECT_EQ(c.stats_for_core(5).accesses, 0u);  // never seen
}

TEST(SetAssocCache, PerVmAttributionAndFootprint) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{0, 0});
  c.access(64, false, Requester{0, 1});
  c.access(128, false, Requester{0, 1});
  EXPECT_EQ(c.stats_for_vm(0).misses, 1u);
  EXPECT_EQ(c.stats_for_vm(1).misses, 2u);
  EXPECT_EQ(c.footprint_lines(0), 1u);
  EXPECT_EQ(c.footprint_lines(1), 2u);
}

TEST(SetAssocCache, NegativeVmIdSkipsVmAttribution) {
  SetAssocCache c("l1", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{0, -1});
  EXPECT_EQ(c.stats().accesses, 1u);
  EXPECT_EQ(c.stats_for_vm(0).accesses, 0u);
}

TEST(SetAssocCache, DirtyEvictionCountsWriteback) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(line(0, 0), true, req);  // dirty line
  for (unsigned n = 1; n <= 4; ++n) c.access(line(0, n), false, req);
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_GE(c.stats().evictions, 1u);
}

TEST(SetAssocCache, WriteHitMarksDirty) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(line(0, 0), false, req);
  c.access(line(0, 0), true, req);  // dirty via write hit
  for (unsigned n = 1; n <= 4; ++n) c.access(line(0, n), false, req);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SetAssocCache, InvalidateAllDropsLines) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 8; ++n) c.access(n * kLine, false, req);
  EXPECT_GT(c.occupancy(), 0.0);
  c.invalidate_all();
  EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
  EXPECT_FALSE(c.probe(0));
  // Stats survive invalidation.
  EXPECT_EQ(c.stats().accesses, 8u);
}

TEST(SetAssocCache, InvalidateSingleLine) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  c.access(0, false, req);
  c.access(64, false, req);
  c.invalidate(0);
  EXPECT_FALSE(c.probe(0));
  EXPECT_TRUE(c.probe(64));
}

TEST(SetAssocCache, ClearStats) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  c.access(0, false, Requester{2, 3});
  c.clear_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_EQ(c.stats_for_core(2).accesses, 0u);
  EXPECT_EQ(c.stats_for_vm(3).accesses, 0u);
}

// --- way partitioning -------------------------------------------------

TEST(WayPartition, FillsRestrictedToOwnWays) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.set_partition(0, 0, 2);  // VM 0: ways 0-1
  c.set_partition(1, 2, 2);  // VM 1: ways 2-3
  // VM 0 streams many lines through set 0; VM 1's lines must survive.
  c.access(line(0, 10), false, Requester{1, 1});
  c.access(line(0, 11), false, Requester{1, 1});
  for (unsigned n = 0; n < 8; ++n) c.access(line(0, n), false, Requester{0, 0});
  EXPECT_TRUE(c.probe(line(0, 10)));
  EXPECT_TRUE(c.probe(line(0, 11)));
  // VM 0 can hold at most 2 lines of set 0.
  unsigned resident = 0;
  for (unsigned n = 0; n < 8; ++n) resident += c.probe(line(0, n)) ? 1 : 0;
  EXPECT_EQ(resident, 2u);
}

TEST(WayPartition, LookupHitsAcrossPartitions) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.access(line(0, 0), false, Requester{0, 1});  // VM 1 fills unrestricted
  c.set_partition(0, 0, 2);
  // VM 0 can still *hit* VM 1's line (way partitioning restricts
  // allocation, not lookup).
  EXPECT_TRUE(c.access(line(0, 0), false, Requester{0, 0}).hit);
}

TEST(WayPartition, ClearRestoresFullAssociativity) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  c.set_partition(0, 0, 1);
  c.clear_partitions();
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  for (unsigned n = 0; n < 4; ++n) EXPECT_TRUE(c.probe(line(0, n)));
}

TEST(WayPartition, InvalidRangesThrow) {
  SetAssocCache c("llc", toy_geometry(), ReplacementKind::kLru);
  EXPECT_THROW(c.set_partition(0, 3, 2), std::logic_error);  // beyond ways
  EXPECT_THROW(c.set_partition(0, 0, 0), std::logic_error);  // empty
  EXPECT_THROW(c.set_partition(-1, 0, 1), std::logic_error); // no vm
}

// --- replacement policies ---------------------------------------------

TEST(Replacement, NamesAreStable) {
  EXPECT_STREQ(replacement_name(ReplacementKind::kLru), "LRU");
  EXPECT_STREQ(replacement_name(ReplacementKind::kPlru), "PLRU");
  EXPECT_STREQ(replacement_name(ReplacementKind::kRandom), "random");
  EXPECT_STREQ(replacement_name(ReplacementKind::kLip), "LIP");
  EXPECT_STREQ(replacement_name(ReplacementKind::kBip), "BIP");
  EXPECT_STREQ(replacement_name(ReplacementKind::kDip), "DIP");
}

TEST(Replacement, PlruEvictsSomethingValid) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kPlru);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  const auto result = c.access(line(0, 4), false, req);
  EXPECT_FALSE(result.hit);
  ASSERT_TRUE(result.evicted.has_value());
  // PLRU must not evict the most recently used line.
  EXPECT_NE(*result.evicted, line(0, 3));
}

TEST(Replacement, RandomEventuallyEvictsEveryWay) {
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kRandom, 123);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) c.access(line(0, n), false, req);
  std::set<Address> victims;
  for (unsigned n = 4; n < 200; ++n) {
    const auto r = c.access(line(0, n), false, req);
    if (r.evicted) victims.insert(*r.evicted % (4 * kLine * 4));
  }
  EXPECT_GE(victims.size(), 3u);
}

TEST(Replacement, LruThrashesOnCyclicOverflow) {
  // Cyclic working set one line larger than associativity: LRU misses
  // every access (the classic pathological case motivating BIP).
  SetAssocCache c("t", toy_geometry(), ReplacementKind::kLru);
  const Requester req{0, 0};
  for (int lap = 0; lap < 10; ++lap) {
    for (unsigned n = 0; n < 5; ++n) c.access(line(0, n), false, req);
  }
  // After warm-up laps, hits stay at zero for LRU.
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Replacement, BipRetainsPartOfCyclicOverflow) {
  SetAssocCache lru("lru", toy_geometry(), ReplacementKind::kLru, 1);
  SetAssocCache bip("bip", toy_geometry(), ReplacementKind::kBip, 1);
  const Requester req{0, 0};
  for (int lap = 0; lap < 200; ++lap) {
    for (unsigned n = 0; n < 6; ++n) {
      lru.access(line(0, n), false, req);
      bip.access(line(0, n), false, req);
    }
  }
  // BIP keeps a fraction of the set resident; LRU keeps nothing.
  EXPECT_EQ(lru.stats().hits, 0u);
  EXPECT_GT(bip.stats().hits, 100u);
}

TEST(Replacement, DipTracksBetterPolicyUnderThrash) {
  SetAssocCache dip("dip", CacheGeometry{64 * 64 * 4, 4, 64}, ReplacementKind::kDip, 1);
  const Requester req{0, 0};
  // Thrash every set cyclically (ws = ways+2 per set): BIP wins, DIP
  // should converge towards BIP-like hit rates rather than LRU's zero.
  const unsigned sets = 64;
  for (int lap = 0; lap < 300; ++lap) {
    for (unsigned n = 0; n < 6; ++n) {
      for (unsigned s = 0; s < sets; ++s) {
        dip.access(line(s, n, sets), false, req);
      }
    }
  }
  const double hit_rate = static_cast<double>(dip.stats().hits) /
                          static_cast<double>(dip.stats().accesses);
  EXPECT_GT(hit_rate, 0.10);
}

TEST(Replacement, LipInsertsAtLruPosition) {
  SetAssocCache c("lip", toy_geometry(), ReplacementKind::kLip);
  const Requester req{0, 0};
  for (unsigned n = 0; n < 4; ++n) {
    c.access(line(0, n), false, req);
    c.access(line(0, n), false, req);  // promote to MRU via hit
  }
  // A newly inserted line sits at LRU and is the next victim.
  c.access(line(0, 9), false, req);
  const auto r = c.access(line(0, 10), false, req);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, line(0, 9));
}

}  // namespace
}  // namespace kyoto::cache
