// Property-style randomized oracle: the SoA SetAssocCache must equal
// the frozen pre-overhaul engine (reference_cache.hpp) on *arbitrary*
// configurations, not just the hand-picked shapes of the PR 1 golden
// suite.
//
// ~200 random (sets, ways, policy, partition) configurations are
// generated from one master seed; for each, a random op stream
// (mixed loads/stores, several requester cores and VMs, address span
// chosen to produce real conflict pressure, interleaved probes and
// single-line invalidations) is replayed through both engines and
// every observable is compared exactly: hit/miss outcome, evicted
// address, aggregate and per-core/per-VM statistics, per-VM
// footprints and occupancy.  Any divergence prints the config tuple
// so the shape can be frozen into the golden suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.hpp"
#include "cache/reference_cache.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/topology.hpp"
#include "common/rng.hpp"
#include "mem/access.hpp"

namespace kyoto::cache {
namespace {

struct RandomConfig {
  CacheGeometry geometry;
  ReplacementKind policy = ReplacementKind::kLru;
  std::uint64_t engine_seed = 1;
  std::uint64_t stream_seed = 1;
  int cores = 2;
  int vms = 3;
  /// Way partitions to apply, one optional entry per VM (n_ways == 0
  /// means the VM stays unrestricted).
  std::vector<std::pair<unsigned, unsigned>> partitions;  // (first_way, n_ways) by vm

  std::string describe() const {
    std::string s = "sets=" + std::to_string(geometry.sets()) +
                    " ways=" + std::to_string(geometry.ways) +
                    " line=" + std::to_string(geometry.line) +
                    " policy=" + replacement_name(policy) +
                    " engine_seed=" + std::to_string(engine_seed) +
                    " stream_seed=" + std::to_string(stream_seed);
    for (std::size_t vm = 0; vm < partitions.size(); ++vm) {
      if (partitions[vm].second == 0) continue;
      s += " part[vm" + std::to_string(vm) + "]=" + std::to_string(partitions[vm].first) +
           "+" + std::to_string(partitions[vm].second);
    }
    return s;
  }
};

RandomConfig draw_config(Rng& rng) {
  RandomConfig config;
  // Associativities around the real machines' (4..20), including odd
  // ones; set counts mixing powers of two (shift+mask fast path) and
  // non-powers (division fallback); lines 32/64/128.
  static constexpr unsigned kWays[] = {1, 2, 3, 4, 5, 7, 8, 12, 16, 20};
  static constexpr unsigned kSets[] = {1, 2, 4, 8, 16, 64, 256, 3, 5, 6, 7, 24, 100};
  static constexpr Bytes kLines[] = {32, 64, 128};
  const unsigned ways = kWays[rng.below(std::size(kWays))];
  const unsigned sets = kSets[rng.below(std::size(kSets))];
  const Bytes line = kLines[rng.below(std::size(kLines))];
  config.geometry = CacheGeometry{static_cast<Bytes>(sets) * ways * line, ways, line};
  config.policy = static_cast<ReplacementKind>(rng.below(6));
  config.engine_seed = rng();
  config.stream_seed = rng();
  config.cores = 1 + static_cast<int>(rng.below(4));
  config.vms = 1 + static_cast<int>(rng.below(4));
  // ~40% of configs exercise way partitioning (the UCP-style ablation
  // path, where victim scans are restricted to per-VM way windows).
  if (rng.chance(0.4)) {
    for (int vm = 0; vm < config.vms; ++vm) {
      if (!rng.chance(0.5)) {
        config.partitions.emplace_back(0, 0);
        continue;
      }
      const unsigned first = static_cast<unsigned>(rng.below(ways));
      const unsigned n = 1 + static_cast<unsigned>(rng.below(ways - first));
      config.partitions.emplace_back(first, n);
    }
  }
  return config;
}

void replay_and_compare(const RandomConfig& config, std::size_t ops) {
  SetAssocCache current("oracle", config.geometry, config.policy, config.engine_seed);
  ReferenceSetAssocCache reference("oracle", config.geometry, config.policy,
                                   config.engine_seed);
  for (std::size_t vm = 0; vm < config.partitions.size(); ++vm) {
    const auto [first, n] = config.partitions[vm];
    if (n == 0) continue;
    current.set_partition(static_cast<int>(vm), first, n);
    reference.set_partition(static_cast<int>(vm), first, n);
  }

  Rng stream(config.stream_seed);
  // Span a few multiples of the capacity so fills, evictions and
  // partition-window victim scans all occur, but reuse is common
  // enough that hits occur too.
  const std::uint64_t lines_in_cache =
      static_cast<std::uint64_t>(config.geometry.sets()) * config.geometry.ways;
  const std::uint64_t span_lines = lines_in_cache * (2 + stream.below(4)) + 1;

  for (std::size_t i = 0; i < ops; ++i) {
    const Address addr = stream.below(span_lines) * config.geometry.line +
                         stream.below(config.geometry.line);  // unaligned too
    const Requester req{static_cast<int>(stream.below(static_cast<std::uint64_t>(config.cores))),
                        static_cast<int>(stream.below(static_cast<std::uint64_t>(config.vms)))};
    const bool write = stream.chance(0.3);
    const LookupResult got = current.access(addr, write, req);
    const LookupResult want = reference.access(addr, write, req);
    ASSERT_EQ(want.hit, got.hit) << config.describe() << " op=" << i;
    ASSERT_EQ(want.evicted.has_value(), got.evicted.has_value())
        << config.describe() << " op=" << i;
    if (want.evicted.has_value()) {
      ASSERT_EQ(*want.evicted, *got.evicted) << config.describe() << " op=" << i;
    }
    if (stream.chance(0.02)) {
      const Address victim = stream.below(span_lines) * config.geometry.line;
      current.invalidate(victim);
      reference.invalidate(victim);
    }
    if (stream.chance(0.05)) {
      const Address probed = stream.below(span_lines) * config.geometry.line;
      ASSERT_EQ(reference.probe(probed), current.probe(probed))
          << config.describe() << " op=" << i;
    }
  }

  // Full statistics surface, not just the op-by-op outcomes.
  auto expect_stats_eq = [&](const CacheStats& want, const CacheStats& got,
                             const std::string& what) {
    EXPECT_EQ(want.accesses, got.accesses) << config.describe() << " " << what;
    EXPECT_EQ(want.hits, got.hits) << config.describe() << " " << what;
    EXPECT_EQ(want.misses, got.misses) << config.describe() << " " << what;
    EXPECT_EQ(want.evictions, got.evictions) << config.describe() << " " << what;
    EXPECT_EQ(want.writebacks, got.writebacks) << config.describe() << " " << what;
  };
  expect_stats_eq(reference.stats(), current.stats(), "total");
  for (int core = 0; core < config.cores; ++core) {
    expect_stats_eq(reference.stats_for_core(core), current.stats_for_core(core),
                    "core " + std::to_string(core));
  }
  for (int vm = 0; vm < config.vms; ++vm) {
    expect_stats_eq(reference.stats_for_vm(vm), current.stats_for_vm(vm),
                    "vm " + std::to_string(vm));
    EXPECT_EQ(reference.footprint_lines(vm), current.footprint_lines(vm))
        << config.describe() << " footprint vm " << vm;
  }
  EXPECT_EQ(reference.footprint_lines(-1), current.footprint_lines(-1)) << config.describe();
  EXPECT_DOUBLE_EQ(reference.occupancy(), current.occupancy()) << config.describe();
}

TEST(RandomizedOracle, TwoHundredRandomConfigsMatchReferenceExactly) {
  Rng master(0xfeedc0de2024ull);
  for (int i = 0; i < 200; ++i) {
    const RandomConfig config = draw_config(master);
    // Cap per-config work so the whole property loop stays in test
    // budget: smaller caches replay more ops.
    const std::uint64_t lines =
        static_cast<std::uint64_t>(config.geometry.sets()) * config.geometry.ways;
    const std::size_t ops = lines < 64 ? 3000 : (lines < 2048 ? 1500 : 600);
    replay_and_compare(config, ops);
    if (HasFatalFailure()) {
      FAIL() << "config #" << i << " diverged: " << config.describe();
    }
  }
}

// ---------------------------------------------------------------------
// Incremental-counter oracle: footprint_lines / occupancy and the
// ground-truth pollution counters must stay exact under arbitrary
// interleavings of accesses, single-line invalidations, full flushes,
// partition changes and VM "migrations" (a VM's accesses suddenly
// issuing from different cores — at the cache level, exactly what a
// hypervisor migration looks like).  The oracle is a recount from the
// raw line state plus conservation laws the event counters must obey.
// ---------------------------------------------------------------------

void check_against_recount(const SetAssocCache& cache, const RandomConfig& config,
                           std::size_t op) {
  const std::uint64_t lines =
      static_cast<std::uint64_t>(config.geometry.sets()) * config.geometry.ways;
  std::uint64_t owned_sum = 0;
  for (int vm = 0; vm < config.vms; ++vm) {
    const std::uint64_t recount = cache.recount_footprint_lines(vm);
    ASSERT_EQ(recount, cache.footprint_lines(vm))
        << config.describe() << " footprint vm " << vm << " after op " << op;
    owned_sum += recount;
  }
  ASSERT_EQ(cache.recount_footprint_lines(-1), cache.footprint_lines(-1))
      << config.describe() << " unowned after op " << op;
  const std::uint64_t valid = cache.recount_valid_lines();
  ASSERT_DOUBLE_EQ(static_cast<double>(valid) / static_cast<double>(lines),
                   cache.occupancy())
      << config.describe() << " occupancy after op " << op;
  ASSERT_EQ(owned_sum + cache.footprint_lines(-1), valid)
      << config.describe() << " footprint conservation after op " << op;

  // Pollution-counter conservation: every cross-VM eviction has
  // exactly one victim and (all requesters being VMs here) one
  // inflictor; a contention miss is a miss on a previously displaced
  // line, so it can never outnumber either side.
  std::uint64_t inflicted = 0;
  std::uint64_t suffered = 0;
  std::uint64_t contention = 0;
  for (int vm = 0; vm < config.vms; ++vm) {
    const VmPollution& p = cache.pollution_for_vm(vm);
    inflicted += p.cross_evictions_inflicted;
    suffered += p.cross_evictions_suffered;
    contention += p.contention_misses;
    ASSERT_LE(p.contention_misses, cache.stats_for_vm(vm).misses)
        << config.describe() << " vm " << vm << " after op " << op;
  }
  ASSERT_EQ(inflicted, suffered) << config.describe() << " after op " << op;
  ASSERT_LE(suffered, cache.stats().evictions) << config.describe() << " after op " << op;
  ASSERT_LE(contention, suffered) << config.describe() << " after op " << op;
}

void replay_with_disruptions(const RandomConfig& config, std::size_t ops) {
  SetAssocCache cache("recount", config.geometry, config.policy, config.engine_seed);
  Rng stream(config.stream_seed);
  const std::uint64_t lines_in_cache =
      static_cast<std::uint64_t>(config.geometry.sets()) * config.geometry.ways;
  const std::uint64_t span_lines = lines_in_cache * (2 + stream.below(4)) + 1;

  // Mutable VM -> core mapping ("pinning"): migrations remap it.
  std::vector<int> vm_core(static_cast<std::size_t>(config.vms));
  for (int vm = 0; vm < config.vms; ++vm) {
    vm_core[static_cast<std::size_t>(vm)] = static_cast<int>(
        stream.below(static_cast<std::uint64_t>(config.cores)));
  }

  const std::size_t checkpoint = 1 + ops / 7;
  for (std::size_t i = 0; i < ops; ++i) {
    const Address addr = stream.below(span_lines) * config.geometry.line +
                         stream.below(config.geometry.line);
    const int vm = static_cast<int>(stream.below(static_cast<std::uint64_t>(config.vms)));
    cache.access(addr, stream.chance(0.3),
                 Requester{vm_core[static_cast<std::size_t>(vm)], vm});

    if (stream.chance(0.02)) {
      cache.invalidate(stream.below(span_lines) * config.geometry.line);
    }
    if (stream.chance(0.004)) {
      cache.invalidate_all();
    }
    if (stream.chance(0.01)) {
      // Partition change mid-stream (UCP-style reconfiguration).
      if (stream.chance(0.3)) {
        cache.clear_partitions();
      } else {
        const int vm_p = static_cast<int>(
            stream.below(static_cast<std::uint64_t>(config.vms)));
        const unsigned first =
            static_cast<unsigned>(stream.below(config.geometry.ways));
        const unsigned n =
            1 + static_cast<unsigned>(stream.below(config.geometry.ways - first));
        cache.set_partition(vm_p, first, n);
      }
    }
    if (stream.chance(0.01)) {
      // VM migration: its accesses now issue from another core.
      const int vm_m = static_cast<int>(
          stream.below(static_cast<std::uint64_t>(config.vms)));
      vm_core[static_cast<std::size_t>(vm_m)] = static_cast<int>(
          stream.below(static_cast<std::uint64_t>(config.cores)));
    }
    if (i % checkpoint == 0) {
      check_against_recount(cache, config, i);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  check_against_recount(cache, config, ops);
}

TEST(RandomizedOracle, IncrementalCountersMatchRecountUnderDisruptions) {
  Rng master(0xabad1dea2026ull);
  for (int i = 0; i < 80; ++i) {
    const RandomConfig config = draw_config(master);
    const std::uint64_t lines =
        static_cast<std::uint64_t>(config.geometry.sets()) * config.geometry.ways;
    const std::size_t ops = lines < 64 ? 2500 : (lines < 2048 ? 1200 : 500);
    replay_with_disruptions(config, ops);
    if (HasFatalFailure()) {
      FAIL() << "config #" << i << " diverged: " << config.describe();
    }
  }
}

// --- multi-level engine equivalence ------------------------------------
//
// The fused miss walk (access_line_multilevel) and the fill fast
// paths must be *bit-identical* to the serial three-call walk with
// the general fills (the PR 4 engine).  Random multi-core op streams
// — mixed loads/stores, several VMs, LLC partitions installed
// mid-run, occasional invalidations, bus+prefetcher on for some
// configs — are replayed through three MemorySystem engine modes and
// every observable is compared exactly.
namespace {

struct EngineRun {
  std::vector<std::uint64_t> observables;
};

EngineRun run_engine(const MemSystemConfig& cfg, const Topology& topo, bool fused,
                     bool fast_fills, std::uint64_t stream_seed, bool partition_mid_run) {
  MemorySystem memory(topo, cfg, /*seed=*/7);
  memory.set_fused_miss_path(fused);
  memory.set_fill_fast_paths(fast_fills);
  const int cores = topo.total_cores();
  const int vms = 4;
  memory.reserve_vm_slots(vms);
  Rng rng(stream_seed);
  EngineRun run;
  const Bytes span = cfg.llc.size * 3;
  const std::uint64_t lines = span / cfg.llc.line;
  std::int64_t now = 0;
  for (int op = 0; op < 60'000; ++op) {
    const int core = static_cast<int>(rng.below(static_cast<std::uint64_t>(cores)));
    const int vm = static_cast<int>(rng.below(vms));
    const Address addr = rng.below(lines) * cfg.llc.line;
    const bool write = rng.chance(0.3);
    const int home = static_cast<int>(rng.below(static_cast<std::uint64_t>(topo.sockets)));
    const AccessResult result = memory.access(core, addr, write, home, vm, now);
    now += result.latency;
    run.observables.push_back(static_cast<std::uint64_t>(result.level));
    run.observables.push_back(static_cast<std::uint64_t>(result.latency));
    run.observables.push_back(result.llc_reference);
    run.observables.push_back(result.llc_miss);
    run.observables.push_back(result.prefetch_llc_references);
    run.observables.push_back(result.prefetch_llc_misses);
    if (partition_mid_run && op == 30'000) {
      // UCP-style partition installed mid-run: the fast fills must
      // step aside and the engines must keep agreeing.
      memory.llc(0).set_partition(/*vm=*/1, /*first_way=*/0,
                                  /*n_ways=*/cfg.llc.ways / 2);
    }
    if (op % 9973 == 0) memory.invalidate_private(core);
  }
  auto record_cache = [&run, vms](const SetAssocCache& c) {
    const CacheStats& stats = c.stats();
    run.observables.insert(run.observables.end(),
                           {stats.accesses, stats.hits, stats.misses, stats.evictions,
                            stats.writebacks});
    for (int vm = 0; vm < vms; ++vm) {
      const CacheStats& vm_stats = c.stats_for_vm(vm);
      run.observables.insert(run.observables.end(),
                             {vm_stats.accesses, vm_stats.misses, vm_stats.evictions,
                              c.footprint_lines(vm)});
      const VmPollution& pollution = c.pollution_for_vm(vm);
      run.observables.insert(
          run.observables.end(),
          {pollution.cross_evictions_inflicted, pollution.cross_evictions_suffered,
           pollution.contention_misses});
    }
  };
  for (int core = 0; core < cores; ++core) {
    record_cache(memory.l1(core));
    record_cache(memory.l2(core));
    run.observables.push_back(memory.prefetches_issued(core));
  }
  for (int socket = 0; socket < topo.sockets; ++socket) {
    record_cache(memory.llc(socket));
    run.observables.push_back(static_cast<std::uint64_t>(memory.bus_queue_cycles(socket)));
  }
  return run;
}

}  // namespace

TEST(RandomizedOracle, MultilevelFusedWalkMatchesSerialAndPr4Engines) {
  Rng master(0xF0CE5ull);
  for (int round = 0; round < 12; ++round) {
    MemSystemConfig cfg = scaled_mem_system();
    // Vary geometry: shrink/grow the LLC, flip replacement for some
    // rounds (non-LRU exercises the general fills under fusion), and
    // enable the bus/prefetcher extensions for others (the
    // miss-extras path).
    if (round % 3 == 1) cfg.llc.size /= 2;  // 64-set LLC variant
    if (round % 4 == 2) cfg.llc_replacement = ReplacementKind::kDip;
    if (round % 4 == 3) cfg.private_replacement = ReplacementKind::kPlru;
    cfg.prefetch.enabled = round % 2 == 1;
    cfg.bus.enabled = round % 5 == 2;
    const Topology topo{round % 2 == 0 ? 1 : 2, 2};
    const std::uint64_t stream_seed = master();
    const bool partition_mid_run = round % 3 == 0;

    const EngineRun fused = run_engine(cfg, topo, /*fused=*/true, /*fast_fills=*/true,
                                       stream_seed, partition_mid_run);
    const EngineRun serial = run_engine(cfg, topo, /*fused=*/false, /*fast_fills=*/true,
                                        stream_seed, partition_mid_run);
    const EngineRun pr4 = run_engine(cfg, topo, /*fused=*/false, /*fast_fills=*/false,
                                     stream_seed, partition_mid_run);
    ASSERT_EQ(fused.observables, serial.observables) << "round " << round;
    ASSERT_EQ(fused.observables, pr4.observables) << "round " << round;
  }
}

// --- 20-way order5 victim golden ----------------------------------------
//
// The paper's LLC is 20-way, which the nibble fast order (16 ways max)
// cannot hold; a two-word array of 5-bit fields takes over for
// 16 < ways <= 24.  This golden drives exactly that shape — LRU,
// 20 ways, power-of-two and non-power-of-two set counts — against the
// frozen reference engine with every disruption the layout must
// survive: partitions installed mid-run (fast victim steps aside,
// mirrors keep tracking), partitions cleared again (fast victim
// resumes on mirrors that never stopped), the fast-path knob toggled
// off and back on (order rebuilt from recency stamps), and single-line
// invalidations throughout.

TEST(RandomizedOracle, TwentyWayOrder5MatchesReferenceUnderDisruptions) {
  for (const unsigned sets : {64u, 100u}) {
    const CacheGeometry geom{static_cast<Bytes>(sets) * 20 * 64, 20, 64};
    SetAssocCache current("order5", geom, ReplacementKind::kLru, /*seed=*/11);
    ReferenceSetAssocCache reference("order5", geom, ReplacementKind::kLru, /*seed=*/11);

    Rng stream(0x20aa5eedull + sets);
    const std::uint64_t span_lines = static_cast<std::uint64_t>(sets) * 20 * 3 + 1;
    constexpr std::size_t kOps = 40'000;
    // Disruption schedule: partition on, partition off, fast paths
    // off, fast paths on (rebuild), all with plenty of traffic between.
    for (std::size_t i = 0; i < kOps; ++i) {
      const Address addr = stream.below(span_lines) * geom.line;
      const Requester req{static_cast<int>(stream.below(2)),
                          static_cast<int>(stream.below(3))};
      const bool write = stream.chance(0.3);
      const LookupResult got = current.access(addr, write, req);
      const LookupResult want = reference.access(addr, write, req);
      ASSERT_EQ(want.hit, got.hit) << "sets=" << sets << " op=" << i;
      ASSERT_EQ(want.evicted, got.evicted) << "sets=" << sets << " op=" << i;
      if (stream.chance(0.01)) {
        const Address victim = stream.below(span_lines) * geom.line;
        current.invalidate(victim);
        reference.invalidate(victim);
      }
      if (i == kOps / 5) {
        current.set_partition(/*vm=*/1, /*first_way=*/0, /*n_ways=*/10);
        reference.set_partition(1, 0, 10);
      }
      if (i == 2 * kOps / 5) {
        current.clear_partitions();
        reference.clear_partitions();
      }
      if (i == 3 * kOps / 5) current.set_fill_fast_paths(false);
      if (i == 4 * kOps / 5) current.set_fill_fast_paths(true);
    }
    EXPECT_EQ(reference.stats().accesses, current.stats().accesses) << sets;
    EXPECT_EQ(reference.stats().hits, current.stats().hits) << sets;
    EXPECT_EQ(reference.stats().misses, current.stats().misses) << sets;
    EXPECT_EQ(reference.stats().evictions, current.stats().evictions) << sets;
    EXPECT_EQ(reference.stats().writebacks, current.stats().writebacks) << sets;
  }
}

}  // namespace
}  // namespace kyoto::cache

